// Exploration example: a search-and-rescue scenario. The LGV maps an
// unknown cluttered site with SLAM + frontier exploration, comparing the
// on-board baseline against cloud-accelerated SLAM (the paper's Fig. 6
// parallel gmapping), and reports mapping progress over time.
//
//	go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lgvoffload"
	"lgvoffload/internal/world"
)

func main() {
	// An unknown disaster site: a walled area with random debris. The
	// robot has no prior map — SLAM builds it while frontiers guide the
	// search.
	site := world.RandomClutterMap(7, 5, 0.05, 6, rand.New(rand.NewSource(99)))

	for _, d := range []lgvoffload.Deployment{
		lgvoffload.DeployCloud(12),
		lgvoffload.DeployLocal(),
	} {
		res, err := lgvoffload.Run(lgvoffload.MissionConfig{
			Workload:   lgvoffload.ExplorationNoMap,
			Map:        site,
			Start:      lgvoffload.Pose(0.8, 0.8, 0),
			WAP:        lgvoffload.Point(3.5, 2.5),
			Deployment: d,
			Seed:       7,
			MaxSimTime: 1200,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search-and-rescue mapping on %s:\n", d.Name)
		fmt.Printf("  outcome:   %v (%s)\n", res.Success, res.Reason)
		fmt.Printf("  mapped:    %.0f%% of the site's free space\n", res.Explored*100)
		fmt.Printf("  duration:  %.1f s, %.1f m driven\n", res.TotalTime, res.Distance)
		fmt.Printf("  energy:    %.0f J total\n", res.TotalEnergy)
		fmt.Printf("  slam load: %.1f Gcycles (%.0f%% of the workload)\n",
			res.Cycles.Node("slam").Total()/1e9,
			100*res.Cycles.Node("slam").Total()/res.Cycles.Total().Total())
		fmt.Println()
	}
	fmt.Println("SLAM dominates the unknown-map workload (Table II), so accelerating its")
	fmt.Println("scanMatch in the cloud is what keeps the pose fresh and the mission short.")
}
