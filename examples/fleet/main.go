// Fleet example: the multi-robot deployment question. k delivery robots
// share one remote server; as the fleet grows, each robot's share of the
// server shrinks. The 4-core edge gateway wins small fleets (the paper's
// Fig. 10: frequency beats cores on the velocity-dependent path), but
// the 24-core cloud amortizes across larger ones — this example locates
// the crossover for a warehouse fleet.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"lgvoffload"
	"lgvoffload/internal/core"
	"lgvoffload/internal/fleet"
)

func main() {
	base := func(d lgvoffload.Deployment) core.MissionConfig {
		return core.MissionConfig{
			Workload:   lgvoffload.NavigationWithMap,
			Map:        lgvoffload.EmptyRoomMap(6, 4, 0.05),
			Start:      lgvoffload.Pose(0.8, 2, 0),
			Goal:       lgvoffload.Point(5.2, 2),
			WAP:        lgvoffload.Point(3, 2),
			Deployment: d,
			Seed:       3,
			MaxSimTime: 600,
		}
	}
	sizes := []int{1, 2, 4, 8, 16, 32}

	edge, err := fleet.Sweep(base(lgvoffload.DeployEdge(8)), sizes)
	if err != nil {
		log.Fatal(err)
	}
	cloud, err := fleet.Sweep(base(lgvoffload.DeployCloud(12)), sizes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-robot delivery time as the fleet shares one server")
	fmt.Printf("%8s %14s %14s %10s\n", "robots", "edge (s)", "cloud (s)", "winner")
	for i := range sizes {
		winner := "edge"
		if cloud[i].Time < edge[i].Time {
			winner = "cloud"
		}
		fmt.Printf("%8d %14.1f %14.1f %10s\n", sizes[i], edge[i].Time, cloud[i].Time, winner)
	}
	if k, ok := fleet.Crossover(edge, cloud); ok {
		fmt.Printf("\n→ rent the gateway below %d robots, the cloud from %d up.\n", k, k)
	}
}
