// Patrol example: a mail-delivery round through an office floor. The
// LGV visits a sequence of rooms off a central corridor — long straight
// segments where the velocity cap pays off, doorway turns where it
// cannot — comparing the local baseline against adaptive offloading.
//
//	go run ./examples/patrol
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lgvoffload"
	"lgvoffload/internal/core"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/world"
)

func main() {
	const rooms, roomW, roomD, corridorW = 4, 2.0, 1.8, 1.2
	office := world.OfficeMap(rooms, roomW, roomD, corridorW, 0.05, rand.New(rand.NewSource(8)))
	corridorY := world.OfficeCorridorY(roomD, corridorW)

	// Deliver to three rooms, then return to the mail station.
	stops := []geom.Vec2{
		world.OfficeRoomCenter(1, 0, roomW, roomD, corridorW),
		world.OfficeRoomCenter(2, 1, roomW, roomD, corridorW),
		world.OfficeRoomCenter(3, 0, roomW, roomD, corridorW),
	}
	station := geom.V(0.6, corridorY)

	fmt.Println("mail round: 3 rooms + return, office floor with doorway turns")
	fmt.Printf("%-22s %8s %9s %9s %10s\n", "deploy", "success", "time(s)", "E(J)", "stops")
	for _, d := range []lgvoffload.Deployment{
		lgvoffload.DeployLocal(),
		lgvoffload.DeployAdaptive(lgvoffload.HostEdge, 8, lgvoffload.GoalMCT),
	} {
		res, err := lgvoffload.Run(core.MissionConfig{
			Workload:   lgvoffload.NavigationWithMap,
			Map:        office,
			Start:      geom.P(station.X, station.Y, 0),
			Waypoints:  stops,
			Goal:       station,
			WAP:        geom.V(4.2, corridorY),
			Deployment: d,
			Seed:       17,
			MaxSimTime: 1800,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8v %9.1f %9.0f %10s\n",
			d.Name, res.Success, res.TotalTime, res.TotalEnergy, res.Reason)
	}
}
