// Quickstart: the smallest useful program — run one navigation mission
// with adaptive offloading and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lgvoffload"
)

func main() {
	cfg := lgvoffload.MissionConfig{
		Workload:   lgvoffload.NavigationWithMap,
		Map:        lgvoffload.LabMap(),
		Start:      lgvoffload.Pose(0.6, 0.6, 0),
		Goal:       lgvoffload.Point(11, 5),
		WAP:        lgvoffload.Point(6, 3),
		Deployment: lgvoffload.DeployAdaptive(lgvoffload.HostEdge, 8, lgvoffload.GoalMCT),
		Seed:       1,
	}

	res, err := lgvoffload.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mission success: %v (%s)\n", res.Success, res.Reason)
	fmt.Printf("completion time: %.1f s (moving %.1f s, standby %.1f s)\n",
		res.TotalTime, res.MovingTime, res.StandbyTime)
	fmt.Printf("total energy:    %.0f J\n", res.TotalEnergy)
	fmt.Printf("velocity cap:    %.2f m/s on average\n", res.AvgMaxVel)
	fmt.Printf("adaptation:      %d placement switches, %d/%d messages dropped\n",
		res.Switches, res.MsgsDropped, res.MsgsSent)
}
