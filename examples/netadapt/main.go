// Network-adaptation example: the paper's robustness scenario (§VI,
// Fig. 11). The LGV drives down a long corridor away from its wireless
// access point into a dead zone and back. With static offloading the
// velocity commands start dropping and the robot starves; the adaptive
// controller (Algorithm 2) watches packet bandwidth and signal direction,
// pulls computation back on board before the link dies, and re-offloads
// on the way home.
//
//	go run ./examples/netadapt
package main

import (
	"fmt"
	"log"

	"lgvoffload"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/world"
)

func main() {
	corridor := world.EmptyRoomMap(26, 3, 0.1)
	wap := lgvoffload.Point(1, 1.5)
	link := netsim.DefaultEdgeLink(geom.V(wap.X, wap.Y))
	link.GoodRange = 4
	link.FadeRange = 10

	base := lgvoffload.MissionConfig{
		Workload:    lgvoffload.NavigationWithMap,
		Map:         corridor,
		Start:       lgvoffload.Pose(1, 1.5, 0),
		Goal:        lgvoffload.Point(24, 1.5),
		WAP:         wap,
		LinkCfg:     &link,
		Seed:        5,
		MaxSimTime:  1200,
		RecordTrace: true,
	}

	fmt.Println("corridor run: WAP at x=1 m, goal at x=24 m, dead zone beyond x≈11 m")
	fmt.Printf("%-12s %8s %9s %9s %8s %9s\n",
		"policy", "success", "time(s)", "stdby(s)", "drops", "switches")

	for _, d := range []lgvoffload.Deployment{
		lgvoffload.DeployAdaptive(lgvoffload.HostEdge, 8, lgvoffload.GoalMCT),
		lgvoffload.DeployEdge(8), // static: pinned to the gateway
	} {
		cfg := base
		cfg.Deployment = d
		res, err := lgvoffload.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8v %9.1f %9.1f %8d %9d\n",
			d.Name[:min(12, len(d.Name))], res.Success, res.TotalTime,
			res.StandbyTime, res.MsgsDropped, res.Switches)

		if d.Mode == lgvoffload.DeployAdaptive(lgvoffload.HostEdge, 8, lgvoffload.GoalMCT).Mode {
			fmt.Println("\n  adaptive trace (t, x-position proxy, bandwidth, remote?):")
			step := len(res.Trace) / 16
			if step < 1 {
				step = 1
			}
			for i := 0; i < len(res.Trace); i += step {
				tp := res.Trace[i]
				mark := "REMOTE"
				if !tp.RemoteOn {
					mark = "local"
				}
				fmt.Printf("    t=%5.1fs  signal=%.2f  bw=%4.1f msg/s  dir=%+.2f  %s\n",
					tp.T, tp.Signal, tp.Bandwidth, tp.Direction, mark)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nAlgorithm 2 reads the drop in received bandwidth + the receding signal")
	fmt.Println("direction and invokes the offloaded nodes locally before the link dies;")
	fmt.Println("tail latency alone would have kept looking healthy (Fig. 7).")
}
