// Navigation example: a package-delivery scenario. The LGV crosses the
// lab to a drop-off point under every offloading deployment, reproducing
// the paper's core comparison — local vs edge vs cloud, with and without
// the Fig. 5 parallel acceleration — on one custom floor plan.
//
//	go run ./examples/navigation
package main

import (
	"fmt"
	"log"

	"lgvoffload"
)

// The warehouse aisle where the delivery happens: two shelf rows with a
// crossing gaps. Drawn at 10 cm resolution (each char = 0.1 m): an
// 8 m × 2.6 m floor with 0.8 m aisles.
const warehouse = `
################################################################################
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#.....##################......##################......################.........#
#.....##################......##################......################.........#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#.....##################......##################......################.........#
#.....##################......##################......################.........#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
#..............................................................................#
################################################################################
`

func main() {
	m, err := lgvoffload.ParseMap(warehouse, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	deployments := []lgvoffload.Deployment{
		lgvoffload.DeployLocal(),
		lgvoffload.DeployEdge(1),
		lgvoffload.DeployEdge(8),
		lgvoffload.DeployCloud(1),
		lgvoffload.DeployCloud(12),
	}

	fmt.Println("package delivery across the warehouse (start → far corner)")
	fmt.Printf("%-10s %8s %9s %9s %10s %10s\n",
		"deploy", "success", "time(s)", "E(J)", "vmax(m/s)", "drops")

	var localTime, localEnergy float64
	for _, d := range deployments {
		res, err := lgvoffload.Run(lgvoffload.MissionConfig{
			Workload:   lgvoffload.NavigationWithMap,
			Map:        m,
			Start:      lgvoffload.Pose(0.5, 1.3, 0),
			Goal:       lgvoffload.Point(7.5, 0.5),
			WAP:        lgvoffload.Point(4, 1.3),
			Deployment: d,
			Seed:       11,
			MaxSimTime: 900,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8v %9.1f %9.0f %10.3f %6d/%d\n",
			d.Name, res.Success, res.TotalTime, res.TotalEnergy,
			res.AvgMaxVel, res.MsgsDropped, res.MsgsSent)
		if d.Name == "local" {
			localTime, localEnergy = res.TotalTime, res.TotalEnergy
		} else if d.Name == "edge+8T" {
			fmt.Printf("           → vs local: %.1fx faster, %.1fx less energy\n",
				localTime/res.TotalTime, localEnergy/res.TotalEnergy)
		}
	}
}
