//go:build !race

package lgvoffload

// Steady-state allocation bounds for the pooled hot paths. These run via
// `make bench` (no race detector: -race instruments allocations and
// would both distort the counts and fail the bounds), while `make check`
// excludes them through the build tag above.

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/store"
	"lgvoffload/internal/trace"
	"lgvoffload/internal/tracker"
	"lgvoffload/internal/wire"
	"lgvoffload/internal/world"
)

// TestAllocTrackerPlanSteadyState: after warm-up, a parallel plan on the
// persistent pool reuses its closure, result slots and staging struct —
// no per-tick allocations.
func TestAllocTrackerPlanSteadyState(t *testing.T) {
	m := world.LabMap()
	ccfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(ccfg)
	cm.SetStatic(m)
	tcfg := tracker.DefaultConfig()
	tcfg.WSamples = 40
	tcfg.VSamples = 25
	tk := tracker.New(tcfg)
	in := tracker.Input{
		Pose: geom.P(1, 1, 0), Vel: geom.Twist{V: 0.1},
		Path:    []geom.Vec2{geom.V(1, 1), geom.V(5, 1)},
		Costmap: cm,
	}
	for i := 0; i < 3; i++ { // warm the pool and the result slots
		if _, err := tk.PlanParallel(in, 4, tracker.Block); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tk.PlanParallel(in, 4, tracker.Block); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("PlanParallel steady state allocates %.1f/op, want <= 2", allocs)
	}
}

// TestAllocSLAMUpdateSteadyState: with resampling disabled (no clones)
// and the tile working set warmed, a parallel update allocates nothing —
// scratch, results and the worker closure are all reused.
func TestAllocSLAMUpdateSteadyState(t *testing.T) {
	ds := trace.LabDataset(11, 4)
	cfg := slam.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cfg.NumParticles = 8
	cfg.ResampleNeff = 0 // isolate the update path from COW clone traffic
	s := slam.New(cfg, rand.New(rand.NewSource(7)))
	s.SetInitialPose(ds.Start)
	e := ds.Entries[0]
	still := geom.Pose{}
	for i := 0; i < 3; i++ { // allocate the beam's tiles once
		s.UpdateParallel(still, e.Scan, 4, slam.Block)
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.UpdateParallel(still, e.Scan, 4, slam.Block)
	})
	if allocs > 2 {
		t.Errorf("UpdateParallel steady state allocates %.1f/op, want <= 2", allocs)
	}
}

// TestAllocWireEncodeSteadyState: the pooled encoder plane encodes a
// scan-sized frame and reports frame sizes without allocating.
func TestAllocWireEncodeSteadyState(t *testing.T) {
	scan := &msg.Scan{
		AngleMin: -3.14, AngleInc: 0.0174, MaxRange: 3.5,
		Ranges: make([]float64, 360),
	}
	wire.EncodedSize(scan) // warm the pool with a scan-sized buffer
	allocs := testing.AllocsPerRun(100, func() {
		e := wire.GetEncoder()
		wire.EncodeFrameTo(e, scan)
		wire.PutEncoder(e)
	})
	if allocs > 0 {
		t.Errorf("pooled encode allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		_ = wire.EncodedSize(scan)
	})
	if allocs > 0 {
		t.Errorf("EncodedSize allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocStoreRecorderDisabled: with recording disabled (the default
// nil *store.Recorder in MissionConfig.Store), the engine's per-tick
// record hooks must cost nothing — every Recorder method is a nil-safe
// no-op and the flat recItem union never escapes.
func TestAllocStoreRecorderDisabled(t *testing.T) {
	var rec *store.Recorder
	tick := store.Tick{T: 1, VDP: 0.04, EnergyJ: 12, Bandwidth: 80, MaxVel: 0.3}
	dec := store.Decision{T: 1, Reason: "alg1", From: "lgv", To: "edge"}
	sr := store.SpanRow{T: 1, Makespan: 0.04, Compute: 0.03}
	allocs := testing.AllocsPerRun(100, func() {
		rec.Tick(tick)
		rec.Decision(dec)
		rec.SpanRow(sr)
		rec.Fault(store.Fault{Kind: "wap", T0: 1, T1: 2})
		_ = rec.Dropped()
		_ = rec.ID()
	})
	if allocs > 0 {
		t.Errorf("disabled recorder allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocFlightSLODisabled: the default observability plane (nil
// flight recorder, nil SLO engine — what every mission without -flightrec
// or -slo runs with) must cost nothing per tick.
func TestAllocFlightSLODisabled(t *testing.T) {
	var fr *obs.FlightRecorder
	var slo *obs.SLOEngine
	frame := obs.FlightFrame{T: 1, VDP: 0.04, EnergyJ: 12}
	sample := obs.SLOSample{T: 1, VDP: 0.04, EnergyJ: 12, Staleness: 0.2}
	allocs := testing.AllocsPerRun(100, func() {
		fr.Record(frame)
		fr.Emit(obs.Event{Kind: obs.KindTick, T0: 1})
		_ = fr.Dump("x", "", 1)
		_ = slo.Observe(sample)
		_ = slo.Health()
	})
	if allocs > 0 {
		t.Errorf("disabled flight/SLO path allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocFlightSLOEnabledSteadyState: with the recorder and the full
// default rule set enabled and the rolling windows warm, one tick's
// observability work (ring write + event mirror + four rule
// evaluations) stays within the 2 allocs/tick budget. In practice it is
// zero: the frame ring is preallocated, the SLO windows grow once, and
// the p99 sort reuses its scratch buffer.
func TestAllocFlightSLOEnabledSteadyState(t *testing.T) {
	fr := obs.NewFlightRecorder(obs.FlightConfig{})
	slo := obs.NewSLOEngine(obs.DefaultSLORules())
	tt := 0.0
	tick := func() {
		tt += 0.2
		fr.Record(obs.FlightFrame{T: tt, VDP: 0.04, EnergyJ: 10 * tt, Sent: int(tt * 5)})
		fr.Emit(obs.Event{Kind: obs.KindTick, T0: tt, Value: tt})
		// Healthy steady state: no rule fires, Observe returns nil.
		if b := slo.Observe(obs.SLOSample{T: tt, VDP: 0.04, EnergyJ: 10 * tt, Staleness: 0.2}); b != nil {
			t.Fatalf("steady-state sample raised breaches: %+v", b)
		}
	}
	// Warm every rolling window past its longest rule window (30 s).
	for i := 0; i < 200; i++ {
		tick()
	}
	allocs := testing.AllocsPerRun(100, tick)
	if allocs > 2 {
		t.Errorf("enabled flight/SLO steady state allocates %.1f/tick, want <= 2", allocs)
	}
}
