package lgvoffload_test

import (
	"fmt"

	"lgvoffload"
)

// ExampleRun runs the smallest complete mission: navigate a small room
// with the ECNs offloaded to the edge gateway.
func ExampleRun() {
	res, err := lgvoffload.Run(lgvoffload.MissionConfig{
		Workload:   lgvoffload.NavigationWithMap,
		Map:        lgvoffload.EmptyRoomMap(6, 4, 0.05),
		Start:      lgvoffload.Pose(0.8, 2, 0),
		Goal:       lgvoffload.Point(5.2, 2),
		WAP:        lgvoffload.Point(3, 2),
		Deployment: lgvoffload.DeployEdge(8),
		Seed:       3,
		MaxSimTime: 300,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("success:", res.Success)
	fmt.Println("reason:", res.Reason)
	// Output:
	// success: true
	// reason: goal reached
}

// ExampleParseMap builds a world from ASCII art.
func ExampleParseMap() {
	m, err := lgvoffload.ParseMap("#####\n#...#\n#####", 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d x %d cells\n", m.Width, m.Height)
	// Output:
	// 5 x 3 cells
}

// ExampleExperiments lists the regenerable paper artifacts.
func ExampleExperiments() {
	for _, e := range lgvoffload.Experiments()[:3] {
		fmt.Println(e.ID)
	}
	// Output:
	// table1
	// table2
	// fig3
}

// ExampleDeployAdaptive shows the adaptive deployment the paper's
// end-to-end system uses: Algorithms 1 and 2 at runtime.
func ExampleDeployAdaptive() {
	d := lgvoffload.DeployAdaptive(lgvoffload.HostCloud, 12, lgvoffload.GoalEC)
	fmt.Println(d.Name)
	// Output:
	// adaptive-EC(cloud)
}
