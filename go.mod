module lgvoffload

go 1.22
