# Tier-1 gate (ROADMAP.md): everything must pass before a change lands.
.PHONY: check fmt vet build test chaos bench bench-gate reproduce trace-demo hunt advhunt fuzz-smoke dash-smoke serve-smoke

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

# -shuffle=on randomizes test order within each package so hidden
# order dependencies (package-level singletons, registry state) fail
# here instead of in a future refactor.
test:
	go test -race -shuffle=on ./...

# Fault-injection suite twice over: the chaos tests assert that the same
# seed + schedule reproduce the same decisions, so -count=2 shakes out
# hidden wall-clock or global-rand dependencies.
chaos:
	go test -race -run Chaos -count=2 ./...

# Benchmark trajectory: enforce the steady-state allocation bounds (the
# TestAlloc* tests are !race-tagged — the race detector's allocation
# instrumentation would distort them), then run the full benchmark sweep
# and record ns/op, B/op, allocs/op into BENCH_PR9.json's `current`
# section (the pinned `baseline` section is preserved).
bench:
	go test -run 'TestAlloc' -count=1 .
	go run ./cmd/benchjson -out BENCH_PR9.json

# Benchmark regression gate: re-run the sweep and fail if any benchmark
# regressed by more than BENCH_TOL (relative ns/op or allocs/op) against
# the committed numbers. This is a gating CI job. The default tolerance
# is deliberately generous — the end-to-end mission benches jitter ±10%
# run-to-run on a loaded host while real regressions (the kind this PR
# hunted) move 2-4x — so red means regression, not weather. Tighten for
# a quiet box (`make bench-gate BENCH_TOL=0.05`) or loosen for a very
# noisy one (`BENCH_TOL=0.5`). BENCH_REPORT (optional) also writes the
# comparison as JSON for the CI artifact.
BENCH_TOL ?= 0.25
BENCH_REPORT ?=
bench-gate:
	go test -run 'TestAlloc' -count=1 .
	go run ./cmd/benchjson -gate BENCH_PR9.json -tol $(BENCH_TOL) \
		$(if $(BENCH_REPORT),-report $(BENCH_REPORT))

reproduce:
	go run ./cmd/reproduce -exp all

# Scenario-matrix hunt (internal/simtest): generate SEEDS missions
# across worlds × faults × goals × fleets × threads × links, check the
# paper-invariant library on each, and shrink any violation into a JSON
# repro under internal/simtest/testdata/repros/ (replayed by tier-1
# tests from then on). START offsets the seed range for fresh coverage.
SEEDS ?= 200
START ?= 0
hunt:
	go run ./cmd/scenhunt -seeds $(SEEDS) -start $(START) -matrix-every 25 \
		-repros internal/simtest/testdata/repros

# Adversarial fault-schedule search (internal/simtest): hill-climb over
# scripted fault schedules for the one that maximizes mission energy,
# against an equal-budget random baseline. Exits nonzero if the search
# fails to beat random by MIN_GAIN or if the worst case doesn't replay
# bit-identically. ADV_SEED picks the base mission + search stream.
ADV_SEED ?= 1
ADV_EVALS ?= 40
MIN_GAIN ?= 0.10
advhunt:
	go run ./cmd/advhunt -seed $(ADV_SEED) -search-seed $(ADV_SEED) \
		-evals $(ADV_EVALS) -min-gain $(MIN_GAIN) \
		-repros internal/simtest/testdata/repros

# 30-second fuzz smoke over every fuzz target (wire decode, grid
# parser, msg header): quick enough for CI, long enough to catch
# shallow regressions against the committed corpora.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire
	go test -run '^$$' -fuzz FuzzRoundtrip -fuzztime 10s ./internal/wire
	go test -run '^$$' -fuzz FuzzParseText -fuzztime 10s ./internal/grid
	go test -run '^$$' -fuzz FuzzIntegrateBeamFixed -fuzztime 10s ./internal/grid
	go test -run '^$$' -fuzz FuzzHeaderDecode -fuzztime 30s ./internal/msg

# Dashboard smoke: short mission with the mission store and HTTP
# inspector attached, probed from outside with curl (/missions, /fleet,
# /dash, the first /live SSE event) and read back with cmd/lgvstore.
dash-smoke:
	sh scripts/dash_smoke.sh

# Control-plane smoke: start `lgvsim -serve`, admit missions over the
# HTTP API with curl, poll them to success, SIGTERM-drain the daemon
# and read the flushed store back with cmd/lgvstore.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end tracing proof: run a short traced mission, then validate the
# exported Chrome JSON (well-formed, monotonic timestamps, every parent
# span present) with tracecheck. Artifacts land in /tmp.
trace-demo:
	go run ./cmd/lgvsim -deploy adaptive -map deadzone -maxtime 120 \
		-trace /tmp/lgv-trace.json -spans /tmp/lgv-spans.jsonl
	go run ./cmd/tracecheck /tmp/lgv-trace.json
