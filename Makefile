# Tier-1 gate (ROADMAP.md): everything must pass before a change lands.
.PHONY: check fmt vet build test chaos bench reproduce

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Fault-injection suite twice over: the chaos tests assert that the same
# seed + schedule reproduce the same decisions, so -count=2 shakes out
# hidden wall-clock or global-rand dependencies.
chaos:
	go test -race -run Chaos -count=2 ./...

bench:
	go test -bench=. -benchmem ./...

reproduce:
	go run ./cmd/reproduce -exp all
