# Tier-1 gate (ROADMAP.md): everything must pass before a change lands.
.PHONY: check fmt vet build test chaos bench reproduce trace-demo

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

# Fault-injection suite twice over: the chaos tests assert that the same
# seed + schedule reproduce the same decisions, so -count=2 shakes out
# hidden wall-clock or global-rand dependencies.
chaos:
	go test -race -run Chaos -count=2 ./...

# Benchmark trajectory: enforce the steady-state allocation bounds (the
# TestAlloc* tests are !race-tagged — the race detector's allocation
# instrumentation would distort them), then run the full benchmark sweep
# and record ns/op, B/op, allocs/op into BENCH_PR4.json's `current`
# section (the pinned `baseline` section is preserved).
bench:
	go test -run 'TestAlloc' -count=1 .
	go run ./cmd/benchjson -out BENCH_PR4.json

reproduce:
	go run ./cmd/reproduce -exp all

# End-to-end tracing proof: run a short traced mission, then validate the
# exported Chrome JSON (well-formed, monotonic timestamps, every parent
# span present) with tracecheck. Artifacts land in /tmp.
trace-demo:
	go run ./cmd/lgvsim -deploy adaptive -map deadzone -maxtime 120 \
		-trace /tmp/lgv-trace.json -spans /tmp/lgv-spans.jsonl
	go run ./cmd/tracecheck /tmp/lgv-trace.json
