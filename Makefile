# Tier-1 gate (ROADMAP.md): everything must pass before a change lands.
.PHONY: check vet build test bench reproduce

check: vet build test

vet:
	go vet ./...

build:
	go build ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

reproduce:
	go run ./cmd/reproduce -exp all
