package lgvoffload

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablation benches DESIGN.md calls out. Kernel benches measure
// real wall time of the real implementations (parallel scan matching,
// parallel trajectory scoring); experiment benches run the quick-mode
// harness end to end. Regenerating the paper-scale reports is
// cmd/reproduce's job — these benches keep the pipelines honest and
// allocation-aware.

import (
	"io"
	"math/rand"
	"testing"

	"lgvoffload/internal/core"
	"lgvoffload/internal/costmap"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/timing"
	"lgvoffload/internal/trace"
	"lgvoffload/internal/tracker"
	"lgvoffload/internal/world"
)

// --- Table I ---------------------------------------------------------------

func BenchmarkTable1PowerModel(b *testing.B) {
	m := energy.Turtlebot3Model()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.ComputePower(5.6e9)
		_ = m.TransmitEnergy(2940)
	}
}

// --- Table II ---------------------------------------------------------------

func BenchmarkTable2CycleBreakdown(b *testing.B) {
	cfg := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        EmptyRoomMap(6, 4, 0.05),
		Start:      Pose(0.8, 2, 0),
		Goal:       Point(5.2, 2),
		WAP:        Point(3, 2),
		Deployment: DeployEdge(8),
		Seed:       3,
		MaxSimTime: 300,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil || !res.Success {
			b.Fatalf("mission failed: %v %v", err, res)
		}
		_ = res.Cycles.Breakdown()
	}
}

// --- Fig. 9: the real parallel gmapping kernel ------------------------------

func benchSLAM(b *testing.B, particles, threads int) {
	ds := trace.LabDataset(11, 12)
	cfg := slam.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cfg.NumParticles = particles
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := slam.New(cfg, rand.New(rand.NewSource(7)))
		s.SetInitialPose(ds.Start)
		b.StartTimer()
		for _, e := range ds.Entries {
			if threads > 1 {
				s.UpdateParallel(e.OdomDelta, e.Scan, threads, slam.Block)
			} else {
				s.Update(e.OdomDelta, e.Scan)
			}
		}
	}
}

func BenchmarkFig9SLAM_P10_T1(b *testing.B)  { benchSLAM(b, 10, 1) }
func BenchmarkFig9SLAM_P10_T4(b *testing.B)  { benchSLAM(b, 10, 4) }
func BenchmarkFig9SLAM_P30_T1(b *testing.B)  { benchSLAM(b, 30, 1) }
func BenchmarkFig9SLAM_P30_T4(b *testing.B)  { benchSLAM(b, 30, 4) }
func BenchmarkFig9SLAM_P30_T8(b *testing.B)  { benchSLAM(b, 30, 8) }
func BenchmarkFig9SLAM_P100_T8(b *testing.B) { benchSLAM(b, 100, 8) }

// BenchmarkFig9PlatformModel sweeps the calibrated platform model (what
// cmd/reproduce prints) — pure arithmetic, no kernels.
func BenchmarkFig9PlatformModel(b *testing.B) {
	w := hostsim.Work{SerialCycles: 0.1e9, ParallelCycles: 3.2e9}
	plats := []hostsim.Platform{hostsim.RaspberryPi(), hostsim.EdgeGateway(), hostsim.CloudServer()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range plats {
			for _, th := range []int{1, 2, 4, 8, 12, 24} {
				_ = p.ExecTime(w, th)
			}
		}
	}
}

// --- Fig. 10: the real parallel trajectory-scoring kernel -------------------

func benchVDP(b *testing.B, samples, threads int) {
	m := world.LabMap()
	ccfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(ccfg)
	cm.SetStatic(m)
	tcfg := tracker.DefaultConfig()
	tcfg.WSamples = 40
	tcfg.VSamples = samples / 40
	if tcfg.VSamples < 1 {
		tcfg.VSamples = 1
	}
	tk := tracker.New(tcfg)
	in := tracker.Input{
		Pose: geom.P(1, 1, 0), Vel: geom.Twist{V: 0.1},
		Path:    []geom.Vec2{geom.V(1, 1), geom.V(5, 1)},
		Costmap: cm,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if threads > 1 {
			_, err = tk.PlanParallel(in, threads, tracker.Block)
		} else {
			_, err = tk.Plan(in)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10VDP_S200_T1(b *testing.B)  { benchVDP(b, 200, 1) }
func BenchmarkFig10VDP_S1000_T1(b *testing.B) { benchVDP(b, 1000, 1) }
func BenchmarkFig10VDP_S1000_T4(b *testing.B) { benchVDP(b, 1000, 4) }
func BenchmarkFig10VDP_S2000_T8(b *testing.B) { benchVDP(b, 2000, 8) }

// --- Fig. 11: the wireless walk ---------------------------------------------

func BenchmarkFig11NetworkWalk(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		link := netsim.NewLink(netsim.DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(3)))
		bw := netsim.NewBandwidthMeter()
		ctl := core.NewNetController(4)
		for t := 0.2; t < 90; t += 0.2 {
			x := 0.35 * t
			if t > 45 {
				x = 0.35 * (90 - t)
			}
			link.SetRobotPos(geom.V(x, 0))
			if arrive, dropped := link.Send(t, 64); !dropped {
				bw.Observe(arrive)
			}
			ctl.Update(bw.Rate(t), link.Direction())
		}
	}
}

// --- Fig. 12 / Fig. 13: end-to-end missions ---------------------------------

func benchMission(b *testing.B, d Deployment) {
	cfg := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        EmptyRoomMap(6, 4, 0.05),
		Start:      Pose(0.8, 2, 0),
		Goal:       Point(5.2, 2),
		WAP:        Point(3, 2),
		Deployment: d,
		Seed:       3,
		MaxSimTime: 300,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil || !res.Success {
			b.Fatalf("mission failed: %v", err)
		}
	}
}

func BenchmarkFig12MaxVelocityLocal(b *testing.B) { benchMission(b, DeployLocal()) }
func BenchmarkFig12MaxVelocityEdge8(b *testing.B) { benchMission(b, DeployEdge(8)) }

func BenchmarkFig13EndToEndCloud12(b *testing.B) { benchMission(b, DeployCloud(12)) }
func BenchmarkFig13EndToEndAdaptive(b *testing.B) {
	benchMission(b, DeployAdaptive(HostEdge, 8, GoalMCT))
}

// --- Fig. 14: obstacle-course run -------------------------------------------

func BenchmarkFig14ObstacleCourse(b *testing.B) {
	cfg := MissionConfig{
		Workload:    NavigationWithMap,
		Map:         EmptyRoomMap(8, 4, 0.05),
		Start:       Pose(0.8, 2, 0),
		Goal:        Point(7, 2),
		WAP:         Point(4, 2),
		Deployment:  DeployEdge(8),
		Seed:        21,
		MaxSimTime:  300,
		VCeil:       0.6,
		RecordTrace: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil || !res.Success {
			b.Fatalf("mission failed: %v", err)
		}
	}
}

// --- Telemetry overhead -------------------------------------------------------

// The telemetry pair bounds the observer effect: the disabled run is the
// allocation baseline (nil *Telemetry, every hook a no-op), the enabled
// run pays for the ring and registry. Compare allocs/op between the two.
func BenchmarkMissionTelemetryOff(b *testing.B) { benchMissionTelemetry(b, false) }
func BenchmarkMissionTelemetryOn(b *testing.B)  { benchMissionTelemetry(b, true) }

func benchMissionTelemetry(b *testing.B, enabled bool) {
	cfg := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        EmptyRoomMap(6, 4, 0.05),
		Start:      Pose(0.8, 2, 0),
		Goal:       Point(5.2, 2),
		WAP:        Point(3, 2),
		Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:       3,
		MaxSimTime: 300,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if enabled {
			cfg.Telemetry = NewTelemetry(1 << 14)
		}
		res, err := Run(cfg)
		if err != nil || !res.Success {
			b.Fatalf("mission failed: %v", err)
		}
	}
}

// --- Tracing overhead ---------------------------------------------------------

// The tracing pair mirrors the telemetry one: disabled (nil *Tracer,
// every instrumented call a no-op) vs enabled (span ring on). The unit
// proof that the disabled path allocates nothing per tick lives in
// internal/spans (TestDisabledZeroAlloc); this pair shows the
// whole-mission cost of both settings.
func BenchmarkMissionTracingOff(b *testing.B) { benchMissionTracing(b, false) }
func BenchmarkMissionTracingOn(b *testing.B)  { benchMissionTracing(b, true) }

func benchMissionTracing(b *testing.B, enabled bool) {
	cfg := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        EmptyRoomMap(6, 4, 0.05),
		Start:      Pose(0.8, 2, 0),
		Goal:       Point(5.2, 2),
		WAP:        Point(3, 2),
		Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:       3,
		MaxSimTime: 300,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if enabled {
			cfg.Tracer = NewTracer(1 << 16)
		}
		res, err := Run(cfg)
		if err != nil || !res.Success {
			b.Fatalf("mission failed: %v", err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

// Partitioning strategy for the parallel scan matcher: block (Fig. 6)
// vs interleaved. Results are identical; this measures the cost shape.
func BenchmarkAblationPartitionBlock(b *testing.B)       { benchSLAMPart(b, slam.Block) }
func BenchmarkAblationPartitionInterleaved(b *testing.B) { benchSLAMPart(b, slam.Interleaved) }

func benchSLAMPart(b *testing.B, part slam.Partition) {
	ds := trace.LabDataset(11, 10)
	cfg := slam.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cfg.NumParticles = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := slam.New(cfg, rand.New(rand.NewSource(7)))
		s.SetInitialPose(ds.Start)
		b.StartTimer()
		for _, e := range ds.Entries {
			s.UpdateParallel(e.OdomDelta, e.Scan, 4, part)
		}
	}
}

// Queue depth for VDP topics: one-length (fresh data, overwrites) vs a
// deep queue (no overwrites, stale data accumulates).
func BenchmarkAblationQueueDepth1(b *testing.B)  { benchQueueDepth(b, 1) }
func BenchmarkAblationQueueDepth32(b *testing.B) { benchQueueDepth(b, 32) }

func benchQueueDepth(b *testing.B, depth int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus := mw.NewBus(nil)
		sub := bus.Subscribe("cmd_vel", "lgv", depth)
		for k := 0; k < 1000; k++ {
			bus.Publish("cmd_vel", "lgv", &msg.Twist{Header: msg.Header{Seq: uint64(k)}}, float64(k)*0.2)
			if k%10 == 9 {
				sub.Latest()
			}
		}
	}
}

// The Eq. 1d / Eq. 2c coupling: sweep the velocity cap and evaluate the
// motor-energy vs mission-time trade analytically.
func BenchmarkAblationVelocityEnergy(b *testing.B) {
	spec := world.Turtlebot3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for tp := 0.01; tp < 1.0; tp += 0.01 {
			v := timing.MaxVelocity(tp, 0.8, 0.08)
			_ = spec.TractionPower(v, 0) * (10 / v) // energy for a 10 m leg
		}
	}
}

// Keep the io import honest (ExperimentSmoke exercises the public API).
func BenchmarkExperimentTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment("table1", io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}
