#!/bin/sh
# Dashboard smoke: run a short mission with the store and HTTP
# inspector attached, then probe the fleet-dashboard surface from the
# outside — missions listing, fleet aggregates, dashboard page, and the
# first SSE event off /live — and finally read the store back with
# cmd/lgvstore. Exercises exactly what a user gets from
# `lgvsim -store ... -http ...`.
set -eu

ADDR="${DASH_ADDR:-127.0.0.1:8321}"
STORE="${DASH_STORE:-/tmp/lgv-dash.lgvstore}"
BIN="${DASH_BIN:-/tmp/lgv-dash-bin}"

rm -f "$STORE"
mkdir -p "$BIN"
go build -o "$BIN/lgvsim" ./cmd/lgvsim
go build -o "$BIN/lgvstore" ./cmd/lgvstore

"$BIN/lgvsim" -maxtime 120 -map deadzone -faults "wap:20-35" \
    -store "$STORE" -http "$ADDR" >"$BIN/lgvsim.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The listener opens before the mission runs; give it a moment.
ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "dash-smoke: inspector never came up"; cat "$BIN/lgvsim.log"; exit 1; }

# Wait for the mission to finish and land in the store index.
ok=0
for _ in $(seq 1 150); do
    if curl -sf "http://$ADDR/missions" | grep -q '"end"'; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "dash-smoke: mission never finished in the store"; cat "$BIN/lgvsim.log"; exit 1; }

curl -sf "http://$ADDR/missions" | grep -q '"id": "m1"'
curl -sf "http://$ADDR/missions/m1" | grep -q '"ticks"'
curl -sf "http://$ADDR/fleet" | grep -q '"missions": 1'
curl -sf "http://$ADDR/dash" | grep -qi '<html'
curl -sf "http://$ADDR/timeline?limit=5" >/dev/null
# /live must hand every subscriber a first event immediately (the hello
# frame), even when the mission already ended — that is what makes this
# curl safe in CI.
curl -sN --max-time 5 "http://$ADDR/live" | grep -q -m1 "event: hello"

kill "$PID" 2>/dev/null || true
trap - EXIT

"$BIN/lgvstore" ls "$STORE"
"$BIN/lgvstore" stats "$STORE"
"$BIN/lgvstore" show "$STORE" m1 >/dev/null
echo "dash-smoke: OK (store at $STORE)"
