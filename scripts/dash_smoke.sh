#!/bin/sh
# Dashboard smoke: run a short mission with the store and HTTP
# inspector attached, then probe the fleet-dashboard surface from the
# outside — missions listing, fleet aggregates, dashboard page, the
# first SSE event off /live, the OpenMetrics exposition and the
# health/readiness probes — and finally read the store back with
# cmd/lgvstore. A second, deliberately SLO-breaching mission checks that
# a breach flips /health to 503 and freezes a flight bundle that
# `lgvsim -flight-verify` accepts. Exercises exactly what a user gets
# from `lgvsim -store ... -http ... -slo ... -flightrec`.
set -eu

ADDR="${DASH_ADDR:-127.0.0.1:8321}"
STORE="${DASH_STORE:-/tmp/lgv-dash.lgvstore}"
BIN="${DASH_BIN:-/tmp/lgv-dash-bin}"

rm -f "$STORE"
mkdir -p "$BIN"
go build -o "$BIN/lgvsim" ./cmd/lgvsim
go build -o "$BIN/lgvstore" ./cmd/lgvstore

"$BIN/lgvsim" -maxtime 120 -map deadzone -faults "wap:20-35" \
    -store "$STORE" -http "$ADDR" >"$BIN/lgvsim.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The listener opens before the mission runs; give it a moment.
ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "dash-smoke: inspector never came up"; cat "$BIN/lgvsim.log"; exit 1; }

# Wait for the mission to finish and land in the store index.
ok=0
for _ in $(seq 1 150); do
    if curl -sf "http://$ADDR/missions" | grep -q '"end"'; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "dash-smoke: mission never finished in the store"; cat "$BIN/lgvsim.log"; exit 1; }

curl -sf "http://$ADDR/missions" | grep -q '"id": "m1"'
curl -sf "http://$ADDR/missions/m1" | grep -q '"ticks"'
curl -sf "http://$ADDR/fleet" | grep -q '"missions": 1'
curl -sf "http://$ADDR/dash" | grep -qi '<html'
curl -sf "http://$ADDR/timeline?limit=5" >/dev/null
# /live must hand every subscriber a first event immediately (the hello
# frame), even when the mission already ended — that is what makes this
# curl safe in CI.
curl -sN --max-time 5 "http://$ADDR/live" | grep -q -m1 "event: hello"

# OpenMetrics: the scrape must parse as Prometheus text exposition
# (checked by the same validator the exporter's unit test uses) and the
# health probes must report a breach-free mission as live and ready.
curl -sf "http://$ADDR/metrics.prom" >"$BIN/metrics.prom"
"$BIN/lgvsim" -prom-verify "$BIN/metrics.prom"
curl -sf "http://$ADDR/health" | grep -q '"healthy": *true'
curl -sf "http://$ADDR/ready" | grep -q '"ready": *true'

kill "$PID" 2>/dev/null || true
trap - EXIT

# Forced-breach leg: an always-breaching SLO rule (idle energy accrues
# every tick, so the windowed rate is never <= 0) must trip the engine,
# flip /health to 503, and dump a flight bundle into -flight-dir.
FLIGHT_DIR="$BIN/flight"
ADDR2="${DASH_ADDR2:-127.0.0.1:8322}"
rm -rf "$FLIGHT_DIR"
mkdir -p "$FLIGHT_DIR"
"$BIN/lgvsim" -maxtime 60 -slo 'energy_rate<=0@10s' \
    -flight-dir "$FLIGHT_DIR" -http "$ADDR2" \
    >"$BIN/lgvsim-breach.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# The breach opens a few virtual seconds in; poll until /health trips.
ok=0
for _ in $(seq 1 150); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR2/health" 2>/dev/null) || code=0
    if [ "$code" = 503 ]; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "dash-smoke: /health never went 503 under a breached SLO"; cat "$BIN/lgvsim-breach.log"; exit 1; }
curl -s "http://$ADDR2/health" | grep -q '"healthy": *false'

kill "$PID" 2>/dev/null || true
trap - EXIT

# The breach dump landed in -flight-dir and must verify structurally.
BUNDLE=$(ls "$FLIGHT_DIR"/flight-*.jsonl 2>/dev/null | head -1)
[ -n "$BUNDLE" ] || { echo "dash-smoke: breach produced no flight bundle"; cat "$BIN/lgvsim-breach.log"; exit 1; }
"$BIN/lgvsim" -flight-verify "$BUNDLE"

# And under -slo-strict the same breached mission is a CI failure (3).
set +e
"$BIN/lgvsim" -maxtime 60 -slo 'energy_rate<=0@10s' -slo-strict \
    >"$BIN/lgvsim-strict.log" 2>&1
rc=$?
set -e
[ "$rc" = 3 ] || { echo "dash-smoke: -slo-strict exited $rc, want 3"; cat "$BIN/lgvsim-strict.log"; exit 1; }

"$BIN/lgvstore" ls "$STORE"
"$BIN/lgvstore" stats "$STORE"
"$BIN/lgvstore" show "$STORE" m1 >/dev/null
echo "dash-smoke: OK (store at $STORE)"
