#!/bin/sh
# Mission-control-plane smoke: start `lgvsim -serve` with a store
# attached, drive the HTTP mission API from the outside — admit three
# missions via curl, poll them to completion, check the scheduler
# stats on /healthz and the error contract (400 on garbage, 404 on an
# unknown id) — then shut the daemon down with SIGTERM and verify the
# drain flushed every mission, finished, into the store by reading it
# back with cmd/lgvstore. Exercises exactly what a user gets from
# `lgvsim -serve -http ... -store ...`.
set -eu

ADDR="${SERVE_ADDR:-127.0.0.1:8331}"
STORE="${SERVE_STORE:-/tmp/lgv-serve.lgvstore}"
BIN="${SERVE_BIN:-/tmp/lgv-serve-bin}"
N=3

rm -f "$STORE"
mkdir -p "$BIN"
go build -o "$BIN/lgvsim" ./cmd/lgvsim
go build -o "$BIN/lgvstore" ./cmd/lgvstore

"$BIN/lgvsim" -serve -http "$ADDR" -store "$STORE" \
    -serve-max-running 2 >"$BIN/serve.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "serve-smoke: daemon never came up"; cat "$BIN/serve.log"; exit 1; }
curl -sf "http://$ADDR/healthz" | grep -q '"accepting": *true'

# Admit N missions (max-running is 2, so the third queues briefly).
spec() {
    cat <<EOF
{"mission_seed": $1, "workload": "navigation",
 "world": {"kind": "empty", "w": 5, "h": 4, "res": 0.1},
 "start_x": 1, "start_y": 1, "goal_x": 1.8, "goal_y": 1.3,
 "deploy": {"mode": "local", "threads": 1}, "fleet": 1,
 "link": {"profile": "good", "wapx": 1, "wapy": 1},
 "max_sim_time": 20, "tracker_samples": 200}
EOF
}
i=1
while [ "$i" -le "$N" ]; do
    spec "$i" | curl -sf -XPOST --data-binary @- "http://$ADDR/missions" \
        | grep -q "\"id\": *\"j$i\"" \
        || { echo "serve-smoke: admit j$i failed"; cat "$BIN/serve.log"; exit 1; }
    i=$((i + 1))
done

# The error contract: garbage is a 400 with an error doc, an unknown
# mission a 404, and neither kills the daemon.
code=$(curl -s -o /dev/null -w '%{http_code}' -XPOST -d 'not json' "http://$ADDR/missions")
[ "$code" = 400 ] || { echo "serve-smoke: garbage spec gave $code, want 400"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/missions/zzz")
[ "$code" = 404 ] || { echo "serve-smoke: unknown id gave $code, want 404"; exit 1; }

# Poll every mission to a successful finish and fetch its full result.
i=1
while [ "$i" -le "$N" ]; do
    ok=0
    for _ in $(seq 1 150); do
        if curl -sf "http://$ADDR/missions/j$i" | grep -q '"state": *"done"'; then ok=1; break; fi
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "serve-smoke: j$i never finished"; cat "$BIN/serve.log"; exit 1; }
    curl -sf "http://$ADDR/missions/j$i/result" | grep -q '"success": *true' \
        || { echo "serve-smoke: j$i did not succeed"; exit 1; }
    i=$((i + 1))
done

# Scheduler stats surfaced on /healthz, and the inspection surface
# still serves underneath the mission API.
curl -sf "http://$ADDR/healthz" | grep -q "\"admitted\": *$N"
curl -sf "http://$ADDR/healthz" | grep -q "\"done\": *$N"
curl -sf "http://$ADDR/dash" | grep -qi '<html'
curl -sf "http://$ADDR/metrics" | grep -q 'serve_admitted'

# Graceful drain: SIGTERM must flush the store and exit cleanly.
kill -TERM "$PID"
ok=0
for _ in $(seq 1 100); do
    if ! kill -0 "$PID" 2>/dev/null; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "serve-smoke: daemon ignored SIGTERM"; cat "$BIN/serve.log"; exit 1; }
wait "$PID" 2>/dev/null || { echo "serve-smoke: daemon exited nonzero"; cat "$BIN/serve.log"; exit 1; }
trap - EXIT
grep -q 'drained: admitted=3 done=3' "$BIN/serve.log" \
    || { echo "serve-smoke: drain summary missing"; cat "$BIN/serve.log"; exit 1; }

# The store must hold all N missions, finished, under scheduler IDs.
[ "$("$BIN/lgvstore" ls "$STORE" | grep -c ' success ')" = "$N" ] \
    || { echo "serve-smoke: store missing missions"; "$BIN/lgvstore" ls "$STORE"; exit 1; }
"$BIN/lgvstore" stats "$STORE" | grep -q "$N missions: $N success, 0 failure, 0 unfinished"
"$BIN/lgvstore" show "$STORE" j1 >/dev/null
echo "serve-smoke: OK (store at $STORE)"
