package lgvoffload

// Integration tests of the public API surface: everything a downstream
// user touches must work without reaching into internal packages.

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPINavigation(t *testing.T) {
	res, err := Run(MissionConfig{
		Workload:   NavigationWithMap,
		Map:        EmptyRoomMap(6, 4, 0.05),
		Start:      Pose(0.8, 2, 0),
		Goal:       Point(5.2, 2),
		WAP:        Point(3, 2),
		Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:       1,
		MaxSimTime: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed: %s", res.Reason)
	}
	// Per-component energy is exposed in presentation order.
	var total float64
	for _, c := range EnergyComponents {
		total += res.Energy[c]
	}
	if diff := total - res.TotalEnergy; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("EnergyComponents incomplete: %v != %v", total, res.TotalEnergy)
	}
}

func TestPublicAPIParseMap(t *testing.T) {
	m, err := ParseMap("####\n#..#\n####", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 4 || m.Height != 3 {
		t.Errorf("dims %dx%d", m.Width, m.Height)
	}
	if _, err := ParseMap("#x", 0.1); err == nil {
		t.Error("bad map should error")
	}
}

func TestPublicAPIWorlds(t *testing.T) {
	if m := LabMap(); m.Width == 0 {
		t.Error("LabMap empty")
	}
	if m := ObstacleCourseMap(); m.Width == 0 {
		t.Error("ObstacleCourseMap empty")
	}
	if m := EmptyRoomMap(4, 4, 0.1); m.Width != 40 {
		t.Error("EmptyRoomMap dims")
	}
}

func TestPublicAPIDeployments(t *testing.T) {
	cases := []struct {
		d    Deployment
		name string
	}{
		{DeployLocal(), "local"},
		{DeployEdge(1), "edge"},
		{DeployEdge(8), "edge+8T"},
		{DeployCloud(12), "cloud+12T"},
		{DeployAdaptive(HostCloud, 12, GoalEC), "adaptive-EC(cloud)"},
	}
	for _, c := range cases {
		if c.d.Name != c.name {
			t.Errorf("deployment name %q, want %q", c.d.Name, c.name)
		}
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("experiments = %d", len(exps))
	}
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Turtlebot3") {
		t.Error("table1 output malformed")
	}
	if err := RunExperiment("nonsense", &buf, true); err == nil {
		t.Error("unknown experiment should error")
	}
}
