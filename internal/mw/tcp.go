package mw

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/wire"
)

// TCPEndpoint carries wire frames over a TCP stream with varint length
// framing — the reliable counterpart of UDPEndpoint. The paper's
// switcher supports both transports; the §VI argument hinges on their
// difference: TCP never drops a frame, so under a stalled link the
// receiver eventually gets a *backlog of stale data* (and its measured
// latency finally spikes), while the UDP one-length queue silently
// drops and always surfaces the freshest value. TestTCPBacklogVsUDPFreshness
// demonstrates exactly that contrast.
type TCPEndpoint struct {
	conn net.Conn
	bw   *bufio.Writer

	mu     sync.Mutex
	queue  []wire.Message
	recv   int
	errs   int
	closed bool
	done   chan struct{}
	sink   obs.Sink // nil when telemetry is off
}

// TCPListener accepts one peer connection.
type TCPListener struct {
	ln net.Listener
}

// ListenTCP opens a listener on addr ("127.0.0.1:0" for ephemeral).
func ListenTCP(addr string) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mw: listen tcp %s: %w", addr, err)
	}
	return &TCPListener{ln: ln}, nil
}

// Addr returns the listening address.
func (l *TCPListener) Addr() net.Addr { return l.ln.Addr() }

// Accept blocks for one connection and wraps it as an endpoint.
func (l *TCPListener) Accept() (*TCPEndpoint, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPEndpoint(conn), nil
}

// Close stops listening.
func (l *TCPListener) Close() error { return l.ln.Close() }

// DialTCP connects to a listener.
func DialTCP(addr string) (*TCPEndpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mw: dial tcp %s: %w", addr, err)
	}
	return newTCPEndpoint(conn), nil
}

func newTCPEndpoint(conn net.Conn) *TCPEndpoint {
	ep := &TCPEndpoint{conn: conn, bw: bufio.NewWriter(conn), done: make(chan struct{})}
	go ep.readLoop()
	return ep
}

// Send writes one length-framed message. Unlike UDP, the write blocks
// (or buffers) rather than dropping — reliability is the point and the
// problem.
func (ep *TCPEndpoint) Send(m wire.Message) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	wire.EncodeFrameTo(e, m)
	frame := e.Bytes()
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(frame)))
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return fmt.Errorf("mw: endpoint closed")
	}
	if _, err := ep.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := ep.bw.Write(frame); err != nil {
		return err
	}
	return ep.bw.Flush()
}

func (ep *TCPEndpoint) readLoop() {
	defer close(ep.done)
	br := bufio.NewReader(ep.conn)
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		if size > 1<<24 {
			ep.mu.Lock()
			ep.errs++
			ep.mu.Unlock()
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		m, err := wire.DecodeFrame(buf)
		ep.mu.Lock()
		if err != nil {
			ep.errs++
			if ep.sink != nil {
				ep.sink.Count(obs.MDecodeErrors, "tcp", 1)
			}
		} else {
			ep.recv++
			// No overwrite: TCP is reliable, so everything queues — the
			// backlog is the phenomenon under study.
			ep.queue = append(ep.queue, m)
			if ep.sink != nil {
				ep.sink.Count(obs.MFrames, "tcp", 1)
				ep.sink.SetGauge(obs.MBacklog, "tcp", float64(len(ep.queue)))
			}
		}
		ep.mu.Unlock()
	}
}

// SetSink attaches a telemetry sink for live frame/error/backlog
// counters (nil detaches).
func (ep *TCPEndpoint) SetSink(s obs.Sink) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.sink = s
}

// Poll removes and returns the oldest received message, if any.
func (ep *TCPEndpoint) Poll() (wire.Message, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.queue) == 0 {
		return nil, false
	}
	m := ep.queue[0]
	ep.queue = ep.queue[1:]
	if ep.sink != nil {
		ep.sink.SetGauge(obs.MBacklog, "tcp", float64(len(ep.queue)))
	}
	return m, true
}

// Pending returns the queued (not yet polled) message count — the
// backlog a stalled consumer accumulates.
func (ep *TCPEndpoint) Pending() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}

// Received returns the total decoded frames.
func (ep *TCPEndpoint) Received() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.recv
}

// Close shuts the connection down and waits for the reader to exit.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	err := ep.conn.Close()
	<-ep.done
	return err
}
