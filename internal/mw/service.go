package mw

import (
	"fmt"
	"sync"

	"lgvoffload/internal/wire"
)

// The Fig. 2 pipeline uses two communication paradigms: topics
// (subscriber/publisher, solid arrows) and services (client/server,
// dashed arrows) — Path Planning, for example, is *called* by the
// Exploration node rather than streaming. This file adds the service
// side: named handlers registered on a host, invoked across the fabric
// with the same latency/loss semantics as topic traffic.

// Handler processes one request at virtual time `now` (the arrival time
// at the server) and returns the response plus the service's processing
// time in seconds (from its host's platform model).
type Handler func(req wire.Message, now float64) (resp wire.Message, procTime float64, err error)

// ErrServiceUnavailable is returned when the request or response was
// lost in the fabric — to the client, an unreachable server and a lost
// datagram look identical.
var ErrServiceUnavailable = fmt.Errorf("mw: service unavailable")

type service struct {
	host    HostID
	handler Handler
}

// ServiceRegistry manages named services over a fabric. It is typically
// owned by the same Bus-holding component, but is independent so servers
// can be registered before any topics exist.
type ServiceRegistry struct {
	fabric Fabric

	mu       sync.Mutex
	services map[string]*service
	calls    int
	failures int
}

// NewServiceRegistry creates a registry over the fabric (nil = local).
func NewServiceRegistry(f Fabric) *ServiceRegistry {
	if f == nil {
		f = LocalFabric{}
	}
	return &ServiceRegistry{fabric: f, services: make(map[string]*service)}
}

// Register installs a handler for a named service on the given host.
// Re-registering replaces the previous handler (node migration moves a
// service between hosts).
func (r *ServiceRegistry) Register(name string, host HostID, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[name] = &service{host: host, handler: h}
}

// Unregister removes a service.
func (r *ServiceRegistry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.services, name)
}

// HostOf returns the host currently serving the name.
func (r *ServiceRegistry) HostOf(name string) (HostID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.services[name]
	if !ok {
		return "", false
	}
	return s.host, true
}

// Call invokes a service from the given host at virtual time now. The
// request crosses the fabric to the server, the handler runs (consuming
// its processing time), and the response crosses back. It returns the
// response and the virtual time at which the caller receives it.
func (r *ServiceRegistry) Call(name string, from HostID, req wire.Message, now float64) (resp wire.Message, doneAt float64, err error) {
	r.mu.Lock()
	s, ok := r.services[name]
	r.calls++
	r.mu.Unlock()
	if !ok {
		r.fail()
		return nil, 0, fmt.Errorf("mw: unknown service %q", name)
	}

	reqSize := wire.EncodedSize(req)
	reqArrive, dropped := r.fabric.Transfer(from, s.host, reqSize, now)
	if dropped {
		r.fail()
		return nil, 0, ErrServiceUnavailable
	}
	resp, proc, err := s.handler(req, reqArrive)
	if err != nil {
		r.fail()
		return nil, 0, fmt.Errorf("mw: service %q: %w", name, err)
	}
	if proc < 0 {
		proc = 0
	}
	respSize := wire.EncodedSize(resp)
	doneAt, dropped = r.fabric.Transfer(s.host, from, respSize, reqArrive+proc)
	if dropped {
		r.fail()
		return nil, 0, ErrServiceUnavailable
	}
	return resp, doneAt, nil
}

func (r *ServiceRegistry) fail() {
	r.mu.Lock()
	r.failures++
	r.mu.Unlock()
}

// Stats returns total calls and failed calls.
func (r *ServiceRegistry) Stats() (calls, failures int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls, r.failures
}
