package mw

import (
	"fmt"
	"net"
	"sync"
	"time"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/wire"
)

// UDPEndpoint sends and receives wire frames over a real UDP socket. It
// is the real-transport counterpart of the virtual-time Bus: the paper's
// Switcher uses an asynchronous UDP channel (evpp) between the LGV and
// the remote worker, and this endpoint reproduces that data path with the
// standard library, including the nonblocking "best-effort" semantics
// that make tail latency a misleading quality metric (§VI).
//
// Received frames land in a bounded queue; when the queue is full the
// oldest frame is overwritten, matching the one-length-queue freshness
// policy of VDP topics.
type UDPEndpoint struct {
	conn  *net.UDPConn
	depth int

	mu          sync.Mutex
	queue       []inFrame
	recv        int
	errs        int
	overwritten int // frames displaced by newer arrivals before Poll saw them
	closed      bool
	done        chan struct{}
	notify      chan struct{} // cap-1 wakeup for PollWaitFrom blockers
	sink        obs.Sink      // nil when telemetry is off
}

// inFrame is one decoded frame with the peer address it came from, so
// consumers can auto-register a reconnecting sender.
type inFrame struct {
	m    wire.Message
	from *net.UDPAddr
}

// ListenUDP opens an endpoint on the given address ("127.0.0.1:0" for an
// ephemeral port) with the given receive queue depth (<=0 means 1).
func ListenUDP(addr string, depth int) (*UDPEndpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("mw: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("mw: listen %s: %w", addr, err)
	}
	if depth <= 0 {
		depth = 1
	}
	ep := &UDPEndpoint{conn: conn, depth: depth,
		done: make(chan struct{}), notify: make(chan struct{}, 1)}
	go ep.readLoop()
	return ep, nil
}

// Addr returns the endpoint's bound address.
func (ep *UDPEndpoint) Addr() *net.UDPAddr { return ep.conn.LocalAddr().(*net.UDPAddr) }

// SetSink attaches a telemetry sink for live frame/error/overwrite
// counters (nil detaches).
func (ep *UDPEndpoint) SetSink(s obs.Sink) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.sink = s
}

// SendTo encodes and transmits a message to the given peer address. The
// frame is built in a pooled buffer released after the write, so the
// steady-state scan/cmd stream does not allocate per datagram.
func (ep *UDPEndpoint) SendTo(peer *net.UDPAddr, m wire.Message) error {
	e := wire.GetEncoder()
	wire.EncodeFrameTo(e, m)
	_, err := ep.conn.WriteToUDP(e.Bytes(), peer)
	wire.PutEncoder(e)
	return err
}

// SendToDeadline is SendTo with a write deadline: a blocked socket (full
// send buffer, vanished interface) errors out after d instead of
// wedging the caller. d <= 0 means no deadline.
func (ep *UDPEndpoint) SendToDeadline(peer *net.UDPAddr, m wire.Message, d time.Duration) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	wire.EncodeFrameTo(e, m)
	if d > 0 {
		if err := ep.conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer ep.conn.SetWriteDeadline(time.Time{})
	}
	_, err := ep.conn.WriteToUDP(e.Bytes(), peer)
	return err
}

func (ep *UDPEndpoint) readLoop() {
	defer close(ep.done)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		m, err := wire.DecodeFrame(buf[:n])
		ep.mu.Lock()
		if err != nil {
			ep.errs++
			if ep.sink != nil {
				ep.sink.Count(obs.MDecodeErrors, "udp", 1)
			}
		} else {
			ep.recv++
			if ep.sink != nil {
				ep.sink.Count(obs.MFrames, "udp", 1)
			}
			if len(ep.queue) >= ep.depth {
				drop := len(ep.queue) - ep.depth + 1
				ep.queue = ep.queue[drop:]
				ep.overwritten += drop
				if ep.sink != nil {
					ep.sink.Count(obs.MOverwrites, "udp", float64(drop))
				}
			}
			ep.queue = append(ep.queue, inFrame{m: m, from: from})
		}
		ep.mu.Unlock()
		if err == nil {
			// Wake one blocked PollWaitFrom; a full token already means a
			// wakeup is pending, so never block here.
			select {
			case ep.notify <- struct{}{}:
			default:
			}
		}
	}
}

// Poll removes and returns the oldest received message, if any.
func (ep *UDPEndpoint) Poll() (wire.Message, bool) {
	m, _, ok := ep.PollFrom()
	return m, ok
}

// PollFrom is Poll plus the sender's address, so a server endpoint can
// adopt whichever live peer is actually talking to it.
func (ep *UDPEndpoint) PollFrom() (wire.Message, *net.UDPAddr, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.queue) == 0 {
		return nil, nil, false
	}
	f := ep.queue[0]
	ep.queue = ep.queue[1:]
	return f.m, f.from, true
}

// PollWaitFrom blocks until a message arrives, the timeout elapses, or
// the endpoint closes. It replaces busy-poll loops: an idle consumer
// parks on a channel instead of burning a core.
func (ep *UDPEndpoint) PollWaitFrom(timeout time.Duration) (wire.Message, *net.UDPAddr, bool) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if m, from, ok := ep.PollFrom(); ok {
			return m, from, true
		}
		select {
		case <-ep.notify:
			// Re-check the queue; stale tokens just loop once more.
		case <-timer.C:
			return nil, nil, false
		case <-ep.done:
			// Drain anything that raced the socket close, then report.
			if m, from, ok := ep.PollFrom(); ok {
				return m, from, true
			}
			return nil, nil, false
		}
	}
}

// Received returns the count of successfully decoded frames.
func (ep *UDPEndpoint) Received() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.recv
}

// DecodeErrors returns the count of frames that failed to decode.
func (ep *UDPEndpoint) DecodeErrors() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.errs
}

// Overwritten returns how many decoded frames the bounded receive queue
// displaced before any Poll consumed them — previously these vanished
// silently, hiding how much uplink work the freshness policy discards.
func (ep *UDPEndpoint) Overwritten() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.overwritten
}

// Close shuts the socket down and waits for the read loop to exit.
func (ep *UDPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	err := ep.conn.Close()
	<-ep.done
	return err
}
