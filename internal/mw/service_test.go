package mw

import (
	"errors"
	"testing"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/wire"
)

// echoHandler returns the request as the response with the given
// processing time.
func echoHandler(proc float64) Handler {
	return func(req wire.Message, _ float64) (wire.Message, float64, error) {
		return req, proc, nil
	}
}

func TestServiceLocalCall(t *testing.T) {
	r := NewServiceRegistry(nil)
	r.Register("plan", "lgv", echoHandler(0.05))
	req := &msg.Goal{X: 1, Y: 2}
	resp, doneAt, err := r.Call("plan", "lgv", req, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*msg.Goal).X != 1 {
		t.Error("response mangled")
	}
	// Local fabric: done = now + proc.
	if doneAt != 10.05 {
		t.Errorf("doneAt = %v", doneAt)
	}
}

func TestServiceRemoteLatency(t *testing.T) {
	r := NewServiceRegistry(delayFabric{delay: 0.01})
	r.Register("plan", "cloud", echoHandler(0.05))
	_, doneAt, err := r.Call("plan", "lgv", &msg.Goal{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// now + uplink + proc + downlink.
	if doneAt != 1.0+0.01+0.05+0.01 {
		t.Errorf("doneAt = %v", doneAt)
	}
}

func TestServiceDroppedRequest(t *testing.T) {
	r := NewServiceRegistry(delayFabric{delay: 0.01, dropOver: 1})
	r.Register("plan", "cloud", echoHandler(0))
	_, _, err := r.Call("plan", "lgv", &msg.Goal{}, 0)
	if !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("err = %v", err)
	}
	calls, failures := r.Stats()
	if calls != 1 || failures != 1 {
		t.Errorf("stats = %d, %d", calls, failures)
	}
}

func TestServiceUnknown(t *testing.T) {
	r := NewServiceRegistry(nil)
	if _, _, err := r.Call("ghost", "lgv", &msg.Goal{}, 0); err == nil {
		t.Error("unknown service must error")
	}
}

func TestServiceHandlerError(t *testing.T) {
	r := NewServiceRegistry(nil)
	r.Register("plan", "lgv", func(wire.Message, float64) (wire.Message, float64, error) {
		return nil, 0, errors.New("no path")
	})
	if _, _, err := r.Call("plan", "lgv", &msg.Goal{}, 0); err == nil {
		t.Error("handler error must propagate")
	}
}

func TestServiceMigration(t *testing.T) {
	r := NewServiceRegistry(delayFabric{delay: 0.01})
	r.Register("plan", "lgv", echoHandler(0.5)) // slow on the robot
	if h, _ := r.HostOf("plan"); h != "lgv" {
		t.Errorf("host = %v", h)
	}
	_, localDone, err := r.Call("plan", "lgv", &msg.Goal{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Migrate to the cloud where it runs 10× faster.
	r.Register("plan", "cloud", echoHandler(0.05))
	if h, _ := r.HostOf("plan"); h != "cloud" {
		t.Errorf("host after migration = %v", h)
	}
	_, cloudDone, err := r.Call("plan", "lgv", &msg.Goal{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cloudDone >= localDone {
		t.Errorf("migration should pay off: %v vs %v", cloudDone, localDone)
	}
}

func TestServiceUnregister(t *testing.T) {
	r := NewServiceRegistry(nil)
	r.Register("plan", "lgv", echoHandler(0))
	r.Unregister("plan")
	if _, ok := r.HostOf("plan"); ok {
		t.Error("unregistered service still resolvable")
	}
}

func TestServiceNegativeProcClamped(t *testing.T) {
	r := NewServiceRegistry(nil)
	r.Register("p", "lgv", func(req wire.Message, _ float64) (wire.Message, float64, error) {
		return req, -5, nil
	})
	_, doneAt, err := r.Call("p", "lgv", &msg.Goal{}, 3)
	if err != nil || doneAt != 3 {
		t.Errorf("doneAt = %v err = %v", doneAt, err)
	}
}

func TestServiceHandlerSeesArrivalTime(t *testing.T) {
	r := NewServiceRegistry(delayFabric{delay: 0.25})
	var sawNow float64
	r.Register("p", "cloud", func(req wire.Message, now float64) (wire.Message, float64, error) {
		sawNow = now
		return req, 0, nil
	})
	if _, _, err := r.Call("p", "lgv", &msg.Goal{}, 2.0); err != nil {
		t.Fatal(err)
	}
	if sawNow != 2.25 {
		t.Errorf("handler saw now = %v, want request arrival 2.25", sawNow)
	}
}
