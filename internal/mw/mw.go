// Package mw is the ROS-like middleware of the simulator: named topics
// with publish/subscribe delivery, per-subscriber bounded queues (the
// paper's one-length UDP queues that keep VDP data fresh), and a pluggable
// Fabric that decides latency and loss for messages crossing hosts.
//
// Delivery runs in virtual time: Publish stamps each message with an
// arrival time obtained from the Fabric, and Advance(now) moves matured
// messages into subscriber queues. This keeps missions deterministic
// while reproducing the queueing behaviour (freshness, overwrite-on-full,
// silent UDP drops) that §VI of the paper builds on.
package mw

import (
	"fmt"
	"sort"
	"sync"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/wire"
)

// HostID identifies a compute host ("lgv", "edge", "cloud").
type HostID string

// Fabric decides how a message of the given encoded size travels from one
// host to another at virtual time now. It returns the arrival time and
// whether the message was dropped. A same-host transfer must be instant
// and lossless.
type Fabric interface {
	Transfer(from, to HostID, size int, now float64) (arriveAt float64, dropped bool)
}

// LocalFabric is the trivial fabric: every transfer is instant and
// lossless, as if all nodes shared one process.
type LocalFabric struct{}

// Transfer implements Fabric.
func (LocalFabric) Transfer(_, _ HostID, _ int, now float64) (float64, bool) {
	return now, false
}

// Envelope is a message in flight or queued, with transport metadata.
type Envelope struct {
	Msg      wire.Message
	Topic    string
	From     HostID
	Size     int     // encoded size in bytes
	SentAt   float64 // publish time
	ArriveAt float64 // delivery time at the subscriber

	dest *Subscription // destination while in flight
}

// Subscription is one subscriber's bounded mailbox on a topic.
type Subscription struct {
	topic string
	host  HostID
	depth int

	mu      sync.Mutex
	queue   []Envelope
	dropped int // messages overwritten due to a full queue
	recv    int // messages delivered into the queue
}

// Poll removes and returns the oldest queued message, if any.
func (s *Subscription) Poll() (Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Envelope{}, false
	}
	env := s.queue[0]
	s.queue = s.queue[1:]
	return env, true
}

// Latest drains the queue and returns only the newest message, the usual
// pattern for one-length VDP topics.
func (s *Subscription) Latest() (Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Envelope{}, false
	}
	env := s.queue[len(s.queue)-1]
	s.queue = s.queue[:0]
	return env, true
}

// Pending returns the number of queued messages.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Received returns the total number of messages delivered into the queue
// since the subscription was created. The Profiler derives the paper's
// "packet bandwidth" metric from deltas of this counter.
func (s *Subscription) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recv
}

// Overwritten returns how many messages were discarded because the queue
// was full (freshness overwrites).
func (s *Subscription) Overwritten() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Host returns the host this subscription lives on.
func (s *Subscription) Host() HostID { return s.host }

// deliver enqueues one message and returns how many older messages the
// bounded queue overwrote to make room.
func (s *Subscription) deliver(env Envelope) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recv++
	drop := 0
	if len(s.queue) >= s.depth {
		// Overwrite the oldest message: bounded queue keeps data fresh.
		drop = len(s.queue) - s.depth + 1
		s.queue = s.queue[drop:]
		s.dropped += drop
	}
	s.queue = append(s.queue, env)
	return drop
}

// TopicStats aggregates traffic counters for one topic.
type TopicStats struct {
	Published  int
	Dropped    int // lost in the fabric (network loss)
	Bytes      int // total bytes offered to the fabric for remote transfers
	RemoteSent int // messages that crossed hosts
	// Overwritten sums the freshness overwrites across the topic's
	// *current* subscribers (unsubscribed mailboxes leave the tally).
	Overwritten int
}

type topicState struct {
	subs  []*Subscription
	stats TopicStats
}

// Bus routes messages between publishers and subscribers over a Fabric.
type Bus struct {
	fabric Fabric

	mu       sync.Mutex
	topics   map[string]*topicState
	inflight []Envelope // messages waiting for their arrival time
	seq      uint64
	sink     obs.Sink      // nil when telemetry is off (the default)
	tracer   *spans.Tracer // nil when tracing is off (the default)
}

// NewBus creates a bus over the given fabric (nil means LocalFabric).
func NewBus(f Fabric) *Bus {
	if f == nil {
		f = LocalFabric{}
	}
	return &Bus{fabric: f, topics: make(map[string]*topicState)}
}

// SetSink attaches a telemetry sink to the bus (nil detaches). Transfers,
// fabric drops and queue overwrites are reported per topic; the default
// nil sink costs one branch per event.
func (b *Bus) SetSink(s obs.Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sink = s
}

// SetTracer attaches a span tracer (nil detaches): cross-host transfers
// of messages carrying trace context (wire.Traced headers) are recorded
// as transport spans on the sender's trace.
func (b *Bus) SetTracer(t *spans.Tracer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = t
}

func (b *Bus) topic(name string) *topicState {
	ts, ok := b.topics[name]
	if !ok {
		ts = &topicState{}
		b.topics[name] = ts
	}
	return ts
}

// Subscribe registers a bounded mailbox for a topic on the given host.
// depth <= 0 defaults to the paper's one-length queue.
func (b *Bus) Subscribe(topic string, host HostID, depth int) *Subscription {
	if depth <= 0 {
		depth = 1
	}
	s := &Subscription{topic: topic, host: host, depth: depth}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.topic(topic).subs = append(b.topic(topic).subs, s)
	return s
}

// Unsubscribe removes a subscription from its topic.
func (b *Bus) Unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.topic(s.topic)
	for i, sub := range ts.subs {
		if sub == s {
			ts.subs = append(ts.subs[:i], ts.subs[i+1:]...)
			return
		}
	}
}

// Publish sends a message on a topic from the given host at virtual time
// now. Each subscriber receives its own fabric-scheduled copy; remote
// copies may be dropped by the fabric. The encoded size is computed once.
func (b *Bus) Publish(topic string, from HostID, m wire.Message, now float64) {
	size := wire.EncodedSize(m)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	ts := b.topic(topic)
	ts.stats.Published++
	for _, sub := range ts.subs {
		remote := sub.host != from
		if remote {
			ts.stats.RemoteSent++
			ts.stats.Bytes += size
		}
		arrive, dropped := b.fabric.Transfer(from, sub.host, size, now)
		if dropped {
			ts.stats.Dropped++
			if b.sink != nil {
				b.sink.Count(obs.MDrops, topic, 1)
				b.sink.Emit(obs.Event{Kind: obs.KindDrop, T0: now, T1: now,
					Node: topic, Detail: "fabric"})
			}
			continue
		}
		if remote && b.sink != nil {
			b.sink.Count(obs.MTransfers, topic, 1)
			b.sink.Count(obs.MTransferBytes, topic, float64(size))
			b.sink.Emit(obs.Event{Kind: obs.KindTransfer, T0: now, T1: arrive,
				Node: topic, Host: string(sub.host), Bytes: size, Value: arrive - now})
		}
		if remote && b.tracer != nil {
			if tm, ok := m.(wire.Traced); ok {
				trace, parent := tm.TraceContext()
				b.tracer.Add(trace, parent, "net:"+topic, string(sub.host), topic,
					spans.Transport, now, arrive)
			}
		}
		env := Envelope{Msg: m, Topic: topic, From: from, Size: size, SentAt: now, ArriveAt: arrive}
		if arrive <= now {
			if n := sub.deliver(env); n > 0 && b.sink != nil {
				b.sink.Count(obs.MOverwrites, topic, float64(n))
			}
		} else {
			b.inflight = append(b.inflight, inflightFor(env, sub))
		}
	}
}

func inflightFor(env Envelope, sub *Subscription) Envelope {
	env.dest = sub
	return env
}

// Advance delivers all in-flight messages whose arrival time has matured
// (ArriveAt <= now). Delivery is ordered by arrival time for determinism.
func (b *Bus) Advance(now float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.inflight) == 0 {
		return
	}
	sort.SliceStable(b.inflight, func(i, j int) bool {
		return b.inflight[i].ArriveAt < b.inflight[j].ArriveAt
	})
	var remaining []Envelope
	for _, env := range b.inflight {
		if env.ArriveAt <= now {
			if n := env.dest.deliver(env); n > 0 && b.sink != nil {
				b.sink.Count(obs.MOverwrites, env.Topic, float64(n))
			}
		} else {
			remaining = append(remaining, env)
		}
	}
	b.inflight = remaining
}

// InFlight returns the number of messages still traveling.
func (b *Bus) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.inflight)
}

// Stats returns a copy of the topic's traffic counters, with Overwritten
// aggregated over the topic's current subscribers.
func (b *Bus) Stats(topic string) TopicStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.topic(topic)
	st := ts.stats
	for _, sub := range ts.subs {
		st.Overwritten += sub.Overwritten()
	}
	return st
}

// Topics returns the names of all known topics, sorted.
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (b *Bus) String() string {
	return fmt.Sprintf("mw.Bus{topics: %d, inflight: %d}", len(b.topics), len(b.inflight))
}
