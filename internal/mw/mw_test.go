package mw

import (
	"sync"
	"testing"
	"time"

	"lgvoffload/internal/msg"
)

func twist(seq uint64, v float64) *msg.Twist {
	return &msg.Twist{Header: msg.Header{Seq: seq}, V: v}
}

func TestLocalPublishSubscribe(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe("cmd_vel", "lgv", 4)
	b.Publish("cmd_vel", "lgv", twist(1, 0.1), 0)
	b.Publish("cmd_vel", "lgv", twist(2, 0.2), 0.1)
	env, ok := sub.Poll()
	if !ok || env.Msg.(*msg.Twist).Seq != 1 {
		t.Fatalf("first poll = %+v %v", env, ok)
	}
	env, ok = sub.Poll()
	if !ok || env.Msg.(*msg.Twist).Seq != 2 {
		t.Fatalf("second poll = %+v %v", env, ok)
	}
	if _, ok = sub.Poll(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestOneLengthQueueKeepsFreshest(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe("scan", "lgv", 1)
	for i := 1; i <= 5; i++ {
		b.Publish("scan", "lgv", twist(uint64(i), 0), float64(i))
	}
	env, ok := sub.Poll()
	if !ok || env.Msg.(*msg.Twist).Seq != 5 {
		t.Fatalf("should hold only the freshest; got %+v", env.Msg)
	}
	if sub.Overwritten() != 4 {
		t.Errorf("overwritten = %d", sub.Overwritten())
	}
	if sub.Received() != 5 {
		t.Errorf("received = %d", sub.Received())
	}
}

func TestLatestDrainsQueue(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe("pose", "lgv", 10)
	for i := 1; i <= 3; i++ {
		b.Publish("pose", "lgv", twist(uint64(i), 0), 0)
	}
	env, ok := sub.Latest()
	if !ok || env.Msg.(*msg.Twist).Seq != 3 {
		t.Fatalf("latest = %+v", env.Msg)
	}
	if sub.Pending() != 0 {
		t.Error("Latest must drain the queue")
	}
}

// delayFabric adds a fixed latency between distinct hosts and drops
// every message whose size exceeds dropOver.
type delayFabric struct {
	delay    float64
	dropOver int
}

func (f delayFabric) Transfer(from, to HostID, size int, now float64) (float64, bool) {
	if from == to {
		return now, false
	}
	if f.dropOver > 0 && size > f.dropOver {
		return 0, true
	}
	return now + f.delay, false
}

func TestRemoteDeliveryWithLatency(t *testing.T) {
	b := NewBus(delayFabric{delay: 0.05})
	sub := b.Subscribe("cmd_vel", "cloud", 1)
	b.Publish("cmd_vel", "lgv", twist(1, 0.1), 1.0)
	if _, ok := sub.Poll(); ok {
		t.Fatal("message should still be in flight")
	}
	if b.InFlight() != 1 {
		t.Fatalf("inflight = %d", b.InFlight())
	}
	b.Advance(1.04)
	if _, ok := sub.Poll(); ok {
		t.Fatal("message must not arrive before its latency")
	}
	b.Advance(1.05)
	env, ok := sub.Poll()
	if !ok {
		t.Fatal("message should have arrived")
	}
	if env.ArriveAt != 1.05 || env.SentAt != 1.0 {
		t.Errorf("times: %+v", env)
	}
}

func TestAdvanceOrdersByArrival(t *testing.T) {
	b := NewBus(delayFabric{delay: 0.1})
	sub := b.Subscribe("x", "cloud", 10)
	// Publish out of order in time.
	b.Publish("x", "lgv", twist(2, 0), 0.2)
	b.Publish("x", "lgv", twist(1, 0), 0.1)
	b.Advance(10)
	env1, _ := sub.Poll()
	env2, _ := sub.Poll()
	if env1.Msg.(*msg.Twist).Seq != 1 || env2.Msg.(*msg.Twist).Seq != 2 {
		t.Errorf("delivery order wrong: %v then %v",
			env1.Msg.(*msg.Twist).Seq, env2.Msg.(*msg.Twist).Seq)
	}
}

func TestFabricDropsAreCounted(t *testing.T) {
	b := NewBus(delayFabric{delay: 0.01, dropOver: 10})
	sub := b.Subscribe("big", "cloud", 1)
	// Scan messages are ~2.9 KB — all dropped by the 10-byte threshold.
	big := &msg.Scan{Ranges: make([]float64, 360)}
	b.Publish("big", "lgv", big, 0)
	b.Advance(1)
	if _, ok := sub.Poll(); ok {
		t.Fatal("oversize message should have been dropped")
	}
	st := b.Stats("big")
	if st.Published != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsCountRemoteBytesOnly(t *testing.T) {
	b := NewBus(delayFabric{delay: 0})
	b.Subscribe("t", "lgv", 1)   // local
	b.Subscribe("t", "cloud", 1) // remote
	b.Publish("t", "lgv", twist(1, 0), 0)
	st := b.Stats("t")
	if st.RemoteSent != 1 {
		t.Errorf("remoteSent = %d", st.RemoteSent)
	}
	if st.Bytes == 0 {
		t.Error("remote bytes not counted")
	}
}

func TestMultipleSubscribersEachGetCopy(t *testing.T) {
	b := NewBus(nil)
	s1 := b.Subscribe("t", "lgv", 1)
	s2 := b.Subscribe("t", "lgv", 1)
	b.Publish("t", "lgv", twist(1, 0), 0)
	if _, ok := s1.Poll(); !ok {
		t.Error("s1 missed")
	}
	if _, ok := s2.Poll(); !ok {
		t.Error("s2 missed")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus(nil)
	s := b.Subscribe("t", "lgv", 1)
	b.Unsubscribe(s)
	b.Publish("t", "lgv", twist(1, 0), 0)
	if _, ok := s.Poll(); ok {
		t.Error("unsubscribed mailbox received a message")
	}
}

func TestTopicsListing(t *testing.T) {
	b := NewBus(nil)
	b.Subscribe("b", "lgv", 1)
	b.Subscribe("a", "lgv", 1)
	got := b.Topics()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("topics = %v", got)
	}
}

func TestDefaultQueueDepthIsOne(t *testing.T) {
	b := NewBus(nil)
	s := b.Subscribe("t", "lgv", 0)
	b.Publish("t", "lgv", twist(1, 0), 0)
	b.Publish("t", "lgv", twist(2, 0), 0)
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestUDPEndpointRoundtrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bEp, err := ListenUDP("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()

	want := &msg.Twist{Header: msg.Header{Seq: 9, Stamp: 1.5}, V: 0.2, W: -0.1}
	if err := a.SendTo(bEp.Addr(), want); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m, ok := bEp.Poll(); ok {
			got, isTwist := m.(*msg.Twist)
			if !isTwist || got.Seq != 9 || got.V != 0.2 {
				t.Fatalf("got %#v", m)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for UDP frame")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUDPEndpointOverwriteOnFull(t *testing.T) {
	bEp, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()
	a, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 1; i <= 10; i++ {
		if err := a.SendTo(bEp.Addr(), twist(uint64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for bEp.Received() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no frames received")
		}
		time.Sleep(time.Millisecond)
	}
	// Drain once the socket has gone quiet; at most 1 message may remain.
	time.Sleep(50 * time.Millisecond)
	n := 0
	for {
		if _, ok := bEp.Poll(); !ok {
			break
		}
		n++
	}
	if n > 1 {
		t.Errorf("queue depth 1 held %d messages", n)
	}
}

func TestUDPEndpointCloseIdempotent(t *testing.T) {
	ep, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("second close should be nil")
	}
}

func TestBusConcurrentPublishSubscribe(t *testing.T) {
	// The bus must be safe under concurrent publishers and pollers (the
	// switcher and profiler threads of §VII share it).
	b := NewBus(nil)
	subs := make([]*Subscription, 4)
	for i := range subs {
		subs[i] = b.Subscribe("t", "lgv", 8)
	}
	var wg sync.WaitGroup
	const perPublisher = 500
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish("t", "lgv", twist(uint64(p*perPublisher+i), 0), float64(i))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Poll concurrently while publishing.
	for {
		select {
		case <-done:
			if got := b.Stats("t").Published; got != 4*perPublisher {
				t.Errorf("published = %d", got)
			}
			for _, s := range subs {
				if s.Received() != 4*perPublisher {
					t.Errorf("received = %d", s.Received())
				}
			}
			return
		default:
			for _, s := range subs {
				s.Poll()
			}
		}
	}
}
