package mw

import (
	"testing"
	"time"

	"lgvoffload/internal/msg"
)

// tcpPair returns a connected client/server endpoint pair.
func tcpPair(t *testing.T) (client, server *TCPEndpoint) {
	t.Helper()
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *TCPEndpoint, 1)
	go func() {
		ep, err := ln.Accept()
		if err == nil {
			accepted <- ep
		}
	}()
	c, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-accepted:
		ln.Close()
		t.Cleanup(func() { c.Close(); s.Close() })
		return c, s
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func waitReceived(t *testing.T, ep *TCPEndpoint, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for ep.Received() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out at %d/%d messages", ep.Received(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPRoundtrip(t *testing.T) {
	c, s := tcpPair(t)
	want := &msg.Pose{Header: msg.Header{Seq: 4, Stamp: 2.5}, X: 1, Y: -2, Theta: 0.5}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 1)
	m, ok := s.Poll()
	if !ok {
		t.Fatal("nothing queued")
	}
	got, isPose := m.(*msg.Pose)
	if !isPose || got.X != 1 || got.Seq != 4 {
		t.Fatalf("got %#v", m)
	}
}

func TestTCPPreservesOrderAndCount(t *testing.T) {
	c, s := tcpPair(t)
	const n = 200
	for i := 1; i <= n; i++ {
		if err := c.Send(twist(uint64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	waitReceived(t, s, n)
	for i := 1; i <= n; i++ {
		m, ok := s.Poll()
		if !ok {
			t.Fatalf("queue ended at %d", i)
		}
		if m.(*msg.Twist).Seq != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, m.(*msg.Twist).Seq)
		}
	}
}

// TestTCPBacklogVsUDPFreshness is the Fig. 7 / §VI contrast, live: a
// burst of velocity commands reaches a consumer that wakes up late. The
// reliable TCP stream hands it the entire stale backlog in order, while
// the UDP one-length queue hands it only the freshest command.
func TestTCPBacklogVsUDPFreshness(t *testing.T) {
	// TCP side.
	tc, ts := tcpPair(t)
	for i := 1; i <= 20; i++ {
		if err := tc.Send(twist(uint64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitReceived(t, ts, 20)
	if ts.Pending() != 20 {
		t.Errorf("TCP backlog = %d, want all 20 stale commands", ts.Pending())
	}
	first, _ := ts.Poll()
	if first.(*msg.Twist).Seq != 1 {
		t.Error("TCP consumer sees the OLDEST command first (stale data)")
	}

	// UDP side with the paper's one-length queue.
	ua, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ua.Close()
	ub, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ub.Close()
	for i := 1; i <= 20; i++ {
		if err := ua.SendTo(ub.Addr(), twist(uint64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for ub.Received() < 10 { // most frames must have landed
		if time.Now().After(deadline) {
			t.Fatalf("UDP received only %d", ub.Received())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	m, ok := ub.Poll()
	if !ok {
		t.Fatal("UDP queue empty")
	}
	seq := m.(*msg.Twist).Seq
	if seq < 10 {
		t.Errorf("UDP consumer should see a recent command, got seq %d", seq)
	}
	if _, again := ub.Poll(); again {
		t.Error("one-length queue must hold a single (fresh) message")
	}
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	c, _ := tcpPair(t)
	c.Close()
	if err := c.Send(twist(1, 0)); err == nil {
		t.Error("send after close must fail")
	}
	if err := c.Close(); err != nil {
		t.Error("double close should be nil")
	}
}
