package mw

import (
	"testing"
	"time"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/spans"
)

// TestTraceContextSurvivesUDP round-trips a header's trace context
// through a real UDP socket: the v2 wire encoding must carry it intact.
func TestTraceContextSurvivesUDP(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	tw := &msg.Twist{V: 0.7, W: 0.1}
	tw.TraceID = 0xDEADBEEF
	tw.ParentSpan = 42
	if err := a.SendTo(b.Addr(), tw); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m, ok := b.Poll(); ok {
			got := m.(*msg.Twist)
			if got.TraceID != 0xDEADBEEF || got.ParentSpan != 42 {
				t.Fatalf("trace context lost over UDP: %+v", got.Header)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceContextSurvivesTCP does the same over the reliable transport.
func TestTraceContextSurvivesTCP(t *testing.T) {
	c, s := tcpPair(t)
	tw := &msg.Twist{V: 0.3}
	tw.TraceID = 7
	tw.ParentSpan = 8
	if err := c.Send(tw); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 1)
	m, ok := s.Poll()
	if !ok {
		t.Fatal("no message")
	}
	got := m.(*msg.Twist)
	if got.TraceID != 7 || got.ParentSpan != 8 {
		t.Fatalf("trace context lost over TCP: %+v", got.Header)
	}
}

// TestBusRecordsTransportSpans checks the simulated bus stitches a
// transport span onto the sender's trace for cross-host deliveries of
// traced messages — and stays silent for local or untraced ones.
func TestBusRecordsTransportSpans(t *testing.T) {
	tr := spans.NewTracer(64)
	b := NewBus(delayFabric{delay: 0.05})
	b.SetTracer(tr)
	b.Subscribe("cmd_vel", "cloud", 1)
	b.Subscribe("cmd_vel", "lgv", 1)

	traced := &msg.Twist{V: 1}
	traced.TraceID = tr.NewTrace()
	traced.ParentSpan = 0
	b.Publish("cmd_vel", "lgv", traced, 1.0)

	untraced := &msg.Twist{V: 2}
	b.Publish("cmd_vel", "lgv", untraced, 2.0)

	sp := tr.Spans()
	if len(sp) != 1 {
		t.Fatalf("%d spans recorded, want 1 (remote traced delivery only): %+v", len(sp), sp)
	}
	s := sp[0]
	if s.Name != "net:cmd_vel" || s.Kind != spans.Transport {
		t.Errorf("span = %+v", s)
	}
	if s.Start != 1.0 || s.End != 1.05 {
		t.Errorf("span interval [%g, %g], want [1, 1.05]", s.Start, s.End)
	}
	if s.Trace != traced.TraceID {
		t.Errorf("span trace %d, want %d", s.Trace, traced.TraceID)
	}
}
