package mw

import (
	"testing"
	"time"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/obs"
)

func TestTopicStatsOverwritten(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe("scan", "lgv", 1)
	for i := 1; i <= 5; i++ {
		b.Publish("scan", "lgv", twist(uint64(i), 0), float64(i))
	}
	if st := b.Stats("scan"); st.Overwritten != 4 {
		t.Errorf("TopicStats.Overwritten = %d, want 4", st.Overwritten)
	}
	if sub.Overwritten() != 4 {
		t.Errorf("sub.Overwritten = %d", sub.Overwritten())
	}
}

func TestBusSinkCountsOverwrites(t *testing.T) {
	tel := obs.NewTelemetry(16)
	b := NewBus(nil)
	b.SetSink(tel)
	b.Subscribe("scan", "lgv", 1)
	for i := 1; i <= 5; i++ {
		b.Publish("scan", "lgv", twist(uint64(i), 0), float64(i))
	}
	if got := tel.Reg.Counter(obs.MOverwrites, "scan").Value(); got != 4 {
		t.Errorf("%s counter = %v, want 4", obs.MOverwrites, got)
	}
}

func TestBusSinkCountsDropsAndTransfers(t *testing.T) {
	tel := obs.NewTelemetry(16)
	// Scan messages are ~2.9 KB, twists a few dozen bytes: only the scan
	// exceeds the drop threshold.
	b := NewBus(delayFabric{delay: 0.01, dropOver: 1000})
	b.SetSink(tel)
	b.Subscribe("big", "cloud", 1)
	b.Subscribe("tiny", "cloud", 1)

	b.Publish("big", "lgv", &msg.Scan{Ranges: make([]float64, 360)}, 0)
	b.Publish("tiny", "lgv", twist(1, 0), 0)
	b.Advance(1)

	if got := tel.Reg.Counter(obs.MDrops, "big").Value(); got != 1 {
		t.Errorf("%s counter = %v, want 1", obs.MDrops, got)
	}
	if got := tel.Reg.Counter(obs.MTransfers, "tiny").Value(); got != 1 {
		t.Errorf("%s counter = %v, want 1", obs.MTransfers, got)
	}
	if got := tel.Reg.Counter(obs.MTransferBytes, "tiny").Value(); got <= 0 {
		t.Errorf("%s counter = %v, want > 0", obs.MTransferBytes, got)
	}
	var drops, transfers int
	for _, ev := range tel.Events() {
		switch ev.Kind {
		case obs.KindDrop:
			drops++
		case obs.KindTransfer:
			transfers++
		}
	}
	if drops != 1 || transfers != 1 {
		t.Errorf("timeline: %d drops, %d transfers", drops, transfers)
	}
}

func TestUDPEndpointOverwrittenCounter(t *testing.T) {
	tel := obs.NewTelemetry(16)
	bEp, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()
	bEp.SetSink(tel)
	a, err := ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	for i := 1; i <= 10; i++ {
		if err := a.SendTo(bEp.Addr(), twist(uint64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for bEp.Received() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no frames received")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the socket go quiet

	polled := 0
	for {
		if _, ok := bEp.Poll(); !ok {
			break
		}
		polled++
	}
	// Every received frame either reached Poll or was overwritten in the
	// depth-1 queue; the loopback socket may legitimately drop the rest.
	if got := bEp.Overwritten() + polled; got != bEp.Received() {
		t.Errorf("overwritten(%d) + polled(%d) != received(%d)",
			bEp.Overwritten(), polled, bEp.Received())
	}
	if bEp.Overwritten() == 0 {
		t.Error("10 sends into a depth-1 queue overwrote nothing")
	}
	if got := tel.Reg.Counter(obs.MOverwrites, "udp").Value(); got != float64(bEp.Overwritten()) {
		t.Errorf("%s counter = %v, endpoint says %d", obs.MOverwrites, got, bEp.Overwritten())
	}
	if got := tel.Reg.Counter(obs.MFrames, "udp").Value(); got != float64(bEp.Received()) {
		t.Errorf("%s counter = %v, endpoint says %d", obs.MFrames, got, bEp.Received())
	}
}
