package msg

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/wire"
	"lgvoffload/internal/world"
)

func roundtrip(t *testing.T, m wire.Message) wire.Message {
	t.Helper()
	b := wire.EncodeFrame(m)
	out, err := wire.DecodeFrame(b)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	return out
}

func TestTwistRoundtripAndSize(t *testing.T) {
	in := &Twist{Header: Header{Seq: 42, Stamp: 1.5, SentAt: 1.6}, V: 0.22, W: -1.1}
	out := roundtrip(t, in).(*Twist)
	if *out != *in {
		t.Errorf("got %+v want %+v", out, in)
	}
	// The paper quotes ~48 B velocity commands; ours should be in that range.
	n := len(wire.EncodeFrame(in))
	if n < 20 || n > 64 {
		t.Errorf("twist frame size = %d B, want tens of bytes", n)
	}
	if out.AsTwist() != (geom.Twist{V: 0.22, W: -1.1}) {
		t.Error("AsTwist mismatch")
	}
}

func TestScanRoundtripAndSize(t *testing.T) {
	l := sensor.NewLDS01(0.01, rand.New(rand.NewSource(1)))
	sc := l.Sense(world.EmptyRoomMap(4, 4, 0.05), geom.P(2, 2, 0), 3.25)
	in := FromSensor(sc, 7)
	out := roundtrip(t, in).(*Scan)
	if out.Seq != 7 || out.Stamp != 3.25 {
		t.Errorf("header %+v", out.Header)
	}
	if len(out.Ranges) != 360 {
		t.Fatalf("ranges = %d", len(out.Ranges))
	}
	for i := range out.Ranges {
		if out.Ranges[i] != in.Ranges[i] {
			t.Fatal("ranges differ")
		}
	}
	// Paper: max laser payload 2.94 KB. 360×8B + header ≈ 2.9 KB.
	n := len(wire.EncodeFrame(in))
	if n < 2800 || n > 3100 {
		t.Errorf("scan frame size = %d B, want ≈ 2.9 KB", n)
	}
	back := out.ToSensor()
	if back.Stamp != 3.25 || back.MaxRange != sc.MaxRange {
		t.Error("ToSensor lost fields")
	}
}

func TestPoseRoundtrip(t *testing.T) {
	in := FromPose(geom.P(1, -2, math.Pi/3), 9, 2.0)
	out := roundtrip(t, in).(*Pose)
	if out.AsPose().Pos.Dist(geom.V(1, -2)) > 1e-12 {
		t.Error("pose position")
	}
	if math.Abs(out.Theta-math.Pi/3) > 1e-12 {
		t.Error("pose theta")
	}
}

func TestOdomRoundtrip(t *testing.T) {
	in := &Odom{Header: Header{Seq: 1}, X: 1, Y: 2, Theta: 0.5, V: 0.2, W: -0.3}
	out := roundtrip(t, in).(*Odom)
	if *out != *in {
		t.Errorf("odom %+v", out)
	}
	if out.AsPose() != geom.P(1, 2, 0.5) {
		t.Error("AsPose")
	}
}

func TestGoalRoundtrip(t *testing.T) {
	in := &Goal{Header: Header{Seq: 3, Stamp: 0.5}, X: 4.5, Y: -1}
	out := roundtrip(t, in).(*Goal)
	if *out != *in {
		t.Errorf("goal %+v", out)
	}
}

func TestPathRoundtrip(t *testing.T) {
	pts := []geom.Vec2{geom.V(0, 0), geom.V(1, 1), geom.V(2, 0)}
	in := FromPoints(pts, 5, 1.0)
	out := roundtrip(t, in).(*Path)
	got := out.Points()
	if len(got) != 3 {
		t.Fatalf("points = %d", len(got))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Errorf("point %d = %v", i, got[i])
		}
	}
}

func TestPathEmptyAndMismatched(t *testing.T) {
	empty := FromPoints(nil, 0, 0)
	if len(empty.Points()) != 0 {
		t.Error("empty path")
	}
	// Defensive: mismatched Xs/Ys takes the shorter.
	p := &Path{Xs: []float64{1, 2}, Ys: []float64{3}}
	if len(p.Points()) != 1 {
		t.Error("mismatched path should truncate")
	}
}

func TestGridPatchRoundtrip(t *testing.T) {
	in := &GridPatch{
		Header: Header{Seq: 11, Stamp: 4},
		X0:     -5, Y0: 3, Width: 2, Height: 2,
		Resolution: 0.05, OriginX: -1, OriginY: -2,
		Cells: []int8{0, 100, -1, 0},
	}
	out := roundtrip(t, in).(*GridPatch)
	if out.X0 != -5 || out.Y0 != 3 || out.Width != 2 || out.Height != 2 {
		t.Errorf("geometry %+v", out)
	}
	if len(out.Cells) != 4 || out.Cells[1] != 100 || out.Cells[2] != -1 {
		t.Errorf("cells %v", out.Cells)
	}
}

func TestProfileRoundtrip(t *testing.T) {
	in := &Profile{Header: Header{Seq: 2}, Node: "path_tracking", Host: "cloud", ProcTime: 0.004}
	out := roundtrip(t, in).(*Profile)
	if *out != *in {
		t.Errorf("profile %+v", out)
	}
}

func TestCorruptFrameFails(t *testing.T) {
	in := FromPose(geom.P(1, 2, 3), 1, 1)
	b := wire.EncodeFrame(in)
	if _, err := wire.DecodeFrame(b[:len(b)-4]); err == nil {
		t.Error("truncated pose frame must fail")
	}
}
