package msg

import (
	"math"
	"testing"

	"lgvoffload/internal/wire"
)

// headerBytes renders a header the way archived V1 bags did (no trace
// uvarints) or the live V2 encoder does, for seeding the corpus.
func headerBytes(h Header, v2 bool) []byte {
	e := wire.NewEncoder(0)
	e.Uvarint(h.Seq)
	e.Float64(h.Stamp)
	e.Float64(h.SentAt)
	if v2 {
		e.Uvarint(h.TraceID)
		e.Uvarint(h.ParentSpan)
	}
	return e.Bytes()
}

// FuzzHeaderDecode drives Header.unmarshal over arbitrary buffers under
// both header encoding versions: it must never panic, and any header it
// accepts must survive a marshal→unmarshal round trip bit-for-bit.
func FuzzHeaderDecode(f *testing.F) {
	// Seeds: the bag-fixture headers (internal/bag's archived-format
	// tests use Seq 1/2, Stamp ~0.1/0.3), a trace-carrying V2 header,
	// truncated and corrupt shapes, and uvarint edge cases.
	f.Add(headerBytes(Header{Seq: 1, Stamp: 0.1, SentAt: 0.11}, false), false)
	f.Add(headerBytes(Header{Seq: 2, Stamp: 0.3, SentAt: 0.31}, false), false)
	f.Add(headerBytes(Header{Seq: 7, Stamp: 1.5, SentAt: 1.6, TraceID: 42, ParentSpan: 9}, true), true)
	f.Add(headerBytes(Header{Seq: math.MaxUint64, Stamp: math.Inf(1), SentAt: math.NaN()}, true), true)
	f.Add([]byte{}, true)
	f.Add([]byte{0x80}, false)                                                      // unterminated uvarint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, true) // uvarint overflow
	f.Add(headerBytes(Header{Seq: 3, Stamp: 2, SentAt: 2.1}, true)[:10], true)      // truncated float

	f.Fuzz(func(t *testing.T, data []byte, v2 bool) {
		ver := wire.HeaderV1
		if v2 {
			ver = wire.HeaderV2
		}
		d := wire.NewDecoderVersion(data, ver)
		var h Header
		h.unmarshal(d)
		if d.Err() != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if !v2 && (h.TraceID != 0 || h.ParentSpan != 0) {
			t.Fatalf("V1 decode populated trace context: %+v", h)
		}
		// Round trip under the live (V2) encoding.
		e := wire.NewEncoder(0)
		h.marshal(e)
		d2 := wire.NewDecoder(e.Bytes())
		var h2 Header
		h2.unmarshal(d2)
		if d2.Err() != nil {
			t.Fatalf("re-decode of marshaled header failed: %v", d2.Err())
		}
		if h2.Seq != h.Seq || h2.TraceID != h.TraceID || h2.ParentSpan != h.ParentSpan ||
			math.Float64bits(h2.Stamp) != math.Float64bits(h.Stamp) ||
			math.Float64bits(h2.SentAt) != math.Float64bits(h.SentAt) {
			t.Fatalf("header round trip mismatch: %+v vs %+v", h, h2)
		}
		if d2.Remaining() != 0 {
			t.Fatalf("marshaled header has %d trailing bytes", d2.Remaining())
		}
	})
}
