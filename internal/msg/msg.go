// Package msg defines the concrete middleware message types exchanged by
// the LGV workload nodes: laser scans, poses, velocity commands, paths,
// goals, map patches and profiling records. Each type implements
// wire.Message so it can travel over the simulated wireless link exactly
// as the paper's protobuf-serialized ROS messages do.
package msg

import (
	"lgvoffload/internal/geom"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/wire"
)

// Message kinds. Stable over the wire.
const (
	KindTwist uint16 = iota + 1
	KindScan
	KindPose
	KindGoal
	KindPath
	KindGridPatch
	KindProfile
	KindOdom
	KindHeartbeat
)

func init() {
	wire.Register(KindTwist, func() wire.Message { return &Twist{} })
	wire.Register(KindScan, func() wire.Message { return &Scan{} })
	wire.Register(KindPose, func() wire.Message { return &Pose{} })
	wire.Register(KindGoal, func() wire.Message { return &Goal{} })
	wire.Register(KindPath, func() wire.Message { return &Path{} })
	wire.Register(KindGridPatch, func() wire.Message { return &GridPatch{} })
	wire.Register(KindProfile, func() wire.Message { return &Profile{} })
	wire.Register(KindOdom, func() wire.Message { return &Odom{} })
	wire.Register(KindHeartbeat, func() wire.Message { return &Heartbeat{} })
}

// Header carries per-message sequencing and the temporal information the
// Switcher attaches (paper §VII): when the message was created in
// simulation time and when it was sent, enabling RTT and VDP makespan
// accounting at the Profiler. Since header v2 it also carries the
// causal trace context (internal/spans): a worker that echoes the
// header back hands the reply's spans to the sender's trace tree.
type Header struct {
	Seq    uint64
	Stamp  float64 // creation time of the carried data
	SentAt float64 // transmission time, set by the switcher

	// Trace context (header v2). Zero values mean "untraced"; the two
	// extra uvarints then cost one byte each on the wire.
	TraceID    uint64 // spans.Tracer trace id this message belongs to
	ParentSpan uint64 // span the receiver should parent its spans under
}

// TraceContext implements wire.Traced.
func (h Header) TraceContext() (traceID, parentSpan uint64) {
	return h.TraceID, h.ParentSpan
}

func (h *Header) marshal(e *wire.Encoder) {
	e.Uvarint(h.Seq)
	e.Float64(h.Stamp)
	e.Float64(h.SentAt)
	e.Uvarint(h.TraceID)
	e.Uvarint(h.ParentSpan)
}

func (h *Header) unmarshal(d *wire.Decoder) {
	h.Seq = d.Uvarint()
	h.Stamp = d.Float64()
	h.SentAt = d.Float64()
	if d.HeaderVersion() >= wire.HeaderV2 {
		h.TraceID = d.Uvarint()
		h.ParentSpan = d.Uvarint()
	}
}

// Twist is a velocity command (the paper's 48-byte example payload).
type Twist struct {
	Header
	V, W float64
}

func (*Twist) Kind() uint16 { return KindTwist }

func (m *Twist) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64(m.V)
	e.Float64(m.W)
}

func (m *Twist) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.V = d.Float64()
	m.W = d.Float64()
	return d.Err()
}

// AsTwist converts to the geometry type.
func (m *Twist) AsTwist() geom.Twist { return geom.Twist{V: m.V, W: m.W} }

// Scan wraps a laser sweep (the paper's 2.94 KB maximum payload).
type Scan struct {
	Header
	AngleMin float64
	AngleInc float64
	MaxRange float64
	Ranges   []float64
}

func (*Scan) Kind() uint16 { return KindScan }

// FromSensor builds a Scan message from a sensor sweep.
func FromSensor(s *sensor.Scan, seq uint64) *Scan {
	return FromSensorInto(&Scan{}, s, seq)
}

// FromSensorInto fills dst from a sensor sweep and returns it, letting
// per-tick senders reuse one message value instead of allocating. The
// Ranges slice is shared with the sweep, exactly as FromSensor does.
func FromSensorInto(dst *Scan, s *sensor.Scan, seq uint64) *Scan {
	*dst = Scan{
		Header:   Header{Seq: seq, Stamp: s.Stamp},
		AngleMin: s.AngleMin,
		AngleInc: s.AngleInc,
		MaxRange: s.MaxRange,
		Ranges:   s.Ranges,
	}
	return dst
}

// ToSensor converts back to the sensor type.
func (m *Scan) ToSensor() *sensor.Scan {
	return &sensor.Scan{
		AngleMin: m.AngleMin,
		AngleInc: m.AngleInc,
		MaxRange: m.MaxRange,
		Ranges:   m.Ranges,
		Stamp:    m.Stamp,
	}
}

func (m *Scan) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64(m.AngleMin)
	e.Float64(m.AngleInc)
	e.Float64(m.MaxRange)
	e.Float64Slice(m.Ranges)
}

func (m *Scan) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.AngleMin = d.Float64()
	m.AngleInc = d.Float64()
	m.MaxRange = d.Float64()
	// Decode into the existing backing array when re-unmarshaling into a
	// retained message (transport read loops), allocating only on growth.
	m.Ranges = d.Float64SliceInto(m.Ranges[:0])
	return d.Err()
}

// Pose is a stamped pose estimate (localization/SLAM output).
type Pose struct {
	Header
	X, Y, Theta float64
}

func (*Pose) Kind() uint16 { return KindPose }

// FromPose builds a Pose message.
func FromPose(p geom.Pose, seq uint64, stamp float64) *Pose {
	return &Pose{Header: Header{Seq: seq, Stamp: stamp}, X: p.Pos.X, Y: p.Pos.Y, Theta: p.Theta}
}

// AsPose converts to the geometry type.
func (m *Pose) AsPose() geom.Pose { return geom.P(m.X, m.Y, m.Theta) }

func (m *Pose) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64(m.X)
	e.Float64(m.Y)
	e.Float64(m.Theta)
}

func (m *Pose) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.X = d.Float64()
	m.Y = d.Float64()
	m.Theta = d.Float64()
	return d.Err()
}

// Odom is a stamped odometry estimate with instantaneous velocity.
type Odom struct {
	Header
	X, Y, Theta float64
	V, W        float64
}

func (*Odom) Kind() uint16 { return KindOdom }

// AsPose converts the odometry position to a pose.
func (m *Odom) AsPose() geom.Pose { return geom.P(m.X, m.Y, m.Theta) }

func (m *Odom) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64(m.X)
	e.Float64(m.Y)
	e.Float64(m.Theta)
	e.Float64(m.V)
	e.Float64(m.W)
}

func (m *Odom) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.X = d.Float64()
	m.Y = d.Float64()
	m.Theta = d.Float64()
	m.V = d.Float64()
	m.W = d.Float64()
	return d.Err()
}

// Goal is a navigation or exploration target.
type Goal struct {
	Header
	X, Y float64
}

func (*Goal) Kind() uint16 { return KindGoal }

func (m *Goal) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64(m.X)
	e.Float64(m.Y)
}

func (m *Goal) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.X = d.Float64()
	m.Y = d.Float64()
	return d.Err()
}

// Path is a planned global path as a polyline.
type Path struct {
	Header
	Xs, Ys []float64
}

func (*Path) Kind() uint16 { return KindPath }

// FromPoints builds a Path message from a polyline.
func FromPoints(pts []geom.Vec2, seq uint64, stamp float64) *Path {
	p := &Path{Header: Header{Seq: seq, Stamp: stamp}}
	p.Xs = make([]float64, len(pts))
	p.Ys = make([]float64, len(pts))
	for i, v := range pts {
		p.Xs[i] = v.X
		p.Ys[i] = v.Y
	}
	return p
}

// Points converts back to a polyline.
func (m *Path) Points() []geom.Vec2 {
	n := len(m.Xs)
	if len(m.Ys) < n {
		n = len(m.Ys)
	}
	pts := make([]geom.Vec2, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.V(m.Xs[i], m.Ys[i])
	}
	return pts
}

func (m *Path) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Float64Slice(m.Xs)
	e.Float64Slice(m.Ys)
}

func (m *Path) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.Xs = d.Float64SliceInto(m.Xs[:0])
	m.Ys = d.Float64SliceInto(m.Ys[:0])
	return d.Err()
}

// GridPatch is a rectangular update to an occupancy grid, used to ship
// costmap and SLAM map regions between hosts.
type GridPatch struct {
	Header
	X0, Y0        int64 // cell offset of the patch in the destination grid
	Width, Height int64
	Resolution    float64
	OriginX       float64
	OriginY       float64
	Cells         []int8
}

func (*GridPatch) Kind() uint16 { return KindGridPatch }

func (m *GridPatch) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.Varint(m.X0)
	e.Varint(m.Y0)
	e.Varint(m.Width)
	e.Varint(m.Height)
	e.Float64(m.Resolution)
	e.Float64(m.OriginX)
	e.Float64(m.OriginY)
	e.Int8Slice(m.Cells)
}

func (m *GridPatch) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.X0 = d.Varint()
	m.Y0 = d.Varint()
	m.Width = d.Varint()
	m.Height = d.Varint()
	m.Resolution = d.Float64()
	m.OriginX = d.Float64()
	m.OriginY = d.Float64()
	m.Cells = d.Int8SliceInto(m.Cells[:0])
	return d.Err()
}

// Heartbeat is the liveness beacon exchanged by the real-socket Switcher
// and Worker: the worker beats periodically (and echoes the switcher's
// hello probes) so a killed worker is detected by silence rather than by
// the absence of replies to real work.
type Heartbeat struct {
	Header
	From   string // sender identity (host name)
	Served int64  // scans served so far: monotone worker progress
}

func (*Heartbeat) Kind() uint16 { return KindHeartbeat }

func (m *Heartbeat) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.String(m.From)
	e.Varint(m.Served)
}

func (m *Heartbeat) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.From = d.String()
	m.Served = d.Varint()
	return d.Err()
}

// Profile is the Profiler's record of one node execution: which node ran,
// where, and how long it took (paper §VII "Profiler"). Remote switchers
// attach these to returning messages so the local profiler can compute
// the VDP makespan.
type Profile struct {
	Header
	Node     string
	Host     string
	ProcTime float64 // processing time, s
}

func (*Profile) Kind() uint16 { return KindProfile }

func (m *Profile) MarshalWire(e *wire.Encoder) {
	m.Header.marshal(e)
	e.String(m.Node)
	e.String(m.Host)
	e.Float64(m.ProcTime)
}

func (m *Profile) UnmarshalWire(d *wire.Decoder) error {
	m.Header.unmarshal(d)
	m.Node = d.String()
	m.Host = d.String()
	m.ProcTime = d.Float64()
	return d.Err()
}
