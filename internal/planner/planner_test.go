package planner

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/world"
)

func labCostmap(t testing.TB) *costmap.Costmap {
	m := world.LabMap()
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := costmap.New(cfg)
	c.SetStatic(m)
	return c
}

func emptyCostmap(w, h float64) *costmap.Costmap {
	m := world.EmptyRoomMap(w, h, 0.05)
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	c := costmap.New(cfg)
	c.SetStatic(m)
	return c
}

func TestStraightLinePlan(t *testing.T) {
	cm := emptyCostmap(6, 6)
	for _, algo := range []Algorithm{AStar, Dijkstra} {
		p := New(algo)
		res, err := p.Plan(cm, geom.V(1, 3), geom.V(5, 3))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Path) < 2 {
			t.Fatalf("%v: path too short: %v", algo, res.Path)
		}
		// Path length should be close to the straight-line 4 m.
		if l := res.Length(); l < 3.9 || l > 4.6 {
			t.Errorf("%v: length = %v, want ≈ 4", algo, l)
		}
		// Endpoints near requested start/goal (cell-center quantization).
		if res.Path[0].Dist(geom.V(1, 3)) > 0.1 {
			t.Errorf("%v: start = %v", algo, res.Path[0])
		}
		if res.Path[len(res.Path)-1].Dist(geom.V(5, 3)) > 0.1 {
			t.Errorf("%v: goal = %v", algo, res.Path[len(res.Path)-1])
		}
	}
}

func TestAStarExpandsFewerNodesThanDijkstra(t *testing.T) {
	cm := labCostmap(t)
	start, goal := geom.V(0.6, 0.6), geom.V(11, 5)
	a, err := New(AStar).Plan(cm, start, goal)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Dijkstra).Plan(cm, start, goal)
	if err != nil {
		t.Fatal(err)
	}
	if a.Expanded >= d.Expanded {
		t.Errorf("A* expanded %d >= Dijkstra %d", a.Expanded, d.Expanded)
	}
	// Both must find near-equal-cost paths (A* heuristic is admissible).
	if math.Abs(a.Cost-d.Cost) > 0.25*d.Cost {
		t.Errorf("costs diverge: A*=%v Dijkstra=%v", a.Cost, d.Cost)
	}
}

func TestPlanAroundObstacle(t *testing.T) {
	cm := labCostmap(t)
	// Across the lab, through the doorway at (3.1, ~3).
	res, err := New(AStar).Plan(cm, geom.V(1, 1), geom.V(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Path must avoid lethal/inscribed cost everywhere.
	for _, pt := range res.Path {
		if c := cm.WorldCost(pt); c >= costmap.InscribedCost && c != costmap.UnknownCost {
			t.Fatalf("path passes through cost %d at %v", c, pt)
		}
	}
	// It must be longer than the crow-flies distance (it detours).
	if res.Length() <= geom.V(1, 1).Dist(geom.V(5, 5)) {
		t.Error("path should detour around the wall")
	}
}

func TestNoPath(t *testing.T) {
	m := world.EmptyRoomMap(4, 4, 0.05)
	// Seal off a chamber.
	for y := 0; y < m.Height; y++ {
		m.Set(geom.Cell{X: 40, Y: y}, grid.Occupied)
	}
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	_, err := New(AStar).Plan(cm, geom.V(1, 2), geom.V(3, 2))
	if err == nil {
		t.Fatal("expected no-path error")
	}
}

func TestGoalInObstacleFails(t *testing.T) {
	cm := labCostmap(t)
	if _, err := New(AStar).Plan(cm, geom.V(1, 1), geom.V(5.5, 2.0)); err == nil {
		t.Error("goal inside desk should fail")
	}
	if _, err := New(AStar).Plan(cm, geom.V(1, 1), geom.V(-5, 0)); err == nil {
		t.Error("goal off-map should fail")
	}
}

func TestPlannerKeepsClearance(t *testing.T) {
	// With cost weighting, the path through a wide corridor should stay
	// away from walls rather than hugging them.
	cm := emptyCostmap(6, 2)
	res, err := New(AStar).Plan(cm, geom.V(0.5, 1), geom.V(5.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Path[1 : len(res.Path)-1] {
		if pt.Y < 0.5 || pt.Y > 1.5 {
			t.Errorf("path hugs wall at %v", pt)
		}
	}
}

func TestAllowUnknown(t *testing.T) {
	m := grid.NewMap(60, 60, 0.05, geom.V(0, 0), grid.Unknown)
	// A known free pocket around the start only.
	for y := 15; y < 45; y++ {
		for x := 0; x < 20; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Free)
		}
	}
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	goal := geom.V(2.5, 1.5) // in unknown territory
	if _, err := New(AStar).Plan(cm, geom.V(0.5, 1.5), goal); err == nil {
		t.Fatal("default planner should refuse unknown goals")
	}
	p := New(AStar)
	p.AllowUnknown = true
	res, err := p.Plan(cm, geom.V(0.5, 1.5), goal)
	if err != nil {
		t.Fatalf("exploring planner failed: %v", err)
	}
	if len(res.Path) < 2 {
		t.Error("no path through unknown")
	}
}

func TestSimplify(t *testing.T) {
	// Collinear points collapse to endpoints.
	path := []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	out := Simplify(path, 0.01)
	if len(out) != 2 {
		t.Errorf("collinear simplify = %v", out)
	}
	// A corner is preserved.
	path = []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}
	out = Simplify(path, 0.01)
	if len(out) != 3 {
		t.Errorf("corner simplify = %v", out)
	}
	// Short paths pass through.
	if got := Simplify(path[:2], 0.01); len(got) != 2 {
		t.Errorf("short path = %v", got)
	}
}

func TestStartInInflationEscapes(t *testing.T) {
	cm := labCostmap(t)
	// Start very close to a wall (inside inflation, not lethal).
	res, err := New(AStar).Plan(cm, geom.V(0.18, 0.18), geom.V(2, 1))
	if err != nil {
		t.Fatalf("start in inflated zone should still plan: %v", err)
	}
	if len(res.Path) < 2 {
		t.Error("degenerate path")
	}
}

func BenchmarkAStarLab(b *testing.B) {
	cm := labCostmap(b)
	p := New(AStar)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(cm, geom.V(0.6, 0.6), geom.V(11, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraLab(b *testing.B) {
	cm := labCostmap(b)
	p := New(Dijkstra)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(cm, geom.V(0.6, 0.6), geom.V(11, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAStarNeverBeatsOptimalCost: property — over random clutter maps,
// A* with the admissible octile heuristic must return the same traversal
// cost as Dijkstra (the exact optimum) within float tolerance.
func TestAStarMatchesDijkstraOnRandomMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		m := world.RandomClutterMap(6, 6, 0.1, 5, rng)
		cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
		cm := costmap.New(cfg)
		cm.SetStatic(m)
		start, goal := geom.V(0.5, 0.5), geom.V(5.5, 5.5)
		a, errA := New(AStar).Plan(cm, start, goal)
		d, errD := New(Dijkstra).Plan(cm, start, goal)
		if (errA == nil) != (errD == nil) {
			t.Fatalf("trial %d: reachability disagrees: %v vs %v", trial, errA, errD)
		}
		if errA != nil {
			continue
		}
		if math.Abs(a.Cost-d.Cost) > 1e-6*math.Max(1, d.Cost) {
			t.Errorf("trial %d: A* cost %v != Dijkstra cost %v", trial, a.Cost, d.Cost)
		}
		if a.Expanded > d.Expanded {
			t.Errorf("trial %d: A* expanded more nodes (%d) than Dijkstra (%d)",
				trial, a.Expanded, d.Expanded)
		}
	}
}
