// Package planner implements the Path Planning node: grid search over
// the costmap with either A* (with an admissible octile heuristic) or
// Dijkstra, matching the ROS global_planner the paper pairs with both
// algorithms. Traversal cost combines distance with the costmap's
// inflated cost, so planned paths keep clearance from obstacles.
//
// Plans report the number of expanded nodes so the mission engine can
// account the node's (small) share of Table II cycles.
package planner

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
)

// Algorithm selects the search strategy.
type Algorithm int

const (
	AStar Algorithm = iota
	Dijkstra
)

func (a Algorithm) String() string {
	if a == Dijkstra {
		return "dijkstra"
	}
	return "astar"
}

// ErrNoPath is returned when the goal is unreachable.
var ErrNoPath = errors.New("planner: no path to goal")

// Result is a produced plan.
type Result struct {
	Path     []geom.Vec2 // world-frame waypoints, start to goal inclusive
	Cost     float64     // accumulated traversal cost
	Expanded int         // nodes expanded by the search (work measure)
}

// Length returns the metric length of the planned path.
func (r Result) Length() float64 { return geom.PathLength(r.Path) }

// Planner runs grid searches over a costmap.
type Planner struct {
	Algo Algorithm
	// CostWeight scales how strongly inflated costmap cost repels the
	// path, in meters of equivalent detour per unit cost.
	CostWeight float64
	// AllowUnknown permits traversing unknown cells (needed during
	// exploration, where most of the map is still unknown).
	AllowUnknown bool
}

// New returns a planner with the given algorithm and sensible weights.
func New(algo Algorithm) *Planner {
	return &Planner{Algo: algo, CostWeight: 0.01, AllowUnknown: false}
}

type pqItem struct {
	cell     geom.Cell
	priority float64
	index    int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int           { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool { return pq[i].priority < pq[j].priority }
func (pq priorityQueue) Swap(i, j int)      { pq[i], pq[j] = pq[j], pq[i]; pq[i].index = i; pq[j].index = j }
func (pq *priorityQueue) Push(x interface{}) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

var neighbors = [8]struct {
	dx, dy int
	dist   float64
}{
	{1, 0, 1}, {-1, 0, 1}, {0, 1, 1}, {0, -1, 1},
	{1, 1, math.Sqrt2}, {1, -1, math.Sqrt2}, {-1, 1, math.Sqrt2}, {-1, -1, math.Sqrt2},
}

// Plan searches for a path from start to goal (world coordinates).
func (p *Planner) Plan(cm *costmap.Costmap, start, goal geom.Vec2) (Result, error) {
	sc := cm.WorldToCell(start)
	gc := cm.WorldToCell(goal)
	if !cm.InBounds(sc) || !cm.InBounds(gc) {
		return Result{}, fmt.Errorf("planner: endpoint outside map (start %v, goal %v)", sc, gc)
	}
	if !p.passable(cm, gc) {
		return Result{}, fmt.Errorf("planner: goal cell %v is not traversable", gc)
	}
	// The start is exempt from traversability (the robot may sit in
	// inflated cost); the search escapes through the cheapest route.

	w, h := cm.Dims()
	res := cm.Config().Resolution
	gScore := make([]float64, w*h)
	for i := range gScore {
		gScore[i] = math.Inf(1)
	}
	cameFrom := make([]int32, w*h)
	for i := range cameFrom {
		cameFrom[i] = -1
	}
	closed := make([]bool, w*h)
	idx := func(c geom.Cell) int { return c.Y*w + c.X }

	heuristic := func(c geom.Cell) float64 {
		if p.Algo == Dijkstra {
			return 0
		}
		// Octile distance in meters: admissible for 8-connected grids.
		dx := math.Abs(float64(c.X - gc.X))
		dy := math.Abs(float64(c.Y - gc.Y))
		return res * (math.Max(dx, dy) + (math.Sqrt2-1)*math.Min(dx, dy))
	}

	pq := &priorityQueue{}
	heap.Init(pq)
	gScore[idx(sc)] = 0
	heap.Push(pq, &pqItem{cell: sc, priority: heuristic(sc)})
	expanded := 0

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*pqItem).cell
		ci := idx(cur)
		if closed[ci] {
			continue
		}
		closed[ci] = true
		expanded++
		if cur == gc {
			path := p.reconstruct(cm, cameFrom, sc, gc)
			return Result{Path: path, Cost: gScore[ci], Expanded: expanded}, nil
		}
		for _, nb := range neighbors {
			next := geom.Cell{X: cur.X + nb.dx, Y: cur.Y + nb.dy}
			if !cm.InBounds(next) || !p.passable(cm, next) {
				continue
			}
			ni := idx(next)
			if closed[ni] {
				continue
			}
			stepCost := nb.dist*res + p.CostWeight*float64(p.cellCost(cm, next))
			tentative := gScore[ci] + stepCost
			if tentative < gScore[ni] {
				gScore[ni] = tentative
				cameFrom[ni] = int32(ci)
				heap.Push(pq, &pqItem{cell: next, priority: tentative + heuristic(next)})
			}
		}
	}
	return Result{Expanded: expanded}, ErrNoPath
}

func (p *Planner) passable(cm *costmap.Costmap, c geom.Cell) bool {
	cost := cm.Cost(c)
	if cost == costmap.UnknownCost {
		return p.AllowUnknown
	}
	return cost < costmap.InscribedCost
}

func (p *Planner) cellCost(cm *costmap.Costmap, c geom.Cell) uint8 {
	cost := cm.Cost(c)
	if cost == costmap.UnknownCost {
		return 50 // mild penalty for venturing into the unknown
	}
	return cost
}

func (p *Planner) reconstruct(cm *costmap.Costmap, cameFrom []int32, sc, gc geom.Cell) []geom.Vec2 {
	w, _ := cm.Dims()
	var cells []geom.Cell
	cur := gc
	for {
		cells = append(cells, cur)
		if cur == sc {
			break
		}
		prev := cameFrom[cur.Y*w+cur.X]
		if prev < 0 {
			break
		}
		cur = geom.Cell{X: int(prev) % w, Y: int(prev) / w}
	}
	// Reverse and convert to world points.
	path := make([]geom.Vec2, len(cells))
	for i := range cells {
		path[i] = cm.CellToWorld(cells[len(cells)-1-i])
	}
	return Simplify(path, cm.Config().Resolution*0.5)
}

// Simplify removes collinear interior waypoints using a perpendicular
// distance tolerance (a light Douglas-Peucker pass), shrinking paths from
// hundreds of grid steps to a handful of segment corners.
func Simplify(path []geom.Vec2, tol float64) []geom.Vec2 {
	if len(path) <= 2 {
		return path
	}
	keep := make([]bool, len(path))
	keep[0], keep[len(path)-1] = true, true
	simplifyRange(path, 0, len(path)-1, tol, keep)
	out := path[:0:0]
	for i, k := range keep {
		if k {
			out = append(out, path[i])
		}
	}
	return out
}

func simplifyRange(path []geom.Vec2, a, b int, tol float64, keep []bool) {
	if b <= a+1 {
		return
	}
	seg := geom.Segment{A: path[a], B: path[b]}
	worst, worstIdx := 0.0, -1
	for i := a + 1; i < b; i++ {
		if d := seg.Dist(path[i]); d > worst {
			worst, worstIdx = d, i
		}
	}
	if worst > tol && worstIdx > 0 {
		keep[worstIdx] = true
		simplifyRange(path, a, worstIdx, tol, keep)
		simplifyRange(path, worstIdx, b, tol, keep)
	}
}
