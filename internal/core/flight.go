package core

import (
	"math"

	"lgvoffload/internal/obs"
)

// This file is the engine's only coupling to the flight recorder and
// the SLO engine. Like the mission store hooks (store.go), everything
// here is strictly additive: it reads values the tick already computed,
// consumes no randomness, and never feeds back into control decisions —
// an instrumented mission is bit-identical to a bare one. The disabled
// path (both nil) is a single branch, no allocation.

// recordFlight captures one per-tick flight frame and feeds the SLO
// judge. The frame is recorded before the judgment so a breach-triggered
// dump always contains the breach tick itself.
func (e *engine) recordFlight(now, pipelineLat float64) {
	if e.fr == nil && e.slo == nil {
		return
	}
	remoteOn := 0
	for _, h := range e.placement.Host {
		if h != HostLGV {
			remoteOn++
		}
	}
	if e.fr != nil {
		ns := e.link.Stats()
		e.fr.Record(obs.FlightFrame{
			T:         now,
			VDP:       pipelineLat,
			EnergyJ:   e.meter.Total(),
			Bandwidth: e.prof.Bandwidth(now),
			Direction: e.prof.Direction(),
			Signal:    e.link.Signal(),
			MaxVel:    e.vmax,
			RealVel:   math.Abs(e.w.Robot.Vel.V),
			RemoteOn:  remoteOn,

			Sent:     ns.Sent,
			Dropped:  ns.Dropped(),
			Misses:   e.safety.Misses(),
			Stops:    e.safety.Stops(),
			Failover: e.safety.Failovers(),
			Handoffs: e.link.Handoffs(),
			Switches: e.switches,

			Compute:   e.lastCompute,
			Queue:     e.lastQueue,
			Transport: e.lastTranspt,
		})
	}
	for _, b := range e.slo.Observe(obs.SLOSample{
		T:         now,
		VDP:       pipelineLat,
		EnergyJ:   e.meter.Total(),
		Staleness: e.safety.Staleness(now),
		Handoffs:  e.link.Handoffs(),
	}) {
		e.tel.SLOBreach(now, b.Metric, b.Value, b.Limit, b.Rule)
		e.flightDump("slo:"+b.Metric, b.Rule, now)
	}
}

// flightDump requests a rate-limited bundle dump and counts the ones
// that actually happen.
func (e *engine) flightDump(reason, detail string, now float64) {
	if e.fr == nil {
		return
	}
	if b := e.fr.Dump(reason, detail, now); b != nil {
		e.tel.Count(obs.MFlightDumps, reason, 1)
	}
}
