package core

import (
	"math"

	"lgvoffload/internal/coverage"
	"lgvoffload/internal/explore"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/timing"
	"lgvoffload/internal/tracker"
	"lgvoffload/internal/wire"
)

// probeBytes is the size of the Algorithm 2 heartbeat probe, and
// cmdBytes the velocity command payload (the paper's 48 B example).
const (
	probeBytes = 64
	cmdBytes   = 48
)

// controlTick runs one pass of the Fig. 2 pipeline at virtual time now,
// schedules the resulting velocity command, accounts work/energy, and —
// in Adaptive mode — applies Algorithms 1 and 2.
func (e *engine) controlTick(now float64) {
	cfg := e.cfg

	// Per-tick critical-path split for the flight recorder; zeroed here
	// so ticks that exit early (dropped uplink) report an empty split.
	e.lastCompute, e.lastQueue, e.lastTranspt = 0, 0, 0

	// --- Causal trace for this tick. ---------------------------------------
	// Both ids are 0 when tracing is off; every span call below then
	// no-ops without allocating, mirroring the nil-Telemetry contract.
	// The root span is recorded last, once the command delivery time —
	// the end of the VDP makespan — is known; its id is reserved now so
	// children can reference it.
	tr := e.tr
	tickTrace := tr.NewTrace()
	tickRoot := tr.NextID()

	// VDP segment collection for the trace layout. Fixed-size arrays:
	// the hot path must not allocate whether or not tracing is on.
	type vdpSeg struct {
		node string
		host mw.HostID
		dur  float64
	}
	var localSegs, remoteSegs [3]vdpSeg
	nLocal, nRemote := 0, 0

	// --- Sense. -----------------------------------------------------------
	scan := e.laser.Sense(cfg.Map, e.w.Robot.Pose, now)
	odomEst := e.odo.Update(e.w.Robot.Pose)
	delta := e.prevOdom.Delta(odomEst)
	e.prevOdom = odomEst

	// --- Remote involvement and the sensor uplink. ------------------------
	vdpRemote := e.placement.Of(NodeCostmap) != HostLGV || e.placement.Of(NodeTracking) != HostLGV
	slamRemote := e.slm != nil && e.placement.Of(NodeSLAM) != HostLGV
	anyRemote := vdpRemote || slamRemote

	var upLat, upQueue float64
	upDropped := false
	if anyRemote {
		scanFrame := wire.EncodedSize(msg.FromSensorInto(&e.scanMsg, scan, e.seq)) + 60 // + odom piggyback
		e.seq++
		arrive, drop, qd := e.link.SendDirDetail(now, scanFrame, netsim.DirUp)
		e.msgsSent++
		e.bytesUp += float64(scanFrame)
		e.meter.AddTransmit(float64(scanFrame))
		if drop {
			e.msgsDropped++
			upDropped = true
			e.tel.Drop(now, "scan", "uplink")
			tr.Add(tickTrace, tickRoot, "uplink_drop", string(HostLGV), "net",
				spans.Mark, now, now)
		} else {
			upLat = arrive - now
			upQueue = qd
			e.tel.Transfer(now, arrive, "scan", string(e.placement.Remote), scanFrame)
			// Kernel-buffer queueing and the air/WAN hop as distinct net
			// spans. A SLAM-only uplink is causally in the tick but off
			// the command path, so it degrades to Aux.
			upQ, upT := spans.Queue, spans.Transport
			if !vdpRemote {
				upQ, upT = spans.Aux, spans.Aux
			}
			if qd > 0 {
				tr.Add(tickTrace, tickRoot, "uplink_queue", string(HostLGV), "net",
					upQ, now, now+qd)
			}
			tr.Add(tickTrace, tickRoot, "uplink", string(e.placement.Remote), "net",
				upT, now+qd, arrive)
		}
	}

	// --- Localization. -----------------------------------------------------
	localWork := hostsim.Work{} // cycles executed on the LGV this tick
	switch cfg.Workload {
	case NavigationWithMap, CoverageWithMap:
		st := e.loc.Update(delta, scan)
		w := AMCLWork(st.BeamOps)
		e.counter.Account(NodeLocalization, w)
		localWork = localWork.Add(w) // localization is T2: stays on the LGV
		e.pose = e.loc.Estimate()
		if e.tel != nil || tickTrace != 0 { // exec time is computed for observability only
			tLoc := e.platforms[HostLGV].ExecTime(w, 1)
			e.tel.NodeExec(NodeLocalization, string(HostLGV), now, tLoc, 1)
			tr.Add(tickTrace, tickRoot, NodeLocalization, string(HostLGV),
				NodeLocalization, spans.Aux, now, now+tLoc)
		}
	case ExplorationNoMap:
		e.pose = e.stepSLAM(now, delta, scan, slamRemote, upDropped, &localWork, tickTrace, tickRoot)
	}

	// --- A dropped uplink starves the remote VDP: no command this tick. ----
	if vdpRemote && upDropped {
		e.noteMiss(now)
		e.nextControl = now + cfg.ControlPeriod
		// Zero-makespan root: the tick produced no command, so it has no
		// critical path; the analyzer skips it.
		tr.Record(spans.Span{Trace: tickTrace, ID: tickRoot, Name: "tick",
			Host: string(HostLGV), Kind: spans.Tick, Start: now, End: now})
		e.finishTick(now, localWork, 0)
		return
	}

	// --- CostmapGen. --------------------------------------------------------
	if cfg.Workload == ExplorationNoMap && e.slm.Updates() > 0 {
		// The SLAM map refreshes the static layer before obstacle marking.
		e.cm.SetStatic(e.slm.Map())
	}
	cmStats := e.cm.Update(e.pose, scan)
	cmWork := CostmapWork(cmStats.Total())
	e.counter.Account(NodeCostmap, cmWork)
	cmHost := e.placement.Of(NodeCostmap)
	tCost := e.platforms[cmHost].ExecTime(cmWork, 1)
	e.prof.RecordProc(NodeCostmap, tCost)
	e.tel.NodeExec(NodeCostmap, string(cmHost), now, tCost, 1)
	if cmHost == HostLGV {
		localWork = localWork.Add(cmWork)
		localSegs[nLocal] = vdpSeg{NodeCostmap, cmHost, tCost}
		nLocal++
	} else {
		remoteSegs[nRemote] = vdpSeg{NodeCostmap, cmHost, tCost}
		nRemote++
	}

	// --- Goal selection and global planning. -------------------------------
	e.updateGoalAndPath(now, &localWork)

	// --- Path Tracking. -----------------------------------------------------
	// Latency compensation: the command will apply one VDP makespan from
	// now, so track from the pose the robot will have reached by then
	// (standard practice; without it a slow local pipeline oscillates).
	tkHost := e.placement.Of(NodeTracking)
	lookahead := e.prof.VDP(e.placement).Total()
	if lookahead > 1.0 {
		lookahead = 1.0
	}
	trackPose := e.w.Robot.Vel.Integrate(e.pose, lookahead)
	in := tracker.Input{
		Pose: trackPose, Vel: e.w.Robot.Vel, Path: e.path,
		Costmap: e.cm, MaxVCap: e.vmax,
	}
	threads := 1
	if tkHost != HostLGV && e.threadsNow > 1 {
		threads = e.threadsNow
	}
	// Execution threads may be overridden independently of the modeled
	// (billed) thread count: pooled kernels are positionally partitioned,
	// so any KernelThreads × KernelPartition choice must not perturb the
	// mission — the determinism invariant depends on exactly that.
	execThreads := threads
	if cfg.KernelThreads > 0 {
		execThreads = cfg.KernelThreads
	}
	var cmd geom.Twist
	var out tracker.Output
	var err error
	if e.havePth {
		if execThreads > 1 {
			out, err = e.tk.PlanParallel(in, execThreads, cfg.KernelPartition)
		} else {
			out, err = e.tk.Plan(in)
		}
		if err != nil {
			cmd = e.tk.RecoveryCmd(trackPose, e.path)
		} else {
			cmd = out.Cmd
		}
	}
	tkWork := TrackingWork(out.Ops)
	e.counter.Account(NodeTracking, tkWork)
	tTrack := e.platforms[tkHost].ExecTime(tkWork, threads)
	e.prof.RecordProc(NodeTracking, tTrack)
	e.tel.NodeExec(NodeTracking, string(tkHost), now, tTrack, threads)
	if tkHost == HostLGV {
		localWork = localWork.Add(tkWork)
		localSegs[nLocal] = vdpSeg{NodeTracking, tkHost, tTrack}
		nLocal++
	} else {
		remoteSegs[nRemote] = vdpSeg{NodeTracking, tkHost, tTrack}
		nRemote++
	}

	// --- Velocity Multiplexer (always on the LGV: it owns the motors). -----
	muxWork := MuxWork()
	e.counter.Account(NodeMux, muxWork)
	tMux := e.platforms[HostLGV].ExecTime(muxWork, 1)
	e.prof.RecordProc(NodeMux, tMux)
	e.tel.NodeExec(NodeMux, string(HostLGV), now, tMux, 1)
	localWork = localWork.Add(muxWork)
	localSegs[nLocal] = vdpSeg{NodeMux, HostLGV, tMux}
	nLocal++

	// --- Deliver the command along the VDP. --------------------------------
	robotProc := tMux
	remoteProc := 0.0
	if cmHost == HostLGV {
		robotProc += tCost
	} else {
		remoteProc += tCost
	}
	if tkHost == HostLGV {
		robotProc += tTrack
	} else {
		remoteProc += tTrack
	}

	var downLat, downQueue float64
	delivered := false
	tickEnd := now
	if vdpRemote {
		// The velocity command rides the wireless link back down.
		readyAt := now + upLat + remoteProc
		arrive, drop, dqd := e.link.SendDirDetail(readyAt, cmdBytes, netsim.DirDown)
		e.msgsSent++
		if drop {
			e.msgsDropped++
			e.tel.Drop(readyAt, "cmd_vel", "downlink")
			e.noteMiss(now)
			tr.Add(tickTrace, tickRoot, "downlink_drop", string(HostLGV), "net",
				spans.Mark, readyAt, readyAt)
			tickEnd = readyAt // the makespan ends where the command was lost
		} else {
			downLat = arrive - readyAt
			downQueue = dqd
			e.prof.RecordRTT(upLat + downLat)
			e.tel.Transfer(readyAt, arrive, "cmd_vel", string(HostLGV), cmdBytes)
			e.pendingCmds = append(e.pendingCmds,
				pendingCmd{at: arrive + robotProc, cmd: cmd, trace: tickTrace, parent: tickRoot})
			e.safety.RemoteHit()
			if dqd > 0 {
				tr.Add(tickTrace, tickRoot, "downlink_queue", string(e.placement.Remote), "net",
					spans.Queue, readyAt, readyAt+dqd)
			}
			tr.Add(tickTrace, tickRoot, "downlink", string(HostLGV), "net",
				spans.Transport, readyAt+dqd, arrive)
			delivered = true
			tickEnd = arrive + robotProc
		}
		if tickTrace != 0 {
			// Remote VDP compute runs between uplink arrival and the
			// downlink send; robot-side compute after command arrival.
			cursor := now + upLat
			for i := 0; i < nRemote; i++ {
				sg := remoteSegs[i]
				tr.Add(tickTrace, tickRoot, sg.node, string(sg.host), sg.node,
					spans.Compute, cursor, cursor+sg.dur)
				cursor += sg.dur
			}
			if delivered {
				cursor = tickEnd - robotProc
				for i := 0; i < nLocal; i++ {
					sg := localSegs[i]
					tr.Add(tickTrace, tickRoot, sg.node, string(sg.host), sg.node,
						spans.Compute, cursor, cursor+sg.dur)
					cursor += sg.dur
				}
			}
		}
	} else {
		e.pendingCmds = append(e.pendingCmds,
			pendingCmd{at: now + robotProc, cmd: cmd, trace: tickTrace, parent: tickRoot})
		delivered = true
		tickEnd = now + robotProc
		if tickTrace != 0 {
			cursor := now
			for i := 0; i < nLocal; i++ {
				sg := localSegs[i]
				tr.Add(tickTrace, tickRoot, sg.node, string(sg.host), sg.node,
					spans.Compute, cursor, cursor+sg.dur)
				cursor += sg.dur
			}
		}
	}
	// Root span: [tick start, command delivery] — the VDP makespan. Its
	// compute/queue/transport children sum to it by construction.
	tr.Record(spans.Span{Trace: tickTrace, ID: tickRoot, Name: "tick",
		Host: string(HostLGV), Kind: spans.Tick, Start: now, End: tickEnd})

	if delivered {
		e.lastCompute = robotProc + remoteProc
		if vdpRemote {
			e.lastQueue = upQueue + downQueue
			e.lastTranspt = (upLat - upQueue) + (downLat - downQueue)
		}
	}

	// Surface the same decomposition through the obs registry so p50/p95
	// per segment show up in snapshots and the post-mortem.
	if e.tel != nil && delivered {
		e.tel.Observe(obs.MCritComputeSeconds, string(HostLGV), robotProc)
		if remoteProc > 0 {
			e.tel.Observe(obs.MCritComputeSeconds, string(e.placement.Remote), remoteProc)
		}
		if vdpRemote {
			e.tel.Observe(obs.MCritQueueSeconds, "up", upQueue)
			e.tel.Observe(obs.MCritTransportSeconds, "up", upLat-upQueue)
			e.tel.Observe(obs.MCritQueueSeconds, "down", downQueue)
			e.tel.Observe(obs.MCritTransportSeconds, "down", downLat-downQueue)
		}
	}

	// --- Pacing: a busy on-board pipeline delays the next tick; an -------
	// --- offloaded pipeline keeps the 5 Hz rate (the server pipelines). --
	e.nextControl = now + math.Max(cfg.ControlPeriod, robotProc)

	// --- Velocity cap from the profiled VDP makespan (Eq. 2c). -------------
	tp := e.prof.VDP(e.placement).Total()
	e.vmax = timing.MaxVelocity(tp, cfg.AMax, cfg.StopDist)
	if e.vmax > cfg.VCeil {
		e.vmax = cfg.VCeil
	}
	e.vmaxSum += e.vmax
	e.vmaxCount++

	// Server resource accounting (§VIII-E): while any node runs remotely,
	// the deployment reserves `threads` server cores for this robot — the
	// quantity shedding reduces ("save the financial cost and resource
	// usage on the cloud").
	if vdpRemote || remoteProc > 0 {
		e.coreSeconds += float64(threads) * (e.nextControl - now)
	}
	e.adjustParallelism(now)

	e.lastCmWork, e.lastTkWork = cmWork, tkWork
	e.finishTick(now, localWork, upLat+remoteProc+downLat)
}

// adjustParallelism implements the §VIII-E adaptivity analysis: track how
// much of the Eq. 2c velocity cap the robot actually realizes; when the
// environment (obstacles, turns) keeps the real velocity well under the
// cap, extra paid threads buy nothing, so shed them — and restore them
// when the robot runs free again.
func (e *engine) adjustParallelism(now float64) {
	const alpha = 0.05
	if e.vmax > 1e-6 {
		ratio := math.Abs(e.w.Robot.Vel.V) / e.vmax
		if ratio > 1 {
			ratio = 1
		}
		e.velRatioEMA += alpha * (ratio - e.velRatioEMA)
	}
	if !e.cfg.ShedParallelism || now < e.nextAdjust {
		return
	}
	e.nextAdjust = now + 5
	maxThreads := e.cfg.Deployment.Threads
	switch {
	case e.velRatioEMA < 0.7 && e.threadsNow > 1:
		e.threadsNow /= 2
		e.threadAdj++
	case e.velRatioEMA > 0.9 && e.threadsNow < maxThreads:
		e.threadsNow *= 2
		if e.threadsNow > maxThreads {
			e.threadsNow = maxThreads
		}
		e.threadAdj++
	}
}

// stepSLAM advances the SLAM node respecting its own processing budget:
// a busy (slow, local) SLAM skips scans and the robot dead-reckons on
// odometry meanwhile — exactly the stale-pose failure mode the paper's
// cloud acceleration addresses.
func (e *engine) stepSLAM(now float64, delta geom.Pose, scan *sensor.Scan, remote, upDropped bool, localWork *hostsim.Work, tickTrace, tickRoot uint64) geom.Pose {
	if now < e.slamBusyUntil || (remote && upDropped) {
		e.pendingSlamDelta = e.pendingSlamDelta.Compose(delta)
		return e.pose.Compose(delta) // dead-reckon while SLAM is unavailable
	}
	fullDelta := e.pendingSlamDelta.Compose(delta)
	e.pendingSlamDelta = geom.Pose{}

	threads := 1
	if remote && e.threadsNow > 1 {
		threads = e.threadsNow
	}
	execThreads := threads
	if e.cfg.KernelThreads > 0 {
		execThreads = e.cfg.KernelThreads
	}
	var st slam.UpdateStats
	if execThreads > 1 {
		st = e.slm.UpdateParallel(fullDelta, scan, execThreads, e.cfg.KernelPartition)
	} else {
		st = e.slm.Update(fullDelta, scan)
	}
	w := SlamWork(st.MatchOps, st.IntegrateOps, st.WeightOps, st.CopyOps)
	e.counter.Account(NodeSLAM, w)
	host := e.placement.Of(NodeSLAM)
	exec := e.platforms[host].ExecTime(w, threads)
	e.prof.RecordProc(NodeSLAM, exec)
	e.tel.NodeExec(NodeSLAM, string(host), now, exec, threads)
	e.tr.Add(tickTrace, tickRoot, NodeSLAM, string(host), NodeSLAM,
		spans.Aux, now, now+exec)
	if host == HostLGV {
		*localWork = localWork.Add(w)
		e.slamBusyUntil = now + exec
	} else {
		e.slamBusyUntil = now + exec // server-side latency also gates scan intake
	}
	return e.slm.BestPose()
}

// updateGoalAndPath refreshes the exploration goal and the global path.
// Exploration goals the planner cannot route to — frontiers in sensor
// shadows — are blacklisted so the mission never wedges on one, and a
// goal the robot makes no progress toward for a while is abandoned too.
func (e *engine) updateGoalAndPath(now float64, localWork *hostsim.Work) {
	cfg := e.cfg
	if cfg.Workload == CoverageWithMap {
		// The sweep window slides every tick; no periodic replanning.
		e.updateCoverage(now, localWork)
		return
	}
	if now < e.nextReplan && e.havePth && !e.stuckOnGoal(now) {
		return
	}
	e.nextReplan = now + cfg.ReplanPeriod

	if cfg.Workload == NavigationWithMap {
		e.planTo(now, e.route[0], localWork)
		return
	}
	if e.slm.Updates() == 0 {
		return
	}

	m := e.slm.Map()
	cands, res := explore.Candidates(m, e.pose.Pos, e.exCfg)
	w := ExploreWork(res.Ops)
	e.counter.Account(NodeExploration, w)
	*localWork = localWork.Add(w) // exploration is T2: stays local
	if e.tel != nil {             // exec time is computed for telemetry only
		e.tel.NodeExec(NodeExploration, string(HostLGV), now,
			e.platforms[HostLGV].ExecTime(w, 1), 1)
	}

	tried := 0
	for _, g := range cands {
		if e.isBlacklisted(g) {
			continue
		}
		if tried >= 3 {
			break // bound per-tick planning work
		}
		tried++
		if e.planTo(now, g, localWork) {
			if g != e.exGoal || !e.haveEx {
				e.exGoal, e.haveEx = g, true
				e.goalSince, e.goalStartPos = now, e.w.Robot.Pose.Pos
			}
			return
		}
		e.blacklist(g)
	}
	// Nothing plannable right now: stop chasing a goal; frontier churn on
	// the next SLAM updates usually opens a route.
	e.haveEx = false
}

// updateCoverage plans the boustrophedon sweep once, then advances the
// sliding path window the tracker follows. The window spans from the
// previous waypoint to a few waypoints ahead so the carrot cannot alias
// onto an adjacent sweep lane 25 cm away.
func (e *engine) updateCoverage(now float64, localWork *hostsim.Work) {
	if len(e.covPath) == 0 {
		path, st, err := coverage.Plan(e.cm, e.pose.Pos, coverage.DefaultConfig())
		w := CoverageWork(st.Ops)
		e.counter.Account(NodeCoverage, w)
		*localWork = localWork.Add(w) // coverage planning is T2: stays local
		tPlan := e.platforms[HostLGV].ExecTime(w, 1)
		e.prof.RecordProc(NodeCoverage, tPlan)
		e.tel.NodeExec(NodeCoverage, string(HostLGV), now, tPlan, 1)
		if err != nil {
			return
		}
		e.covPath = path
		e.covIdx = 1
		e.covLastPos = e.w.Robot.Pose.Pos
		e.covVisited = append(e.covVisited, e.covLastPos)
	}
	// Sample the trajectory for the Covered metric.
	if pos := e.w.Robot.Pose.Pos; pos.Dist(e.covLastPos) > 0.1 {
		e.covVisited = append(e.covVisited, pos)
		e.covLastPos = pos
	}
	// Advance past reached waypoints. The tolerance stays below the lane
	// spacing so it cannot skip to an adjacent lane, but above the wall
	// inflation band where the local planner slows to a crawl.
	for e.covIdx < len(e.covPath) && e.pose.Pos.Dist(e.covPath[e.covIdx]) < 0.3 {
		e.covIdx++
	}
	if e.covIdx >= len(e.covPath) {
		e.havePth = false
		return
	}
	// Track exactly the active segment: a wider window would let the
	// carrot alias onto an adjacent sweep lane only one tool-width away.
	e.path = e.covPath[e.covIdx-1 : e.covIdx+1]
	e.havePth = true
}

// planTo plans a global path to the goal, accounting the planner's work.
func (e *engine) planTo(now float64, goal geom.Vec2, localWork *hostsim.Work) bool {
	res, err := e.gp.Plan(e.cm, e.pose.Pos, goal)
	w := PlanWork(res.Expanded)
	e.counter.Account(NodePlanner, w)
	*localWork = localWork.Add(w) // planner is T2: stays local
	tPlan := e.platforms[HostLGV].ExecTime(w, 1)
	e.prof.RecordProc(NodePlanner, tPlan)
	e.tel.NodeExec(NodePlanner, string(HostLGV), now, tPlan, 1)
	if err == nil && len(res.Path) >= 2 {
		e.path = res.Path
		e.havePth = true
		return true
	}
	return false
}

// stuckOnGoal reports whether the robot has made no progress toward the
// current exploration goal for a full stuck window; the goal is then
// blacklisted and goal selection reruns.
func (e *engine) stuckOnGoal(now float64) bool {
	const window, minProgress = 12.0, 0.15
	if e.cfg.Workload != ExplorationNoMap || !e.haveEx {
		return false
	}
	if now-e.goalSince < window {
		return false
	}
	if e.w.Robot.Pose.Pos.Dist(e.goalStartPos) >= minProgress {
		e.goalSince, e.goalStartPos = now, e.w.Robot.Pose.Pos
		return false
	}
	e.blacklist(e.exGoal)
	e.haveEx = false
	return true
}

func (e *engine) isBlacklisted(g geom.Vec2) bool {
	const r2 = 0.35 * 0.35
	for _, b := range e.exBlacklist {
		if b.DistSq(g) < r2 {
			return true
		}
	}
	return false
}

func (e *engine) blacklist(g geom.Vec2) {
	if !e.isBlacklisted(g) {
		e.exBlacklist = append(e.exBlacklist, g)
	}
}

// sendProbe runs the heartbeat: a small probe uplink echoed by the
// server. Echo arrivals feed the bandwidth, latency and RTT meters that
// Algorithm 2, Algorithm 1 and the latency-baseline ablation read. The
// probe runs at a fixed rate from the main loop — decoupled from the
// pipeline's pacing, so a slow on-board pipeline cannot masquerade as a
// failing network.
func (e *engine) sendProbe(now float64) {
	e.prof.RecordDirection(e.link.Direction())
	upArrive, upDrop := e.link.SendDir(now, probeBytes, netsim.DirUp)
	e.meter.AddTransmit(probeBytes)
	if upDrop {
		e.tel.Drop(now, "probe", "uplink")
		return
	}
	downArrive, downDrop := e.link.SendDir(upArrive, probeBytes, netsim.DirDown)
	if downDrop {
		e.tel.Drop(upArrive, "probe", "downlink")
		return
	}
	e.prof.RecordPacket(downArrive, downArrive-now)
	e.prof.RecordRTT(downArrive - now)
	e.tel.Probe(now, downArrive-now)
}

// finishTick accounts local computation energy, runs the adaptive
// controller, and records the trace point.
func (e *engine) finishTick(now float64, localWork hostsim.Work, pipelineLat float64) {
	// Energy for cycles retired on board, capped at the Pi's capacity
	// over the tick interval.
	pi := e.platforms[HostLGV]
	interval := math.Max(e.nextControl-now, e.cfg.ControlPeriod)
	budget := pi.Speed() * 1e9 * float64(pi.Cores) * interval
	e.meter.AddCycles(math.Min(localWork.Total(), budget))

	e.tel.TickSpan(now, e.nextControl, pipelineLat)
	e.recordTick(now, pipelineLat)
	e.recordFlight(now, pipelineLat)

	if e.cfg.Deployment.Mode == Adaptive {
		e.adapt(now)
	}

	if e.cfg.RecordTrace {
		tail, _ := e.prof.TailLatency(0.99)
		e.trace = append(e.trace, TracePoint{
			T:          now,
			X:          e.w.Robot.Pose.Pos.X,
			Y:          e.w.Robot.Pose.Pos.Y,
			MaxVel:     e.vmax,
			RealVel:    math.Abs(e.w.Robot.Vel.V),
			Bandwidth:  e.prof.Bandwidth(now),
			TailLatSec: tail,
			Direction:  e.prof.Direction(),
			Signal:     e.link.Signal(),
			RemoteOn:   len(e.placement.RemoteNodes()) > 0,
		})
	}
}

// noteMiss records one missed remote VDP tick (scan lost uplink or
// command lost downlink) and trips the failover once the consecutive-miss
// limit is reached. It runs before finishTick's adapt pass so the pull
// home is attributed to the failover path, not the Algorithm 2 gate.
func (e *engine) noteMiss(now float64) {
	if e.cfg.Deployment.Mode != Adaptive || e.netctl.MissLimit <= 0 {
		return
	}
	e.safety.Miss()
	if e.safety.ShouldFailover() {
		e.failover(now)
	}
}

// failover pulls every remote node home and re-executes locally: the
// cloud VDP has stalled for FailoverMisses consecutive ticks, which
// Algorithm 2 alone cannot see when the watchdog-stopped robot's signal
// direction has decayed to zero. A hold-down window then vetoes going
// remote again so one failover is not immediately reversed.
func (e *engine) failover(now float64) {
	misses := e.safety.Misses()
	e.safety.TripFailover(now)

	nodes := make([]string, 0, len(e.placement.Host))
	for n := range e.placement.Host {
		nodes = append(nodes, n)
	}
	desired := NewPlacement(nodes)
	desired.Remote = e.placement.Remote
	desired.Threads = e.placement.Threads
	if placementEqual(desired, e.placement) {
		return
	}

	bw := e.prof.Bandwidth(now)
	dir := e.prof.Direction()
	from, to := remoteSetDesc(e.placement), remoteSetDesc(desired)
	e.placement = desired
	e.switches++
	e.pauseUntil = now + 0.3
	e.lastRemoteOK = false
	e.decisions = append(e.decisions, AdaptDecision{
		T: now, Reason: "failover",
		Bandwidth: bw, Direction: dir, RemoteOK: false,
		From: from, To: to,
	})
	e.recordDecision(e.decisions[len(e.decisions)-1])
	e.tel.Failover(now, misses, from+" -> "+to)
	e.tel.Switch(now, bw, dir, 0, false, from+" -> "+to)
	e.flightDump("failover", from+" -> "+to, now)
	e.tr.Add(e.tr.NewTrace(), 0, "failover", string(HostLGV), "safety",
		spans.Mark, now, now)
}

// adapt applies Algorithm 2 (network gating) and Algorithm 1 (node
// selection) and performs migrations with their state-transfer cost.
func (e *engine) adapt(now float64) {
	// Warm-up: the bandwidth window must fill before its rate means
	// anything, else the first tick's rate of 1 msg/s would trip the
	// controller spuriously.
	if now < 2*e.prof.bw.Window {
		return
	}
	// Register roaming handoffs with the safety controller, then freeze
	// adaptation while a handoff hold is active: the re-association dip
	// and the reset direction estimate are transients that must not flap
	// placement. Failover (noteMiss → failover) bypasses adapt entirely,
	// so a link that dies across a handoff still pulls home on schedule.
	if ht := e.link.HandoffTimes(); len(ht) > e.handoffSeen {
		for _, t := range ht[e.handoffSeen:] {
			e.safety.NoteHandoff(t)
		}
		e.handoffSeen = len(ht)
	}
	if e.safety.HandoffHoldActive(now) {
		return
	}
	bw := e.prof.Bandwidth(now)
	dir := e.prof.Direction()
	remoteOK := e.netctl.UpdateEx(bw, dir, e.safety.Misses())
	if remoteOK && e.safety.HoldActive(now) {
		// Post-failover hold-down: the bandwidth estimate may still be
		// optimistic right after a pull home; hysteresis wins.
		remoteOK = false
	}
	if remoteOK != e.lastRemoteOK {
		e.tel.Alg2(now, bw, dir, remoteOK)
		e.lastRemoteOK = remoteOK
	}

	var desired Placement
	var localVDP, cloudVDP float64
	reason := "alg2-gate"
	if !remoteOK {
		nodes := make([]string, 0, len(e.placement.Host))
		for n := range e.placement.Host {
			nodes = append(nodes, n)
		}
		desired = NewPlacement(nodes)
		desired.Remote = e.placement.Remote
		desired.Threads = e.placement.Threads
	} else {
		classes := Classify(e.counter)
		if len(classes) == 0 {
			return
		}
		localVDP, cloudVDP = e.estimateVDPs()
		desired, _ = e.strategy.Decide(classes, localVDP, cloudVDP)
		reason = "alg1-" + e.strategy.Goal.String()
	}

	if placementEqual(desired, e.placement) {
		return
	}
	// Migration: ship the mutable node state (costmap snapshot and, for
	// exploration, the SLAM maps) and pause the pipeline briefly.
	stateBytes := float64(len(e.cm.Snapshot()))
	if e.slm != nil {
		stateBytes += float64(e.cfg.Map.Width * e.cfg.Map.Height)
	}
	goingRemote := len(desired.RemoteNodes()) > len(e.placement.RemoteNodes())
	if goingRemote {
		// Uplink costs energy; downlink (coming home) is free for the LGV.
		e.meter.AddTransmit(stateBytes)
		e.bytesUp += stateBytes
	}
	from, to := remoteSetDesc(e.placement), remoteSetDesc(desired)
	e.placement = desired
	e.switches++
	e.pauseUntil = now + 0.3
	e.decisions = append(e.decisions, AdaptDecision{
		T: now, Reason: reason,
		Bandwidth: bw, Direction: dir, RemoteOK: remoteOK,
		LocalVDP: localVDP, CloudVDP: cloudVDP,
		From: from, To: to, StateBytes: stateBytes,
	})
	e.recordDecision(e.decisions[len(e.decisions)-1])
	e.tel.Switch(now, bw, dir, stateBytes,
		len(desired.RemoteNodes()) > 0, from+" -> "+to)
}

// estimateVDPs returns the Algorithm 1 inputs: the VDP makespan if all
// VDP nodes ran locally, and if T3 ran on the remote server (including
// the profiled round-trip time).
func (e *engine) estimateVDPs() (localVDP, cloudVDP float64) {
	pi := e.platforms[HostLGV]
	srv := e.platforms[e.strategy.Remote]
	cm := e.lastCmWork
	tk := e.lastTkWork
	// Prefer profiled times over model values where available; on a cold
	// profiler a silent 0 would bias the comparison, so fall back to the
	// platform model (mux) or a pessimistic full control period (RTT).
	muxTime := pi.ExecTime(MuxWork(), 1)
	if t, ok := e.prof.ProcTimeOK(NodeMux); ok {
		muxTime = t
	}
	rtt, ok := e.prof.RTTOK()
	if !ok {
		rtt = e.cfg.ControlPeriod
	}
	localVDP = pi.ExecTime(cm, 1) + pi.ExecTime(tk, 1) + muxTime
	cloudVDP = srv.ExecTime(cm, 1) + srv.ExecTime(tk, e.strategy.Threads) +
		muxTime + rtt
	return localVDP, cloudVDP
}

func placementEqual(a, b Placement) bool {
	if len(a.Host) != len(b.Host) {
		return false
	}
	for k, v := range a.Host {
		if b.Host[k] != v {
			return false
		}
	}
	return true
}
