package core

import (
	"math"
	"testing"
)

func TestProfilerEWMA(t *testing.T) {
	p := NewProfiler()
	p.RecordProc("n", 0.1)
	if got := p.ProcTime("n"); got != 0.1 {
		t.Errorf("first sample = %v", got)
	}
	p.RecordProc("n", 0.2)
	want := 0.1 + 0.3*(0.2-0.1)
	if got := p.ProcTime("n"); math.Abs(got-want) > 1e-12 {
		t.Errorf("ewma = %v, want %v", got, want)
	}
	if p.ProcTime("unknown") != 0 {
		t.Error("unknown node should be 0")
	}
}

func TestProfilerRTT(t *testing.T) {
	p := NewProfiler()
	if p.RTT() != 0 {
		t.Error("initial RTT")
	}
	p.RecordRTT(0.01)
	p.RecordRTT(0.02)
	got := p.RTT()
	if got <= 0.01 || got >= 0.02 {
		t.Errorf("smoothed RTT = %v", got)
	}
}

func TestProfilerVDPSplit(t *testing.T) {
	p := NewProfiler()
	p.RecordProc(NodeCostmap, 0.2)
	p.RecordProc(NodeTracking, 0.3)
	p.RecordProc(NodeMux, 0.01)
	p.RecordProc(NodeSLAM, 9.9) // not on the VDP: must be ignored
	p.RecordRTT(0.05)

	local := NewPlacement([]string{NodeCostmap, NodeTracking, NodeMux})
	b := p.VDP(local)
	if math.Abs(b.RobotProc-0.51) > 1e-12 || b.CloudProc != 0 || b.Network != 0 {
		t.Errorf("local VDP = %+v", b)
	}

	remote := local.Clone()
	remote.Host[NodeCostmap] = HostCloud
	remote.Host[NodeTracking] = HostCloud
	b = p.VDP(remote)
	if math.Abs(b.RobotProc-0.01) > 1e-12 {
		t.Errorf("robot proc = %v", b.RobotProc)
	}
	if math.Abs(b.CloudProc-0.5) > 1e-12 {
		t.Errorf("cloud proc = %v", b.CloudProc)
	}
	if b.Network != 0.05 {
		t.Errorf("network = %v", b.Network)
	}
	if math.Abs(b.Total()-0.56) > 1e-12 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestProfilerBandwidthAndLatency(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 5; i++ {
		p.RecordPacket(float64(i)*0.2, 0.005)
	}
	if r := p.Bandwidth(0.9); r != 5 {
		t.Errorf("bandwidth = %v", r)
	}
	if q, ok := p.TailLatency(0.99); !ok || q != 0.005 {
		t.Errorf("tail latency = %v %v", q, ok)
	}
	p.RecordDirection(-0.4)
	if p.Direction() != -0.4 {
		t.Error("direction")
	}
}

func TestProfilerNodesSorted(t *testing.T) {
	p := NewProfiler()
	p.RecordProc("b", 1)
	p.RecordProc("a", 1)
	ns := p.Nodes()
	if len(ns) != 2 || ns[0] != "a" {
		t.Errorf("nodes = %v", ns)
	}
}
