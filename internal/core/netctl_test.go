package core

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
)

func TestAlgorithm2SwitchesLocalOnWeakReceding(t *testing.T) {
	c := NewNetController(4)
	if !c.RemoteOK() {
		t.Fatal("should start remote")
	}
	// Strong link, approaching: stays remote.
	if !c.Update(5, 0.5) {
		t.Error("good conditions should keep remote")
	}
	// Weak link but approaching: keep current decision (no flap).
	if !c.Update(1, 0.5) {
		t.Error("weak+approaching should not switch yet")
	}
	// Weak link and receding: go local.
	if c.Update(1, -0.5) {
		t.Error("weak+receding must switch local")
	}
	if c.Switches() != 1 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestAlgorithm2SwitchesBackOnRecovery(t *testing.T) {
	c := NewNetController(4)
	c.Update(1, -0.5) // go local
	// Good bandwidth but still receding: stay local.
	if c.Update(5, -0.1) {
		t.Error("receding should keep local")
	}
	// Good bandwidth, approaching the WAP: back to remote.
	if !c.Update(5, 0.3) {
		t.Error("recovered link should re-enable remote")
	}
	if c.Switches() != 2 {
		t.Errorf("switches = %d", c.Switches())
	}
}

func TestAlgorithm2Hysteresis(t *testing.T) {
	c := NewNetController(4)
	// Observations straddling the threshold with mixed directions must
	// not flap the decision.
	obs := []struct{ r, d float64 }{
		{4.5, -0.2}, {3.5, 0.2}, {4.0, 0.0}, {4.2, -0.1}, {3.9, 0.1},
	}
	for _, o := range obs {
		c.Update(o.r, o.d)
	}
	if c.Switches() != 0 {
		t.Errorf("ambiguous observations caused %d switches", c.Switches())
	}
}

func TestAlgorithm2ThresholdBoundaryIsNeutral(t *testing.T) {
	c := NewNetController(4)
	// rate exactly at the threshold matches neither branch.
	before := c.RemoteOK()
	c.Update(4, -1)
	c.Update(4, 1)
	if c.RemoteOK() != before || c.Switches() != 0 {
		t.Error("boundary rate should keep the current decision")
	}
}

// TestLatencyPredictorFailsUnderUDPLoss is the §VI ablation: drive the
// link into the weak zone and compare the bandwidth+direction controller
// against the tail-latency baseline. The baseline keeps approving remote
// execution because the packets that survive still show low latency,
// while Algorithm 2 correctly goes local.
func TestLatencyPredictorFailsUnderUDPLoss(t *testing.T) {
	link := netsim.NewLink(netsim.DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(1)))
	bw := netsim.NewBandwidthMeter()
	lat := &netsim.LatencyMeter{}

	alg2 := NewNetController(4)
	base := NewLatencyController(0.050) // 50 ms tail budget

	// Robot walks away from the WAP at 0.5 m/s, sending 5 Hz probes.
	now := 0.0
	var alg2Decision, baseDecision bool
	for i := 0; i < 120; i++ {
		now += 0.2
		pos := geom.V(0.5*now, 0) // reaches 12 m at t=24 s
		link.SetRobotPos(pos)
		if arrive, dropped := link.Send(now, 64); !dropped {
			bw.Observe(arrive)
			lat.Observe(arrive - now)
		}
		alg2Decision = alg2.Update(bw.Rate(now), link.Direction())
		p99, ok := lat.Quantile(0.99)
		baseDecision = base.Update(p99, ok)
	}
	// At 12 m the link is dead: Algorithm 2 must have gone local.
	if alg2Decision {
		t.Error("Algorithm 2 failed to switch local in the dead zone")
	}
	// The latency baseline, fed only by surviving packets, is fooled as
	// long as the survivors kept sub-threshold latency. It must disagree
	// with Algorithm 2 for a substantial part of the degradation window —
	// verify it stayed remote at least until deep fade (bandwidth ≈ 0
	// long before its p99 crossed the budget).
	if !baseDecision {
		// It may eventually trip on queueing delay; assert it tripped
		// later than Algorithm 2 by replaying and recording first-switch
		// times.
		t.Log("baseline eventually tripped; verifying it was slower")
	}
	alg2First, baseFirst := firstSwitchTimes(t)
	if alg2First <= 0 {
		t.Fatal("Algorithm 2 never switched")
	}
	if baseFirst > 0 && baseFirst < alg2First {
		t.Errorf("latency baseline switched earlier (%v) than Algorithm 2 (%v)", baseFirst, alg2First)
	}
}

// firstSwitchTimes replays the §VI walk and returns when each controller
// first decided to go local (0 = never).
func firstSwitchTimes(t *testing.T) (alg2First, baseFirst float64) {
	t.Helper()
	link := netsim.NewLink(netsim.DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(1)))
	bw := netsim.NewBandwidthMeter()
	lat := &netsim.LatencyMeter{}
	alg2 := NewNetController(4)
	base := NewLatencyController(0.050)
	now := 0.0
	for i := 0; i < 120; i++ {
		now += 0.2
		link.SetRobotPos(geom.V(0.5*now, 0))
		if arrive, dropped := link.Send(now, 64); !dropped {
			bw.Observe(arrive)
			lat.Observe(arrive - now)
		}
		if alg2.Update(bw.Rate(now), link.Direction()) == false && alg2First == 0 {
			alg2First = now
		}
		p99, ok := lat.Quantile(0.99)
		if base.Update(p99, ok) == false && baseFirst == 0 {
			baseFirst = now
		}
	}
	return alg2First, baseFirst
}

func TestLatencyControllerNoSamplesKeepsDecision(t *testing.T) {
	c := NewLatencyController(0.05)
	if !c.Update(0, false) {
		t.Error("no samples must keep the initial remote decision")
	}
	c.Update(0.2, true)
	if c.RemoteOK() {
		t.Error("over-threshold latency should disable remote")
	}
	if c.Update(0, false) {
		t.Error("no samples must keep the local decision too")
	}
}

func TestMissLimitForcesLocalDespiteGoodInputs(t *testing.T) {
	c := NewNetController(4)
	c.MissLimit = 5
	// Bandwidth and direction both approve remote, but the miss counter
	// has hit the limit: the link is declared dead anyway.
	if c.UpdateEx(8, 0.9, 5) {
		t.Error("miss limit reached must force local")
	}
	if c.Switches() != 1 {
		t.Errorf("switches = %d, want 1", c.Switches())
	}
	// Below the limit the ordinary rule resumes: good inputs restore
	// remote once misses reset.
	if !c.UpdateEx(8, 0.9, 0) {
		t.Error("cleared misses with good inputs must restore remote")
	}
	// Stationary outage (rate 0, direction 0): neither paper branch
	// fires, but the miss gate still pulls the placement home.
	if c.UpdateEx(0, 0, 7) {
		t.Error("dead-stop outage must trip via the miss gate")
	}
}

func TestMissLimitZeroDisablesGate(t *testing.T) {
	c := NewNetController(4)
	// MissLimit 0 (the default): even an absurd miss count is ignored and
	// the plain Algorithm 2 rule decides.
	if !c.UpdateEx(8, 0.9, 1000) {
		t.Error("disabled gate must not force local")
	}
	if c.Switches() != 0 {
		t.Errorf("switches = %d, want 0", c.Switches())
	}
}
