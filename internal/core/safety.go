package core

// SafetyController is the engine's graceful-degradation authority. Two
// mechanisms, both driven from virtual time:
//
//   - A command-staleness watchdog: when no fresh VDP output has reached
//     the multiplexer within a deadline, the engine must issue a
//     zero-velocity safety stop rather than let the robot coast on a
//     stale cmd_vel. The muxer's per-source timeouts eventually starve a
//     stale command anyway; the watchdog formalizes the stop, fires
//     earlier than the navigation timeout, and makes the episode
//     observable.
//
//   - A consecutive-miss failover: Algorithm 2 gates offloading on
//     bandwidth AND signal direction, which is correct for mobility fade
//     but blind to a total outage while the robot is *stopped* — a
//     watchdog-stopped robot has direction d_t ≈ 0, so the "r_t <
//     threshold and d_t < 0" branch never fires and the mission wedges.
//     The failover path extends Algorithm 2's inputs with a count of
//     consecutive missed remote VDP ticks: past a limit, the engine
//     pulls the ECNs home and re-executes locally. A hold-down window
//     provides hysteresis so one failover isn't immediately reversed by
//     a still-optimistic bandwidth estimate.
type SafetyController struct {
	deadline  float64 // base watchdog deadline, s (see EffectiveDeadline)
	missLimit int     // consecutive misses that trip a failover
	hold      float64 // hold-down after a failover, s

	lastCmd   float64 // virtual time of the last delivered command
	stalled   bool    // inside a watchdog-stop episode
	misses    int     // consecutive missed remote VDP ticks
	holdUntil float64 // remote execution vetoed until this time

	// Roaming handoff hold-down: for handoffHold seconds after a WAP
	// handoff the adaptation loop freezes entirely — the re-association
	// dip and the reset direction estimate are transients, not evidence.
	// The failover path bypasses this (a genuinely dead link must still
	// pull home), which is safe because the handoff hold is shorter than
	// the miss-limit trip time.
	handoffHold  float64
	handoffUntil float64

	stops     int // watchdog-stop episodes
	failovers int // miss-limit failovers tripped
}

// NewSafetyController builds a controller; the engine supplies defaults
// through MissionConfig.fillDefaults.
func NewSafetyController(deadline float64, missLimit int, holdSec float64) *SafetyController {
	return &SafetyController{deadline: deadline, missLimit: missLimit, hold: holdSec}
}

// SetHandoffHold configures the post-handoff adaptation freeze window.
func (s *SafetyController) SetHandoffHold(holdSec float64) {
	if holdSec < 0 {
		holdSec = 0
	}
	s.handoffHold = holdSec
}

// CommandDelivered marks a fresh velocity command reaching the
// multiplexer at virtual time now, ending any stall episode.
func (s *SafetyController) CommandDelivered(now float64) {
	if now > s.lastCmd {
		s.lastCmd = now
	}
	s.stalled = false
}

// LastCommand returns when the last command was delivered.
func (s *SafetyController) LastCommand() float64 { return s.lastCmd }

// CheckStall evaluates the watchdog at virtual time now against an
// effective deadline (the engine passes max(configured, 3× profiled VDP
// makespan) so a legitimately slow local pipeline is not mistaken for a
// dead one). It returns whether the engine must hold a safety stop and
// whether this call opened a new episode (for counting and telemetry).
func (s *SafetyController) CheckStall(now, deadline float64) (stalled, first bool) {
	if deadline < s.deadline {
		deadline = s.deadline
	}
	if now-s.lastCmd <= deadline {
		return false, false
	}
	first = !s.stalled
	if first {
		s.stops++
	}
	s.stalled = true
	return true, first
}

// Staleness returns how long commands have been missing at time now.
func (s *SafetyController) Staleness(now float64) float64 { return now - s.lastCmd }

// Miss records one missed remote VDP tick (dropped scan uplink or lost
// command downlink) and returns the consecutive-miss count.
func (s *SafetyController) Miss() int {
	s.misses++
	return s.misses
}

// RemoteHit records a completed remote VDP round trip, clearing the
// consecutive-miss counter.
func (s *SafetyController) RemoteHit() { s.misses = 0 }

// Misses returns the current consecutive-miss count.
func (s *SafetyController) Misses() int { return s.misses }

// ShouldFailover reports whether the miss count has reached the limit.
func (s *SafetyController) ShouldFailover() bool {
	return s.missLimit > 0 && s.misses >= s.missLimit
}

// TripFailover commits a failover at time now: it counts the event,
// clears the miss counter, and opens the hold-down window during which
// HoldActive vetoes going remote again.
func (s *SafetyController) TripFailover(now float64) {
	s.failovers++
	s.misses = 0
	s.holdUntil = now + s.hold
}

// HoldActive reports whether the post-failover hold-down still vetoes
// remote execution at time now.
func (s *SafetyController) HoldActive(now float64) bool { return now < s.holdUntil }

// NoteHandoff opens the post-handoff freeze window at time now.
func (s *SafetyController) NoteHandoff(now float64) {
	if s.handoffHold <= 0 {
		return
	}
	if until := now + s.handoffHold; until > s.handoffUntil {
		s.handoffUntil = until
	}
}

// HandoffHoldActive reports whether adaptation is frozen at time now by
// a recent handoff.
func (s *SafetyController) HandoffHoldActive(now float64) bool { return now < s.handoffUntil }

// Stops returns the number of watchdog-stop episodes.
func (s *SafetyController) Stops() int { return s.stops }

// Failovers returns the number of failovers tripped.
func (s *SafetyController) Failovers() int { return s.failovers }
