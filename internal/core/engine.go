package core

import (
	"fmt"
	"math"
	"math/rand"

	"lgvoffload/internal/amcl"
	"lgvoffload/internal/costmap"
	"lgvoffload/internal/coverage"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/explore"
	"lgvoffload/internal/faults"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/muxer"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/planner"
	"lgvoffload/internal/pool"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/store"
	"lgvoffload/internal/timing"
	"lgvoffload/internal/tracker"
	"lgvoffload/internal/world"
)

// Workload selects the Fig. 2 pipeline variant.
type Workload int

const (
	// NavigationWithMap runs AMCL + costmap + planner + tracking + mux
	// against a known map.
	NavigationWithMap Workload = iota
	// ExplorationNoMap runs SLAM + costmap + planner + exploration +
	// tracking + mux in an unknown environment.
	ExplorationNoMap
	// CoverageWithMap runs the house-cleaning workload: AMCL + costmap +
	// boustrophedon coverage planning + tracking + mux on a known map.
	CoverageWithMap
)

func (w Workload) String() string {
	switch w {
	case ExplorationNoMap:
		return "exploration"
	case CoverageWithMap:
		return "coverage"
	default:
		return "navigation"
	}
}

// DeployMode selects how node placement is decided.
type DeployMode int

const (
	// StaticLocal runs everything on the LGV (the no-offloading baseline).
	StaticLocal DeployMode = iota
	// StaticRemote pins the ECNs to the remote host for the whole
	// mission, like existing platforms' static offloading.
	StaticRemote
	// Adaptive applies Algorithms 1 and 2 at runtime.
	Adaptive
)

// Deployment describes one offloading configuration of Figures 12/13.
type Deployment struct {
	Name    string
	Mode    DeployMode
	Remote  mw.HostID // edge or cloud (ignored for StaticLocal)
	Threads int       // Fig. 5/6 acceleration threads (1 = no parallel opt)
	Goal    Goal      // Algorithm 1 goal for Adaptive mode
}

// The five deployments of Fig. 12/13 plus the adaptive system.
func DeployLocal() Deployment { return Deployment{Name: "local", Mode: StaticLocal, Threads: 1} }
func DeployEdge(threads int) Deployment {
	name := "edge"
	if threads > 1 {
		name = fmt.Sprintf("edge+%dT", threads)
	}
	return Deployment{Name: name, Mode: StaticRemote, Remote: HostEdge, Threads: threads}
}
func DeployCloud(threads int) Deployment {
	name := "cloud"
	if threads > 1 {
		name = fmt.Sprintf("cloud+%dT", threads)
	}
	return Deployment{Name: name, Mode: StaticRemote, Remote: HostCloud, Threads: threads}
}
func DeployAdaptive(remote mw.HostID, threads int, goal Goal) Deployment {
	return Deployment{Name: fmt.Sprintf("adaptive-%s(%s)", goal, remote),
		Mode: Adaptive, Remote: remote, Threads: threads, Goal: goal}
}

// MissionConfig fully describes one mission run.
type MissionConfig struct {
	Workload Workload
	Map      *grid.Map // ground-truth world
	Start    geom.Pose
	Goal     geom.Vec2 // navigation target (ignored for exploration)
	// Waypoints, when non-empty, turns navigation into a patrol: the
	// robot visits each waypoint in order and Goal is appended as the
	// final stop (a delivery round rather than a single drop-off).
	Waypoints  []geom.Vec2
	Deployment Deployment
	Seed       int64

	// Wireless environment. WAP defaults to the start position.
	WAP     geom.Vec2
	LinkCfg *netsim.LinkConfig // nil = default for the remote host

	// WAPs lists extra access points beyond WAP; when non-empty the link
	// roams to the strongest AP with hysteresis (netsim roam.go) and
	// Algorithm 2's signal-direction input becomes multi-modal. Extra
	// APs inherit the link's GoodRange/FadeRange.
	WAPs []geom.Vec2

	// LinkTrace, when non-nil, replays recorded bandwidth/latency/loss
	// samples in place of the analytic distance-fade link model. Fault
	// windows and handoff dips compose on top of the replayed signal.
	LinkTrace *netsim.LinkTrace

	// HandoffHoldSec freezes Algorithm 2 decisions for this long after a
	// roaming handoff so the re-association dip and the direction-
	// estimate reset cannot flap placement (default 2; < 0 disables).
	HandoffHoldSec float64

	// Platforms overrides the default compute platforms (nil = the
	// paper's Pi/edge/cloud testbed). Fleet experiments use this to model
	// a server whose per-robot share of cores shrinks with fleet size.
	Platforms map[mw.HostID]hostsim.Platform

	// LocalFreqGHz scales the LGV's CPU clock (0 = stock 1.4 GHz). The
	// paper's Eq. 1c models computation power as k·L·f², so underclocking
	// trades completion time for computation energy — the DVFS ablation
	// quantifies how little that buys compared to offloading.
	LocalFreqGHz float64

	// Pipeline rates and sizes.
	ControlPeriod  float64 // VDP tick period, s (default 0.2 → 5 Hz)
	PhysicsDt      float64 // world integration step (default 0.05)
	ReplanPeriod   float64 // global replanning interval (default 2)
	TrackerSamples int     // trajectories per tracking tick (default 1000)
	SlamParticles  int     // SLAM particle count (default 30)
	LaserBeams     int     // beams per sweep (default 360)

	// Limits and termination.
	MaxSimTime    float64 // default 240 s
	GoalTolerance float64 // default 0.25 m
	ExploreTarget float64 // fraction of free space to discover (default 0.85)

	// Safety/velocity model (Eq. 2c inputs).
	AMax     float64 // deceleration limit for Eq. 2c (default 0.8 m/s²)
	StopDist float64 // required stopping distance (default 0.08 m)
	VCeil    float64 // hardware/safety ceiling (default 1.0 m/s)

	// Algorithm 2 threshold (messages/s, default 4 for the 5 Hz probe).
	NetThreshold float64

	// Faults, when non-nil and non-empty, attaches a deterministic
	// fault-injection schedule to the wireless link (see internal/faults).
	Faults *faults.Config

	// Graceful-degradation knobs (see SafetyController). Zero values take
	// defaults; WatchdogDeadline < 0 disables the watchdog and
	// FailoverMisses < 0 disables the failover path.
	WatchdogDeadline float64 // base command-staleness deadline, s (default max(1.2, 6·ControlPeriod))
	FailoverMisses   int     // consecutive missed remote ticks before pulling home (default 15)
	FailoverHoldSec  float64 // post-failover hold-down vetoing remote (default 20)

	// ShedParallelism enables the §VIII-E adaptivity controller: when the
	// real velocity persistently falls short of the Eq. 2c cap (obstacle
	// phases, Fig. 14), the engine halves the paid acceleration threads —
	// the robot cannot exploit them — and restores them on straights.
	ShedParallelism bool

	// KernelThreads, when > 0, overrides the *execution* thread count of
	// the pooled SLAM/tracking kernels without touching the modeled
	// (billed) thread count from Deployment.Threads. KernelPartition
	// selects the pool partition scheme. Work assignment in internal/pool
	// is positional, so any KernelThreads × KernelPartition combination
	// must yield a byte-identical mission Result — the determinism
	// invariant internal/simtest sweeps across {1,2,4,8} × {Block,
	// Interleaved}.
	KernelThreads   int
	KernelPartition pool.Partition

	// CmdTap, when non-nil, observes every motor command the multiplexer
	// emits: the virtual time, the selected twist, and whether the
	// command-staleness watchdog holds a safety stop at that instant.
	// The scenario harness uses it to prove the watchdog never lets a
	// nonzero velocity through while a stall episode is open.
	CmdTap func(now float64, cmd geom.Twist, stalled bool)

	RecordTrace bool

	// Telemetry, when non-nil, receives the full mission event timeline
	// and metrics (see internal/obs). Nil — the default — keeps every
	// instrumented hot path allocation-free.
	Telemetry *obs.Telemetry

	// Tracer, when non-nil, records every control tick as a causal span
	// tree (see internal/spans): compute/queue/transport segments of the
	// VDP makespan, plus watchdog/failover/fault episodes. Nil — the
	// default — keeps the tick hot path allocation-free.
	Tracer *spans.Tracer

	// Store, when non-nil, persists the mission into an embedded mission
	// store (see internal/store): per-tick telemetry snapshots, the
	// adaptation decision log, fault windows and critical-path rows.
	// Obtain one with Store.Begin; the engine only appends records — the
	// caller closes the mission with Recorder.Finish(StoreSummary(res))
	// after Run returns. Nil — the default — records nothing and keeps
	// the tick hot path allocation-free.
	Store *store.Recorder

	// FlightRec, when non-nil, continuously records per-tick flight
	// frames into a bounded ring and freezes a JSONL bundle of the last
	// N seconds on watchdog stops, failovers, SLO breaches and panics
	// (see obs.FlightRecorder). Nil — the default — costs nothing.
	FlightRec *obs.FlightRecorder

	// SLO, when non-nil, judges every tick against declarative
	// service-level rules (see obs.SLOEngine). Breaches emit timeline
	// events, count into MSLOBreaches and trigger FlightRec dumps. Nil —
	// the default — costs nothing.
	SLO *obs.SLOEngine
}

func (c *MissionConfig) fillDefaults() {
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 0.2
	}
	if c.PhysicsDt == 0 {
		c.PhysicsDt = 0.05
	}
	if c.ReplanPeriod == 0 {
		c.ReplanPeriod = 2.0
	}
	if c.TrackerSamples == 0 {
		c.TrackerSamples = 1000
	}
	if c.SlamParticles == 0 {
		c.SlamParticles = 30
	}
	if c.LaserBeams == 0 {
		c.LaserBeams = 360
	}
	if c.MaxSimTime == 0 {
		c.MaxSimTime = 240
	}
	if c.GoalTolerance == 0 {
		c.GoalTolerance = 0.25
	}
	if c.ExploreTarget == 0 {
		c.ExploreTarget = 0.85
	}
	if c.AMax == 0 {
		c.AMax = 0.8
	}
	if c.StopDist == 0 {
		c.StopDist = 0.08
	}
	if c.VCeil == 0 {
		c.VCeil = 1.0
	}
	if c.NetThreshold == 0 {
		c.NetThreshold = 4
	}
	if c.WatchdogDeadline == 0 {
		// Below the navigation source's mux timeout (≥ 1.5 s) so the
		// safety stop preempts a stale command instead of merely
		// coinciding with its expiry.
		c.WatchdogDeadline = math.Max(1.2, 6*c.ControlPeriod)
	}
	if c.FailoverMisses == 0 {
		// 15 ticks = 3 s at the default 5 Hz: long enough that a periodic
		// interference burst (a couple of seconds) does not flap
		// placement, short enough that a real outage fails over before
		// the mission times out.
		c.FailoverMisses = 15
	}
	if c.FailoverHoldSec == 0 {
		c.FailoverHoldSec = 20
	}
	if c.HandoffHoldSec == 0 {
		// Longer than the re-association dip (0.5 s default) plus a few
		// control ticks for the direction estimate to re-converge, but
		// well under the 3 s failover trip so a dead post-handoff link
		// still fails over on schedule.
		c.HandoffHoldSec = 2
	}
	if (c.WAP == geom.Vec2{}) {
		c.WAP = c.Start.Pos
	}
}

// TracePoint is one row of the mission time series (Figs. 11, 12, 14).
type TracePoint struct {
	T          float64
	X, Y       float64 // true robot position (ground truth, for plots)
	MaxVel     float64 // velocity cap from Eq. 2c
	RealVel    float64 // actual robot speed
	Bandwidth  float64 // Algorithm 2's r_t, messages/s
	TailLatSec float64 // p99 received-packet latency (misleading metric)
	Direction  float64 // Algorithm 2's d_t
	Signal     float64 // true link signal (ground truth, for plots)
	RemoteOn   bool    // whether remote execution is active
}

// Result summarizes a completed mission.
type Result struct {
	Config  MissionConfig
	Success bool
	Reason  string

	// Time (Eq. 2a) and motion.
	TotalTime   float64
	MovingTime  float64
	StandbyTime float64
	Distance    float64

	// Energy (Eq. 1a) per component and total.
	Energy      map[energy.Component]float64
	TotalEnergy float64

	// Workload cycles per node (Table II).
	Cycles *hostsim.CycleCounter

	// Net is the wireless link's full packet ledger: every offered
	// packet (pipeline messages AND Algorithm 2 probes) is delivered or
	// dropped, with each drop attributed to one cause.
	Net netsim.Stats

	// Network and adaptation.
	MsgsSent, MsgsDropped int
	// MsgsOverwritten counts velocity commands that reached the
	// multiplexer but were replaced by a fresher command before the motors
	// consumed them — pipeline work bought and thrown away.
	MsgsOverwritten int
	BytesUplinked   float64
	Switches        int
	// Graceful-degradation accounting.
	WatchdogStops  int // zero-velocity safety stops on stale commands
	Failovers      int // remote→local pulls forced by consecutive misses
	FaultsInjected int // disturbances injected by the fault schedule
	// Roaming accounting: handoff count and the virtual time of each
	// handoff (empty for single-WAP missions).
	Handoffs     int
	HandoffTimes []float64
	// Decisions is the adaptation decision log: one entry per placement
	// switch with the Algorithm 1/2 inputs behind it.
	Decisions []AdaptDecision

	AvgMaxVel float64
	Explored  float64 // exploration progress vs ground truth
	Covered   float64 // coverage-workload cleaning progress

	// Server resource accounting (§VIII-E): core-seconds *reserved* on the
	// remote host and how often the shedding controller retuned threads.
	CoreSeconds       float64
	ThreadAdjustments int

	Trace []TracePoint
}

// engine holds one running mission.
type engine struct {
	cfg MissionConfig

	w     *world.World
	laser *sensor.Laser
	odo   *sensor.Odometer

	link      *netsim.Link
	platforms map[mw.HostID]hostsim.Platform

	// Nodes.
	loc          *amcl.AMCL
	slm          *slam.SLAM
	cm           *costmap.Costmap
	gp           *planner.Planner
	tk           *tracker.Tracker
	mx           *muxer.Mux
	exCfg        explore.Config
	exGoal       geom.Vec2
	haveEx       bool
	exBlacklist  []geom.Vec2 // unreachable frontier goals
	goalSince    float64     // when the current exploration goal was set
	goalStartPos geom.Vec2   // robot position at that moment
	path         []geom.Vec2
	havePth      bool

	// Runtime state.
	placement Placement
	prof      *Profiler
	netctl    *NetController
	safety    *SafetyController
	schedule  *faults.Schedule // nil when no fault schedule is attached
	strategy  Strategy
	meter     *energy.Meter
	clock     *timing.Clock
	counter   *hostsim.CycleCounter
	vmax      float64
	pose      geom.Pose // current localization estimate
	prevOdom  geom.Pose

	nextControl float64
	nextReplan  float64
	pauseUntil  float64 // migration pause
	seq         uint64
	scanMsg     msg.Scan // reused per-tick scan message for size accounting

	slamBusyUntil    float64   // SLAM node busy processing a scan
	pendingSlamDelta geom.Pose // odometry accumulated while SLAM was busy
	lastCmWork       hostsim.Work
	lastTkWork       hostsim.Work

	pendingCmds []pendingCmd
	msgsSent    int
	msgsDropped int
	bytesUp     float64
	switches    int

	vmaxSum   float64
	vmaxCount int
	trace     []TracePoint

	// Telemetry (nil when disabled; every hook on it is nil-safe).
	tel          *obs.Telemetry
	tr           *spans.Tracer       // causal tracing (nil when disabled; nil-safe)
	rec          *store.Recorder     // mission store recorder (nil when disabled)
	fr           *obs.FlightRecorder // flight recorder (nil when disabled; nil-safe)
	slo          *obs.SLOEngine      // live SLO judge (nil when disabled; nil-safe)
	lastCompute  float64             // this tick's critical-path compute seconds
	lastQueue    float64             // this tick's critical-path queue seconds
	lastTranspt  float64             // this tick's critical-path transport seconds
	stallOpen    bool                // a watchdog outage episode is in progress
	stallStart   float64             // when the open episode began
	decisions    []AdaptDecision
	lastRemoteOK bool // previous Algorithm 2 verdict, for flip detection
	handoffSeen  int  // link handoffs already registered with safety

	route   []geom.Vec2 // remaining waypoints; route[0] is the active goal
	visited int         // waypoints reached so far

	// Coverage workload state.
	covPath    []geom.Vec2 // full boustrophedon sweep
	covIdx     int         // next unreached sweep waypoint
	covVisited []geom.Vec2 // sampled robot positions for the Covered metric
	covLastPos geom.Vec2

	// §VIII-E adaptivity state.
	threadsNow  int     // currently-paid acceleration threads
	velRatioEMA float64 // smoothed realVel / vmax
	nextAdjust  float64
	coreSeconds float64
	threadAdj   int
}

type pendingCmd struct {
	at  time64
	cmd geom.Twist
	// Trace context of the tick that produced the command, so the muxer
	// can account the slot wait on the right trace.
	trace  uint64
	parent uint64
}

type time64 = float64

// Run executes a mission to completion and returns its result. It is
// NewMission stepped to the end: the step-driven entry point and Run
// produce byte-identical results for the same config.
func Run(cfg MissionConfig) (*Result, error) {
	m, err := NewMission(cfg)
	if err != nil {
		return nil, err
	}
	if m.e.fr != nil {
		// Black-box semantics: if the mission loop panics, freeze the
		// ticks that led up to it before the panic propagates.
		defer func() {
			if r := recover(); r != nil {
				m.e.fr.ForceDump("panic", fmt.Sprint(r), m.e.w.Time)
				panic(r)
			}
		}()
	}
	for !m.Step() {
	}
	return m.Result(), nil
}

func newEngine(cfg MissionConfig) (*engine, error) {
	spec := world.Turtlebot3()
	spec.MaxV = cfg.VCeil
	w := world.New(cfg.Map, spec, cfg.Start)
	if world.FootprintCollides(cfg.Map, cfg.Start.Pos, spec.Radius) {
		return nil, fmt.Errorf("core: start pose %v collides", cfg.Start)
	}

	var linkCfg netsim.LinkConfig
	if cfg.LinkCfg != nil {
		linkCfg = *cfg.LinkCfg
	} else if cfg.Deployment.Remote == HostCloud {
		linkCfg = netsim.DefaultCloudLink(cfg.WAP)
	} else {
		linkCfg = netsim.DefaultEdgeLink(cfg.WAP)
	}
	for _, p := range cfg.WAPs {
		linkCfg.WAPs = append(linkCfg.WAPs, netsim.WAP{Pos: p})
	}
	if cfg.LinkTrace != nil {
		linkCfg.Trace = cfg.LinkTrace
	}
	link := netsim.NewLink(linkCfg, rand.New(rand.NewSource(cfg.Seed+1)))
	link.SetRobotPosAt(0, cfg.Start.Pos)

	e := &engine{
		cfg:       cfg,
		w:         w,
		laser:     sensor.NewLaser(cfg.LaserBeams, 3.5, 0.01, rand.New(rand.NewSource(cfg.Seed+2))),
		odo:       sensor.NewOdometer(rand.New(rand.NewSource(cfg.Seed + 3))),
		link:      link,
		platforms: defaultPlatforms(cfg.Platforms),
		prof:      NewProfiler(),
		netctl:    NewNetController(cfg.NetThreshold),
		meter:     energy.NewMeter(meterModelFor(cfg.LocalFreqGHz)),
		clock:     timing.NewClock(),
		counter:   hostsim.NewCycleCounter(),
		pose:      cfg.Start,
		exCfg:     explore.DefaultConfig(),

		tel:          cfg.Telemetry,
		tr:           cfg.Tracer,
		rec:          cfg.Store,
		fr:           cfg.FlightRec,
		slo:          cfg.SLO,
		lastRemoteOK: true, // adaptive deployments start offloaded
	}
	if cfg.Telemetry != nil {
		// Interface wiring only when enabled: a nil Sink keeps the link's
		// hot path branch-predictable and allocation-free.
		link.SetSink(cfg.Telemetry)
		e.tel.SetPhase(cfg.Workload.String())
	}
	if cfg.FlightRec != nil && cfg.Telemetry != nil {
		// Mirror the event stream into the recorder's own bounded ring so
		// bundles carry the events of their window even after the main
		// timeline evicts them.
		cfg.Telemetry.Tee(cfg.FlightRec)
	}
	missLimit := cfg.FailoverMisses
	if missLimit < 0 {
		missLimit = 0 // sentinel: failover disabled
	}
	e.netctl.MissLimit = missLimit
	e.safety = NewSafetyController(cfg.WatchdogDeadline, missLimit, cfg.FailoverHoldSec)
	e.safety.SetHandoffHold(cfg.HandoffHoldSec)
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		// The schedule gets its own rng stream so attaching faults never
		// perturbs the link/sensor randomness of the underlying mission.
		e.schedule = faults.New(*cfg.Faults, rand.New(rand.NewSource(cfg.Seed+6)))
		if cfg.Telemetry != nil {
			e.schedule.SetSink(cfg.Telemetry)
		}
		link.SetImpairment(e.schedule)
	}
	applyLocalFreq(e.platforms, cfg.LocalFreqGHz)
	e.strategy = Strategy{
		Goal: cfg.Deployment.Goal, Remote: cfg.Deployment.Remote,
		Threads: cfg.Deployment.Threads,
		AMax:    cfg.AMax, StopDist: cfg.StopDist, VCeil: cfg.VCeil,
	}

	// Costmap over the world geometry.
	ccfg := costmap.DefaultConfig(cfg.Map.Width, cfg.Map.Height, cfg.Map.Resolution, cfg.Map.Origin)
	e.cm = costmap.New(ccfg)

	// Workload nodes.
	tcfg := trackerConfigFor(cfg.TrackerSamples, cfg.VCeil)
	e.tk = tracker.New(tcfg)
	e.mx = muxer.New(muxSources(cfg))
	if cfg.Tracer != nil {
		e.mx.SetTracer(cfg.Tracer)
	}
	e.gp = planner.New(planner.AStar)

	nodes := []string{NodeCostmap, NodePlanner, NodeTracking, NodeMux}
	switch cfg.Workload {
	case NavigationWithMap, CoverageWithMap:
		e.loc = amcl.New(cfg.Map, amcl.DefaultConfig(), rand.New(rand.NewSource(cfg.Seed+4)))
		e.loc.Init(cfg.Start, 0.05, 0.02)
		e.cm.SetStatic(cfg.Map)
		nodes = append(nodes, NodeLocalization)
		if cfg.Workload == CoverageWithMap {
			nodes = append(nodes, NodeCoverage)
		}
	case ExplorationNoMap:
		scfg := slam.DefaultConfig(cfg.Map.Width, cfg.Map.Height, cfg.Map.Resolution, cfg.Map.Origin)
		scfg.NumParticles = cfg.SlamParticles
		e.slm = slam.New(scfg, rand.New(rand.NewSource(cfg.Seed+5)))
		e.slm.SetInitialPose(cfg.Start)
		e.gp.AllowUnknown = true
		nodes = append(nodes, NodeSLAM, NodeExploration)
	}

	// Initial placement per deployment.
	e.placement = NewPlacement(nodes)
	e.placement.Remote = cfg.Deployment.Remote
	e.placement.Threads = cfg.Deployment.Threads
	if cfg.Deployment.Mode == StaticRemote || cfg.Deployment.Mode == Adaptive {
		for _, n := range e.offloadSet() {
			e.placement.Host[n] = cfg.Deployment.Remote
		}
	}
	e.route = append(append([]geom.Vec2{}, cfg.Waypoints...), cfg.Goal)
	e.threadsNow = cfg.Deployment.Threads
	if e.threadsNow < 1 {
		e.threadsNow = 1
	}
	e.velRatioEMA = 1
	e.vmax = timing.MaxVelocity(cfg.ControlPeriod, cfg.AMax, cfg.StopDist)
	if e.vmax > cfg.VCeil {
		e.vmax = cfg.VCeil
	}
	e.prevOdom = e.odo.Update(w.Robot.Pose)
	return e, nil
}

// meterModelFor returns the Eq. 1 energy model at the given LGV clock
// frequency (0 = stock). K is a chip constant; only f changes.
func meterModelFor(freqGHz float64) energy.Model {
	m := energy.Turtlebot3Model()
	if freqGHz > 0 {
		m.FreqGHz = freqGHz
	}
	return m
}

// defaultPlatforms merges overrides onto the paper's testbed platforms.
func defaultPlatforms(overrides map[mw.HostID]hostsim.Platform) map[mw.HostID]hostsim.Platform {
	p := map[mw.HostID]hostsim.Platform{
		HostLGV:   hostsim.RaspberryPi(),
		HostEdge:  hostsim.EdgeGateway(),
		HostCloud: hostsim.CloudServer(),
	}
	for h, plat := range overrides {
		p[h] = plat
	}
	return p
}

// applyLocalFreq rescales the LGV platform clock for the DVFS ablation.
func applyLocalFreq(platforms map[mw.HostID]hostsim.Platform, freqGHz float64) {
	if freqGHz <= 0 {
		return
	}
	pi := platforms[HostLGV]
	pi.FreqGHz = freqGHz
	platforms[HostLGV] = pi
}

// offloadSet returns the nodes the deployment moves to the server: the
// workload's ECNs (T1+T3 for EC; Adaptive MCT refines at runtime).
func (e *engine) offloadSet() []string {
	if e.cfg.Workload == ExplorationNoMap {
		return []string{NodeSLAM, NodeCostmap, NodeTracking}
	}
	return []string{NodeCostmap, NodeTracking}
}

func trackerConfigFor(samples int, vceil float64) tracker.Config {
	tcfg := tracker.DefaultConfig()
	tcfg.MaxV = vceil
	tcfg.WSamples = 40
	tcfg.VSamples = samples / 40
	if tcfg.VSamples < 1 {
		tcfg.VSamples = 1
	}
	return tcfg
}

func muxSources(cfg MissionConfig) []muxer.Source {
	srcs := muxer.DefaultSources()
	for i := range srcs {
		if srcs[i].Name == muxer.SourceNavigation {
			// Navigation commands stay valid longer than the worst-case
			// local VDP makespan, else a slow on-board pipeline would
			// stop-and-go between decisions. The tracker's 1.2 s rollout
			// horizon keeps a 1.5 s-old command safe.
			srcs[i].Timeout = math.Max(1.5, 3*cfg.ControlPeriod)
		}
	}
	return srcs
}

// coveredFraction evaluates the cleaning-progress metric over the
// sampled trajectory.
func (e *engine) coveredFraction() float64 {
	return coverage.Covered(e.cm, e.covVisited, 0.25)
}

func (e *engine) deliverPending(now float64) {
	kept := e.pendingCmds[:0]
	for _, pc := range e.pendingCmds {
		if pc.at <= now {
			e.mx.OfferTraced(muxer.SourceNavigation, pc.cmd, now, pc.trace, pc.parent)
			e.safety.CommandDelivered(now)
			if e.stallOpen {
				// Fresh VDP output ends the watchdog outage episode.
				e.tr.Add(e.tr.NewTrace(), 0, "watchdog_stall", string(HostLGV), "safety",
					spans.Mark, e.stallStart, now)
				e.stallOpen = false
			}
		} else {
			kept = append(kept, pc)
		}
	}
	e.pendingCmds = kept
}

func (e *engine) checkDone() (done bool, reason string, success bool) {
	switch e.cfg.Workload {
	case NavigationWithMap:
		if e.w.Robot.Pose.Pos.Dist(e.route[0]) <= e.cfg.GoalTolerance {
			e.visited++ // fallthrough below handles waypoints
			if len(e.route) == 1 {
				if e.visited > 1 {
					return true, fmt.Sprintf("patrol complete (%d stops)", e.visited), true
				}
				return true, "goal reached", true
			}
			// Next waypoint: force an immediate replan.
			e.route = e.route[1:]
			e.havePth = false
			e.nextReplan = 0
		}
	case CoverageWithMap:
		if len(e.covPath) > 0 && e.covIdx >= len(e.covPath) {
			cov := e.coveredFraction()
			return true, fmt.Sprintf("sweep complete (%.0f%% covered)", cov*100), cov >= 0.75
		}
	case ExplorationNoMap:
		if e.slm.Updates() > 10 {
			if p := explore.Progress(e.slm.Map(), e.cfg.Map); p >= e.cfg.ExploreTarget {
				return true, fmt.Sprintf("explored %.0f%%", p*100), true
			}
			if !e.haveEx && e.slm.Updates() > 20 {
				// No goal and nothing left to explore.
				if _, _, ok := explore.NextGoal(e.slm.Map(), e.w.Robot.Pose.Pos, e.exCfg); !ok {
					p := explore.Progress(e.slm.Map(), e.cfg.Map)
					return true, fmt.Sprintf("frontiers exhausted at %.0f%%", p*100),
						p >= 0.5
				}
			}
		}
	}
	return false, "", false
}
