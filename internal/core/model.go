// Package core implements the paper's contribution: the analytical model
// linking computation, energy and mission time (§III); the fine-grained
// migration strategy that classifies nodes into the Fig. 4 taxonomy and
// selects which to offload (Algorithm 1, §IV); the offload network
// quality control that switches placement from packet bandwidth and
// signal direction (Algorithm 2, §VI); the Profiler/Switcher/Controller
// runtime (§VII); and the end-to-end mission engine that ties the
// simulated vehicle, network and platforms together.
package core

import (
	"sort"

	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/mw"
)

// Node names of the standard LGV workload pipeline (Fig. 2).
const (
	NodeLocalization = "localization"      // AMCL (with map)
	NodeSLAM         = "slam"              // GMapping (without map)
	NodeCostmap      = "costmap_gen"       // CostmapGen
	NodePlanner      = "path_planning"     // global planner
	NodeExploration  = "exploration"       // frontier exploration
	NodeTracking     = "path_tracking"     // local planner
	NodeMux          = "velocity_mux"      // velocity multiplexer
	NodeCoverage     = "coverage_planning" // boustrophedon sweep (house-cleaning)
)

// Hosts of the offloading testbed.
const (
	HostLGV   mw.HostID = "lgv"
	HostEdge  mw.HostID = "edge"
	HostCloud mw.HostID = "cloud"
)

// VDPNodes is the Velocity-Dependent Path (§IV-A): the execution flow
// whose makespan bounds the safe maximum velocity — CostmapGen → Path
// Tracking → Velocity Multiplexer.
var VDPNodes = []string{NodeCostmap, NodeTracking, NodeMux}

// IsVDP reports whether the node lies on the velocity-dependent path.
func IsVDP(node string) bool {
	for _, n := range VDPNodes {
		if n == node {
			return true
		}
	}
	return false
}

// ECNShareThreshold is the cycle share above which a node counts as an
// Energy-Critical Node. Table II's ECNs (CostmapGen, Path Tracking,
// SLAM) all exceed 10% of workload cycles; everything else is ≤2%.
const ECNShareThreshold = 0.10

// Category is the Fig. 4 node taxonomy.
type Category int

const (
	T1 Category = iota + 1 // ECN, not on VDP (SLAM)
	T2                     // neither ECN nor VDP (localization, planner, exploration)
	T3                     // ECN on VDP (CostmapGen, Path Tracking)
	T4                     // on VDP, not ECN (Velocity Multiplexer)
)

func (c Category) String() string {
	switch c {
	case T1:
		return "T1 (ECN ∉ VDP)"
	case T2:
		return "T2 (neither)"
	case T3:
		return "T3 (ECN ∩ VDP)"
	case T4:
		return "T4 (VDP only)"
	default:
		return "T?"
	}
}

// NodeClass is one classified node.
type NodeClass struct {
	Node     string
	Share    float64 // fraction of total workload cycles
	ECN      bool
	VDP      bool
	Category Category
}

// Classify derives the Fig. 4 taxonomy from a measured cycle breakdown
// (Table II): a node is an ECN when its share of total cycles exceeds
// ECNShareThreshold; VDP membership is structural.
func Classify(counter *hostsim.CycleCounter) []NodeClass {
	rows := counter.Breakdown()
	out := make([]NodeClass, 0, len(rows))
	for _, r := range rows {
		nc := NodeClass{
			Node:  r.Node,
			Share: r.Share,
			ECN:   r.Share >= ECNShareThreshold,
			VDP:   IsVDP(r.Node),
		}
		switch {
		case nc.ECN && nc.VDP:
			nc.Category = T3
		case nc.ECN:
			nc.Category = T1
		case nc.VDP:
			nc.Category = T4
		default:
			nc.Category = T2
		}
		out = append(out, nc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// ECNs filters the classification to energy-critical nodes (T1 ∪ T3).
func ECNs(classes []NodeClass) []string {
	var out []string
	for _, c := range classes {
		if c.ECN {
			out = append(out, c.Node)
		}
	}
	return out
}

// T3Nodes filters the classification to ECNs on the VDP.
func T3Nodes(classes []NodeClass) []string {
	var out []string
	for _, c := range classes {
		if c.Category == T3 {
			out = append(out, c.Node)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Work calibration: abstract node operation counts → Pi cycles.
//
// These constants are the per-operation cycle costs that make the
// simulated pipeline reproduce Table II's cycle rates when running the
// standard missions (CostmapGen ≈ 0.86 Gc/s and Path Tracking ≈ 1.4 Gc/s
// with a map; SLAM ≈ 3.3 Gc/s without). The parallel/serial split
// reflects which part of each kernel the paper's Fig. 5/6 algorithms
// parallelize: trajectory scoring and per-particle scan matching are
// parallel; costmap updates, planning, and bookkeeping are serial.
const (
	CostmapOpCycles  = 2_400  // per costmap cell operation (serial)
	TrajStepCycles   = 33_000 // per trajectory simulation step (parallel)
	TrackSerialShare = 0.10   // serial fraction of tracking work
	MuxTickCycles    = 100_000
	AMCLBeamCycles   = 1_100  // per likelihood-field probe (serial locally)
	PlanExpandCycles = 60_000 // per search-node expansion
	SlamMatchCycles  = 7_800  // per scan-match beam probe (parallel, 98% of SLAM)
	SlamIntegrateOp  = 35     // per map cell integrated (parallel)
	SlamWeightCycles = 2_000  // per particle during normalize/resample (serial)
	SlamCopyCycles   = 4      // per map cell copied during resampling (serial)
	ExploreOpCycles  = 760    // per frontier-detection cell visit
	CoverageOpCycles = 800    // per coverage-lane cell visit
)

// TrackingWork converts tracker step counts into platform work.
func TrackingWork(steps int) hostsim.Work {
	total := float64(steps) * TrajStepCycles
	return hostsim.Work{
		SerialCycles:   total * TrackSerialShare,
		ParallelCycles: total * (1 - TrackSerialShare),
	}
}

// CostmapWork converts costmap cell operations into platform work.
func CostmapWork(ops int) hostsim.Work {
	return hostsim.Work{SerialCycles: float64(ops) * CostmapOpCycles}
}

// SlamWork converts SLAM update statistics into platform work.
func SlamWork(matchOps, integrateOps, weightOps, copyOps int) hostsim.Work {
	return hostsim.Work{
		SerialCycles:   float64(weightOps)*SlamWeightCycles + float64(copyOps)*SlamCopyCycles,
		ParallelCycles: float64(matchOps)*SlamMatchCycles + float64(integrateOps)*SlamIntegrateOp,
	}
}

// AMCLWork converts localization beam probes into platform work.
func AMCLWork(beamOps int) hostsim.Work {
	return hostsim.Work{SerialCycles: float64(beamOps) * AMCLBeamCycles}
}

// PlanWork converts planner expansions into platform work.
func PlanWork(expanded int) hostsim.Work {
	return hostsim.Work{SerialCycles: float64(expanded) * PlanExpandCycles}
}

// ExploreWork converts frontier-detection visits into platform work.
func ExploreWork(ops int) hostsim.Work {
	return hostsim.Work{SerialCycles: float64(ops) * ExploreOpCycles}
}

// CoverageWork converts sweep-planning cell visits into platform work.
func CoverageWork(ops int) hostsim.Work {
	return hostsim.Work{SerialCycles: float64(ops) * CoverageOpCycles}
}

// MuxWork is the (negligible) multiplexer work per decision.
func MuxWork() hostsim.Work { return hostsim.Work{SerialCycles: MuxTickCycles} }
