package core

import (
	"math"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/store"
)

// This file is the engine's only coupling to the mission store: the
// per-tick/per-decision record hooks and the Result → summary
// projection. Recording is strictly additive — it reads engine state
// the tick already computed, consumes no randomness and never blocks
// (the Recorder drops on overflow), so a recorded mission is
// bit-identical to an unrecorded one.

// recordTick persists one per-tick telemetry snapshot.
func (e *engine) recordTick(now, pipelineLat float64) {
	if e.rec == nil {
		return
	}
	e.rec.Tick(store.Tick{
		T:         now,
		VDP:       pipelineLat,
		EnergyJ:   e.meter.Total(),
		Bandwidth: e.prof.Bandwidth(now),
		Direction: e.prof.Direction(),
		Signal:    e.link.Signal(),
		MaxVel:    e.vmax,
		RealVel:   math.Abs(e.w.Robot.Vel.V),
		RemoteOn:  len(e.placement.RemoteNodes()) > 0,
	})
}

// recordDecision persists one adaptation decision.
func (e *engine) recordDecision(d AdaptDecision) {
	if e.rec == nil {
		return
	}
	e.rec.Decision(store.Decision{
		T: d.T, Reason: d.Reason,
		Bandwidth: d.Bandwidth, Direction: d.Direction, RemoteOK: d.RemoteOK,
		LocalVDP: d.LocalVDP, CloudVDP: d.CloudVDP,
		From: d.From, To: d.To, StateBytes: d.StateBytes,
	})
}

// recordRunEnd persists the end-of-mission bulk records: the injected
// fault windows and the critical-path decomposition of every traced
// tick (the dashboard's waterfall rows). Called once, after the mission
// loop; the producer closes the mission with Recorder.Finish.
func (e *engine) recordRunEnd() {
	if e.rec == nil {
		return
	}
	if e.cfg.Faults != nil {
		for _, fw := range e.cfg.Faults.Windows {
			if fw.T0 > e.w.Time {
				continue
			}
			e.rec.Fault(store.Fault{Kind: fw.Kind.String(),
				T0: fw.T0, T1: math.Min(fw.T1, e.w.Time)})
		}
	}
	if e.tr != nil {
		for _, p := range spans.AnalyzeTicks(e.tr.Spans()) {
			e.rec.SpanRow(store.SpanRow{
				T: p.Start, Makespan: p.Makespan,
				Compute: p.Compute, Queue: p.Queue, Transport: p.Transport,
				ComputeByHost: p.ComputeByHost, Marks: p.Marks,
			})
		}
	}
	// Snapshot the recorder's backpressure drop counter into telemetry so
	// the post-mortem can flag holes in the persisted time series.
	e.tel.SetGauge(obs.MStoreDropped, "", float64(e.rec.Dropped()))
}

// StoreSummary projects a mission Result onto the store's MissionEnd
// record. Recorder bookkeeping fields (tick counts, VDP quantiles, drop
// counter, start offset) are left zero — Recorder.Finish fills them.
func StoreSummary(res *Result) store.MissionEnd {
	end := store.MissionEnd{
		Success: res.Success,
		Reason:  res.Reason,

		TotalTime:   res.TotalTime,
		MovingTime:  res.MovingTime,
		StandbyTime: res.StandbyTime,
		Distance:    res.Distance,

		Energy:      make(map[string]float64, len(res.Energy)),
		TotalEnergy: res.TotalEnergy,

		MsgsSent:        res.MsgsSent,
		MsgsDropped:     res.MsgsDropped,
		MsgsOverwritten: res.MsgsOverwritten,
		BytesUplinked:   res.BytesUplinked,
		Switches:        res.Switches,
		WatchdogStops:   res.WatchdogStops,
		Failovers:       res.Failovers,
		FaultsInjected:  res.FaultsInjected,

		AvgMaxVel:   res.AvgMaxVel,
		Explored:    res.Explored,
		Covered:     res.Covered,
		CoreSeconds: res.CoreSeconds,
	}
	for c, j := range res.Energy {
		end.Energy[string(c)] = j
	}
	return end
}
