package core

import (
	"fmt"
	"sort"

	"lgvoffload/internal/mw"
	"lgvoffload/internal/timing"
)

// Goal is the programmer-selected optimization target of Algorithm 1.
type Goal int

const (
	// GoalEC minimizes on-board energy consumption: all ECNs (T1+T3)
	// move to the remote server.
	GoalEC Goal = iota
	// GoalMCT minimizes mission completion time: only T3 (ECN ∩ VDP)
	// moves, and it comes home when network latency erases the benefit.
	GoalMCT
)

func (g Goal) String() string {
	if g == GoalMCT {
		return "MCT"
	}
	return "EC"
}

// Placement maps nodes to hosts and carries the acceleration thread
// count used by offloaded parallel kernels.
type Placement struct {
	Host    map[string]mw.HostID
	Remote  mw.HostID // the server nodes offload to
	Threads int       // thread-pool size for Fig. 5/6 kernels
}

// NewPlacement returns an all-local placement for the given node list.
func NewPlacement(nodes []string) Placement {
	p := Placement{Host: make(map[string]mw.HostID, len(nodes)), Remote: HostEdge, Threads: 1}
	for _, n := range nodes {
		p.Host[n] = HostLGV
	}
	return p
}

// Of returns the host of a node (the LGV when unknown).
func (p Placement) Of(node string) mw.HostID {
	if h, ok := p.Host[node]; ok {
		return h
	}
	return HostLGV
}

// Clone deep-copies the placement.
func (p Placement) Clone() Placement {
	c := p
	c.Host = make(map[string]mw.HostID, len(p.Host))
	for k, v := range p.Host {
		c.Host[k] = v
	}
	return c
}

// RemoteNodes lists nodes currently placed off the LGV, sorted.
func (p Placement) RemoteNodes() []string {
	var out []string
	for n, h := range p.Host {
		if h != HostLGV {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func (p Placement) String() string {
	return fmt.Sprintf("Placement{remote: %v on %s, threads: %d}",
		p.RemoteNodes(), p.Remote, p.Threads)
}

// Strategy is Algorithm 1: the offloading decision procedure.
type Strategy struct {
	Goal    Goal
	Remote  mw.HostID // server to offload to
	Threads int       // acceleration threads on the server

	// Robot kinematics for the Eq. 2c velocity update.
	AMax     float64 // maximum acceleration/deceleration, m/s²
	StopDist float64 // required stopping distance, m
	VCeil    float64 // hardware/safety velocity ceiling, m/s

	// PinnedLocal lists safety-critical nodes that must never leave the
	// vehicle regardless of goal — the §IX extension for faster platforms
	// (autonomous vehicles keep e.g. obstacle avoidance onboard). Pinned
	// nodes override the ECN selection.
	PinnedLocal []string
}

// Decide implements Algorithm 1. Given the node classification and the
// measured VDP times, it returns the placement and the new maximum
// velocity (Eq. 2c applied to the resulting VDP makespan):
//
//	submit all ECNs to the remote server
//	if T_c > T_l^v and G == MCT: migrate T3 nodes back to the LGV
//	set velocity_OA(T_c)
//
// localVDP is the VDP makespan with everything local; cloudVDP is the
// makespan with T3 offloaded, including network latency.
func (s Strategy) Decide(classes []NodeClass, localVDP, cloudVDP float64) (Placement, float64) {
	nodes := make([]string, 0, len(classes))
	for _, c := range classes {
		nodes = append(nodes, c.Node)
	}
	p := NewPlacement(nodes)
	p.Remote = s.Remote
	p.Threads = s.Threads

	// Submit all ECNs to the remote server, except pinned safety-critical
	// nodes, which stay onboard.
	for _, n := range ECNs(classes) {
		if s.isPinned(n) {
			continue
		}
		p.Host[n] = s.Remote
	}

	effectiveVDP := cloudVDP
	if s.Goal == GoalMCT {
		// MCT keeps only T3 offloaded; T1 (SLAM) acceleration does not
		// shorten the VDP, but it still reduces failure risk, so MCT
		// leaves it wherever EC put it. If the network makes the cloud
		// VDP slower than local, T3 comes home.
		if cloudVDP > localVDP {
			for _, n := range T3Nodes(classes) {
				p.Host[n] = HostLGV
			}
			effectiveVDP = localVDP
		}
	} else {
		// EC offloads ECNs unconditionally (energy first); the velocity
		// still follows whichever VDP the placement produces.
		if s.vdpRemote(classes, p) {
			effectiveVDP = cloudVDP
		} else {
			effectiveVDP = localVDP
		}
	}

	v := timing.MaxVelocity(effectiveVDP, s.AMax, s.StopDist)
	if s.VCeil > 0 && v > s.VCeil {
		v = s.VCeil
	}
	return p, v
}

func (s Strategy) isPinned(node string) bool {
	for _, n := range s.PinnedLocal {
		if n == node {
			return true
		}
	}
	return false
}

func (s Strategy) vdpRemote(classes []NodeClass, p Placement) bool {
	for _, c := range classes {
		if c.Category == T3 && p.Of(c.Node) != HostLGV {
			return true
		}
	}
	return false
}
