package core

import (
	"testing"

	"lgvoffload/internal/hostsim"
)

// tableIICounter builds a counter with the paper's Table II with-map
// shares: CostmapGen 37%, Path Tracking 60%, Localization 1%, Planning 2%.
func tableIICounter() *hostsim.CycleCounter {
	c := hostsim.NewCycleCounter()
	c.Account(NodeCostmap, hostsim.Work{SerialCycles: 0.857e9})
	c.Account(NodeTracking, hostsim.Work{ParallelCycles: 1.385e9})
	c.Account(NodeLocalization, hostsim.Work{SerialCycles: 0.028e9})
	c.Account(NodePlanner, hostsim.Work{SerialCycles: 0.055e9})
	c.Account(NodeMux, hostsim.Work{SerialCycles: 0.001e9})
	return c
}

func tableIIExploreCounter() *hostsim.CycleCounter {
	c := hostsim.NewCycleCounter()
	c.Account(NodeSLAM, hostsim.Work{ParallelCycles: 3.327e9})
	c.Account(NodeCostmap, hostsim.Work{SerialCycles: 0.685e9})
	c.Account(NodeTracking, hostsim.Work{ParallelCycles: 1.207e9})
	c.Account(NodePlanner, hostsim.Work{SerialCycles: 0.052e9})
	c.Account(NodeExploration, hostsim.Work{SerialCycles: 0.011e9})
	c.Account(NodeMux, hostsim.Work{SerialCycles: 0.001e9})
	return c
}

func classOf(t *testing.T, classes []NodeClass, node string) NodeClass {
	t.Helper()
	for _, c := range classes {
		if c.Node == node {
			return c
		}
	}
	t.Fatalf("node %s not classified", node)
	return NodeClass{}
}

func TestClassifyWithMap(t *testing.T) {
	classes := Classify(tableIICounter())
	// The paper's Fig. 4 taxonomy for the with-map workload.
	if got := classOf(t, classes, NodeCostmap).Category; got != T3 {
		t.Errorf("costmap = %v, want T3", got)
	}
	if got := classOf(t, classes, NodeTracking).Category; got != T3 {
		t.Errorf("tracking = %v, want T3", got)
	}
	if got := classOf(t, classes, NodeLocalization).Category; got != T2 {
		t.Errorf("localization = %v, want T2", got)
	}
	if got := classOf(t, classes, NodePlanner).Category; got != T2 {
		t.Errorf("planner = %v, want T2", got)
	}
	if got := classOf(t, classes, NodeMux).Category; got != T4 {
		t.Errorf("mux = %v, want T4", got)
	}
}

func TestClassifyWithoutMap(t *testing.T) {
	classes := Classify(tableIIExploreCounter())
	// SLAM is the canonical T1: energy-critical but off the VDP.
	if got := classOf(t, classes, NodeSLAM).Category; got != T1 {
		t.Errorf("slam = %v, want T1", got)
	}
	ecns := ECNs(classes)
	want := map[string]bool{NodeSLAM: true, NodeCostmap: true, NodeTracking: true}
	if len(ecns) != 3 {
		t.Fatalf("ECNs = %v", ecns)
	}
	for _, n := range ecns {
		if !want[n] {
			t.Errorf("unexpected ECN %s", n)
		}
	}
	t3 := T3Nodes(classes)
	if len(t3) != 2 {
		t.Errorf("T3 = %v", t3)
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := Classify(hostsim.NewCycleCounter()); len(got) != 0 {
		t.Errorf("empty counter classified: %v", got)
	}
}

func TestIsVDP(t *testing.T) {
	for _, n := range VDPNodes {
		if !IsVDP(n) {
			t.Errorf("%s should be VDP", n)
		}
	}
	if IsVDP(NodeSLAM) || IsVDP(NodePlanner) {
		t.Error("SLAM/planner are not on the VDP")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range []Category{T1, T2, T3, T4, Category(0)} {
		if c.String() == "" {
			t.Errorf("empty string for %d", c)
		}
	}
}

func TestWorkConverters(t *testing.T) {
	tw := TrackingWork(1000)
	if tw.Total() != 1000*TrajStepCycles {
		t.Errorf("tracking total = %v", tw.Total())
	}
	if tw.SerialCycles/tw.Total() != TrackSerialShare {
		t.Errorf("tracking serial share = %v", tw.SerialCycles/tw.Total())
	}
	if CostmapWork(10).SerialCycles != 10*CostmapOpCycles {
		t.Error("costmap work")
	}
	sw := SlamWork(100, 1000, 30, 0)
	if sw.ParallelCycles != 100*SlamMatchCycles+1000*SlamIntegrateOp {
		t.Error("slam parallel work")
	}
	if sw.SerialCycles != 30*SlamWeightCycles {
		t.Error("slam serial work")
	}
	// The paper: 98% of SLAM time is scanMatch. With realistic op counts
	// (30 particles × ~2800 probes vs ~400k integrate cells) the parallel
	// match share must dominate.
	real := SlamWork(84000, 400000, 90, 50000)
	if share := float64(84000*SlamMatchCycles) / real.Total(); share < 0.9 {
		t.Errorf("scanMatch share = %.2f, want > 0.9", share)
	}
	if AMCLWork(5).SerialCycles != 5*AMCLBeamCycles {
		t.Error("amcl work")
	}
	if PlanWork(3).SerialCycles != 3*PlanExpandCycles {
		t.Error("plan work")
	}
	if ExploreWork(2).SerialCycles != 2*ExploreOpCycles {
		t.Error("explore work")
	}
	if MuxWork().SerialCycles != MuxTickCycles {
		t.Error("mux work")
	}
}
