package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/world"
)

// runTraced runs a small mission with the tracer attached and returns
// both the result and the recorded spans.
func runTraced(t *testing.T, d Deployment, seed int64) (*Result, *spans.Tracer) {
	t.Helper()
	cfg := smallNav(d, seed)
	tr := spans.NewTracer(1 << 18) // hold the whole mission, no eviction
	cfg.Tracer = tr
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

// TestTraceSegmentsSumToMakespan is the tentpole acceptance check: for
// every tick that delivered a command, the compute+queue+transport
// segments recorded on its trace sum to the root span's measured VDP
// makespan within 1%.
func TestTraceSegmentsSumToMakespan(t *testing.T) {
	for _, d := range []Deployment{DeployLocal(), DeployEdge(8), DeployCloud(12)} {
		t.Run(d.Name, func(t *testing.T) {
			res, tr := runTraced(t, d, 3)
			if !res.Success {
				t.Fatalf("mission failed: %s", res.Reason)
			}
			if err := spans.Validate(tr.Spans()); err != nil {
				t.Fatalf("invalid span set: %v", err)
			}
			paths := spans.AnalyzeTicks(tr.Spans())
			if len(paths) < 20 {
				t.Fatalf("only %d tick traces for a %ds mission", len(paths), int(res.TotalTime))
			}
			checked := 0
			for _, p := range paths {
				if p.Makespan <= 0 {
					continue // starved tick: no command, no critical path
				}
				if diff := math.Abs(p.Sum() - p.Makespan); diff > 0.01*p.Makespan {
					t.Fatalf("tick at %.2fs: segments %.6f != makespan %.6f (%.2f%% off)",
						p.Start, p.Sum(), p.Makespan, 100*diff/p.Makespan)
				}
				checked++
			}
			if checked < 20 {
				t.Fatalf("only %d delivered ticks checked", checked)
			}
			// Remote deployments must show network time on the path.
			if d.Name != "local" {
				s := spans.Summarize(paths)
				if s.TransportP50 <= 0 {
					t.Errorf("remote deployment shows no transport time (p50=%g)", s.TransportP50)
				}
			}
		})
	}
}

// TestTraceChromeExportValidates covers the exporter end-to-end on real
// mission spans: well-formed JSON, monotonic ts, every parent present.
func TestTraceChromeExportValidates(t *testing.T) {
	_, tr := runTraced(t, DeployEdge(8), 5)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := spans.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if n != tr.Len() {
		t.Errorf("%d chrome events, want %d", n, tr.Len())
	}
}

// TestTraceCritPathFeedsTelemetry checks the obs registry sees the same
// decomposition (the post-mortem table source).
func TestTraceCritPathFeedsTelemetry(t *testing.T) {
	cfg := smallNav(DeployEdge(8), 3)
	cfg.Telemetry = obs.NewTelemetry(1 << 16)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed: %s", res.Reason)
	}
	var compute, transport float64
	for _, p := range cfg.Telemetry.Snapshot() {
		switch p.Name {
		case "critpath_compute_seconds":
			compute += p.Value * float64(p.Count)
		case "critpath_transport_seconds":
			transport += p.Value * float64(p.Count)
		}
	}
	if compute <= 0 || transport <= 0 {
		t.Errorf("critpath metrics empty: compute=%g transport=%g", compute, transport)
	}
}

// TestTraceChaosRecordsEpisodes runs the faulted adaptive mission with
// tracing on: the fault windows and safety episodes must appear as Mark
// spans alongside the tick trees.
func TestTraceChaosRecordsEpisodes(t *testing.T) {
	cfg := chaosNav(7)
	tr := spans.NewTracer(1 << 18)
	cfg.Tracer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := spans.Validate(tr.Spans()); err != nil {
		t.Fatalf("invalid span set: %v", err)
	}
	kinds := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Kind == spans.Mark {
			kinds[s.Name]++
		}
	}
	found := false
	for name := range kinds {
		if len(name) > 6 && name[:6] == "fault:" {
			found = true
		}
	}
	if !found {
		t.Errorf("no fault window marks recorded: %v", kinds)
	}
}

// TestTraceSurvivesRealUDP drives the real-socket switcher/worker pair
// with tracing enabled: the trace context stamped on the uplinked scan
// must come back in the worker's reply and close a complete offload
// span tree on the switcher's tracer.
func TestTraceSurvivesRealUDP(t *testing.T) {
	fn := func(scan *msg.Scan) (*msg.Twist, error) {
		time.Sleep(2 * time.Millisecond) // measurable remote proc time
		return &msg.Twist{V: 0.5}, nil
	}
	w, err := NewWorker("127.0.0.1:0", HostEdge, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	tr := spans.NewTracer(4096)
	w.SetTracer(tr) // same process: worker annotations land in one buffer

	sw, err := NewSwitcher(w.Addr(), NewProfiler())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	sw.SetTracer(tr)
	w.Register(sw.Addr())

	m := world.EmptyRoomMap(6, 4, 0.05)
	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(1)))

	deadline := time.Now().Add(5 * time.Second)
	for i := 0; sw.Received() == 0 || !hasOffloadRoot(tr); i++ {
		scan := msg.FromSensor(laser.Sense(m, geom.P(1, 2, 0), float64(i)*0.2), 0)
		if err := sw.SendScan(scan); err != nil {
			t.Fatal(err)
		}
		if scan.TraceID == 0 || scan.ParentSpan == 0 {
			t.Fatal("SendScan did not stamp trace context")
		}
		sw.Pump()
		if time.Now().After(deadline) {
			t.Fatal("no traced offload round completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sp := tr.Spans()
	if err := spans.Validate(sp); err != nil {
		t.Fatalf("invalid span set: %v", err)
	}
	var root *spans.Span
	for i := range sp {
		if sp[i].Kind == spans.Tick && sp[i].Name == "offload" {
			root = &sp[i]
			break
		}
	}
	if root == nil {
		t.Fatal("no offload root span")
	}
	// rtt and the compute segment are recorded atomically with the root;
	// worker_exec joins the trace parentless (the reply closing the root
	// can be lost, so the worker never links to a span it cannot see).
	want := map[string]bool{"rtt": false, NodeTracking: false, "worker_exec": false}
	for _, s := range sp {
		if s.Trace != root.Trace {
			continue
		}
		if s.Parent == root.ID || s.Name == "worker_exec" {
			want[s.Name] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("offload trace missing %q span (UDP propagation broken)", name)
		}
	}
	paths := spans.AnalyzeTicks(sp)
	if len(paths) == 0 || paths[0].Makespan <= 0 {
		t.Fatalf("no analyzable offload rounds: %v", paths)
	}
}

func hasOffloadRoot(tr *spans.Tracer) bool {
	for _, s := range tr.Spans() {
		if s.Kind == spans.Tick && s.Name == "offload" {
			return true
		}
	}
	return false
}
