package core

import (
	"math"
	"testing"

	"lgvoffload/internal/timing"
)

func testStrategy(goal Goal) Strategy {
	return Strategy{
		Goal: goal, Remote: HostCloud, Threads: 12,
		AMax: 0.8, StopDist: 0.08, VCeil: 1.0,
	}
}

func TestAlgorithm1ECOffloadsAllECNs(t *testing.T) {
	classes := Classify(tableIIExploreCounter())
	s := testStrategy(GoalEC)
	p, _ := s.Decide(classes, 0.5, 0.05)
	// All ECNs (T1+T3: SLAM, costmap, tracking) go to the cloud.
	for _, n := range []string{NodeSLAM, NodeCostmap, NodeTracking} {
		if p.Of(n) != HostCloud {
			t.Errorf("%s not offloaded under EC", n)
		}
	}
	// Lightweight nodes (T2+T4) stay on the LGV.
	for _, n := range []string{NodePlanner, NodeExploration, NodeMux} {
		if p.Of(n) != HostLGV {
			t.Errorf("%s should stay local", n)
		}
	}
}

func TestAlgorithm1ECKeepsOffloadEvenWithSlowNetwork(t *testing.T) {
	// EC optimizes energy: even when the cloud VDP is slower, ECNs stay
	// remote (the robot just drives slower).
	classes := Classify(tableIICounter())
	s := testStrategy(GoalEC)
	p, v := s.Decide(classes, 0.3, 0.9)
	if p.Of(NodeTracking) != HostCloud {
		t.Error("EC pulled tracking home on slow network")
	}
	// Velocity must follow the (slow) effective VDP.
	want := timing.MaxVelocity(0.9, s.AMax, s.StopDist)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestAlgorithm1MCTOffloadsWhenCloudFaster(t *testing.T) {
	classes := Classify(tableIICounter())
	s := testStrategy(GoalMCT)
	p, v := s.Decide(classes, 0.5, 0.05)
	for _, n := range []string{NodeCostmap, NodeTracking} {
		if p.Of(n) != HostCloud {
			t.Errorf("%s should offload when cloud VDP is faster", n)
		}
	}
	want := timing.MaxVelocity(0.05, s.AMax, s.StopDist)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestAlgorithm1MCTMigratesT3HomeWhenNetworkSlow(t *testing.T) {
	// The core of Algorithm 1: Tc > T_l^v under MCT migrates T3 back.
	classes := Classify(tableIIExploreCounter())
	s := testStrategy(GoalMCT)
	p, v := s.Decide(classes, 0.3, 0.9)
	for _, n := range []string{NodeCostmap, NodeTracking} {
		if p.Of(n) != HostLGV {
			t.Errorf("%s should come home when Tc > Tl", n)
		}
	}
	// T1 (SLAM) is not on the VDP, so it stays offloaded for its
	// failure-rate benefit.
	if p.Of(NodeSLAM) != HostCloud {
		t.Error("SLAM should stay offloaded under MCT")
	}
	want := timing.MaxVelocity(0.3, s.AMax, s.StopDist)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("v = %v, want local-VDP velocity %v", v, want)
	}
}

func TestVelocityCeiling(t *testing.T) {
	classes := Classify(tableIICounter())
	s := testStrategy(GoalMCT)
	s.VCeil = 0.1
	_, v := s.Decide(classes, 0.5, 0.001)
	if v > 0.1 {
		t.Errorf("velocity %v exceeds ceiling", v)
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := NewPlacement([]string{"a", "b"})
	if p.Of("a") != HostLGV || p.Of("missing") != HostLGV {
		t.Error("default placement should be local")
	}
	p.Host["a"] = HostEdge
	c := p.Clone()
	c.Host["b"] = HostCloud
	if p.Of("b") != HostLGV {
		t.Error("Clone shares the host map")
	}
	rn := p.RemoteNodes()
	if len(rn) != 1 || rn[0] != "a" {
		t.Errorf("RemoteNodes = %v", rn)
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestGoalString(t *testing.T) {
	if GoalEC.String() != "EC" || GoalMCT.String() != "MCT" {
		t.Error("goal strings")
	}
}

func TestDecideVelocityMonotoneInVDP(t *testing.T) {
	classes := Classify(tableIICounter())
	s := testStrategy(GoalMCT)
	prev := math.Inf(1)
	for _, tc := range []float64{0.01, 0.05, 0.1, 0.2} {
		_, v := s.Decide(classes, 10 /* local always slower */, tc)
		if v >= prev {
			t.Errorf("velocity should fall as cloud VDP grows: v(%v)=%v prev=%v", tc, v, prev)
		}
		prev = v
	}
}

func TestPinnedLocalNodesNeverOffload(t *testing.T) {
	// The §IX extension: safety-critical nodes stay on the vehicle even
	// when they are ECNs and the network is perfect.
	classes := Classify(tableIIExploreCounter())
	s := testStrategy(GoalEC)
	s.PinnedLocal = []string{NodeTracking}
	p, _ := s.Decide(classes, 0.5, 0.01)
	if p.Of(NodeTracking) != HostLGV {
		t.Error("pinned tracking node was offloaded")
	}
	// Unpinned ECNs still offload.
	if p.Of(NodeSLAM) != HostCloud || p.Of(NodeCostmap) != HostCloud {
		t.Error("unpinned ECNs should still offload")
	}
}
