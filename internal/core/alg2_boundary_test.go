package core

import (
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/muxer"
)

// TestNetControllerThresholdEquality pins Algorithm 2's behavior at the
// exact bandwidth threshold: both branches use strict inequalities, so
// r_t == threshold satisfies neither and the current decision must hold
// — whichever it is. This is the hysteresis the paper gets for free.
func TestNetControllerThresholdEquality(t *testing.T) {
	const thr = 4.0

	c := NewNetController(thr)
	if !c.RemoteOK() {
		t.Fatal("controller must start remote")
	}
	// Equality with an adverse direction: the local branch needs
	// r_t < threshold strictly, so the remote decision survives.
	if !c.Update(thr, -1) {
		t.Fatal("r_t == threshold flipped the decision to local")
	}
	// Force local, then test equality against the remote branch, which
	// needs r_t > threshold strictly.
	if c.Update(thr-1, -1) {
		t.Fatal("r_t < threshold with d_t < 0 must go local")
	}
	if c.Update(thr, +1) {
		t.Fatal("r_t == threshold flipped the decision to remote")
	}
	if got := c.Switches(); got != 1 {
		t.Fatalf("equality observations changed the switch count: got %d, want 1", got)
	}

	// Mixed-sign boundaries: rate crosses but direction is exactly zero
	// — both branches need a strict sign, so nothing moves.
	if c.Update(thr+2, 0) {
		t.Fatal("d_t == 0 allowed the remote branch")
	}
	if c.Update(thr-2, 0) {
		t.Fatal("d_t == 0 allowed the local branch to re-fire (already local, count must hold)")
	}
	if got := c.Switches(); got != 1 {
		t.Fatalf("zero-direction observations changed the switch count: got %d, want 1", got)
	}
}

// TestNetControllerMissLimitBoundary pins the consecutive-miss gate at
// its exact limit: misses == MissLimit forces local (the comparison is
// >=), misses == MissLimit-1 does not.
func TestNetControllerMissLimitBoundary(t *testing.T) {
	c := NewNetController(4)
	c.MissLimit = 15
	if !c.UpdateEx(10, +1, 14) {
		t.Fatal("misses one below the limit must not force local")
	}
	if c.UpdateEx(10, +1, 15) {
		t.Fatal("misses at the limit must force local even under good bandwidth")
	}
	// The gate holds the decision while misses stay pinned.
	if c.UpdateEx(10, +1, 16) {
		t.Fatal("misses past the limit must keep forcing local")
	}
	// Once the misses clear, a healthy link goes remote again.
	if !c.UpdateEx(10, +1, 0) {
		t.Fatal("cleared misses with good link must restore remote")
	}
}

// TestHoldDownExpiryBoundary pins the failover hold-down at its exact
// expiry tick: HoldActive is `now < holdUntil`, so the veto is active
// one instant before expiry and gone at exactly holdUntil.
func TestHoldDownExpiryBoundary(t *testing.T) {
	s := NewSafetyController(1.2, 15, 20)
	const tripAt = 100.0
	s.TripFailover(tripAt)
	if !s.HoldActive(tripAt) {
		t.Fatal("hold-down must be active immediately after the trip")
	}
	if !s.HoldActive(tripAt + 20 - 1e-9) {
		t.Fatal("hold-down must still veto an instant before expiry")
	}
	if s.HoldActive(tripAt + 20) {
		t.Fatal("hold-down must expire at exactly holdUntil (now < holdUntil is false)")
	}
	if s.HoldActive(tripAt + 20 + 1e-9) {
		t.Fatal("hold-down must stay expired after holdUntil")
	}
}

// TestFailoverTripResetsMisses pins the trip semantics at the boundary:
// reaching the limit trips exactly once, and the trip clears the
// counter so the next failover needs a full new run of misses.
func TestFailoverTripResetsMisses(t *testing.T) {
	s := NewSafetyController(1.2, 3, 20)
	for i := 0; i < 2; i++ {
		s.Miss()
	}
	if s.ShouldFailover() {
		t.Fatal("2 of 3 misses must not trip")
	}
	s.Miss()
	if !s.ShouldFailover() {
		t.Fatal("3 of 3 misses must trip")
	}
	s.TripFailover(50)
	if s.Misses() != 0 {
		t.Fatalf("trip must clear the miss counter, got %d", s.Misses())
	}
	if s.ShouldFailover() {
		t.Fatal("cleared counter must not re-trip")
	}
	if s.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", s.Failovers())
	}
}

// TestMuxOverwriteCountersConcurrentPublishers drives the multiplexer
// with several sources publishing into the same virtual-time window
// (the muxer is single-goroutine by contract; "concurrent" means
// contemporaneous offers between Selects) and pins down exactly which
// offers count as overwrites: replacing a command the motors never
// consumed counts, replacing a consumed one does not, and a
// lower-priority source being masked is not an overwrite.
func TestMuxOverwriteCountersConcurrentPublishers(t *testing.T) {
	m := muxer.New(muxer.DefaultSources())
	offer := func(src string, v float64, now float64) {
		t.Helper()
		if err := m.Offer(src, geom.Twist{V: v}, now); err != nil {
			t.Fatal(err)
		}
	}

	// Round 1: navigation and safety both publish, then navigation
	// refreshes before any Select. Only navigation's unconsumed command
	// is overwritten; safety's distinct slot is untouched.
	offer(muxer.SourceNavigation, 0.10, 0.00)
	offer(muxer.SourceSafety, 0.00, 0.01)
	offer(muxer.SourceNavigation, 0.20, 0.02)
	if got := m.Overwritten(); got != 1 {
		t.Fatalf("overwritten = %d after one unconsumed replacement, want 1", got)
	}

	// Safety (priority 100) wins the Select over fresh navigation.
	cmd, ok := m.Select(0.05)
	if !ok || cmd.V != 0 {
		t.Fatalf("Select = %+v ok=%v, want the safety stop", cmd, ok)
	}
	if m.Selected() != muxer.SourceSafety {
		t.Fatalf("selected %q, want safety", m.Selected())
	}

	// Round 2: safety refreshes its *consumed* command — not an
	// overwrite, the motors saw the previous one.
	offer(muxer.SourceSafety, 0.00, 0.06)
	if got := m.Overwritten(); got != 1 {
		t.Fatalf("overwritten = %d after replacing a consumed command, want still 1", got)
	}

	// Round 3: three publishers race within one control period; the two
	// navigation refreshes each clobber an unconsumed predecessor
	// (navigation never won a Select — safety always outranked it).
	offer(muxer.SourceJoystick, 0.30, 0.07)
	offer(muxer.SourceNavigation, 0.21, 0.08)
	offer(muxer.SourceNavigation, 0.22, 0.09)
	if got := m.Overwritten(); got != 3 {
		t.Fatalf("overwritten = %d after two more unconsumed replacements, want 3", got)
	}

	// After safety times out (0.2 s), the joystick outranks navigation.
	cmd, ok = m.Select(0.28)
	if !ok || cmd.V != 0.30 {
		t.Fatalf("Select = %+v ok=%v, want the joystick command", cmd, ok)
	}
	if m.Selected() != muxer.SourceJoystick {
		t.Fatalf("selected %q, want joystick", m.Selected())
	}

	// A masked lower-priority source is starved, not overwritten: its
	// command simply expires unconsumed.
	if got := m.Overwritten(); got != 3 {
		t.Fatalf("overwritten = %d after Selects, want unchanged 3", got)
	}
}
