package core

import (
	"sort"
	"strings"

	"lgvoffload/internal/mw"
)

// AdaptDecision is one entry of the mission's adaptation decision log:
// every placement change the adaptive controller performed, together
// with the profiler inputs that produced it. The log rides on Result so
// the bench experiments and the post-mortem report can explain *why* a
// mission offloaded or retreated, not just how often.
type AdaptDecision struct {
	T      float64 // virtual time of the switch
	Reason string  // "alg2-gate" (network veto), "alg1-EC"/"alg1-MCT", or "failover" (miss-counter trip)

	// Algorithm 2 inputs at decision time.
	Bandwidth float64 // r_t, messages/s
	Direction float64 // d_t, signal trend
	RemoteOK  bool    // Algorithm 2's verdict

	// Algorithm 1 inputs (zero when the network gate vetoed remote).
	LocalVDP float64 // estimated all-local VDP makespan, s
	CloudVDP float64 // estimated offloaded VDP makespan incl. RTT, s

	From, To   string  // placement descriptions, e.g. "edge:[costmap_gen path_tracking]"
	StateBytes float64 // migrated mutable node state
}

// remoteSetDesc renders a placement as "all-local" or
// "<host>:[node node ...]" for decision logs and switch events.
func remoteSetDesc(p Placement) string {
	remote := p.RemoteNodes()
	if len(remote) == 0 {
		return "all-local"
	}
	// Group by host: ordinarily every remote node shares p.Remote, but the
	// description must not lie if a future strategy splits them.
	byHost := make(map[mw.HostID][]string)
	for _, n := range remote {
		byHost[p.Of(n)] = append(byHost[p.Of(n)], n)
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, string(h))
	}
	sort.Strings(hosts)
	parts := make([]string, 0, len(hosts))
	for _, h := range hosts {
		parts = append(parts, h+":["+strings.Join(byHost[mw.HostID(h)], " ")+"]")
	}
	return strings.Join(parts, " ")
}
