package core

// NetController is Algorithm 2: offload network quality control. Instead
// of the tail latency that UDP best-effort delivery renders misleading
// (Fig. 7), it predicts network quality from the received-packet
// bandwidth over a sliding window and from the signal direction — the
// LGV's motion relative to the wireless access point:
//
//	if  r_t < threshold and d_t < 0:  invoke remote nodes locally
//	if  r_t > threshold and d_t > 0:  invoke them on the remote server
//
// Anything in between keeps the current decision, which gives the
// controller hysteresis for free: a robot hovering at the threshold does
// not flap.
type NetController struct {
	// Threshold is the bandwidth (messages/s) below which the link
	// counts as failing. The paper sets 4 for a 5 Hz sender.
	Threshold float64

	// MissLimit extends the algorithm's inputs with a consecutive-miss
	// counter: at or past this many missed remote VDP ticks the link is
	// declared dead regardless of bandwidth and direction — the paper's
	// rule is blind to a total outage while the robot is stationary
	// (d_t decays to 0, so neither branch fires). 0 disables the gate.
	MissLimit int

	remoteOK bool // current decision: true = offloading allowed
	switches int
}

// NewNetController returns a controller that starts in the remote state
// (missions begin near the WAP).
func NewNetController(threshold float64) *NetController {
	return &NetController{Threshold: threshold, remoteOK: true}
}

// Update feeds one observation: rate is the received-packet bandwidth
// (messages/s) and direction the smoothed signal direction (positive =
// approaching the WAP). It returns true when remote execution is
// currently advisable.
func (c *NetController) Update(rate, direction float64) bool {
	return c.UpdateEx(rate, direction, 0)
}

// UpdateEx is Update extended with the consecutive-miss count from the
// safety controller: misses at or past MissLimit force the local
// decision even when bandwidth and direction look acceptable (or simply
// say nothing, as during a dead-stop outage).
func (c *NetController) UpdateEx(rate, direction float64, misses int) bool {
	switch {
	case c.MissLimit > 0 && misses >= c.MissLimit:
		if c.remoteOK {
			c.switches++
		}
		c.remoteOK = false
	case rate < c.Threshold && direction < 0:
		if c.remoteOK {
			c.switches++
		}
		c.remoteOK = false
	case rate > c.Threshold && direction > 0:
		if !c.remoteOK {
			c.switches++
		}
		c.remoteOK = true
	}
	return c.remoteOK
}

// RemoteOK returns the current decision without feeding an observation.
func (c *NetController) RemoteOK() bool { return c.remoteOK }

// Switches returns how many times the decision has flipped — each flip
// costs a state migration, so a well-behaved controller flips rarely.
func (c *NetController) Switches() int { return c.switches }

// LatencyController is the ablation baseline the paper argues against:
// it predicts network quality from received-packet tail latency, the
// metric prior work used. Under UDP loss it keeps seeing good latencies
// from the packets that survive, so it fails to react (§VI, Fig. 7).
type LatencyController struct {
	// Threshold is the tail latency (s) above which the link counts as
	// failing.
	Threshold float64

	remoteOK bool
}

// NewLatencyController returns the baseline controller.
func NewLatencyController(threshold float64) *LatencyController {
	return &LatencyController{Threshold: threshold, remoteOK: true}
}

// Update feeds the current tail latency of received packets. A NaN (no
// packets received, so no latency samples at all) keeps the previous
// decision — which is exactly the failure mode: total loss is invisible.
func (c *LatencyController) Update(tailLatency float64, haveSamples bool) bool {
	if !haveSamples {
		return c.remoteOK
	}
	c.remoteOK = tailLatency <= c.Threshold
	return c.remoteOK
}

// RemoteOK returns the current decision.
func (c *LatencyController) RemoteOK() bool { return c.remoteOK }
