package core

import (
	"net"
	"sync"
	"time"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/spans"
)

// This file implements the §VII data plane with real sockets: the
// Switcher thread that "maintains data communication between worker
// nodes deployed in the local LGV and the remote server", attaching
// temporal information to each message, and the WORKER module that runs
// an offloaded node remotely and returns its result together with the
// subscribed processing time so the local profiler can compute the VDP
// makespan (cloud proc time + RTT). The simulated mission engine uses
// the virtual-time equivalent; this pair exists so the end-to-end design
// also runs over a genuine UDP transport, as in the paper's evpp-based
// prototype.

// WorkerFunc is the offloaded computation: it consumes a laser scan and
// produces a velocity command (the remote half of the VDP).
type WorkerFunc func(scan *msg.Scan) (*msg.Twist, error)

// Liveness timing for the real-socket pair. The worker beats about ten
// times per control period so the switcher detects a kill within a few
// beats; sends carry a short deadline so a wedged socket cannot stall
// the serving loop.
const (
	workerBeatPeriod = 100 * time.Millisecond
	sendDeadline     = 50 * time.Millisecond
	helloBackoffMin  = 50 * time.Millisecond
	helloBackoffMax  = 2 * time.Second
)

// Worker is the remote WORKER module: it serves scan messages over UDP,
// invokes the offloaded node, and replies with the command followed by a
// Profile record carrying the measured processing time.
type Worker struct {
	Host mw.HostID

	ep    *mw.UDPEndpoint
	fn    WorkerFunc
	stop  chan struct{}
	done  chan struct{}
	epoch time.Time

	mu       sync.Mutex
	tracer   *spans.Tracer // written by SetTracer after the loop started
	served   int
	peerAddr *net.UDPAddr
}

// NewWorker starts a worker listening on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewWorker(addr string, host mw.HostID, fn WorkerFunc) (*Worker, error) {
	ep, err := mw.ListenUDP(addr, 8)
	if err != nil {
		return nil, err
	}
	w := &Worker{Host: host, ep: ep, fn: fn, epoch: time.Now(),
		stop: make(chan struct{}), done: make(chan struct{})}
	go w.loop()
	return w, nil
}

// Addr returns the worker's UDP address.
func (w *Worker) Addr() *net.UDPAddr { return w.ep.Addr() }

// SetTracer attaches a span tracer; the worker then records its own view
// of each offloaded execution on the scan's trace. The span is Aux, not
// Compute: worker and switcher clocks share no epoch, so the remote
// observation annotates the trace but stays off the validated critical
// path (the switcher derives the Compute segment from the echoed
// ProcTime in its own clock). It is also recorded parentless — the
// reply that would close the parent "offload" root can be lost in
// flight, and the span set must stay structurally valid under loss.
func (w *Worker) SetTracer(tr *spans.Tracer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tracer = tr
}

// Served returns how many scans the worker has processed.
func (w *Worker) Served() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.served
}

// Close shuts the worker down.
func (w *Worker) Close() error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	err := w.ep.Close()
	<-w.done
	return err
}

func (w *Worker) loop() {
	defer close(w.done)
	lastBeat := time.Now()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		// Block until traffic or the next beat is due — an idle worker
		// parks on the endpoint's notify channel instead of spinning.
		m, from, ok := w.ep.PollWaitFrom(workerBeatPeriod)
		if ok {
			switch mm := m.(type) {
			case *msg.Scan:
				// Replies go to the registered peer: a scan alone does not
				// name a robot (the paper's switcher holds a connection).
				w.handleScan(mm)
			case *msg.Heartbeat:
				// A hello probe is the control plane: adopt its sender —
				// this is how a restarted switcher, or a switcher probing
				// a restarted worker, re-binds without manual wiring —
				// and echo immediately so the probe round-trips.
				w.Register(from)
				w.sendBeat()
				lastBeat = time.Now()
			}
		}
		if time.Since(lastBeat) >= workerBeatPeriod {
			w.sendBeat()
			lastBeat = time.Now()
		}
	}
}

// sendBeat emits one liveness beacon to the registered peer, if any.
func (w *Worker) sendBeat() {
	w.mu.Lock()
	peer := w.peerAddr
	served := w.served
	w.mu.Unlock()
	if peer == nil {
		return
	}
	hb := &msg.Heartbeat{From: string(w.Host), Served: int64(served)}
	_ = w.ep.SendToDeadline(peer, hb, sendDeadline)
}

func (w *Worker) handleScan(scan *msg.Scan) {
	start := time.Now()
	cmd, err := w.fn(scan)
	proc := time.Since(start).Seconds()
	if err != nil || cmd == nil {
		return
	}
	w.mu.Lock()
	tracer := w.tracer
	peer := w.peerAddr
	w.served++
	w.mu.Unlock()
	t0 := start.Sub(w.epoch).Seconds()
	tracer.Add(scan.TraceID, 0, "worker_exec", string(w.Host),
		NodeTracking, spans.Aux, t0, t0+proc)
	if peer == nil {
		return
	}
	cmd.Seq = scan.Seq
	cmd.Stamp = scan.Stamp
	cmd.SentAt = scan.SentAt   // echoed so the robot can compute RTT
	cmd.TraceID = scan.TraceID // trace context rides back with the result
	cmd.ParentSpan = scan.ParentSpan
	_ = w.ep.SendToDeadline(peer, cmd, sendDeadline)
	prof := &msg.Profile{
		Header: msg.Header{Seq: scan.Seq, Stamp: scan.Stamp, SentAt: scan.SentAt,
			TraceID: scan.TraceID, ParentSpan: scan.ParentSpan},
		Node:     NodeTracking,
		Host:     string(w.Host),
		ProcTime: proc,
	}
	_ = w.ep.SendToDeadline(peer, prof, sendDeadline)
}

// Register tells the worker where to send replies.
func (w *Worker) Register(robot *net.UDPAddr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.peerAddr = robot
}

// Switcher is the LGV-side switcher thread: it uplinks scans with
// temporal information attached and collects the returning commands and
// profiles, feeding the Profiler exactly as §VII describes.
type Switcher struct {
	ep     *mw.UDPEndpoint
	peer   *net.UDPAddr
	prof   *Profiler
	sink   obs.Sink      // nil when telemetry is off
	tracer *spans.Tracer // nil when tracing is off

	// HealthTimeout is how long the worker may stay silent before the
	// switcher declares it dead and degrades to local execution.
	// Defaults to five worker beat periods; set before first use.
	HealthTimeout time.Duration

	epoch time.Time
	seq   uint64

	mu         sync.Mutex
	lastCmd    *msg.Twist
	received   int
	lastHeard  time.Time     // wall time of the last frame from the worker
	degraded   bool          // worker currently considered dead
	downSince  time.Time     // when the current outage was declared
	reconnects int           // outages recovered from
	backoff    time.Duration // current hello-probe backoff
	nextHello  time.Time     // next hello probe not before this time
}

// NewSwitcher opens the robot-side endpoint and binds it to the worker.
func NewSwitcher(worker *net.UDPAddr, prof *Profiler) (*Switcher, error) {
	ep, err := mw.ListenUDP("127.0.0.1:0", 8)
	if err != nil {
		return nil, err
	}
	return &Switcher{ep: ep, peer: worker, prof: prof,
		HealthTimeout: 5 * workerBeatPeriod,
		epoch:         time.Now(), lastHeard: time.Now(),
		backoff: helloBackoffMin}, nil
}

// Addr returns the robot-side address (give it to Worker.Register).
func (s *Switcher) Addr() *net.UDPAddr { return s.ep.Addr() }

// SetSink attaches a telemetry sink so real-socket runs feed the same
// live registry the simulated engine uses (pass nil to detach). The
// switcher — not the profiler — is instrumented, so a mission engine
// sharing a Profiler never double-counts.
func (s *Switcher) SetSink(sk obs.Sink) { s.sink = sk }

// SetTracer attaches a span tracer. Each uplinked scan is then stamped
// with a fresh trace context that the worker echoes back, and every
// returning Profile closes an "offload" root span decomposed into
// transport (RTT) and compute (the worker's subscribed ProcTime mapped
// into the switcher's clock).
func (s *Switcher) SetTracer(tr *spans.Tracer) { s.tracer = tr }

// now returns seconds since the switcher started — the wall-clock analog
// of the engine's virtual time.
func (s *Switcher) now() float64 { return time.Since(s.epoch).Seconds() }

// SendScan uplinks one scan, stamping the temporal header. The send
// carries a deadline so a wedged socket errors instead of blocking the
// control loop.
func (s *Switcher) SendScan(scan *msg.Scan) error {
	s.seq++
	scan.Seq = s.seq
	scan.SentAt = s.now()
	if s.tracer.Enabled() {
		scan.TraceID = s.tracer.NewTrace()
		scan.ParentSpan = s.tracer.NextID()
	}
	return s.ep.SendToDeadline(s.peer, scan, sendDeadline)
}

// markAlive records evidence of a live worker, closing any declared
// outage and counting the reconnection.
func (s *Switcher) markAlive() {
	now := time.Now()
	s.mu.Lock()
	s.lastHeard = now
	wasDown := s.degraded
	var outage time.Duration
	if wasDown {
		s.degraded = false
		outage = now.Sub(s.downSince)
		s.reconnects++
		s.backoff = helloBackoffMin
	}
	s.mu.Unlock()
	if wasDown {
		if s.sink != nil {
			s.sink.Count(obs.MReconnects, "worker", 1)
			s.sink.Emit(obs.Event{Kind: obs.KindReconnect, T0: s.now(), T1: s.now(),
				Value: outage.Seconds(), Detail: s.peer.String()})
		}
		s.tracer.Add(s.tracer.NewTrace(), 0, "worker_outage", "lgv",
			"switcher", spans.Mark, s.now()-outage.Seconds(), s.now())
	}
}

// Pump drains received messages: commands update the latest command and
// the bandwidth meter; profiles record the remote processing time and the
// measured round trip. Returns how many messages were consumed.
func (s *Switcher) Pump() int {
	n := 0
	for {
		m, ok := s.ep.Poll()
		if !ok {
			return n
		}
		n++
		now := s.now()
		s.markAlive()
		switch mm := m.(type) {
		case *msg.Twist:
			s.mu.Lock()
			s.lastCmd = mm
			s.received++
			s.mu.Unlock()
			s.prof.RecordPacket(now, now-mm.SentAt)
			if s.sink != nil {
				s.sink.Count(obs.MTransfers, "cmd_vel", 1)
				s.sink.Emit(obs.Event{Kind: obs.KindTransfer,
					T0: mm.SentAt, T1: now, Node: "cmd_vel", Value: now - mm.SentAt})
			}
		case *msg.Profile:
			s.prof.RecordProc(mm.Node, mm.ProcTime)
			// Clock jitter between stamping and receipt can push the
			// subtraction below zero; a negative RTT would poison the
			// profiler's EWMA (and Algorithm 1's cloud VDP estimate).
			rtt := (now - mm.SentAt) - mm.ProcTime
			if rtt < 0 {
				rtt = 0
			}
			s.prof.RecordRTT(rtt)
			if mm.TraceID != 0 && s.tracer.Enabled() {
				// Close the offload root this scan opened in SendScan: the
				// round trip [SentAt, now] decomposes into transport (the
				// RTT remainder) and compute (the subscribed ProcTime laid
				// back from receipt, clamped against clock jitter).
				cStart := now - mm.ProcTime
				if cStart < mm.SentAt {
					cStart = mm.SentAt
				}
				s.tracer.Record(spans.Span{Trace: mm.TraceID, ID: mm.ParentSpan,
					Name: "offload", Host: "lgv", Kind: spans.Tick,
					Start: mm.SentAt, End: now})
				s.tracer.Add(mm.TraceID, mm.ParentSpan, "rtt", "lgv", "net",
					spans.Transport, mm.SentAt, cStart)
				s.tracer.Add(mm.TraceID, mm.ParentSpan, mm.Node, mm.Host, mm.Node,
					spans.Compute, cStart, now)
			}
			if s.sink != nil {
				s.sink.Observe(obs.MNodeExecSeconds, mm.Node, mm.ProcTime)
				s.sink.Count(obs.MNodeExecs, mm.Node, 1)
				s.sink.Observe(obs.MProbeRTTSeconds, "", rtt)
				s.sink.Emit(obs.Event{Kind: obs.KindNodeExec,
					T0: mm.SentAt, T1: now, Node: mm.Node, Host: mm.Host,
					Value: mm.ProcTime})
			}
		case *msg.Heartbeat:
			// Liveness only: markAlive above already refreshed the health
			// clock and closed any outage.
			_ = mm
		}
	}
}

// Maintain runs the switcher's health check; the demo driver calls it
// periodically (any rate comparable to the control period works). When
// the worker has been silent past HealthTimeout, the switcher declares
// it dead — Degraded() flips true, telling the caller to execute the
// offloaded node locally — and probes with hello heartbeats under
// exponential backoff until the worker (restarted on the same port, or
// a fresh one at the same address) echoes and Pump marks it alive.
func (s *Switcher) Maintain() {
	now := time.Now()
	s.mu.Lock()
	silent := now.Sub(s.lastHeard)
	if silent <= s.HealthTimeout {
		s.mu.Unlock()
		return
	}
	if !s.degraded {
		s.degraded = true
		s.downSince = now
		s.backoff = helloBackoffMin
		s.nextHello = now // probe immediately
	}
	probe := !now.Before(s.nextHello)
	if probe {
		s.nextHello = now.Add(s.backoff)
		s.backoff *= 2
		if s.backoff > helloBackoffMax {
			s.backoff = helloBackoffMax
		}
	}
	s.mu.Unlock()
	if probe {
		hb := &msg.Heartbeat{From: "switcher"}
		hb.SentAt = s.now()
		_ = s.ep.SendToDeadline(s.peer, hb, sendDeadline)
	}
}

// Degraded reports whether the worker is currently considered dead; the
// caller should fail over to local execution while it holds.
func (s *Switcher) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Reconnects returns how many declared outages have been recovered.
func (s *Switcher) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// LastCommand returns the most recent velocity command, if any.
func (s *Switcher) LastCommand() (*msg.Twist, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCmd, s.lastCmd != nil
}

// Received returns how many commands have arrived.
func (s *Switcher) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close shuts the endpoint down.
func (s *Switcher) Close() error { return s.ep.Close() }
