package core

import (
	"net"
	"sync"
	"time"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/obs"
)

// This file implements the §VII data plane with real sockets: the
// Switcher thread that "maintains data communication between worker
// nodes deployed in the local LGV and the remote server", attaching
// temporal information to each message, and the WORKER module that runs
// an offloaded node remotely and returns its result together with the
// subscribed processing time so the local profiler can compute the VDP
// makespan (cloud proc time + RTT). The simulated mission engine uses
// the virtual-time equivalent; this pair exists so the end-to-end design
// also runs over a genuine UDP transport, as in the paper's evpp-based
// prototype.

// WorkerFunc is the offloaded computation: it consumes a laser scan and
// produces a velocity command (the remote half of the VDP).
type WorkerFunc func(scan *msg.Scan) (*msg.Twist, error)

// Worker is the remote WORKER module: it serves scan messages over UDP,
// invokes the offloaded node, and replies with the command followed by a
// Profile record carrying the measured processing time.
type Worker struct {
	Host mw.HostID

	ep   *mw.UDPEndpoint
	fn   WorkerFunc
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	served   int
	peerAddr *net.UDPAddr
}

// NewWorker starts a worker listening on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewWorker(addr string, host mw.HostID, fn WorkerFunc) (*Worker, error) {
	ep, err := mw.ListenUDP(addr, 8)
	if err != nil {
		return nil, err
	}
	w := &Worker{Host: host, ep: ep, fn: fn,
		stop: make(chan struct{}), done: make(chan struct{})}
	go w.loop()
	return w, nil
}

// Addr returns the worker's UDP address.
func (w *Worker) Addr() *net.UDPAddr { return w.ep.Addr() }

// Served returns how many scans the worker has processed.
func (w *Worker) Served() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.served
}

// Close shuts the worker down.
func (w *Worker) Close() error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	err := w.ep.Close()
	<-w.done
	return err
}

func (w *Worker) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		m, ok := w.ep.Poll()
		if !ok {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		scan, isScan := m.(*msg.Scan)
		if !isScan {
			continue
		}
		// The scan frame carries the robot's reply address in SentAt's
		// companion — the paper's switcher holds a connection; over UDP
		// we reply to the configured peer below via handleScan.
		w.handleScan(scan)
	}
}

func (w *Worker) handleScan(scan *msg.Scan) {
	start := time.Now()
	cmd, err := w.fn(scan)
	proc := time.Since(start).Seconds()
	if err != nil || cmd == nil {
		return
	}
	w.mu.Lock()
	peer := w.peerAddr
	w.served++
	w.mu.Unlock()
	if peer == nil {
		return
	}
	cmd.Seq = scan.Seq
	cmd.Stamp = scan.Stamp
	cmd.SentAt = scan.SentAt // echoed so the robot can compute RTT
	_ = w.ep.SendTo(peer, cmd)
	prof := &msg.Profile{
		Header:   msg.Header{Seq: scan.Seq, Stamp: scan.Stamp, SentAt: scan.SentAt},
		Node:     NodeTracking,
		Host:     string(w.Host),
		ProcTime: proc,
	}
	_ = w.ep.SendTo(peer, prof)
}

// Register tells the worker where to send replies.
func (w *Worker) Register(robot *net.UDPAddr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.peerAddr = robot
}

// Switcher is the LGV-side switcher thread: it uplinks scans with
// temporal information attached and collects the returning commands and
// profiles, feeding the Profiler exactly as §VII describes.
type Switcher struct {
	ep   *mw.UDPEndpoint
	peer *net.UDPAddr
	prof *Profiler
	sink obs.Sink // nil when telemetry is off

	epoch time.Time
	seq   uint64

	mu       sync.Mutex
	lastCmd  *msg.Twist
	received int
}

// NewSwitcher opens the robot-side endpoint and binds it to the worker.
func NewSwitcher(worker *net.UDPAddr, prof *Profiler) (*Switcher, error) {
	ep, err := mw.ListenUDP("127.0.0.1:0", 8)
	if err != nil {
		return nil, err
	}
	return &Switcher{ep: ep, peer: worker, prof: prof, epoch: time.Now()}, nil
}

// Addr returns the robot-side address (give it to Worker.Register).
func (s *Switcher) Addr() *net.UDPAddr { return s.ep.Addr() }

// SetSink attaches a telemetry sink so real-socket runs feed the same
// live registry the simulated engine uses (pass nil to detach). The
// switcher — not the profiler — is instrumented, so a mission engine
// sharing a Profiler never double-counts.
func (s *Switcher) SetSink(sk obs.Sink) { s.sink = sk }

// now returns seconds since the switcher started — the wall-clock analog
// of the engine's virtual time.
func (s *Switcher) now() float64 { return time.Since(s.epoch).Seconds() }

// SendScan uplinks one scan, stamping the temporal header.
func (s *Switcher) SendScan(scan *msg.Scan) error {
	s.seq++
	scan.Seq = s.seq
	scan.SentAt = s.now()
	return s.ep.SendTo(s.peer, scan)
}

// Pump drains received messages: commands update the latest command and
// the bandwidth meter; profiles record the remote processing time and the
// measured round trip. Returns how many messages were consumed.
func (s *Switcher) Pump() int {
	n := 0
	for {
		m, ok := s.ep.Poll()
		if !ok {
			return n
		}
		n++
		now := s.now()
		switch mm := m.(type) {
		case *msg.Twist:
			s.mu.Lock()
			s.lastCmd = mm
			s.received++
			s.mu.Unlock()
			s.prof.RecordPacket(now, now-mm.SentAt)
			if s.sink != nil {
				s.sink.Count(obs.MTransfers, "cmd_vel", 1)
				s.sink.Emit(obs.Event{Kind: obs.KindTransfer,
					T0: mm.SentAt, T1: now, Node: "cmd_vel", Value: now - mm.SentAt})
			}
		case *msg.Profile:
			s.prof.RecordProc(mm.Node, mm.ProcTime)
			rtt := (now - mm.SentAt) - mm.ProcTime
			s.prof.RecordRTT(rtt)
			if s.sink != nil {
				s.sink.Observe(obs.MNodeExecSeconds, mm.Node, mm.ProcTime)
				s.sink.Count(obs.MNodeExecs, mm.Node, 1)
				s.sink.Observe(obs.MProbeRTTSeconds, "", rtt)
				s.sink.Emit(obs.Event{Kind: obs.KindNodeExec,
					T0: mm.SentAt, T1: now, Node: mm.Node, Host: mm.Host,
					Value: mm.ProcTime})
			}
		}
	}
}

// LastCommand returns the most recent velocity command, if any.
func (s *Switcher) LastCommand() (*msg.Twist, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCmd, s.lastCmd != nil
}

// Received returns how many commands have arrived.
func (s *Switcher) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Close shuts the endpoint down.
func (s *Switcher) Close() error { return s.ep.Close() }
