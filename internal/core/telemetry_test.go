package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/world"
)

// deadZoneAdaptive is the out-of-range walk that forces the adaptive
// controller to switch placement — the richest telemetry a mission emits.
func deadZoneAdaptive(tel *obs.Telemetry) MissionConfig {
	m := world.EmptyRoomMap(24, 3, 0.1)
	link := netsim.DefaultEdgeLink(geom.V(1, 1.5))
	link.GoodRange = 3
	link.FadeRange = 8
	return MissionConfig{
		Workload:   NavigationWithMap,
		Map:        m,
		Start:      geom.P(1, 1.5, 0),
		Goal:       geom.V(22, 1.5),
		WAP:        geom.V(1, 1.5),
		LinkCfg:    &link,
		Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:       5,
		MaxSimTime: 600,
		Telemetry:  tel,
	}
}

func TestMissionTelemetryJSONLValid(t *testing.T) {
	tel := obs.NewTelemetry(1 << 16)
	res, err := Run(deadZoneAdaptive(tel))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed: %s", res.Reason)
	}

	var buf bytes.Buffer
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	kinds := map[obs.Kind]int{}
	lines := 0
	for sc.Scan() {
		lines++
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", lines, err, sc.Text())
		}
		kinds[ev.Kind]++
		// Spans must nest within mission time.
		if ev.T1 < ev.T0 {
			t.Fatalf("line %d: span ends before it starts: %+v", lines, ev)
		}
		if ev.T0 < 0 || ev.T0 > res.TotalTime+1 {
			t.Fatalf("line %d: start outside mission time (%.1f): %+v",
				lines, res.TotalTime, ev)
		}
		if ev.Phase != "navigation" {
			t.Fatalf("line %d: phase not stamped: %+v", lines, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no telemetry events recorded")
	}
	for _, k := range []obs.Kind{obs.KindTick, obs.KindNodeExec, obs.KindProbe,
		obs.KindTransfer, obs.KindSwitch} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in a switching mission (have %v)", k, kinds)
		}
	}
	if kinds[obs.KindSwitch] != res.Switches {
		t.Errorf("switch events = %d, Result.Switches = %d",
			kinds[obs.KindSwitch], res.Switches)
	}
}

func TestMissionPostMortemCarriesAlg2Inputs(t *testing.T) {
	tel := obs.NewTelemetry(1 << 16)
	res, err := Run(deadZoneAdaptive(tel))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := obs.WritePostMortem(&sb, tel, res.TotalTime); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"node execution latency", NodeCostmap, NodeTracking, NodeMux,
		"host occupancy", "adaptation decision log", "switch", "bw=", "dir=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
}

func TestMissionDecisionLog(t *testing.T) {
	res, err := Run(deadZoneAdaptive(nil)) // decision log needs no telemetry
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 || len(res.Decisions) != res.Switches {
		t.Fatalf("decisions = %d, switches = %d", len(res.Decisions), res.Switches)
	}
	for i, d := range res.Decisions {
		if d.Reason == "" || d.From == "" || d.To == "" || d.From == d.To {
			t.Errorf("decision %d underspecified: %+v", i, d)
		}
		if d.Bandwidth < 0 {
			t.Errorf("decision %d: negative bandwidth: %+v", i, d)
		}
		if d.RemoteOK && (d.LocalVDP <= 0 || d.CloudVDP <= 0) {
			t.Errorf("decision %d: alg1 decision without VDP inputs: %+v", i, d)
		}
	}
	// The dead-zone walk must retreat to local at least once, and the
	// retreat must record the network inputs that justified it.
	sawRetreat := false
	for _, d := range res.Decisions {
		if d.To == "all-local" {
			sawRetreat = true
			if d.Reason != "alg2-gate" && !strings.HasPrefix(d.Reason, "alg1-") {
				t.Errorf("retreat with unknown reason %q", d.Reason)
			}
		}
	}
	if !sawRetreat {
		t.Error("no retreat to all-local across a dead zone")
	}
}

func TestTelemetryDisabledMatchesEnabled(t *testing.T) {
	// Telemetry must observe, not perturb: the virtual-time outcome with
	// and without a sink attached must be identical.
	plain, err := Run(deadZoneAdaptive(nil))
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := Run(deadZoneAdaptive(obs.NewTelemetry(0)))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != instrumented.TotalTime ||
		plain.Switches != instrumented.Switches ||
		plain.MsgsSent != instrumented.MsgsSent {
		t.Errorf("telemetry changed the mission: %+v vs %+v",
			plain.TotalTime, instrumented.TotalTime)
	}
	// Energy sums over a map, so two identical runs already differ in the
	// last ULP; anything beyond that would mean telemetry perturbed physics.
	if diff := math.Abs(plain.TotalEnergy - instrumented.TotalEnergy); diff > 1e-9 {
		t.Errorf("energy diverged by %g J: %v vs %v",
			diff, plain.TotalEnergy, instrumented.TotalEnergy)
	}
}

func TestProfilerProcTimeOK(t *testing.T) {
	p := NewProfiler()
	if _, ok := p.ProcTimeOK(NodeMux); ok {
		t.Error("unseen node must report ok=false")
	}
	if got := p.ProcTime(NodeMux); got != 0 {
		t.Errorf("unseen ProcTime = %v", got)
	}
	p.RecordProc(NodeMux, 0.004)
	got, ok := p.ProcTimeOK(NodeMux)
	if !ok || got != 0.004 {
		t.Errorf("ProcTimeOK = %v, %v", got, ok)
	}
}

func TestProfilerRTTOK(t *testing.T) {
	p := NewProfiler()
	if _, ok := p.RTTOK(); ok {
		t.Error("cold profiler must report no RTT")
	}
	p.RecordRTT(0.025)
	got, ok := p.RTTOK()
	if !ok || got != 0.025 {
		t.Errorf("RTTOK = %v, %v", got, ok)
	}
}
