package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/tracker"
	"lgvoffload/internal/world"
)

// TestSwitcherWorkerEndToEnd runs the §VII data plane over real UDP
// sockets: the worker hosts an actual parallel path tracker, the robot
// side streams scans through the Switcher, and the Profiler ends up with
// remote processing times and RTTs.
func TestSwitcherWorkerEndToEnd(t *testing.T) {
	m := world.EmptyRoomMap(6, 4, 0.05)
	ccfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(ccfg)
	cm.SetStatic(m)
	tk := tracker.New(tracker.DefaultConfig())
	pose := geom.P(1, 2, 0)
	path := []geom.Vec2{geom.V(1, 2), geom.V(5, 2)}

	worker, err := NewWorker("127.0.0.1:0", HostEdge, func(scan *msg.Scan) (*msg.Twist, error) {
		out, err := tk.PlanParallel(tracker.Input{
			Pose: pose, Vel: geom.Twist{V: 0.1}, Path: path, Costmap: cm,
		}, 4, tracker.Block)
		if err != nil {
			return nil, err
		}
		return &msg.Twist{V: out.Cmd.V, W: out.Cmd.W}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	prof := NewProfiler()
	sw, err := NewSwitcher(worker.Addr(), prof)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	worker.Register(sw.Addr())

	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(1)))
	const nScans = 10
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < nScans; i++ {
		scan := msg.FromSensor(laser.Sense(m, pose, float64(i)*0.2), 0)
		if err := sw.SendScan(scan); err != nil {
			t.Fatal(err)
		}
		for sw.Received() <= i {
			sw.Pump()
			if time.Now().After(deadline) {
				t.Fatalf("timed out after %d commands", sw.Received())
			}
			time.Sleep(time.Millisecond)
		}
	}

	if worker.Served() < nScans {
		t.Errorf("worker served %d of %d", worker.Served(), nScans)
	}
	cmd, ok := sw.LastCommand()
	if !ok {
		t.Fatal("no command received")
	}
	if cmd.V <= 0 {
		t.Errorf("command should drive forward: %+v", cmd)
	}
	// The profiler must have collected remote processing time and RTT —
	// the ingredients of the VDP makespan (Eq. 2b).
	if prof.ProcTime(NodeTracking) <= 0 {
		t.Error("no remote processing time profiled")
	}
	if prof.Bandwidth(sw.now()) == 0 && sw.Received() > 0 {
		t.Log("bandwidth window already expired (slow CI host) — acceptable")
	}
}

// TestWorkerErrorsProduceNoReply verifies a failing offloaded node sends
// nothing back (the robot's mux will time the source out — the paper's
// safety net).
func TestWorkerErrorsProduceNoReply(t *testing.T) {
	worker, err := NewWorker("127.0.0.1:0", HostCloud, func(*msg.Scan) (*msg.Twist, error) {
		return nil, errors.New("node crashed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	prof := NewProfiler()
	sw, err := NewSwitcher(worker.Addr(), prof)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	worker.Register(sw.Addr())

	if err := sw.SendScan(&msg.Scan{Ranges: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	sw.Pump()
	if sw.Received() != 0 {
		t.Error("crashed node must not produce commands")
	}
}

// TestWorkerIgnoresUnregisteredRobot: before Register, replies have
// nowhere to go and must be dropped silently.
func TestWorkerIgnoresUnregisteredRobot(t *testing.T) {
	worker, err := NewWorker("127.0.0.1:0", HostEdge, func(*msg.Scan) (*msg.Twist, error) {
		return &msg.Twist{V: 0.1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	sw, err := NewSwitcher(worker.Addr(), NewProfiler())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	// No Register call.
	if err := sw.SendScan(&msg.Scan{Ranges: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for worker.Served() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never processed the scan")
		}
		time.Sleep(time.Millisecond)
	}
	sw.Pump()
	if sw.Received() != 0 {
		t.Error("reply arrived despite missing registration")
	}
}
