package core

import (
	"sort"
	"sync"

	"lgvoffload/internal/netsim"
	"lgvoffload/internal/timing"
)

// Profiler is the §VII profiling module: it records per-node processing
// times (with exponential smoothing), the network round-trip time of the
// offloaded boundary, the received-packet bandwidth and the signal
// direction, and derives the VDP makespan that Algorithm 1 and Eq. 2c
// consume.
type Profiler struct {
	mu sync.Mutex

	alpha    float64 // EWMA smoothing factor
	procTime map[string]float64
	rtt      float64
	haveRTT  bool

	bw      *netsim.BandwidthMeter
	lat     *netsim.LatencyMeter
	dirLast float64
}

// NewProfiler returns a profiler with a 0.3 smoothing factor and a 1 s
// bandwidth window.
func NewProfiler() *Profiler {
	return &Profiler{
		alpha:    0.3,
		procTime: make(map[string]float64),
		bw:       netsim.NewBandwidthMeter(),
		lat:      &netsim.LatencyMeter{},
	}
}

// RecordProc records one node execution time.
func (p *Profiler) RecordProc(node string, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.procTime[node]; ok {
		p.procTime[node] = prev + p.alpha*(seconds-prev)
	} else {
		p.procTime[node] = seconds
	}
}

// ProcTime returns the smoothed processing time of a node, or 0 when the
// node was never profiled. Callers that must distinguish "never profiled"
// from "instant" use ProcTimeOK.
func (p *Profiler) ProcTime(node string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.procTime[node]
}

// ProcTimeOK returns the smoothed processing time of a node and whether
// the node has ever been profiled. A cold profiler returning a silent 0
// would make unprofiled nodes look free to Algorithm 1; callers that feed
// placement decisions must use this variant.
func (p *Profiler) ProcTimeOK(node string) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.procTime[node]
	return t, ok
}

// RecordRTT records one measured round-trip time across the offload
// boundary.
func (p *Profiler) RecordRTT(seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveRTT {
		p.rtt += p.alpha * (seconds - p.rtt)
	} else {
		p.rtt, p.haveRTT = seconds, true
	}
}

// RTT returns the smoothed round-trip time (0 when never measured).
func (p *Profiler) RTT() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rtt
}

// RTTOK returns the smoothed round-trip time and whether any round trip
// was ever measured — the cold-start companion of ProcTimeOK.
func (p *Profiler) RTTOK() (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rtt, p.haveRTT
}

// RecordPacket records a received message at virtual time now with the
// given one-way latency, feeding the bandwidth and latency meters.
func (p *Profiler) RecordPacket(now, latency float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bw.Observe(now)
	p.lat.Observe(latency)
}

// Bandwidth returns the received-packet rate (messages/s) at time now —
// Algorithm 2's r_t.
func (p *Profiler) Bandwidth(now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bw.Rate(now)
}

// TailLatency returns the q-quantile of received-packet latencies and
// whether any samples exist — the misleading metric the paper's baseline
// uses.
func (p *Profiler) TailLatency(q float64) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lat.Quantile(q)
}

// RecordDirection stores the latest signal direction (Algorithm 2's d_t).
func (p *Profiler) RecordDirection(d float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirLast = d
}

// Direction returns the latest signal direction.
func (p *Profiler) Direction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dirLast
}

// VDP computes the Eq. 2b makespan decomposition under a placement: the
// smoothed processing times of VDP nodes split by host, plus the RTT
// when any VDP node runs remotely.
func (p *Profiler) VDP(placement Placement) timing.VDPBreakdown {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b timing.VDPBreakdown
	remote := false
	for _, n := range VDPNodes {
		t := p.procTime[n]
		if placement.Of(n) == HostLGV {
			b.RobotProc += t
		} else {
			b.CloudProc += t
			remote = true
		}
	}
	if remote {
		b.Network = p.rtt
	}
	return b
}

// Nodes returns the profiled node names, sorted.
func (p *Profiler) Nodes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.procTime))
	for n := range p.procTime {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
