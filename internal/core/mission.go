package core

import (
	"fmt"
	"math"

	"lgvoffload/internal/energy"
	"lgvoffload/internal/explore"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/muxer"
	"lgvoffload/internal/spans"
)

// Mission is a resumable, step-driven mission handle: the same virtual-
// time loop Run executes, but advanced one physics step at a time by the
// caller. It exists so a scheduler (internal/serve) can interleave many
// missions on a few goroutines — park a mission mid-flight, step another,
// come back — without one blocking Run call per mission. A Mission is
// not safe for concurrent use; the owner serializes Step/Cancel/Result.
type Mission struct {
	e         *engine
	res       *Result
	nextProbe float64
	done      bool
	final     bool
}

// NewMission validates the config and builds a mission in its initial
// state, before the first physics step. Run is equivalent to NewMission
// followed by stepping to completion, so results are byte-identical
// between the two entry points.
func NewMission(cfg MissionConfig) (*Mission, error) {
	cfg.fillDefaults()
	if cfg.Map == nil {
		return nil, fmt.Errorf("core: mission needs a map")
	}
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Mission{
		e:   e,
		res: &Result{Config: cfg, Energy: make(map[energy.Component]float64), Cycles: e.counter},
	}, nil
}

// Time returns the mission's current virtual time in seconds.
func (m *Mission) Time() float64 { return m.e.w.Time }

// Done reports whether the mission has terminated (goal, timeout or
// cancellation). Step and Result remain safe to call after Done.
func (m *Mission) Done() bool { return m.done }

// Step advances the mission by one physics step (cfg.PhysicsDt of
// virtual time) and reports whether the mission has terminated. It is
// the loop body Run iterates; calling it after termination is a no-op
// that keeps returning true.
func (m *Mission) Step() bool {
	if m.done {
		return true
	}
	e := m.e
	cfg := e.cfg
	if e.w.Time >= cfg.MaxSimTime {
		m.done = true // Result stamps the "timeout" reason
		return true
	}
	now := e.w.Time

	// Deliver matured remote velocity commands.
	e.deliverPending(now)

	// Command-staleness watchdog: hold a zero-velocity safety stop
	// while no fresh VDP output reaches the multiplexer. The deadline
	// stretches with the profiled makespan so a slow-but-alive local
	// pipeline is not mistaken for a dead link.
	stalledNow := false
	if cfg.WatchdogDeadline >= 0 {
		deadline := math.Max(cfg.WatchdogDeadline, 3*e.prof.VDP(e.placement).Total())
		if stalled, first := e.safety.CheckStall(now, deadline); stalled {
			stalledNow = true
			e.mx.Offer(muxer.SourceSafety, geom.Twist{}, now)
			if first {
				e.tel.Watchdog(now, e.safety.Staleness(now))
				e.flightDump("watchdog", "", now)
				if !e.stallOpen {
					e.stallOpen = true
					e.stallStart = now
				}
			}
		}
	}

	// Fixed-rate heartbeat for Algorithm 2, independent of the
	// pipeline's pacing.
	if now >= m.nextProbe {
		e.sendProbe(now)
		m.nextProbe = now + cfg.ControlPeriod
	}

	// Control pipeline tick.
	if now >= e.nextControl && now >= e.pauseUntil {
		e.controlTick(now)
	}

	// Motor command from the multiplexer.
	cmd, ok := e.mx.Select(now)
	if !ok {
		cmd = geom.Twist{}
	}
	if cfg.CmdTap != nil {
		cfg.CmdTap(now, cmd, stalledNow)
	}
	e.w.SetCommand(cmd)

	// Physics step + meters.
	step := e.w.Step(cfg.PhysicsDt)
	e.meter.Tick(cfg.PhysicsDt)
	e.meter.AddMotor(step.MotorPower, cfg.PhysicsDt)
	e.clock.Tick(cfg.PhysicsDt, math.Abs(e.w.Robot.Vel.V)+0.3*math.Abs(e.w.Robot.Vel.W))
	e.link.SetRobotPosAt(e.w.Time, e.w.Robot.Pose.Pos)

	// Termination.
	if done, reason, success := e.checkDone(); done {
		m.res.Success = success
		m.res.Reason = reason
		m.done = true
	}
	return m.done
}

// Cancel terminates the mission before its natural end (scheduler
// eviction, daemon shutdown, an operator DELETE). The mission is marked
// unsuccessful with the given reason; Result still aggregates whatever
// the mission accrued so far.
func (m *Mission) Cancel(reason string) {
	if m.done {
		return
	}
	if reason == "" {
		reason = "canceled"
	}
	m.done = true
	m.res.Success = false
	m.res.Reason = reason
}

// Result finalizes the mission (closes episode spans, stamps fault
// windows, flushes the run-end record) and returns the aggregated
// Result. Idempotent: the first call terminates a still-running mission
// as a timeout-style stop; later calls return the same Result.
func (m *Mission) Result() *Result {
	if m.final {
		return m.res
	}
	m.final = true
	m.done = true
	e := m.e
	cfg := e.cfg
	res := m.res
	if res.Reason == "" {
		res.Reason = "timeout"
	}

	// Close out episode spans and stamp the injected fault windows so a
	// chaos trace shows each outage inline with the tick trees.
	if e.stallOpen {
		e.tr.Add(e.tr.NewTrace(), 0, "watchdog_stall", string(HostLGV), "safety",
			spans.Mark, e.stallStart, e.w.Time)
		e.stallOpen = false
	}
	if e.tr != nil && cfg.Faults != nil {
		for _, fw := range cfg.Faults.Windows {
			if fw.T0 > e.w.Time {
				continue
			}
			e.tr.Add(e.tr.NewTrace(), 0, "fault:"+fw.Kind.String(), "", "faults",
				spans.Mark, fw.T0, math.Min(fw.T1, e.w.Time))
		}
	}
	e.recordRunEnd()

	// Aggregate.
	res.TotalTime = e.clock.Total()
	res.MovingTime = e.clock.Moving()
	res.StandbyTime = e.clock.Standby()
	res.Distance = e.w.Distance()
	for _, row := range e.meter.Breakdown() {
		res.Energy[row.Component] = row.Joules
	}
	res.TotalEnergy = e.meter.Total()
	res.CoreSeconds = e.coreSeconds
	res.ThreadAdjustments = e.threadAdj
	res.Net = e.link.Stats()
	res.MsgsSent = e.msgsSent
	res.MsgsDropped = e.msgsDropped
	res.MsgsOverwritten = e.mx.Overwritten()
	res.BytesUplinked = e.bytesUp
	res.Switches = e.switches
	res.Decisions = e.decisions
	res.WatchdogStops = e.safety.Stops()
	res.Failovers = e.safety.Failovers()
	res.Handoffs = e.link.Handoffs()
	if ht := e.link.HandoffTimes(); len(ht) > 0 {
		res.HandoffTimes = append([]float64(nil), ht...)
	}
	if e.schedule != nil {
		res.FaultsInjected = e.schedule.Injected()
	}
	if e.vmaxCount > 0 {
		res.AvgMaxVel = e.vmaxSum / float64(e.vmaxCount)
	}
	if cfg.Workload == ExplorationNoMap {
		res.Explored = explore.Progress(e.slm.Map(), cfg.Map)
	}
	if cfg.Workload == CoverageWithMap {
		res.Covered = e.coveredFraction()
	}
	res.Trace = e.trace
	return res
}
