package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lgvoffload/internal/faults"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/msg"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/world"
)

// chaosNav is the fault-injection mission: an adaptive navigation run
// with the WAP placed AT the goal, so the robot approaches the access
// point for the whole drive (d_t >= 0) and Algorithm 2's weak-and-
// receding branch can never fire. Any retreat to local execution during
// an outage must therefore come from the miss-counter failover path —
// the mechanism under test.
func chaosNav(seed int64) MissionConfig {
	cfg := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        world.EmptyRoomMap(6, 4, 0.05),
		Start:      geom.P(0.8, 2, 0),
		Goal:       geom.V(5.2, 2),
		WAP:        geom.V(5.2, 2),
		Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:       seed,
		MaxSimTime: 300,
	}
	cfg.Faults = &faults.Config{Windows: []faults.Window{
		// Total WAP blackout early in the drive: the watchdog must stop
		// the robot (deadline ~1.2 s) and the failover must pull the ECNs
		// home (15 misses at 5 Hz ~ 3 s) well before the window ends.
		{Kind: faults.WAPOutage, T0: 4, T1: 12},
		// A server crash later on; with the 20 s post-failover hold-down
		// the placement is still local, so this mostly exercises probe
		// traffic through the schedule.
		{Kind: faults.ServerCrash, T0: 20, T1: 26},
	}}
	return cfg
}

// TestChaosAdaptiveSurvivesOutage is the tentpole acceptance run: an
// adaptive mission under a scripted WAP outage plus a server crash still
// reaches the goal, emits at least one watchdog stop and one failover,
// and logs the failover decision.
func TestChaosAdaptiveSurvivesOutage(t *testing.T) {
	tel := obs.NewTelemetry(4096)
	cfg := chaosNav(3)
	cfg.Telemetry = tel
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed under faults: %s (t=%.1f)", res.Reason, res.TotalTime)
	}
	if res.WatchdogStops < 1 {
		t.Error("no watchdog safety stop during a total outage")
	}
	if res.Failovers < 1 {
		t.Error("no failover despite 8 s of blackout")
	}
	if res.FaultsInjected == 0 {
		t.Error("schedule injected nothing")
	}
	var sawFailover bool
	for _, d := range res.Decisions {
		if d.Reason == "failover" {
			sawFailover = true
			if d.RemoteOK {
				t.Error("failover decision recorded RemoteOK = true")
			}
			if d.T < 4 || d.T > 12 {
				t.Errorf("failover at t=%.1f, want inside the outage window [4,12]", d.T)
			}
		}
	}
	if !sawFailover {
		t.Error("decision log has no failover entry")
	}

	// The timeline must carry the fault, watchdog and failover events.
	kinds := map[obs.Kind]int{}
	for _, ev := range tel.Events() {
		kinds[ev.Kind]++
	}
	if kinds[obs.KindFault] != 2 {
		t.Errorf("fault events = %d, want 2 (one per window)", kinds[obs.KindFault])
	}
	if kinds[obs.KindWatchdog] < 1 || kinds[obs.KindFailover] < 1 {
		t.Errorf("timeline events: watchdog=%d failover=%d, want >=1 each",
			kinds[obs.KindWatchdog], kinds[obs.KindFailover])
	}
}

// TestChaosDeterministicUnderFaults: same seed + same schedule must
// reproduce the identical decision log — the property that makes chaos
// runs debuggable at all.
func TestChaosDeterministicUnderFaults(t *testing.T) {
	a, err := Run(chaosNav(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosNav(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Decisions, b.Decisions) {
		t.Errorf("same seed+schedule diverged:\n%+v\nvs\n%+v", a.Decisions, b.Decisions)
	}
	if a.TotalTime != b.TotalTime || a.WatchdogStops != b.WatchdogStops ||
		a.Failovers != b.Failovers || a.FaultsInjected != b.FaultsInjected {
		t.Errorf("result counters diverged: %+v vs %+v", a, b)
	}
}

// TestChaosWatchdogDisabled: WatchdogDeadline < 0 must switch the safety
// stop off without touching the failover path.
func TestChaosWatchdogDisabled(t *testing.T) {
	cfg := chaosNav(3)
	cfg.WatchdogDeadline = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WatchdogStops != 0 {
		t.Errorf("disabled watchdog still stopped %d times", res.WatchdogStops)
	}
	if res.Failovers < 1 {
		t.Error("failover must still fire with the watchdog off")
	}
}

// TestChaosWorkerCrashAndReconnect exercises the real-socket plane:
// kill the worker mid-stream, watch the switcher degrade to local, then
// restart a worker on the same port and verify the hello probes
// re-register it — no manual rewiring — and scans are served again.
func TestChaosWorkerCrashAndReconnect(t *testing.T) {
	fn := func(scan *msg.Scan) (*msg.Twist, error) {
		return &msg.Twist{V: 0.5}, nil
	}
	w1, err := NewWorker("127.0.0.1:0", HostEdge, fn)
	if err != nil {
		t.Fatal(err)
	}
	addr := w1.Addr()

	sw, err := NewSwitcher(addr, NewProfiler())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	sw.HealthTimeout = 200 * time.Millisecond // speed the test up
	w1.Register(sw.Addr())

	m := world.EmptyRoomMap(6, 4, 0.05)
	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(1)))
	scan := func(i int) *msg.Scan {
		return msg.FromSensor(laser.Sense(m, geom.P(1, 2, 0), float64(i)*0.2), 0)
	}

	// Phase 1: healthy service.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; sw.Received() == 0; i++ {
		if err := sw.SendScan(scan(i)); err != nil {
			t.Fatal(err)
		}
		sw.Pump()
		if time.Now().After(deadline) {
			t.Fatal("worker never served the first scan")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sw.Degraded() {
		t.Fatal("switcher degraded while the worker is alive")
	}

	// Phase 2: crash. The switcher must notice by silence alone.
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !sw.Degraded() {
		sw.Maintain()
		sw.Pump()
		if time.Now().After(deadline) {
			t.Fatal("switcher never declared the dead worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: restart on the same port, no Register call — the
	// switcher's hello probe is the only way the new worker can learn
	// its peer.
	w2, err := NewWorker(addr.String(), HostEdge, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for sw.Degraded() {
		sw.Maintain()
		sw.Pump()
		if time.Now().After(deadline) {
			t.Fatal("switcher never reconnected to the restarted worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sw.Reconnects() < 1 {
		t.Errorf("reconnects = %d, want >= 1", sw.Reconnects())
	}

	// Phase 4: the restarted worker serves real work.
	before := sw.Received()
	deadline = time.Now().Add(5 * time.Second)
	for i := 0; sw.Received() == before; i++ {
		if err := sw.SendScan(scan(i)); err != nil {
			t.Fatal(err)
		}
		sw.Pump()
		if time.Now().After(deadline) {
			t.Fatal("restarted worker never served a scan")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w2.Served() == 0 {
		t.Error("second worker served nothing")
	}
}
