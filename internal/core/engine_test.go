package core

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/energy"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/world"
)

// smallNav returns a quick navigation mission in a small room.
func smallNav(d Deployment, seed int64) MissionConfig {
	return MissionConfig{
		Workload:   NavigationWithMap,
		Map:        world.EmptyRoomMap(6, 4, 0.05),
		Start:      geom.P(0.8, 2, 0),
		Goal:       geom.V(5.2, 2),
		WAP:        geom.V(3, 2),
		Deployment: d,
		Seed:       seed,
		MaxSimTime: 300,
	}
}

func TestNavigationReachesGoalAllDeployments(t *testing.T) {
	for _, d := range []Deployment{
		DeployLocal(), DeployEdge(1), DeployEdge(8), DeployCloud(12),
		DeployAdaptive(HostEdge, 8, GoalMCT), DeployAdaptive(HostCloud, 12, GoalEC),
	} {
		t.Run(d.Name, func(t *testing.T) {
			res, err := Run(smallNav(d, 3))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Fatalf("mission failed: %s (t=%.1f)", res.Reason, res.TotalTime)
			}
			if res.Distance < 4.0 {
				t.Errorf("distance = %v", res.Distance)
			}
			if res.TotalEnergy <= 0 {
				t.Error("no energy accounted")
			}
		})
	}
}

func TestOffloadingBeatsLocalOnTimeAndEnergy(t *testing.T) {
	local, err := Run(smallNav(DeployLocal(), 3))
	if err != nil {
		t.Fatal(err)
	}
	edge, err := Run(smallNav(DeployEdge(8), 3))
	if err != nil {
		t.Fatal(err)
	}
	if !local.Success || !edge.Success {
		t.Fatalf("missions failed: %v / %v", local.Reason, edge.Reason)
	}
	// The paper's headline: offloading reduces both completion time and
	// total energy by integer factors.
	if edge.TotalTime*1.5 > local.TotalTime {
		t.Errorf("time: edge %v vs local %v — expected a clear win", edge.TotalTime, local.TotalTime)
	}
	if edge.TotalEnergy*1.2 > local.TotalEnergy {
		t.Errorf("energy: edge %v vs local %v", edge.TotalEnergy, local.TotalEnergy)
	}
	// Offloading raises the velocity cap (Fig. 12).
	if edge.AvgMaxVel < 1.5*local.AvgMaxVel {
		t.Errorf("vmax: edge %v vs local %v", edge.AvgMaxVel, local.AvgMaxVel)
	}
	// The embedded computer is where the energy win comes from; motor
	// energy does not improve (Fig. 13's observation).
	localComp := local.Energy[energy.Computer]
	edgeComp := edge.Energy[energy.Computer]
	if edgeComp*2 > localComp {
		t.Errorf("computer energy: edge %v vs local %v", edgeComp, localComp)
	}
	motorRatio := local.Energy[energy.Motor] / edge.Energy[energy.Motor]
	compRatio := localComp / edgeComp
	if motorRatio > compRatio {
		t.Errorf("motor energy improved more (%vx) than computer (%vx)", motorRatio, compRatio)
	}
}

func TestParallelizationHelpsRemote(t *testing.T) {
	one, err := Run(smallNav(DeployEdge(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(smallNav(DeployEdge(8), 3))
	if err != nil {
		t.Fatal(err)
	}
	if eight.AvgMaxVel <= one.AvgMaxVel {
		t.Errorf("8 threads vmax %v should beat 1 thread %v", eight.AvgMaxVel, one.AvgMaxVel)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Run(smallNav(DeployEdge(8), 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallNav(DeployEdge(8), 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy ||
		a.Distance != b.Distance || a.MsgsSent != b.MsgsSent {
		t.Errorf("same seed diverged: %+v vs %+v", a.TotalTime, b.TotalTime)
	}
	c, err := Run(smallNav(DeployEdge(8), 10))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime == c.TotalTime && a.Distance == c.Distance {
		t.Error("different seeds produced identical missions")
	}
}

func TestExplorationMissionSmall(t *testing.T) {
	res, err := Run(MissionConfig{
		Workload:      ExplorationNoMap,
		Map:           world.EmptyRoomMap(5, 4, 0.05),
		Start:         geom.P(1, 2, 0),
		WAP:           geom.V(2.5, 2),
		Deployment:    DeployEdge(8),
		Seed:          4,
		MaxSimTime:    300,
		SlamParticles: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("exploration failed: %s (explored %.2f)", res.Reason, res.Explored)
	}
	if res.Explored < 0.5 {
		t.Errorf("explored only %.2f", res.Explored)
	}
	// Table II shape: SLAM must classify as an Energy-Critical Node in
	// the without-map workload. (Its exact share depends on room size —
	// the full-scale assertion lives in the Fig. 13 bench.)
	slam := classOf(t, Classify(res.Cycles), NodeSLAM)
	if !slam.ECN || slam.Category != T1 {
		t.Errorf("slam classified %+v, want ECN/T1", slam)
	}
}

func TestTableIIShapeNavigation(t *testing.T) {
	res, err := Run(smallNav(DeployEdge(8), 3))
	if err != nil {
		t.Fatal(err)
	}
	share := func(n string) float64 {
		total := res.Cycles.Total().Total()
		return res.Cycles.Node(n).Total() / total
	}
	// Paper Table II (with map): PT 60%, CG 37%, others ≤ 2%.
	if s := share(NodeTracking); s < 0.40 || s > 0.80 {
		t.Errorf("tracking share = %.2f, want ≈ 0.60", s)
	}
	if s := share(NodeCostmap); s < 0.15 || s > 0.55 {
		t.Errorf("costmap share = %.2f, want ≈ 0.37", s)
	}
	if s := share(NodeLocalization); s > 0.08 {
		t.Errorf("localization share = %.2f, want ≈ 0.01", s)
	}
	if s := share(NodeMux); s > 0.01 {
		t.Errorf("mux share = %.2f, want ≈ 0", s)
	}
	// The derived classification must match Fig. 4.
	classes := Classify(res.Cycles)
	if got := classOf(t, classes, NodeTracking).Category; got != T3 {
		t.Errorf("tracking classified %v", got)
	}
	if got := classOf(t, classes, NodeLocalization).Category; got != T2 {
		t.Errorf("localization classified %v", got)
	}
}

func TestAdaptiveSwitchesWhenDrivingOutOfRange(t *testing.T) {
	// Put the WAP at the start and the goal far outside its fade range:
	// the adaptive controller must pull computation home en route.
	m := world.EmptyRoomMap(24, 3, 0.1)
	link := netsim.DefaultEdgeLink(geom.V(1, 1.5))
	link.GoodRange = 3
	link.FadeRange = 8
	res, err := Run(MissionConfig{
		Workload:    NavigationWithMap,
		Map:         m,
		Start:       geom.P(1, 1.5, 0),
		Goal:        geom.V(22, 1.5),
		WAP:         geom.V(1, 1.5),
		LinkCfg:     &link,
		Deployment:  DeployAdaptive(HostEdge, 8, GoalMCT),
		Seed:        5,
		MaxSimTime:  600,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("adaptive mission failed: %s", res.Reason)
	}
	if res.Switches == 0 {
		t.Error("adaptive controller never switched placement")
	}
	// The trace must show remote execution early and local execution late.
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	early := res.Trace[len(res.Trace)/10]
	late := res.Trace[len(res.Trace)-1]
	if !early.RemoteOn {
		t.Error("should start remote near the WAP")
	}
	if late.RemoteOn {
		t.Error("should end local in the dead zone")
	}
}

func TestStaticRemoteSuffersInDeadZone(t *testing.T) {
	// The same walk with a pinned remote placement: the robot loses most
	// commands in the dead zone, so the adaptive run must finish faster.
	m := world.EmptyRoomMap(24, 3, 0.1)
	link := netsim.DefaultEdgeLink(geom.V(1, 1.5))
	link.GoodRange = 3
	link.FadeRange = 8
	base := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        m,
		Start:      geom.P(1, 1.5, 0),
		Goal:       geom.V(22, 1.5),
		WAP:        geom.V(1, 1.5),
		LinkCfg:    &link,
		Seed:       5,
		MaxSimTime: 600,
	}
	staticCfg := base
	staticCfg.Deployment = DeployEdge(8)
	static, err := Run(staticCfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptCfg := base
	adaptCfg.Deployment = DeployAdaptive(HostEdge, 8, GoalMCT)
	adapt, err := Run(adaptCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !adapt.Success {
		t.Fatalf("adaptive failed: %s", adapt.Reason)
	}
	if static.Success && static.TotalTime < adapt.TotalTime {
		t.Errorf("static remote (%.1fs) should not beat adaptive (%.1fs) across a dead zone",
			static.TotalTime, adapt.TotalTime)
	}
	if static.MsgsDropped == 0 {
		t.Error("static remote should drop messages in the dead zone")
	}
}

func TestMissionConfigValidation(t *testing.T) {
	if _, err := Run(MissionConfig{}); err == nil {
		t.Error("nil map must error")
	}
	bad := smallNav(DeployLocal(), 1)
	bad.Start = geom.P(0, 0, 0) // inside the wall
	if _, err := Run(bad); err == nil {
		t.Error("colliding start must error")
	}
}

func TestEnergyConservation(t *testing.T) {
	res, err := Run(smallNav(DeployEdge(8), 3))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, j := range res.Energy {
		sum += j
	}
	if math.Abs(sum-res.TotalEnergy) > 1e-6 {
		t.Errorf("component sum %v != total %v", sum, res.TotalEnergy)
	}
	// Eq. 2a: T = Ts + Tm.
	if math.Abs(res.MovingTime+res.StandbyTime-res.TotalTime) > 1e-6 {
		t.Error("time decomposition violated")
	}
}

func TestTransmissionEnergyIsSmall(t *testing.T) {
	res, err := Run(smallNav(DeployCloud(12), 3))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: wireless energy is negligible because the
	// biggest payload is the ~2.9 KB laser scan.
	if w := res.Energy[energy.Wireless]; w > 0.05*res.TotalEnergy {
		t.Errorf("wireless energy %v J is %.1f%% of total — should be tiny",
			w, 100*w/res.TotalEnergy)
	}
	if res.BytesUplinked == 0 {
		t.Error("no uplink traffic recorded")
	}
}

func TestAlg1MCTBeatsECUnderCongestedWAN(t *testing.T) {
	// The Algorithm 1 story end-to-end: a 300 ms WAN leg makes the cloud
	// VDP slower than local, so MCT must migrate T3 home and finish
	// faster than EC, which keeps ECNs remote for energy.
	lc := netsim.DefaultCloudLink(geom.V(3, 2))
	lc.WANLatSec = 0.300
	base := smallNav(Deployment{}, 42)
	base.LinkCfg = &lc

	run := func(g Goal) *Result {
		cfg := base
		cfg.Deployment = DeployAdaptive(HostCloud, 12, g)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("%v mission failed: %s", g, res.Reason)
		}
		return res
	}
	ec := run(GoalEC)
	mct := run(GoalMCT)
	if mct.Switches == 0 {
		t.Error("MCT should migrate T3 home under a congested WAN")
	}
	if ec.Switches != 0 {
		t.Errorf("EC should keep ECNs remote, switched %d times", ec.Switches)
	}
	if mct.TotalTime >= ec.TotalTime {
		t.Errorf("MCT (%.1fs) should beat EC (%.1fs) on completion time", mct.TotalTime, ec.TotalTime)
	}
}

func TestHeartbeatIndependentOfPipelinePacing(t *testing.T) {
	// Regression: a slow on-board pipeline (~3 Hz ticks) must not drag
	// the measured probe bandwidth below the Algorithm 2 threshold — the
	// probe runs at the fixed control period.
	res, err := Run(smallNav(DeployAdaptive(HostEdge, 8, GoalMCT), 3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed: %s", res.Reason)
	}
	// With a perfect link the adaptive run must never flap to local
	// because of its own pacing (one migration for the initial placement
	// refinement is fine; flapping is not).
	if res.Switches > 2 {
		t.Errorf("adaptive controller flapped %d times on a perfect link", res.Switches)
	}
}

func TestDVFSTradesTimeForEnergy(t *testing.T) {
	// Eq. 1c ablation: underclocking the Pi cuts computation power
	// quadratically but stretches the VDP makespan, so the mission slows
	// down. The knob the paper calls non-adjustable must behave per the
	// model when we do adjust it.
	stock, err := Run(smallNav(DeployLocal(), 3))
	if err != nil {
		t.Fatal(err)
	}
	slow := smallNav(DeployLocal(), 3)
	slow.LocalFreqGHz = 0.7
	under, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !stock.Success || !under.Success {
		t.Fatalf("missions failed: %v / %v", stock.Reason, under.Reason)
	}
	if under.TotalTime <= stock.TotalTime {
		t.Errorf("underclocked mission should be slower: %.1f vs %.1f",
			under.TotalTime, stock.TotalTime)
	}
	// Average computation power must drop (energy may not, since the
	// mission runs longer — exactly the Eq. 1 coupling of Fig. 3).
	stockP := stock.Energy[energy.Computer] / stock.TotalTime
	underP := under.Energy[energy.Computer] / under.TotalTime
	if underP >= stockP {
		t.Errorf("computer power should drop when underclocked: %.2f vs %.2f W", underP, stockP)
	}
}

func TestWaypointPatrol(t *testing.T) {
	cfg := smallNav(DeployEdge(8), 3)
	cfg.Waypoints = []geom.Vec2{geom.V(5.2, 3.2), geom.V(1.0, 3.2)}
	cfg.Goal = geom.V(5.2, 0.8)
	cfg.MaxSimTime = 600
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("patrol failed: %s", res.Reason)
	}
	if res.Reason != "patrol complete (3 stops)" {
		t.Errorf("reason = %q", res.Reason)
	}
	// A 3-stop round must travel much farther than the single-goal run.
	single, err := Run(smallNav(DeployEdge(8), 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < 1.5*single.Distance {
		t.Errorf("patrol distance %.1f vs single %.1f — route not followed",
			res.Distance, single.Distance)
	}
}

func TestAdaptiveSurvivesInterferenceBursts(t *testing.T) {
	// Periodic interference (not mobility fade): bursts kill bandwidth
	// for 30% of every 8 s. The direction gate keeps Algorithm 2 from
	// flapping on every burst, and the mission must still complete.
	link := netsim.DefaultEdgeLink(geom.V(3, 2))
	link.InterferencePeriod = 8
	link.InterferenceDuty = 0.3
	link.InterferenceFloor = 0.05
	cfg := smallNav(DeployAdaptive(HostEdge, 8, GoalMCT), 6)
	cfg.LinkCfg = &link
	cfg.MaxSimTime = 600
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("mission failed under interference: %s", res.Reason)
	}
	if res.MsgsDropped == 0 {
		t.Error("interference should have dropped some messages")
	}
	if res.Switches > 8 {
		t.Errorf("controller flapped %d times under bursts", res.Switches)
	}
}

func TestMissionSoakRandomWorlds(t *testing.T) {
	// Soak: random cluttered rooms across seeds. Every run must terminate
	// cleanly (success or honest timeout), never panic, and keep its
	// energy/time accounting consistent.
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := world.RandomClutterMap(6, 5, 0.05, 4, rng)
		start := geom.P(0.7, 0.7, 0)
		goal := geom.V(5.3, 4.3)
		if world.FootprintCollides(m, start.Pos, 0.12) ||
			world.FootprintCollides(m, goal, 0.12) {
			continue // clutter landed on an endpoint; skip this seed
		}
		res, err := Run(MissionConfig{
			Workload:   NavigationWithMap,
			Map:        m,
			Start:      start,
			Goal:       goal,
			WAP:        geom.V(3, 2.5),
			Deployment: DeployAdaptive(HostEdge, 8, GoalMCT),
			Seed:       seed,
			MaxSimTime: 300,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TotalTime <= 0 || res.TotalEnergy <= 0 {
			t.Errorf("seed %d: degenerate accounting %+v", seed, res)
		}
		if math.Abs(res.MovingTime+res.StandbyTime-res.TotalTime) > 1e-6 {
			t.Errorf("seed %d: Eq. 2a violated", seed)
		}
	}
}

func TestParallelismSheddingSavesCoreSeconds(t *testing.T) {
	// §VIII-E: the Fig. 14 obstacle course has a slalom phase where the
	// real velocity collapses far below the cap; the shedding controller
	// should cut the paid threads there and save reserved core-seconds
	// at similar mission time.
	base := MissionConfig{
		Workload:   NavigationWithMap,
		Map:        world.ObstacleCourseMap(),
		Start:      geom.P(0.6, 3.0, 0),
		Goal:       geom.V(13.5, 0.8),
		WAP:        geom.V(7, 3),
		Deployment: DeployEdge(8),
		Seed:       21,
		MaxSimTime: 900,
		VCeil:      0.6,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	shed := base
	shed.ShedParallelism = true
	shedded, err := Run(shed)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Success || !shedded.Success {
		t.Fatalf("missions failed: %v / %v", plain.Reason, shedded.Reason)
	}
	if shedded.ThreadAdjustments == 0 {
		t.Error("shedding controller never adjusted threads in clutter")
	}
	if shedded.CoreSeconds >= plain.CoreSeconds {
		t.Errorf("shedding should save core-seconds: %.1f vs %.1f",
			shedded.CoreSeconds, plain.CoreSeconds)
	}
	if shedded.TotalTime > 1.5*plain.TotalTime {
		t.Errorf("shedding cost too much time: %.1f vs %.1f",
			shedded.TotalTime, plain.TotalTime)
	}
}

func TestCoverageWorkloadCleansRoom(t *testing.T) {
	cfg := MissionConfig{
		Workload:   CoverageWithMap,
		Map:        world.EmptyRoomMap(3, 2.5, 0.05),
		Start:      geom.P(0.5, 0.5, 0),
		WAP:        geom.V(1.5, 1.25),
		Deployment: DeployEdge(8),
		Seed:       5,
		MaxSimTime: 900,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("sweep failed: %s (covered %.0f%%)", res.Reason, res.Covered*100)
	}
	if res.Covered < 0.75 {
		t.Errorf("covered only %.0f%%", res.Covered*100)
	}
	// Coverage planning is a lightweight T2 node; the VDP still dominates.
	classes := Classify(res.Cycles)
	cov := classOf(t, classes, NodeCoverage)
	if cov.ECN {
		t.Errorf("coverage planning classified as ECN: %+v", cov)
	}
}

func TestCoverageOffloadingStillWins(t *testing.T) {
	base := MissionConfig{
		Workload:   CoverageWithMap,
		Map:        world.EmptyRoomMap(3, 2.5, 0.05),
		Start:      geom.P(0.5, 0.5, 0),
		WAP:        geom.V(1.5, 1.25),
		Seed:       5,
		MaxSimTime: 1800,
	}
	local := base
	local.Deployment = DeployLocal()
	lres, err := Run(local)
	if err != nil {
		t.Fatal(err)
	}
	edge := base
	edge.Deployment = DeployEdge(8)
	eres, err := Run(edge)
	if err != nil {
		t.Fatal(err)
	}
	if !lres.Success || !eres.Success {
		t.Fatalf("missions failed: %v / %v", lres.Reason, eres.Reason)
	}
	if eres.TotalTime >= lres.TotalTime {
		t.Errorf("offloaded sweep (%.1fs) should beat local (%.1fs)",
			eres.TotalTime, lres.TotalTime)
	}
}
