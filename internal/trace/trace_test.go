package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"lgvoffload/internal/bag"
	"lgvoffload/internal/msg"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/world"
)

func TestLabDatasetBasics(t *testing.T) {
	ds := LabDataset(1, 200)
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	if ds.Len() > 200 {
		t.Fatalf("len %d exceeds cap", ds.Len())
	}
	if ds.PathLength() < 2.0 {
		t.Errorf("robot barely moved: %v m", ds.PathLength())
	}
	// Entries are time-ordered and carry full scans.
	prev := -1.0
	for i, e := range ds.Entries {
		if e.Stamp <= prev {
			t.Fatalf("entry %d out of order", i)
		}
		prev = e.Stamp
		if e.Scan == nil || e.Scan.NumBeams() != 360 {
			t.Fatalf("entry %d scan malformed", i)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := LabDataset(5, 100)
	b := LabDataset(5, 100)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Entries {
		if a.Entries[i].TruePose != b.Entries[i].TruePose {
			t.Fatal("same seed produced different trajectories")
		}
		if a.Entries[i].Scan.Ranges[0] != b.Entries[i].Scan.Ranges[0] {
			t.Fatal("same seed produced different scans")
		}
	}
	// Different seeds change the sensor noise (the scripted trajectory is
	// driven from ground truth, so poses stay identical by design).
	c := LabDataset(6, 100)
	same := true
	for i := 0; i < 10 && i < c.Len() && i < a.Len(); i++ {
		if c.Entries[i].Scan.Ranges[0] != a.Entries[i].Scan.Ranges[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical scan noise")
	}
}

func TestOdomDeltasComposeApproximately(t *testing.T) {
	ds := LabDataset(2, 150)
	// Composing all noisy deltas from the start should land near the true
	// final pose (odometry noise is small over a short run).
	est := ds.Start
	for _, e := range ds.Entries {
		est = est.Compose(e.OdomDelta)
	}
	truth := ds.Entries[len(ds.Entries)-1].TruePose
	if d := est.Pos.Dist(truth.Pos); d > 1.5 {
		t.Errorf("odometry integration drifted %v m from truth", d)
	}
}

func TestRobotStaysInFreeSpace(t *testing.T) {
	ds := LabDataset(3, 200)
	for i, e := range ds.Entries {
		if ds.Map.OccupiedAtWorld(e.TruePose.Pos) {
			t.Fatalf("entry %d: robot inside an obstacle at %v", i, e.TruePose.Pos)
		}
	}
}

func TestEmptyWaypoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Waypoints = nil
	ds := Generate(world.LabMap(), cfg, rand.New(rand.NewSource(1)))
	if ds.Len() != 0 {
		t.Error("no waypoints should give empty dataset")
	}
}

func TestShortTour(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Waypoints = []geom.Vec2{{X: 1, Y: 1}, {X: 2, Y: 1}}
	cfg.MaxEntries = 1000
	ds := Generate(world.LabMap(), cfg, rand.New(rand.NewSource(4)))
	if ds.Len() == 0 {
		t.Fatal("no entries for short tour")
	}
	final := ds.Entries[len(ds.Entries)-1].TruePose
	if final.Pos.Dist(geom.V(2, 1)) > 0.4 {
		t.Errorf("tour did not reach waypoint: %v", final)
	}
}

func TestDatasetBagRoundtrip(t *testing.T) {
	ds := LabDataset(9, 40)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), ds.Map)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("entries %d != %d", back.Len(), ds.Len())
	}
	if back.Start != ds.Start {
		t.Errorf("start %v != %v", back.Start, ds.Start)
	}
	for i := range ds.Entries {
		a, b := ds.Entries[i], back.Entries[i]
		if a.Stamp != b.Stamp || a.TruePose != b.TruePose || a.OdomDelta != b.OdomDelta {
			t.Fatalf("entry %d metadata differs", i)
		}
		for j := range a.Scan.Ranges {
			if a.Scan.Ranges[j] != b.Scan.Ranges[j] {
				t.Fatalf("entry %d beam %d differs", i, j)
			}
		}
	}
}

func TestLoadRejectsIncompleteBag(t *testing.T) {
	ds := LabDataset(9, 5)
	var buf bytes.Buffer
	bw, err := bag.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A scan with no matching delta/truth records.
	bw.Write(0.2, TopicScan, msg.FromSensor(ds.Entries[0].Scan, 1))
	bw.Flush()
	if _, err := Load(bytes.NewReader(buf.Bytes()), ds.Map); err == nil {
		t.Error("incomplete bag should fail to load")
	}
}

func TestOfficeDataset(t *testing.T) {
	ds := OfficeDataset(4, 250)
	if ds.Len() < 50 {
		t.Fatalf("office dataset too short: %d", ds.Len())
	}
	if ds.PathLength() < 3 {
		t.Errorf("tour too short: %.1f m", ds.PathLength())
	}
	for i, e := range ds.Entries {
		if ds.Map.OccupiedAtWorld(e.TruePose.Pos) {
			t.Fatalf("entry %d inside a wall at %v", i, e.TruePose.Pos)
		}
	}
}
