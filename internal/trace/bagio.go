package trace

import (
	"fmt"
	"io"

	"lgvoffload/internal/bag"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/msg"
)

// Bag topics used by dataset persistence.
const (
	TopicScan  = "scan"
	TopicDelta = "odom_delta"
	TopicTruth = "truth"
)

// Save writes the dataset's sensor stream as a bag. The ground-truth
// map is not stored (it is reproducible from the generator); Load
// accepts it separately.
func (d *Dataset) Save(w io.Writer) error {
	bw, err := bag.NewWriter(w)
	if err != nil {
		return err
	}
	// Seq 0 carries the start pose.
	if err := bw.Write(0, TopicTruth, msg.FromPose(d.Start, 0, 0)); err != nil {
		return err
	}
	for i, e := range d.Entries {
		seq := uint64(i + 1)
		if err := bw.Write(e.Stamp, TopicScan, msg.FromSensor(e.Scan, seq)); err != nil {
			return err
		}
		if err := bw.Write(e.Stamp, TopicDelta, msg.FromPose(e.OdomDelta, seq, e.Stamp)); err != nil {
			return err
		}
		if err := bw.Write(e.Stamp, TopicTruth, msg.FromPose(e.TruePose, seq, e.Stamp)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// bagEntry accumulates one dataset entry from its three bag records.
type bagEntry struct {
	e    Entry
	scan bool
	dlt  bool
	tru  bool
}

// Load reconstructs a dataset from a bag written by Save. The caller
// supplies the ground-truth map the log was recorded in.
func Load(r io.Reader, m *grid.Map) (*Dataset, error) {
	recs, err := bag.ReadAll(r)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Map: m}
	byseq := map[uint64]*bagEntry{}
	var order []uint64
	ensure := func(seq uint64) *bagEntry {
		if p, ok := byseq[seq]; ok {
			return p
		}
		p := &bagEntry{}
		byseq[seq] = p
		order = append(order, seq)
		return p
	}
	for _, rec := range recs {
		switch mm := rec.Msg.(type) {
		case *msg.Scan:
			p := ensure(mm.Seq)
			p.e.Stamp = rec.Stamp
			p.e.Scan = mm.ToSensor()
			p.scan = true
		case *msg.Pose:
			if mm.Seq == 0 {
				ds.Start = mm.AsPose()
				continue
			}
			p := ensure(mm.Seq)
			switch rec.Topic {
			case TopicDelta:
				p.e.OdomDelta = mm.AsPose()
				p.dlt = true
			case TopicTruth:
				p.e.TruePose = mm.AsPose()
				p.tru = true
			}
		}
	}
	for _, seq := range order {
		p := byseq[seq]
		if !p.scan || !p.dlt || !p.tru {
			return nil, fmt.Errorf("trace: incomplete record seq %d", seq)
		}
		ds.Entries = append(ds.Entries, p.e)
	}
	return ds, nil
}
