// Package trace generates the synthetic laser/odometry datasets that
// stand in for the Intel Research Lab SLAM logs the paper replays in its
// cloud-acceleration experiments (§VIII-B). A scripted waypoint follower
// drives the simulated Turtlebot through a lab-scale world while the
// generator records, at a fixed scan rate, the noisy odometry delta and
// laser sweep — exactly the stream the SLAM and VDP kernels consume, so
// replaying a dataset exercises the same code paths as replaying the
// original logs.
package trace

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/world"
)

// Entry is one dataset record.
type Entry struct {
	Stamp     float64
	OdomDelta geom.Pose // noisy odometry motion since the previous entry
	TruePose  geom.Pose // ground truth (for evaluation only)
	Scan      *sensor.Scan
}

// Dataset is a replayable sensor log.
type Dataset struct {
	Map     *grid.Map // ground-truth world the log was recorded in
	Start   geom.Pose
	Entries []Entry
}

// Len returns the number of entries.
func (d *Dataset) Len() int { return len(d.Entries) }

// Config parameterizes dataset generation.
type Config struct {
	Waypoints  []geom.Vec2 // tour the robot drives
	ScanPeriod float64     // seconds between records
	SimDt      float64     // physics step
	Speed      float64     // cruise speed, m/s
	LaserBeams int
	LaserNoise float64
	MaxEntries int
}

// DefaultConfig returns a lab-loop tour at Turtlebot speeds.
func DefaultConfig() Config {
	return Config{
		Waypoints: []geom.Vec2{
			{X: 1.0, Y: 1.0}, {X: 2.4, Y: 4.8}, {X: 4.2, Y: 4.4},
			{X: 4.3, Y: 1.0}, {X: 7.2, Y: 1.2}, {X: 8.8, Y: 4.8},
			{X: 11.0, Y: 3.0}, {X: 9.0, Y: 0.8}, {X: 1.0, Y: 1.0},
		},
		ScanPeriod: 0.2,
		SimDt:      0.05,
		Speed:      0.2,
		LaserBeams: 360,
		LaserNoise: 0.01,
		MaxEntries: 600,
	}
}

// Generate drives the tour through the given world and records a dataset.
// A simple go-to-point controller (turn toward the waypoint, drive when
// roughly aligned) produces realistic arcs and in-place turns.
func Generate(m *grid.Map, cfg Config, rng *rand.Rand) *Dataset {
	if len(cfg.Waypoints) == 0 {
		return &Dataset{Map: m}
	}
	start := geom.P(cfg.Waypoints[0].X, cfg.Waypoints[0].Y, 0)
	w := world.New(m, world.Turtlebot3(), start)
	laser := sensor.NewLaser(cfg.LaserBeams, 3.5, cfg.LaserNoise, rng)
	odo := sensor.NewOdometer(rand.New(rand.NewSource(rng.Int63())))

	ds := &Dataset{Map: m, Start: start}
	prevOdom := odo.Update(w.Robot.Pose)
	nextScan := 0.0
	wpIdx := 1

	for wpIdx < len(cfg.Waypoints) && ds.Len() < cfg.MaxEntries {
		target := cfg.Waypoints[wpIdx]
		if w.Robot.Pose.Pos.Dist(target) < 0.25 {
			wpIdx++
			continue
		}
		// Go-to-point controller.
		bearing := geom.AngleDiff(target.Sub(w.Robot.Pose.Pos).Angle(), w.Robot.Pose.Theta)
		cmd := geom.Twist{W: geom.Clamp(2*bearing, -1.8, 1.8)}
		if math.Abs(bearing) < 0.6 {
			cmd.V = cfg.Speed
		}
		w.SetCommand(cmd)
		w.Step(cfg.SimDt)
		if w.Collided() {
			// Nudge: rotate in place to escape.
			w.SetCommand(geom.Twist{W: 1.5})
			w.Step(cfg.SimDt)
		}

		if w.Time >= nextScan {
			nextScan += cfg.ScanPeriod
			est := odo.Update(w.Robot.Pose)
			delta := prevOdom.Delta(est)
			prevOdom = est
			ds.Entries = append(ds.Entries, Entry{
				Stamp:     w.Time,
				OdomDelta: delta,
				TruePose:  w.Robot.Pose,
				Scan:      laser.Sense(m, w.Robot.Pose, w.Time),
			})
		}
	}
	return ds
}

// LabDataset generates the standard lab-loop dataset used by the Fig. 9
// and Fig. 10 experiments, with at most n entries.
func LabDataset(seed int64, n int) *Dataset {
	cfg := DefaultConfig()
	if n > 0 {
		cfg.MaxEntries = n
	}
	return Generate(world.LabMap(), cfg, rand.New(rand.NewSource(seed)))
}

// OfficeDataset generates a corridor-and-rooms tour through an office
// floor — a second, structurally different stream for checking that the
// acceleration results do not depend on one environment.
func OfficeDataset(seed int64, n int) *Dataset {
	const rooms, roomW, roomD, corridorW = 4, 2.0, 1.8, 1.2
	rng := rand.New(rand.NewSource(seed))
	m := world.OfficeMap(rooms, roomW, roomD, corridorW, 0.05, rng)
	y := world.OfficeCorridorY(roomD, corridorW)
	cfg := DefaultConfig()
	if n > 0 {
		cfg.MaxEntries = n
	}
	cfg.Waypoints = []geom.Vec2{
		{X: 0.7, Y: y},
		world.OfficeRoomCenter(0, 0, roomW, roomD, corridorW),
		{X: 0.7, Y: y},
		{X: 4.0, Y: y},
		world.OfficeRoomCenter(2, 1, roomW, roomD, corridorW),
		{X: 4.0, Y: y},
		{X: 7.5, Y: y},
		{X: 0.7, Y: y},
	}
	return Generate(m, cfg, rng)
}

// PathLength returns the ground-truth distance traveled across the log.
func (d *Dataset) PathLength() float64 {
	var l float64
	for i := 1; i < len(d.Entries); i++ {
		l += d.Entries[i].TruePose.Pos.Dist(d.Entries[i-1].TruePose.Pos)
	}
	return l
}
