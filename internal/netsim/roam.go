package netsim

import (
	"fmt"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/obs"
)

// WAP is one access point of a roaming link. Zero GoodRange/FadeRange
// inherit the LinkConfig-level values, so a WAP list can be positions
// only or carry per-WAP coverage (a long-range backbone AP next to a
// short-range in-aisle repeater).
type WAP struct {
	Pos       geom.Vec2
	GoodRange float64 // full signal within this distance, m (0 = LinkConfig.GoodRange)
	FadeRange float64 // zero signal beyond this distance, m (0 = LinkConfig.FadeRange)
}

// Roaming defaults, applied by NewLink when the link has more than one
// access point and the corresponding LinkConfig field is zero.
const (
	// DefaultHandoffMargin is how much stronger a candidate AP's signal
	// must be before the client roams to it — 802.11-style hysteresis so
	// the link does not ping-pong where two cells overlap evenly.
	DefaultHandoffMargin = 0.08
	// DefaultHandoffHoldSec is the minimum time between handoffs.
	DefaultHandoffHoldSec = 3.0
	// DefaultHandoffDipSec is how long the signal dips after a handoff
	// while the client re-associates (auth + DHCP-ish settling).
	DefaultHandoffDipSec = 0.5
	// DefaultHandoffDipFloor caps the effective signal during the dip.
	DefaultHandoffDipFloor = 0.35
)

// aps returns the full access-point list: the primary LinkConfig.WAP
// plus any roaming WAPs, with per-WAP ranges defaulted.
func (c LinkConfig) aps() []WAP {
	out := make([]WAP, 0, 1+len(c.WAPs))
	out = append(out, WAP{Pos: c.WAP, GoodRange: c.GoodRange, FadeRange: c.FadeRange})
	for _, ap := range c.WAPs {
		if ap.GoodRange == 0 {
			ap.GoodRange = c.GoodRange
		}
		if ap.FadeRange == 0 {
			ap.FadeRange = c.FadeRange
		}
		out = append(out, ap)
	}
	return out
}

// apSignal is the distance-fade signal of one AP at distance dist.
func apSignal(ap WAP, dist float64) float64 {
	switch {
	case dist <= ap.GoodRange:
		return 1
	case dist >= ap.FadeRange:
		return 0
	default:
		return 1 - (dist-ap.GoodRange)/(ap.FadeRange-ap.GoodRange)
	}
}

// maybeHandoff evaluates every AP at position p and roams to the
// strongest one if it beats the serving AP by the hysteresis margin and
// the hold-down has expired. On a handoff the direction estimate resets
// (the next fix is relative to the new AP) and the signal briefly dips
// while the client re-associates.
func (l *Link) maybeHandoff(now float64, p geom.Vec2) {
	best, bestSig := l.serving, -1.0
	for i, ap := range l.aps {
		s := apSignal(ap, p.Dist(ap.Pos))
		// Strict > keeps ties on the lowest index, deterministically.
		if s > bestSig {
			best, bestSig = i, s
		}
	}
	if best == l.serving {
		return
	}
	servingSig := apSignal(l.aps[l.serving], p.Dist(l.aps[l.serving].Pos))
	if bestSig < servingSig+l.cfg.HandoffMargin {
		return
	}
	if len(l.handoffTimes) > 0 && now-l.lastHandoff < l.cfg.HandoffHoldSec {
		return
	}
	from := l.serving
	l.serving = best
	l.lastHandoff = now
	l.handoffTimes = append(l.handoffTimes, now)
	// The new association starts with no history: the direction estimate
	// is meaningless across APs, so it resets and re-converges.
	l.direction = 0
	l.haveDist = false
	if l.sink != nil {
		l.sink.Count(obs.MLinkHandoffs, "", 1)
		l.sink.Emit(obs.Event{Kind: obs.KindHandoff, T0: now, T1: now + l.cfg.HandoffDipSec,
			Detail: fmt.Sprintf("wap%d -> wap%d", from, best), Value: bestSig - servingSig})
	}
}

// dipActive reports whether the post-handoff re-association dip covers
// virtual time now.
func (l *Link) dipActive(now float64) bool {
	return len(l.handoffTimes) > 0 && now >= l.lastHandoff && now-l.lastHandoff < l.cfg.HandoffDipSec
}

// Serving returns the index of the access point currently serving the
// link (0 is the primary LinkConfig.WAP).
func (l *Link) Serving() int { return l.serving }

// Handoffs returns how many times the link roamed between APs.
func (l *Link) Handoffs() int { return len(l.handoffTimes) }

// HandoffTimes returns the virtual times of every handoff, in order.
// The returned slice is owned by the link; callers must not mutate it.
func (l *Link) HandoffTimes() []float64 { return l.handoffTimes }

// LastHandoff returns the time of the most recent handoff and whether
// one has happened.
func (l *Link) LastHandoff() (float64, bool) {
	if len(l.handoffTimes) == 0 {
		return 0, false
	}
	return l.lastHandoff, true
}
