// Package netsim models the wireless network between the LGV and the
// remote server: a WAP with distance-dependent signal strength, a
// latency/loss model driven by that signal, and the kernel-buffer
// blocking behaviour of a nonblocking UDP socket under weak signal
// (paper Fig. 7). It also provides the bandwidth meter and signal
// direction estimator that Algorithm 2 consumes.
//
// The essential phenomenon reproduced here is the one §VI argues from:
// under UDP "best-effort delivery", packets that do arrive can still show
// good latency while the link is already dropping most traffic, so
// received-packet tail latency is a misleading quality metric, whereas
// received-packet bandwidth and the robot's heading relative to the WAP
// predict quality correctly.
package netsim

import (
	"math"
	"math/rand"
	"sort"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/obs"
)

// Dir distinguishes uplink (robot → server) from downlink (server →
// robot) traffic so impairments can model one-way partitions.
type Dir int

const (
	// DirUp is robot-to-server traffic (scans, probes out).
	DirUp Dir = iota
	// DirDown is server-to-robot traffic (cmd_vel, probe echoes).
	DirDown
)

func (d Dir) String() string {
	if d == DirDown {
		return "down"
	}
	return "up"
}

// Verdict is an impairment's ruling on one packet. The zero value with
// SignalCap 1 passes the packet through untouched.
type Verdict struct {
	// SignalCap caps the effective signal in [0, 1]; 1 means no cap. A
	// cap of 0 models a blacked-out WAP: the packet joins the kernel
	// buffer (or overflows it) exactly as deep mobility fade would.
	SignalCap float64
	// Drop discards the packet outright (crashed server, blackholed
	// route) — it never touches the kernel buffer.
	Drop bool
	// Corrupt delivers the packet on time but flags it damaged; the
	// link treats it as lost since the receiver's decoder discards it.
	Corrupt bool
}

// Impairment is an external fault source consulted on every Send. The
// internal/faults package implements it; the hook lives here so netsim
// never imports faults.
type Impairment interface {
	Impair(now float64, dir Dir) Verdict
}

// LinkConfig parameterizes the wireless link.
type LinkConfig struct {
	WAP        geom.Vec2 // access point position, world frame
	GoodRange  float64   // full signal within this distance, m
	FadeRange  float64   // zero signal beyond this distance, m
	BaseLatSec float64   // one-way latency at full signal, s
	JitterSec  float64   // latency jitter standard deviation, s
	WANLatSec  float64   // extra fixed latency to a distant datacenter, s

	// Kernel buffer semantics (Fig. 7): under weak signal the driver
	// holds packets; the socket buffer overflows and further sends are
	// silently discarded.
	KernelBuf   int     // buffer capacity in packets
	BlockSignal float64 // signal below which the driver blocks/holds
	DrainRate   float64 // packets/s drained from a blocked buffer at signal 1

	UplinkBytesPerSec float64 // physical uplink rate for Eq. 1b energy

	// Periodic interference (e.g. a microwave oven or a competing
	// transmitter): every InterferencePeriod seconds the signal collapses
	// to InterferenceFloor for InterferenceDuty of the period. Zero
	// period disables it. Unlike mobility fade, interference is not
	// correlated with the robot's heading — which is exactly why
	// Algorithm 2 gates on *direction* as well as bandwidth: a burst
	// alone must not trigger a migration.
	InterferencePeriod float64
	InterferenceDuty   float64
	InterferenceFloor  float64

	// WAPs lists extra access points beyond the primary WAP above; when
	// non-empty the link roams to the strongest AP with hysteresis (see
	// roam.go). Per-WAP zero ranges inherit GoodRange/FadeRange.
	WAPs []WAP
	// HandoffMargin is the hysteresis margin: a candidate AP must beat
	// the serving AP's signal by this much before the link roams.
	HandoffMargin float64
	// HandoffHoldSec is the minimum time between consecutive handoffs.
	HandoffHoldSec float64
	// HandoffDipSec / HandoffDipFloor model the re-association gap: for
	// HandoffDipSec after a handoff the effective signal is capped at
	// HandoffDipFloor.
	HandoffDipSec   float64
	HandoffDipFloor float64

	// Trace, when set, replays recorded bandwidth/latency/loss samples
	// instead of the analytic distance-fade model (see trace.go).
	// Impairment verdicts and the kernel-buffer model still apply on top
	// of the replayed signal.
	Trace *LinkTrace
}

// DefaultEdgeLink returns a 5 GHz-band link to an edge gateway in the
// same building, tuned so the unstable area begins ~6 m from the WAP.
func DefaultEdgeLink(wap geom.Vec2) LinkConfig {
	return LinkConfig{
		WAP:               wap,
		GoodRange:         6.0,
		FadeRange:         12.0,
		BaseLatSec:        0.002,
		JitterSec:         0.0005,
		WANLatSec:         0,
		KernelBuf:         5,
		BlockSignal:       0.45,
		DrainRate:         40,
		UplinkBytesPerSec: 2.5e6,
	}
}

// DefaultCloudLink returns the same wireless hop plus a WAN leg to a
// remote datacenter.
func DefaultCloudLink(wap geom.Vec2) LinkConfig {
	c := DefaultEdgeLink(wap)
	c.WANLatSec = 0.010
	return c
}

// Stats is the link's full packet ledger: every packet offered to Send
// is either delivered or dropped, and every drop is attributed to
// exactly one cause. Invariant checkers (internal/simtest) assert
// Sent == Delivered + Dropped and Dropped == sum of the cause columns,
// and that the fault-attributed causes are zero when no fault schedule
// is attached.
type Stats struct {
	Sent      int // packets offered to Send
	Delivered int // packets that arrived at the peer

	// Drop causes, disjoint; they sum to the total drop count.
	DroppedImpair   int // blackholed by an Impairment verdict (fault window)
	DroppedOverflow int // kernel-buffer overflow under weak signal
	DroppedLoss     int // random signal-driven loss
	DroppedCorrupt  int // corrupted in a fault window, rejected by decoder
}

// Dropped returns the total packets lost to any cause.
func (s Stats) Dropped() int {
	return s.DroppedImpair + s.DroppedOverflow + s.DroppedLoss + s.DroppedCorrupt
}

// Link is the stateful wireless channel. It is not safe for concurrent
// use; the mission engine owns it and drives it from one goroutine.
type Link struct {
	cfg LinkConfig
	rng *rand.Rand

	robot     geom.Vec2
	prevDist  float64
	haveDist  bool
	direction float64 // smoothed +1 toward serving WAP / -1 away

	// Roaming state (roam.go). aps[0] is the primary LinkConfig.WAP;
	// serving indexes the AP currently associated.
	aps          []WAP
	serving      int
	associated   bool
	lastHandoff  float64
	handoffTimes []float64

	// Kernel buffer state.
	buffered  float64 // packets currently held
	lastDrain float64 // virtual time of last drain update

	sent, dropped int
	stats         Stats

	sink   obs.Sink   // nil when telemetry is off (the default)
	impair Impairment // nil when no fault schedule is attached
}

// NewLink creates a link with deterministic randomness.
func NewLink(cfg LinkConfig, rng *rand.Rand) *Link {
	if cfg.HandoffMargin == 0 {
		cfg.HandoffMargin = DefaultHandoffMargin
	}
	if cfg.HandoffHoldSec == 0 {
		cfg.HandoffHoldSec = DefaultHandoffHoldSec
	}
	if cfg.HandoffDipSec == 0 {
		cfg.HandoffDipSec = DefaultHandoffDipSec
	}
	if cfg.HandoffDipFloor == 0 {
		cfg.HandoffDipFloor = DefaultHandoffDipFloor
	}
	return &Link{cfg: cfg, rng: rng, aps: cfg.aps()}
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetSink attaches a telemetry sink; pass nil to detach. Every metric
// write is guarded so the nil (default) path adds one branch per Send.
func (l *Link) SetSink(s obs.Sink) { l.sink = s }

// SetImpairment attaches a fault source consulted on every Send; pass
// nil to detach. The nil (default) path costs one branch per packet.
func (l *Link) SetImpairment(imp Impairment) { l.impair = imp }

// SetRobotPos updates the robot position and refreshes the
// signal-direction estimate: positive when the robot is approaching the
// serving WAP, negative when receding. It never evaluates handoffs —
// roaming needs virtual time for hysteresis, so multi-WAP callers must
// use SetRobotPosAt.
func (l *Link) SetRobotPos(p geom.Vec2) {
	d := p.Dist(l.aps[l.serving].Pos)
	if l.haveDist {
		delta := l.prevDist - d // >0 means approaching
		const alpha = 0.3
		var instant float64
		switch {
		case delta > 1e-9:
			instant = 1
		case delta < -1e-9:
			instant = -1
		}
		l.direction = (1-alpha)*l.direction + alpha*instant
	}
	l.prevDist = d
	l.haveDist = true
	l.robot = p
}

// SetRobotPosAt is SetRobotPos with virtual time, enabling roaming: with
// multiple access points the link first re-evaluates which AP serves it
// (hysteresis + hold-down, roam.go), then updates the direction estimate
// against the serving AP. The very first call associates silently to the
// strongest AP without counting a handoff.
func (l *Link) SetRobotPosAt(now float64, p geom.Vec2) {
	if len(l.aps) > 1 {
		if !l.associated {
			best, bestSig := 0, -1.0
			for i, ap := range l.aps {
				if s := apSignal(ap, p.Dist(ap.Pos)); s > bestSig {
					best, bestSig = i, s
				}
			}
			l.serving = best
		} else {
			l.maybeHandoff(now, p)
		}
	}
	l.associated = true
	l.SetRobotPos(p)
}

// Signal returns the current signal strength in [0, 1], not counting
// interference bursts (use SignalAt for the burst-aware value).
func (l *Link) Signal() float64 {
	if !l.haveDist {
		return 1
	}
	return l.signalAt(l.prevDist)
}

// SignalAt returns the effective signal at virtual time now: the
// trace-replayed signal when a trace is attached, otherwise the
// distance-fade signal capped by any active interference burst; in both
// cases a post-handoff re-association dip caps the result.
func (l *Link) SignalAt(now float64) float64 {
	var s float64
	if l.cfg.Trace != nil {
		s = l.cfg.Trace.SignalAt(now, l.cfg.UplinkBytesPerSec)
	} else {
		s = l.Signal()
		if l.cfg.InterferencePeriod > 0 {
			phase := math.Mod(now, l.cfg.InterferencePeriod) / l.cfg.InterferencePeriod
			if phase < l.cfg.InterferenceDuty {
				floor := l.cfg.InterferenceFloor
				if floor < s {
					s = floor
				}
			}
		}
	}
	if l.dipActive(now) && s > l.cfg.HandoffDipFloor {
		s = l.cfg.HandoffDipFloor
	}
	return s
}

func (l *Link) signalAt(dist float64) float64 {
	return apSignal(l.aps[l.serving], dist)
}

// Direction returns the smoothed signal direction in [-1, 1]; positive
// means the LGV is moving toward the WAP.
func (l *Link) Direction() float64 { return l.direction }

// Send models one packet transmission at virtual time now. It returns the
// arrival time at the peer and whether the packet was lost. Size affects
// only serialization delay (negligible at these payloads) — loss and
// latency are signal-driven, as on a real WLAN. Send assumes uplink
// direction; use SendDir when an attached Impairment must distinguish
// directions (one-way partitions, server crashes on the return path).
func (l *Link) Send(now float64, size int) (arriveAt float64, dropped bool) {
	return l.SendDir(now, size, DirUp)
}

// SendDir is Send with an explicit traffic direction.
func (l *Link) SendDir(now float64, size int, dir Dir) (arriveAt float64, dropped bool) {
	arriveAt, dropped, _ = l.SendDirDetail(now, size, dir)
	return arriveAt, dropped
}

// SendDirDetail is SendDir exposing the kernel-buffer queueing delay
// separately from the air/WAN transport latency, so the tracing layer
// can record queue and transport as distinct critical-path spans:
// arriveAt - now = queueDelay + transport.
func (l *Link) SendDirDetail(now float64, size int, dir Dir) (arriveAt float64, dropped bool, queueDelay float64) {
	l.sent++
	l.stats.Sent++
	s := l.SignalAt(now)
	corrupt := false
	if l.impair != nil {
		v := l.impair.Impair(now, dir)
		if v.Drop {
			// Blackholed before the radio: the packet vanishes without
			// occupying the kernel buffer.
			l.dropped++
			l.stats.DroppedImpair++
			if l.sink != nil {
				l.sink.Count(obs.MLinkDropped, "", 1)
			}
			return 0, true, 0
		}
		if v.SignalCap < s {
			s = v.SignalCap
		}
		corrupt = v.Corrupt
	}
	if l.sink != nil {
		l.sink.Count(obs.MLinkSent, "", 1)
		l.sink.SetGauge(obs.MLinkSignal, "", s)
	}

	// Drain the kernel buffer for the time elapsed since the last send.
	if now > l.lastDrain {
		l.buffered -= (now - l.lastDrain) * l.cfg.DrainRate * math.Max(s, 0.05)
		if l.buffered < 0 {
			l.buffered = 0
		}
	}
	l.lastDrain = now

	if s < l.cfg.BlockSignal {
		// Driver holds packets: join the kernel buffer or overflow.
		if l.buffered >= float64(l.cfg.KernelBuf) {
			l.dropped++
			l.stats.DroppedOverflow++
			if l.sink != nil {
				l.sink.Count(obs.MLinkDropped, "", 1)
			}
			return 0, true, 0 // silent discard: sender never learns
		}
		l.buffered++
		drain := l.cfg.DrainRate * math.Max(s, 0.05)
		queueDelay = l.buffered / drain
	}

	// Random loss grows as signal fades even before blocking starts.
	// Under trace replay the recorded loss probability sets the floor:
	// impairment caps or a handoff dip can only make things worse.
	pLoss := math.Pow(1-s, 3)
	if l.cfg.Trace != nil {
		if rec := l.cfg.Trace.At(now).Loss; rec > pLoss {
			pLoss = rec
		}
	}
	if l.rng.Float64() < pLoss {
		l.dropped++
		l.stats.DroppedLoss++
		if l.sink != nil {
			l.sink.Count(obs.MLinkDropped, "", 1)
		}
		return 0, true, 0
	}

	if corrupt {
		// The frame crossed the air (it occupied buffer and spectrum)
		// but the receiver's decoder rejects it: an effective loss.
		l.dropped++
		l.stats.DroppedCorrupt++
		if l.sink != nil {
			l.sink.Count(obs.MLinkDropped, "", 1)
		}
		return 0, true, 0
	}

	var lat float64
	serBytesPerSec := l.cfg.UplinkBytesPerSec
	if l.cfg.Trace != nil {
		// Replay the recorded one-way latency and serialization rate; the
		// kernel-buffer queue delay still stacks on top.
		smp := l.cfg.Trace.At(now)
		lat = smp.LatencySec + l.cfg.WANLatSec + queueDelay
		if smp.BandwidthBps > 0 {
			serBytesPerSec = smp.BandwidthBps
		}
	} else {
		lat = l.cfg.BaseLatSec/math.Max(s, 0.15) + l.cfg.WANLatSec + queueDelay
	}
	if l.cfg.JitterSec > 0 {
		lat += math.Abs(l.rng.NormFloat64()) * l.cfg.JitterSec
	}
	lat += float64(size) / serBytesPerSec
	if l.sink != nil {
		l.sink.Observe(obs.MLinkLatencySeconds, "", lat)
	}
	l.stats.Delivered++
	return now + lat, false, queueDelay
}

// Counters returns total packets offered and dropped since creation.
func (l *Link) Counters() (sent, dropped int) { return l.sent, l.dropped }

// Stats returns the full packet ledger with per-cause drop attribution.
func (l *Link) Stats() Stats { return l.stats }

// Fabric adapts a Link to the middleware's Fabric interface: transfers
// between distinct hosts traverse the wireless link; same-host transfers
// are instant.
type Fabric struct {
	Link *Link
	// Robot, when set, identifies the vehicle host so cross-host
	// transfers carry a direction (uplink when the robot sends,
	// downlink otherwise). Empty means every transfer counts as uplink,
	// preserving the direction-blind behaviour.
	Robot mw.HostID
}

// Transfer implements mw.Fabric.
func (f Fabric) Transfer(from, to mw.HostID, size int, now float64) (float64, bool) {
	if from == to {
		return now, false
	}
	dir := DirUp
	if f.Robot != "" && from != f.Robot {
		dir = DirDown
	}
	return f.Link.SendDir(now, size, dir)
}

// BandwidthMeter computes the paper's "packet bandwidth" metric: the
// number of messages received in a sliding window (default 1 s), giving
// the received-packet rate the Profiler publishes to Algorithm 2.
type BandwidthMeter struct {
	Window float64
	times  []float64
}

// NewBandwidthMeter returns a meter with a 1-second window.
func NewBandwidthMeter() *BandwidthMeter { return &BandwidthMeter{Window: 1.0} }

// Observe records a message reception at virtual time now.
func (m *BandwidthMeter) Observe(now float64) {
	m.times = append(m.times, now)
	m.trim(now)
}

// Rate returns messages per second over the window ending at now.
func (m *BandwidthMeter) Rate(now float64) float64 {
	m.trim(now)
	if m.Window <= 0 {
		return 0
	}
	return float64(len(m.times)) / m.Window
}

func (m *BandwidthMeter) trim(now float64) {
	cut := now - m.Window
	i := 0
	for i < len(m.times) && m.times[i] <= cut {
		i++
	}
	if i > 0 {
		m.times = append(m.times[:0], m.times[i:]...)
	}
}

// LatencyMeter tracks received-packet one-way latencies and reports the
// tail statistics prior work used as quality metrics, so experiments can
// show why they mislead under UDP loss (§VI).
type LatencyMeter struct {
	samples []float64
}

// Observe records one received packet's latency.
func (m *LatencyMeter) Observe(latency float64) { m.samples = append(m.samples, latency) }

// Count returns the number of samples observed.
func (m *LatencyMeter) Count() int { return len(m.samples) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of observed latencies, or 0
// with ok=false when no samples exist. The sample slice is not mutated.
func (m *LatencyMeter) Quantile(q float64) (float64, bool) {
	n := len(m.samples)
	if n == 0 {
		return 0, false
	}
	sorted := make([]float64, n)
	copy(sorted, m.samples)
	sort.Float64s(sorted)
	idx := int(q * float64(n-1))
	return sorted[idx], true
}

// Reset clears the samples.
func (m *LatencyMeter) Reset() { m.samples = m.samples[:0] }
