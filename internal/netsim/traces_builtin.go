package netsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Builtin traces: real-world-shaped link recordings generated from
// closed-form envelopes (no randomness — the committed files under
// internal/simtest/testdata/traces/ must stay byte-identical to what
// these constructors produce; a test asserts exactly that). Each is
// 120 s at 2 s resolution against the default 2.5 MB/s uplink.

// BuiltinTraceNames lists the available builtin traces, sorted.
func BuiltinTraceNames() []string {
	names := make([]string, 0, len(builtinTraces))
	for name := range builtinTraces {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuiltinTrace returns a fresh copy of the named builtin trace.
func BuiltinTrace(name string) (*LinkTrace, error) {
	mk, ok := builtinTraces[name]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown builtin trace %q (have %s)",
			name, strings.Join(BuiltinTraceNames(), ", "))
	}
	return mk(), nil
}

var builtinTraces = map[string]func() *LinkTrace{
	"office-roam":     officeRoamTrace,
	"garage-deepfade": garageDeepFadeTrace,
	"cafe-congestion": cafeCongestionTrace,
}

const (
	traceNominalBps = 2.5e6 // matches DefaultEdgeLink.UplinkBytesPerSec
	traceDur        = 120.0
	traceStep       = 2.0
)

// synthTrace samples f(t) -> (bandwidth, latency, loss) on the fixed
// grid, rounding each column so the encoded files stay stable and small.
func synthTrace(name string, f func(t float64) (bw, lat, loss float64)) *LinkTrace {
	tr := &LinkTrace{Name: name}
	for t := 0.0; t <= traceDur; t += traceStep {
		bw, lat, loss := f(t)
		tr.Samples = append(tr.Samples, TraceSample{
			T:            t,
			BandwidthBps: math.Max(1000, math.Round(bw/1000)*1000),
			LatencySec:   math.Max(0, math.Round(lat*1e4)/1e4),
			Loss:         math.Min(1, math.Max(0, math.Round(loss*100)/100)),
		})
	}
	return tr
}

// officeRoamTrace: a walk across an office floor between two APs —
// strong near either AP, a pronounced trough mid-walk where both cells
// are weak, repeated on the way back.
func officeRoamTrace() *LinkTrace {
	return synthTrace("office-roam", func(t float64) (float64, float64, float64) {
		// Two traversal troughs centered at 35 s and 90 s.
		dip := gauss(t, 35, 10) + gauss(t, 90, 10)
		bw := traceNominalBps * (1 - 0.85*dip)
		lat := 0.003 + 0.030*dip
		loss := 0.25 * dip
		return bw, lat, loss
	})
}

// garageDeepFadeTrace: an underground garage — two long deep fades where
// the link nearly blacks out, fast recovery between them.
func garageDeepFadeTrace() *LinkTrace {
	return synthTrace("garage-deepfade", func(t float64) (float64, float64, float64) {
		fade := plateau(t, 20, 44) + plateau(t, 70, 100)
		bw := traceNominalBps * (1 - 0.97*fade)
		lat := 0.004 + 0.080*fade
		loss := 0.6 * fade
		return bw, lat, loss
	})
}

// cafeCongestionTrace: a busy café network — healthy baseline with
// short sharp congestion bursts every ~15 s that spike latency more
// than they cut bandwidth.
func cafeCongestionTrace() *LinkTrace {
	return synthTrace("cafe-congestion", func(t float64) (float64, float64, float64) {
		// A 4 s burst at the start of every 15 s period.
		phase := math.Mod(t, 15)
		burst := 0.0
		if phase < 4 {
			burst = 1 - phase/4
		}
		bw := traceNominalBps * (0.9 - 0.5*burst)
		lat := 0.005 + 0.045*burst
		loss := 0.10 * burst
		return bw, lat, loss
	})
}

// gauss is a bell around center with the given width, peaking at 1.
func gauss(t, center, width float64) float64 {
	d := (t - center) / width
	return math.Exp(-d * d * 2)
}

// plateau ramps up over 4 s into [t0, t1], holds 1, and ramps out.
func plateau(t, t0, t1 float64) float64 {
	const ramp = 4.0
	switch {
	case t < t0-ramp || t > t1+ramp:
		return 0
	case t < t0:
		return (t - (t0 - ramp)) / ramp
	case t > t1:
		return ((t1 + ramp) - t) / ramp
	default:
		return 1
	}
}
