package netsim

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Link traces replay recorded network conditions instead of the
// analytic distance-fade model.
//
// File format (version 1), one trace per file:
//
//	lgvtrace v1
//	# comment lines start with '#'
//	# t_sec  bandwidth_Bps  latency_sec  loss_prob
//	0.0   2500000  0.002  0.00
//	10.0  1200000  0.008  0.02
//	...
//
// Rows are whitespace-separated and must be sorted by non-decreasing
// time. Replay holds each sample until the next row's time (step-hold);
// past the last row the last sample holds forever, so a trace shorter
// than the mission degrades gracefully instead of erroring.

// TraceFormatVersion is the trace file format this package reads and
// writes. Bump only with a migration path for committed traces.
const TraceFormatVersion = 1

// traceMagic is the required first token of a trace file.
const traceMagic = "lgvtrace"

// TraceSample is one row of a link trace: the recorded uplink
// conditions from time T until the next sample.
type TraceSample struct {
	T            float64 // virtual time the sample takes effect, s
	BandwidthBps float64 // achievable uplink rate, bytes/s
	LatencySec   float64 // one-way latency at this moment, s
	Loss         float64 // packet loss probability in [0, 1]
}

// LinkTrace is a parsed, validated trace ready for replay.
type LinkTrace struct {
	Name    string
	Samples []TraceSample
}

// Validate checks the structural rules every trace must satisfy.
func (t *LinkTrace) Validate() error {
	if len(t.Samples) == 0 {
		return fmt.Errorf("netsim: trace %q has no samples", t.Name)
	}
	prev := -math.MaxFloat64
	for i, s := range t.Samples {
		switch {
		case s.T < 0:
			return fmt.Errorf("netsim: trace %q sample %d: negative time %g", t.Name, i, s.T)
		case s.T < prev:
			return fmt.Errorf("netsim: trace %q sample %d: time %g before previous %g", t.Name, i, s.T, prev)
		case s.BandwidthBps <= 0:
			return fmt.Errorf("netsim: trace %q sample %d: bandwidth %g must be positive", t.Name, i, s.BandwidthBps)
		case s.LatencySec < 0:
			return fmt.Errorf("netsim: trace %q sample %d: negative latency %g", t.Name, i, s.LatencySec)
		case s.Loss < 0 || s.Loss > 1:
			return fmt.Errorf("netsim: trace %q sample %d: loss %g outside [0, 1]", t.Name, i, s.Loss)
		}
		prev = s.T
	}
	return nil
}

// At returns the sample in effect at virtual time now: the last sample
// with T <= now, or the first sample for now before the trace starts.
func (t *LinkTrace) At(now float64) TraceSample {
	// sort.Search finds the first sample with T > now; the one before it
	// is in effect. Traces are short (tens to hundreds of rows), but
	// this runs per packet, so binary search keeps it cheap.
	i := sort.Search(len(t.Samples), func(i int) bool { return t.Samples[i].T > now })
	if i == 0 {
		return t.Samples[0]
	}
	return t.Samples[i-1]
}

// SignalAt maps the replayed bandwidth to the [0, 1] signal scale the
// rest of the link model consumes (kernel-buffer blocking, loss floor,
// Algorithm 2's inputs): the ratio of recorded bandwidth to the link's
// nominal uplink rate, clamped.
func (t *LinkTrace) SignalAt(now, nominalBps float64) float64 {
	if nominalBps <= 0 {
		return 1
	}
	s := t.At(now).BandwidthBps / nominalBps
	if s > 1 {
		return 1
	}
	if s < 0 {
		return 0
	}
	return s
}

// Duration returns the time of the final sample.
func (t *LinkTrace) Duration() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	return t.Samples[len(t.Samples)-1].T
}

// ParseLinkTrace reads and validates a trace from r. The name is used
// in error messages and stored on the trace.
func ParseLinkTrace(name string, r io.Reader) (*LinkTrace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("netsim: trace %q: empty file", name)
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != traceMagic {
		return nil, fmt.Errorf("netsim: trace %q: bad header %q (want %q v<version>)", name, sc.Text(), traceMagic)
	}
	version, err := strconv.Atoi(strings.TrimPrefix(header[1], "v"))
	if err != nil || version < 1 {
		return nil, fmt.Errorf("netsim: trace %q: bad version token %q", name, header[1])
	}
	if version > TraceFormatVersion {
		return nil, fmt.Errorf("netsim: trace %q: format v%d newer than supported v%d", name, version, TraceFormatVersion)
	}
	t := &LinkTrace{Name: name}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("netsim: trace %q line %d: want 4 fields (t bandwidth latency loss), got %d", name, lineNo, len(fields))
		}
		var vals [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("netsim: trace %q line %d: bad number %q", name, lineNo, f)
			}
			vals[i] = v
		}
		t.Samples = append(t.Samples, TraceSample{T: vals[0], BandwidthBps: vals[1], LatencySec: vals[2], Loss: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netsim: trace %q: %w", name, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Encode writes the trace in the canonical v1 text form. Parsing the
// output yields an identical trace (floats render via %g, which
// round-trips exactly through ParseFloat).
func (t *LinkTrace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s v%d\n", traceMagic, TraceFormatVersion)
	fmt.Fprintf(bw, "# %s\n", t.Name)
	fmt.Fprintf(bw, "# t_sec bandwidth_Bps latency_sec loss_prob\n")
	for _, s := range t.Samples {
		fmt.Fprintf(bw, "%g %g %g %g\n", s.T, s.BandwidthBps, s.LatencySec, s.Loss)
	}
	return bw.Flush()
}
