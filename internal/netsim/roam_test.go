package netsim

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/obs"
)

// roamLink builds a two-AP link: the primary at origin and a second AP
// at (20, 0), both with the default edge ranges (good 6, fade 12).
func roamLink(seed int64) *Link {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.WAPs = []WAP{{Pos: geom.V(20, 0)}}
	return NewLink(cfg, rand.New(rand.NewSource(seed)))
}

func TestRoamFirstAssociationIsSilent(t *testing.T) {
	l := roamLink(1)
	// Start right next to the second AP: the link must associate to it
	// immediately without counting a handoff.
	l.SetRobotPosAt(0, geom.V(19, 0))
	if l.Serving() != 1 {
		t.Fatalf("serving = %d, want 1 (closest AP)", l.Serving())
	}
	if l.Handoffs() != 0 {
		t.Fatalf("first association counted as a handoff: %d", l.Handoffs())
	}
	if l.Signal() != 1 {
		t.Fatalf("signal = %v next to the serving AP, want 1", l.Signal())
	}
}

func TestRoamHandoffOnTraversal(t *testing.T) {
	l := roamLink(1)
	// Drive from the primary AP toward the second, 0.5 m per 0.25 s tick.
	now := 0.0
	for x := 0.0; x <= 20; x += 0.5 {
		l.SetRobotPosAt(now, geom.V(x, 0))
		now += 0.25
	}
	if l.Handoffs() != 1 {
		t.Fatalf("handoffs = %d over one traversal, want exactly 1", l.Handoffs())
	}
	if l.Serving() != 1 {
		t.Fatalf("serving = %d after reaching the far AP, want 1", l.Serving())
	}
	// The handoff must happen past the midpoint: the hysteresis margin
	// requires the new AP to be strictly stronger.
	ht := l.HandoffTimes()[0]
	// At time ht the robot was at x = ht/0.25 * 0.5... recover from the tick
	// mapping: x = 2 * ht.
	if x := 2 * ht; x <= 10 {
		t.Fatalf("handoff at x=%.1f m, want past the 10 m midpoint (hysteresis)", x)
	}
}

func TestRoamEquidistantNoPingPong(t *testing.T) {
	l := roamLink(1)
	// Park exactly between the APs (both signals equal): the margin must
	// keep the link on its first association forever.
	for i := 0; i < 100; i++ {
		l.SetRobotPosAt(float64(i)*0.25, geom.V(10, 0))
	}
	if l.Handoffs() != 0 {
		t.Fatalf("handoffs = %d while parked equidistant, want 0", l.Handoffs())
	}
	// Wobble ±0.2 m around the midpoint: still inside the margin.
	for i := 0; i < 100; i++ {
		x := 10 + 0.2*math.Sin(float64(i))
		l.SetRobotPosAt(25+float64(i)*0.25, geom.V(x, 0))
	}
	if l.Handoffs() != 0 {
		t.Fatalf("handoffs = %d while wobbling at the midpoint, want 0", l.Handoffs())
	}
}

func TestRoamDirectionResetAfterHandoff(t *testing.T) {
	l := roamLink(1)
	now := 0.0
	var preHandoff float64
	for x := 0.0; x <= 20; x += 0.5 {
		if l.Handoffs() == 0 {
			preHandoff = l.Direction()
		}
		l.SetRobotPosAt(now, geom.V(x, 0))
		if l.Handoffs() == 1 {
			break
		}
		now += 0.25
	}
	if l.Handoffs() != 1 {
		t.Fatal("no handoff happened")
	}
	// Before the handoff the robot was receding from the serving (first)
	// AP; immediately after, the estimate restarts from zero.
	if preHandoff >= 0 {
		t.Fatalf("direction before handoff = %v, want negative (receding)", preHandoff)
	}
	if l.Direction() != 0 {
		t.Fatalf("direction immediately after handoff = %v, want 0 (reset)", l.Direction())
	}
	// Continuing toward the new AP must converge the sign positive.
	for x := 2 * now; x <= 20; x += 0.5 {
		now += 0.25
		l.SetRobotPosAt(now, geom.V(x, 0))
	}
	if l.Direction() <= 0 {
		t.Fatalf("direction after approaching the new AP = %v, want positive", l.Direction())
	}
}

func TestRoamHandoffDip(t *testing.T) {
	l := roamLink(1)
	now := 0.0
	for x := 0.0; x <= 20 && l.Handoffs() == 0; x += 0.5 {
		l.SetRobotPosAt(now, geom.V(x, 0))
		now += 0.25
	}
	ht := l.HandoffTimes()[0]
	if s := l.SignalAt(ht + 0.1); s > l.cfg.HandoffDipFloor {
		t.Fatalf("signal %.2f during the dip, want capped at %.2f", s, l.cfg.HandoffDipFloor)
	}
	// Park next to the new AP so the fade signal is 1, then check the dip
	// has lifted.
	l.SetRobotPosAt(ht+l.cfg.HandoffDipSec+1, geom.V(20, 0))
	if s := l.SignalAt(ht + l.cfg.HandoffDipSec + 1); s != 1 {
		t.Fatalf("signal %.2f after the dip next to the AP, want 1", s)
	}
}

func TestRoamHoldDown(t *testing.T) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.WAPs = []WAP{{Pos: geom.V(20, 0)}}
	cfg.HandoffHoldSec = 10
	l := NewLink(cfg, rand.New(rand.NewSource(1)))
	// Sprint back and forth across the floor fast enough that without
	// the hold-down every crossing would hand off.
	now := 0.0
	pos := func(tick int) float64 {
		// Triangle wave 0..20..0 with period 8 s at 4 ticks/s.
		phase := math.Mod(float64(tick)*0.25, 8) / 8
		if phase < 0.5 {
			return 40 * phase
		}
		return 40 * (1 - phase)
	}
	for i := 0; i < 200; i++ {
		l.SetRobotPosAt(now, geom.V(pos(i), 0))
		now += 0.25
	}
	for i := 1; i < len(l.HandoffTimes()); i++ {
		gap := l.HandoffTimes()[i] - l.HandoffTimes()[i-1]
		if gap < cfg.HandoffHoldSec {
			t.Fatalf("handoffs %.2f s apart, hold-down is %.0f s", gap, cfg.HandoffHoldSec)
		}
	}
	if l.Handoffs() == 0 {
		t.Fatal("expected at least one handoff across repeated traversals")
	}
}

func TestRoamHandoffEmitsTelemetry(t *testing.T) {
	l := roamLink(1)
	tel := obs.NewTelemetry(64)
	l.SetSink(tel)
	now := 0.0
	for x := 0.0; x <= 20; x += 0.5 {
		l.SetRobotPosAt(now, geom.V(x, 0))
		now += 0.25
	}
	if got := tel.Reg.Counter(obs.MLinkHandoffs, "").Value(); got != 1 {
		t.Fatalf("handoff counter = %v, want 1", got)
	}
	found := false
	for _, e := range tel.Events() {
		if e.Kind == obs.KindHandoff {
			found = true
			if !strings.Contains(e.Detail, "wap0 -> wap1") {
				t.Fatalf("handoff detail = %q", e.Detail)
			}
		}
	}
	if !found {
		t.Fatal("no handoff event on the timeline")
	}
}

func TestRoamPerWAPRangesInherit(t *testing.T) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.WAPs = []WAP{
		{Pos: geom.V(20, 0)},                              // inherits 6/12
		{Pos: geom.V(40, 0), GoodRange: 2, FadeRange: 30}, // long-fade backbone
	}
	aps := cfg.aps()
	if aps[1].GoodRange != 6 || aps[1].FadeRange != 12 {
		t.Fatalf("inherited ranges = %v/%v, want 6/12", aps[1].GoodRange, aps[1].FadeRange)
	}
	if aps[2].GoodRange != 2 || aps[2].FadeRange != 30 {
		t.Fatalf("explicit ranges = %v/%v, want 2/30", aps[2].GoodRange, aps[2].FadeRange)
	}
}

func TestSingleWAPPathUnchangedByTime(t *testing.T) {
	// SetRobotPosAt on a single-AP link must behave exactly like the
	// legacy SetRobotPos: same direction estimate, same signal, no
	// handoffs — the engine switched to the timed call unconditionally.
	a := link(7)
	b := link(7)
	now := 0.0
	for x := 0.0; x < 15; x += 0.3 {
		a.SetRobotPos(geom.V(x, x/2))
		b.SetRobotPosAt(now, geom.V(x, x/2))
		now += 0.25
	}
	if a.Direction() != b.Direction() || a.Signal() != b.Signal() {
		t.Fatalf("timed single-AP update diverged: dir %v vs %v, sig %v vs %v",
			a.Direction(), b.Direction(), a.Signal(), b.Signal())
	}
	if b.Handoffs() != 0 {
		t.Fatalf("single-AP link recorded %d handoffs", b.Handoffs())
	}
}

// --- satellite: direction-estimator edge cases ---

func TestDirectionAtInterferenceBoundaryTicks(t *testing.T) {
	// Interference caps SignalAt but must never perturb the direction
	// estimate, including at exact period boundaries.
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.InterferencePeriod = 8
	cfg.InterferenceDuty = 0.25
	cfg.InterferenceFloor = 0.05
	l := NewLink(cfg, rand.New(rand.NewSource(1)))
	clean := link(1)
	for i := 0; i < 64; i++ {
		now := float64(i) // hits t=8,16,... exactly
		p := geom.V(5+0.1*float64(i), 0)
		l.SetRobotPosAt(now, p)
		clean.SetRobotPos(p)
		if l.Direction() != clean.Direction() {
			t.Fatalf("tick %d: direction %v diverged from clean link %v", i, l.Direction(), clean.Direction())
		}
	}
	// At a boundary tick the burst is active (phase 0 < duty).
	if s := l.SignalAt(16); s != 0.05 {
		t.Fatalf("signal at boundary tick = %v, want interference floor 0.05", s)
	}
	// Just before the next period starts the burst is over.
	if s, fade := l.SignalAt(7.999), l.Signal(); s != fade {
		t.Fatalf("signal outside burst = %v, want fade value %v", s, fade)
	}
}

func TestDirectionEquidistantBetweenWAPs(t *testing.T) {
	// Moving along the perpendicular bisector of the two APs keeps the
	// serving distance changing (away from both): direction goes
	// negative, and no handoff fires since both signals stay equal.
	l := roamLink(1)
	now := 0.0
	for y := 0.0; y < 8; y += 0.4 {
		l.SetRobotPosAt(now, geom.V(10, y))
		now += 0.25
	}
	if l.Handoffs() != 0 {
		t.Fatalf("handoffs = %d on the bisector, want 0", l.Handoffs())
	}
	if l.Direction() >= 0 {
		t.Fatalf("direction = %v receding along the bisector, want negative", l.Direction())
	}
}

// --- trace replay ---

func TestTraceParseRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty file"},
		{"bad-magic", "nottrace v1\n0 1 0 0\n", "bad header"},
		{"bad-version", "lgvtrace vX\n0 1 0 0\n", "bad version"},
		{"future-version", "lgvtrace v2\n0 1 0 0\n", "newer than supported"},
		{"short-row", "lgvtrace v1\n0 1 0\n", "want 4 fields"},
		{"bad-number", "lgvtrace v1\n0 fast 0 0\n", "bad number"},
		{"no-samples", "lgvtrace v1\n# only comments\n", "no samples"},
		{"negative-time", "lgvtrace v1\n-1 1 0 0\n", "negative time"},
		{"unsorted", "lgvtrace v1\n5 1 0 0\n2 1 0 0\n", "before previous"},
		{"zero-bandwidth", "lgvtrace v1\n0 0 0 0\n", "must be positive"},
		{"negative-latency", "lgvtrace v1\n0 1 -0.1 0\n", "negative latency"},
		{"loss-range", "lgvtrace v1\n0 1 0 1.5\n", "outside [0, 1]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseLinkTrace(c.name, strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestTraceEncodeRoundTrip(t *testing.T) {
	for _, name := range BuiltinTraceNames() {
		tr, err := BuiltinTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseLinkTrace(name, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(back.Samples) != len(tr.Samples) {
			t.Fatalf("%s: %d samples after round trip, want %d", name, len(back.Samples), len(tr.Samples))
		}
		for i := range tr.Samples {
			if tr.Samples[i] != back.Samples[i] {
				t.Fatalf("%s sample %d: %+v != %+v", name, i, tr.Samples[i], back.Samples[i])
			}
		}
	}
}

func TestBuiltinTraceFilesMatch(t *testing.T) {
	// The committed .lgvtrace files must be byte-identical to what the
	// builtin constructors encode — they are the same trace, stored.
	for _, name := range BuiltinTraceNames() {
		tr, err := BuiltinTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(filepath.Join("testdata", "traces", name+".lgvtrace"))
		if err != nil {
			t.Fatalf("%s: %v (regenerate with Encode)", name, err)
		}
		if !bytes.Equal(disk, buf.Bytes()) {
			t.Fatalf("%s: committed file differs from builtin constructor output", name)
		}
	}
}

func TestTraceStepHold(t *testing.T) {
	tr := &LinkTrace{Name: "t", Samples: []TraceSample{
		{T: 0, BandwidthBps: 1e6, LatencySec: 0.001, Loss: 0},
		{T: 10, BandwidthBps: 5e5, LatencySec: 0.01, Loss: 0.2},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.At(-5); got.BandwidthBps != 1e6 {
		t.Fatalf("before start: %+v", got)
	}
	if got := tr.At(9.999); got.BandwidthBps != 1e6 {
		t.Fatalf("just before step: %+v", got)
	}
	if got := tr.At(10); got.BandwidthBps != 5e5 {
		t.Fatalf("at step: %+v", got)
	}
	if got := tr.At(1e6); got.Loss != 0.2 {
		t.Fatalf("past the end must hold the last sample: %+v", got)
	}
}

func TestTraceDrivenSend(t *testing.T) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.JitterSec = 0
	cfg.Trace = &LinkTrace{Name: "t", Samples: []TraceSample{
		{T: 0, BandwidthBps: 2.5e6, LatencySec: 0.004, Loss: 0},
		{T: 50, BandwidthBps: 2.5e4, LatencySec: 0.09, Loss: 1},
	}}
	l := NewLink(cfg, rand.New(rand.NewSource(1)))
	// Healthy region: latency is the recorded value + serialization.
	arrive, dropped, _ := l.SendDirDetail(1, 1000, DirUp)
	if dropped {
		t.Fatal("healthy trace region dropped a packet")
	}
	wantLat := 0.004 + 1000/2.5e6
	if got := arrive - 1; math.Abs(got-wantLat) > 1e-12 {
		t.Fatalf("latency = %v, want %v", got, wantLat)
	}
	// Loss=1 region: every packet dies even though the robot never moved.
	_, dropped, _ = l.SendDirDetail(60, 1000, DirUp)
	if !dropped {
		t.Fatal("loss=1 trace region delivered a packet")
	}
	st := l.Stats()
	if st.Sent != 2 || st.Delivered != 1 || st.DroppedLoss != 1 {
		t.Fatalf("ledger %+v", st)
	}
}

func TestTraceSignalDrivesBlocking(t *testing.T) {
	// A trace bandwidth far below nominal maps to a weak signal, which
	// must engage the kernel-buffer blocking path exactly like deep fade.
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.Trace = &LinkTrace{Name: "t", Samples: []TraceSample{
		{T: 0, BandwidthBps: cfg.UplinkBytesPerSec * 0.2, LatencySec: 0.004, Loss: 0},
	}}
	l := NewLink(cfg, rand.New(rand.NewSource(1)))
	if s := l.SignalAt(0); math.Abs(s-0.2) > 1e-12 {
		t.Fatalf("trace signal = %v, want 0.2", s)
	}
	overflowed := false
	for i := 0; i < 20; i++ {
		_, _, q := l.SendDirDetail(0.001*float64(i), 100, DirUp)
		if q > 0 {
			overflowed = true
		}
	}
	if !overflowed {
		t.Fatal("weak trace signal never queued in the kernel buffer")
	}
	if l.Stats().DroppedOverflow == 0 {
		t.Fatal("rapid sends under weak trace signal never overflowed the buffer")
	}
}

func TestBuiltinTraceUnknown(t *testing.T) {
	if _, err := BuiltinTrace("nope"); err == nil || !strings.Contains(err.Error(), "unknown builtin trace") {
		t.Fatalf("err = %v", err)
	}
}
