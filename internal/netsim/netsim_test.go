package netsim

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
)

func link(seed int64) *Link {
	return NewLink(DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(seed)))
}

func TestSignalProfile(t *testing.T) {
	l := link(1)
	cases := []struct {
		dist float64
		want float64
	}{
		{0, 1}, {3, 1}, {6, 1}, {9, 0.5}, {12, 0}, {20, 0},
	}
	for _, c := range cases {
		l.SetRobotPos(geom.V(c.dist, 0))
		if got := l.Signal(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("signal at %v m = %v, want %v", c.dist, got, c.want)
		}
	}
}

func TestSignalBeforeFirstPosition(t *testing.T) {
	l := link(1)
	if l.Signal() != 1 {
		t.Error("unknown position should default to full signal")
	}
}

func TestDirectionEstimate(t *testing.T) {
	l := link(1)
	// Move away from the WAP.
	for i := 0; i < 20; i++ {
		l.SetRobotPos(geom.V(float64(i)*0.2, 0))
	}
	if l.Direction() >= 0 {
		t.Errorf("receding should give negative direction, got %v", l.Direction())
	}
	// Turn around and come back.
	for i := 20; i > 0; i-- {
		l.SetRobotPos(geom.V(float64(i)*0.2, 0))
	}
	if l.Direction() <= 0 {
		t.Errorf("approaching should give positive direction, got %v", l.Direction())
	}
}

func TestStrongSignalDelivery(t *testing.T) {
	l := link(2)
	l.SetRobotPos(geom.V(1, 0))
	lost := 0
	var worst float64
	for i := 0; i < 1000; i++ {
		now := float64(i) * 0.2
		arrive, dropped := l.Send(now, 100)
		if dropped {
			lost++
			continue
		}
		if lat := arrive - now; lat > worst {
			worst = lat
		}
	}
	if lost > 0 {
		t.Errorf("strong signal lost %d packets", lost)
	}
	if worst > 0.02 {
		t.Errorf("strong-signal latency too high: %v", worst)
	}
}

func TestWeakSignalLossDominates(t *testing.T) {
	l := link(3)
	l.SetRobotPos(geom.V(11.5, 0)) // signal ≈ 0.08
	lost := 0
	const n = 500
	for i := 0; i < n; i++ {
		if _, dropped := l.Send(float64(i)*0.2, 100); dropped {
			lost++
		}
	}
	if float64(lost)/n < 0.5 {
		t.Errorf("weak signal lost only %d/%d", lost, n)
	}
}

func TestFigure7KernelBufferSemantics(t *testing.T) {
	// Burst-send under weak signal: the first KernelBuf packets are held
	// (delivered late), the rest are silently discarded — exactly Fig. 7.
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.JitterSec = 0 // deterministic
	l := NewLink(cfg, rand.New(rand.NewSource(4)))
	l.SetRobotPos(geom.V(9.9, 0)) // signal ≈ 0.35 < BlockSignal

	delivered, held, discarded := 0, 0, 0
	now := 0.0
	for i := 0; i < 20; i++ {
		arrive, dropped := l.Send(now, 100) // same instant burst: no draining between sends
		if dropped {
			discarded++
			continue
		}
		delivered++
		if arrive-now > 0.05 {
			held++ // queue delay visible
		}
	}
	if discarded == 0 {
		t.Error("burst should overflow the kernel buffer")
	}
	if delivered == 0 || held == 0 {
		t.Errorf("some packets should be held then delivered: delivered=%d held=%d", delivered, held)
	}
	if delivered > cfg.KernelBuf {
		t.Errorf("delivered %d > kernel buffer %d", delivered, cfg.KernelBuf)
	}
}

func TestKernelBufferDrains(t *testing.T) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.JitterSec = 0
	l := NewLink(cfg, rand.New(rand.NewSource(5)))
	l.SetRobotPos(geom.V(9.9, 0))
	// Fill the buffer.
	for i := 0; i < 10; i++ {
		l.Send(0, 100)
	}
	// After enough virtual time, sends are accepted again.
	accepted := false
	for i := 0; i < 20; i++ {
		if _, dropped := l.Send(5.0+float64(i), 100); !dropped {
			accepted = true
			break
		}
	}
	if !accepted {
		t.Error("buffer never drained")
	}
}

func TestLatencyMisleadsUnderUDPLoss(t *testing.T) {
	// The §VI argument: at moderate fade, received packets keep good
	// latency while a meaningful share is already lost, so tail latency
	// under-reports the degradation that bandwidth exposes.
	cfg := DefaultEdgeLink(geom.V(0, 0))
	l := NewLink(cfg, rand.New(rand.NewSource(6)))
	l.SetRobotPos(geom.V(8.4, 0)) // signal = 0.6: pre-blocking fade

	lm := &LatencyMeter{}
	lost := 0
	const n = 2000
	for i := 0; i < n; i++ {
		now := float64(i) * 0.2
		arrive, dropped := l.Send(now, 100)
		if dropped {
			lost++
			continue
		}
		lm.Observe(arrive - now)
	}
	lossRate := float64(lost) / n
	if lossRate < 0.03 {
		t.Fatalf("expected noticeable loss at signal 0.6, got %.3f", lossRate)
	}
	p99, ok := lm.Quantile(0.99)
	if !ok {
		t.Fatal("no latency samples")
	}
	// Tail latency of *received* packets stays low (< 3× the strong-signal
	// baseline ≈ 2 ms/0.6 ≈ 3.3 ms), hiding the loss.
	if p99 > 0.015 {
		t.Errorf("p99 = %v; the model should keep received latency low at this fade", p99)
	}
}

func TestBandwidthMeterWindow(t *testing.T) {
	m := NewBandwidthMeter()
	for i := 0; i < 5; i++ {
		m.Observe(float64(i) * 0.2) // 5 Hz
	}
	if r := m.Rate(0.9); r != 5 {
		t.Errorf("rate = %v, want 5", r)
	}
	// One second later with no traffic, rate collapses.
	if r := m.Rate(2.0); r != 0 {
		t.Errorf("stale rate = %v, want 0", r)
	}
}

func TestBandwidthMeterSliding(t *testing.T) {
	m := NewBandwidthMeter()
	for i := 0; i < 10; i++ {
		m.Observe(float64(i) * 0.1)
	}
	// Window (0.1, 1.1]: messages at 0.2..0.9 -> exactly those > 0.1.
	r := m.Rate(1.1)
	if r < 7 || r > 9 {
		t.Errorf("sliding rate = %v", r)
	}
}

func TestLatencyMeterQuantiles(t *testing.T) {
	m := &LatencyMeter{}
	if _, ok := m.Quantile(0.5); ok {
		t.Error("empty meter should report !ok")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		m.Observe(v)
	}
	if q, _ := m.Quantile(0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q, _ := m.Quantile(1); q != 5 {
		t.Errorf("max = %v", q)
	}
	if q, _ := m.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if m.Count() != 5 {
		t.Errorf("count = %d", m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestFabricLocalBypassesLink(t *testing.T) {
	l := link(7)
	l.SetRobotPos(geom.V(20, 0)) // dead zone
	f := Fabric{Link: l}
	arrive, dropped := f.Transfer("lgv", "lgv", 100, 3.5)
	if dropped || arrive != 3.5 {
		t.Error("same-host transfer must be instant and lossless")
	}
	// Cross-host goes through the (dead) link.
	drops := 0
	for i := 0; i < 50; i++ {
		if _, d := f.Transfer("lgv", "cloud", 100, float64(i)); d {
			drops++
		}
	}
	if drops == 0 {
		t.Error("dead-zone transfers should mostly drop")
	}
}

func TestCountersAndWANLatency(t *testing.T) {
	edge := NewLink(DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(8)))
	cloud := NewLink(DefaultCloudLink(geom.V(0, 0)), rand.New(rand.NewSource(8)))
	edge.SetRobotPos(geom.V(1, 0))
	cloud.SetRobotPos(geom.V(1, 0))
	ea, _ := edge.Send(0, 100)
	ca, _ := cloud.Send(0, 100)
	if ca <= ea {
		t.Errorf("cloud latency %v should exceed edge %v (WAN leg)", ca, ea)
	}
	sent, dropped := edge.Counters()
	if sent != 1 || dropped != 0 {
		t.Errorf("counters = %d, %d", sent, dropped)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, b := link(42), link(42)
	a.SetRobotPos(geom.V(8, 0))
	b.SetRobotPos(geom.V(8, 0))
	for i := 0; i < 100; i++ {
		now := float64(i) * 0.1
		aa, ad := a.Send(now, 50)
		ba, bd := b.Send(now, 50)
		if aa != ba || ad != bd {
			t.Fatal("same seed diverged")
		}
	}
}

func TestInterferenceBursts(t *testing.T) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.InterferencePeriod = 10
	cfg.InterferenceDuty = 0.3
	cfg.InterferenceFloor = 0.0
	l := NewLink(cfg, rand.New(rand.NewSource(13)))
	l.SetRobotPos(geom.V(1, 0)) // strong baseline signal

	if s := l.SignalAt(1.0); s != 0 {
		t.Errorf("in-burst signal = %v, want floor 0", s)
	}
	if s := l.SignalAt(5.0); s != 1 {
		t.Errorf("out-of-burst signal = %v, want 1", s)
	}
	// Sends during the burst mostly drop; outside they succeed.
	inDrops, outDrops := 0, 0
	for i := 0; i < 200; i++ {
		if _, d := l.Send(float64(i)*10+1.0, 64); d {
			inDrops++
		}
		if _, d := l.Send(float64(i)*10+5.0, 64); d {
			outDrops++
		}
	}
	if inDrops < 150 {
		t.Errorf("in-burst drops = %d/200, want most", inDrops)
	}
	if outDrops > 5 {
		t.Errorf("out-of-burst drops = %d/200, want none", outDrops)
	}
}

func TestInterferenceDisabledByDefault(t *testing.T) {
	l := link(14)
	l.SetRobotPos(geom.V(1, 0))
	if l.SignalAt(3.3) != l.Signal() {
		t.Error("no interference configured, SignalAt must equal Signal")
	}
}

// Satellite coverage for ISSUE: interference bursts interacting with the
// kernel buffer. An in-burst floor below BlockSignal forces the driver to
// hold packets even when mobility signal is perfect, so the Fig. 7 buffer
// semantics and the burst model compose.

func burstLink(seed int64) (*Link, LinkConfig) {
	cfg := DefaultEdgeLink(geom.V(0, 0))
	cfg.JitterSec = 0
	cfg.InterferencePeriod = 10
	cfg.InterferenceDuty = 0.3  // bursts cover [0, 3) of every period
	cfg.InterferenceFloor = 0.4 // below BlockSignal: the driver holds packets
	cfg.DrainRate = 2           // slow drain so occupancy stays observable
	l := NewLink(cfg, rand.New(rand.NewSource(seed)))
	l.SetRobotPos(geom.V(1, 0)) // full mobility signal; only bursts degrade it
	return l, cfg
}

func TestKernelBufferDrainsDuringInterferenceBurst(t *testing.T) {
	l, cfg := burstLink(5)

	// Burst-fill at t=0: the first KernelBuf packets join the buffer, the
	// rest overflow at the same instant (Fig. 7 silent discard).
	overflow := 0
	for i := 0; i < cfg.KernelBuf+5; i++ {
		if _, dropped := l.Send(0, 64); dropped {
			overflow++
		}
	}
	if overflow < 5 {
		t.Fatalf("same-instant burst dropped %d packets, want >= 5 overflows", overflow)
	}

	// Still inside the burst at t=2.5 the buffer has drained at the floor
	// rate (2 pkt/s * 0.4 = 0.8 pkt/s -> 2 packets gone), so exactly two
	// slots are free: two sends join, a third overflows.
	var delays []float64
	for i := 0; i < 2; i++ {
		if at, dropped := l.Send(2.5, 64); !dropped {
			delays = append(delays, at-2.5)
		}
	}
	if _, dropped := l.Send(2.5, 64); !dropped {
		t.Error("third in-burst send found buffer space: occupancy was lost")
	}
	if len(delays) == 0 {
		t.Fatal("both in-burst joins dropped by random fade (seed-dependent); expected a delivery")
	}
	for _, d := range delays {
		// Joining behind >= 3 buffered packets costs several seconds at
		// the floor drain rate -- visibly queued, not fresh.
		if d < 2.0 {
			t.Errorf("in-burst queue delay = %.2fs, want >= 2s behind a part-full buffer", d)
		}
	}
}

func TestKernelBufferRecoversAfterInterferenceBurst(t *testing.T) {
	l, cfg := burstLink(3)

	// Overflow the buffer during the burst.
	for i := 0; i < cfg.KernelBuf+3; i++ {
		l.Send(0.5, 64)
	}

	// The instant the burst ends the signal is back above BlockSignal, so
	// new sends bypass the still-draining buffer: no queue delay, no loss.
	at, dropped := l.Send(3.1, 64)
	if dropped {
		t.Fatal("post-burst send dropped at full signal")
	}
	if lat := at - 3.1; lat > 0.01 {
		t.Errorf("post-burst latency = %.3fs, want ~BaseLat: residual occupancy must not delay unblocked sends", lat)
	}

	// By the next burst the leftover occupancy has fully drained: the
	// first in-burst send joins an otherwise empty buffer, paying one
	// packet of queue delay at the floor drain rate rather than
	// overflowing a still-full one.
	at, dropped = l.Send(10.1, 64)
	if dropped {
		t.Fatal("first send of the next burst dropped: buffer never recovered")
	}
	if d := at - 10.1; d < 1.0 || d > 2.0 {
		t.Errorf("next-burst queue delay = %.2fs, want ~1.25s (single packet at floor drain)", d)
	}
}
