// Package viz renders the reproduction's figures: line charts, grouped
// bar charts and occupancy-map snapshots as standalone SVG documents,
// plus ASCII map views for terminals. It is deliberately tiny — just
// enough of an SVG writer (standard library only) to plot Figures 9–14
// from the bench harness's data.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Palette used round-robin for series.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

// Series is one plotted line or bar group.
type Series struct {
	Name string
	X    []float64 // line charts: x positions (ignored for bar charts)
	Y    []float64
}

// ChartConfig describes a chart's frame.
type ChartConfig struct {
	Title         string
	XLabel        string
	YLabel        string
	Width, Height int     // pixels; defaults 640×400
	YMin, YMax    float64 // 0,0 = auto
	LogY          bool    // plot log10(y) (for wide dynamic ranges)
}

func (c *ChartConfig) fill() {
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 400
	}
}

const (
	marginL = 70.0
	marginR = 20.0
	marginT = 40.0
	marginB = 55.0
)

type canvas struct {
	w   io.Writer
	err error
	wpx float64
	hpx float64
}

func newCanvas(w io.Writer, width, height int) *canvas {
	c := &canvas{w: w, wpx: float64(width), hpx: float64(height)}
	c.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	c.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	return c
}

func (c *canvas) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

func (c *canvas) close() error {
	c.printf("</svg>\n")
	return c.err
}

func (c *canvas) text(x, y float64, anchor, style, s string) {
	c.printf(`<text x="%.1f" y="%.1f" text-anchor="%s" font-family="sans-serif" %s>%s</text>`+"\n",
		x, y, anchor, style, escape(s))
}

func (c *canvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	c.printf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// axes draws the frame, ticks and labels; returns coordinate mappers.
func (c *canvas) axes(cfg ChartConfig, xmin, xmax, ymin, ymax float64) (fx, fy func(float64) float64) {
	plotW := c.wpx - marginL - marginR
	plotH := c.hpx - marginT - marginB
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	fx = func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	fy = func(y float64) float64 { return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH }

	// Frame.
	c.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	c.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	c.text(c.wpx/2, 22, "middle", `font-size="15" font-weight="bold"`, cfg.Title)
	c.text(c.wpx/2, c.hpx-10, "middle", `font-size="12"`, cfg.XLabel)
	c.printf(`<text x="16" y="%.1f" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(cfg.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/5
		yv := ymin + (ymax-ymin)*float64(i)/5
		xp, yp := fx(xv), fy(yv)
		c.line(xp, marginT+plotH, xp, marginT+plotH+4, "#333", 1)
		c.text(xp, marginT+plotH+18, "middle", `font-size="10"`, trimNum(xv))
		c.line(marginL-4, yp, marginL, yp, "#333", 1)
		label := yv
		if cfg.LogY {
			label = math.Pow(10, yv)
		}
		c.text(marginL-8, yp+3, "end", `font-size="10"`, trimNum(label))
		// Light gridline.
		c.line(marginL, yp, marginL+plotW, yp, "#eee", 1)
	}
	return fx, fy
}

func trimNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01 || av == 0:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

// LineChart renders the series as polylines with markers and a legend.
func LineChart(w io.Writer, cfg ChartConfig, series []Series) error {
	cfg.fill()
	if len(series) == 0 {
		return fmt.Errorf("viz: no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	val := func(y float64) float64 {
		if cfg.LogY {
			if y <= 0 {
				return math.Inf(1) // skipped below
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range series {
		for i := range s.X {
			v := val(s.Y[i])
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, v), math.Max(ymax, v)
		}
	}
	if cfg.YMax != 0 || cfg.YMin != 0 {
		ymin, ymax = val(cfg.YMin), val(cfg.YMax)
	}
	if math.IsInf(xmin, 0) {
		return fmt.Errorf("viz: series contain no drawable points")
	}

	c := newCanvas(w, cfg.Width, cfg.Height)
	fx, fy := c.axes(cfg, xmin, xmax, ymin, ymax)
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			v := val(s.Y[i])
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", fx(s.X[i]), fy(v)))
		}
		if len(pts) == 0 {
			continue
		}
		c.printf(`<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for _, p := range pts {
			var px, py float64
			fmt.Sscanf(p, "%f,%f", &px, &py)
			c.printf(`<circle cx="%.1f" cy="%.1f" r="2.4" fill="%s"/>`+"\n", px, py, color)
		}
		// Legend entry.
		lx := marginL + 10
		ly := marginT + 14 + float64(si)*16
		c.line(lx, ly-4, lx+18, ly-4, color, 2)
		c.text(lx+24, ly, "start", `font-size="11"`, s.Name)
	}
	return c.close()
}

// BarChart renders grouped bars: one group per label, one bar per series.
func BarChart(w io.Writer, cfg ChartConfig, labels []string, series []Series) error {
	cfg.fill()
	if len(series) == 0 || len(labels) == 0 {
		return fmt.Errorf("viz: empty bar chart")
	}
	ymax := 0.0
	for _, s := range series {
		for _, y := range s.Y {
			if y > ymax {
				ymax = y
			}
		}
	}
	if cfg.YMax != 0 {
		ymax = cfg.YMax
	}
	c := newCanvas(w, cfg.Width, cfg.Height)
	fx, fy := c.axes(cfg, 0, float64(len(labels)), 0, ymax*1.05)

	groupW := fx(1) - fx(0)
	barW := groupW * 0.8 / float64(len(series))
	base := fy(0)
	for si, s := range series {
		color := palette[si%len(palette)]
		for gi, y := range s.Y {
			if gi >= len(labels) {
				break
			}
			x := fx(float64(gi)) + groupW*0.1 + float64(si)*barW
			top := fy(y)
			c.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, barW*0.95, base-top, color)
		}
		lx := marginL + 10
		ly := marginT + 14 + float64(si)*16
		c.printf(`<rect x="%.1f" y="%.1f" width="12" height="10" fill="%s"/>`+"\n", lx, ly-9, color)
		c.text(lx+18, ly, "start", `font-size="11"`, s.Name)
	}
	for gi, l := range labels {
		c.text(fx(float64(gi)+0.5), c.hpx-marginB+18, "middle", `font-size="10"`, l)
	}
	return c.close()
}
