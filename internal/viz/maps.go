package viz

import (
	"bufio"
	"fmt"
	"io"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// MapSVG renders an occupancy map with optional path overlays as SVG.
// Occupied cells are black, free white, unknown gray; each path draws in
// a palette color with start/end markers.
func MapSVG(w io.Writer, m *grid.Map, paths ...[]geom.Vec2) error {
	const scale = 6.0 // pixels per cell
	width := int(float64(m.Width) * scale)
	height := int(float64(m.Height) * scale)
	c := newCanvas(w, width, height)

	// Cells. Rows merge horizontally into run-length rects to keep the
	// file small.
	for y := 0; y < m.Height; y++ {
		x := 0
		for x < m.Width {
			v := m.At(geom.Cell{X: x, Y: y})
			run := 1
			for x+run < m.Width && m.At(geom.Cell{X: x + run, Y: y}) == v {
				run++
			}
			var fill string
			switch v {
			case grid.Occupied:
				fill = "#222"
			case grid.Unknown:
				fill = "#bbb"
			default:
				fill = ""
			}
			if fill != "" {
				// SVG y grows downward; map y grows upward.
				py := float64(m.Height-1-y) * scale
				c.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					float64(x)*scale, py, float64(run)*scale, scale, fill)
			}
			x += run
		}
	}

	toPx := func(p geom.Vec2) (float64, float64) {
		cell := m.WorldToCell(p)
		return (float64(cell.X) + 0.5) * scale, (float64(m.Height-1-cell.Y) + 0.5) * scale
	}
	for pi, path := range paths {
		if len(path) == 0 {
			continue
		}
		color := palette[pi%len(palette)]
		var pts string
		for _, p := range path {
			x, y := toPx(p)
			pts += fmt.Sprintf("%.1f,%.1f ", x, y)
		}
		c.printf(`<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n", color, pts)
		sx, sy := toPx(path[0])
		ex, ey := toPx(path[len(path)-1])
		c.printf(`<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", sx, sy, color)
		c.printf(`<rect x="%.1f" y="%.1f" width="8" height="8" fill="%s"/>`+"\n", ex-4, ey-4, color)
	}
	return c.close()
}

// MapASCII writes a terminal view of the map with path overlays ('*')
// and the robot position ('R'), downsampled to at most maxCols columns.
func MapASCII(w io.Writer, m *grid.Map, robot geom.Vec2, path []geom.Vec2, maxCols int) error {
	if maxCols <= 0 {
		maxCols = 100
	}
	step := 1
	for m.Width/step > maxCols {
		step++
	}
	// Rasterize overlays into a cell set.
	onPath := make(map[geom.Cell]bool, len(path))
	for i := 1; i < len(path); i++ {
		geom.Bresenham(m.WorldToCell(path[i-1]), m.WorldToCell(path[i]), func(c geom.Cell) bool {
			onPath[c] = true
			return true
		})
	}
	robotCell := m.WorldToCell(robot)

	bw := bufio.NewWriter(w)
	for y := m.Height - 1; y >= 0; y -= step {
		for x := 0; x < m.Width; x += step {
			ch := byte(' ')
			state := blockState(m, x, y, step)
			switch state {
			case grid.Occupied:
				ch = '#'
			case grid.Unknown:
				ch = '?'
			default:
				ch = '.'
			}
			if blockHasPath(onPath, x, y, step) {
				ch = '*'
			}
			if robotCell.X >= x && robotCell.X < x+step && robotCell.Y >= y && robotCell.Y < y+step {
				ch = 'R'
			}
			if err := bw.WriteByte(ch); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// blockState summarizes a step×step block: occupied wins, then unknown.
func blockState(m *grid.Map, x0, y0, step int) int8 {
	sawUnknown := false
	for dy := 0; dy < step; dy++ {
		for dx := 0; dx < step; dx++ {
			switch m.At(geom.Cell{X: x0 + dx, Y: y0 + dy}) {
			case grid.Occupied:
				return grid.Occupied
			case grid.Unknown:
				sawUnknown = true
			}
		}
	}
	if sawUnknown {
		return grid.Unknown
	}
	return grid.Free
}

func blockHasPath(onPath map[geom.Cell]bool, x0, y0, step int) bool {
	for dy := 0; dy < step; dy++ {
		for dx := 0; dx < step; dx++ {
			if onPath[geom.Cell{X: x0 + dx, Y: y0 + dy}] {
				return true
			}
		}
	}
	return false
}
