package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/world"
)

// wellFormed parses the output as XML — a malformed SVG fails here.
func wellFormed(t *testing.T, b []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(b))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v\n%s", err, b[:min(400, len(b))])
		}
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, ChartConfig{Title: "Fig<9>", XLabel: "threads", YLabel: "time (s)"},
		[]Series{
			{Name: "Pi", X: []float64{1, 2, 4, 8}, Y: []float64{1.3, 0.66, 0.33, 0.33}},
			{Name: "Cloud & co", X: []float64{1, 2, 4, 8}, Y: []float64{0.44, 0.22, 0.11, 0.06}},
		})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	for _, want := range []string{"polyline", "Fig&lt;9&gt;", "Cloud &amp; co", "threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestLineChartLogScale(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, ChartConfig{Title: "log", LogY: true},
		[]Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.001, 1, 1000}}})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestLineChartSkipsNonPositiveOnLog(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, ChartConfig{LogY: true},
		[]Series{{Name: "s", X: []float64{1, 2}, Y: []float64{0, 10}}})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestLineChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := LineChart(&buf, ChartConfig{}, nil); err == nil {
		t.Error("empty series must error")
	}
	if err := LineChart(&buf, ChartConfig{LogY: true},
		[]Series{{Name: "s", X: []float64{1}, Y: []float64{-1}}}); err == nil {
		t.Error("no drawable points must error")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, ChartConfig{Title: "Fig 13", YLabel: "J"},
		[]string{"local", "edge", "cloud"},
		[]Series{
			{Name: "motor", Y: []float64{687, 365, 370}},
			{Name: "computer", Y: []float64{943, 100, 100}},
		})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	if strings.Count(out, "<rect") < 6 {
		t.Error("expected at least 6 bars")
	}
	for _, want := range []string{"local", "edge", "cloud", "motor"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, ChartConfig{}, nil, nil); err == nil {
		t.Error("empty chart must error")
	}
}

func TestMapSVG(t *testing.T) {
	m := world.LabMap()
	var buf bytes.Buffer
	path := []geom.Vec2{geom.V(0.6, 0.6), geom.V(5, 3), geom.V(11, 5)}
	if err := MapSVG(&buf, m, path); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if !strings.Contains(buf.String(), "polyline") {
		t.Error("path overlay missing")
	}
}

func TestMapASCII(t *testing.T) {
	m := world.EmptyRoomMap(4, 3, 0.1)
	m.Set(m.WorldToCell(geom.V(2, 1.5)), grid.Unknown)
	var buf bytes.Buffer
	path := []geom.Vec2{geom.V(0.5, 1.5), geom.V(3.5, 1.5)}
	if err := MapASCII(&buf, m, geom.V(0.5, 1.5), path, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "R") || !strings.Contains(out, "*") {
		t.Errorf("ASCII map missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || len(lines[0]) > 50 {
		t.Errorf("downsampling failed: %d cols", len(lines[0]))
	}
}

func TestMapASCIIUnknownGlyph(t *testing.T) {
	m := grid.NewMap(10, 10, 0.1, geom.V(0, 0), grid.Unknown)
	var buf bytes.Buffer
	if err := MapASCII(&buf, m, geom.V(-1, -1), nil, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Error("unknown cells should render '?'")
	}
}
