// Package amcl implements the Localization(Laser) node for the known-map
// workload: Adaptive Monte Carlo Localization (Fox's KLD-sampling
// particle filter), the algorithm the paper uses when a map is available.
// The measurement model is a likelihood field precomputed from the static
// map's distance transform; the particle count adapts between bounds
// using the KLD criterion over a coarse pose histogram.
package amcl

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/sensor"
)

// Config parameterizes the filter.
type Config struct {
	MinParticles, MaxParticles int

	// Motion model noise per meter / radian of motion.
	TransNoise float64
	RotNoise   float64

	// Likelihood field measurement model.
	BeamSkip int
	ZHit     float64 // weight of the hit Gaussian
	ZRand    float64 // weight of the uniform floor
	SigmaHit float64 // hit Gaussian stddev, m

	// Resampling and KLD adaptation.
	ResampleNeff float64 // resample when Neff/N below this
	KLDErr       float64 // ε
	KLDZ         float64 // upper quantile (2.33 ≈ 99%)
	BinXY        float64 // histogram bin size, m
	BinTheta     float64 // histogram bin size, rad
}

// DefaultConfig mirrors the ROS amcl defaults, scaled to small maps.
func DefaultConfig() Config {
	return Config{
		MinParticles: 100, MaxParticles: 2000,
		TransNoise: 0.1, RotNoise: 0.15,
		BeamSkip: 6, ZHit: 0.95, ZRand: 0.05, SigmaHit: 0.1,
		ResampleNeff: 0.5,
		KLDErr:       0.05, KLDZ: 2.33,
		BinXY: 0.25, BinTheta: math.Pi / 8,
	}
}

type particle struct {
	pose geom.Pose
	w    float64 // normalized weight
}

// UpdateStats reports the work of one update.
type UpdateStats struct {
	BeamOps   int // likelihood-field probes (dominant cost)
	Particles int // particles after adaptation
	Resampled bool
}

// AMCL is the filter. Not safe for concurrent use.
type AMCL struct {
	cfg Config
	m   *grid.Map
	rng *rand.Rand

	dist      []float64 // distance transform of the static map
	particles []particle
	maxRange  float64

	// Measurement-model caches, the same treatment as the grid package's
	// logistic LUT: the static map's per-cell log likelihood
	// log(z_hit·N(d;0,σ) + z_rand/z_max) precomputed once per max-range
	// value (distance transform and σ never change), so a beam probe is
	// an array load instead of an Exp and a Log; plus the per-scan trig
	// table and a reusable log-weight scratch.
	lhood    []float64
	lhoodMax float64 // max range the field was built for
	oobLW    float64 // per-beam log likelihood outside the map
	tab      sensor.Table
	logws    []float64
}

// New builds the filter over a known static map.
func New(m *grid.Map, cfg Config, rng *rand.Rand) *AMCL {
	if cfg.BeamSkip < 1 {
		cfg.BeamSkip = 1
	}
	if cfg.MinParticles < 2 {
		cfg.MinParticles = 2
	}
	if cfg.MaxParticles < cfg.MinParticles {
		cfg.MaxParticles = cfg.MinParticles
	}
	return &AMCL{cfg: cfg, m: m, rng: rng, dist: grid.DistanceTransform(m)}
}

// Init spreads MaxParticles around the given pose with Gaussian noise.
func (a *AMCL) Init(pose geom.Pose, posStd, thetaStd float64) {
	n := a.cfg.MaxParticles
	a.particles = make([]particle, n)
	for i := range a.particles {
		a.particles[i] = particle{
			pose: geom.P(
				pose.Pos.X+a.rng.NormFloat64()*posStd,
				pose.Pos.Y+a.rng.NormFloat64()*posStd,
				pose.Theta+a.rng.NormFloat64()*thetaStd,
			),
			w: 1 / float64(n),
		}
	}
}

// InitGlobal scatters particles uniformly over the map's free space for
// the kidnapped-robot case.
func (a *AMCL) InitGlobal() {
	n := a.cfg.MaxParticles
	a.particles = make([]particle, 0, n)
	w := float64(a.m.Width) * a.m.Resolution
	h := float64(a.m.Height) * a.m.Resolution
	for len(a.particles) < n {
		p := geom.V(a.m.Origin.X+a.rng.Float64()*w, a.m.Origin.Y+a.rng.Float64()*h)
		if a.m.At(a.m.WorldToCell(p)) != grid.Free {
			continue
		}
		a.particles = append(a.particles, particle{
			pose: geom.P(p.X, p.Y, a.rng.Float64()*2*math.Pi-math.Pi),
			w:    1 / float64(n),
		})
	}
}

// NumParticles returns the current particle count.
func (a *AMCL) NumParticles() int { return len(a.particles) }

// Update runs one motion + measurement + resample step.
func (a *AMCL) Update(odomDelta geom.Pose, scan *sensor.Scan) UpdateStats {
	var st UpdateStats
	if len(a.particles) == 0 {
		return st
	}
	a.maxRange = scan.MaxRange
	a.tab.Fill(scan)
	if a.lhood == nil || a.lhoodMax != scan.MaxRange {
		a.buildLikelihoodField(scan.MaxRange)
	}

	// Motion update.
	trans := odomDelta.Pos.Norm()
	rot := math.Abs(odomDelta.Theta)
	for i := range a.particles {
		noisy := odomDelta
		noisy.Pos.X += a.rng.NormFloat64() * (a.cfg.TransNoise*trans + 1e-4)
		noisy.Pos.Y += a.rng.NormFloat64() * (a.cfg.TransNoise*trans + 1e-4)
		noisy.Theta = geom.NormalizeAngle(noisy.Theta +
			a.rng.NormFloat64()*(a.cfg.RotNoise*rot+1e-4))
		a.particles[i].pose = a.particles[i].pose.Compose(noisy)
	}

	// Measurement update via the likelihood field.
	if cap(a.logws) < len(a.particles) {
		a.logws = make([]float64, len(a.particles))
	}
	logws := a.logws[:len(a.particles)]
	for i := range a.particles {
		lw, ops := a.beamLikelihood(a.particles[i].pose)
		logws[i] = lw
		st.BeamOps += ops
	}
	// Normalize.
	maxLW := math.Inf(-1)
	for _, lw := range logws {
		if lw > maxLW {
			maxLW = lw
		}
	}
	sum := 0.0
	for i := range a.particles {
		a.particles[i].w *= math.Exp(logws[i] - maxLW)
		sum += a.particles[i].w
	}
	if sum <= 0 {
		// Total weight collapse: reset to uniform.
		for i := range a.particles {
			a.particles[i].w = 1 / float64(len(a.particles))
		}
	} else {
		for i := range a.particles {
			a.particles[i].w /= sum
		}
	}

	// Resample with KLD-adapted size when Neff collapses.
	neffDen := 0.0
	for i := range a.particles {
		neffDen += a.particles[i].w * a.particles[i].w
	}
	neff := 1 / math.Max(neffDen, 1e-300)
	if neff < a.cfg.ResampleNeff*float64(len(a.particles)) {
		a.resampleKLD()
		st.Resampled = true
	}
	st.Particles = len(a.particles)
	return st
}

// buildLikelihoodField precomputes the per-cell log measurement
// likelihood log(z_hit·N(d;0,σ) + z_rand/z_max) over the static map's
// distance transform, plus the out-of-bounds constant. Everything in the
// expression is fixed for a given max range, so per-beam scoring reduces
// to an array load — the Exp and Log run once per cell here instead of
// once per beam per particle per update.
func (a *AMCL) buildLikelihoodField(maxRange float64) {
	if cap(a.lhood) < len(a.dist) {
		a.lhood = make([]float64, len(a.dist))
	}
	a.lhood = a.lhood[:len(a.dist)]
	norm := 1 / (a.cfg.SigmaHit * math.Sqrt(2*math.Pi))
	floor := a.cfg.ZRand / math.Max(maxRange, 0.1)
	logP := func(d float64) float64 {
		return math.Log(a.cfg.ZHit*norm*math.Exp(-d*d/(2*a.cfg.SigmaHit*a.cfg.SigmaHit)) + floor)
	}
	for i, d := range a.dist {
		a.lhood[i] = logP(d)
	}
	a.oobLW = logP(2 * a.cfg.SigmaHit * 5) // far outside: strongly unlikely
	a.lhoodMax = maxRange
}

// beamLikelihood scores a pose: Σ log(z_hit·N(d;0,σ) + z_rand/z_max) over
// subsampled hit beams, where d is the likelihood-field distance at the
// beam endpoint. Endpoints come from the per-scan trig table (one Sincos
// for the pose heading) and the log term from the precomputed field.
func (a *AMCL) beamLikelihood(pose geom.Pose) (float64, int) {
	lw := 0.0
	ops := 0
	tab := &a.tab
	sinT, cosT := math.Sincos(pose.Theta)
	for i := 0; i < tab.N(); i += a.cfg.BeamSkip {
		if !tab.Hit[i] {
			continue
		}
		cell := a.m.WorldToCell(tab.Endpoint(pose.Pos, sinT, cosT, i))
		ops++
		if a.m.InBounds(cell) {
			lw += a.lhood[cell.Y*a.m.Width+cell.X]
		} else {
			lw += a.oobLW
		}
	}
	return lw, ops
}

// resampleKLD performs systematic resampling and adapts the particle
// count with the KLD criterion: the new size is the KLD bound computed
// from the number of occupied pose-histogram bins, clamped to
// [MinParticles, MaxParticles].
func (a *AMCL) resampleKLD() {
	// Count occupied histogram bins of the current (pre-resample) set.
	type bin struct{ x, y, t int }
	bins := make(map[bin]bool)
	for _, p := range a.particles {
		bins[bin{
			x: int(math.Floor(p.pose.Pos.X / a.cfg.BinXY)),
			y: int(math.Floor(p.pose.Pos.Y / a.cfg.BinXY)),
			t: int(math.Floor(p.pose.Theta / a.cfg.BinTheta)),
		}] = true
	}
	k := len(bins)
	n := a.kldBound(k)

	// Systematic resampling into n particles.
	out := make([]particle, 0, n)
	u := a.rng.Float64() / float64(n)
	cum := 0.0
	idx := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)/float64(n)
		for cum+a.particles[idx].w < target && idx < len(a.particles)-1 {
			cum += a.particles[idx].w
			idx++
		}
		out = append(out, particle{pose: a.particles[idx].pose, w: 1 / float64(n)})
	}
	a.particles = out
}

// kldBound returns the KLD-sampling particle count for k occupied bins:
// n = (k-1)/(2ε) · (1 - 2/(9(k-1)) + √(2/(9(k-1)))·z)³.
func (a *AMCL) kldBound(k int) int {
	if k <= 1 {
		return a.cfg.MinParticles
	}
	kf := float64(k - 1)
	b := 2 / (9 * kf)
	n := kf / (2 * a.cfg.KLDErr) * math.Pow(1-b+math.Sqrt(b)*a.cfg.KLDZ, 3)
	ni := int(math.Ceil(n))
	if ni < a.cfg.MinParticles {
		ni = a.cfg.MinParticles
	}
	if ni > a.cfg.MaxParticles {
		ni = a.cfg.MaxParticles
	}
	return ni
}

// Estimate returns the weighted mean pose.
func (a *AMCL) Estimate() geom.Pose {
	var x, y, s, c, wsum float64
	for _, p := range a.particles {
		x += p.w * p.pose.Pos.X
		y += p.w * p.pose.Pos.Y
		s += p.w * math.Sin(p.pose.Theta)
		c += p.w * math.Cos(p.pose.Theta)
		wsum += p.w
	}
	if wsum == 0 {
		return geom.Pose{}
	}
	return geom.P(x/wsum, y/wsum, math.Atan2(s, c))
}

// Spread returns the RMS positional spread of the particle cloud around
// the estimate — a convergence indicator.
func (a *AMCL) Spread() float64 {
	est := a.Estimate()
	var sum, wsum float64
	for _, p := range a.particles {
		sum += p.w * p.pose.Pos.DistSq(est.Pos)
		wsum += p.w
	}
	if wsum == 0 {
		return 0
	}
	return math.Sqrt(sum / wsum)
}
