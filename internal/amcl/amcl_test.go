package amcl

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/world"
)

// track drives the robot and feeds the filter, returning the filter and
// the final true pose.
func track(t testing.TB, cfg Config, seed int64) (*AMCL, geom.Pose) {
	t.Helper()
	m := world.LabMap()
	w := world.New(m, world.Turtlebot3(), geom.P(1, 1, 0))
	laser := sensor.NewLaser(90, 3.5, 0.02, rand.New(rand.NewSource(seed)))
	odo := sensor.NewOdometer(rand.New(rand.NewSource(seed + 1)))
	a := New(m, cfg, rand.New(rand.NewSource(seed+2)))
	a.Init(w.Robot.Pose, 0.1, 0.05)

	prev := odo.Update(w.Robot.Pose)
	script := []struct {
		v, wv float64
		steps int
	}{
		{0.2, 0, 30},
		{0.1, 0.6, 15},
		{0.2, 0, 30},
	}
	for _, leg := range script {
		w.SetCommand(geom.Twist{V: leg.v, W: leg.wv})
		for i := 0; i < leg.steps; i++ {
			w.Step(0.1)
			est := odo.Update(w.Robot.Pose)
			delta := prev.Delta(est)
			prev = est
			a.Update(delta, laser.Sense(m, w.Robot.Pose, w.Time))
		}
	}
	return a, w.Robot.Pose
}

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.MinParticles = 50
	cfg.MaxParticles = 300
	return cfg
}

func TestAMCLTracksPose(t *testing.T) {
	a, truth := track(t, fastCfg(), 3)
	est := a.Estimate()
	if err := est.Pos.Dist(truth.Pos); err > 0.3 {
		t.Errorf("pose error %.3f m (est %v truth %v)", err, est, truth)
	}
	if d := math.Abs(geom.AngleDiff(est.Theta, truth.Theta)); d > 0.25 {
		t.Errorf("heading error %.3f rad", d)
	}
}

func TestAMCLConverges(t *testing.T) {
	a, _ := track(t, fastCfg(), 5)
	if s := a.Spread(); s > 0.3 {
		t.Errorf("particle spread %.3f m — filter did not converge", s)
	}
}

func TestKLDAdaptsParticleCount(t *testing.T) {
	a, _ := track(t, fastCfg(), 7)
	// After convergence the cloud occupies few bins, so the KLD bound
	// should have pulled the count well below the maximum.
	if n := a.NumParticles(); n >= 300 {
		t.Errorf("KLD did not shrink the particle set: %d", n)
	}
	if n := a.NumParticles(); n < 50 {
		t.Errorf("particle count below minimum: %d", n)
	}
}

func TestGlobalInitPlacesParticlesInFreeSpace(t *testing.T) {
	m := world.LabMap()
	a := New(m, fastCfg(), rand.New(rand.NewSource(1)))
	a.InitGlobal()
	if a.NumParticles() != 300 {
		t.Fatalf("particles = %d", a.NumParticles())
	}
	for _, p := range a.particles {
		if m.OccupiedAtWorld(p.pose.Pos) {
			t.Fatalf("particle in obstacle at %v", p.pose.Pos)
		}
	}
}

func TestUpdateStatsAndBeamSkip(t *testing.T) {
	m := world.LabMap()
	laser := sensor.NewLaser(360, 3.5, 0, rand.New(rand.NewSource(1)))
	scan := laser.Sense(m, geom.P(1, 1, 0), 0)

	run := func(skip int) int {
		cfg := fastCfg()
		cfg.BeamSkip = skip
		a := New(m, cfg, rand.New(rand.NewSource(2)))
		a.Init(geom.P(1, 1, 0), 0.05, 0.05)
		st := a.Update(geom.Pose{}, scan)
		return st.BeamOps
	}
	full, skipped := run(1), run(6)
	if skipped >= full {
		t.Errorf("beam skip did not reduce work: %d vs %d", skipped, full)
	}
	if full == 0 {
		t.Error("no beam ops accounted")
	}
}

func TestEmptyFilterUpdateIsSafe(t *testing.T) {
	m := world.LabMap()
	a := New(m, fastCfg(), rand.New(rand.NewSource(1)))
	laser := sensor.NewLaser(10, 3.5, 0, rand.New(rand.NewSource(1)))
	st := a.Update(geom.Pose{}, laser.Sense(m, geom.P(1, 1, 0), 0))
	if st.Particles != 0 || st.BeamOps != 0 {
		t.Errorf("uninitialized update should no-op: %+v", st)
	}
}

func TestKLDBound(t *testing.T) {
	a := New(world.LabMap(), fastCfg(), rand.New(rand.NewSource(1)))
	if got := a.kldBound(1); got != 50 {
		t.Errorf("k=1 should clamp to min: %d", got)
	}
	if got := a.kldBound(10000); got != 300 {
		t.Errorf("huge k should clamp to max: %d", got)
	}
	// Monotone in k within range.
	prev := 0
	for _, k := range []int{5, 10, 20, 40} {
		n := a.kldBound(k)
		if n < prev {
			t.Errorf("kldBound not monotone at k=%d: %d < %d", k, n, prev)
		}
		prev = n
	}
}

func TestDegenerateConfigClamps(t *testing.T) {
	cfg := Config{MinParticles: 0, MaxParticles: 0, BeamSkip: 0,
		ZHit: 0.95, ZRand: 0.05, SigmaHit: 0.1, ResampleNeff: 0.5,
		KLDErr: 0.05, KLDZ: 2.33, BinXY: 0.25, BinTheta: 0.4}
	a := New(world.LabMap(), cfg, rand.New(rand.NewSource(1)))
	if a.cfg.MinParticles < 2 || a.cfg.MaxParticles < a.cfg.MinParticles || a.cfg.BeamSkip != 1 {
		t.Errorf("config not clamped: %+v", a.cfg)
	}
}

func BenchmarkAMCLUpdate(b *testing.B) {
	m := world.LabMap()
	laser := sensor.NewLaser(360, 3.5, 0.01, rand.New(rand.NewSource(1)))
	scan := laser.Sense(m, geom.P(1, 1, 0), 0)
	cfg := DefaultConfig()
	a := New(m, cfg, rand.New(rand.NewSource(2)))
	a.Init(geom.P(1, 1, 0), 0.1, 0.1)
	delta := geom.P(0.01, 0, 0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(delta, scan)
	}
}

// TestAMCLSurvivesSensorFaults: localization must stay usable under 20%
// beam dropout and 5% outliers — the likelihood-field model is robust to
// missing and spurious returns.
func TestAMCLSurvivesSensorFaults(t *testing.T) {
	m := world.LabMap()
	w := world.New(m, world.Turtlebot3(), geom.P(1, 1, 0))
	laser := sensor.NewLaser(90, 3.5, 0.02, rand.New(rand.NewSource(31)))
	laser.DropoutProb = 0.2
	laser.OutlierProb = 0.05
	odo := sensor.NewOdometer(rand.New(rand.NewSource(32)))
	a := New(m, fastCfg(), rand.New(rand.NewSource(33)))
	a.Init(w.Robot.Pose, 0.1, 0.05)

	prev := odo.Update(w.Robot.Pose)
	w.SetCommand(geom.Twist{V: 0.2, W: 0.1})
	for i := 0; i < 60; i++ {
		w.Step(0.1)
		est := odo.Update(w.Robot.Pose)
		delta := prev.Delta(est)
		prev = est
		a.Update(delta, laser.Sense(m, w.Robot.Pose, w.Time))
	}
	if err := a.Estimate().Pos.Dist(w.Robot.Pose.Pos); err > 0.4 {
		t.Errorf("pose error %.3f m under sensor faults", err)
	}
}

// TestGlobalLocalizationConverges is the kidnapped-robot case: particles
// start scattered over all free space; after driving through the lab's
// distinctive geometry the filter must collapse near the true pose.
func TestGlobalLocalizationConverges(t *testing.T) {
	m := world.LabMap()
	w := world.New(m, world.Turtlebot3(), geom.P(1, 1, 0))
	laser := sensor.NewLaser(180, 3.5, 0.02, rand.New(rand.NewSource(41)))
	odo := sensor.NewOdometer(rand.New(rand.NewSource(42)))
	cfg := DefaultConfig()
	cfg.MinParticles = 150
	cfg.MaxParticles = 2500
	a := New(m, cfg, rand.New(rand.NewSource(43)))
	a.InitGlobal()

	prev := odo.Update(w.Robot.Pose)
	script := []struct {
		v, wv float64
		steps int
	}{
		{0.2, 0, 40}, {0.1, 0.7, 15}, {0.2, 0, 40}, {0.1, -0.7, 15}, {0.2, 0, 40},
	}
	for _, leg := range script {
		w.SetCommand(geom.Twist{V: leg.v, W: leg.wv})
		for i := 0; i < leg.steps; i++ {
			w.Step(0.1)
			est := odo.Update(w.Robot.Pose)
			delta := prev.Delta(est)
			prev = est
			a.Update(delta, laser.Sense(m, w.Robot.Pose, w.Time))
		}
	}
	err := a.Estimate().Pos.Dist(w.Robot.Pose.Pos)
	if err > 0.6 {
		t.Errorf("global localization error %.2f m (spread %.2f, %d particles)",
			err, a.Spread(), a.NumParticles())
	}
}
