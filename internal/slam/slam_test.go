package slam

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/sensor"
	"lgvoffload/internal/world"
)

// driveAndMap runs a short scripted mission and returns the filter plus
// the true final pose.
func driveAndMap(t testing.TB, cfg Config, threads int, part Partition, seed int64) (*SLAM, geom.Pose) {
	m := world.EmptyRoomMap(6, 6, 0.05)
	w := world.New(m, world.Turtlebot3(), geom.P(1.5, 1.5, 0))
	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(seed)))
	odo := sensor.NewOdometer(rand.New(rand.NewSource(seed + 1)))
	s := New(cfg, rand.New(rand.NewSource(seed+2)))
	s.SetInitialPose(w.Robot.Pose)

	prevOdom := odo.Update(w.Robot.Pose)
	// Drive an L: forward, then turn, then forward.
	script := []struct {
		v, wv float64
		steps int
	}{
		{0.2, 0, 40},
		{0.1, 0.8, 20},
		{0.2, 0, 40},
	}
	for _, leg := range script {
		w.SetCommand(geom.Twist{V: leg.v, W: leg.wv})
		for i := 0; i < leg.steps; i++ {
			w.Step(0.1)
			est := odo.Update(w.Robot.Pose)
			delta := prevOdom.Delta(est)
			prevOdom = est
			scan := laser.Sense(m, w.Robot.Pose, w.Time)
			if threads <= 1 {
				s.Update(delta, scan)
			} else {
				s.UpdateParallel(delta, scan, threads, part)
			}
		}
	}
	return s, w.Robot.Pose
}

func smallCfg() Config {
	cfg := DefaultConfig(120, 120, 0.05, geom.V(0, 0))
	cfg.NumParticles = 12
	return cfg
}

func TestSLAMTracksPose(t *testing.T) {
	s, truth := driveAndMap(t, smallCfg(), 1, Block, 7)
	est := s.BestPose()
	if err := est.Pos.Dist(truth.Pos); err > 0.35 {
		t.Errorf("pose error %.3f m (est %v, truth %v)", err, est, truth)
	}
	if d := math.Abs(geom.AngleDiff(est.Theta, truth.Theta)); d > 0.3 {
		t.Errorf("heading error %.3f rad", d)
	}
}

func TestSLAMBeatsRawOdometryOverLongRun(t *testing.T) {
	// The point of scan matching: pose error stays bounded while pure
	// odometry drifts. Compare against a no-correction filter by checking
	// the absolute error is small after a long drive.
	cfg := smallCfg()
	s, truth := driveAndMap(t, cfg, 1, Block, 21)
	if err := s.BestPose().Pos.Dist(truth.Pos); err > 0.4 {
		t.Errorf("long-run pose error %.3f m", err)
	}
}

func TestSLAMBuildsMap(t *testing.T) {
	s, _ := driveAndMap(t, smallCfg(), 1, Block, 7)
	m := s.Map()
	occ := m.CountState(grid.Occupied)
	free := m.CountState(grid.Free)
	if occ < 50 {
		t.Errorf("mapped only %d occupied cells", occ)
	}
	if free < 1000 {
		t.Errorf("mapped only %d free cells", free)
	}
}

func TestParallelIdenticalToSerial(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 8} {
		for _, part := range []Partition{Block, Interleaved} {
			a, _ := driveAndMap(t, smallCfg(), 1, Block, 99)
			b, _ := driveAndMap(t, smallCfg(), threads, part, 99)
			if a.BestPose() != b.BestPose() {
				t.Errorf("threads=%d part=%v: poses diverge %v vs %v",
					threads, part, a.BestPose(), b.BestPose())
			}
			am, bm := a.Map(), b.Map()
			for i := range am.Cells {
				if am.Cells[i] != bm.Cells[i] {
					t.Fatalf("threads=%d part=%v: maps diverge at %d", threads, part, i)
				}
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := smallCfg()
	m := world.EmptyRoomMap(6, 6, 0.05)
	laser := sensor.NewLaser(90, 3.5, 0, rand.New(rand.NewSource(1)))
	s := New(cfg, rand.New(rand.NewSource(2)))
	s.SetInitialPose(geom.P(3, 3, 0))
	scan := laser.Sense(m, geom.P(3, 3, 0), 0)

	// First update: no matching (no reference map yet), only integration.
	st := s.Update(geom.Pose{}, scan)
	if st.MatchOps != 0 {
		t.Errorf("first update matched: %+v", st)
	}
	if st.IntegrateOps == 0 {
		t.Error("no integration on first update")
	}
	// Second update matches.
	st = s.Update(geom.Pose{}, scan)
	if st.MatchOps == 0 {
		t.Error("second update should scan-match")
	}
	if s.Updates() != 2 {
		t.Errorf("updates = %d", s.Updates())
	}
}

func TestMatchOpsScaleWithParticles(t *testing.T) {
	run := func(n int) int {
		cfg := smallCfg()
		cfg.NumParticles = n
		m := world.EmptyRoomMap(6, 6, 0.05)
		laser := sensor.NewLaser(90, 3.5, 0, rand.New(rand.NewSource(1)))
		s := New(cfg, rand.New(rand.NewSource(2)))
		s.SetInitialPose(geom.P(3, 3, 0))
		scan := laser.Sense(m, geom.P(3, 3, 0), 0)
		s.Update(geom.Pose{}, scan)
		st := s.Update(geom.Pose{}, scan)
		return st.MatchOps
	}
	ops10, ops30 := run(10), run(30)
	ratio := float64(ops30) / float64(ops10)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("match ops should scale ~linearly with particles: %d vs %d (ratio %.2f)",
			ops10, ops30, ratio)
	}
}

func TestResamplingTriggers(t *testing.T) {
	cfg := smallCfg()
	cfg.ResampleNeff = 2.0 // always resample after normalize
	m := world.EmptyRoomMap(6, 6, 0.05)
	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(3)))
	s := New(cfg, rand.New(rand.NewSource(4)))
	s.SetInitialPose(geom.P(3, 3, 0))
	s.Update(geom.Pose{}, laser.Sense(m, geom.P(3, 3, 0), 0))
	st := s.Update(geom.Pose{}, laser.Sense(m, geom.P(3, 3, 0), 1))
	if !st.Resampled {
		t.Error("resampling should have triggered")
	}
	if s.NumParticles() != cfg.NumParticles {
		t.Errorf("particle count changed: %d", s.NumParticles())
	}
}

func TestNeffBounds(t *testing.T) {
	s, _ := driveAndMap(t, smallCfg(), 1, Block, 11)
	n := s.Neff()
	if n < 1 || n > float64(s.NumParticles())+1e-9 {
		t.Errorf("Neff = %v out of [1, %d]", n, s.NumParticles())
	}
}

func TestMeanPoseNearBestPose(t *testing.T) {
	s, _ := driveAndMap(t, smallCfg(), 1, Block, 13)
	if d := s.MeanPose().Pos.Dist(s.BestPose().Pos); d > 0.5 {
		t.Errorf("mean pose %.3f m from best pose", d)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	cfg := smallCfg()
	cfg.NumParticles = 0
	cfg.BeamSkip = 0
	s := New(cfg, rand.New(rand.NewSource(1)))
	if s.NumParticles() != 1 {
		t.Errorf("particles clamped to %d", s.NumParticles())
	}
	// One particle, no beams to skip: still functional.
	m := world.EmptyRoomMap(6, 6, 0.05)
	laser := sensor.NewLaser(10, 3.5, 0, rand.New(rand.NewSource(1)))
	s.SetInitialPose(geom.P(3, 3, 0))
	s.Update(geom.Pose{}, laser.Sense(m, geom.P(3, 3, 0), 0))
	s.Update(geom.P(0.01, 0, 0), laser.Sense(m, geom.P(3.01, 3, 0), 0.1))
}

// refMatchScore scores one pose against one map independently, in beam
// order — the unbatched reference the batched paths must equal bit for
// bit (same accumulation order, same probe expression).
func refMatchScore(s *SLAM, m *grid.LogOdds, pose geom.Pose) float64 {
	tab := &s.tab
	sinT, cosT := math.Sincos(pose.Theta)
	sc := 0.0
	for b := 0; b < tab.N(); b += s.cfg.BeamSkip {
		if !tab.Hit[b] {
			continue
		}
		cell := m.WorldToCell(tab.Endpoint(pose.Pos, sinT, cosT, b))
		if !m.InBounds(cell) {
			sc -= 0.1
			continue
		}
		sc += grid.Score(m.AtQ(cell))
	}
	return sc
}

// TestBatchedScoringBitEqualToIndependent pins the batching contract:
// scoring many particles (or many candidate poses of one particle)
// against a single traversal of the scan yields exactly the score an
// independent per-pose pass produces.
func TestBatchedScoringBitEqualToIndependent(t *testing.T) {
	s, _ := driveAndMap(t, smallCfg(), 1, Block, 31)
	m := world.EmptyRoomMap(6, 6, 0.05)
	laser := sensor.NewLaser(90, 3.5, 0.01, rand.New(rand.NewSource(32)))
	scan := laser.Sense(m, s.BestPose(), 0)
	s.tab.Fill(scan)

	// Span batch: all particles in one traversal.
	s.matchScoreSpan(0, len(s.particles), 1)
	for i, pt := range s.particles {
		if want := refMatchScore(s, pt.Map, pt.Pose); s.baseSc[i] != want {
			t.Errorf("particle %d: span score %v != independent %v", i, s.baseSc[i], want)
		}
	}

	// Candidate batch: six poses of one particle in one traversal.
	pt := s.particles[0]
	p := pt.Pose
	cands := [6]geom.Pose{
		{Pos: geom.V(p.Pos.X+0.05, p.Pos.Y), Theta: p.Theta},
		{Pos: geom.V(p.Pos.X-0.05, p.Pos.Y), Theta: p.Theta},
		{Pos: geom.V(p.Pos.X, p.Pos.Y+0.05), Theta: p.Theta},
		{Pos: geom.V(p.Pos.X, p.Pos.Y-0.05), Theta: p.Theta},
		{Pos: p.Pos, Theta: geom.NormalizeAngle(p.Theta + 0.03)},
		{Pos: p.Pos, Theta: geom.NormalizeAngle(p.Theta - 0.03)},
	}
	var sin6, cos6, scores [6]float64
	for k := range cands {
		sin6[k], cos6[k] = math.Sincos(cands[k].Theta)
	}
	s.matchScoreBatch(pt.Map, &cands, &sin6, &cos6, &scores)
	for k := range cands {
		if want := refMatchScore(s, pt.Map, cands[k]); scores[k] != want {
			t.Errorf("candidate %d: batch score %v != independent %v", k, scores[k], want)
		}
	}
}
