// Package slam implements the Localization(SLAM) node for the unknown-map
// workload: a Rao-Blackwellized particle filter in the style of GMapping
// (Grisetti et al.), the algorithm the paper offloads and accelerates.
// Each particle carries a pose hypothesis and its own occupancy grid map;
// an update applies the odometry motion model, refines each particle's
// pose by hill-climbing scan matching against its map (the scanMatch
// function that consumes 98% of SLAM time in the paper's measurement),
// reweights and normalizes (updateTreeWeights), resamples when the
// effective sample size collapses, and integrates the scan into each
// surviving particle's map.
//
// UpdateParallel is the paper's Fig. 6 algorithm: a pool of N workers
// each scan-matches M/N particles. The workers are persistent (see
// internal/pool) — pinned goroutines reused across control ticks rather
// than spawned per update — and work is assigned positionally, so the
// parallel filter produces byte-identical results to the serial one for
// any thread count (all randomness is drawn serially before the parallel
// section).
package slam

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/pool"
	"lgvoffload/internal/sensor"
)

// Config parameterizes the filter.
type Config struct {
	NumParticles int

	// Map geometry for every particle's occupancy grid.
	MapW, MapH int
	Resolution float64
	Origin     geom.Vec2

	// Motion model noise (stddev per meter / radian of commanded motion).
	TransNoise float64
	RotNoise   float64

	// Scan matching.
	MatchIters   int     // hill-climbing refinement rounds
	SearchStep   float64 // initial translational step, m
	AngularStep  float64 // initial rotational step, rad
	BeamSkip     int     // match every k-th beam
	LikelihoodK  float64 // weight gain applied to match scores
	ResampleNeff float64 // resample when Neff/N drops below this
}

// DefaultConfig returns a configuration for the given map geometry with
// the paper's default particle count (30, the gmapping default).
func DefaultConfig(w, h int, res float64, origin geom.Vec2) Config {
	return Config{
		NumParticles: 30,
		MapW:         w, MapH: h, Resolution: res, Origin: origin,
		TransNoise: 0.05, RotNoise: 0.05,
		MatchIters: 5, SearchStep: 0.05, AngularStep: 0.03,
		BeamSkip: 4, LikelihoodK: 0.5, ResampleNeff: 0.5,
	}
}

// Particle is one pose-and-map hypothesis.
type Particle struct {
	Pose      geom.Pose
	LogWeight float64
	Map       *grid.LogOdds
}

// UpdateStats reports the work done by one filter update, in abstract
// operations that the engine converts to cycles.
type UpdateStats struct {
	MatchOps     int // beam probes during scan matching (parallel section)
	IntegrateOps int // map cells updated (parallel section)
	WeightOps    int // per-particle normalization/resampling work (serial)
	// CopyOps is map-copy work: tile-table entries shared when resampling
	// clones a duplicate, plus cells actually duplicated when a write
	// copy-on-writes a shared tile. With COW maps this is O(dirty tiles),
	// not O(M · map) as the pre-COW deep copies were.
	CopyOps   int
	Resampled bool
}

// SLAM is the filter state. Not safe for concurrent use; the parallel
// update borrows workers from the shared persistent pool internally.
type SLAM struct {
	cfg       Config
	rng       *rand.Rand
	particles []*Particle
	neff      float64
	started   bool
	updates   int

	// Steady-state machinery: the persistent worker pool, the one
	// closure handed to it every tick, and scratch reused across calls
	// so an update allocates nothing beyond COW tile copies.
	pl      *pool.Pool
	runFn   func(w int)
	results []UpdateStats
	ws      []float64   // normalize scratch
	rsW     []float64   // resample weights scratch
	rsUsed  []bool      // resample first-use marks
	rsNext  []*Particle // resample ping-pong particle buffer
	rsFree  []*Particle // released shells reused for duplicates
	cur     struct {    // per-update parameters read by pool workers
		scan       *sensor.Scan
		m, threads int
		part       Partition
		first      bool
	}
}

// New builds the filter with all particles at the origin pose.
func New(cfg Config, rng *rand.Rand) *SLAM {
	if cfg.NumParticles < 1 {
		cfg.NumParticles = 1
	}
	if cfg.BeamSkip < 1 {
		cfg.BeamSkip = 1
	}
	s := &SLAM{cfg: cfg, rng: rng, neff: float64(cfg.NumParticles)}
	for i := 0; i < cfg.NumParticles; i++ {
		s.particles = append(s.particles, &Particle{
			Map: grid.NewLogOdds(cfg.MapW, cfg.MapH, cfg.Resolution, cfg.Origin),
		})
	}
	s.pl = pool.Shared()
	s.runFn = func(w int) { s.results[w] = s.processSpan(w) }
	// Pre-seed the duplicate shells: every resample drops exactly as many
	// particles as it duplicates, so rsFree holds a steady M-1 shells and
	// resampling never allocates — not even the first time.
	proto := s.particles[0].Map
	for i := 1; i < cfg.NumParticles; i++ {
		s.rsFree = append(s.rsFree, &Particle{Map: proto.NewShell()})
	}
	return s
}

// SetInitialPose places all particles at the given pose (the mission
// engine uses the start pose so the SLAM frame matches the world frame).
func (s *SLAM) SetInitialPose(p geom.Pose) {
	for _, pt := range s.particles {
		pt.Pose = p
	}
}

// NumParticles returns M.
func (s *SLAM) NumParticles() int { return len(s.particles) }

// Neff returns the effective sample size after the last update.
func (s *SLAM) Neff() float64 { return s.neff }

// Update runs one filter step serially.
func (s *SLAM) Update(odomDelta geom.Pose, scan *sensor.Scan) UpdateStats {
	return s.update(odomDelta, scan, 1, Block)
}

// Partition selects how particles are split across workers. It is the
// shared pool.Partition scheme: Block assigns each worker a contiguous
// range of particles (Fig. 6), Interleaved strides them (ablation).
type Partition = pool.Partition

const (
	Block       = pool.Block
	Interleaved = pool.Interleaved
)

// UpdateParallel runs one filter step with the scanMatch and map
// integration of the M particles spread over `threads` workers.
func (s *SLAM) UpdateParallel(odomDelta geom.Pose, scan *sensor.Scan, threads int, part Partition) UpdateStats {
	return s.update(odomDelta, scan, threads, part)
}

func (s *SLAM) update(odomDelta geom.Pose, scan *sensor.Scan, threads int, part Partition) UpdateStats {
	var st UpdateStats
	m := len(s.particles)
	if threads < 1 {
		threads = 1
	}
	if threads > m {
		threads = m
	}

	// 1. Motion update with noise, drawn serially for determinism.
	trans := odomDelta.Pos.Norm()
	rot := math.Abs(odomDelta.Theta)
	for _, pt := range s.particles {
		noisy := odomDelta
		noisy.Pos.X += s.rng.NormFloat64() * (s.cfg.TransNoise*trans + 0.001)
		noisy.Pos.Y += s.rng.NormFloat64() * (s.cfg.TransNoise*trans + 0.001)
		noisy.Theta = geom.NormalizeAngle(noisy.Theta +
			s.rng.NormFloat64()*(s.cfg.RotNoise*rot+0.001))
		pt.Pose = pt.Pose.Compose(noisy)
	}

	// 2+5. Scan match and integrate, parallel over particles (Fig. 6),
	// on the persistent pool. Parameters travel through s.cur and per-
	// worker results land in s.results, so the steady state reuses one
	// pre-built closure and allocates nothing.
	if cap(s.results) < threads {
		s.results = make([]UpdateStats, threads)
	}
	s.results = s.results[:threads]
	s.cur.scan, s.cur.m, s.cur.threads, s.cur.part = scan, m, threads, part
	s.cur.first = !s.started
	s.pl.Run(threads, s.runFn)
	s.cur.scan = nil
	for _, r := range s.results {
		st.MatchOps += r.MatchOps
		st.IntegrateOps += r.IntegrateOps
		st.CopyOps += r.CopyOps
	}
	s.started = true
	s.updates++

	// 3. updateTreeWeights: normalize and compute Neff (serial).
	st.WeightOps += s.normalize()

	// 4. Resample when the effective sample size collapses (serial).
	if s.neff < s.cfg.ResampleNeff*float64(m) {
		copied := s.resample()
		st.WeightOps += m
		st.CopyOps += copied
		st.Resampled = true
	}
	return st
}

// processSpan runs scan matching and map integration for worker w's
// particle span. Work is assigned positionally via Partition.Bounds, so
// results are independent of goroutine scheduling. COW tile copies
// triggered by integration are drained into CopyOps per particle.
func (s *SLAM) processSpan(w int) UpdateStats {
	var r UpdateStats
	start, end, step := s.cur.part.Bounds(s.cur.m, s.cur.threads, w)
	for i := start; i < end; i += step {
		pt := s.particles[i]
		if !s.cur.first {
			score, ops := s.scanMatch(pt, s.cur.scan)
			r.MatchOps += ops
			pt.LogWeight += s.cfg.LikelihoodK * score
		}
		r.IntegrateOps += s.integrate(pt, s.cur.scan)
		r.CopyOps += pt.Map.TakeCopied()
	}
	return r
}

// scanMatch hill-climbs the particle pose to maximize the match score of
// the (subsampled) scan against the particle's own map. Returns the final
// score and the number of beam probes performed.
func (s *SLAM) scanMatch(pt *Particle, scan *sensor.Scan) (score float64, ops int) {
	best, n := s.matchScore(pt.Map, pt.Pose, scan)
	ops += n
	step := s.cfg.SearchStep
	astep := s.cfg.AngularStep
	for it := 0; it < s.cfg.MatchIters; it++ {
		improved := false
		for _, d := range [6]geom.Pose{
			{Pos: geom.V(step, 0)}, {Pos: geom.V(-step, 0)},
			{Pos: geom.V(0, step)}, {Pos: geom.V(0, -step)},
			{Theta: astep}, {Theta: -astep},
		} {
			cand := geom.Pose{
				Pos:   pt.Pose.Pos.Add(d.Pos),
				Theta: geom.NormalizeAngle(pt.Pose.Theta + d.Theta),
			}
			sc, n := s.matchScore(pt.Map, cand, scan)
			ops += n
			if sc > best {
				best, pt.Pose, improved = sc, cand, true
			}
		}
		if !improved {
			step /= 2
			astep /= 2
		}
	}
	return best, ops
}

// matchScore evaluates how well the scan, taken from pose, agrees with
// the map: hit endpoints landing on occupied cells score +1 weighted by
// occupancy; endpoints in free space score negatively.
func (s *SLAM) matchScore(m *grid.LogOdds, pose geom.Pose, scan *sensor.Scan) (float64, int) {
	score := 0.0
	ops := 0
	for i := 0; i < scan.NumBeams(); i += s.cfg.BeamSkip {
		if !scan.IsHit(i) {
			continue
		}
		end := scan.Endpoint(pose, i)
		cell := m.WorldToCell(end)
		ops++
		if !m.InBounds(cell) {
			score -= 0.1
			continue
		}
		l := m.At(cell)
		if l == 0 {
			continue // unexplored: neutral
		}
		p := 1 / (1 + math.Exp(-l))
		score += 2*p - 1 // +1 for certain occupied, -1 for certain free
	}
	return score, ops
}

// integrate folds the scan into the particle's map, returning cells
// touched.
func (s *SLAM) integrate(pt *Particle, scan *sensor.Scan) int {
	ops := 0
	for i := 0; i < scan.NumBeams(); i++ {
		theta := pt.Pose.Theta + scan.Bearing(i)
		ops += pt.Map.IntegrateBeam(pt.Pose.Pos, theta, scan.Ranges[i], scan.IsHit(i))
	}
	return ops
}

// normalize rescales log weights and computes Neff. Returns ops.
func (s *SLAM) normalize() int {
	maxLW := math.Inf(-1)
	for _, pt := range s.particles {
		if pt.LogWeight > maxLW {
			maxLW = pt.LogWeight
		}
	}
	sum := 0.0
	if cap(s.ws) < len(s.particles) {
		s.ws = make([]float64, len(s.particles))
	}
	ws := s.ws[:len(s.particles)]
	for i, pt := range s.particles {
		ws[i] = math.Exp(pt.LogWeight - maxLW)
		sum += ws[i]
	}
	neffDen := 0.0
	for i, pt := range s.particles {
		w := ws[i] / sum
		neffDen += w * w
		// Store normalized log weight to avoid drift.
		pt.LogWeight = math.Log(math.Max(w, 1e-300))
	}
	if neffDen > 0 {
		s.neff = 1 / neffDen
	} else {
		s.neff = float64(len(s.particles))
	}
	return 3 * len(s.particles)
}

// resample performs systematic resampling. Duplicated particles get a
// copy-on-write clone of the source map — O(tiles) pointer copies now,
// cell copies deferred to the tiles a future update actually writes.
// Returns the op count for the clone work (tile-table entries shared).
func (s *SLAM) resample() int {
	m := len(s.particles)
	if cap(s.rsW) < m {
		s.rsW = make([]float64, m)
		s.rsUsed = make([]bool, m)
	}
	weights, used := s.rsW[:m], s.rsUsed[:m]
	total := 0.0
	for i, pt := range s.particles {
		weights[i] = math.Exp(pt.LogWeight)
		total += weights[i]
		used[i] = false
	}
	ops := 0
	if cap(s.rsNext) < m {
		s.rsNext = make([]*Particle, 0, m)
	}
	next := s.rsNext[:0]
	u := s.rng.Float64() * total / float64(m)
	cum := 0.0
	idx := 0
	for i := 0; i < m; i++ {
		target := u + float64(i)*total/float64(m)
		for cum+weights[idx] < target && idx < m-1 {
			cum += weights[idx]
			idx++
		}
		src := s.particles[idx]
		if used[idx] {
			// COW clone for duplicates: shares every tile with src. Shells
			// dropped by earlier resamples are reused so the steady state
			// allocates neither particles nor tile tables.
			var cp *Particle
			if n := len(s.rsFree); n > 0 {
				cp, s.rsFree[n-1] = s.rsFree[n-1], nil
				s.rsFree = s.rsFree[:n-1]
				src.Map.CloneInto(cp.Map)
				cp.Pose, cp.LogWeight = src.Pose, 0
			} else {
				cp = &Particle{Pose: src.Pose, Map: src.Map.Clone()}
			}
			ops += src.Map.TileCount()
			next = append(next, cp)
		} else {
			used[idx] = true
			src.LogWeight = 0
			next = append(next, src)
		}
	}
	for _, pt := range next {
		pt.LogWeight = 0
	}
	// Dropped particles (never selected) release their maps — tiles they
	// owned exclusively return to the free list for upcoming COW copies —
	// and their shells queue up for the next resample's duplicates.
	for i, pt := range s.particles {
		if !used[i] {
			pt.Map.Release()
			s.rsFree = append(s.rsFree, pt)
		}
	}
	// Ping-pong the particle slices: the old backing array becomes the
	// next resample's scratch, cleared so dropped particles' maps are
	// released to the GC rather than pinned by stale pointers.
	old := s.particles
	s.particles = next
	for i := range old {
		old[i] = nil
	}
	s.rsNext = old[:0]
	return ops
}

// bestIndex returns the particle with the highest weight.
func (s *SLAM) bestIndex() int {
	best, bi := math.Inf(-1), 0
	for i, pt := range s.particles {
		if pt.LogWeight > best {
			best, bi = pt.LogWeight, i
		}
	}
	return bi
}

// BestPose returns the pose estimate of the highest-weight particle.
func (s *SLAM) BestPose() geom.Pose { return s.particles[s.bestIndex()].Pose }

// MeanPose returns the weighted mean pose (linear part; circular mean for
// heading).
func (s *SLAM) MeanPose() geom.Pose {
	var x, y, sinSum, cosSum, wsum float64
	for _, pt := range s.particles {
		w := math.Exp(pt.LogWeight)
		x += w * pt.Pose.Pos.X
		y += w * pt.Pose.Pos.Y
		sinSum += w * math.Sin(pt.Pose.Theta)
		cosSum += w * math.Cos(pt.Pose.Theta)
		wsum += w
	}
	if wsum == 0 {
		return s.BestPose()
	}
	return geom.P(x/wsum, y/wsum, math.Atan2(sinSum, cosSum))
}

// Map returns the best particle's map thresholded into a ternary
// occupancy grid.
func (s *SLAM) Map() *grid.Map {
	return s.particles[s.bestIndex()].Map.ToMap(0.25, 0.65)
}

// Updates returns the number of filter updates performed.
func (s *SLAM) Updates() int { return s.updates }
