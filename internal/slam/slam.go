// Package slam implements the Localization(SLAM) node for the unknown-map
// workload: a Rao-Blackwellized particle filter in the style of GMapping
// (Grisetti et al.), the algorithm the paper offloads and accelerates.
// Each particle carries a pose hypothesis and its own occupancy grid map;
// an update applies the odometry motion model, refines each particle's
// pose by hill-climbing scan matching against its map (the scanMatch
// function that consumes 98% of SLAM time in the paper's measurement),
// reweights and normalizes (updateTreeWeights), resamples when the
// effective sample size collapses, and integrates the scan into each
// surviving particle's map.
//
// UpdateParallel is the paper's Fig. 6 algorithm: a pool of N workers
// each scan-matches M/N particles. The workers are persistent (see
// internal/pool) — pinned goroutines reused across control ticks rather
// than spawned per update — and work is assigned positionally, so the
// parallel filter produces byte-identical results to the serial one for
// any thread count (all randomness is drawn serially before the parallel
// section).
package slam

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/pool"
	"lgvoffload/internal/sensor"
)

// Config parameterizes the filter.
type Config struct {
	NumParticles int

	// Map geometry for every particle's occupancy grid.
	MapW, MapH int
	Resolution float64
	Origin     geom.Vec2

	// Motion model noise (stddev per meter / radian of commanded motion).
	TransNoise float64
	RotNoise   float64

	// Scan matching.
	MatchIters   int     // hill-climbing refinement rounds
	SearchStep   float64 // initial translational step, m
	AngularStep  float64 // initial rotational step, rad
	BeamSkip     int     // match every k-th beam
	LikelihoodK  float64 // weight gain applied to match scores
	ResampleNeff float64 // resample when Neff/N drops below this
}

// DefaultConfig returns a configuration for the given map geometry with
// the paper's default particle count (30, the gmapping default).
func DefaultConfig(w, h int, res float64, origin geom.Vec2) Config {
	return Config{
		NumParticles: 30,
		MapW:         w, MapH: h, Resolution: res, Origin: origin,
		TransNoise: 0.05, RotNoise: 0.05,
		MatchIters: 5, SearchStep: 0.05, AngularStep: 0.03,
		BeamSkip: 4, LikelihoodK: 0.5, ResampleNeff: 0.5,
	}
}

// Particle is one pose-and-map hypothesis.
type Particle struct {
	Pose      geom.Pose
	LogWeight float64
	Map       *grid.LogOdds
}

// UpdateStats reports the work done by one filter update, in abstract
// operations that the engine converts to cycles.
type UpdateStats struct {
	MatchOps     int // beam probes during scan matching (parallel section)
	IntegrateOps int // map cells updated (parallel section)
	WeightOps    int // per-particle normalization/resampling work (serial)
	// CopyOps is map-copy work: tile-table entries shared when resampling
	// clones a duplicate, plus cells actually duplicated when a write
	// copy-on-writes a shared tile. With COW maps this is O(dirty tiles),
	// not O(M · map) as the pre-COW deep copies were.
	CopyOps   int
	Resampled bool
}

// SLAM is the filter state. Not safe for concurrent use; the parallel
// update borrows workers from the shared persistent pool internally.
type SLAM struct {
	cfg       Config
	rng       *rand.Rand
	particles []*Particle
	neff      float64
	started   bool
	updates   int

	// Steady-state machinery: the persistent worker pool, the one
	// closure handed to it every tick, and scratch reused across calls
	// so an update allocates nothing beyond COW tile copies.
	pl      *pool.Pool
	runFn   func(w int)
	results []UpdateStats
	ws      []float64   // normalize scratch
	linW    []float64   // linear normalized weights (exp(LogWeight), kept in sync)
	rsW     []float64   // resample weights scratch
	rsUsed  []bool      // resample first-use marks
	rsNext  []*Particle // resample ping-pong particle buffer
	rsFree  []*Particle // released shells reused for duplicates

	// Scan-match scratch: the per-scan trig table (filled serially once
	// per update, read by all workers) and per-particle staging for the
	// span-batched base-score pass. Workers write only their own
	// particles' slots, so the slices are shared race-free.
	tab    sensor.Table
	baseSc []float64 // base match score per particle
	pSin   []float64 // sin/cos of each particle's heading, cached per tick
	pCos   []float64
	cur    struct { // per-update parameters read by pool workers
		m, threads int
		part       Partition
		first      bool
	}
}

// New builds the filter with all particles at the origin pose.
func New(cfg Config, rng *rand.Rand) *SLAM {
	if cfg.NumParticles < 1 {
		cfg.NumParticles = 1
	}
	if cfg.BeamSkip < 1 {
		cfg.BeamSkip = 1
	}
	s := &SLAM{cfg: cfg, rng: rng, neff: float64(cfg.NumParticles)}
	for i := 0; i < cfg.NumParticles; i++ {
		s.particles = append(s.particles, &Particle{
			Map: grid.NewLogOdds(cfg.MapW, cfg.MapH, cfg.Resolution, cfg.Origin),
		})
	}
	s.linW = make([]float64, cfg.NumParticles)
	for i := range s.linW {
		s.linW[i] = 1 // exp(LogWeight) with all log weights zero
	}
	s.baseSc = make([]float64, cfg.NumParticles)
	s.pSin = make([]float64, cfg.NumParticles)
	s.pCos = make([]float64, cfg.NumParticles)
	s.pl = pool.Shared()
	s.runFn = func(w int) { s.results[w] = s.processSpan(w) }
	// Pre-seed the duplicate shells: every resample drops exactly as many
	// particles as it duplicates, so rsFree holds a steady M-1 shells and
	// resampling never allocates — not even the first time.
	proto := s.particles[0].Map
	for i := 1; i < cfg.NumParticles; i++ {
		s.rsFree = append(s.rsFree, &Particle{Map: proto.NewShell()})
	}
	return s
}

// SetInitialPose places all particles at the given pose (the mission
// engine uses the start pose so the SLAM frame matches the world frame).
func (s *SLAM) SetInitialPose(p geom.Pose) {
	for _, pt := range s.particles {
		pt.Pose = p
	}
}

// NumParticles returns M.
func (s *SLAM) NumParticles() int { return len(s.particles) }

// Neff returns the effective sample size after the last update.
func (s *SLAM) Neff() float64 { return s.neff }

// Update runs one filter step serially.
func (s *SLAM) Update(odomDelta geom.Pose, scan *sensor.Scan) UpdateStats {
	return s.update(odomDelta, scan, 1, Block)
}

// Partition selects how particles are split across workers. It is the
// shared pool.Partition scheme: Block assigns each worker a contiguous
// range of particles (Fig. 6), Interleaved strides them (ablation).
type Partition = pool.Partition

const (
	Block       = pool.Block
	Interleaved = pool.Interleaved
)

// UpdateParallel runs one filter step with the scanMatch and map
// integration of the M particles spread over `threads` workers.
func (s *SLAM) UpdateParallel(odomDelta geom.Pose, scan *sensor.Scan, threads int, part Partition) UpdateStats {
	return s.update(odomDelta, scan, threads, part)
}

func (s *SLAM) update(odomDelta geom.Pose, scan *sensor.Scan, threads int, part Partition) UpdateStats {
	var st UpdateStats
	m := len(s.particles)
	if threads < 1 {
		threads = 1
	}
	if threads > m {
		threads = m
	}

	// 1. Motion update with noise, drawn serially for determinism.
	trans := odomDelta.Pos.Norm()
	rot := math.Abs(odomDelta.Theta)
	for _, pt := range s.particles {
		noisy := odomDelta
		noisy.Pos.X += s.rng.NormFloat64() * (s.cfg.TransNoise*trans + 0.001)
		noisy.Pos.Y += s.rng.NormFloat64() * (s.cfg.TransNoise*trans + 0.001)
		noisy.Theta = geom.NormalizeAngle(noisy.Theta +
			s.rng.NormFloat64()*(s.cfg.RotNoise*rot+0.001))
		pt.Pose = pt.Pose.Compose(noisy)
	}

	// 2+5. Scan match and integrate, parallel over particles (Fig. 6),
	// on the persistent pool. The per-scan trig table is filled serially
	// here, then read by every worker; parameters travel through s.cur
	// and per-worker results land in s.results, so the steady state
	// reuses one pre-built closure and allocates nothing.
	s.tab.Fill(scan)
	if cap(s.results) < threads {
		s.results = make([]UpdateStats, threads)
	}
	s.results = s.results[:threads]
	s.cur.m, s.cur.threads, s.cur.part = m, threads, part
	s.cur.first = !s.started
	s.pl.Run(threads, s.runFn)
	for _, r := range s.results {
		st.MatchOps += r.MatchOps
		st.IntegrateOps += r.IntegrateOps
		st.CopyOps += r.CopyOps
	}
	s.started = true
	s.updates++

	// 3. updateTreeWeights: normalize and compute Neff (serial).
	st.WeightOps += s.normalize()

	// 4. Resample when the effective sample size collapses (serial).
	if s.neff < s.cfg.ResampleNeff*float64(m) {
		copied := s.resample()
		st.WeightOps += m
		st.CopyOps += copied
		st.Resampled = true
	}
	return st
}

// processSpan runs scan matching and map integration for worker w's
// particle span. Work is assigned positionally via Partition.Bounds, so
// results are independent of goroutine scheduling. The base score of
// every particle in the span is computed in a single traversal of the
// scan (the multi-particle batch), then each particle hill-climbs from
// it; COW isolation makes the match-then-integrate reordering safe —
// reads of one particle's map are never affected by writes to another's.
// COW tile copies triggered by integration are drained into CopyOps per
// particle.
func (s *SLAM) processSpan(w int) UpdateStats {
	var r UpdateStats
	start, end, step := s.cur.part.Bounds(s.cur.m, s.cur.threads, w)
	if !s.cur.first {
		r.MatchOps += s.matchScoreSpan(start, end, step)
		for i := start; i < end; i += step {
			pt := s.particles[i]
			score, ops := s.hillClimb(pt, s.baseSc[i])
			r.MatchOps += ops
			pt.LogWeight += s.cfg.LikelihoodK * score
		}
	}
	for i := start; i < end; i += step {
		pt := s.particles[i]
		r.IntegrateOps += s.integrate(pt)
		r.CopyOps += pt.Map.TakeCopied()
	}
	return r
}

// matchScoreSpan computes the at-pose match score of every particle in
// the span against one traversal of the scan, staging results in
// s.baseSc (and each particle's heading trig in s.pSin/s.pCos). Scores
// accumulate in beam order per particle, so the result is bit-equal to
// scoring each particle independently. Returns beam probes performed.
func (s *SLAM) matchScoreSpan(start, end, step int) int {
	tab := &s.tab
	for i := start; i < end; i += step {
		s.pSin[i], s.pCos[i] = math.Sincos(s.particles[i].Pose.Theta)
		s.baseSc[i] = 0
	}
	ops := 0
	for b := 0; b < tab.N(); b += s.cfg.BeamSkip {
		if !tab.Hit[b] {
			continue
		}
		lx, ly := tab.LX[b], tab.LY[b]
		for i := start; i < end; i += step {
			pt := s.particles[i]
			m := pt.Map
			ep := geom.Vec2{
				X: pt.Pose.Pos.X + (s.pCos[i]*lx - s.pSin[i]*ly),
				Y: pt.Pose.Pos.Y + (s.pSin[i]*lx + s.pCos[i]*ly),
			}
			cell := m.WorldToCell(ep)
			ops++
			if !m.InBounds(cell) {
				s.baseSc[i] -= 0.1
				continue
			}
			// grid.Score is the shared logistic LUT in 2p−1 form: +1 for
			// certain occupied, −1 for certain free, exactly 0 for
			// untouched — the "unexplored is neutral" rule without a
			// branch.
			s.baseSc[i] += grid.Score(m.AtQ(cell))
		}
	}
	return ops
}

// hillClimb refines the particle pose to maximize the match score of the
// (subsampled) scan against the particle's own map, starting from the
// already-computed at-pose score. Each round scores all six candidate
// moves in one traversal of the scan and takes the best (steepest
// ascent); when no move improves, the step sizes halve. Returns the
// final score and the number of beam probes performed.
func (s *SLAM) hillClimb(pt *Particle, base float64) (score float64, ops int) {
	best := base
	step := s.cfg.SearchStep
	astep := s.cfg.AngularStep
	var cands [6]geom.Pose
	var sin6, cos6, scores [6]float64
	for it := 0; it < s.cfg.MatchIters; it++ {
		p := pt.Pose
		sinT, cosT := math.Sincos(p.Theta)
		thp := geom.NormalizeAngle(p.Theta + astep)
		thm := geom.NormalizeAngle(p.Theta - astep)
		cands = [6]geom.Pose{
			{Pos: geom.V(p.Pos.X+step, p.Pos.Y), Theta: p.Theta},
			{Pos: geom.V(p.Pos.X-step, p.Pos.Y), Theta: p.Theta},
			{Pos: geom.V(p.Pos.X, p.Pos.Y+step), Theta: p.Theta},
			{Pos: geom.V(p.Pos.X, p.Pos.Y-step), Theta: p.Theta},
			{Pos: p.Pos, Theta: thp},
			{Pos: p.Pos, Theta: thm},
		}
		sin6[0], cos6[0] = sinT, cosT
		sin6[1], cos6[1] = sinT, cosT
		sin6[2], cos6[2] = sinT, cosT
		sin6[3], cos6[3] = sinT, cosT
		sin6[4], cos6[4] = math.Sincos(thp)
		sin6[5], cos6[5] = math.Sincos(thm)
		ops += s.matchScoreBatch(pt.Map, &cands, &sin6, &cos6, &scores)
		improved := false
		for k := range cands {
			if scores[k] > best {
				best, pt.Pose, improved = scores[k], cands[k], true
			}
		}
		if !improved {
			step /= 2
			astep /= 2
		}
	}
	return best, ops
}

// matchScoreBatch scores all six candidate poses of one particle against
// a single traversal of the scan: per hit beam, the shared robot-frame
// endpoint is rotated by each candidate's cached heading trig and probed
// against the map through the fixed-point score LUT. Per-candidate
// accumulation stays in beam order, so each score is bit-equal to an
// independent pass.
func (s *SLAM) matchScoreBatch(m *grid.LogOdds, cands *[6]geom.Pose, sin6, cos6 *[6]float64, out *[6]float64) int {
	tab := &s.tab
	for k := range out {
		out[k] = 0
	}
	ops := 0
	for b := 0; b < tab.N(); b += s.cfg.BeamSkip {
		if !tab.Hit[b] {
			continue
		}
		lx, ly := tab.LX[b], tab.LY[b]
		for k := 0; k < 6; k++ {
			end := geom.Vec2{
				X: cands[k].Pos.X + (cos6[k]*lx - sin6[k]*ly),
				Y: cands[k].Pos.Y + (sin6[k]*lx + cos6[k]*ly),
			}
			cell := m.WorldToCell(end)
			if !m.InBounds(cell) {
				out[k] -= 0.1
				continue
			}
			out[k] += grid.Score(m.AtQ(cell))
		}
		ops += 6
	}
	return ops
}

// integrate folds the scan into the particle's map via the per-scan trig
// table (one Sincos for the particle heading, two FMAs per beam),
// returning cells touched.
func (s *SLAM) integrate(pt *Particle) int {
	tab := &s.tab
	sinT, cosT := math.Sincos(pt.Pose.Theta)
	pos := pt.Pose.Pos
	ops := 0
	for i := 0; i < tab.N(); i++ {
		ops += pt.Map.IntegrateBeamTo(pos, tab.Endpoint(pos, sinT, cosT, i), tab.Hit[i])
	}
	return ops
}

// normalize rescales log weights and computes Neff. The linear
// normalized weights are staged in s.linW, so the resampling and
// pose-mean paths reuse them instead of re-deriving math.Exp from the
// stored log weights. Returns ops.
func (s *SLAM) normalize() int {
	maxLW := math.Inf(-1)
	for _, pt := range s.particles {
		if pt.LogWeight > maxLW {
			maxLW = pt.LogWeight
		}
	}
	sum := 0.0
	if cap(s.ws) < len(s.particles) {
		s.ws = make([]float64, len(s.particles))
	}
	ws := s.ws[:len(s.particles)]
	for i, pt := range s.particles {
		ws[i] = math.Exp(pt.LogWeight - maxLW)
		sum += ws[i]
	}
	neffDen := 0.0
	for i, pt := range s.particles {
		w := math.Max(ws[i]/sum, 1e-300) // floor keeps resample totals nonzero
		neffDen += w * w
		s.linW[i] = w
		// Store normalized log weight to avoid drift.
		pt.LogWeight = math.Log(w)
	}
	if neffDen > 0 {
		s.neff = 1 / neffDen
	} else {
		s.neff = float64(len(s.particles))
	}
	return 3 * len(s.particles)
}

// resample performs systematic resampling. Duplicated particles get a
// copy-on-write clone of the source map — O(tiles) pointer copies now,
// cell copies deferred to the tiles a future update actually writes.
// Returns the op count for the clone work (tile-table entries shared).
func (s *SLAM) resample() int {
	m := len(s.particles)
	if cap(s.rsW) < m {
		s.rsW = make([]float64, m)
		s.rsUsed = make([]bool, m)
	}
	weights, used := s.rsW[:m], s.rsUsed[:m]
	total := 0.0
	for i := range s.particles {
		// The linear weights were already computed by normalize; reuse
		// them instead of exponentiating the stored log weights again.
		weights[i] = s.linW[i]
		total += weights[i]
		used[i] = false
	}
	ops := 0
	if cap(s.rsNext) < m {
		s.rsNext = make([]*Particle, 0, m)
	}
	next := s.rsNext[:0]
	u := s.rng.Float64() * total / float64(m)
	cum := 0.0
	idx := 0
	for i := 0; i < m; i++ {
		target := u + float64(i)*total/float64(m)
		for cum+weights[idx] < target && idx < m-1 {
			cum += weights[idx]
			idx++
		}
		src := s.particles[idx]
		if used[idx] {
			// COW clone for duplicates: shares every tile with src. Shells
			// dropped by earlier resamples are reused so the steady state
			// allocates neither particles nor tile tables.
			var cp *Particle
			if n := len(s.rsFree); n > 0 {
				cp, s.rsFree[n-1] = s.rsFree[n-1], nil
				s.rsFree = s.rsFree[:n-1]
				src.Map.CloneInto(cp.Map)
				cp.Pose, cp.LogWeight = src.Pose, 0
			} else {
				cp = &Particle{Pose: src.Pose, Map: src.Map.Clone()}
			}
			ops += src.Map.TileCount()
			next = append(next, cp)
		} else {
			used[idx] = true
			src.LogWeight = 0
			next = append(next, src)
		}
	}
	for i, pt := range next {
		pt.LogWeight = 0
		s.linW[i] = 1
	}
	// Dropped particles (never selected) release their maps — tiles they
	// owned exclusively return to the free list for upcoming COW copies —
	// and their shells queue up for the next resample's duplicates.
	for i, pt := range s.particles {
		if !used[i] {
			pt.Map.Release()
			s.rsFree = append(s.rsFree, pt)
		}
	}
	// Ping-pong the particle slices: the old backing array becomes the
	// next resample's scratch, cleared so dropped particles' maps are
	// released to the GC rather than pinned by stale pointers.
	old := s.particles
	s.particles = next
	for i := range old {
		old[i] = nil
	}
	s.rsNext = old[:0]
	return ops
}

// bestIndex returns the particle with the highest weight.
func (s *SLAM) bestIndex() int {
	best, bi := math.Inf(-1), 0
	for i, pt := range s.particles {
		if pt.LogWeight > best {
			best, bi = pt.LogWeight, i
		}
	}
	return bi
}

// BestPose returns the pose estimate of the highest-weight particle.
func (s *SLAM) BestPose() geom.Pose { return s.particles[s.bestIndex()].Pose }

// MeanPose returns the weighted mean pose (linear part; circular mean for
// heading). Weights come from the linear slice maintained by
// normalize/resample — no math.Exp per particle.
func (s *SLAM) MeanPose() geom.Pose {
	var x, y, sinSum, cosSum, wsum float64
	for i, pt := range s.particles {
		w := s.linW[i]
		x += w * pt.Pose.Pos.X
		y += w * pt.Pose.Pos.Y
		sinSum += w * math.Sin(pt.Pose.Theta)
		cosSum += w * math.Cos(pt.Pose.Theta)
		wsum += w
	}
	if wsum == 0 {
		return s.BestPose()
	}
	return geom.P(x/wsum, y/wsum, math.Atan2(sinSum, cosSum))
}

// Map returns the best particle's map thresholded into a ternary
// occupancy grid.
func (s *SLAM) Map() *grid.Map {
	return s.particles[s.bestIndex()].Map.ToMap(0.25, 0.65)
}

// Updates returns the number of filter updates performed.
func (s *SLAM) Updates() int { return s.updates }
