// Package bag implements a rosbag-style record/replay log: a stream of
// (timestamp, topic, message) records in the wire encoding, written
// through any io.Writer. Bags let experiments capture a sensor stream
// once and replay it deterministically — the same role the paper's
// Intel Research Lab logs play for its cloud-acceleration benchmarks.
//
// Format: a magic line, then length-prefixed records, each encoding
// {stamp float64, topic string, frame bytes} where frame is a
// wire.EncodeFrame of the message. The magic doubles as the header
// version marker: "LGVBAG1\n" bags carry wire.HeaderV1 frames (before
// the trace context landed in msg.Header), "LGVBAG2\n" the current
// encoding; the reader accepts both and decodes accordingly.
package bag

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"lgvoffload/internal/wire"
)

// Magic identifies a bag stream written by this build (header v2).
// MagicV1 is the pre-tracing format, still accepted for reading.
const (
	Magic   = "LGVBAG2\n"
	MagicV1 = "LGVBAG1\n"
)

// ErrBadMagic means the stream is not a bag.
var ErrBadMagic = errors.New("bag: bad magic")

// Writer appends records to a stream.
type Writer struct {
	bw    *bufio.Writer
	count int
	err   error
}

// NewWriter writes the header and returns a writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(stamp float64, topic string, m wire.Message) error {
	if w.err != nil {
		return w.err
	}
	enc := wire.GetEncoder()
	defer wire.PutEncoder(enc)
	enc.Float64(stamp)
	enc.String(topic)
	fr := wire.GetEncoder()
	wire.EncodeFrameTo(fr, m)
	enc.BytesField(fr.Bytes())
	wire.PutEncoder(fr)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(enc.Len()))
	if _, err := w.bw.Write(lenBuf[:n]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(enc.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() int { return w.count }

// Flush commits buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Record is one replayed entry.
type Record struct {
	Stamp float64
	Topic string
	Msg   wire.Message
}

// Reader replays a bag stream.
type Reader struct {
	br     *bufio.Reader
	hdrVer int
}

// NewReader validates the header and returns a reader. Both the current
// and the v1 magic are accepted; the per-frame header version follows
// from it.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("bag: reading magic: %w", err)
	}
	switch string(head) {
	case Magic:
		return &Reader{br: br, hdrVer: wire.HeaderVersion}, nil
	case MagicV1:
		return &Reader{br: br, hdrVer: wire.HeaderV1}, nil
	}
	return nil, ErrBadMagic
}

// HeaderVersion reports the wire header version of the stream's frames.
func (r *Reader) HeaderVersion() int { return r.hdrVer }

// Next returns the next record, or io.EOF at the end of the stream.
func (r *Reader) Next() (Record, error) {
	size, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("bag: record length: %w", err)
	}
	if size > 1<<24 {
		return Record{}, fmt.Errorf("bag: implausible record size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Record{}, fmt.Errorf("bag: truncated record: %w", err)
	}
	dec := wire.NewDecoder(buf)
	rec := Record{Stamp: dec.Float64(), Topic: dec.String()}
	frame := dec.BytesField()
	if dec.Err() != nil {
		return Record{}, fmt.Errorf("bag: corrupt record: %w", dec.Err())
	}
	m, err := wire.DecodeFrameVersion(frame, r.hdrVer)
	if err != nil {
		return Record{}, fmt.Errorf("bag: record payload: %w", err)
	}
	rec.Msg = m
	return rec, nil
}

// ReadAll drains the stream into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	br, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := br.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Stats summarizes a bag: record counts per topic and the time span.
type Stats struct {
	Records  int
	Topics   map[string]int
	Start    float64
	End      float64
	Duration float64
}

// Summarize computes stats over records.
func Summarize(recs []Record) Stats {
	st := Stats{Topics: make(map[string]int)}
	for i, r := range recs {
		st.Records++
		st.Topics[r.Topic]++
		if i == 0 || r.Stamp < st.Start {
			st.Start = r.Stamp
		}
		if r.Stamp > st.End {
			st.End = r.Stamp
		}
	}
	st.Duration = st.End - st.Start
	return st
}

// TopicNames returns the topic names sorted.
func (s Stats) TopicNames() []string {
	names := make([]string, 0, len(s.Topics))
	for n := range s.Topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
