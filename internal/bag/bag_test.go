package bag

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"lgvoffload/internal/msg"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(0.1, "cmd", &msg.Twist{Header: msg.Header{Seq: 1}, V: 0.2})
	w.Write(0.2, "pose", &msg.Pose{Header: msg.Header{Seq: 2}, X: 1, Y: 2})
	w.Write(0.3, "cmd", &msg.Twist{Header: msg.Header{Seq: 3}, V: 0.3})
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Topic != "cmd" || recs[0].Stamp != 0.1 {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if tw, ok := recs[2].Msg.(*msg.Twist); !ok || tw.V != 0.3 {
		t.Errorf("rec2 payload = %#v", recs[2].Msg)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTABAG!\nxxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short stream should error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(1, "t", &msg.Twist{})
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record should hard-fail, got %v", err)
	}
}

func TestEmptyBag(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty bag: %v %v", recs, err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Stamp: 1.0, Topic: "a"},
		{Stamp: 3.0, Topic: "b"},
		{Stamp: 2.0, Topic: "a"},
	}
	st := Summarize(recs)
	if st.Records != 3 || st.Topics["a"] != 2 || st.Topics["b"] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Start != 1 || st.End != 3 || st.Duration != 2 {
		t.Errorf("span = %+v", st)
	}
	names := st.TopicNames()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
}

func TestImplausibleSizeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	// A record claiming 1 GB.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("hostile record size must be rejected")
	}
}
