package bag

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lgvoffload/internal/msg"
	"lgvoffload/internal/wire"
)

// encodeV1Frame hand-rolls a pre-tracing (header v1) Twist frame: kind
// uvarint, then Seq/Stamp/SentAt with NO trace-context uvarints. This is
// byte-for-byte what builds before the v2 header wrote, so the test is a
// fixture against the archived format, not against today's encoder.
func encodeV1Frame(seq uint64, stamp, sentAt, v, w float64) []byte {
	e := wire.NewEncoder(64)
	e.Uvarint(uint64(msg.KindTwist))
	e.Uvarint(seq)
	e.Float64(stamp)
	e.Float64(sentAt)
	e.Float64(v)
	e.Float64(w)
	return e.Bytes()
}

// writeV1Bag hand-rolls a v1 bag container around the given frames.
func writeV1Bag(stamps []float64, topics []string, frames [][]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(MagicV1)
	for i, frame := range frames {
		e := wire.NewEncoder(64)
		e.Float64(stamps[i])
		e.String(topics[i])
		e.BytesField(frame)
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(e.Len()))
		buf.Write(lenBuf[:n])
		buf.Write(e.Bytes())
	}
	return buf.Bytes()
}

// TestV1BagStillLoads is the backward-compatibility satellite: bags
// recorded before the trace context landed in msg.Header must keep
// replaying, with every pre-existing field intact and the new trace
// fields zero.
func TestV1BagStillLoads(t *testing.T) {
	data := writeV1Bag(
		[]float64{0.1, 0.3},
		[]string{"cmd_vel", "cmd_vel"},
		[][]byte{
			encodeV1Frame(1, 0.1, 0.11, 0.5, -0.2),
			encodeV1Frame(2, 0.3, 0.31, 0.6, 0.1),
		})

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.HeaderVersion() != wire.HeaderV1 {
		t.Fatalf("header version = %d, want %d", r.HeaderVersion(), wire.HeaderV1)
	}
	recs, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	tw := recs[1].Msg.(*msg.Twist)
	if tw.Seq != 2 || tw.Stamp != 0.3 || tw.SentAt != 0.31 || tw.V != 0.6 || tw.W != 0.1 {
		t.Errorf("v1 fields corrupted: %+v", tw)
	}
	if tw.TraceID != 0 || tw.ParentSpan != 0 {
		t.Errorf("v1 frame decoded with nonzero trace context: %+v", tw.Header)
	}
}

// TestV2RoundTripCarriesTraceContext checks the current container
// round-trips the new header fields.
func TestV2RoundTripCarriesTraceContext(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tw := &msg.Twist{V: 0.5}
	tw.Seq, tw.Stamp, tw.SentAt = 3, 1.0, 1.01
	tw.TraceID, tw.ParentSpan = 99, 100
	if err := w.Write(1.0, "cmd_vel", tw); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.HeaderVersion() != wire.HeaderVersion {
		t.Fatalf("header version = %d, want %d", r.HeaderVersion(), wire.HeaderVersion)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := rec.Msg.(*msg.Twist)
	if got.TraceID != 99 || got.ParentSpan != 100 {
		t.Errorf("trace context lost in v2 bag: %+v", got.Header)
	}
	if got.Seq != 3 || got.V != 0.5 {
		t.Errorf("payload corrupted: %+v", got)
	}
}

// TestV1FrameMatchesCurrentMinusTrace pins the relationship between the
// two encodings: a current frame of an untraced message is exactly the
// v1 frame plus two zero uvarint bytes, inserted after the v1 header.
func TestV1FrameMatchesCurrentMinusTrace(t *testing.T) {
	tw := &msg.Twist{V: 0.5, W: -0.2}
	tw.Seq, tw.Stamp, tw.SentAt = 1, 0.1, 0.11
	cur := wire.EncodeFrame(tw)
	v1 := encodeV1Frame(1, 0.1, 0.11, 0.5, -0.2)
	if len(cur) != len(v1)+2 {
		t.Fatalf("v2 frame %dB, v1 %dB: expected exactly +2 bytes", len(cur), len(v1))
	}
	// v1 prefix: kind + Seq uvarints and the two header floats.
	split := len(v1) - 16 // payload = V, W floats
	if !bytes.Equal(cur[:split], v1[:split]) {
		t.Error("header prefix diverged from the v1 layout")
	}
	if !bytes.Equal(cur[split+2:], v1[split:]) {
		t.Error("payload bytes shifted incorrectly")
	}
	if cur[split] != 0 || cur[split+1] != 0 {
		t.Errorf("trace uvarints = %v, want two zero bytes", cur[split:split+2])
	}
}
