// Package faults implements deterministic fault injection for the
// wireless link and the remote server: a virtual-time schedule of
// failure windows — WAP blackouts, server crash/restart intervals,
// burst loss, payload corruption, one-way partitions — that composes
// with netsim.Link through the Impairment hook. The paper's §VI argues
// the whole point of real-time adjustment is surviving a degrading
// network; this package lets missions script the degradation so the
// watchdog/failover machinery can be exercised reproducibly: no wall
// clock, no global rand, same seed + schedule → identical disturbances.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
)

// Kind enumerates the failure domains the schedule can inject.
type Kind int

const (
	// WAPOutage blacks the access point out: the effective signal is
	// forced to zero for the window, so every packet in either direction
	// is lost and the kernel buffer stops draining.
	WAPOutage Kind = iota
	// ServerCrash takes the remote host down: packets to and from it are
	// discarded for the window (the server "restarts" when it closes).
	ServerCrash
	// BurstLoss drops each packet with probability P for the window,
	// uncorrelated with signal or heading — a contention burst.
	BurstLoss
	// Corruption flips bits in transit: each packet is corrupted with
	// probability P and discarded by the receiver's decoder.
	Corruption
	// PartitionUp blackholes the uplink only (the robot can hear the
	// server but not reach it).
	PartitionUp
	// PartitionDown blackholes the downlink only (the server hears
	// scans but its commands never come back).
	PartitionDown
)

func (k Kind) String() string {
	switch k {
	case WAPOutage:
		return "wap_outage"
	case ServerCrash:
		return "server_crash"
	case BurstLoss:
		return "burst_loss"
	case Corruption:
		return "corruption"
	case PartitionUp:
		return "partition_up"
	case PartitionDown:
		return "partition_down"
	default:
		return "unknown"
	}
}

// Window is one scheduled failure interval [T0, T1) in virtual time.
type Window struct {
	Kind   Kind
	T0, T1 float64
	// P is the per-packet probability for BurstLoss and Corruption
	// (ignored by the deterministic kinds; 0 means 1.0 — total).
	P float64
}

func (w Window) active(now float64) bool { return now >= w.T0 && now < w.T1 }

func (w Window) prob() float64 {
	if w.P <= 0 || w.P > 1 {
		return 1
	}
	return w.P
}

// Config is a declarative fault schedule.
type Config struct {
	Windows []Window
}

// Validate rejects malformed windows: negative start times, zero or
// negative lengths, unknown kinds, and same-kind windows that overlap
// (two overlapping outages are one longer outage — a schedule that
// encodes them separately is almost certainly a spec typo, and the
// injected-count accounting would double-bill the overlap).
func (c Config) Validate() error {
	for i, w := range c.Windows {
		if w.T0 < 0 {
			return fmt.Errorf("faults: window %d [%g, %g) starts before t=0", i, w.T0, w.T1)
		}
		if w.T1 <= w.T0 {
			return fmt.Errorf("faults: window %d [%g, %g) has zero or negative length", i, w.T0, w.T1)
		}
		if w.Kind < WAPOutage || w.Kind > PartitionDown {
			return fmt.Errorf("faults: window %d has unknown kind %d", i, w.Kind)
		}
		for j := 0; j < i; j++ {
			prev := c.Windows[j]
			// Half-open intervals: [a, b) and [b, c) do not overlap.
			if prev.Kind == w.Kind && w.T0 < prev.T1 && prev.T0 < w.T1 {
				return fmt.Errorf("faults: %s windows %d [%g, %g) and %d [%g, %g) overlap — merge them",
					w.Kind, j, prev.T0, prev.T1, i, w.T0, w.T1)
			}
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing.
func (c Config) Empty() bool { return len(c.Windows) == 0 }

// ParseSpec parses the compact CLI syntax used by `lgvsim -faults`:
// semicolon- or comma-separated windows of the form `kind:t0-t1[:p]`,
// e.g. "wap:10-20;server:30-45;burst:50-52:0.9;corrupt:60-70:0.5;
// partup:80-90;partdown:95-100". Times are seconds of virtual time.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	split := func(r rune) bool { return r == ';' || r == ',' }
	for _, part := range strings.FieldsFunc(spec, split) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return cfg, fmt.Errorf("faults: bad window %q (want kind:t0-t1[:p])", part)
		}
		var w Window
		switch fields[0] {
		case "wap":
			w.Kind = WAPOutage
		case "server":
			w.Kind = ServerCrash
		case "burst":
			w.Kind = BurstLoss
		case "corrupt":
			w.Kind = Corruption
		case "partup":
			w.Kind = PartitionUp
		case "partdown":
			w.Kind = PartitionDown
		default:
			return cfg, fmt.Errorf("faults: unknown kind %q in %q", fields[0], part)
		}
		t0t1 := strings.SplitN(fields[1], "-", 2)
		if len(t0t1) != 2 {
			return cfg, fmt.Errorf("faults: bad interval %q in %q", fields[1], part)
		}
		var err error
		if w.T0, err = strconv.ParseFloat(t0t1[0], 64); err != nil {
			return cfg, fmt.Errorf("faults: bad t0 in %q: %w", part, err)
		}
		if w.T1, err = strconv.ParseFloat(t0t1[1], 64); err != nil {
			return cfg, fmt.Errorf("faults: bad t1 in %q: %w", part, err)
		}
		if len(fields) == 3 {
			if w.P, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return cfg, fmt.Errorf("faults: bad probability in %q: %w", part, err)
			}
		}
		cfg.Windows = append(cfg.Windows, w)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// String renders the schedule back in ParseSpec syntax, sorted by T0.
func (c Config) String() string {
	ws := append([]Window(nil), c.Windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].T0 < ws[j].T0 })
	parts := make([]string, 0, len(ws))
	for _, w := range ws {
		name := map[Kind]string{
			WAPOutage: "wap", ServerCrash: "server", BurstLoss: "burst",
			Corruption: "corrupt", PartitionUp: "partup", PartitionDown: "partdown",
		}[w.Kind]
		s := fmt.Sprintf("%s:%g-%g", name, w.T0, w.T1)
		if w.P > 0 && w.P < 1 {
			s += fmt.Sprintf(":%g", w.P)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// Schedule is the runtime state of a fault configuration: it implements
// netsim.Impairment, counts every injected disturbance, and emits one
// timeline event per window occurrence. It is driven from the mission
// engine's single goroutine and is not safe for concurrent use.
type Schedule struct {
	windows []Window
	rng     *rand.Rand
	sink    obs.Sink // nil when telemetry is off

	fired    []bool // one per window: fault event already emitted
	injected map[Kind]int
	total    int
}

// New builds a schedule with deterministic randomness for the
// probabilistic kinds. rng must be seeded by the caller (the engine
// derives it from the mission seed) so runs reproduce exactly.
func New(cfg Config, rng *rand.Rand) *Schedule {
	return &Schedule{
		windows:  append([]Window(nil), cfg.Windows...),
		rng:      rng,
		fired:    make([]bool, len(cfg.Windows)),
		injected: make(map[Kind]int),
	}
}

// SetSink attaches a telemetry sink (nil detaches).
func (s *Schedule) SetSink(sk obs.Sink) { s.sink = sk }

// Impair implements netsim.Impairment: it folds every active window
// into one verdict for a packet sent at virtual time now in the given
// direction.
func (s *Schedule) Impair(now float64, dir netsim.Dir) netsim.Verdict {
	v := netsim.Verdict{SignalCap: 1}
	for i := range s.windows {
		w := &s.windows[i]
		if !w.active(now) {
			continue
		}
		disturbed := false
		switch w.Kind {
		case WAPOutage:
			v.SignalCap = 0
			disturbed = true
		case ServerCrash:
			v.Drop = true
			disturbed = true
		case BurstLoss:
			if s.rng.Float64() < w.prob() {
				v.Drop = true
				disturbed = true
			}
		case Corruption:
			if s.rng.Float64() < w.prob() {
				v.Corrupt = true
				disturbed = true
			}
		case PartitionUp:
			if dir == netsim.DirUp {
				v.Drop = true
				disturbed = true
			}
		case PartitionDown:
			if dir == netsim.DirDown {
				v.Drop = true
				disturbed = true
			}
		}
		if disturbed {
			s.count(now, i, w)
		}
	}
	return v
}

func (s *Schedule) count(now float64, idx int, w *Window) {
	s.injected[w.Kind]++
	s.total++
	if s.sink != nil {
		s.sink.Count(obs.MFaultsInjected, w.Kind.String(), 1)
		if !s.fired[idx] {
			s.sink.Emit(obs.Event{Kind: obs.KindFault, T0: w.T0, T1: w.T1,
				Node: w.Kind.String(),
				Detail: fmt.Sprintf("window [%g, %g) first disturbance at %.2f s",
					w.T0, w.T1, now)})
		}
	}
	s.fired[idx] = true
}

// Injected returns the total number of disturbed packets so far.
func (s *Schedule) Injected() int { return s.total }

// InjectedByKind returns the per-kind disturbance counts.
func (s *Schedule) InjectedByKind() map[Kind]int {
	out := make(map[Kind]int, len(s.injected))
	for k, n := range s.injected {
		out[k] = n
	}
	return out
}

// ActiveAt reports whether any window of the given kind covers now.
func (s *Schedule) ActiveAt(now float64, kind Kind) bool {
	for _, w := range s.windows {
		if w.Kind == kind && w.active(now) {
			return true
		}
	}
	return false
}
