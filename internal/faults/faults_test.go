package faults

import (
	"math/rand"
	"strings"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/obs"
)

func testLink(imp netsim.Impairment) *netsim.Link {
	cfg := netsim.DefaultEdgeLink(geom.V(0, 0))
	cfg.JitterSec = 0
	l := netsim.NewLink(cfg, rand.New(rand.NewSource(1)))
	l.SetRobotPos(geom.V(1, 0)) // full signal
	l.SetImpairment(imp)
	return l
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "wap:10-20;server:30-45;burst:50-52:0.9;corrupt:60-70:0.3;partup:80-90;partdown:95-100"
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Windows) != 6 {
		t.Fatalf("parsed %d windows, want 6", len(cfg.Windows))
	}
	kinds := []Kind{WAPOutage, ServerCrash, BurstLoss, Corruption, PartitionUp, PartitionDown}
	for i, k := range kinds {
		if cfg.Windows[i].Kind != k {
			t.Errorf("window %d kind = %v, want %v", i, cfg.Windows[i].Kind, k)
		}
	}
	if cfg.Windows[2].P != 0.9 {
		t.Errorf("burst P = %v, want 0.9", cfg.Windows[2].P)
	}
	back, err := ParseSpec(cfg.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", cfg.String(), err)
	}
	if len(back.Windows) != len(cfg.Windows) {
		t.Errorf("round trip lost windows: %q", cfg.String())
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"wap", "wap:10", "wap:20-10", "oven:1-2", "wap:a-b", "burst:1-2:x", "wap:1-2:0.5:9",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", bad)
		}
	}
}

func TestWAPOutageBlackholesTheWindow(t *testing.T) {
	s := New(Config{Windows: []Window{{Kind: WAPOutage, T0: 10, T1: 20}}},
		rand.New(rand.NewSource(7)))
	l := testLink(s)

	if _, dropped := l.Send(5, 100); dropped {
		t.Fatal("packet before the window must pass at full signal")
	}
	// Signal forced to 0 inside the window: (1-s)^3 loss is certain.
	for now := 10.0; now < 20; now += 1.0 {
		if _, dropped := l.Send(now, 100); !dropped {
			t.Fatalf("packet at %.1f survived a WAP outage", now)
		}
	}
	if _, dropped := l.Send(25, 100); dropped {
		t.Fatal("packet after the window must pass again")
	}
	if s.Injected() == 0 {
		t.Error("no disturbances counted")
	}
}

func TestOneWayPartitions(t *testing.T) {
	s := New(Config{Windows: []Window{
		{Kind: PartitionUp, T0: 0, T1: 10},
		{Kind: PartitionDown, T0: 20, T1: 30},
	}}, rand.New(rand.NewSource(7)))
	l := testLink(s)

	if _, dropped := l.SendDir(5, 64, netsim.DirUp); !dropped {
		t.Error("uplink must be blackholed during partup")
	}
	if _, dropped := l.SendDir(5, 64, netsim.DirDown); dropped {
		t.Error("downlink must pass during partup")
	}
	if _, dropped := l.SendDir(25, 64, netsim.DirDown); !dropped {
		t.Error("downlink must be blackholed during partdown")
	}
	if _, dropped := l.SendDir(25, 64, netsim.DirUp); dropped {
		t.Error("uplink must pass during partdown")
	}
}

func TestCorruptionCountsAsLoss(t *testing.T) {
	s := New(Config{Windows: []Window{{Kind: Corruption, T0: 0, T1: 100}}},
		rand.New(rand.NewSource(7))) // P 0 = always
	l := testLink(s)
	for i := 0; i < 10; i++ {
		if _, dropped := l.Send(float64(i), 64); !dropped {
			t.Fatalf("corrupted packet %d delivered", i)
		}
	}
	if got := s.InjectedByKind()[Corruption]; got != 10 {
		t.Errorf("corruption injections = %d, want 10", got)
	}
}

func TestBurstLossIsSeedReproducible(t *testing.T) {
	run := func() (drops int, injected int) {
		s := New(Config{Windows: []Window{{Kind: BurstLoss, T0: 0, T1: 50, P: 0.5}}},
			rand.New(rand.NewSource(99)))
		l := testLink(s)
		for i := 0; i < 200; i++ {
			if _, dropped := l.Send(float64(i)*0.25, 64); dropped {
				drops++
			}
		}
		return drops, s.Injected()
	}
	d1, i1 := run()
	d2, i2 := run()
	if d1 != d2 || i1 != i2 {
		t.Errorf("same seed diverged: drops %d vs %d, injected %d vs %d", d1, d2, i1, i2)
	}
	if i1 == 0 || i1 == 200 {
		t.Errorf("p=0.5 burst injected %d of 200 — not probabilistic", i1)
	}
}

func TestScheduleEmitsOneFaultEventPerWindow(t *testing.T) {
	tel := obs.NewTelemetry(256)
	s := New(Config{Windows: []Window{
		{Kind: WAPOutage, T0: 0, T1: 5},
		{Kind: ServerCrash, T0: 10, T1: 15},
	}}, rand.New(rand.NewSource(7)))
	s.SetSink(tel)
	l := testLink(s)
	for now := 0.0; now < 20; now += 0.5 {
		l.Send(now, 64)
	}
	var faultEvents int
	for _, ev := range tel.Events() {
		if ev.Kind == obs.KindFault {
			faultEvents++
		}
	}
	if faultEvents != 2 {
		t.Errorf("fault events = %d, want exactly 1 per window", faultEvents)
	}
	if !s.ActiveAt(2, WAPOutage) || s.ActiveAt(7, WAPOutage) {
		t.Error("ActiveAt window arithmetic wrong")
	}
}

func TestValidateRejectsMalformedWindows(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string
	}{
		{"zero-length", "wap:10-10", "zero or negative length"},
		{"negative-length", "wap:20-10", "zero or negative length"},
		{"negative-start", "wap:-5-10", "" /* parse error, any message */},
		{"same-kind-overlap", "wap:10-20;wap:15-25", "overlap"},
		{"same-kind-contained", "server:10-40;server:20-25", "overlap"},
		{"same-kind-identical", "burst:5-9:0.5;burst:5-9:0.7", "overlap"},
		{"same-kind-overlap-unsorted", "corrupt:30-50;corrupt:10-35", "overlap"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec(c.spec)
			if err == nil {
				t.Fatalf("ParseSpec(%q) accepted a malformed schedule", c.spec)
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ParseSpec(%q) error %q, want substring %q", c.spec, err, c.wantErr)
			}
		})
	}
}

func TestValidateAcceptsLegalSchedules(t *testing.T) {
	cases := []string{
		// Touching same-kind windows are legal: [10,20) and [20,30) are
		// half-open and disjoint.
		"wap:10-20;wap:20-30",
		// Different kinds may overlap freely — an outage during a burst
		// window is a meaningful compound fault.
		"wap:10-20;burst:15-25:0.5",
		"server:0-5",
	}
	for _, spec := range cases {
		if _, err := ParseSpec(spec); err != nil {
			t.Errorf("ParseSpec(%q) = %v, want accepted", spec, err)
		}
	}
}

func TestValidatePreciseMessages(t *testing.T) {
	if err := (Config{Windows: []Window{{Kind: WAPOutage, T0: -1, T1: 5}}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "starts before t=0") {
		t.Errorf("negative start: %v", err)
	}
	if err := (Config{Windows: []Window{{Kind: Kind(99), T0: 0, T1: 5}}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind: %v", err)
	}
	err := (Config{Windows: []Window{
		{Kind: BurstLoss, T0: 2, T1: 8},
		{Kind: BurstLoss, T0: 6, T1: 12},
	}}).Validate()
	if err == nil || !strings.Contains(err.Error(), "burst_loss windows 0 [2, 8) and 1 [6, 12) overlap") {
		t.Errorf("overlap message imprecise: %v", err)
	}
}
