package hostsim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSpeedOrdering(t *testing.T) {
	pi, edge, cloud := RaspberryPi(), EdgeGateway(), CloudServer()
	if !(pi.Speed() < cloud.Speed() && cloud.Speed() < edge.Speed()) {
		t.Errorf("single-thread speed order wrong: pi=%v edge=%v cloud=%v",
			pi.Speed(), edge.Speed(), cloud.Speed())
	}
}

func TestSerialExecTime(t *testing.T) {
	pi := RaspberryPi()
	w := Work{SerialCycles: 1.4e9} // exactly one second on the Pi
	if got := pi.ExecTime(w, 1); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("exec time = %v, want 1", got)
	}
	// Threads don't help serial work.
	if got := pi.ExecTime(w, 4); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("serial work sped up by threads: %v", got)
	}
}

func TestParallelScaling(t *testing.T) {
	cloud := CloudServer()
	w := Work{ParallelCycles: 10e9}
	t1 := cloud.ExecTime(w, 1)
	t4 := cloud.ExecTime(w, 4)
	t12 := cloud.ExecTime(w, 12)
	t24 := cloud.ExecTime(w, 24)
	if !(t1 > t4 && t4 > t12 && t12 > t24) {
		t.Errorf("large parallel work should keep scaling: %v %v %v %v", t1, t4, t12, t24)
	}
	// Near-linear at low counts.
	if ratio := t1 / t4; ratio < 3 || ratio > 4.1 {
		t.Errorf("4-thread speedup = %v, want ≈ 4", ratio)
	}
}

func TestThreadsBeyondCoresDoNotHelp(t *testing.T) {
	edge := EdgeGateway() // 4 cores
	w := Work{ParallelCycles: 5e9}
	t4 := edge.ExecTime(w, 4)
	t16 := edge.ExecTime(w, 16)
	if t16 < t4-1e-12 {
		t.Errorf("16 threads on 4 cores beat 4 threads: %v < %v", t16, t4)
	}
}

func TestTinyParallelWorkSaturates(t *testing.T) {
	// The Fig. 10 phenomenon: when per-thread work is small, adding
	// threads beyond ~4 brings no improvement (sync cost eats the gain).
	cloud := CloudServer()
	w := Work{SerialCycles: 2e6, ParallelCycles: 8e6}
	t4 := cloud.ExecTime(w, 4)
	t24 := cloud.ExecTime(w, 24)
	if t24 < t4*0.95 {
		t.Errorf("tiny work should not scale past 4 threads: t4=%v t24=%v", t4, t24)
	}
}

func TestPaperSpeedupRanges(t *testing.T) {
	// ECN (SLAM with many particles): heavily parallel work.
	// The paper reports up to 27.97× on the gateway and 40.84× on the
	// cloud; require the model to land in those neighbourhoods.
	ecn := Work{SerialCycles: 0.1e9, ParallelCycles: 3.2e9}
	edgeUp := EdgeGateway().Speedup(ecn, 8)
	cloudUp := CloudServer().Speedup(ecn, 24)
	if edgeUp < 20 || edgeUp > 40 {
		t.Errorf("edge ECN speedup = %.1f, want ≈ 28", edgeUp)
	}
	if cloudUp < 30 || cloudUp > 55 {
		t.Errorf("cloud ECN speedup = %.1f, want ≈ 41", cloudUp)
	}
	if cloudUp <= edgeUp {
		t.Error("manycore cloud must beat gateway on ECN")
	}

	// VDP (costmap + tracking at 2000 samples): a modest serial part plus
	// a parallel trajectory-scoring section, ≈0.24 s on the Pi (Fig. 10a).
	vdp := Work{SerialCycles: 0.03e9, ParallelCycles: 0.31e9}
	edgeVdp := EdgeGateway().Speedup(vdp, 8)
	cloudVdp := CloudServer().Speedup(vdp, 12)
	if edgeVdp < 12 || edgeVdp > 35 {
		t.Errorf("edge VDP speedup = %.1f, want ≈ 24", edgeVdp)
	}
	if cloudVdp < 8 || cloudVdp > 25 {
		t.Errorf("cloud VDP speedup = %.1f, want ≈ 17", cloudVdp)
	}
	if edgeVdp <= cloudVdp {
		t.Error("high-frequency edge must beat cloud on the VDP")
	}
}

func TestWorkArithmetic(t *testing.T) {
	a := Work{1, 2}
	b := Work{3, 4}
	if got := a.Add(b); got != (Work{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); got != (Work{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if a.Total() != 3 {
		t.Errorf("Total = %v", a.Total())
	}
}

func TestExecTimePositiveProperty(t *testing.T) {
	plats := []Platform{RaspberryPi(), EdgeGateway(), CloudServer()}
	f := func(serial, par uint32, threads uint8) bool {
		w := Work{SerialCycles: float64(serial), ParallelCycles: float64(par)}
		for _, p := range plats {
			if p.ExecTime(w, int(threads)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreWorkTakesLonger(t *testing.T) {
	p := CloudServer()
	f := func(c1, c2 uint32, threads uint8) bool {
		th := int(threads%32) + 1
		a := Work{SerialCycles: float64(c1)}
		b := Work{SerialCycles: float64(c1) + float64(c2)}
		return p.ExecTime(a, th) <= p.ExecTime(b, th)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCycleCounter(t *testing.T) {
	c := NewCycleCounter()
	c.Account("slam", Work{SerialCycles: 1e9})
	c.Account("slam", Work{ParallelCycles: 2e9})
	c.Account("costmap", Work{SerialCycles: 1e9})
	if got := c.Node("slam").Total(); got != 3e9 {
		t.Errorf("slam total = %v", got)
	}
	if got := c.Total().Total(); got != 4e9 {
		t.Errorf("grand total = %v", got)
	}
	rows := c.Breakdown()
	if len(rows) != 2 || rows[0].Node != "slam" {
		t.Errorf("breakdown = %v", rows)
	}
	if math.Abs(rows[0].Share-0.75) > 1e-9 {
		t.Errorf("share = %v", rows[0].Share)
	}
	c.Reset()
	if len(c.Breakdown()) != 0 {
		t.Error("reset failed")
	}
}

func TestCycleCounterConcurrent(t *testing.T) {
	c := NewCycleCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Account("n", Work{SerialCycles: 1})
			}
		}()
	}
	wg.Wait()
	if got := c.Node("n").SerialCycles; got != 8000 {
		t.Errorf("concurrent accounting lost updates: %v", got)
	}
}

func TestBreakdownDeterministicOrder(t *testing.T) {
	c := NewCycleCounter()
	c.Account("b", Work{SerialCycles: 5})
	c.Account("a", Work{SerialCycles: 5})
	rows := c.Breakdown()
	if rows[0].Node != "a" || rows[1].Node != "b" {
		t.Error("ties must break by name for determinism")
	}
}
