// Package hostsim models the three compute platforms of the paper's
// testbed (Table III): the Turtlebot3's Raspberry Pi 3B+, a
// high-frequency edge gateway (i7-7700K) and a manycore cloud server
// (Xeon Gold 6149). Node kernels report their work as abstract cycles
// (calibrated in Pi cycles, the unit of the paper's Table II), and a
// Platform converts work into execution time given a thread count.
//
// This substitution is what lets a single-core CI host reproduce the
// *shape* of Figures 9, 10, 12 and 13: serial speedup comes from the
// frequency × per-clock-performance ratio, parallel speedup is bounded by
// core count and eroded by a per-thread fork/join cost, which produces
// the saturation above 4 threads the paper observes for the VDP.
package hostsim

import (
	"fmt"
	"sort"
	"sync"
)

// Platform describes one compute host.
type Platform struct {
	Name     string
	FreqGHz  float64 // clock frequency
	Cores    int
	PerfNorm float64 // per-clock performance relative to the Pi's A53 (IPC ratio)

	// SyncCycles is the fork/join cost per worker thread, in Pi cycles.
	// It is what makes tiny parallel sections stop scaling.
	SyncCycles float64
}

// Speed returns the platform's single-thread throughput in Pi
// gigacycles per second: how many units of Table II work one core
// retires per second.
func (p Platform) Speed() float64 { return p.FreqGHz * p.PerfNorm }

// The paper's three platforms. PerfNorm and SyncCycles are calibrated so
// the end-to-end accelerations land in the paper's reported ranges: up to
// ~28× (gateway, 8 threads) and ~41× (cloud, 24 threads) for the ECN, and
// ~24×/~17× for the VDP, with VDP scaling saturating above 4 threads at
// small trajectory counts. The cloud's modest PerfNorm bundles the VM and
// middleware overhead the paper's cloud measurements include — it is an
// end-to-end calibration constant, not a bare-metal IPC ratio.
func RaspberryPi() Platform {
	return Platform{Name: "Turtlebot3 (Pi 3B+)", FreqGHz: 1.4, Cores: 4, PerfNorm: 1.0, SyncCycles: 50_000}
}

func EdgeGateway() Platform {
	return Platform{Name: "Edge Gateway (i7-7700K)", FreqGHz: 4.2, Cores: 4, PerfNorm: 2.55, SyncCycles: 100_000}
}

func CloudServer() Platform {
	return Platform{Name: "Cloud Server (Xeon 6149)", FreqGHz: 3.1, Cores: 24, PerfNorm: 1.35, SyncCycles: 400_000}
}

// Work is the computational demand of one node invocation, split into a
// serial fraction and a perfectly parallelizable fraction, in Pi cycles.
type Work struct {
	SerialCycles   float64
	ParallelCycles float64
}

// Add accumulates another work item.
func (w Work) Add(o Work) Work {
	return Work{w.SerialCycles + o.SerialCycles, w.ParallelCycles + o.ParallelCycles}
}

// Total returns the total cycles regardless of parallelism.
func (w Work) Total() float64 { return w.SerialCycles + w.ParallelCycles }

// Scale multiplies both components.
func (w Work) Scale(s float64) Work {
	return Work{w.SerialCycles * s, w.ParallelCycles * s}
}

// ExecTime returns how long the platform takes to execute the work with
// the given number of worker threads. threads < 1 is treated as 1.
// Threads beyond the core count do not help (they timeshare), matching
// the paper's observation that parallelization saturates at the core
// count and that tiny per-thread work makes extra threads useless.
func (p Platform) ExecTime(w Work, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	m := threads
	if m > p.Cores {
		m = p.Cores
	}
	speed := p.Speed() * 1e9 // Pi cycles per second per core
	t := w.SerialCycles / speed
	if w.ParallelCycles > 0 && threads > 1 {
		t += w.ParallelCycles / (speed * float64(m))
		t += float64(m) * p.SyncCycles / speed // fork/join cost
	} else {
		t += w.ParallelCycles / speed
	}
	return t
}

// Speedup returns ExecTime(w, 1 thread on the Pi) / ExecTime(w, threads
// on p): the acceleration factor relative to on-board execution, the
// quantity Figures 9 and 10 report.
func (p Platform) Speedup(w Work, threads int) float64 {
	base := RaspberryPi().ExecTime(w, 1)
	t := p.ExecTime(w, threads)
	if t <= 0 {
		return 0
	}
	return base / t
}

// ---------------------------------------------------------------------------
// Cycle accounting (Table II).

// CycleCounter accumulates per-node work over a mission, producing the
// Table II breakdown. It is safe for concurrent use.
type CycleCounter struct {
	mu    sync.Mutex
	nodes map[string]Work
}

// NewCycleCounter returns an empty counter.
func NewCycleCounter() *CycleCounter {
	return &CycleCounter{nodes: make(map[string]Work)}
}

// Account adds work attributed to the named node.
func (c *CycleCounter) Account(node string, w Work) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node] = c.nodes[node].Add(w)
}

// Node returns the accumulated work for one node.
func (c *CycleCounter) Node(node string) Work {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[node]
}

// Total returns the sum over all nodes.
func (c *CycleCounter) Total() Work {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t Work
	for _, w := range c.nodes {
		t = t.Add(w)
	}
	return t
}

// Breakdown returns (node, work, share-of-total) rows sorted by
// descending total cycles — the content of Table II.
func (c *CycleCounter) Breakdown() []BreakdownRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0.0
	for _, w := range c.nodes {
		total += w.Total()
	}
	rows := make([]BreakdownRow, 0, len(c.nodes))
	for n, w := range c.nodes {
		share := 0.0
		if total > 0 {
			share = w.Total() / total
		}
		rows = append(rows, BreakdownRow{Node: n, Work: w, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Work.Total() != rows[j].Work.Total() {
			return rows[i].Work.Total() > rows[j].Work.Total()
		}
		return rows[i].Node < rows[j].Node
	})
	return rows
}

// Reset clears the counter.
func (c *CycleCounter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes = make(map[string]Work)
}

// BreakdownRow is one line of Table II.
type BreakdownRow struct {
	Node  string
	Work  Work
	Share float64
}

func (r BreakdownRow) String() string {
	return fmt.Sprintf("%-20s %8.3f Gcycles (%4.1f%%)", r.Node, r.Work.Total()/1e9, r.Share*100)
}
