// Package fleet extends the paper's single-robot evaluation to the
// multi-robot setting its introduction motivates ("LGVs operate in a
// group"): k vehicles share one remote server, so each robot's share of
// the server shrinks as the fleet grows. The model is deliberately
// simple — fair-share partitioning of the server's cores — but it
// exposes the deployment question the paper leaves open: a 4-core edge
// gateway saturates after a handful of robots, while the 24-core cloud
// server amortizes across a much larger fleet, so the best remote host
// *crosses over* as fleet size grows.
package fleet

import (
	"fmt"

	"lgvoffload/internal/core"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/mw"
)

// ShareServer returns the per-robot view of a server split fairly among
// k robots: each robot sees cores/k cores (at least one) and a sync cost
// inflated by the timesharing (more cross-traffic per barrier).
func ShareServer(p hostsim.Platform, k int) hostsim.Platform {
	if k < 1 {
		k = 1
	}
	shared := p
	shared.Name = fmt.Sprintf("%s ÷%d", p.Name, k)
	shared.Cores = p.Cores / k
	if shared.Cores < 1 {
		shared.Cores = 1
		// Oversubscribed: even a single core is timeshared, so the
		// effective per-clock throughput drops proportionally.
		shared.PerfNorm = p.PerfNorm * float64(p.Cores) / float64(k)
	}
	shared.SyncCycles = p.SyncCycles * float64(min(k, p.Cores))
	return shared
}

// Result is one fleet-size data point: the per-robot mission outcome
// when k robots share the server.
type Result struct {
	FleetSize int
	Host      mw.HostID
	Success   bool
	Time      float64
	Energy    float64
	AvgVmax   float64
}

// Sweep runs the base mission at each fleet size, with the remote
// server's per-robot share shrinking accordingly, and returns one row
// per size. The base config's deployment selects the server and thread
// count; threads are additionally capped by the per-robot core share.
func Sweep(base core.MissionConfig, sizes []int) ([]Result, error) {
	host := base.Deployment.Remote
	if host == "" {
		return nil, fmt.Errorf("fleet: deployment has no remote host")
	}
	full := defaultPlatform(host)
	var out []Result
	for _, k := range sizes {
		cfg := base
		shared := ShareServer(full, k)
		cfg.Platforms = map[mw.HostID]hostsim.Platform{host: shared}
		if cfg.Deployment.Threads > shared.Cores {
			cfg.Deployment.Threads = shared.Cores
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet size %d: %w", k, err)
		}
		out = append(out, Result{
			FleetSize: k, Host: host, Success: res.Success,
			Time: res.TotalTime, Energy: res.TotalEnergy, AvgVmax: res.AvgMaxVel,
		})
	}
	return out, nil
}

func defaultPlatform(host mw.HostID) hostsim.Platform {
	switch host {
	case core.HostCloud:
		return hostsim.CloudServer()
	case core.HostEdge:
		return hostsim.EdgeGateway()
	default:
		return hostsim.RaspberryPi()
	}
}

// Crossover returns the smallest fleet size at which the cloud's
// per-robot mission time beats the edge gateway's, given two sweeps over
// the same sizes. ok=false means the cloud never wins in the range.
func Crossover(edge, cloud []Result) (int, bool) {
	n := min(len(edge), len(cloud))
	for i := 0; i < n; i++ {
		if edge[i].FleetSize != cloud[i].FleetSize {
			continue
		}
		if cloud[i].Success && (!edge[i].Success || cloud[i].Time < edge[i].Time) {
			return cloud[i].FleetSize, true
		}
	}
	return 0, false
}
