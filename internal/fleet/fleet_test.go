package fleet

import (
	"testing"

	"lgvoffload/internal/core"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/world"
)

func TestShareServer(t *testing.T) {
	cloud := hostsim.CloudServer() // 24 cores
	s2 := ShareServer(cloud, 2)
	if s2.Cores != 12 {
		t.Errorf("cores ÷2 = %d", s2.Cores)
	}
	if s2.PerfNorm != cloud.PerfNorm {
		t.Error("per-clock speed should not change while cores remain")
	}
	// Oversubscription: 48 robots on 24 cores halve per-clock throughput.
	s48 := ShareServer(cloud, 48)
	if s48.Cores != 1 {
		t.Errorf("cores ÷48 = %d", s48.Cores)
	}
	if s48.PerfNorm >= cloud.PerfNorm {
		t.Error("oversubscribed server must slow down per clock")
	}
	// Degenerate k.
	if got := ShareServer(cloud, 0); got.Cores != cloud.Cores {
		t.Error("k=0 should behave like k=1")
	}
}

func TestShareServerMonotone(t *testing.T) {
	cloud := hostsim.CloudServer()
	w := hostsim.Work{SerialCycles: 0.1e9, ParallelCycles: 3e9}
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		s := ShareServer(cloud, k)
		tm := s.ExecTime(w, 24)
		if tm < prev {
			t.Errorf("exec time decreased at k=%d: %v < %v", k, tm, prev)
		}
		prev = tm
	}
}

func baseMission(remote core.Deployment) core.MissionConfig {
	return core.MissionConfig{
		Workload:   core.NavigationWithMap,
		Map:        world.EmptyRoomMap(6, 4, 0.05),
		Start:      geom.P(0.8, 2, 0),
		Goal:       geom.V(5.2, 2),
		WAP:        geom.V(3, 2),
		Deployment: remote,
		Seed:       3,
		MaxSimTime: 300,
	}
}

func TestSweepDegradesWithFleetSize(t *testing.T) {
	rows, err := Sweep(baseMission(core.DeployEdge(8)), []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Success {
			t.Fatalf("fleet %d failed", r.FleetSize)
		}
	}
	// The per-robot velocity cap must fall as the share shrinks.
	if rows[2].AvgVmax >= rows[0].AvgVmax {
		t.Errorf("vmax should degrade: k=1 %.3f vs k=16 %.3f",
			rows[0].AvgVmax, rows[2].AvgVmax)
	}
}

func TestEdgeCloudCrossover(t *testing.T) {
	sizes := []int{1, 2, 4, 8, 16}
	edge, err := Sweep(baseMission(core.DeployEdge(8)), sizes)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := Sweep(baseMission(core.DeployCloud(12)), sizes)
	if err != nil {
		t.Fatal(err)
	}
	// At k=1 the gateway wins the VDP (paper Fig. 10); at large k the
	// manycore cloud must win.
	if edge[0].Time > cloud[0].Time {
		t.Errorf("k=1: edge (%.1fs) should beat cloud (%.1fs)", edge[0].Time, cloud[0].Time)
	}
	k, ok := Crossover(edge, cloud)
	if !ok {
		t.Fatal("cloud never overtook the gateway — contention model inert")
	}
	if k <= 1 {
		t.Errorf("crossover at k=%d — should need a real fleet", k)
	}
	t.Logf("edge→cloud crossover at fleet size %d", k)
}

func TestSweepRequiresRemote(t *testing.T) {
	if _, err := Sweep(baseMission(core.DeployLocal()), []int{1}); err == nil {
		t.Error("local deployment has no server to share")
	}
}
