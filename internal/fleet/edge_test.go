package fleet

import (
	"math"
	"reflect"
	"testing"

	"lgvoffload/internal/core"
	"lgvoffload/internal/hostsim"
)

// TestShareServerOversubscribed pins the k > cores regime: the core
// share floors at one, and the throughput of that single timeshared
// core scales down by cores/k.
func TestShareServerOversubscribed(t *testing.T) {
	edge := hostsim.EdgeGateway() // 4 cores, PerfNorm 2.55, Sync 100k
	for _, k := range []int{5, 9, 100} {
		s := ShareServer(edge, k)
		if s.Cores != 1 {
			t.Errorf("k=%d: cores = %d, want floor of 1", k, s.Cores)
		}
		wantPerf := edge.PerfNorm * float64(edge.Cores) / float64(k)
		if math.Abs(s.PerfNorm-wantPerf) > 1e-12 {
			t.Errorf("k=%d: PerfNorm = %v, want %v (×cores/k)", k, s.PerfNorm, wantPerf)
		}
		// Sync inflation saturates at the physical core count: a robot
		// can't pay barrier cross-traffic for more peers than cores.
		wantSync := edge.SyncCycles * float64(edge.Cores)
		if s.SyncCycles != wantSync {
			t.Errorf("k=%d: SyncCycles = %v, want %v (×min(k, cores))", k, s.SyncCycles, wantSync)
		}
	}
}

// TestShareServerIdentityAndClamp pins k = 1 (a dedicated server is
// unchanged except for the label) and k < 1 (clamped to 1).
func TestShareServerIdentityAndClamp(t *testing.T) {
	cloud := hostsim.CloudServer()
	for _, k := range []int{1, 0, -3} {
		s := ShareServer(cloud, k)
		if s.Cores != cloud.Cores || s.PerfNorm != cloud.PerfNorm || s.SyncCycles != cloud.SyncCycles {
			t.Errorf("k=%d: dedicated server changed: %+v", k, s)
		}
	}
}

// TestShareServerSingleCore pins the degenerate single-core platform:
// any fleet larger than one oversubscribes immediately, and the sync
// multiplier stays 1 (min(k, cores) = 1 — no cross-core barriers).
func TestShareServerSingleCore(t *testing.T) {
	uni := hostsim.Platform{Name: "uni", FreqGHz: 2, Cores: 1, PerfNorm: 1.5, SyncCycles: 80_000}
	s1 := ShareServer(uni, 1)
	if s1.Cores != 1 || s1.PerfNorm != 1.5 || s1.SyncCycles != 80_000 {
		t.Errorf("k=1 on single-core changed the platform: %+v", s1)
	}
	s4 := ShareServer(uni, 4)
	if s4.Cores != 1 {
		t.Errorf("k=4: cores = %d, want 1", s4.Cores)
	}
	if math.Abs(s4.PerfNorm-1.5/4) > 1e-12 {
		t.Errorf("k=4: PerfNorm = %v, want %v", s4.PerfNorm, 1.5/4)
	}
	if s4.SyncCycles != 80_000 {
		t.Errorf("k=4: SyncCycles = %v, want unchanged 80000 (single core has no cross-core sync)", s4.SyncCycles)
	}
}

// TestShareServerExactDivision pins the boundary where the share divides
// evenly: at k = cores each robot gets exactly one full-speed core.
func TestShareServerExactDivision(t *testing.T) {
	edge := hostsim.EdgeGateway()
	s := ShareServer(edge, edge.Cores)
	if s.Cores != 1 {
		t.Errorf("k=cores: cores = %d, want 1", s.Cores)
	}
	if s.PerfNorm != edge.PerfNorm {
		t.Errorf("k=cores: PerfNorm = %v, want unchanged %v (not oversubscribed)", s.PerfNorm, edge.PerfNorm)
	}
	if s.SyncCycles != edge.SyncCycles*float64(edge.Cores) {
		t.Errorf("k=cores: SyncCycles = %v, want ×%d", s.SyncCycles, edge.Cores)
	}
}

// TestSweepDeterministicPerSeed is the reproducibility satellite: the
// same base mission (same seed) swept twice over the same fleet sizes
// must produce identical rows, including through the oversubscribed
// regime.
func TestSweepDeterministicPerSeed(t *testing.T) {
	sizes := []int{1, 4, 9}
	a, err := Sweep(baseMission(core.DeployEdge(8)), sizes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(baseMission(core.DeployEdge(8)), sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fleet sweep is not reproducible per seed:\n%+v\n%+v", a, b)
	}
}
