// Package muxer implements the Velocity Multiplexer node (the paper uses
// Yujin Robot's open-source control system): multiple velocity sources —
// safety controller, joystick, navigation — feed commands with distinct
// priorities, and the multiplexer forwards the highest-priority command
// that is still fresh. Stale sources time out so a dead navigation stack
// cannot keep driving the motors.
package muxer

import (
	"fmt"
	"sort"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/spans"
)

// Source describes one velocity input channel.
type Source struct {
	Name     string
	Priority int     // higher wins
	Timeout  float64 // seconds a command stays valid
}

// Standard source names used by the workload pipeline.
const (
	SourceNavigation = "navigation"
	SourceSafety     = "safety_controller"
	SourceJoystick   = "joystick"
)

// DefaultSources returns the paper's three-source configuration: the
// safety controller preempts the joystick, which preempts navigation.
func DefaultSources() []Source {
	return []Source{
		{Name: SourceSafety, Priority: 100, Timeout: 0.2},
		{Name: SourceJoystick, Priority: 50, Timeout: 0.5},
		{Name: SourceNavigation, Priority: 10, Timeout: 0.5},
	}
}

type slot struct {
	src      Source
	cmd      geom.Twist
	stamp    float64
	hasData  bool
	consumed bool // the held command won a Select at least once

	// Trace context of the held command (see internal/spans): the wait
	// between Offer and the first winning Select is recorded as a
	// "mux_wait" span on the command's tick trace.
	trace  uint64
	parent uint64
}

// Mux is the multiplexer state.
type Mux struct {
	slots map[string]*slot

	selected    string // name of the source that won the last Select
	forwarded   int    // commands forwarded so far
	overwritten int    // commands replaced before the motors ever saw them

	tracer *spans.Tracer // nil when tracing is off (the default)
}

// New builds a multiplexer with the given sources.
func New(sources []Source) *Mux {
	m := &Mux{slots: make(map[string]*slot, len(sources))}
	for _, s := range sources {
		m.slots[s.Name] = &slot{src: s}
	}
	return m
}

// SetTracer attaches a span tracer; pass nil to detach. Only commands
// offered with trace context (OfferTraced) produce spans.
func (m *Mux) SetTracer(t *spans.Tracer) { m.tracer = t }

// Offer submits a command from a named source at virtual time now.
// Unknown sources are rejected with an error.
func (m *Mux) Offer(source string, cmd geom.Twist, now float64) error {
	return m.OfferTraced(source, cmd, now, 0, 0)
}

// OfferTraced is Offer carrying the command's causal trace context, so
// the time the command waits in its slot before the motors consume it
// shows up on the tick's trace (as post-decision latency, outside the
// VDP makespan).
func (m *Mux) OfferTraced(source string, cmd geom.Twist, now float64, trace, parent uint64) error {
	sl, ok := m.slots[source]
	if !ok {
		return fmt.Errorf("muxer: unknown source %q", source)
	}
	if sl.hasData && !sl.consumed {
		// A command the motors never executed is being replaced by a
		// fresher one: the pipeline work behind it was wasted.
		m.overwritten++
	}
	sl.cmd = cmd
	sl.stamp = now
	sl.hasData = true
	sl.consumed = false
	sl.trace = trace
	sl.parent = parent
	return nil
}

// Select returns the winning command at time now: the freshest command of
// the highest-priority source whose data has not timed out. When every
// source is stale it returns a zero twist (stop) and ok=false.
func (m *Mux) Select(now float64) (geom.Twist, bool) {
	var best *slot
	for _, sl := range m.slots {
		if !sl.hasData || now-sl.stamp > sl.src.Timeout {
			continue
		}
		if best == nil ||
			sl.src.Priority > best.src.Priority ||
			(sl.src.Priority == best.src.Priority && sl.stamp > best.stamp) {
			best = sl
		}
	}
	if best == nil {
		m.selected = ""
		return geom.Twist{}, false
	}
	m.selected = best.src.Name
	m.forwarded++
	if !best.consumed && best.trace != 0 {
		m.tracer.Add(best.trace, best.parent, "mux_wait", "lgv", "velocity_mux",
			spans.Aux, best.stamp, now)
	}
	best.consumed = true
	return best.cmd, true
}

// Selected returns the name of the source that won the last Select, or
// "" when everything was stale.
func (m *Mux) Selected() string { return m.selected }

// Forwarded returns how many commands have been forwarded to the motors.
func (m *Mux) Forwarded() int { return m.forwarded }

// Overwritten returns how many offered commands were replaced by fresher
// ones before any Select forwarded them — a measure of pipeline output
// the robot paid for but never used.
func (m *Mux) Overwritten() int { return m.overwritten }

// Sources returns the configured sources sorted by descending priority.
func (m *Mux) Sources() []Source {
	out := make([]Source, 0, len(m.slots))
	for _, sl := range m.slots {
		out = append(out, sl.src)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}
