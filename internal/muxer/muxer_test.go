package muxer

import (
	"testing"

	"lgvoffload/internal/geom"
)

func TestPriorityWins(t *testing.T) {
	m := New(DefaultSources())
	if err := m.Offer(SourceNavigation, geom.Twist{V: 0.2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Offer(SourceSafety, geom.Twist{V: 0}, 0); err != nil {
		t.Fatal(err)
	}
	cmd, ok := m.Select(0.05)
	if !ok {
		t.Fatal("expected a command")
	}
	if cmd.V != 0 || m.Selected() != SourceSafety {
		t.Errorf("safety should win: cmd=%v selected=%s", cmd, m.Selected())
	}
}

func TestTimeoutFallsBack(t *testing.T) {
	m := New(DefaultSources())
	m.Offer(SourceSafety, geom.Twist{V: 0}, 0)
	m.Offer(SourceNavigation, geom.Twist{V: 0.2}, 0.5)
	// Safety (0.2 s timeout) is stale at t=0.6; navigation is fresh.
	cmd, ok := m.Select(0.6)
	if !ok || cmd.V != 0.2 || m.Selected() != SourceNavigation {
		t.Errorf("navigation should win after safety timeout: %v %s", cmd, m.Selected())
	}
}

func TestAllStaleStops(t *testing.T) {
	m := New(DefaultSources())
	m.Offer(SourceNavigation, geom.Twist{V: 0.2}, 0)
	cmd, ok := m.Select(10)
	if ok || cmd != (geom.Twist{}) {
		t.Errorf("stale sources should stop the robot: %v %v", cmd, ok)
	}
	if m.Selected() != "" {
		t.Errorf("selected = %q", m.Selected())
	}
}

func TestNoDataStops(t *testing.T) {
	m := New(DefaultSources())
	if _, ok := m.Select(0); ok {
		t.Error("no offers should yield no command")
	}
}

func TestUnknownSourceRejected(t *testing.T) {
	m := New(DefaultSources())
	if err := m.Offer("intruder", geom.Twist{V: 9}, 0); err == nil {
		t.Error("unknown source must be rejected")
	}
}

func TestEqualPriorityFreshestWins(t *testing.T) {
	m := New([]Source{
		{Name: "a", Priority: 10, Timeout: 1},
		{Name: "b", Priority: 10, Timeout: 1},
	})
	m.Offer("a", geom.Twist{V: 0.1}, 0.0)
	m.Offer("b", geom.Twist{V: 0.2}, 0.1)
	cmd, ok := m.Select(0.2)
	if !ok || cmd.V != 0.2 {
		t.Errorf("freshest equal-priority should win: %v", cmd)
	}
}

func TestForwardedCounter(t *testing.T) {
	m := New(DefaultSources())
	m.Offer(SourceNavigation, geom.Twist{V: 0.1}, 0)
	m.Select(0.1)
	m.Select(0.2)
	m.Select(5) // stale, not forwarded
	if m.Forwarded() != 2 {
		t.Errorf("forwarded = %d", m.Forwarded())
	}
}

func TestSourcesSorted(t *testing.T) {
	m := New(DefaultSources())
	s := m.Sources()
	if len(s) != 3 || s[0].Name != SourceSafety || s[2].Name != SourceNavigation {
		t.Errorf("sources = %v", s)
	}
}

func TestNewerOfferReplacesOlder(t *testing.T) {
	m := New(DefaultSources())
	m.Offer(SourceNavigation, geom.Twist{V: 0.1}, 0)
	m.Offer(SourceNavigation, geom.Twist{V: 0.3}, 0.1)
	cmd, _ := m.Select(0.2)
	if cmd.V != 0.3 {
		t.Errorf("latest offer should win: %v", cmd)
	}
}

func TestOverwrittenCountsUnconsumedReplacement(t *testing.T) {
	m := New(DefaultSources())
	m.Offer(SourceNavigation, geom.Twist{V: 0.1}, 0)
	m.Offer(SourceNavigation, geom.Twist{V: 0.2}, 0.1) // replaces unread 0.1
	if m.Overwritten() != 1 {
		t.Errorf("overwritten = %d, want 1", m.Overwritten())
	}
	m.Select(0.15) // consumes 0.2
	m.Offer(SourceNavigation, geom.Twist{V: 0.3}, 0.2)
	if m.Overwritten() != 1 {
		t.Errorf("replacing a consumed command is not an overwrite: %d", m.Overwritten())
	}
	m.Select(0.25)
	m.Select(0.3) // re-selecting the same command is not a second consume
	m.Offer(SourceNavigation, geom.Twist{V: 0.4}, 0.35)
	if m.Overwritten() != 1 {
		t.Errorf("overwritten = %d after consumed re-offer, want 1", m.Overwritten())
	}
}
