package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tmpStore(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "missions.lgvstore")
}

// writeMission records one synthetic mission with n ticks and returns
// its ID.
func writeMission(t *testing.T, s *Store, seed int64, n int, success bool) string {
	t.Helper()
	rec, err := s.Begin(MissionStart{Seed: seed, Workload: "navigation", FaultSpec: "wap:10-20"})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < n; i++ {
		rec.Tick(Tick{T: float64(i) * 0.2, VDP: 0.1 + float64(i%7)*0.01, EnergyJ: float64(i), Bandwidth: 40})
	}
	rec.Decision(Decision{T: 1, Reason: "alg2", From: "lgv", To: "edge", Bandwidth: 40})
	rec.Fault(Fault{Kind: "wap", T0: 10, T1: 20})
	rec.SpanRow(SpanRow{T: 0.2, Makespan: 0.1, Compute: 0.06, Transport: 0.04})
	err = rec.Finish(MissionEnd{
		Success: success, Reason: "goal", TotalTime: float64(n) * 0.2,
		Energy: map[string]float64{"compute": 10, "motion": 20}, TotalEnergy: 30,
	})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return rec.ID()
}

func TestStoreRoundTrip(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	id := writeMission(t, s, 7, 50, true)
	id2 := writeMission(t, s, 8, 30, false)

	if got := len(s.List(Filter{})); got != 2 {
		t.Fatalf("List: got %d missions, want 2", got)
	}
	if got := len(s.List(Filter{Outcome: "success"})); got != 1 {
		t.Fatalf("List success: got %d, want 1", got)
	}
	if got := len(s.List(Filter{Seed: 8, HasSeed: true})); got != 1 {
		t.Fatalf("List seed=8: got %d, want 1", got)
	}
	if got := len(s.List(Filter{FaultSpec: "wap"})); got != 2 {
		t.Fatalf("List faultspec=wap: got %d, want 2", got)
	}

	md, err := s.ReadMission(id)
	if err != nil {
		t.Fatalf("ReadMission: %v", err)
	}
	if len(md.Ticks) != 50 || len(md.Decisions) != 1 || len(md.Faults) != 1 || len(md.Spans) != 1 {
		t.Fatalf("ReadMission counts: ticks=%d dec=%d faults=%d spans=%d",
			len(md.Ticks), len(md.Decisions), len(md.Faults), len(md.Spans))
	}
	if md.End == nil || md.End.Ticks != 50 || md.End.VDPP99 == 0 {
		t.Fatalf("MissionEnd bookkeeping not filled: %+v", md.End)
	}
	if md.Ticks[49].T != 49*0.2 {
		t.Fatalf("tick order broken: last T=%v", md.Ticks[49].T)
	}

	fl, err := s.FleetStats(Filter{})
	if err != nil {
		t.Fatalf("FleetStats: %v", err)
	}
	if fl.Missions != 2 || fl.Finished != 2 || fl.Successes != 1 || fl.Ticks != 80 {
		t.Fatalf("FleetStats: %+v", fl)
	}
	if fl.VDPP99 <= 0 || fl.VDPP50 > fl.VDPP99 {
		t.Fatalf("FleetStats VDP quantiles: p50=%v p99=%v", fl.VDPP50, fl.VDPP99)
	}
	if len(fl.FlipRates) != 2 || fl.FlipRates[1].ID != id2 {
		t.Fatalf("FleetStats flip rates: %+v", fl.FlipRates)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: index rebuilt from disk, nothing truncated, append works.
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Missions != 2 || st.Finished != 2 || st.TruncatedBytes != 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
	writeMission(t, s2, 9, 10, true)
	if st := s2.Stats(); st.Missions != 3 || st.Finished != 3 {
		t.Fatalf("append after reopen: %+v", st)
	}
}

func TestStoreRecoversTruncatedTail(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeMission(t, s, 1, 20, true)
	// Start mission 2 by hand so we know where its (synchronously
	// written) MissionStart record ends.
	rec, err := s.Begin(MissionStart{Seed: 2, Workload: "navigation"})
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	afterStart := s.Stats().Bytes
	for i := 0; i < 20; i++ {
		rec.Tick(Tick{T: float64(i) * 0.2, VDP: 0.1})
	}
	if err := rec.Finish(MissionEnd{Success: true, TotalTime: 4,
		Energy: map[string]float64{}, TotalEnergy: 1}); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	s.Close()

	// Simulate a crash mid-write: cut the file inside mission 2's first
	// tick record, just past its MissionStart.
	if err := os.Truncate(path, afterStart+13); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedBytes == 0 {
		t.Fatalf("expected truncated bytes, got %+v", st)
	}
	if st.Missions != 2 || st.Finished != 1 {
		t.Fatalf("after recovery want 2 missions / 1 finished, got %+v", st)
	}
	// Mission 1 fully intact.
	md, err := s2.ReadMission("m1")
	if err != nil {
		t.Fatalf("ReadMission m1: %v", err)
	}
	if len(md.Ticks) != 20 || md.End == nil {
		t.Fatalf("m1 damaged by recovery: ticks=%d end=%v", len(md.Ticks), md.End)
	}
	// Mission 2 listed as unfinished, not lost.
	m2, ok := s2.Mission("m2")
	if !ok || m2.Finished() {
		t.Fatalf("m2: ok=%v finished=%v", ok, m2.Finished())
	}
	// The store accepts new missions after recovery.
	writeMission(t, s2, 3, 5, true)
	if st := s2.Stats(); st.Missions != 3 {
		t.Fatalf("append after recovery: %+v", st)
	}
}

func TestStoreRecoversCorruptTail(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeMission(t, s, 1, 10, true)
	boundary := s.Stats().Bytes
	writeMission(t, s, 2, 10, true)
	s.Close()

	// Flip payload bytes a little past mission 1's end: the CRC of some
	// mission-2 record no longer matches.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, boundary+frameSize+2); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TruncatedBytes == 0 {
		t.Fatalf("expected corrupt tail truncated, got %+v", st)
	}
	md, err := s2.ReadMission("m1")
	if err != nil || len(md.Ticks) != 10 || md.End == nil {
		t.Fatalf("m1 damaged: err=%v ticks=%d", err, len(md.Ticks))
	}
}

func TestStoreRejectsForeignFile(t *testing.T) {
	path := tmpStore(t)
	if err := os.WriteFile(path, []byte("definitely not a mission store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
}

func TestStoreCompact(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	writeMission(t, s, 1, 40, true)
	writeMission(t, s, 2, 40, false)
	// An abandoned mission: listed, unfinished, dropped by Compact.
	rec, err := s.Begin(MissionStart{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec.Tick(Tick{T: 0.2, VDP: 0.1})
	rec.Abandon()

	dst := filepath.Join(t.TempDir(), "compact.lgvstore")
	kept, err := s.Compact(dst, Filter{})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if kept != 2 {
		t.Fatalf("Compact kept %d, want 2", kept)
	}
	s.Close()

	c, err := Open(dst)
	if err != nil {
		t.Fatalf("open compacted: %v", err)
	}
	defer c.Close()
	if st := c.Stats(); st.Missions != 2 || st.Finished != 2 {
		t.Fatalf("compacted stats: %+v", st)
	}
	md, err := c.ReadMission("m1")
	if err != nil || len(md.Ticks) != 40 {
		t.Fatalf("compacted m1: err=%v ticks=%d", err, len(md.Ticks))
	}
	if md.End.TotalEnergy != 30 || md.End.Ticks != 40 {
		t.Fatalf("compacted summary: %+v", md.End)
	}
}

func TestStoreConcurrentRecorders(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	const missions, ticks = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, missions)
	for i := 0; i < missions; i++ {
		rec, err := s.Begin(MissionStart{Seed: int64(i)})
		if err != nil {
			t.Fatalf("Begin %d: %v", i, err)
		}
		wg.Add(1)
		go func(rec *Recorder, seed int) {
			defer wg.Done()
			for k := 0; k < ticks; k++ {
				rec.Tick(Tick{T: float64(k), VDP: 0.1, EnergyJ: float64(k)})
			}
			errs <- rec.Finish(MissionEnd{Success: true, TotalTime: ticks,
				Energy: map[string]float64{}, TotalEnergy: 1})
		}(rec, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	for _, m := range s.List(Filter{}) {
		if m.End == nil {
			t.Fatalf("mission %s unfinished", m.Start.ID)
		}
		if m.End.Ticks+int(m.End.Dropped) != ticks {
			t.Fatalf("mission %s lost records: ticks=%d dropped=%d",
				m.Start.ID, m.End.Ticks, m.End.Dropped)
		}
		md, err := s.ReadMission(m.Start.ID)
		if err != nil {
			t.Fatalf("ReadMission %s: %v", m.Start.ID, err)
		}
		if len(md.Ticks) != m.End.Ticks {
			t.Fatalf("mission %s: decoded %d ticks, index says %d",
				m.Start.ID, len(md.Ticks), m.End.Ticks)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Tick(Tick{})
	rec.Decision(Decision{})
	rec.Fault(Fault{})
	rec.SpanRow(SpanRow{})
	if rec.Dropped() != 0 || rec.ID() != "" {
		t.Fatal("nil recorder leaked state")
	}
	if err := rec.Finish(MissionEnd{}); err != nil {
		t.Fatalf("nil Finish: %v", err)
	}
	rec.Abandon()
}

func TestQuantile(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if q := Quantile(v, 0.5); q != 3 {
		t.Fatalf("p50=%v want 3", q)
	}
	if q := Quantile(v, 0.99); q != 5 {
		t.Fatalf("p99=%v want 5", q)
	}
	if v[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile=%v", q)
	}
}

// TestFleetStatsSumsDroppedRecords: each mission's Recorder drop
// counter lands in its MissionEnd and FleetStats sums them, so a fleet
// view flags post-mortems with holes without reading bulk records.
func TestFleetStatsSumsDroppedRecords(t *testing.T) {
	s, err := Open(tmpStore(t))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i, drops := range []uint64{3, 0, 4} {
		rec, err := s.Begin(MissionStart{Seed: int64(i), Workload: "navigation"})
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		rec.Tick(Tick{T: 0.2, VDP: 0.1})
		rec.dropped.Add(drops) // simulate recording-queue backpressure
		if err := rec.Finish(MissionEnd{Success: true, Reason: "goal", TotalTime: 5}); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	fl, err := s.FleetStats(Filter{})
	if err != nil {
		t.Fatalf("FleetStats: %v", err)
	}
	if fl.RecordsDropped != 7 {
		t.Fatalf("RecordsDropped = %d, want 7", fl.RecordsDropped)
	}
	m, ok := s.Mission(fl.FlipRates[0].ID)
	if !ok || m.End.Dropped != 3 {
		t.Fatalf("first mission Dropped = %+v, want 3", m.End)
	}
}

// TestStoreInterleavedWriters is the multi-writer layout test: N
// recorders begun in order write round-robin-interleaved records into
// one shared log and finish in REVERSE order, with one writer
// abandoned mid-mission (a crashed daemon executor). Listing,
// per-mission readback isolation, fleet aggregation, recovery after
// reopen, and Compact must all hold on that interleaved layout. The
// unfinished mission writes wild VDP outliers, so the quantile checks
// fail if fleet pooling ever ingests ticks no summary vouches for.
func TestStoreInterleavedWriters(t *testing.T) {
	path := tmpStore(t)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n, ticks = 4, 50
	recs := make([]*Recorder, n)
	ids := make([]string, n)
	for i := range recs {
		rec, err := s.Begin(MissionStart{Seed: int64(i), Workload: "navigation"})
		if err != nil {
			t.Fatalf("Begin %d: %v", i, err)
		}
		recs[i], ids[i] = rec, rec.ID()
	}
	// One tick per mission per round: maximal interleaving. Mission i's
	// VDP signature is 0.1*(i+1); the doomed mission 0 writes 100s.
	for k := 0; k < ticks; k++ {
		for i, rec := range recs {
			vdp := 0.1 * float64(i+1)
			if i == 0 {
				vdp = 100
			}
			rec.Tick(Tick{T: float64(k), VDP: vdp, EnergyJ: float64(k)})
		}
	}
	for i := n - 1; i >= 1; i-- { // reverse completion order
		err := recs[i].Finish(MissionEnd{Success: i%2 == 1, Reason: "goal",
			TotalTime: 10, TotalEnergy: float64(i), Energy: map[string]float64{}})
		if err != nil {
			t.Fatalf("Finish %d: %v", i, err)
		}
	}
	recs[0].Abandon() // ticks hit the log, no summary ever does

	check := func(st *Store, stage string) {
		t.Helper()
		byID := map[string]MissionInfo{}
		for _, m := range st.List(Filter{}) {
			byID[m.Start.ID] = m
		}
		if len(byID) != n {
			t.Fatalf("%s: %d missions listed, want %d", stage, len(byID), n)
		}
		if m := byID[ids[0]]; m.Finished() {
			t.Errorf("%s: abandoned mission %s reads as finished", stage, ids[0])
		}
		for i := 1; i < n; i++ {
			m := byID[ids[i]]
			if !m.Finished() {
				t.Fatalf("%s: mission %s unfinished", stage, ids[i])
			}
			if m.End.Ticks != ticks {
				t.Errorf("%s: mission %s has %d ticks, want %d", stage, ids[i], m.End.Ticks, ticks)
			}
			md, err := st.ReadMission(ids[i])
			if err != nil {
				t.Fatalf("%s: ReadMission %s: %v", stage, ids[i], err)
			}
			want := 0.1 * float64(i+1)
			for _, tk := range md.Ticks {
				if tk.VDP != want {
					t.Fatalf("%s: mission %s readback polluted: VDP %v, want %v",
						stage, ids[i], tk.VDP, want)
				}
			}
		}
		fl, err := st.FleetStats(Filter{})
		if err != nil {
			t.Fatalf("%s: FleetStats: %v", stage, err)
		}
		if fl.Missions != n || fl.Finished != n-1 || fl.Unfinished != 1 {
			t.Errorf("%s: fleet counts %+v, want %d/%d/1", stage, fl, n, n-1)
		}
		if fl.Successes != 2 || fl.Failures != 1 {
			t.Errorf("%s: successes=%d failures=%d, want 2/1", stage, fl.Successes, fl.Failures)
		}
		if fl.Ticks != (n-1)*ticks {
			t.Errorf("%s: fleet ticks %d, want %d (finished only)", stage, fl.Ticks, (n-1)*ticks)
		}
		// The abandoned mission's 100s must not leak into the pooled
		// quantiles: every finished tick is <= 0.4.
		if fl.VDPP99 > 0.4+1e-9 || fl.VDPMean > 0.4 {
			t.Errorf("%s: pooled VDP polluted by unfinished ticks: p99=%v mean=%v",
				stage, fl.VDPP99, fl.VDPMean)
		}
	}
	check(s, "live")

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ro, err := Open(path) // recovery rebuilds the index from the log
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ro.Close()
	check(ro, "reopened")

	dst := filepath.Join(filepath.Dir(path), "compacted.lgvstore")
	kept, err := ro.Compact(dst, Filter{})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if kept != n-1 {
		t.Fatalf("Compact kept %d, want %d", kept, n-1)
	}
	cs, err := Open(dst)
	if err != nil {
		t.Fatalf("open compacted: %v", err)
	}
	defer cs.Close()
	for _, m := range cs.List(Filter{}) {
		if !m.Finished() {
			t.Errorf("compacted store kept unfinished mission %s", m.Start.ID)
		}
	}
	if got := len(cs.List(Filter{})); got != n-1 {
		t.Errorf("compacted store holds %d missions, want %d", got, n-1)
	}
}
