// Package store is the embedded mission store: a dependency-light,
// append-only, format-versioned record log that persists what the
// observability plane (internal/obs, internal/spans) only holds in
// memory — mission metadata, per-tick telemetry snapshots, Algorithm
// 1/2 decisions, fault windows, per-tick critical-path summaries and
// the final mission summary — plus a query layer over it (list
// missions by outcome/seed/fault spec, per-mission VDP/energy time
// series, cross-mission fleet aggregates).
//
// Design goals, in order:
//
//   - Crash safety. Every record is length-prefixed and CRC-32
//     checksummed; on open the file is scanned and a torn or corrupt
//     tail is truncated, never fatal. A mission whose MissionEnd record
//     is missing is listed as unfinished, not lost.
//   - Near-zero hot-path cost. The write path is an asynchronous
//     batched Recorder whose methods are nil-safe no-ops when
//     recording is disabled (mirroring the obs/spans discipline) and
//     never block the mission engine: a full queue drops the record
//     and counts the drop instead.
//   - No dependencies. Standard library only, one file on disk, no
//     server process. The compact in-file index is the MissionEnd
//     record itself: it carries the mission's summary and the byte
//     offset of its MissionStart, so listing and fleet aggregation
//     decode only two small records per mission.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// File layout:
//
//	header:  magic "LGVSTOR1" (8 bytes) | u32 LE format version | u32 LE zero
//	record:  u32 LE payload length | u32 LE CRC-32 (IEEE) of payload | payload
//	payload: kind byte | uvarint mission index (1-based, store order) | JSON body
//
// The mission index inside each payload ties every record to its
// mission even when several recorders interleave records (the future
// -serve daemon multiplexes missions into one store), without
// repeating the mission ID string on every tick.
const (
	magic         = "LGVSTOR1"
	FormatVersion = 1
	headerSize    = 16
	frameSize     = 8 // length + checksum prefix per record

	// maxRecordSize bounds a single record so a corrupt length prefix
	// cannot trigger a huge allocation during recovery.
	maxRecordSize = 16 << 20
)

// Kind identifies a record type. Values are part of the on-disk format
// and must never be renumbered.
type Kind byte

const (
	// KindMissionStart opens a mission: metadata + the full scenario
	// spec when the producer has one.
	KindMissionStart Kind = 1
	// KindTick is one per-tick telemetry snapshot (VDP latency,
	// cumulative energy, Algorithm 2 inputs, velocity).
	KindTick Kind = 2
	// KindDecision is one adaptation decision (Algorithm 1/2 switch or
	// failover) with the inputs behind it.
	KindDecision Kind = 3
	// KindFault is one injected fault window.
	KindFault Kind = 4
	// KindSpanRow is the critical-path decomposition of one traced tick.
	KindSpanRow Kind = 5
	// KindMissionEnd closes a mission with its summary; it doubles as
	// the in-file index entry (it stores the MissionStart offset).
	KindMissionEnd Kind = 6
)

func (k Kind) String() string {
	switch k {
	case KindMissionStart:
		return "mission_start"
	case KindTick:
		return "tick"
	case KindDecision:
		return "decision"
	case KindFault:
		return "fault"
	case KindSpanRow:
		return "span"
	case KindMissionEnd:
		return "mission_end"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// encodeHeader renders the 16-byte file header.
func encodeHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	binary.LittleEndian.PutUint32(h[8:], FormatVersion)
	return h
}

// checkHeader validates a file header and returns its format version.
func checkHeader(h []byte) (uint32, error) {
	if len(h) < headerSize || string(h[:8]) != magic {
		return 0, fmt.Errorf("store: not a mission store (bad magic)")
	}
	v := binary.LittleEndian.Uint32(h[8:])
	if v == 0 || v > FormatVersion {
		return 0, fmt.Errorf("store: unsupported format version %d (this build reads <= %d)", v, FormatVersion)
	}
	return v, nil
}

// appendFrame frames one payload (length + CRC) onto dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendPayload renders kind | uvarint mission | body onto dst.
func appendPayload(dst []byte, kind Kind, mission uint64, body []byte) []byte {
	dst = append(dst, byte(kind))
	dst = binary.AppendUvarint(dst, mission)
	return append(dst, body...)
}

// splitPayload undoes appendPayload.
func splitPayload(p []byte) (kind Kind, mission uint64, body []byte, err error) {
	if len(p) == 0 {
		return 0, 0, nil, fmt.Errorf("store: empty payload")
	}
	kind = Kind(p[0])
	mission, n := binary.Uvarint(p[1:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("store: bad mission index varint")
	}
	return kind, mission, p[1+n:], nil
}
