package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Store is one open mission store file: an append-only record log plus
// the in-memory mission index rebuilt from it on open. Safe for
// concurrent use — appends serialize on a mutex, reads use ReadAt below
// the committed length, so queries can run while missions record.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // committed file length (everything below is valid)

	missions []*missionEntry
	byID     map[string]*missionEntry

	records   int64
	truncated int64 // bytes dropped by crash recovery on open

	encBuf []byte // reused append scratch, guarded by mu
}

// missionEntry is the in-memory index row for one mission.
type missionEntry struct {
	index    uint64 // 1-based store-order index used in record payloads
	start    MissionStart
	startOff int64
	end      *MissionEnd // nil while the mission is unfinished
	endOff   int64       // offset just past the MissionEnd record
}

// Open opens (creating if needed) a mission store. A torn or corrupt
// tail — the crash case for an append-only log — is truncated and
// counted in Stats().TruncatedBytes; everything before it is served.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st := &Store{f: f, path: path, byID: make(map[string]*missionEntry)}
	if err := st.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// recover scans the file, rebuilds the mission index, and truncates
// anything after the last structurally-valid record.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	flen := info.Size()

	if flen < headerSize {
		// Empty or torn-header file: start fresh. A store that never
		// finished writing its 16-byte header held no records.
		s.truncated = flen
		if err := s.f.Truncate(0); err != nil {
			return err
		}
		if _, err := s.f.WriteAt(encodeHeader(), 0); err != nil {
			return err
		}
		s.size = headerSize
		return s.f.Sync()
	}

	hdr := make([]byte, headerSize)
	if _, err := s.f.ReadAt(hdr, 0); err != nil {
		return err
	}
	if _, err := checkHeader(hdr); err != nil {
		return err
	}

	r := io.NewSectionReader(s.f, 0, flen)
	off := int64(headerSize)
	frame := make([]byte, frameSize)
	var payload []byte
	for off < flen {
		if flen-off < frameSize {
			break // torn frame header
		}
		if _, err := r.ReadAt(frame, off); err != nil {
			return err
		}
		plen := int64(binary.LittleEndian.Uint32(frame[0:]))
		want := binary.LittleEndian.Uint32(frame[4:])
		if plen == 0 || plen > maxRecordSize || off+frameSize+plen > flen {
			break // corrupt length or torn payload
		}
		if int64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := r.ReadAt(payload, off+frameSize); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt payload; everything after is suspect
		}
		if err := s.indexRecord(off, payload); err != nil {
			break // structurally valid frame, unparseable payload
		}
		s.records++
		off += frameSize + plen
	}
	if off < flen {
		s.truncated = flen - off
		if err := s.f.Truncate(off); err != nil {
			return err
		}
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.size = off
	return nil
}

// indexRecord folds one valid record into the mission index during
// recovery. Only start/end records decode JSON; bulk records just
// bump their mission's counters.
func (s *Store) indexRecord(off int64, payload []byte) error {
	kind, mission, body, err := splitPayload(payload)
	if err != nil {
		return err
	}
	switch kind {
	case KindMissionStart:
		var ms MissionStart
		if err := json.Unmarshal(body, &ms); err != nil {
			return err
		}
		if mission != uint64(len(s.missions)+1) {
			return fmt.Errorf("store: mission start %q has index %d, want %d", ms.ID, mission, len(s.missions)+1)
		}
		e := &missionEntry{index: mission, start: ms, startOff: off}
		s.missions = append(s.missions, e)
		s.byID[ms.ID] = e
	case KindMissionEnd:
		var me MissionEnd
		if err := json.Unmarshal(body, &me); err != nil {
			return err
		}
		e := s.entryByIndex(mission)
		if e == nil {
			return fmt.Errorf("store: mission end for unknown mission index %d", mission)
		}
		e.end = &me
		e.endOff = off + frameSize + int64(len(payload))
	default:
		if s.entryByIndex(mission) == nil {
			return fmt.Errorf("store: %s record for unknown mission index %d", kind, mission)
		}
	}
	return nil
}

func (s *Store) entryByIndex(idx uint64) *missionEntry {
	if idx == 0 || idx > uint64(len(s.missions)) {
		return nil
	}
	return s.missions[idx-1]
}

// append frames and writes one record, returning its start offset.
func (s *Store) append(kind Kind, mission uint64, v any) (int64, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(kind, mission, body)
}

func (s *Store) appendLocked(kind Kind, mission uint64, body []byte) (int64, error) {
	if s.f == nil {
		return 0, fmt.Errorf("store: closed")
	}
	s.encBuf = s.encBuf[:0]
	payload := appendPayload(s.encBuf[:0], kind, mission, body)
	buf := appendFrame(payload[len(payload):], payload)
	off := s.size
	if _, err := s.f.WriteAt(buf, off); err != nil {
		return 0, err
	}
	s.encBuf = payload[:0]
	s.size = off + int64(len(buf))
	s.records++
	return off, nil
}

// appendBatch writes pre-framed bytes (built with appendFrame) in one
// syscall and returns the batch's start offset.
func (s *Store) appendBatch(framed []byte, records int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("store: closed")
	}
	off := s.size
	if _, err := s.f.WriteAt(framed, off); err != nil {
		return 0, err
	}
	s.size = off + int64(len(framed))
	s.records += records
	return off, nil
}

// Begin opens a new mission and returns its asynchronous Recorder. An
// empty start.ID gets a store-assigned "m<N>" ID; a duplicate ID is an
// error. The MissionStart record is written synchronously so even a
// crashed mission is listed.
func (s *Store) Begin(start MissionStart) (*Recorder, error) {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	if start.ID == "" {
		start.ID = fmt.Sprintf("m%d", len(s.missions)+1)
	}
	if _, dup := s.byID[start.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: mission ID %q already exists", start.ID)
	}
	idx := uint64(len(s.missions) + 1)
	body, err := json.Marshal(start)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	off, err := s.appendLocked(KindMissionStart, idx, body)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	e := &missionEntry{index: idx, start: start, startOff: off}
	s.missions = append(s.missions, e)
	s.byID[start.ID] = e
	s.mu.Unlock()
	return newRecorder(s, e), nil
}

// finishMission writes the MissionEnd record and completes the index
// entry. Called by Recorder.Finish after the queue has drained.
func (s *Store) finishMission(e *missionEntry, end MissionEnd) error {
	end.ID = e.start.ID
	end.StartOff = e.startOff
	body, err := json.Marshal(end)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.appendLocked(KindMissionEnd, e.index, body); err != nil {
		return err
	}
	e.end = &end
	e.endOff = s.size
	return s.f.Sync()
}

// Sync flushes the file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the file. Finish every live Recorder first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Stats describes the store file itself.
type Stats struct {
	Path           string `json:"path"`
	Bytes          int64  `json:"bytes"`
	Records        int64  `json:"records"`
	Missions       int    `json:"missions"`
	Finished       int    `json:"finished"`
	TruncatedBytes int64  `json:"truncated_bytes,omitempty"`
}

// Stats returns file-level statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Path: s.path, Bytes: s.size, Records: s.records,
		Missions: len(s.missions), TruncatedBytes: s.truncated}
	for _, e := range s.missions {
		if e.end != nil {
			st.Finished++
		}
	}
	return st
}
