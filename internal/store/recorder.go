package store

import (
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
)

// recQueueCap bounds the Recorder's in-flight queue. At the engine's
// 5 Hz control rate this is minutes of backlog; if the flusher still
// falls behind (e.g. a stalled disk) records are dropped and counted
// rather than ever blocking the mission engine.
const recQueueCap = 4096

// recItem is one queued record. A flat union keeps the channel send
// allocation-free: the engine hot path copies a value, nothing escapes.
type recItem struct {
	kind  Kind
	tick  Tick
	dec   Decision
	fault Fault
	span  SpanRow
}

// Recorder persists one mission's records asynchronously. All methods
// are safe on a nil receiver (no-ops), mirroring the obs/spans
// discipline, so callers thread a possibly-nil *Recorder everywhere
// without branching. The write side never blocks: a full queue drops
// the record and bumps Dropped.
//
// Recorder methods other than Dropped must be called from one
// goroutine (the mission engine); the flusher goroutine owns the
// bookkeeping below.
type Recorder struct {
	s *Store
	e *missionEntry

	ch      chan recItem
	done    chan struct{}
	dropped atomic.Uint64

	// Flusher-owned (synchronized by the done channel).
	ticks, decisions, faults, spanRows int
	vdps                               []float64
	flushErr                           error

	finished bool
}

func newRecorder(s *Store, e *missionEntry) *Recorder {
	r := &Recorder{
		s:    s,
		e:    e,
		ch:   make(chan recItem, recQueueCap),
		done: make(chan struct{}),
	}
	go r.flush()
	return r
}

// ID returns the store-assigned mission ID ("" on a nil recorder).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.e.start.ID
}

// Tick records one per-tick telemetry snapshot.
func (r *Recorder) Tick(t Tick) {
	if r == nil {
		return
	}
	r.send(recItem{kind: KindTick, tick: t})
}

// Decision records one adaptation decision.
func (r *Recorder) Decision(d Decision) {
	if r == nil {
		return
	}
	r.send(recItem{kind: KindDecision, dec: d})
}

// Fault records one injected fault window.
func (r *Recorder) Fault(f Fault) {
	if r == nil {
		return
	}
	r.send(recItem{kind: KindFault, fault: f})
}

// SpanRow records one critical-path tick decomposition.
func (r *Recorder) SpanRow(sr SpanRow) {
	if r == nil {
		return
	}
	r.send(recItem{kind: KindSpanRow, span: sr})
}

func (r *Recorder) send(it recItem) {
	select {
	case r.ch <- it:
	default:
		r.dropped.Add(1)
	}
}

// replay enqueues a decoded mission's records with blocking sends —
// compaction must be lossless, so the drop-on-full hot-path policy does
// not apply here.
func (r *Recorder) replay(md *MissionData) {
	for _, t := range md.Ticks {
		r.ch <- recItem{kind: KindTick, tick: t}
	}
	for _, d := range md.Decisions {
		r.ch <- recItem{kind: KindDecision, dec: d}
	}
	for _, f := range md.Faults {
		r.ch <- recItem{kind: KindFault, fault: f}
	}
	for _, sr := range md.Spans {
		r.ch <- recItem{kind: KindSpanRow, span: sr}
	}
}

// Dropped returns how many records the bounded queue discarded so far.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// flush is the recorder's single writer goroutine: it drains the queue,
// frames records into one buffer and commits them in batches, keeping
// the per-record cost (JSON encode + CRC) off the engine goroutine.
func (r *Recorder) flush() {
	defer close(r.done)
	var framed []byte
	var batch int64
	commit := func() {
		if batch == 0 {
			return
		}
		if _, err := r.s.appendBatch(framed, batch); err != nil && r.flushErr == nil {
			r.flushErr = err
		}
		framed = framed[:0]
		batch = 0
	}
	for it := range r.ch {
		var (
			v    any
			kind = it.kind
		)
		switch it.kind {
		case KindTick:
			r.ticks++
			r.vdps = append(r.vdps, it.tick.VDP)
			v = &it.tick
		case KindDecision:
			r.decisions++
			v = &it.dec
		case KindFault:
			r.faults++
			v = &it.fault
		case KindSpanRow:
			r.spanRows++
			v = &it.span
		default:
			continue
		}
		body, err := json.Marshal(v)
		if err != nil {
			if r.flushErr == nil {
				r.flushErr = err
			}
			continue
		}
		payload := appendPayload(nil, kind, r.e.index, body)
		framed = appendFrame(framed, payload)
		batch++
		// Commit when the queue is momentarily empty (latency: live
		// readers see ticks promptly) or the batch has grown large.
		if len(r.ch) == 0 || len(framed) >= 1<<20 {
			commit()
		}
	}
	commit()
}

// Finish drains the queue, writes the MissionEnd record (filling the
// recorder's bookkeeping: record counts, per-mission VDP quantiles and
// the drop counter) and syncs the store. The summary argument carries
// the producer's final-Result fields; bookkeeping fields are
// overwritten. Nil-safe; returns the first flush or write error.
func (r *Recorder) Finish(end MissionEnd) error {
	if r == nil {
		return nil
	}
	if r.finished {
		return r.flushErr
	}
	r.finished = true
	close(r.ch)
	<-r.done

	end.Ticks = r.ticks
	end.Decisions = r.decisions
	end.Faults = r.faults
	end.SpanRows = r.spanRows
	end.Dropped = r.dropped.Load()
	end.VDPMean, end.VDPP50, end.VDPP95, end.VDPP99 = vdpStats(r.vdps)

	if err := r.s.finishMission(r.e, end); err != nil {
		return err
	}
	return r.flushErr
}

// Abandon stops the recorder without writing a MissionEnd: the mission
// stays listed as unfinished (the crash outcome, reached voluntarily).
// Nil-safe.
func (r *Recorder) Abandon() {
	if r == nil || r.finished {
		return
	}
	r.finished = true
	close(r.ch)
	<-r.done
}

// vdpStats computes the mean and p50/p95/p99 of a tick-VDP series.
// Sorts in place.
func vdpStats(v []float64) (mean, p50, p95, p99 float64) {
	if len(v) == 0 {
		return 0, 0, 0, 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	sort.Float64s(v)
	return sum / float64(len(v)), quantile(v, 0.50), quantile(v, 0.95), quantile(v, 0.99)
}

// quantile reads quantile q from an ascending-sorted series using the
// nearest-rank method (rank = ceil(q·n)).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}
