package store

import "encoding/json"

// MissionStart opens a mission in the store. Producers fill what they
// know; only ID is required (the store assigns one when empty). Unix is
// wall-clock seconds at mission start and is deliberately excluded from
// determinism comparisons (the simtest round-trip invariant zeroes it).
type MissionStart struct {
	ID       string `json:"id"`
	Unix     int64  `json:"unix,omitempty"`
	Label    string `json:"label,omitempty"`
	Seed     int64  `json:"seed"`
	Workload string `json:"workload,omitempty"`
	Deploy   string `json:"deploy,omitempty"`
	Goal     string `json:"goal,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	// FaultSpec is the compact internal/faults schedule spec ("" = none).
	FaultSpec  string  `json:"faults,omitempty"`
	MaxSimTime float64 `json:"max_sim_time,omitempty"`
	// Scenario carries the producer's full self-contained mission spec
	// when it has one (internal/simtest stores its Scenario JSON here),
	// so a stored mission can be replayed bit-for-bit.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// Tick is one per-tick telemetry snapshot: the VDP pipeline latency and
// cumulative mission energy alongside the Algorithm 2 inputs — the
// per-mission time series the dashboard and query layer serve.
type Tick struct {
	T         float64 `json:"t"`
	VDP       float64 `json:"vdp"` // pipeline latency of this tick, s
	EnergyJ   float64 `json:"e"`   // cumulative Eq. 1a energy, J
	Bandwidth float64 `json:"bw"`  // Algorithm 2 r_t, msgs/s
	Direction float64 `json:"dir"` // Algorithm 2 d_t
	Signal    float64 `json:"sig"` // true link signal (ground truth)
	MaxVel    float64 `json:"vmax"`
	RealVel   float64 `json:"v"`
	RemoteOn  bool    `json:"r,omitempty"`
}

// Decision is one adaptation decision (a placement switch or failover)
// — the JSON-stable mirror of core.AdaptDecision.
type Decision struct {
	T         float64 `json:"t"`
	Reason    string  `json:"reason"`
	Bandwidth float64 `json:"bw"`
	Direction float64 `json:"dir"`
	RemoteOK  bool    `json:"remote_ok"`
	LocalVDP  float64 `json:"local_vdp,omitempty"`
	CloudVDP  float64 `json:"cloud_vdp,omitempty"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	// StateBytes is the migrated mutable node state.
	StateBytes float64 `json:"state_bytes,omitempty"`
}

// Fault is one scheduled disturbance window.
type Fault struct {
	Kind string  `json:"kind"`
	T0   float64 `json:"t0"`
	T1   float64 `json:"t1"`
}

// SpanRow is the stored critical-path decomposition of one traced tick
// (the waterfall row the dashboard renders), condensed from
// spans.TickPath.
type SpanRow struct {
	T         float64 `json:"t"`
	Makespan  float64 `json:"mk"`
	Compute   float64 `json:"cp"`
	Queue     float64 `json:"qu"`
	Transport float64 `json:"tr"`
	// ComputeByHost attributes the compute segment per host.
	ComputeByHost map[string]float64 `json:"hosts,omitempty"`
	Marks         []string           `json:"marks,omitempty"`
}

// MissionEnd closes a mission: the final Result summary plus the
// recorder's bookkeeping. It is also the store's in-file index entry —
// StartOff points back at the MissionStart record, and the summary
// fields let listing and fleet aggregation skip the tick records
// entirely.
type MissionEnd struct {
	ID      string `json:"id"`
	Success bool   `json:"success"`
	Reason  string `json:"reason"`

	TotalTime   float64 `json:"time"`
	MovingTime  float64 `json:"moving"`
	StandbyTime float64 `json:"standby"`
	Distance    float64 `json:"dist"`

	// Energy is Eq. 1a joules per component (map keys marshal sorted,
	// so the encoding is deterministic).
	Energy      map[string]float64 `json:"energy"`
	TotalEnergy float64            `json:"total_energy"`

	MsgsSent        int     `json:"msgs_sent"`
	MsgsDropped     int     `json:"msgs_dropped"`
	MsgsOverwritten int     `json:"msgs_overwritten"`
	BytesUplinked   float64 `json:"bytes_uplinked"`
	Switches        int     `json:"switches"`
	WatchdogStops   int     `json:"watchdog_stops"`
	Failovers       int     `json:"failovers"`
	FaultsInjected  int     `json:"faults_injected"`

	AvgMaxVel   float64 `json:"avg_max_vel"`
	Explored    float64 `json:"explored,omitempty"`
	Covered     float64 `json:"covered,omitempty"`
	CoreSeconds float64 `json:"core_seconds,omitempty"`

	// Recorder bookkeeping, filled by Recorder.Finish (not by the
	// producer): record counts, per-mission tick-VDP quantiles, and how
	// many records the bounded queue dropped.
	Ticks     int     `json:"ticks"`
	Decisions int     `json:"decisions"`
	Faults    int     `json:"fault_windows"`
	SpanRows  int     `json:"span_rows"`
	VDPMean   float64 `json:"vdp_mean"`
	VDPP50    float64 `json:"vdp_p50"`
	VDPP95    float64 `json:"vdp_p95"`
	VDPP99    float64 `json:"vdp_p99"`
	Dropped   uint64  `json:"records_dropped,omitempty"`
	StartOff  int64   `json:"start_off"`
}

// WithoutBookkeeping returns a copy of end with every Recorder-filled field
// zeroed, so producers can compare stored summaries against freshly
// computed ones (the simtest round-trip invariant does this).
func (end MissionEnd) WithoutBookkeeping() MissionEnd {
	end.Ticks = 0
	end.Decisions = 0
	end.Faults = 0
	end.SpanRows = 0
	end.VDPMean = 0
	end.VDPP50 = 0
	end.VDPP95 = 0
	end.VDPP99 = 0
	end.Dropped = 0
	end.StartOff = 0
	return end
}
