package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// MissionInfo is one mission listing row, assembled purely from the
// in-file index (MissionStart + MissionEnd); no tick records are read.
type MissionInfo struct {
	Index uint64       `json:"index"`
	Start MissionStart `json:"start"`
	// End is nil while the mission is running (or if the process died
	// before Finish — the mission is still listed, just unfinished).
	End *MissionEnd `json:"end,omitempty"`
}

// Finished reports whether the mission has a MissionEnd record.
func (m MissionInfo) Finished() bool { return m.End != nil }

// Outcome classifies the mission: "success", "failure" or "unfinished".
func (m MissionInfo) Outcome() string {
	switch {
	case m.End == nil:
		return "unfinished"
	case m.End.Success:
		return "success"
	default:
		return "failure"
	}
}

// Filter selects missions for List and FleetStats. Zero value matches
// everything.
type Filter struct {
	// Outcome filters by MissionInfo.Outcome ("" matches all).
	Outcome string
	// Seed filters by mission seed when HasSeed is set (a pointer-free
	// "optional" so the zero Filter matches seed 0 missions too).
	Seed    int64
	HasSeed bool
	// FaultSpec matches the mission's fault spec as a substring
	// ("" matches all, including fault-free missions).
	FaultSpec string
	// Workload filters by workload name ("" matches all).
	Workload string
	// Limit caps the result count (0 = no cap). Missions are returned
	// in store order; with a limit, the most recent ones win.
	Limit int
}

func (f Filter) match(m MissionInfo) bool {
	if f.Outcome != "" && m.Outcome() != f.Outcome {
		return false
	}
	if f.HasSeed && m.Start.Seed != f.Seed {
		return false
	}
	if f.FaultSpec != "" && !strings.Contains(m.Start.FaultSpec, f.FaultSpec) {
		return false
	}
	if f.Workload != "" && m.Start.Workload != f.Workload {
		return false
	}
	return true
}

// List returns missions matching f in store order.
func (s *Store) List(f Filter) []MissionInfo {
	s.mu.Lock()
	out := make([]MissionInfo, 0, len(s.missions))
	for _, e := range s.missions {
		m := MissionInfo{Index: e.index, Start: e.start, End: e.end}
		if f.match(m) {
			out = append(out, m)
		}
	}
	s.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Mission returns one mission's index row by ID.
func (s *Store) Mission(id string) (MissionInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return MissionInfo{}, false
	}
	return MissionInfo{Index: e.index, Start: e.start, End: e.end}, true
}

// MissionData is one mission fully decoded: the index row plus every
// bulk record in write order.
type MissionData struct {
	MissionInfo
	Ticks     []Tick     `json:"ticks,omitempty"`
	Decisions []Decision `json:"decisions,omitempty"`
	Faults    []Fault    `json:"faults,omitempty"`
	Spans     []SpanRow  `json:"spans,omitempty"`
}

// ReadMission decodes all of one mission's records. For an unfinished
// mission it reads up to the current committed end of file.
func (s *Store) ReadMission(id string) (*MissionData, error) {
	s.mu.Lock()
	e, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: no mission %q", id)
	}
	md := &MissionData{MissionInfo: MissionInfo{Index: e.index, Start: e.start, End: e.end}}
	from, to := e.startOff, s.size
	if e.end != nil {
		to = e.endOff
	}
	idx := e.index
	s.mu.Unlock()

	err := s.scanRange(from, to, func(kind Kind, mission uint64, body []byte) error {
		if mission != idx {
			return nil
		}
		switch kind {
		case KindTick:
			var t Tick
			if err := json.Unmarshal(body, &t); err != nil {
				return err
			}
			md.Ticks = append(md.Ticks, t)
		case KindDecision:
			var d Decision
			if err := json.Unmarshal(body, &d); err != nil {
				return err
			}
			md.Decisions = append(md.Decisions, d)
		case KindFault:
			var fw Fault
			if err := json.Unmarshal(body, &fw); err != nil {
				return err
			}
			md.Faults = append(md.Faults, fw)
		case KindSpanRow:
			var sr SpanRow
			if err := json.Unmarshal(body, &sr); err != nil {
				return err
			}
			md.Spans = append(md.Spans, sr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return md, nil
}

// Ticks decodes just one mission's tick series (the per-mission
// VDP/energy time series).
func (s *Store) Ticks(id string) ([]Tick, error) {
	md, err := s.ReadMission(id)
	if err != nil {
		return nil, err
	}
	return md.Ticks, nil
}

// scanRange replays valid records in [from, to) through fn. Records are
// re-checksummed on read so a query never trusts bytes the recovery
// pass has not seen (to is always <= the committed size).
func (s *Store) scanRange(from, to int64, fn func(kind Kind, mission uint64, body []byte) error) error {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if f == nil {
		return fmt.Errorf("store: closed")
	}
	if from < headerSize {
		from = headerSize
	}
	frame := make([]byte, frameSize)
	var payload []byte
	for off := from; off < to; {
		if to-off < frameSize {
			return fmt.Errorf("store: torn frame at offset %d", off)
		}
		if _, err := f.ReadAt(frame, off); err != nil {
			return err
		}
		plen := int64(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
		want := uint32(frame[4]) | uint32(frame[5])<<8 | uint32(frame[6])<<16 | uint32(frame[7])<<24
		if plen == 0 || plen > maxRecordSize || off+frameSize+plen > to {
			return fmt.Errorf("store: corrupt record length at offset %d", off)
		}
		if int64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := f.ReadAt(payload, off+frameSize); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return fmt.Errorf("store: checksum mismatch at offset %d", off)
		}
		kind, mission, body, err := splitPayload(payload)
		if err != nil {
			return err
		}
		if err := fn(kind, mission, body); err != nil {
			return err
		}
		off += frameSize + plen
	}
	return nil
}

// Fleet aggregates finished missions matching a filter across the whole
// store: outcome counts, pooled tick-VDP quantiles (computed over every
// matching tick record, not quantiles-of-quantiles), energy totals and
// per-mission decision flip rates in store order (the trend series).
type Fleet struct {
	Missions   int `json:"missions"`
	Finished   int `json:"finished"`
	Successes  int `json:"successes"`
	Failures   int `json:"failures"`
	Unfinished int `json:"unfinished"`

	Ticks     int `json:"ticks"`
	Decisions int `json:"decisions"`
	// RecordsDropped sums every finished mission's Recorder drop counter:
	// bulk records (ticks, spans, decisions) the bounded recording queue
	// discarded under backpressure. Nonzero means the post-mortems under
	// this store have holes in their time series.
	RecordsDropped uint64 `json:"records_dropped"`

	TotalEnergy  float64 `json:"total_energy_j"`
	MeanEnergy   float64 `json:"mean_energy_j"`
	MeanMission  float64 `json:"mean_mission_s"`
	SuccessRate  float64 `json:"success_rate"`
	MeanFlipRate float64 `json:"mean_flip_rate"` // decisions per mission-minute

	VDPMean float64 `json:"vdp_mean"`
	VDPP50  float64 `json:"vdp_p50"`
	VDPP95  float64 `json:"vdp_p95"`
	VDPP99  float64 `json:"vdp_p99"`

	// FlipRates is the decision flip-rate trend, one point per finished
	// mission in store order.
	FlipRates []FlipPoint `json:"flip_rates,omitempty"`
}

// FlipPoint is one mission's decision flip rate (switches+failovers per
// simulated minute).
type FlipPoint struct {
	ID   string  `json:"id"`
	Seed int64   `json:"seed"`
	Rate float64 `json:"rate"`
}

// FleetStats aggregates missions matching f. Counts and flip rates come
// from the index; the pooled VDP quantiles come from one sequential
// scan of the matching missions' tick records.
func (s *Store) FleetStats(f Filter) (Fleet, error) {
	all := s.List(Filter{Outcome: f.Outcome, Seed: f.Seed, HasSeed: f.HasSeed,
		FaultSpec: f.FaultSpec, Workload: f.Workload})
	var fl Fleet
	fl.Missions = len(all)
	want := make(map[uint64]bool, len(all))
	for _, m := range all {
		switch m.Outcome() {
		case "unfinished":
			fl.Unfinished++
			continue
		case "success":
			fl.Successes++
		default:
			fl.Failures++
		}
		// Only finished missions feed the pooled VDP scan below: an
		// unfinished (still-writing or crashed) mission's partial ticks
		// would skew the fleet quantiles with data no summary vouches for.
		want[m.Index] = true
		fl.Finished++
		end := m.End
		fl.Ticks += end.Ticks
		fl.Decisions += end.Decisions
		fl.RecordsDropped += end.Dropped
		fl.TotalEnergy += end.TotalEnergy
		fl.MeanMission += end.TotalTime
		rate := 0.0
		if end.TotalTime > 0 {
			rate = float64(end.Decisions) / (end.TotalTime / 60)
		}
		fl.FlipRates = append(fl.FlipRates, FlipPoint{ID: end.ID, Seed: m.Start.Seed, Rate: rate})
		fl.MeanFlipRate += rate
	}
	if fl.Finished > 0 {
		fl.SuccessRate = float64(fl.Successes) / float64(fl.Finished)
		fl.MeanEnergy = fl.TotalEnergy / float64(fl.Finished)
		fl.MeanMission /= float64(fl.Finished)
		fl.MeanFlipRate /= float64(fl.Finished)
	}

	s.mu.Lock()
	size := s.size
	s.mu.Unlock()
	vdps := make([]float64, 0, fl.Ticks)
	err := s.scanRange(headerSize, size, func(kind Kind, mission uint64, body []byte) error {
		if kind != KindTick || !want[mission] {
			return nil
		}
		var t Tick
		if err := json.Unmarshal(body, &t); err != nil {
			return err
		}
		vdps = append(vdps, t.VDP)
		return nil
	})
	if err != nil {
		return Fleet{}, err
	}
	fl.VDPMean, fl.VDPP50, fl.VDPP95, fl.VDPP99 = vdpStats(vdps)
	return fl, nil
}

// Compact copies every finished mission matching f into a fresh store
// at dstPath, dropping unfinished missions, dropped-record gaps and any
// recovered-over garbage, and renumbering mission indexes densely. The
// source store is untouched.
func (s *Store) Compact(dstPath string, f Filter) (kept int, err error) {
	if dstPath == s.path {
		return 0, fmt.Errorf("store: compact target must differ from source")
	}
	dst, err := Open(dstPath)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
	}()
	for _, m := range s.List(f) {
		if m.End == nil {
			continue
		}
		md, err := s.ReadMission(m.Start.ID)
		if err != nil {
			return kept, err
		}
		rec, err := dst.Begin(m.Start)
		if err != nil {
			return kept, err
		}
		// Replay in record-kind order with lossless blocking sends;
		// per-kind write order is preserved, which is all the query
		// layer relies on.
		rec.replay(md)
		if err := rec.Finish(m.End.WithoutBookkeeping()); err != nil {
			return kept, err
		}
		kept++
	}
	return kept, nil
}

// Quantile exposes the store's nearest-rank quantile (used by tests and
// the bench layer so aggregates stay consistent everywhere). Sorts a
// copy; v is untouched.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	return quantile(c, q)
}
