package energy

import "fmt"

// Battery models the LGV's lithium-polymer pack. The paper motivates
// offloading with the Turtlebot3's 19.98 Wh battery, of which the
// embedded computer can draw at most ≈3.35 Wh over a one-hour mission —
// the budget that forces either slow on-board computation or offloading.
type Battery struct {
	CapacityWh float64
	consumedJ  float64
}

// JoulesPerWh converts watt-hours to joules.
const JoulesPerWh = 3600.0

// Turtlebot3Battery returns the paper's 19.98 Wh pack.
func Turtlebot3Battery() *Battery { return &Battery{CapacityWh: 19.98} }

// Drain consumes the given energy; draining past empty clamps at zero
// remaining charge.
func (b *Battery) Drain(joules float64) {
	if joules > 0 {
		b.consumedJ += joules
	}
}

// CapacityJ returns the pack capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.CapacityWh * JoulesPerWh }

// ConsumedJ returns the total energy drained (not clamped).
func (b *Battery) ConsumedJ() float64 { return b.consumedJ }

// RemainingJ returns the remaining charge in joules, clamped at zero.
func (b *Battery) RemainingJ() float64 {
	r := b.CapacityJ() - b.consumedJ
	if r < 0 {
		return 0
	}
	return r
}

// SoC returns the state of charge in [0, 1].
func (b *Battery) SoC() float64 {
	if b.CapacityJ() <= 0 {
		return 0
	}
	return b.RemainingJ() / b.CapacityJ()
}

// Depleted reports whether the pack is empty.
func (b *Battery) Depleted() bool { return b.RemainingJ() <= 0 }

// MissionsPerCharge returns how many missions of the given energy cost a
// full pack sustains.
func (b *Battery) MissionsPerCharge(missionJoules float64) float64 {
	if missionJoules <= 0 {
		return 0
	}
	return b.CapacityJ() / missionJoules
}

// EnduranceHours returns how long the pack lasts at the given average
// power draw.
func (b *Battery) EnduranceHours(watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return b.CapacityWh / watts
}

func (b *Battery) String() string {
	return fmt.Sprintf("Battery{%.2f Wh, %.0f%% remaining}", b.CapacityWh, b.SoC()*100)
}
