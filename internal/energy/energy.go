// Package energy implements the paper's energy model (Eq. 1a–1d): total
// mission energy as the sum of on-board computation energy (Eq. 1c,
// E = k·L·f² over executed cycles), motor energy (Eq. 1d, traction
// physics), fixed sensor/microcontroller draw, and wireless transmission
// energy (Eq. 1b, E = P_trans·D/R_uplink). It also carries the static
// component power table the paper reports as Table I.
package energy

import (
	"fmt"
)

// Component identifies one energy-consuming LGV subsystem.
type Component string

const (
	Sensor          Component = "sensor"
	Motor           Component = "motor"
	Microcontroller Component = "microcontroller"
	Computer        Component = "embedded_computer"
	Wireless        Component = "wireless"
)

// Components lists all components in presentation order.
var Components = []Component{Sensor, Motor, Microcontroller, Computer, Wireless}

// PowerRow is one vehicle's entry in Table I: maximum power per component
// in watts.
type PowerRow struct {
	Vehicle         string
	Sensor          float64
	Motor           float64
	Microcontroller float64
	Computer        float64
}

// Total returns the row's total maximum power.
func (r PowerRow) Total() float64 {
	return r.Sensor + r.Motor + r.Microcontroller + r.Computer
}

// Share returns each component's fraction of the total, in the order
// sensor, motor, microcontroller, computer.
func (r PowerRow) Share() [4]float64 {
	t := r.Total()
	if t == 0 {
		return [4]float64{}
	}
	return [4]float64{r.Sensor / t, r.Motor / t, r.Microcontroller / t, r.Computer / t}
}

// TableI reproduces the paper's Table I: maximum power consumption of
// each component (W) for three commodity LGVs.
func TableI() []PowerRow {
	return []PowerRow{
		{Vehicle: "Turtlebot2", Sensor: 2.5, Motor: 9, Microcontroller: 4.6, Computer: 15},
		{Vehicle: "Turtlebot3", Sensor: 1, Motor: 6.7, Microcontroller: 1, Computer: 6.5},
		{Vehicle: "Pioneer 3DX", Sensor: 0.82, Motor: 10.6, Microcontroller: 4.6, Computer: 15},
	}
}

// Model holds the calibrated coefficients of the Turtlebot3 energy model.
type Model struct {
	// Computation (Eq. 1c): P_ec = IdleComputer + K·(cycles/s)·f², with f
	// in GHz and K in J/(cycle·GHz²). K is calibrated so a fully loaded
	// Pi (4 cores × 1.4 GHz) draws the Table I maximum of 6.5 W.
	K            float64
	FreqGHz      float64
	IdleComputer float64

	// Fixed component draws while the mission runs.
	SensorPower float64
	MicroPower  float64

	// Transmission (Eq. 1b).
	TransmitPower     float64 // P_trans, W
	UplinkBytesPerSec float64 // R_uplink
}

// Turtlebot3Model returns the calibrated model for the paper's vehicle.
func Turtlebot3Model() Model {
	const (
		freq     = 1.4 // GHz
		cores    = 4
		maxPower = 6.5 // Table I embedded computer max, W
		idle     = 1.9 // Pi 3B+ idle draw, W
	)
	cyclesPerSec := freq * 1e9 * cores
	k := (maxPower - idle) / (cyclesPerSec * freq * freq)
	return Model{
		K:                 k,
		FreqGHz:           freq,
		IdleComputer:      idle,
		SensorPower:       1.0,
		MicroPower:        1.0,
		TransmitPower:     1.3,
		UplinkBytesPerSec: 2.5e6,
	}
}

// ComputePower returns the embedded computer's instantaneous power when
// retiring the given number of cycles per second (Eq. 1c).
func (m Model) ComputePower(cyclesPerSec float64) float64 {
	return m.IdleComputer + m.K*cyclesPerSec*m.FreqGHz*m.FreqGHz
}

// ComputeEnergy returns the energy to execute the given cycles on board,
// spread over dt seconds (the idle floor accrues with time, the dynamic
// part with cycles).
func (m Model) ComputeEnergy(cycles, dt float64) float64 {
	return m.IdleComputer*dt + m.K*cycles*m.FreqGHz*m.FreqGHz
}

// TransmitEnergy returns the energy to uplink the given number of bytes
// (Eq. 1b): E = P_trans · D / R_uplink. Receive energy is ignored, as in
// the paper, because downlink payloads (48 B commands) are tiny.
func (m Model) TransmitEnergy(bytes float64) float64 {
	if m.UplinkBytesPerSec <= 0 {
		return 0
	}
	return m.TransmitPower * bytes / m.UplinkBytesPerSec
}

// Meter accumulates per-component energy over a mission.
type Meter struct {
	model  Model
	joules map[Component]float64
	time   float64
}

// NewMeter returns a meter over the given model.
func NewMeter(m Model) *Meter {
	return &Meter{model: m, joules: make(map[Component]float64)}
}

// Model returns the meter's model.
func (mt *Meter) Model() Model { return mt.model }

// Tick advances the meter by dt seconds of mission time, accruing the
// fixed sensor/microcontroller draw and the computer idle floor.
func (mt *Meter) Tick(dt float64) {
	if dt <= 0 {
		return
	}
	mt.time += dt
	mt.joules[Sensor] += mt.model.SensorPower * dt
	mt.joules[Microcontroller] += mt.model.MicroPower * dt
	mt.joules[Computer] += mt.model.IdleComputer * dt
}

// AddMotor accrues motor energy for dt seconds at the given instantaneous
// traction power (from the world's physics step).
func (mt *Meter) AddMotor(power, dt float64) {
	if dt > 0 && power > 0 {
		mt.joules[Motor] += power * dt
	}
}

// AddCycles accrues the dynamic computation energy of executing the given
// on-board cycles (Eq. 1c, dynamic term only — the idle floor accrues in
// Tick).
func (mt *Meter) AddCycles(cycles float64) {
	if cycles > 0 {
		mt.joules[Computer] += mt.model.K * cycles * mt.model.FreqGHz * mt.model.FreqGHz
	}
}

// AddTransmit accrues wireless energy for uplinking the given bytes.
func (mt *Meter) AddTransmit(bytes float64) {
	if bytes > 0 {
		mt.joules[Wireless] += mt.model.TransmitEnergy(bytes)
	}
}

// Component returns the accumulated joules for one component.
func (mt *Meter) Component(c Component) float64 { return mt.joules[c] }

// Total returns the mission's total energy (Eq. 1a). The sum runs in
// fixed Components order: float addition is not associative, and a map
// iteration here would make the last ulp of the total depend on
// iteration order, breaking run-to-run determinism.
func (mt *Meter) Total() float64 {
	var t float64
	for _, c := range Components {
		t += mt.joules[c]
	}
	return t
}

// Elapsed returns the mission time the meter has accrued.
func (mt *Meter) Elapsed() float64 { return mt.time }

// Breakdown returns (component, joules) pairs in presentation order,
// including zero entries.
func (mt *Meter) Breakdown() []ComponentEnergy {
	rows := make([]ComponentEnergy, 0, len(Components))
	for _, c := range Components {
		rows = append(rows, ComponentEnergy{Component: c, Joules: mt.joules[c]})
	}
	return rows
}

// ComponentEnergy is one row of an energy breakdown.
type ComponentEnergy struct {
	Component Component
	Joules    float64
}

func (ce ComponentEnergy) String() string {
	return fmt.Sprintf("%-18s %8.1f J", ce.Component, ce.Joules)
}
