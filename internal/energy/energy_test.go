package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIShares(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper percentages: Turtlebot3 = 6.5%, 44%, 6.5%, 43%.
	tb3 := rows[1]
	if tb3.Vehicle != "Turtlebot3" {
		t.Fatalf("row order: %v", tb3.Vehicle)
	}
	s := tb3.Share()
	want := [4]float64{0.065, 0.44, 0.065, 0.43}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 0.02 {
			t.Errorf("share[%d] = %.3f, want ≈ %.3f", i, s[i], want[i])
		}
	}
	// Motors + computer dominate in every vehicle (the paper's key claim).
	for _, r := range rows {
		sh := r.Share()
		if sh[1]+sh[3] < 0.7 {
			t.Errorf("%s: motor+computer share %.2f < 0.7", r.Vehicle, sh[1]+sh[3])
		}
	}
}

func TestShareZeroRow(t *testing.T) {
	var r PowerRow
	if r.Share() != [4]float64{} {
		t.Error("zero row share should be zeros")
	}
}

func TestModelCalibration(t *testing.T) {
	m := Turtlebot3Model()
	// Fully loaded Pi: 4 cores × 1.4 GHz.
	p := m.ComputePower(4 * 1.4e9)
	if math.Abs(p-6.5) > 1e-9 {
		t.Errorf("full-load power = %v, want 6.5", p)
	}
	if idle := m.ComputePower(0); idle != m.IdleComputer {
		t.Errorf("idle power = %v", idle)
	}
}

func TestComputeEnergyMatchesPower(t *testing.T) {
	m := Turtlebot3Model()
	// Executing c cycles over dt at rate c/dt must equal power × dt.
	c, dt := 2.8e9, 2.0
	e := m.ComputeEnergy(c, dt)
	p := m.ComputePower(c / dt)
	if math.Abs(e-p*dt) > 1e-9 {
		t.Errorf("energy %v != power·dt %v", e, p*dt)
	}
}

func TestTransmitEnergy(t *testing.T) {
	m := Turtlebot3Model()
	// E = P·D/R: 2.5 MB at 2.5 MB/s = 1 s of 1.3 W.
	if e := m.TransmitEnergy(2.5e6); math.Abs(e-1.3) > 1e-9 {
		t.Errorf("transmit energy = %v", e)
	}
	if m.TransmitEnergy(0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	bad := m
	bad.UplinkBytesPerSec = 0
	if bad.TransmitEnergy(100) != 0 {
		t.Error("zero rate must not divide by zero")
	}
}

func TestTransmitEnergyIsSmallForLGVPayloads(t *testing.T) {
	// The paper's observation: wireless energy is negligible because the
	// max payload is 2.94 KB. A 100 s mission at 5 Hz scans: 500 × 2.94 KB.
	m := Turtlebot3Model()
	e := m.TransmitEnergy(500 * 2940)
	if e > 2.0 {
		t.Errorf("mission transmit energy = %v J — should be ~1 J, tiny vs motor", e)
	}
}

func TestMeterAccumulation(t *testing.T) {
	mt := NewMeter(Turtlebot3Model())
	mt.Tick(10)
	if got := mt.Component(Sensor); math.Abs(got-10) > 1e-9 {
		t.Errorf("sensor = %v", got)
	}
	if got := mt.Component(Microcontroller); math.Abs(got-10) > 1e-9 {
		t.Errorf("micro = %v", got)
	}
	if got := mt.Component(Computer); math.Abs(got-19) > 1e-9 {
		t.Errorf("computer idle = %v", got)
	}
	mt.AddMotor(3.0, 10)
	if got := mt.Component(Motor); math.Abs(got-30) > 1e-9 {
		t.Errorf("motor = %v", got)
	}
	mt.AddCycles(1.4e9 * 4 * 10) // 10 s of full load (dynamic part)
	wantDyn := (6.5 - 1.9) * 10
	if got := mt.Component(Computer); math.Abs(got-(19+wantDyn)) > 1e-6 {
		t.Errorf("computer total = %v, want %v", got, 19+wantDyn)
	}
	mt.AddTransmit(2.5e6)
	if got := mt.Component(Wireless); math.Abs(got-1.3) > 1e-9 {
		t.Errorf("wireless = %v", got)
	}
	sum := 10 + 10 + 19 + 30 + wantDyn + 1.3
	if got := mt.Total(); math.Abs(got-sum) > 1e-6 {
		t.Errorf("total = %v, want %v", got, sum)
	}
	if mt.Elapsed() != 10 {
		t.Errorf("elapsed = %v", mt.Elapsed())
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	mt := NewMeter(Turtlebot3Model())
	mt.Tick(-1)
	mt.AddMotor(-5, 1)
	mt.AddMotor(5, -1)
	mt.AddCycles(-100)
	mt.AddTransmit(-100)
	if mt.Total() != 0 || mt.Elapsed() != 0 {
		t.Error("non-positive inputs must not accrue")
	}
}

func TestMeterBreakdownOrder(t *testing.T) {
	mt := NewMeter(Turtlebot3Model())
	mt.Tick(1)
	rows := mt.Breakdown()
	if len(rows) != len(Components) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, c := range Components {
		if rows[i].Component != c {
			t.Errorf("row %d = %v, want %v", i, rows[i].Component, c)
		}
	}
}

func TestMeterMonotoneProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		mt := NewMeter(Turtlebot3Model())
		prev := 0.0
		for _, s := range steps {
			mt.Tick(float64(s) * 0.01)
			mt.AddMotor(2, float64(s)*0.01)
			if mt.Total() < prev-1e-12 {
				return false
			}
			prev = mt.Total()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
