package energy

import (
	"math"
	"testing"
)

func TestBatteryBasics(t *testing.T) {
	b := Turtlebot3Battery()
	if b.CapacityWh != 19.98 {
		t.Errorf("capacity = %v", b.CapacityWh)
	}
	if math.Abs(b.CapacityJ()-19.98*3600) > 1e-9 {
		t.Errorf("capacity J = %v", b.CapacityJ())
	}
	if b.SoC() != 1 || b.Depleted() {
		t.Error("fresh pack should be full")
	}
	b.Drain(b.CapacityJ() / 2)
	if math.Abs(b.SoC()-0.5) > 1e-12 {
		t.Errorf("SoC = %v", b.SoC())
	}
	b.Drain(b.CapacityJ()) // overdrain
	if !b.Depleted() || b.RemainingJ() != 0 {
		t.Error("overdrained pack should clamp at empty")
	}
	if b.SoC() != 0 {
		t.Errorf("SoC = %v", b.SoC())
	}
	// Negative drain ignored.
	before := b.ConsumedJ()
	b.Drain(-100)
	if b.ConsumedJ() != before {
		t.Error("negative drain must be ignored")
	}
}

func TestMissionsPerCharge(t *testing.T) {
	b := Turtlebot3Battery()
	// The paper's headline: a ~550 J offloaded mission vs ~860 J local.
	local := b.MissionsPerCharge(860)
	off := b.MissionsPerCharge(550)
	if off <= local {
		t.Error("offloading must extend missions per charge")
	}
	if math.Abs(off/local-860.0/550.0) > 1e-9 {
		t.Error("ratio should equal energy ratio")
	}
	if b.MissionsPerCharge(0) != 0 {
		t.Error("zero-cost mission should return 0 (undefined)")
	}
}

func TestEnduranceHours(t *testing.T) {
	b := Turtlebot3Battery()
	// The paper: the embedded computer alone at 3.35 W runs ~6 h, but the
	// whole robot at ~15 W barely exceeds 1.3 h.
	if h := b.EnduranceHours(19.98); math.Abs(h-1.0) > 1e-9 {
		t.Errorf("endurance at capacity draw = %v h", h)
	}
	if b.EnduranceHours(0) != 0 {
		t.Error("zero draw is undefined → 0")
	}
}

func TestBatteryString(t *testing.T) {
	if Turtlebot3Battery().String() == "" {
		t.Error("empty String")
	}
}
