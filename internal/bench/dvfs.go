package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
)

// RunDVFS runs the Eq. 1c ablation: sweep the LGV's clock frequency and
// compare the energy/time trade against simply offloading. The paper
// notes that LGV processors are "commonly non-adjustable" and that
// reducing workload cycles hurts accuracy — this experiment quantifies
// the third option it dismisses: even a generous DVFS range cannot match
// what one offloaded deployment buys, because computation power falls
// with f² while mission time grows and the motor/sensor/idle draws keep
// accruing for the whole longer mission.
func RunDVFS(w io.Writer, quick bool) error {
	freqs := []float64{0.6, 1.0, 1.4}
	hr(w, "DVFS ablation — local clock frequency vs offloading (Eq. 1c: P = k·L·f²)")
	fmt.Fprintf(w, "%-16s %8s %9s %9s %12s %12s\n",
		"config", "success", "time(s)", "E(J)", "computerW", "vmax(m/s)")
	for _, f := range freqs {
		cfg := labNav(core.DeployLocal(), quick)
		cfg.LocalFreqGHz = f
		res, err := run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "local @%.1f GHz   %8v %9.1f %9.0f %12.2f %12.3f\n",
			f, res.Success, res.TotalTime, res.TotalEnergy,
			res.Energy[energy.Computer]/res.TotalTime, res.AvgMaxVel)
	}
	res, err := run(labNav(core.DeployEdge(8), quick))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %8v %9.1f %9.0f %12.2f %12.3f\n",
		"edge+8T", res.Success, res.TotalTime, res.TotalEnergy,
		res.Energy[energy.Computer]/res.TotalTime, res.AvgMaxVel)
	fmt.Fprintln(w, "\nPaper's reading: tuning f trades computation power against mission time")
	fmt.Fprintln(w, "inside a narrow band; offloading moves the cycles off the battery entirely")
	fmt.Fprintln(w, "AND shortens the mission — no frequency setting reaches it.")
	return nil
}
