package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
)

// RunTable1 prints Table I: maximum power consumption per component for
// three commodity LGVs, with each component's share of the total.
func RunTable1(w io.Writer, _ bool) error {
	hr(w, "Table I: maximum power consumption of each component (W)")
	fmt.Fprintf(w, "%-12s %10s %10s %16s %10s %8s\n",
		"LGV", "Sensor", "Motor", "Microcontroller", "Computer", "Total")
	for _, r := range energy.TableI() {
		s := r.Share()
		fmt.Fprintf(w, "%-12s %5.2f (%2.0f%%) %5.2f (%2.0f%%) %10.2f (%2.0f%%) %5.2f (%2.0f%%) %7.2f\n",
			r.Vehicle,
			r.Sensor, s[0]*100, r.Motor, s[1]*100,
			r.Microcontroller, s[2]*100, r.Computer, s[3]*100, r.Total())
	}
	fmt.Fprintln(w, "\nPaper's reading: motors and the embedded computer dominate every vehicle,")
	fmt.Fprintln(w, "which is why offloading targets computation and why motor energy cannot improve.")
	return nil
}

// paperTable2 holds the published Gigacycle breakdown for comparison.
var paperTable2 = map[string]map[string]float64{
	"with map": {
		core.NodeLocalization: 0.028,
		core.NodeCostmap:      0.857,
		core.NodePlanner:      0.055,
		core.NodeTracking:     1.385,
	},
	"without map": {
		core.NodeSLAM:        3.327,
		core.NodeCostmap:     0.685,
		core.NodePlanner:     0.052,
		core.NodeExploration: 0.011,
		core.NodeTracking:    1.207,
	},
}

// RunTable2 reproduces Table II: run both workloads on the LGV placement
// and report each node's cycles and share, next to the paper's shares.
func RunTable2(w io.Writer, quick bool) error {
	run := func(label string, cfg core.MissionConfig) error {
		res, err := run(cfg)
		if err != nil {
			return err
		}
		hr(w, fmt.Sprintf("Table II (%s): cycle breakdown — %s, %.0f s mission", label,
			map[bool]string{true: "completed", false: res.Reason}[res.Success], res.TotalTime))
		paper := paperTable2[label]
		var paperTotal float64
		for _, gc := range paper {
			paperTotal += gc
		}
		fmt.Fprintf(w, "%-16s %14s %8s %14s %6s\n",
			"node", "measured Gc", "share", "paper share", "ECN?")
		classes := core.Classify(res.Cycles)
		for _, r := range res.Cycles.Breakdown() {
			paperShare := paper[r.Node] / paperTotal
			ecn := ""
			for _, c := range classes {
				if c.Node == r.Node && c.ECN {
					ecn = "ECN"
				}
			}
			fmt.Fprintf(w, "%-16s %14.3f %7.1f%% %13.1f%% %6s\n",
				r.Node, r.Work.Total()/1e9, r.Share*100, paperShare*100, ecn)
		}
		return nil
	}
	// Table II's local measurement context: everything on the Pi. A quick
	// run uses the small rooms; the full run uses the lab with the edge
	// deployment so the missions finish (placement does not change the
	// workload's cycle counts, which is the point of Table II).
	d := core.DeployEdge(8)
	if err := run("with map", labNav(d, quick)); err != nil {
		return err
	}
	return run("without map", labExplore(d, quick))
}

// Table2Shares runs the with-map workload and returns each node's cycle
// share — used by integration tests to assert the Table II shape.
func Table2Shares(quick bool) (map[string]float64, error) {
	res, err := run(labNav(core.DeployEdge(8), quick))
	if err != nil {
		return nil, err
	}
	total := res.Cycles.Total().Total()
	out := make(map[string]float64)
	for _, r := range res.Cycles.Breakdown() {
		out[r.Node] = r.Work.Total() / total
	}
	return out, nil
}
