// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§VIII) from the simulated
// substrate and prints paper-vs-measured comparisons. Each experiment is
// addressable by the ID used in `cmd/reproduce -exp <id>`.
//
// Absolute numbers come from the calibrated platform model, so they are
// not expected to equal the paper's testbed measurements; the harness
// asserts and reports the *shape*: which deployment wins, by roughly
// what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"io"
	"sort"

	"lgvoffload/internal/core"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/world"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	// Run writes the regenerated table/figure to w. In quick mode the
	// experiment shrinks its workload (for tests); full mode matches the
	// paper's parameter ranges.
	Run func(w io.Writer, quick bool) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: component power of commodity LGVs", Run: RunTable1},
		{ID: "table2", Title: "Table II: cycle breakdown per work node", Run: RunTable2},
		{ID: "fig3", Title: "Fig. 3: analytical model factor relationships", Run: RunFig3},
		{ID: "fig9", Title: "Fig. 9: ECN (SLAM) time vs threads × particles", Run: RunFig9},
		{ID: "fig10", Title: "Fig. 10: VDP time vs threads × samples", Run: RunFig10},
		{ID: "fig11", Title: "Fig. 11: UDP latency/bandwidth under mobility", Run: RunFig11},
		{ID: "fig12", Title: "Fig. 12: maximum velocity per deployment", Run: RunFig12},
		{ID: "fig13", Title: "Fig. 13: energy and mission time per deployment", Run: RunFig13},
		{ID: "fig14", Title: "Fig. 14: maximum vs real velocity phases", Run: RunFig14},
		{ID: "alg1", Title: "Algorithm 1 ablation: EC vs MCT goals", Run: RunAlg1},
		{ID: "alg2", Title: "Algorithm 2 ablation: bandwidth+direction vs tail latency", Run: RunAlg2},
		{ID: "battery", Title: "Battery endurance: missions per charge (extension)", Run: RunBattery},
		{ID: "fleet", Title: "Fleet scaling: edge vs cloud under server sharing (extension)", Run: RunFleet},
		{ID: "dvfs", Title: "DVFS ablation: local frequency scaling vs offloading (extension)", Run: RunDVFS},
		{ID: "vision", Title: "Vision-based LGV: tracking losses vs speed (extension, §IX)", Run: RunVision},
		{ID: "apsel", Title: "AP-selection baseline vs Algorithm 2 (related work, §X)", Run: RunAPSel},
		{ID: "chaos", Title: "Chaos: scripted faults — watchdog, failover, degradation (extension)", Run: RunChaos},
		{ID: "critpath", Title: "Critical path: per-tick VDP decomposition via causal tracing (extension)", Run: RunCritPath},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ---------------------------------------------------------------------------
// Shared mission configurations.

// labNav is the standard known-map mission: cross the lab.
func labNav(d core.Deployment, quick bool) core.MissionConfig {
	cfg := core.MissionConfig{
		Workload:   core.NavigationWithMap,
		Map:        world.LabMap(),
		Start:      geom.P(0.6, 0.6, 0),
		Goal:       geom.V(11, 5),
		WAP:        geom.V(6, 3),
		Deployment: d,
		Seed:       42,
		MaxSimTime: 900,
	}
	if quick {
		cfg.Map = world.EmptyRoomMap(6, 4, 0.05)
		cfg.Start = geom.P(0.8, 2, 0)
		cfg.Goal = geom.V(5.2, 2)
		cfg.WAP = geom.V(3, 2)
		cfg.MaxSimTime = 300
	}
	return cfg
}

// labExplore is the standard unknown-map mission: map the lab.
func labExplore(d core.Deployment, quick bool) core.MissionConfig {
	cfg := core.MissionConfig{
		Workload:   core.ExplorationNoMap,
		Map:        world.LabMap(),
		Start:      geom.P(0.6, 0.6, 0),
		WAP:        geom.V(6, 3),
		Deployment: d,
		Seed:       42,
		MaxSimTime: 1800,
	}
	if quick {
		cfg.Map = world.EmptyRoomMap(5, 4, 0.05)
		cfg.Start = geom.P(1, 2, 0)
		cfg.WAP = geom.V(2.5, 2)
		cfg.MaxSimTime = 300
		cfg.SlamParticles = 15
	}
	return cfg
}

// deployments returns the five Fig. 12/13 configurations.
func deployments() []core.Deployment {
	return []core.Deployment{
		core.DeployLocal(),
		core.DeployEdge(1),
		core.DeployEdge(8),
		core.DeployCloud(1),
		core.DeployCloud(12),
	}
}

func hr(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
