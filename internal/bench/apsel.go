package bench

import (
	"fmt"
	"io"
	"math/rand"

	"lgvoffload/internal/core"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
)

// RunAPSel runs the §X related-work comparison: prior robustness work
// selects among multiple access points by bandwidth estimation, which
// "cannot work when there are no multiple optional communication links".
// A corridor walk is driven under one and two WAPs; the AP-selection
// baseline keeps the robot connected only where *some* AP reaches it,
// while Algorithm 2 guarantees control continuity with a single AP by
// migrating computation home.
func RunAPSel(w io.Writer, quick bool) error {
	length := 24.0
	duration := 120.0
	if quick {
		length = 16.0
		duration = 80.0
	}
	speed := 2 * length / duration // out and back

	type result struct {
		scenario, policy  string
		remoteAvail, ctrl float64
		apSwitches, drops int
	}
	var results []result

	walk := func(waps []geom.Vec2, alg2 bool) result {
		links := make([]*netsim.Link, len(waps))
		meters := make([]*netsim.BandwidthMeter, len(waps))
		for i, wap := range waps {
			cfg := netsim.DefaultEdgeLink(wap)
			cfg.GoodRange = 4
			cfg.FadeRange = 9
			links[i] = netsim.NewLink(cfg, rand.New(rand.NewSource(int64(7+i))))
			meters[i] = netsim.NewBandwidthMeter()
		}
		ctl := core.NewNetController(4)
		active := 0
		res := result{}
		usable, controlled, ticks := 0, 0, 0
		for now := 0.2; now < duration; now += 0.2 {
			x := speed * now
			if now > duration/2 {
				x = speed * (duration - now)
			}
			pos := geom.V(x, 1.5)
			for i := range links {
				links[i].SetRobotPos(pos)
			}
			// Probe every AP (the baseline's bandwidth assessment).
			for i := range links {
				if arrive, dropped := links[i].Send(now, 64); !dropped {
					meters[i].Observe(arrive)
				} else {
					res.drops++
				}
			}
			// AP selection: switch to the AP with the best bandwidth.
			best := active
			for i := range meters {
				if meters[i].Rate(now) > meters[best].Rate(now)+1 {
					best = i
				}
			}
			if best != active {
				active = best
				res.apSwitches++
			}
			ticks++
			remoteUp := meters[active].Rate(now) >= 4
			if remoteUp {
				usable++
			}
			if alg2 {
				// Algorithm 2 gates remote use, but the robot always
				// retains control: local execution is the fallback.
				ctl.Update(meters[active].Rate(now), links[active].Direction())
				controlled++
			} else if remoteUp {
				// The baseline has no local fallback: its pinned-remote
				// pipeline only works while an AP is reachable.
				controlled++
			}
		}
		res.remoteAvail = float64(usable) / float64(ticks)
		res.ctrl = float64(controlled) / float64(ticks)
		return res
	}

	oneWAP := []geom.Vec2{{X: 0, Y: 1.5}}
	twoWAPs := []geom.Vec2{{X: 0, Y: 1.5}, {X: length, Y: 1.5}}

	r := walk(oneWAP, false)
	r.scenario, r.policy = "1 WAP", "AP selection [63-67]"
	results = append(results, r)
	r = walk(oneWAP, true)
	r.scenario, r.policy = "1 WAP", "Algorithm 2"
	results = append(results, r)
	r = walk(twoWAPs, false)
	r.scenario, r.policy = "2 WAPs", "AP selection [63-67]"
	results = append(results, r)
	r = walk(twoWAPs, true)
	r.scenario, r.policy = "2 WAPs", "Algorithm 2"
	results = append(results, r)

	hr(w, "§X related work — AP selection vs Algorithm 2 on a corridor walk")
	fmt.Fprintf(w, "%-10s %-22s %16s %18s %10s\n",
		"scenario", "policy", "remote avail.", "control avail.", "AP switches")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %-22s %15.0f%% %17.0f%% %10d\n",
			r.scenario, r.policy, r.remoteAvail*100, r.ctrl*100, r.apSwitches)
	}
	fmt.Fprintln(w, "\nPaper's reading: with two APs both approaches keep the link alive; with a")
	fmt.Fprintln(w, "single AP the selection baseline has nothing to select — only Algorithm 2's")
	fmt.Fprintln(w, "migration keeps the vehicle under control through the dead zone.")
	return nil
}

// APSelAvailability exposes the four (remote, control) availabilities
// for tests: single-WAP baseline, single-WAP Alg2.
func APSelAvailability() (baseCtrl, alg2Ctrl float64) {
	var buf discard
	_ = RunAPSel(&buf, true)
	// Recompute directly (cheaper than parsing).
	// The walk function is inlined above; duplicate the essential bits.
	return apselCtrl(false), apselCtrl(true)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func apselCtrl(alg2 bool) float64 {
	length, duration := 16.0, 80.0
	speed := 2 * length / duration
	cfg := netsim.DefaultEdgeLink(geom.V(0, 1.5))
	cfg.GoodRange = 4
	cfg.FadeRange = 9
	link := netsim.NewLink(cfg, rand.New(rand.NewSource(7)))
	meter := netsim.NewBandwidthMeter()
	controlled, ticks := 0, 0
	for now := 0.2; now < duration; now += 0.2 {
		x := speed * now
		if now > duration/2 {
			x = speed * (duration - now)
		}
		link.SetRobotPos(geom.V(x, 1.5))
		if arrive, dropped := link.Send(now, 64); !dropped {
			meter.Observe(arrive)
		}
		ticks++
		if alg2 || meter.Rate(now) >= 4 {
			controlled++
		}
	}
	return float64(controlled) / float64(ticks)
}
