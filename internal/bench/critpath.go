package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/spans"
)

// RunCritPath is the critical-path decomposition experiment: the lab
// navigation mission runs under each deployment with causal tracing on,
// and each control tick's VDP makespan is split into its compute, queue
// and transport segments (per host for compute). The split is exact by
// construction — the spans are built from the same latency quantities
// the engine schedules with — so the table is the measured counterpart
// of the paper's analytical model: T_VDP = T_proc + T_queue + T_net.
func RunCritPath(w io.Writer, quick bool) error {
	hr(w, "Critical path — per-tick VDP decomposition (causal tracing)")
	fmt.Fprintln(w, "Each row aggregates one mission's traced ticks; ms at p50/p95.")
	fmt.Fprintf(w, "%-24s %6s | %18s %18s %18s\n",
		"policy", "ticks", "compute p50/p95", "queue p50/p95", "transport p50/p95")
	for _, d := range deployments() {
		tr := spans.NewTracer(0)
		cfg := labNav(d, quick)
		cfg.Tracer = tr
		if _, err := run(cfg); err != nil {
			return err
		}
		s := spans.Summarize(spans.AnalyzeTicks(tr.Spans()))
		fmt.Fprintf(w, "%-24s %6d | %8.2f / %-7.2f %8.2f / %-7.2f %8.2f / %-7.2f\n",
			d.Name, s.Ticks,
			s.ComputeP50*1e3, s.ComputeP95*1e3,
			s.QueueP50*1e3, s.QueueP95*1e3,
			s.TransportP50*1e3, s.TransportP95*1e3)
	}
	fmt.Fprintln(w, "\nReading: local compute dominates the baseline's makespan; offloading")
	fmt.Fprintln(w, "trades most of that compute for transport+queue time, which is why the")
	fmt.Fprintln(w, "win hinges on the link (Fig. 11) and why Algorithm 2 watches it. Load")
	fmt.Fprintln(w, "`lgvsim -trace out.json` output in Perfetto to see the same split per tick.")
	return nil
}
