package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/world"
)

// RunFig12 regenerates Figure 12: the maximum velocity of the LGV over a
// navigation mission under the five offloading deployments.
func RunFig12(w io.Writer, quick bool) error {
	hr(w, "Fig. 12 — maximum velocity (m/s) during navigation, per deployment")

	type row struct {
		name  string
		avg   float64
		trace []core.TracePoint
		t     float64
	}
	var rows []row
	for _, d := range deployments() {
		cfg := labNav(d, quick)
		cfg.RecordTrace = true
		res, err := run(cfg)
		if err != nil {
			return err
		}
		rows = append(rows, row{name: d.Name, avg: res.AvgMaxVel, trace: res.Trace, t: res.TotalTime})
	}

	fmt.Fprintf(w, "%-10s %12s %12s\n", "deployment", "avg vmax", "mission(s)")
	var local float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.3f %12.1f\n", r.name, r.avg, r.t)
		if r.name == "local" {
			local = r.avg
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.avg > best {
			best = r.avg
		}
	}
	fmt.Fprintf(w, "\nbest offloaded vmax / local vmax = %.2fx (paper: 4–5x)\n", best/local)

	// Velocity time series, downsampled, for the best deployment and local.
	hr(w, "Fig. 12 — velocity trace samples (t, vmax)")
	for _, r := range rows {
		if r.name != "local" && r.avg != best {
			continue
		}
		fmt.Fprintf(w, "%s:", r.name)
		step := len(r.trace) / 12
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(r.trace); i += step {
			fmt.Fprintf(w, " (%.0fs, %.2f)", r.trace[i].T, r.trace[i].MaxVel)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig12AvgVmax runs the Fig. 12 sweep and returns deployment → average
// maximum velocity, for tests.
func Fig12AvgVmax(quick bool) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, d := range deployments() {
		res, err := run(labNav(d, quick))
		if err != nil {
			return nil, err
		}
		out[d.Name] = res.AvgMaxVel
	}
	return out, nil
}

// fig13Summary is one deployment's end-to-end outcome.
type fig13Summary struct {
	Name    string
	Success bool
	Time    float64
	Energy  map[energy.Component]float64
	Total   float64
}

func runFig13Workload(wl core.Workload, quick bool) ([]fig13Summary, error) {
	var out []fig13Summary
	for _, d := range deployments() {
		var cfg core.MissionConfig
		if wl == core.NavigationWithMap {
			cfg = labNav(d, quick)
		} else {
			cfg = labExplore(d, quick)
		}
		res, err := run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig13Summary{
			Name: d.Name, Success: res.Success, Time: res.TotalTime,
			Energy: res.Energy, Total: res.TotalEnergy,
		})
	}
	return out, nil
}

// RunFig13 regenerates Figure 13: total energy consumption by component
// and mission completion time for both workloads across the five
// deployments, with the reduction factors the paper headlines.
func RunFig13(w io.Writer, quick bool) error {
	for _, wl := range []core.Workload{core.NavigationWithMap, core.ExplorationNoMap} {
		rows, err := runFig13Workload(wl, quick)
		if err != nil {
			return err
		}
		hr(w, fmt.Sprintf("Fig. 13 (%s) — energy (J) by component and mission time", wl))
		fmt.Fprintf(w, "%-10s %5s %8s %8s %8s %8s %8s %9s %9s\n",
			"deploy", "ok", "sensor", "motor", "micro", "computer", "wireless", "total(J)", "time(s)")
		var local, bestTotal, bestTime fig13Summary
		bestTotal.Total = 1e18
		bestTime.Time = 1e18
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %5v %8.0f %8.0f %8.0f %8.0f %8.1f %9.0f %9.1f\n",
				r.Name, r.Success,
				r.Energy[energy.Sensor], r.Energy[energy.Motor],
				r.Energy[energy.Microcontroller], r.Energy[energy.Computer],
				r.Energy[energy.Wireless], r.Total, r.Time)
			if r.Name == "local" {
				local = r
			}
			if r.Success && r.Total < bestTotal.Total {
				bestTotal = r
			}
			if r.Success && r.Time < bestTime.Time {
				bestTime = r
			}
		}
		paperE, paperT := "1.61x", "2.53x"
		if wl == core.ExplorationNoMap {
			paperE, paperT = "2.12x", "1.60x"
		}
		fmt.Fprintf(w, "\nenergy reduction vs local: %.2fx (%s, paper: %s)\n",
			local.Total/bestTotal.Total, bestTotal.Name, paperE)
		fmt.Fprintf(w, "time reduction vs local:   %.2fx (%s, paper: %s)\n",
			local.Time/bestTime.Time, bestTime.Name, paperT)
		fmt.Fprintf(w, "motor energy local/best: %.2fx (paper: ≈1, motors don't benefit)\n",
			local.Energy[energy.Motor]/bestTotal.Energy[energy.Motor])
	}
	return nil
}

// Fig13Reductions runs one workload and returns (energy, time) reduction
// factors of the best deployment vs local, for tests.
func Fig13Reductions(wl core.Workload, quick bool) (eRed, tRed float64, err error) {
	rows, err := runFig13Workload(wl, quick)
	if err != nil {
		return 0, 0, err
	}
	var local fig13Summary
	bestE, bestT := 1e18, 1e18
	for _, r := range rows {
		if r.Name == "local" {
			local = r
		}
		if r.Success {
			if r.Total < bestE {
				bestE = r.Total
			}
			if r.Time < bestT {
				bestT = r.Time
			}
		}
	}
	return local.Total / bestE, local.Time / bestT, nil
}

// RunFig14 regenerates Figure 14: the gap between the maximum velocity
// and the real velocity across the obstacle-course phases (avoiding
// obstacles, heading straight, turning), for a low and a high velocity
// policy.
func RunFig14(w io.Writer, quick bool) error {
	course := world.ObstacleCourseMap()
	start := geom.P(0.6, 3.0, 0)
	goal := geom.V(13.5, 0.8) // beyond the right-turn wall
	if quick {
		course = world.EmptyRoomMap(8, 4, 0.05)
		start = geom.P(0.8, 2, 0)
		goal = geom.V(7, 2)
	}

	type policy struct {
		name  string
		vceil float64
	}
	policies := []policy{{"low-speed", 0.18}, {"high-speed", 0.6}}

	hr(w, "Fig. 14 — maximum vs real velocity on the obstacle course")
	for _, p := range policies {
		cfg := core.MissionConfig{
			Workload:    core.NavigationWithMap,
			Map:         course,
			Start:       start,
			Goal:        goal,
			WAP:         geom.V(7, 3),
			Deployment:  core.DeployEdge(8),
			Seed:        21,
			MaxSimTime:  900,
			VCeil:       p.vceil,
			RecordTrace: true,
		}
		res, err := run(cfg)
		if err != nil {
			return err
		}
		var gapSum, vmaxSum float64
		for _, tp := range res.Trace {
			gapSum += tp.MaxVel - tp.RealVel
			vmaxSum += tp.MaxVel
		}
		n := float64(len(res.Trace))
		fmt.Fprintf(w, "\npolicy %-10s: success=%v time=%.1fs avg vmax=%.3f avg gap=%.3f (gap/vmax=%.0f%%)\n",
			p.name, res.Success, res.TotalTime, vmaxSum/n, gapSum/n, 100*gapSum/vmaxSum)
		fmt.Fprint(w, "trace (t, vmax, vreal):")
		step := len(res.Trace) / 14
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(res.Trace); i += step {
			tp := res.Trace[i]
			fmt.Fprintf(w, " (%.0f, %.2f, %.2f)", tp.T, tp.MaxVel, tp.RealVel)
		}
		fmt.Fprintln(w)
	}
	// §VIII-E follow-through: the same high-speed course with the
	// parallelism-shedding controller on — fewer reserved core-seconds,
	// similar completion time.
	for _, shed := range []bool{false, true} {
		cfg := core.MissionConfig{
			Workload: core.NavigationWithMap, Map: course, Start: start, Goal: goal,
			WAP: geom.V(7, 3), Deployment: core.DeployEdge(8), Seed: 21,
			MaxSimTime: 900, VCeil: 0.6, ShedParallelism: shed,
		}
		res, err := run(cfg)
		if err != nil {
			return err
		}
		mode := "fixed 8 threads "
		if shed {
			mode = "shedding (§VIII-E)"
		}
		fmt.Fprintf(w, "\n%s: time=%.1fs, reserved core-seconds=%.0f, thread adjustments=%d",
			mode, res.TotalTime, res.CoreSeconds, res.ThreadAdjustments)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "\nPaper's reading: only on straight phases does the real velocity reach the")
	fmt.Fprintln(w, "maximum; the higher the cap, the bigger the gap — so matching the paid")
	fmt.Fprintln(w, "parallelism to the environment phase saves cloud resources without losing")
	fmt.Fprintln(w, "real speed (the §VIII-E adaptivity analysis, run live above).")
	return nil
}

// Fig14Gaps runs the two Fig. 14 policies and returns the relative
// velocity gap (gap/vmax) of each, for tests.
func Fig14Gaps(quick bool) (lowGap, highGap float64, err error) {
	course := world.ObstacleCourseMap()
	start := geom.P(0.6, 3.0, 0)
	goal := geom.V(13.5, 0.8)
	if quick {
		course = world.EmptyRoomMap(10, 4, 0.05)
		start = geom.P(0.8, 2, 0)
		goal = geom.V(9, 2)
	}
	run := func(vceil float64) (float64, error) {
		cfg := core.MissionConfig{
			Workload: core.NavigationWithMap, Map: course, Start: start, Goal: goal,
			WAP: geom.V(7, 3), Deployment: core.DeployEdge(8), Seed: 21,
			MaxSimTime: 900, VCeil: vceil, RecordTrace: true,
		}
		res, err := run(cfg)
		if err != nil {
			return 0, err
		}
		var gap, vm float64
		for _, tp := range res.Trace {
			gap += tp.MaxVel - tp.RealVel
			vm += tp.MaxVel
		}
		if vm == 0 {
			return 0, fmt.Errorf("no trace")
		}
		return gap / vm, nil
	}
	if lowGap, err = run(0.18); err != nil {
		return 0, 0, err
	}
	if highGap, err = run(0.6); err != nil {
		return 0, 0, err
	}
	return lowGap, highGap, nil
}

// RunAlg1 runs the Algorithm 1 ablation: EC vs MCT goals under a good
// and a degraded network, reporting the chosen placements and outcomes.
func RunAlg1(w io.Writer, quick bool) error {
	hr(w, "Algorithm 1 ablation — EC vs MCT under good and degraded networks")
	fmt.Fprintf(w, "%-22s %-10s %8s %9s %9s %9s\n",
		"scenario", "goal", "success", "time(s)", "E(J)", "switches")
	// A clean corridor isolates the policy effect from obstacle-course
	// variance: the two goals differ only in where the VDP runs.
	corridor := world.EmptyRoomMap(14, 4, 0.05)
	if quick {
		corridor = world.EmptyRoomMap(6, 4, 0.05)
	}
	for _, goal := range []core.Goal{core.GoalEC, core.GoalMCT} {
		for _, slow := range []bool{false, true} {
			cfg := labNav(core.DeployAdaptive(core.HostCloud, 12, goal), quick)
			cfg.Map = corridor
			cfg.Start = geom.P(0.8, 2, 0)
			cfg.WAP = geom.V(float64(corridor.Width)*corridor.Resolution/2, 2)
			cfg.Goal = geom.V(float64(corridor.Width)*corridor.Resolution-0.8, 2)
			name := "good network"
			if slow {
				// A congested WAN: 300 ms each way makes the round trip
				// exceed the on-board VDP makespan, so MCT must pull the
				// T3 nodes home while EC keeps them remote for energy.
				lc := cfg.LinkCfg
				if lc == nil {
					c := defaultCloudLinkAt(cfg.WAP)
					lc = &c
				}
				lc.WANLatSec = 0.300
				cfg.LinkCfg = lc
				name = "congested WAN"
			}
			res, err := run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-22s %-10s %8v %9.1f %9.0f %9d\n",
				name, goal, res.Success, res.TotalTime, res.TotalEnergy, res.Switches)
			writeDecisionLog(w, res.Decisions)
		}
	}
	fmt.Fprintln(w, "\nPaper's reading: with a high-cost network, MCT migrates the T3 nodes back")
	fmt.Fprintln(w, "(completion time recovers); EC keeps ECNs remote to protect the battery.")
	return nil
}

// writeDecisionLog prints a mission's adaptation decisions with the
// profiler inputs (bandwidth, signal direction, VDP estimates) that
// produced each placement switch.
func writeDecisionLog(w io.Writer, decisions []core.AdaptDecision) {
	for _, d := range decisions {
		extra := ""
		if d.RemoteOK {
			extra = fmt.Sprintf(", VDP local=%.0f ms cloud=%.0f ms",
				d.LocalVDP*1000, d.CloudVDP*1000)
		}
		fmt.Fprintf(w, "    %7.1f s  %-9s %s -> %s  (bw=%.1f msg/s, dir=%+.2f%s)\n",
			d.T, d.Reason, d.From, d.To, d.Bandwidth, d.Direction, extra)
	}
}
