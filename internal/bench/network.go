package bench

import (
	"fmt"
	"io"
	"math/rand"

	"lgvoffload/internal/core"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/world"
)

// fig11Walk drives the virtual LGV from point A (at the WAP) out to
// point C in the unstable area and back, sending 5 Hz messages, and
// returns the recorded time series.
type fig11Row struct {
	T         float64
	Dist      float64 // robot-WAP distance
	Signal    float64
	Bandwidth float64
	LatencyMs float64 // latency of the latest received packet (-1 = none)
	Direction float64
	RemoteOK  bool // Algorithm 2's live decision
}

func fig11Walk(quick bool) []fig11Row {
	link := netsim.NewLink(netsim.DefaultEdgeLink(geom.V(0, 0)), rand.New(rand.NewSource(3)))
	bw := netsim.NewBandwidthMeter()
	ctl := core.NewNetController(4)

	duration := 90.0
	speed := 0.35 // m/s out and back
	if quick {
		duration = 50.0
		speed = 0.5
	}
	half := duration / 2

	var rows []fig11Row
	now := 0.0
	for now < duration {
		now += 0.2
		// Triangle walk: out to C at half-time, then back to A.
		var x float64
		if now <= half {
			x = speed * now
		} else {
			x = speed * (duration - now)
		}
		link.SetRobotPos(geom.V(x, 0))

		latency := -1.0
		if arrive, dropped := link.Send(now, 64); !dropped {
			bw.Observe(arrive)
			latency = (arrive - now) * 1000
		}
		rate := bw.Rate(now)
		var remoteOK bool
		if now > 2 { // same warm-up as the engine
			remoteOK = ctl.Update(rate, link.Direction())
		} else {
			remoteOK = ctl.RemoteOK()
		}
		rows = append(rows, fig11Row{
			T: now, Dist: x, Signal: link.Signal(), Bandwidth: rate,
			LatencyMs: latency, Direction: link.Direction(), RemoteOK: remoteOK,
		})
	}
	return rows
}

// RunFig11 regenerates Figure 11: the latency and bandwidth of 5 Hz UDP
// transmission while the LGV walks from the WAP (A) into the unstable
// area (C) and back, with Algorithm 2's switching decisions.
func RunFig11(w io.Writer, quick bool) error {
	rows := fig11Walk(quick)
	hr(w, "Fig. 11 — network latency and bandwidth of UDP under mobility (threshold = 4 msg/s)")
	fmt.Fprintf(w, "%6s %6s %7s %10s %10s %9s %7s\n",
		"t(s)", "d(m)", "signal", "bw(msg/s)", "lat(ms)", "direction", "remote")
	step := len(rows) / 30
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rows); i += step {
		r := rows[i]
		lat := "lost"
		if r.LatencyMs >= 0 {
			lat = fmt.Sprintf("%.2f", r.LatencyMs)
		}
		fmt.Fprintf(w, "%6.1f %6.2f %7.2f %10.1f %10s %9.2f %7v\n",
			r.T, r.Dist, r.Signal, r.Bandwidth, lat, r.Direction, r.RemoteOK)
	}

	// Locate the switch points.
	var offAt, onAt float64
	prev := true
	for _, r := range rows {
		if prev && !r.RemoteOK && offAt == 0 {
			offAt = r.T
		}
		if !prev && r.RemoteOK && offAt > 0 {
			onAt = r.T
		}
		prev = r.RemoteOK
	}
	fmt.Fprintf(w, "\nAlgorithm 2 switched LOCAL at t=%.1f s (outbound, bandwidth collapsed while receding)\n", offAt)
	fmt.Fprintf(w, "Algorithm 2 switched REMOTE at t=%.1f s (inbound, bandwidth recovered while approaching)\n", onAt)
	fmt.Fprintln(w, "Paper's reading: received-packet latency stays low until deep fade (best-effort")
	fmt.Fprintln(w, "UDP hides loss), while bandwidth + signal direction predict the failure early.")
	return nil
}

// Fig11SwitchTimes exposes the two switch instants for tests.
func Fig11SwitchTimes(quick bool) (offAt, onAt float64) {
	rows := fig11Walk(quick)
	prev := true
	for _, r := range rows {
		if prev && !r.RemoteOK && offAt == 0 {
			offAt = r.T
		}
		if !prev && r.RemoteOK && offAt > 0 && onAt == 0 {
			onAt = r.T
		}
		prev = r.RemoteOK
	}
	return offAt, onAt
}

// RunAlg2 runs the Algorithm 2 ablation: a full mission across a dead
// zone under three policies — adaptive (bandwidth+direction), static
// remote, and all-local — and reports completion time and robustness.
func RunAlg2(w io.Writer, quick bool) error {
	length := 24.0
	if quick {
		length = 14.0
	}
	m := world.EmptyRoomMap(length, 3, 0.1)
	link := netsim.DefaultEdgeLink(geom.V(1, 1.5))
	link.GoodRange = 3
	link.FadeRange = 8

	base := core.MissionConfig{
		Workload:   core.NavigationWithMap,
		Map:        m,
		Start:      geom.P(1, 1.5, 0),
		Goal:       geom.V(length-2, 1.5),
		WAP:        geom.V(1, 1.5),
		LinkCfg:    &link,
		Seed:       5,
		MaxSimTime: 900,
	}

	hr(w, "Algorithm 2 ablation — mission across a WAP dead zone")
	fmt.Fprintf(w, "%-24s %8s %9s %9s %8s %9s %8s\n",
		"policy", "success", "time(s)", "stdby(s)", "drops", "switches", "E(J)")
	var adaptive []core.AdaptDecision
	for _, d := range []core.Deployment{
		core.DeployAdaptive(core.HostEdge, 8, core.GoalMCT),
		core.DeployEdge(8),
		core.DeployLocal(),
	} {
		cfg := base
		cfg.Deployment = d
		res, err := run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s %8v %9.1f %9.1f %8d %9d %8.0f\n",
			d.Name, res.Success, res.TotalTime, res.StandbyTime,
			res.MsgsDropped, res.Switches, res.TotalEnergy)
		if cfg.Deployment.Mode == core.Adaptive {
			adaptive = res.Decisions
		}
	}
	if len(adaptive) > 0 {
		fmt.Fprintln(w, "\nadaptive decision log (bandwidth and direction at each switch):")
		writeDecisionLog(w, adaptive)
	}
	fmt.Fprintln(w, "\nPaper's reading: static offloading starves in the dead zone; the adaptive")
	fmt.Fprintln(w, "policy rides the fast server while reachable and degrades to local gracefully.")
	return nil
}
