package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"lgvoffload/internal/core"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/trace"
)

// All bench tests run in quick mode; the full-scale sweeps run through
// cmd/reproduce and the root-level testing.B benchmarks.

func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, true); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("experiments = %d, want 18", len(ids))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus ID resolved")
	}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
	}
}

func TestTable1Output(t *testing.T) {
	out := runQuick(t, "table1")
	for _, want := range []string{"Turtlebot3", "Turtlebot2", "Pioneer 3DX", "6.70", "44%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	out := runQuick(t, "table2")
	for _, want := range []string{"with map", "without map", "path_tracking", "slam", "ECN"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestTable2SharesShape(t *testing.T) {
	shares, err := Table2Shares(true)
	if err != nil {
		t.Fatal(err)
	}
	if shares[core.NodeTracking] < shares[core.NodeCostmap] {
		t.Error("tracking should out-cycle costmap (paper: 60% vs 37%)")
	}
	if shares[core.NodeLocalization] > 0.1 {
		t.Errorf("localization share %.2f too high", shares[core.NodeLocalization])
	}
}

func TestFig9SpeedupShape(t *testing.T) {
	edge, cloud := Fig9Speedups(true)
	// Shape: both large, cloud (manycore) beats the gateway on the ECN.
	if edge < 10 {
		t.Errorf("gateway ECN speedup = %.1f, want >> 1", edge)
	}
	if cloud <= edge {
		t.Errorf("cloud (%.1fx) must beat gateway (%.1fx) on the ECN", cloud, edge)
	}
	if cloud < 25 || cloud > 60 {
		t.Errorf("cloud ECN speedup = %.1f, paper reports ≈ 41", cloud)
	}
}

func TestFig10SpeedupShape(t *testing.T) {
	edge, cloud := Fig10Speedups(true)
	if edge < 8 {
		t.Errorf("gateway VDP speedup = %.1f, want >> 1", edge)
	}
	if edge <= cloud {
		t.Errorf("gateway (%.1fx) must beat cloud (%.1fx) on the VDP", edge, cloud)
	}
}

func TestFig9Output(t *testing.T) {
	out := runQuick(t, "fig9")
	for _, want := range []string{"Pi 3B+", "i7-7700K", "Xeon", "threads", "27.97"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 missing %q", want)
		}
	}
}

func TestFig10Output(t *testing.T) {
	out := runQuick(t, "fig10")
	for _, want := range []string{"VDP processing time", "23.92", "saturates"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 missing %q", want)
		}
	}
}

func TestFig11SwitchSequence(t *testing.T) {
	offAt, onAt := Fig11SwitchTimes(false)
	if offAt == 0 {
		t.Fatal("Algorithm 2 never switched local on the outbound leg")
	}
	if onAt == 0 {
		t.Fatal("Algorithm 2 never switched back on the return leg")
	}
	if onAt <= offAt {
		t.Errorf("switch-back (%.1f) must follow switch-off (%.1f)", onAt, offAt)
	}
	// The outbound switch must happen in the second half of the outbound
	// leg (robot deep in the fade region), not immediately.
	if offAt < 10 {
		t.Errorf("switched local too early: %.1f s", offAt)
	}
}

func TestFig11Output(t *testing.T) {
	out := runQuick(t, "fig11")
	for _, want := range []string{"bw(msg/s)", "LOCAL", "REMOTE", "lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig11 missing %q", want)
		}
	}
}

func TestFig12VelocityOrdering(t *testing.T) {
	v, err := Fig12AvgVmax(true)
	if err != nil {
		t.Fatal(err)
	}
	if v["edge+8T"] <= v["local"] {
		t.Errorf("edge+8T (%.3f) must beat local (%.3f)", v["edge+8T"], v["local"])
	}
	if v["edge+8T"] < 1.5*v["local"] {
		t.Errorf("offload velocity gain too small: %.3f vs %.3f", v["edge+8T"], v["local"])
	}
	if v["edge+8T"] <= v["edge"] {
		t.Errorf("parallelization must raise vmax: %.3f vs %.3f", v["edge+8T"], v["edge"])
	}
	if v["cloud+12T"] <= v["cloud"] {
		t.Errorf("cloud parallelization must raise vmax: %.3f vs %.3f", v["cloud+12T"], v["cloud"])
	}
}

func TestFig13Reductions(t *testing.T) {
	eRed, tRed, err := Fig13Reductions(core.NavigationWithMap, true)
	if err != nil {
		t.Fatal(err)
	}
	if eRed < 1.2 {
		t.Errorf("energy reduction %.2fx — offloading must save energy", eRed)
	}
	if tRed < 1.5 {
		t.Errorf("time reduction %.2fx — offloading must save time", tRed)
	}
}

func TestFig14GapGrowsWithSpeed(t *testing.T) {
	low, high, err := Fig14Gaps(true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 14 claim: the higher the maximum velocity, the
	// bigger the max-vs-real gap.
	if high <= low {
		t.Errorf("gap should grow with the cap: low=%.2f high=%.2f", low, high)
	}
}

func TestAlg1Output(t *testing.T) {
	out := runQuick(t, "alg1")
	for _, want := range []string{"EC", "MCT", "congested WAN", "good network"} {
		if !strings.Contains(out, want) {
			t.Errorf("alg1 missing %q", want)
		}
	}
}

func TestAlg2Output(t *testing.T) {
	out := runQuick(t, "alg2")
	for _, want := range []string{"adaptive", "edge+8T", "local", "dead zone"} {
		if !strings.Contains(out, want) {
			t.Errorf("alg2 missing %q", want)
		}
	}
}

func TestFig12And13And14Render(t *testing.T) {
	if testing.Short() {
		t.Skip("mission sweeps take a few seconds")
	}
	runQuick(t, "fig12")
	runQuick(t, "fig13")
	runQuick(t, "fig14")
}

func TestBatteryOutput(t *testing.T) {
	out := runQuick(t, "battery")
	for _, want := range []string{"missions", "19.98", "endurance"} {
		if !strings.Contains(out, want) {
			t.Errorf("battery missing %q", want)
		}
	}
}

func TestWriteFigures(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFigures(dir, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig9_local.svg", "fig9_edge.svg", "fig9_cloud.svg",
		"fig10_local.svg", "fig10_edge.svg", "fig10_cloud.svg",
		"fig11.svg", "fig12.svg",
		"fig13_navigation.svg", "fig13_exploration.svg",
		"fig14.svg", "lab_map.svg", "fleet.svg", "vision.svg",
	} {
		b, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("missing figure %s: %v", name, err)
		}
		if !bytes.Contains(b, []byte("<svg")) || !bytes.Contains(b, []byte("</svg>")) {
			t.Errorf("%s is not an SVG", name)
		}
	}
}

func TestFleetOutput(t *testing.T) {
	out := runQuick(t, "fleet")
	for _, want := range []string{"fleet", "crossover", "edge", "cloud"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet missing %q", want)
		}
	}
}

func TestDVFSOutput(t *testing.T) {
	out := runQuick(t, "dvfs")
	for _, want := range []string{"GHz", "edge+8T", "computerW"} {
		if !strings.Contains(out, want) {
			t.Errorf("dvfs missing %q", want)
		}
	}
}

func TestVisionOutput(t *testing.T) {
	out := runQuick(t, "vision")
	for _, want := range []string{"blur limit", "losses", "safe cruise"} {
		if !strings.Contains(out, want) {
			t.Errorf("vision missing %q", want)
		}
	}
}

func TestVisionRealizedSpeedSaturates(t *testing.T) {
	low, high, lossesHigh := VisionRealizedSpeeds()
	// Commanding 4x the speed must not realize 4x: the blur limit caps it.
	if high > 2*low {
		t.Errorf("realized speed did not saturate: low=%.3f high=%.3f", low, high)
	}
	if lossesHigh < 5 {
		t.Errorf("fast command should lose tracking repeatedly, got %v", lossesHigh)
	}
}

func TestFig3Output(t *testing.T) {
	out := runQuick(t, "fig3")
	for _, want := range []string{"v_max", "ΔE per", "E_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 missing %q", want)
		}
	}
}

func TestFig9ShapeHoldsOnOfficeDataset(t *testing.T) {
	// Environment-independence: the ECN acceleration ordering (cloud >
	// gateway >> local) must hold on a structurally different stream.
	ds := trace.OfficeDataset(11, 20)
	wk := ecnWorkPerUpdate(ds, 30, 15)
	edge := hostsim.EdgeGateway().Speedup(wk, 8)
	cloud := hostsim.CloudServer().Speedup(wk, 24)
	if edge < 10 || cloud <= edge {
		t.Errorf("office dataset broke the Fig. 9 shape: edge=%.1f cloud=%.1f", edge, cloud)
	}
}

func TestAPSelOutput(t *testing.T) {
	out := runQuick(t, "apsel")
	for _, want := range []string{"AP selection", "Algorithm 2", "1 WAP", "2 WAPs"} {
		if !strings.Contains(out, want) {
			t.Errorf("apsel missing %q", want)
		}
	}
}

func TestAPSelControlGap(t *testing.T) {
	baseCtrl, alg2Ctrl := APSelAvailability()
	// The §X claim: with one AP, the baseline loses control in the dead
	// zone while Algorithm 2 retains it everywhere.
	if alg2Ctrl < 0.99 {
		t.Errorf("Algorithm 2 control availability = %.2f, want 1.0", alg2Ctrl)
	}
	if baseCtrl > 0.9 {
		t.Errorf("single-AP baseline availability = %.2f — dead zone should bite", baseCtrl)
	}
}

func TestChaosExperimentOutput(t *testing.T) {
	out := runQuick(t, "chaos")
	for _, want := range []string{"wap:4-12", "server:20-26", "failover", "stops",
		"critical path", "before [0,4)", "during [4,26)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos missing %q", want)
		}
	}
}

func TestCritPathExperimentOutput(t *testing.T) {
	out := runQuick(t, "critpath")
	for _, want := range []string{"local", "edge+8T", "cloud+12T", "compute p50/p95", "transport"} {
		if !strings.Contains(out, want) {
			t.Errorf("critpath missing %q", want)
		}
	}
	// The all-local row must be pure compute; the offloaded rows must
	// show a nonzero transport leg. Cheap shape check on the table text.
	if !strings.Contains(out, "Reading:") {
		t.Error("critpath missing reading")
	}
}
