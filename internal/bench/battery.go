package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/energy"
)

// RunBattery runs the battery-endurance extension: how many lab missions
// one 19.98 Wh charge sustains under each deployment, and the average
// power draw each implies. This quantifies the paper's motivating claim
// that the battery budget — not the algorithms — is what limits on-board
// autonomy.
func RunBattery(w io.Writer, quick bool) error {
	hr(w, "Battery endurance — missions per 19.98 Wh charge (navigation workload)")
	fmt.Fprintf(w, "%-10s %8s %9s %10s %12s %12s\n",
		"deploy", "success", "E(J)", "avg P(W)", "missions", "endurance(h)")
	b := energy.Turtlebot3Battery()
	var localMissions float64
	for _, d := range deployments() {
		res, err := run(labNav(d, quick))
		if err != nil {
			return err
		}
		avgP := 0.0
		if res.TotalTime > 0 {
			avgP = res.TotalEnergy / res.TotalTime
		}
		missions := b.MissionsPerCharge(res.TotalEnergy)
		fmt.Fprintf(w, "%-10s %8v %9.0f %10.1f %12.1f %12.2f\n",
			d.Name, res.Success, res.TotalEnergy, avgP, missions, b.EnduranceHours(avgP))
		if d.Name == "local" {
			localMissions = missions
		} else if d.Name == "edge+8T" && localMissions > 0 {
			fmt.Fprintf(w, "           → %.1fx more missions per charge than local\n",
				missions/localMissions)
		}
	}
	fmt.Fprintln(w, "\nPaper's motivation: the Turtlebot3's pack leaves the embedded computer only")
	fmt.Fprintln(w, "≈3.35 Wh per hour-long mission, so offloading computation directly buys range.")
	return nil
}
