package bench

import (
	"lgvoffload/internal/geom"
	"lgvoffload/internal/netsim"
)

// defaultCloudLinkAt returns the cloud link configuration anchored at
// the given WAP position, for experiments that tweak it.
func defaultCloudLinkAt(wap geom.Vec2) netsim.LinkConfig {
	return netsim.DefaultCloudLink(wap)
}
