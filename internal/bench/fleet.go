package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/core"
	"lgvoffload/internal/fleet"
)

// RunFleet runs the multi-robot extension: per-robot mission time and
// velocity as k vehicles share the edge gateway vs the cloud server,
// locating the fleet size where the manycore cloud overtakes the
// high-frequency gateway.
func RunFleet(w io.Writer, quick bool) error {
	sizes := []int{1, 2, 4, 8, 16, 32}
	if quick {
		sizes = []int{1, 4, 16}
	}
	base := func(d core.Deployment) core.MissionConfig {
		cfg := labNav(d, true) // the small room keeps the sweep fast
		cfg.MaxSimTime = 600
		return cfg
	}
	edge, err := fleet.Sweep(base(core.DeployEdge(8)), sizes)
	if err != nil {
		return err
	}
	cloud, err := fleet.Sweep(base(core.DeployCloud(12)), sizes)
	if err != nil {
		return err
	}

	hr(w, "Fleet extension — per-robot mission time as k robots share one server")
	fmt.Fprintf(w, "%6s %16s %16s %14s %14s\n",
		"fleet", "edge time(s)", "cloud time(s)", "edge vmax", "cloud vmax")
	for i := range sizes {
		fmt.Fprintf(w, "%6d %13.1f %s %13.1f %s %14.3f %14.3f\n",
			sizes[i],
			edge[i].Time, okMark(edge[i].Success),
			cloud[i].Time, okMark(cloud[i].Success),
			edge[i].AvgVmax, cloud[i].AvgVmax)
	}
	if k, ok := fleet.Crossover(edge, cloud); ok {
		fmt.Fprintf(w, "\nedge → cloud crossover at fleet size %d: the 4-core gateway wins small\n", k)
		fmt.Fprintln(w, "fleets (paper Fig. 10: frequency beats cores on the VDP), but its share")
		fmt.Fprintln(w, "collapses first; the 24-core cloud amortizes across the larger fleet.")
	} else {
		fmt.Fprintln(w, "\nno crossover in range — widen the sweep")
	}
	return nil
}

func okMark(ok bool) string {
	if ok {
		return "  "
	}
	return "✗ "
}
