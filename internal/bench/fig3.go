package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/energy"
	"lgvoffload/internal/timing"
	"lgvoffload/internal/world"
)

// RunFig3 renders the paper's Fig. 3 factor analysis numerically: the
// coupled relationships between VDP processing time, maximum velocity,
// mission time, motor power and total energy (Eq. 1 and Eq. 2), and the
// conflict the paper highlights — reducing E_m wants both a shorter T
// and a lower P_m(t), but T shrinks with v while P_m grows with it, so
// total energy over a fixed-length mission has a sweet point in v.
func RunFig3(w io.Writer, _ bool) error {
	spec := world.Turtlebot3()
	model := energy.Turtlebot3Model()
	const (
		legMeters = 10.0 // fixed mission length
		amax      = 0.8
		stopDist  = 0.08
	)

	hr(w, "Fig. 3 — factor relationships of the analytical model (Eq. 1, Eq. 2)")
	fmt.Fprintf(w, "mission: a %.0f m leg; fixed draws: sensor %.1f W + micro %.1f W + computer idle %.1f W\n\n",
		legMeters, model.SensorPower, model.MicroPower, model.IdleComputer)

	// Part 1: tp → vmax → Tm (Eq. 2b/2c): higher processing time, lower
	// velocity, longer mission.
	fmt.Fprintf(w, "%12s %12s %12s    (Eq. 2c: t_p ↑ ⇒ v_max ↓ ⇒ T_m ↑)\n",
		"t_p (s)", "v_max (m/s)", "T_m (s)")
	for _, tp := range []float64{0.02, 0.05, 0.1, 0.2, 0.5, 1.0} {
		v := timing.MaxVelocity(tp, amax, stopDist)
		fmt.Fprintf(w, "%12.2f %12.3f %12.1f\n", tp, v, legMeters/v)
	}

	// Part 2: the energy/velocity coupling. Driving the leg at velocity v takes
	// T = L/v; fixed component draws accrue for all of T while motor
	// power grows with v (Eq. 1d).
	fixed := model.SensorPower + model.MicroPower + model.IdleComputer
	fmt.Fprintf(w, "\n%12s %12s %12s %12s %14s    (conflict: T ↓ but P_m ↑ with v)\n",
		"v (m/s)", "T (s)", "P_m (W)", "E_total (J)", "ΔE per +0.1")
	prevE := 0.0
	for v := 0.1; v <= 1.01; v += 0.1 {
		tTotal := legMeters / v
		pm := spec.TractionPower(v, 0)
		e := (fixed + pm) * tTotal
		marginal := "-"
		if prevE > 0 {
			marginal = fmt.Sprintf("%+.0f J", e-prevE)
		}
		fmt.Fprintf(w, "%12.2f %12.1f %12.2f %12.0f %14s\n", v, tTotal, pm, e, marginal)
		prevE = e
	}
	fmt.Fprintln(w, "\nPaper's reading: the goals couple. Over a fixed leg, E_m = P_l·T + m·g·μ·L,")
	fmt.Fprintln(w, "so cutting T also cuts energy — but with sharply diminishing returns as motor")
	fmt.Fprintln(w, "power (∝ v) swallows the fixed-draw savings. Combined with the Fig. 14 gap")
	fmt.Fprintln(w, "(real velocity stops following v_max in clutter), pushing the cap ever higher")
	fmt.Fprintln(w, "buys nothing: the adaptive controller can shed paid parallelism instead.")
	return nil
}
