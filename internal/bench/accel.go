package bench

import (
	"fmt"
	"io"
	"math/rand"

	"lgvoffload/internal/core"
	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/slam"
	"lgvoffload/internal/trace"
	"lgvoffload/internal/tracker"
)

// platformsUnderTest returns the Fig. 9/10 platforms with the thread
// counts each can use (the paper sweeps 1–8 on the quad-core machines
// and up to 24 on the manycore cloud server).
func platformsUnderTest() []struct {
	P       hostsim.Platform
	Threads []int
} {
	return []struct {
		P       hostsim.Platform
		Threads []int
	}{
		{hostsim.RaspberryPi(), []int{1, 2, 4, 8}},
		{hostsim.EdgeGateway(), []int{1, 2, 4, 8}},
		{hostsim.CloudServer(), []int{1, 2, 4, 8, 12, 24}},
	}
}

// ecnWorkPerUpdate replays a dataset prefix through the RBPF and returns
// the average per-update work at the given particle count. The kernels
// run for real (the parallel scanMatch included), so the op counts are
// measured, not assumed.
func ecnWorkPerUpdate(ds *trace.Dataset, particles, entries int) hostsim.Work {
	cfg := slam.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cfg.NumParticles = particles
	s := slam.New(cfg, rand.New(rand.NewSource(7)))
	s.SetInitialPose(ds.Start)
	if entries > ds.Len() {
		entries = ds.Len()
	}
	var total hostsim.Work
	for _, e := range ds.Entries[:entries] {
		st := s.Update(e.OdomDelta, e.Scan)
		total = total.Add(core.SlamWork(st.MatchOps, st.IntegrateOps, st.WeightOps, st.CopyOps))
	}
	return total.Scale(1 / float64(entries))
}

// RunFig9 regenerates Figure 9: processing time of the energy-critical
// SLAM node under different thread and particle counts on the three
// platforms, with the headline speedups.
func RunFig9(w io.Writer, quick bool) error {
	particles := []int{10, 20, 30, 100}
	entries := 60
	if quick {
		particles = []int{10, 30}
		entries = 15
	}
	ds := trace.LabDataset(11, entries+5)

	// Measure the per-update work once per particle count.
	work := make(map[int]hostsim.Work, len(particles))
	for _, m := range particles {
		work[m] = ecnWorkPerUpdate(ds, m, entries)
	}
	base := hostsim.RaspberryPi().ExecTime(work[particles[len(particles)-1]], 1)

	for _, pt := range platformsUnderTest() {
		hr(w, fmt.Sprintf("Fig. 9 — SLAM processing time (s) on %s", pt.P.Name))
		fmt.Fprintf(w, "%8s", "threads")
		for _, m := range particles {
			fmt.Fprintf(w, "  M=%-7d", m)
		}
		fmt.Fprintln(w)
		for _, th := range pt.Threads {
			fmt.Fprintf(w, "%8d", th)
			for _, m := range particles {
				fmt.Fprintf(w, "  %-9.4f", pt.P.ExecTime(work[m], th))
			}
			fmt.Fprintln(w)
		}
	}

	maxM := particles[len(particles)-1]
	edgeUp := hostsim.EdgeGateway().Speedup(work[maxM], 8)
	cloudUp := hostsim.CloudServer().Speedup(work[maxM], 24)
	hr(w, "Fig. 9 — headline accelerations at the largest particle count")
	fmt.Fprintf(w, "local 1-thread baseline: %.3f s/update (M=%d)\n", base, maxM)
	fmt.Fprintf(w, "gateway (8 threads):   %6.2fx   (paper: up to 27.97x)\n", edgeUp)
	fmt.Fprintf(w, "cloud   (24 threads):  %6.2fx   (paper: up to 40.84x)\n", cloudUp)
	fmt.Fprintf(w, "manycore cloud beats the gateway on the ECN: %v (paper: yes)\n", cloudUp > edgeUp)
	return nil
}

// Fig9Speedups returns (gateway@8T, cloud@24T) speedups at the largest
// particle count — used by tests to assert the paper's shape.
func Fig9Speedups(quick bool) (edge, cloud float64) {
	entries, particles := 60, 100
	if quick {
		entries, particles = 15, 30
	}
	ds := trace.LabDataset(11, entries+5)
	wk := ecnWorkPerUpdate(ds, particles, entries)
	return hostsim.EdgeGateway().Speedup(wk, 8), hostsim.CloudServer().Speedup(wk, 24)
}

// vdpWorkPerTick replays a dataset prefix through the VDP kernels
// (costmap update + trajectory rollout + mux) at the given trajectory
// count and returns average per-tick work for each node.
func vdpWorkPerTick(ds *trace.Dataset, samples, entries int) (cm, tk, mux hostsim.Work) {
	ccfg := costmap.DefaultConfig(ds.Map.Width, ds.Map.Height, ds.Map.Resolution, ds.Map.Origin)
	cmap := costmap.New(ccfg)
	cmap.SetStatic(ds.Map)

	tcfg := tracker.DefaultConfig()
	tcfg.WSamples = 40
	tcfg.VSamples = samples / 40
	if tcfg.VSamples < 1 {
		tcfg.VSamples = 1
	}
	tk8 := tracker.New(tcfg)

	if entries > ds.Len() {
		entries = ds.Len()
	}
	n := 0
	for _, e := range ds.Entries[:entries] {
		st := cmap.Update(e.TruePose, e.Scan)
		cm = cm.Add(core.CostmapWork(st.Total()))
		out, err := tk8.Plan(tracker.Input{
			Pose: e.TruePose, Vel: geom.Twist{V: 0.1},
			Path:    []geom.Vec2{e.TruePose.Pos, e.TruePose.Pos.Add(geom.V(2, 0))},
			Costmap: cmap,
		})
		if err == nil {
			tk = tk.Add(core.TrackingWork(out.Ops))
		}
		mux = mux.Add(core.MuxWork())
		n++
	}
	inv := 1 / float64(n)
	return cm.Scale(inv), tk.Scale(inv), mux.Scale(inv)
}

// RunFig10 regenerates Figure 10: processing time of the velocity
// dependent path (CostmapGen + Path Tracking + Velocity Multiplexer)
// under different thread and sample counts on the three platforms.
func RunFig10(w io.Writer, quick bool) error {
	samples := []int{200, 400, 1000, 2000}
	entries := 40
	if quick {
		samples = []int{200, 1000}
		entries = 10
	}
	ds := trace.LabDataset(12, entries+5)

	type vdp struct{ cm, tk, mux hostsim.Work }
	work := make(map[int]vdp, len(samples))
	for _, s := range samples {
		cm, tk, mux := vdpWorkPerTick(ds, s, entries)
		work[s] = vdp{cm, tk, mux}
	}

	vdpTime := func(p hostsim.Platform, s, threads int) float64 {
		wk := work[s]
		// Only the trajectory scoring parallelizes (Fig. 5); costmap and
		// mux are serial.
		return p.ExecTime(wk.cm, 1) + p.ExecTime(wk.tk, threads) + p.ExecTime(wk.mux, 1)
	}

	for _, pt := range platformsUnderTest() {
		hr(w, fmt.Sprintf("Fig. 10 — VDP processing time (ms) on %s", pt.P.Name))
		fmt.Fprintf(w, "%8s", "threads")
		for _, s := range samples {
			fmt.Fprintf(w, "  S=%-7d", s)
		}
		fmt.Fprintln(w)
		for _, th := range pt.Threads {
			fmt.Fprintf(w, "%8d", th)
			for _, s := range samples {
				fmt.Fprintf(w, "  %-9.2f", vdpTime(pt.P, s, th)*1000)
			}
			fmt.Fprintln(w)
		}
	}

	maxS := samples[len(samples)-1]
	base := vdpTime(hostsim.RaspberryPi(), maxS, 1)
	edgeUp := base / vdpTime(hostsim.EdgeGateway(), maxS, 8)
	cloudUp := base / vdpTime(hostsim.CloudServer(), maxS, 12)
	hr(w, "Fig. 10 — headline accelerations at the largest sample count")
	fmt.Fprintf(w, "local 1-thread baseline: %.1f ms/tick (S=%d)\n", base*1000, maxS)
	fmt.Fprintf(w, "gateway (8 threads):   %6.2fx   (paper: up to 23.92x)\n", edgeUp)
	fmt.Fprintf(w, "cloud  (12 threads):   %6.2fx   (paper: up to 17.29x)\n", cloudUp)
	fmt.Fprintf(w, "high-frequency gateway beats cloud on the VDP: %v (paper: yes)\n", edgeUp > cloudUp)
	cloud := hostsim.CloudServer()
	minS := samples[0]
	t4 := vdpTime(cloud, minS, 4)
	t24 := vdpTime(cloud, minS, 24)
	fmt.Fprintf(w, "cloud scaling saturates above 4 threads at S=%d: t(4)=%.2f ms, t(24)=%.2f ms (paper: yes)\n",
		minS, t4*1000, t24*1000)
	return nil
}

// Fig10Speedups returns (gateway@8T, cloud@12T) VDP speedups at the
// largest sample count — used by tests to assert the paper's shape.
func Fig10Speedups(quick bool) (edge, cloud float64) {
	entries, samples := 40, 2000
	if quick {
		entries, samples = 10, 1000
	}
	ds := trace.LabDataset(12, entries+5)
	cm, tk, mux := vdpWorkPerTick(ds, samples, entries)
	t := func(p hostsim.Platform, threads int) float64 {
		return p.ExecTime(cm, 1) + p.ExecTime(tk, threads) + p.ExecTime(mux, 1)
	}
	base := t(hostsim.RaspberryPi(), 1)
	return base / t(hostsim.EdgeGateway(), 8), base / t(hostsim.CloudServer(), 12)
}
