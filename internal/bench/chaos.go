package bench

import (
	"fmt"
	"io"

	"lgvoffload/internal/core"
	"lgvoffload/internal/faults"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/world"
)

// RunChaos is the robustness experiment: the same scripted fault
// schedule — a total WAP outage followed by a server crash (full mode
// adds a lossy interference burst) — is replayed against the static and
// adaptive deployments. The WAP sits at the goal so the robot approaches
// it for the whole drive and Algorithm 2's weak-and-receding rule never
// fires: surviving the outage is entirely down to the watchdog safety
// stop and the consecutive-miss failover, which is the point.
func RunChaos(w io.Writer, quick bool) error {
	spec := "wap:4-12;server:20-26"
	if !quick {
		spec += ";burst:30-40:0.5"
	}
	sched, err := faults.ParseSpec(spec)
	if err != nil {
		return err
	}

	base := core.MissionConfig{
		Workload:   core.NavigationWithMap,
		Map:        world.EmptyRoomMap(6, 4, 0.05),
		Start:      geom.P(0.8, 2, 0),
		Goal:       geom.V(5.2, 2),
		WAP:        geom.V(5.2, 2),
		Seed:       3,
		MaxSimTime: 300,
		Faults:     &sched,
	}

	hr(w, "Chaos — scripted faults vs deployments ("+spec+")")
	fmt.Fprintf(w, "%-24s %8s %9s %9s %6s %10s %7s %9s\n",
		"policy", "success", "time(s)", "stdby(s)", "stops", "failovers", "faults", "switches")
	var adaptive []core.AdaptDecision
	var adaptivePaths []spans.TickPath
	var adaptiveEnd float64
	for _, d := range []core.Deployment{
		core.DeployAdaptive(core.HostEdge, 8, core.GoalMCT),
		core.DeployEdge(8),
		core.DeployLocal(),
	} {
		cfg := base
		cfg.Deployment = d
		if cfg.Deployment.Mode == core.Adaptive {
			// Trace the adaptive run so the fault windows below can show
			// how the VDP critical path reshapes around the blackout.
			cfg.Tracer = spans.NewTracer(0)
		}
		res, err := run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s %8v %9.1f %9.1f %6d %10d %7d %9d\n",
			d.Name, res.Success, res.TotalTime, res.StandbyTime,
			res.WatchdogStops, res.Failovers, res.FaultsInjected, res.Switches)
		if cfg.Deployment.Mode == core.Adaptive {
			adaptive = res.Decisions
			adaptivePaths = spans.AnalyzeTicks(cfg.Tracer.Spans())
			adaptiveEnd = res.TotalTime
		}
	}
	if len(adaptivePaths) > 0 {
		// The fault schedule opens at t=4 and the last scripted window
		// closes at t=26 (quick and full agree on these two).
		fmt.Fprintln(w, "\nadaptive critical path around the faults:")
		for _, win := range []struct {
			name   string
			t0, t1 float64
		}{
			{"before [0,4)", 0, 4},
			{"during [4,26)", 4, 26},
			{"after  [26,end)", 26, adaptiveEnd + 1},
		} {
			s := spans.Summarize(spans.Window(adaptivePaths, win.t0, win.t1))
			if s.Ticks == 0 {
				fmt.Fprintf(w, "  %-16s (no ticks — the mission ended inside the previous window)\n", win.name)
				continue
			}
			fmt.Fprintf(w, "  %-16s %s\n", win.name, s.OneLine())
		}
	}
	if len(adaptive) > 0 {
		fmt.Fprintln(w, "\nadaptive decision log (failover entries are the miss-counter trips):")
		writeDecisionLog(w, adaptive)
	}
	fmt.Fprintln(w, "\nReading: every offloading policy parks on the watchdog when the blackout")
	fmt.Fprintln(w, "starts, but only the adaptive one fails over and resumes driving mid-outage,")
	fmt.Fprintln(w, "bounding its standby time; static offloading stays parked until the window")
	fmt.Fprintln(w, "closes (a cost that grows with outage length, here ~8 s of it). Same seed +")
	fmt.Fprintln(w, "same schedule reproduces the identical decision log.")
	return nil
}
