package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/trace"
	"lgvoffload/internal/viz"
	"lgvoffload/internal/world"
)

// WriteFigures renders the paper's figures as SVG files into dir:
// fig9_<platform>.svg, fig10_<platform>.svg, fig11.svg, fig12.svg,
// fig13_<workload>.svg, fig14.svg and lab_map.svg. Quick mode shrinks
// the underlying sweeps.
func WriteFigures(dir string, quick bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	steps := []func(string, bool) error{
		writeFig9SVG, writeFig10SVG, writeFig11SVG,
		writeFig12SVG, writeFig13SVG, writeFig14SVG, writeMapSVG,
		writeExtensionSVGs,
	}
	for _, f := range steps {
		if err := f(dir, quick); err != nil {
			return err
		}
	}
	return nil
}

func create(dir, name string, render func(f *os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("render %s: %w", name, err)
	}
	return f.Close()
}

func platformSlug(p hostsim.Platform) string {
	switch p.Cores {
	case 24:
		return "cloud"
	default:
		if p.PerfNorm > 1 {
			return "edge"
		}
		return "local"
	}
}

func writeFig9SVG(dir string, quick bool) error {
	particles := []int{10, 20, 30, 100}
	entries := 60
	if quick {
		particles = []int{10, 30}
		entries = 15
	}
	ds := trace.LabDataset(11, entries+5)
	work := make(map[int]hostsim.Work, len(particles))
	for _, m := range particles {
		work[m] = ecnWorkPerUpdate(ds, m, entries)
	}
	for _, pt := range platformsUnderTest() {
		var series []viz.Series
		for _, m := range particles {
			s := viz.Series{Name: fmt.Sprintf("M=%d", m)}
			for _, th := range pt.Threads {
				s.X = append(s.X, float64(th))
				s.Y = append(s.Y, pt.P.ExecTime(work[m], th))
			}
			series = append(series, s)
		}
		name := fmt.Sprintf("fig9_%s.svg", platformSlug(pt.P))
		err := create(dir, name, func(f *os.File) error {
			return viz.LineChart(f, viz.ChartConfig{
				Title: "Fig. 9 — SLAM time on " + pt.P.Name, XLabel: "threads",
				YLabel: "processing time (s)", LogY: true,
			}, series)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func writeFig10SVG(dir string, quick bool) error {
	samples := []int{200, 400, 1000, 2000}
	entries := 40
	if quick {
		samples = []int{200, 1000}
		entries = 10
	}
	ds := trace.LabDataset(12, entries+5)
	type vdp struct{ cm, tk, mux hostsim.Work }
	work := make(map[int]vdp, len(samples))
	for _, s := range samples {
		cm, tk, mux := vdpWorkPerTick(ds, s, entries)
		work[s] = vdp{cm, tk, mux}
	}
	for _, pt := range platformsUnderTest() {
		var series []viz.Series
		for _, smp := range samples {
			s := viz.Series{Name: fmt.Sprintf("S=%d", smp)}
			wk := work[smp]
			for _, th := range pt.Threads {
				t := pt.P.ExecTime(wk.cm, 1) + pt.P.ExecTime(wk.tk, th) + pt.P.ExecTime(wk.mux, 1)
				s.X = append(s.X, float64(th))
				s.Y = append(s.Y, t*1000)
			}
			series = append(series, s)
		}
		name := fmt.Sprintf("fig10_%s.svg", platformSlug(pt.P))
		err := create(dir, name, func(f *os.File) error {
			return viz.LineChart(f, viz.ChartConfig{
				Title: "Fig. 10 — VDP time on " + pt.P.Name, XLabel: "threads",
				YLabel: "processing time (ms)",
			}, series)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func writeFig11SVG(dir string, quick bool) error {
	rows := fig11Walk(quick)
	bw := viz.Series{Name: "bandwidth (msg/s)"}
	lat := viz.Series{Name: "latency (ms)"}
	sig := viz.Series{Name: "signal ×10"}
	for _, r := range rows {
		bw.X = append(bw.X, r.T)
		bw.Y = append(bw.Y, r.Bandwidth)
		sig.X = append(sig.X, r.T)
		sig.Y = append(sig.Y, r.Signal*10)
		if r.LatencyMs >= 0 {
			lat.X = append(lat.X, r.T)
			lat.Y = append(lat.Y, r.LatencyMs)
		}
	}
	return create(dir, "fig11.svg", func(f *os.File) error {
		return viz.LineChart(f, viz.ChartConfig{
			Title:  "Fig. 11 — UDP bandwidth vs latency under mobility (A→C→A)",
			XLabel: "time (s)", YLabel: "msg/s · ms · signal×10",
		}, []viz.Series{bw, lat, sig})
	})
}

func writeFig12SVG(dir string, quick bool) error {
	var series []viz.Series
	for _, d := range deployments() {
		cfg := labNav(d, quick)
		cfg.RecordTrace = true
		res, err := run(cfg)
		if err != nil {
			return err
		}
		s := viz.Series{Name: d.Name}
		for _, tp := range res.Trace {
			s.X = append(s.X, tp.T)
			s.Y = append(s.Y, tp.MaxVel)
		}
		series = append(series, s)
	}
	return create(dir, "fig12.svg", func(f *os.File) error {
		return viz.LineChart(f, viz.ChartConfig{
			Title:  "Fig. 12 — maximum velocity per deployment",
			XLabel: "time (s)", YLabel: "max velocity (m/s)",
		}, series)
	})
}

func writeFig13SVG(dir string, quick bool) error {
	for _, wl := range []core.Workload{core.NavigationWithMap, core.ExplorationNoMap} {
		rows, err := runFig13Workload(wl, quick)
		if err != nil {
			return err
		}
		var labels []string
		comp := map[energy.Component]*viz.Series{}
		order := []energy.Component{energy.Sensor, energy.Motor, energy.Microcontroller, energy.Computer}
		for _, c := range order {
			comp[c] = &viz.Series{Name: string(c)}
		}
		for _, r := range rows {
			labels = append(labels, r.Name)
			for _, c := range order {
				comp[c].Y = append(comp[c].Y, r.Energy[c])
			}
		}
		var series []viz.Series
		for _, c := range order {
			series = append(series, *comp[c])
		}
		name := fmt.Sprintf("fig13_%s.svg", wl)
		err = create(dir, name, func(f *os.File) error {
			return viz.BarChart(f, viz.ChartConfig{
				Title:  fmt.Sprintf("Fig. 13 — energy by component (%s)", wl),
				XLabel: "deployment", YLabel: "energy (J)",
			}, labels, series)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func writeFig14SVG(dir string, quick bool) error {
	course := world.ObstacleCourseMap()
	cfg := core.MissionConfig{
		Workload: core.NavigationWithMap, Map: course,
		Start: geom.P(0.6, 3.0, 0), Goal: geom.V(13.5, 0.8), WAP: geom.V(7, 3),
		Deployment: core.DeployEdge(8), Seed: 21, MaxSimTime: 900,
		VCeil: 0.6, RecordTrace: true,
	}
	if quick {
		cfg.Map = world.EmptyRoomMap(8, 4, 0.05)
		cfg.Start, cfg.Goal, cfg.WAP = geom.P(0.8, 2.0, 0), geom.V(7, 2), geom.V(4, 2)
		cfg.MaxSimTime = 300
	}
	res, err := run(cfg)
	if err != nil {
		return err
	}
	vmax := viz.Series{Name: "maximum velocity"}
	vreal := viz.Series{Name: "real velocity"}
	for _, tp := range res.Trace {
		vmax.X = append(vmax.X, tp.T)
		vmax.Y = append(vmax.Y, tp.MaxVel)
		vreal.X = append(vreal.X, tp.T)
		vreal.Y = append(vreal.Y, tp.RealVel)
	}
	return create(dir, "fig14.svg", func(f *os.File) error {
		return viz.LineChart(f, viz.ChartConfig{
			Title:  "Fig. 14 — maximum vs real velocity on the obstacle course",
			XLabel: "time (s)", YLabel: "velocity (m/s)",
		}, []viz.Series{vmax, vreal})
	})
}

func writeMapSVG(dir string, quick bool) error {
	m := world.LabMap()
	cfg := labNav(core.DeployEdge(8), quick)
	cfg.RecordTrace = true
	res, err := run(cfg)
	if err != nil {
		return err
	}
	pts := make([]geom.Vec2, 0, len(res.Trace))
	for _, tp := range res.Trace {
		pts = append(pts, geom.V(tp.X, tp.Y))
	}
	if quick {
		m = cfg.Map
	}
	return create(dir, "lab_map.svg", func(f *os.File) error {
		return viz.MapSVG(f, m, pts)
	})
}

// writeExtensionSVGs renders the extension results: the fleet-scaling
// crossover and the vision-speed saturation curves.
func writeExtensionSVGs(dir string, quick bool) error {
	// Fleet crossover.
	sizes := []int{1, 2, 4, 8, 16}
	if quick {
		sizes = []int{1, 4, 16}
	}
	base := func(d core.Deployment) core.MissionConfig {
		cfg := labNav(d, true)
		cfg.MaxSimTime = 600
		return cfg
	}
	edge, err := fleetSweep(base(core.DeployEdge(8)), sizes)
	if err != nil {
		return err
	}
	cloud, err := fleetSweep(base(core.DeployCloud(12)), sizes)
	if err != nil {
		return err
	}
	err = create(dir, "fleet.svg", func(f *os.File) error {
		return viz.LineChart(f, viz.ChartConfig{
			Title:  "Fleet extension — per-robot mission time vs fleet size",
			XLabel: "robots sharing the server", YLabel: "mission time (s)",
		}, []viz.Series{
			{Name: "edge gateway (4 cores)", X: toF(sizes), Y: edge},
			{Name: "cloud server (24 cores)", X: toF(sizes), Y: cloud},
		})
	})
	if err != nil {
		return err
	}

	// Vision saturation.
	speeds := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8}
	realized := make([]float64, len(speeds))
	for i, s := range speeds {
		realized[i] = visionRealized(s)
	}
	return create(dir, "vision.svg", func(f *os.File) error {
		return viz.LineChart(f, viz.ChartConfig{
			Title:  "Vision extension — realized vs commanded speed (§IX)",
			XLabel: "commanded speed (m/s)", YLabel: "realized speed (m/s)",
		}, []viz.Series{
			{Name: "realized", X: speeds, Y: realized},
			{Name: "commanded (ideal)", X: speeds, Y: speeds},
		})
	})
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
