package bench

import (
	"fmt"
	"io"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/vo"
)

// RunVision runs the §IX vision-based-LGV extension. The robot cruises a
// loop with turns; when feature tracking is lost it does what a real
// vision stack does — slows to creep speed until relocalized, then
// resumes. Sweeping the commanded cruise speed shows the paper's claim
// quantitatively: above the blur limit, losses multiply and the
// *realized* speed saturates, so commanding a vision-based LGV faster
// buys nothing — the velocity cap must respect the sensing constraint,
// not just Eq. 2c.
func RunVision(w io.Writer, quick bool) error {
	speeds := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8}
	if quick {
		speeds = []float64{0.2, 0.6}
	}
	const seconds, dt, creep = 120.0, 0.1, 0.05

	cfg := vo.DefaultConfig()
	hr(w, "Vision-based LGV extension — tracking losses vs commanded speed (§IX)")
	fmt.Fprintf(w, "blur limit: %.2f m/s equivalent flow (turns count %.1fx)\n\n",
		cfg.BlurLimit, cfg.TurnWeight)
	fmt.Fprintf(w, "%12s %10s %14s %12s %12s\n",
		"cmd speed", "losses", "realized m/s", "err(m)", "lost time %")
	var prevRealized float64
	for _, speed := range speeds {
		v := vo.New(cfg, rand.New(rand.NewSource(9)))
		truth := geom.P(0, 0, 0)
		lostTime := 0.0
		for tt := 0.0; tt < seconds; tt += dt {
			omega := 0.0
			if int(tt/5)%4 == 3 {
				omega = 0.5
			}
			// Respond to tracking loss: creep until relocalized.
			cmd := speed
			if !v.Tracking() {
				cmd = creep
				lostTime += dt
			}
			next := geom.Twist{V: cmd, W: omega}.Integrate(truth, dt)
			delta := truth.Delta(next)
			truth = next
			v.Update(delta, cmd, omega, dt)
		}
		errDist := v.Estimate().Pos.Dist(geom.P(0, 0, 0).Delta(truth).Pos)
		realized := v.Traveled() / seconds
		fmt.Fprintf(w, "%12.2f %10d %14.3f %12.3f %11.0f%%\n",
			speed, v.Losses(), realized, errDist, 100*lostTime/seconds)
		prevRealized = realized
	}
	_ = prevRealized
	fmt.Fprintf(w, "\nsafe cruise speed while turning at 0.5 rad/s: %.2f m/s\n",
		vo.New(cfg, rand.New(rand.NewSource(1))).SafeSpeed(0.5))
	fmt.Fprintln(w, "Paper's reading (§IX): vision-based LGVs share the pipeline but must cap")
	fmt.Fprintln(w, "velocity below the feature-tracking blur limit — commanding faster only")
	fmt.Fprintln(w, "multiplies relocalization stops; the realized speed saturates.")
	return nil
}

// VisionRealizedSpeeds returns (realized at low command, realized at high
// command) for tests asserting the saturation shape.
func VisionRealizedSpeeds() (low, high, lossesHigh float64) {
	cfg := vo.DefaultConfig()
	run := func(speed float64) (float64, int) {
		const seconds, dt, creep = 120.0, 0.1, 0.05
		v := vo.New(cfg, rand.New(rand.NewSource(9)))
		truth := geom.P(0, 0, 0)
		for tt := 0.0; tt < seconds; tt += dt {
			omega := 0.0
			if int(tt/5)%4 == 3 {
				omega = 0.5
			}
			cmd := speed
			if !v.Tracking() {
				cmd = creep
			}
			next := geom.Twist{V: cmd, W: omega}.Integrate(truth, dt)
			delta := truth.Delta(next)
			truth = next
			v.Update(delta, cmd, omega, dt)
		}
		return v.Traveled() / seconds, v.Losses()
	}
	l, _ := run(0.2)
	h, n := run(0.8)
	return l, h, float64(n)
}
