package bench

import (
	"sync"

	"lgvoffload/internal/core"
	"lgvoffload/internal/store"
)

// The harness can mirror every mission it runs into a mission store, so
// a full `reproduce` campaign leaves a queryable history behind (e.g.
// cross-mission p99 VDP after the chaos sweep, via cmd/lgvstore). The
// hook is process-global because experiments thread nothing but
// (w, quick) through their Run signature; reproduce sets it once before
// the campaign. Recording failures never fail an experiment — the store
// is a side channel, the report is the product.

var recMu sync.Mutex
var recStore *store.Store
var recLabel string

// RecordInto routes every mission the harness subsequently runs into
// st, tagging each MissionStart with label ("" just clears st). Pass
// nil to stop recording.
func RecordInto(st *store.Store, label string) {
	recMu.Lock()
	recStore, recLabel = st, label
	recMu.Unlock()
}

// run is the harness's core.Run: identical semantics, plus optional
// mission recording when RecordInto armed a store. Experiments call it
// instead of core.Run so campaigns are replayable from disk.
func run(cfg core.MissionConfig) (*core.Result, error) {
	recMu.Lock()
	st, label := recStore, recLabel
	recMu.Unlock()
	if st == nil {
		return core.Run(cfg)
	}
	start := store.MissionStart{
		Label:      label,
		Seed:       cfg.Seed,
		Workload:   cfg.Workload.String(),
		Deploy:     cfg.Deployment.Name,
		Goal:       cfg.Deployment.Goal.String(),
		Threads:    cfg.Deployment.Threads,
		MaxSimTime: cfg.MaxSimTime,
	}
	if cfg.Faults != nil {
		start.FaultSpec = cfg.Faults.String()
	}
	rec, err := st.Begin(start)
	if err != nil {
		return core.Run(cfg) // recording is best-effort; the mission is not
	}
	cfg.Store = rec
	res, err := core.Run(cfg)
	if err != nil || res == nil {
		rec.Abandon()
		return res, err
	}
	_ = rec.Finish(core.StoreSummary(res))
	return res, err
}
