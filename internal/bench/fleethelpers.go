package bench

import (
	"math/rand"

	"lgvoffload/internal/core"
	"lgvoffload/internal/fleet"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/vo"
)

// fleetSweep returns per-robot mission times for the figure writer.
func fleetSweep(base core.MissionConfig, sizes []int) ([]float64, error) {
	rows, err := fleet.Sweep(base, sizes)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r.Time
	}
	return out, nil
}

// visionRealized runs the §IX loop at one commanded speed and returns
// the realized average speed (same dynamics as RunVision).
func visionRealized(speed float64) float64 {
	const seconds, dt, creep = 120.0, 0.1, 0.05
	v := vo.New(vo.DefaultConfig(), rand.New(rand.NewSource(9)))
	truth := geom.P(0, 0, 0)
	for tt := 0.0; tt < seconds; tt += dt {
		omega := 0.0
		if int(tt/5)%4 == 3 {
			omega = 0.5
		}
		cmd := speed
		if !v.Tracking() {
			cmd = creep
		}
		next := geom.Twist{V: cmd, W: omega}.Integrate(truth, dt)
		delta := truth.Delta(next)
		truth = next
		v.Update(delta, cmd, omega, dt)
	}
	return v.Traveled() / seconds
}
