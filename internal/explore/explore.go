// Package explore implements the Exploration node: Yamauchi's
// frontier-based autonomous exploration. A frontier is a free cell
// adjacent to unknown space; frontiers are clustered into connected
// regions, regions below a minimum size are discarded, and the next goal
// is chosen by distance (nearest-first, the classic policy) from the
// robot's current position. Exploration finishes when no qualifying
// frontier remains.
package explore

import (
	"sort"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// Config parameterizes frontier detection.
type Config struct {
	// MinFrontierCells is the smallest cluster worth visiting.
	MinFrontierCells int
	// MinGoalDist skips frontiers closer than this to the robot (they
	// are usually sensor shadows the next scan will clear), m.
	MinGoalDist float64
}

// DefaultConfig returns thresholds suitable for 5 cm grids.
func DefaultConfig() Config {
	return Config{MinFrontierCells: 8, MinGoalDist: 0.3}
}

// Frontier is one cluster of boundary cells.
type Frontier struct {
	Cells    []geom.Cell
	Centroid geom.Vec2
	// Reachable is the member cell's world position closest to the
	// centroid — a guaranteed-free goal point (the centroid itself can
	// fall inside an obstacle for C-shaped clusters).
	Reachable geom.Vec2
}

// Size returns the number of cells in the frontier.
func (f Frontier) Size() int { return len(f.Cells) }

// Result is one detection pass.
type Result struct {
	Frontiers []Frontier
	Ops       int // cells examined (work measure)
}

// Done reports whether exploration is complete (no frontiers remain).
func (r Result) Done() bool { return len(r.Frontiers) == 0 }

// Detect finds all frontier clusters in the map.
func Detect(m *grid.Map, cfg Config) Result {
	var res Result
	w, h := m.Width, m.Height
	isFrontier := func(c geom.Cell) bool {
		if m.At(c) != grid.Free {
			return false
		}
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				n := geom.Cell{X: c.X + dx, Y: c.Y + dy}
				if m.InBounds(n) && m.At(n) == grid.Unknown {
					return true
				}
			}
		}
		return false
	}

	visited := make([]bool, w*h)
	idx := func(c geom.Cell) int { return c.Y*w + c.X }

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := geom.Cell{X: x, Y: y}
			res.Ops++
			if visited[idx(c)] || !isFrontier(c) {
				continue
			}
			// Flood-fill the cluster over 8-connectivity.
			var cluster []geom.Cell
			stack := []geom.Cell{c}
			visited[idx(c)] = true
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				cluster = append(cluster, cur)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						n := geom.Cell{X: cur.X + dx, Y: cur.Y + dy}
						if !m.InBounds(n) || visited[idx(n)] {
							continue
						}
						res.Ops++
						if isFrontier(n) {
							visited[idx(n)] = true
							stack = append(stack, n)
						}
					}
				}
			}
			if len(cluster) < cfg.MinFrontierCells {
				continue
			}
			res.Frontiers = append(res.Frontiers, buildFrontier(m, cluster))
		}
	}
	return res
}

func buildFrontier(m *grid.Map, cells []geom.Cell) Frontier {
	var cx, cy float64
	for _, c := range cells {
		w := m.CellToWorld(c)
		cx += w.X
		cy += w.Y
	}
	centroid := geom.V(cx/float64(len(cells)), cy/float64(len(cells)))
	best := m.CellToWorld(cells[0])
	bestD := best.DistSq(centroid)
	for _, c := range cells[1:] {
		w := m.CellToWorld(c)
		if d := w.DistSq(centroid); d < bestD {
			best, bestD = w, d
		}
	}
	return Frontier{Cells: cells, Centroid: centroid, Reachable: best}
}

// Candidates returns every qualifying frontier goal sorted nearest-first
// (deterministic tie-break by coordinates). Callers that can fail to
// reach a goal — a frontier may sit in a sensor shadow the planner cannot
// route to — walk the list and blacklist losers.
func Candidates(m *grid.Map, robot geom.Vec2, cfg Config) ([]geom.Vec2, Result) {
	res := Detect(m, cfg)
	type cand struct {
		goal geom.Vec2
		d    float64
	}
	var cands []cand
	for _, f := range res.Frontiers {
		d := f.Reachable.Dist(robot)
		if d < cfg.MinGoalDist {
			continue
		}
		cands = append(cands, cand{goal: f.Reachable, d: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		if cands[i].goal.X != cands[j].goal.X {
			return cands[i].goal.X < cands[j].goal.X
		}
		return cands[i].goal.Y < cands[j].goal.Y
	})
	out := make([]geom.Vec2, len(cands))
	for i, c := range cands {
		out[i] = c.goal
	}
	return out, res
}

// NextGoal selects the nearest qualifying frontier's reachable point as
// the next exploration goal. ok=false means exploration is complete.
func NextGoal(m *grid.Map, robot geom.Vec2, cfg Config) (geom.Vec2, Result, bool) {
	cands, res := Candidates(m, robot, cfg)
	if len(cands) == 0 {
		return geom.Vec2{}, res, false
	}
	return cands[0], res, true
}

// Progress returns the fraction of the reference (ground-truth) map's
// free cells that the explored map has discovered as free — the metric
// the mission engine uses to decide an exploration run has succeeded.
func Progress(explored, truth *grid.Map) float64 {
	if explored.Width != truth.Width || explored.Height != truth.Height {
		return 0
	}
	totalFree, found := 0, 0
	for i, v := range truth.Cells {
		if v != grid.Free {
			continue
		}
		totalFree++
		if explored.Cells[i] == grid.Free {
			found++
		}
	}
	if totalFree == 0 {
		return 0
	}
	return float64(found) / float64(totalFree)
}

// Coverage returns the known fraction of cells within the given radius of
// any visited pose — a progress proxy when no ground truth is available.
func Coverage(m *grid.Map, visited []geom.Vec2, radius float64) float64 {
	if len(visited) == 0 {
		return 0
	}
	r2 := radius * radius
	total, known := 0, 0
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			c := geom.Cell{X: x, Y: y}
			w := m.CellToWorld(c)
			near := false
			for _, v := range visited {
				if w.DistSq(v) <= r2 {
					near = true
					break
				}
			}
			if !near {
				continue
			}
			total++
			if m.At(c) != grid.Unknown {
				known++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(known) / float64(total)
}
