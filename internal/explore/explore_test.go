package explore

import (
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// partialMap builds a map where the left half is known free, the right
// half unknown, with a vertical frontier between them.
func partialMap() *grid.Map {
	m := grid.NewMap(40, 40, 0.1, geom.V(0, 0), grid.Unknown)
	for y := 0; y < 40; y++ {
		for x := 0; x < 20; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Free)
		}
	}
	return m
}

func TestDetectFindsFrontier(t *testing.T) {
	res := Detect(partialMap(), DefaultConfig())
	if len(res.Frontiers) != 1 {
		t.Fatalf("frontiers = %d", len(res.Frontiers))
	}
	f := res.Frontiers[0]
	// The frontier column is x=19 (free cells adjacent to unknown x=20).
	for _, c := range f.Cells {
		if c.X != 19 {
			t.Fatalf("frontier cell off-column: %v", c)
		}
	}
	if f.Size() != 40 {
		t.Errorf("frontier size = %d, want 40", f.Size())
	}
	if res.Ops == 0 {
		t.Error("no work accounted")
	}
}

func TestFullyKnownMapHasNoFrontiers(t *testing.T) {
	m := grid.NewMap(20, 20, 0.1, geom.V(0, 0), grid.Free)
	res := Detect(m, DefaultConfig())
	if !res.Done() {
		t.Errorf("fully known map has %d frontiers", len(res.Frontiers))
	}
}

func TestFullyUnknownMapHasNoFrontiers(t *testing.T) {
	m := grid.NewMap(20, 20, 0.1, geom.V(0, 0), grid.Unknown)
	if res := Detect(m, DefaultConfig()); !res.Done() {
		t.Error("no free cells means no frontiers")
	}
}

func TestMinSizeFiltersSmallClusters(t *testing.T) {
	m := grid.NewMap(20, 20, 0.1, geom.V(0, 0), grid.Free)
	// Introduce a tiny unknown pocket: a small frontier ring around it.
	m.Set(geom.Cell{X: 10, Y: 10}, grid.Unknown)
	cfg := DefaultConfig()
	cfg.MinFrontierCells = 20
	if res := Detect(m, cfg); !res.Done() {
		t.Errorf("small cluster should be filtered, got %d", len(res.Frontiers))
	}
	cfg.MinFrontierCells = 1
	if res := Detect(m, cfg); res.Done() {
		t.Error("cluster should appear with MinFrontierCells=1")
	}
}

func TestOccupiedBoundaryIsNotFrontier(t *testing.T) {
	m := partialMap()
	// Wall off the boundary column: occupied cells are never frontiers.
	for y := 0; y < 40; y++ {
		m.Set(geom.Cell{X: 19, Y: y}, grid.Occupied)
	}
	if res := Detect(m, DefaultConfig()); !res.Done() {
		t.Errorf("walled boundary should have no frontier, got %d", len(res.Frontiers))
	}
}

func TestNextGoalNearest(t *testing.T) {
	m := partialMap()
	// Add a second unknown region at the bottom-left, creating a second
	// frontier nearer to a robot at (0.5, 0.5)... actually carve unknown
	// into the known half.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Unknown)
		}
	}
	robot := geom.V(1.0, 0.2)
	goal, res, ok := NextGoal(m, robot, DefaultConfig())
	if !ok {
		t.Fatal("expected a goal")
	}
	if len(res.Frontiers) < 2 {
		t.Fatalf("expected 2 frontiers, got %d", len(res.Frontiers))
	}
	// The near frontier (around the carved pocket) should win.
	if goal.X > 1.5 {
		t.Errorf("nearest frontier not chosen: %v", goal)
	}
}

func TestNextGoalRespectsMinDist(t *testing.T) {
	m := partialMap()
	robot := geom.V(1.95, 2.0) // on the frontier itself
	cfg := DefaultConfig()
	cfg.MinGoalDist = 50 // exclude everything
	if _, _, ok := NextGoal(m, robot, cfg); ok {
		t.Error("all frontiers within MinGoalDist should end exploration")
	}
}

func TestReachableIsFrontierMember(t *testing.T) {
	res := Detect(partialMap(), DefaultConfig())
	f := res.Frontiers[0]
	m := partialMap()
	c := m.WorldToCell(f.Reachable)
	found := false
	for _, fc := range f.Cells {
		if fc == c {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("Reachable %v is not a member cell", f.Reachable)
	}
}

func TestProgress(t *testing.T) {
	truth := grid.NewMap(10, 10, 0.1, geom.V(0, 0), grid.Free)
	explored := grid.NewMap(10, 10, 0.1, geom.V(0, 0), grid.Unknown)
	if p := Progress(explored, truth); p != 0 {
		t.Errorf("no progress = %v", p)
	}
	for i := 0; i < 50; i++ {
		explored.Cells[i] = grid.Free
	}
	if p := Progress(explored, truth); p != 0.5 {
		t.Errorf("half progress = %v", p)
	}
	// Size mismatch is defensive-zero.
	small := grid.NewMap(5, 5, 0.1, geom.V(0, 0), grid.Free)
	if Progress(small, truth) != 0 {
		t.Error("mismatched dims should be 0")
	}
	// No free truth cells.
	wall := grid.NewMap(10, 10, 0.1, geom.V(0, 0), grid.Occupied)
	if Progress(explored, wall) != 0 {
		t.Error("no free truth should be 0")
	}
}

func TestCoverage(t *testing.T) {
	m := grid.NewMap(20, 20, 0.1, geom.V(0, 0), grid.Unknown)
	for y := 0; y < 20; y++ {
		for x := 0; x < 10; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Free)
		}
	}
	// Visit only the known half: high coverage.
	if c := Coverage(m, []geom.Vec2{geom.V(0.5, 1.0)}, 0.4); c < 0.9 {
		t.Errorf("coverage near known = %v", c)
	}
	// Visit the unknown half: low coverage.
	if c := Coverage(m, []geom.Vec2{geom.V(1.5, 1.0)}, 0.4); c > 0.1 {
		t.Errorf("coverage near unknown = %v", c)
	}
	if Coverage(m, nil, 1) != 0 {
		t.Error("no visits should be 0")
	}
}
