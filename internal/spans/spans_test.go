package spans

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestNilTracerIsValidNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if id := tr.NewTrace(); id != 0 {
		t.Errorf("nil NewTrace = %d, want 0", id)
	}
	if id := tr.NextID(); id != 0 {
		t.Errorf("nil NextID = %d, want 0", id)
	}
	if id := tr.Add(1, 0, "x", "lgv", "n", Compute, 0, 1); id != 0 {
		t.Errorf("nil Add = %d, want 0", id)
	}
	if id := tr.Record(Span{Trace: 1}); id != 0 {
		t.Errorf("nil Record = %d, want 0", id)
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil Spans = %v, want nil", got)
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer counters nonzero")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	tr.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Errorf("nil summary = %q", buf.String())
	}
}

func TestZeroTraceIDIsDiscarded(t *testing.T) {
	tr := NewTracer(8)
	// Producers blindly propagate trace ids from disabled peers; a zero
	// trace must never land in the buffer.
	if id := tr.Add(0, 7, "x", "", "", Compute, 0, 1); id != 0 {
		t.Errorf("Add with trace 0 = %d, want 0", id)
	}
	if id := tr.Record(Span{Trace: 0, Name: "x"}); id != 0 {
		t.Errorf("Record with trace 0 = %d, want 0", id)
	}
	if tr.Len() != 0 {
		t.Errorf("buffered %d spans, want 0", tr.Len())
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Add(trace, 0, "s", "lgv", "", Aux, float64(i), float64(i)+0.5)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
	sp := tr.Spans()
	// Oldest-first order with the oldest six evicted.
	for i, s := range sp {
		if want := float64(6 + i); s.Start != want {
			t.Errorf("span %d start = %g, want %g", i, s.Start, want)
		}
	}
}

func TestIDsUniqueAcrossTraceAndSpan(t *testing.T) {
	tr := NewTracer(16)
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		id := tr.NewTrace()
		if seen[id] {
			t.Fatalf("trace id %d reused", id)
		}
		seen[id] = true
		sid := tr.Add(id, 0, "s", "", "", Aux, 0, 1)
		if seen[sid] {
			t.Fatalf("span id %d collides", sid)
		}
		seen[sid] = true
	}
}

func makeTickTrace(tr *Tracer) {
	trace := tr.NewTrace()
	root := tr.NextID()
	tr.Add(trace, root, "uplink_queue", "lgv", "net", Queue, 0, 0.002)
	tr.Add(trace, root, "uplink", "edge", "net", Transport, 0.002, 0.010)
	tr.Add(trace, root, "costmap_generation", "edge", "costmap_generation", Compute, 0.010, 0.030)
	tr.Add(trace, root, "path_tracking", "edge", "path_tracking", Compute, 0.030, 0.060)
	tr.Add(trace, root, "downlink", "lgv", "net", Transport, 0.060, 0.066)
	tr.Add(trace, root, "velocity_mux", "lgv", "velocity_mux", Compute, 0.066, 0.068)
	tr.Add(trace, root, "localization", "lgv", "localization", Aux, 0, 0.080)
	tr.Record(Span{Trace: trace, ID: root, Name: "tick", Host: "lgv",
		Kind: Tick, Start: 0, End: 0.068})
}

func TestValidateAcceptsWellFormedTrace(t *testing.T) {
	tr := NewTracer(64)
	makeTickTrace(tr)
	if err := Validate(tr.Spans()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		sp   []Span
		want string
	}{
		{"negative duration",
			[]Span{{Trace: 1, ID: 2, Name: "x", Start: 5, End: 4}},
			"negative duration"},
		{"zero id",
			[]Span{{Trace: 1, Name: "x", Start: 0, End: 1}},
			"zero id"},
		{"duplicate id",
			[]Span{{Trace: 1, ID: 2, Name: "x", Start: 0, End: 1},
				{Trace: 1, ID: 2, Name: "y", Start: 0, End: 1}},
			"duplicate"},
		{"missing parent",
			[]Span{{Trace: 1, ID: 2, Parent: 9, Name: "x", Start: 0, End: 1}},
			"parent 9 missing"},
		{"segment escapes parent",
			[]Span{{Trace: 1, ID: 2, Name: "root", Kind: Tick, Start: 0, End: 1},
				{Trace: 1, ID: 3, Parent: 2, Name: "seg", Kind: Compute, Start: 0.5, End: 1.5}},
			"escapes parent"},
	}
	for _, c := range cases {
		err := Validate(c.sp)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
	// An Aux span outlasting its parent is fine (localization does this).
	ok := []Span{
		{Trace: 1, ID: 2, Name: "root", Kind: Tick, Start: 0, End: 1},
		{Trace: 1, ID: 3, Parent: 2, Name: "loc", Kind: Aux, Start: 0, End: 2},
	}
	if err := Validate(ok); err != nil {
		t.Errorf("Aux escaping parent rejected: %v", err)
	}
}

func TestChromeExportValidates(t *testing.T) {
	tr := NewTracer(256)
	for i := 0; i < 5; i++ {
		makeTickTrace(tr)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if want := tr.Len(); n != want {
		t.Errorf("chrome events = %d, want %d", n, want)
	}
	// Hosts become named process lanes.
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, want := range []string{"process_name", "thread_name", `"lgv"`, `"edge"`} {
		if !strings.Contains(raw, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}
}

func TestValidateChromeCatchesDefects(t *testing.T) {
	if _, err := ValidateChrome([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	bad := `{"traceEvents":[
		{"name":"a","ph":"X","ts":5,"pid":1,"tid":1,"args":{"trace":1,"id":1}},
		{"name":"b","ph":"X","ts":3,"pid":1,"tid":1,"args":{"trace":1,"id":2}}]}`
	if _, err := ValidateChrome([]byte(bad)); err == nil ||
		!strings.Contains(err.Error(), "monotonic") {
		t.Errorf("non-monotonic ts: err = %v", err)
	}
	orphan := `{"traceEvents":[
		{"name":"a","ph":"X","ts":1,"pid":1,"tid":1,"args":{"trace":1,"id":3,"parent":9}}]}`
	if _, err := ValidateChrome([]byte(orphan)); err == nil ||
		!strings.Contains(err.Error(), "parent") {
		t.Errorf("orphan parent: err = %v", err)
	}
}

func TestJSONLRoundTrips(t *testing.T) {
	tr := NewTracer(64)
	makeTickTrace(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.Len() {
		t.Fatalf("%d JSONL lines, want %d", len(lines), tr.Len())
	}
	for _, ln := range lines {
		var s Span
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if s.Trace == 0 || s.ID == 0 {
			t.Errorf("line %q lost ids", ln)
		}
	}
}

func TestAnalyzeTicksDecomposition(t *testing.T) {
	tr := NewTracer(256)
	makeTickTrace(tr)
	paths := AnalyzeTicks(tr.Spans())
	if len(paths) != 1 {
		t.Fatalf("%d tick paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Makespan != 0.068 {
		t.Errorf("makespan = %g, want 0.068", p.Makespan)
	}
	// 2+8 net, 20+30+2 compute, all milliseconds.
	if got := p.Sum(); !approx(got, p.Makespan, 1e-12) {
		t.Errorf("segments sum %g != makespan %g", got, p.Makespan)
	}
	if !approx(p.Compute, 0.052, 1e-12) || !approx(p.Queue, 0.002, 1e-12) ||
		!approx(p.Transport, 0.014, 1e-12) {
		t.Errorf("decomposition = %g/%g/%g", p.Compute, p.Queue, p.Transport)
	}
	if !approx(p.ComputeByHost["edge"], 0.050, 1e-12) ||
		!approx(p.ComputeByHost["lgv"], 0.002, 1e-12) {
		t.Errorf("compute by host = %v", p.ComputeByHost)
	}
}

func TestSummarizeExcludesStarvedTicks(t *testing.T) {
	paths := []TickPath{
		{Makespan: 0.040, Compute: 0.030, Queue: 0.002, Transport: 0.008},
		{Makespan: 0}, // starved: uplink drop
		{Makespan: 0.060, Compute: 0.050, Queue: 0.002, Transport: 0.008},
	}
	s := Summarize(paths)
	if s.Ticks != 2 {
		t.Errorf("Ticks = %d, want 2", s.Ticks)
	}
	if !approx(s.MakespanP50, 0.050, 1e-12) {
		t.Errorf("p50 = %g, want 0.050", s.MakespanP50)
	}
	if !strings.Contains(s.OneLine(), "ticks=2") {
		t.Errorf("OneLine = %q", s.OneLine())
	}
}

func TestWindowFiltersByStart(t *testing.T) {
	paths := []TickPath{{Start: 1}, {Start: 2}, {Start: 3}}
	got := Window(paths, 1.5, 3)
	if len(got) != 1 || got[0].Start != 2 {
		t.Errorf("Window = %v", got)
	}
}

func TestWriteTableSamples(t *testing.T) {
	var paths []TickPath
	for i := 0; i < 100; i++ {
		paths = append(paths, TickPath{Start: float64(i), Makespan: 0.05,
			Compute: 0.04, Queue: 0.004, Transport: 0.006,
			ComputeByHost: map[string]float64{"lgv": 0.04}})
	}
	var buf bytes.Buffer
	WriteTable(&buf, paths, 10)
	out := buf.String()
	if !strings.Contains(out, "sampled 1-in-10") {
		t.Errorf("table missing sampling note:\n%s", out)
	}
	if !strings.Contains(out, "ticks=100") {
		t.Errorf("table missing summary footer:\n%s", out)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func TestWriteJSONLPage(t *testing.T) {
	tr := NewTracer(64)
	trace := tr.NewTrace()
	for i := 0; i < 20; i++ {
		tr.Add(trace, 0, "s", "lgv", "", Compute, float64(i), float64(i)+0.1)
	}
	var buf bytes.Buffer
	n, err := tr.WriteJSONLPage(&buf, 0, 5)
	if err != nil || n != 5 {
		t.Fatalf("first page: n=%d err=%v", n, err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("first page lines = %d", lines)
	}
	// Page forward using the last span's ID as the cursor, and verify
	// that walking pages recovers every span exactly once.
	var last Span
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(buf.String()), "\n")[4]), &last); err != nil {
		t.Fatal(err)
	}
	seen := 5
	for cursor := last.ID; ; {
		buf.Reset()
		n, err := tr.WriteJSONLPage(&buf, cursor, 7)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		seen += n
		rows := strings.Split(strings.TrimSpace(buf.String()), "\n")
		var s Span
		if err := json.Unmarshal([]byte(rows[len(rows)-1]), &s); err != nil {
			t.Fatal(err)
		}
		if s.ID <= cursor {
			t.Fatalf("cursor did not advance: %d <= %d", s.ID, cursor)
		}
		cursor = s.ID
	}
	if seen != 20 {
		t.Fatalf("paged spans = %d, want 20", seen)
	}
	// Nil and degenerate cases.
	var nilTr *Tracer
	if n, err := nilTr.WriteJSONLPage(io.Discard, 0, 5); n != 0 || err != nil {
		t.Fatalf("nil tracer page: n=%d err=%v", n, err)
	}
	if n, _ := tr.WriteJSONLPage(io.Discard, 0, 0); n != 0 {
		t.Fatalf("limit 0 wrote %d", n)
	}
}
