package spans

import (
	"encoding/json"
	"fmt"
)

// Validate checks structural invariants over a span set: non-negative
// durations, unique ids, resolvable parents within the same trace, and
// — for the critical-path kinds (Compute/Queue/Transport) — interval
// containment inside the parent span. Aux and Mark spans only need a
// resolvable parent: localization may legitimately outlast the VDP
// makespan, and mux-wait extends past command delivery.
func Validate(sp []Span) error {
	const eps = 1e-9
	type key struct {
		trace, id uint64
	}
	byID := make(map[key]Span, len(sp))
	for _, s := range sp {
		if s.End < s.Start-eps {
			return fmt.Errorf("span %d (%s): negative duration [%g, %g]", s.ID, s.Name, s.Start, s.End)
		}
		if s.ID == 0 {
			return fmt.Errorf("span %q: zero id", s.Name)
		}
		k := key{s.Trace, s.ID}
		if _, dup := byID[k]; dup {
			return fmt.Errorf("span %d (%s): duplicate id in trace %d", s.ID, s.Name, s.Trace)
		}
		byID[k] = s
	}
	for _, s := range sp {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[key{s.Trace, s.Parent}]
		if !ok {
			return fmt.Errorf("span %d (%s): parent %d missing from trace %d", s.ID, s.Name, s.Parent, s.Trace)
		}
		switch s.Kind {
		case Compute, Queue, Transport:
			if s.Start < p.Start-eps || s.End > p.End+eps {
				return fmt.Errorf("span %d (%s): [%g, %g] escapes parent %d (%s) [%g, %g]",
					s.ID, s.Name, s.Start, s.End, p.ID, p.Name, p.Start, p.End)
			}
		}
	}
	return nil
}

// ValidateChrome checks an exported Chrome trace-event JSON document:
// well-formed JSON of the object form, every event a metadata ("M") or
// complete ("X") event, non-negative ts/dur, ts monotonic across the
// complete events, and every span's parent id present in the document.
// It returns the number of complete events.
func ValidateChrome(data []byte) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  float64  `json:"dur"`
			Args struct {
				ID     uint64 `json:"id"`
				Parent uint64 `json:"parent"`
				Trace  uint64 `json:"trace"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("malformed trace JSON: %w", err)
	}
	type key struct{ trace, id uint64 }
	ids := map[key]bool{}
	lastTs := 0.0
	n := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return 0, fmt.Errorf("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ts == nil {
			return 0, fmt.Errorf("event %d (%s): missing ts", i, ev.Name)
		}
		if *ev.Ts < 0 || ev.Dur < 0 {
			return 0, fmt.Errorf("event %d (%s): negative ts/dur", i, ev.Name)
		}
		if n > 0 && *ev.Ts < lastTs {
			return 0, fmt.Errorf("event %d (%s): ts %g < previous %g (not monotonic)", i, ev.Name, *ev.Ts, lastTs)
		}
		lastTs = *ev.Ts
		ids[key{ev.Args.Trace, ev.Args.ID}] = true
		n++
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Args.Parent == 0 {
			continue
		}
		if !ids[key{ev.Args.Trace, ev.Args.Parent}] {
			return 0, fmt.Errorf("event %d (%s): parent span %d absent from trace %d",
				i, ev.Name, ev.Args.Parent, ev.Args.Trace)
		}
	}
	return n, nil
}
