package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL streams the buffered spans as one JSON object per line,
// matching the obs telemetry export style (jq/pandas-friendly).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLPage streams one bounded page of spans: up to limit spans
// with ID > after, ascending by ID, one JSON object per line. It
// returns how many spans were written; the caller pages by passing the
// last span's ID back as after. limit <= 0 writes nothing. Nil-safe.
func (t *Tracer) WriteJSONLPage(w io.Writer, after uint64, limit int) (int, error) {
	if t == nil || limit <= 0 {
		return 0, nil
	}
	page := make([]Span, 0, limit)
	for _, s := range t.Spans() {
		if s.ID > after {
			page = append(page, s)
		}
	}
	// Spans land in the ring in completion order; IDs are assigned at
	// creation, so sort to make the cursor well-defined.
	sort.Slice(page, func(i, j int) bool { return page[i].ID < page[j].ID })
	if len(page) > limit {
		page = page[:limit]
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range page {
		if err := enc.Encode(s); err != nil {
			return 0, err
		}
	}
	return len(page), bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Object Format"), which Perfetto and chrome://tracing both load.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the buffered spans as Chrome trace-event JSON:
// each host becomes a process lane, each node (or span name, for net
// and event spans) a thread lane, and every span a complete ("X")
// event carrying its trace/span/parent ids in args. Events are sorted
// by start time so the ts column is monotonic. Load the file at
// https://ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Spans())
}

// WriteChrome exports an explicit span slice; see Tracer.WriteChrome.
func WriteChrome(w io.Writer, sp []Span) error {
	sp = append([]Span(nil), sp...)
	sort.SliceStable(sp, func(i, j int) bool { return sp[i].Start < sp[j].Start })

	// Stable pid per host, tid per lane within the host.
	pids := map[string]int{}
	type lane struct {
		host string
		name string
	}
	tids := map[lane]int{}
	var meta []chromeEvent
	pidOf := func(host string) int {
		if host == "" {
			host = "events"
		}
		if id, ok := pids[host]; ok {
			return id
		}
		id := len(pids) + 1
		pids[host] = id
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]interface{}{"name": host},
		})
		return id
	}
	tidOf := func(host, name string) int {
		l := lane{host, name}
		if id, ok := tids[l]; ok {
			return id
		}
		id := len(tids) + 1
		tids[l] = id
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf(host), Tid: id,
			Args: map[string]interface{}{"name": name},
		})
		return id
	}

	events := make([]chromeEvent, 0, len(sp))
	for _, s := range sp {
		laneName := s.Node
		if laneName == "" {
			laneName = s.Name
		}
		args := map[string]interface{}{
			"trace": s.Trace, "id": s.ID, "kind": s.Kind.String(),
		}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  s.Start * 1e6,
			Dur: s.Duration() * 1e6,
			Pid: pidOf(s.Host), Tid: tidOf(s.Host, laneName),
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}

// WriteSummary prints a one-screen overview of the tracer state.
func (t *Tracer) WriteSummary(w io.Writer) {
	if t == nil {
		fmt.Fprintln(w, "tracing disabled")
		return
	}
	fmt.Fprintf(w, "spans buffered=%d recorded=%d evicted=%d\n",
		t.Len(), t.Total(), t.Dropped())
}
