// Package spans is the causal tracing layer: every control tick (and
// every real-socket offload round) is recorded as a tree of spans —
// compute, queue and transport intervals with parent links and host/node
// attributes — so a late command can be attributed to the hop that made
// it late, not just to an aggregate histogram. Times are plain float64
// seconds in whatever clock the producer runs on (virtual mission time
// in the engine, wall time since epoch in the switcher/worker).
//
// The package is dependency-free and mirrors the obs nil-safety
// contract: every method on a nil *Tracer is a no-op, so instrumented
// hot paths need no guards and allocate nothing when tracing is off.
// (The name avoids the existing internal/trace dataset package.)
package spans

import "sync"

// Kind classifies a span for critical-path analysis. Only Compute,
// Queue and Transport spans are segments of the VDP makespan; Aux marks
// work that is causally in the tick but off the command path
// (localization, SLAM, planning, post-decision mux wait), and Mark
// records episodes/instants (watchdog stalls, failovers, fault
// windows).
type Kind uint8

const (
	Compute Kind = iota
	Queue
	Transport
	Tick // root span of one control tick / offload round
	Aux
	Mark
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Queue:
		return "queue"
	case Transport:
		return "transport"
	case Tick:
		return "tick"
	case Aux:
		return "aux"
	case Mark:
		return "mark"
	}
	return "unknown"
}

// Span is one completed interval. Producers record spans only once both
// endpoints are known — there is no live span handle to allocate, which
// is what keeps the disabled path (and the ring append) allocation-free.
type Span struct {
	Trace  uint64  `json:"trace"`            // tick/round id; spans with equal Trace form one tree
	ID     uint64  `json:"id"`               // unique within the tracer
	Parent uint64  `json:"parent,omitempty"` // 0 = root of its trace
	Name   string  `json:"name"`
	Host   string  `json:"host,omitempty"`
	Node   string  `json:"node,omitempty"`
	Kind   Kind    `json:"kind"`
	Start  float64 `json:"t0"` // seconds
	End    float64 `json:"t1"`
}

// Duration returns the span length in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// DefaultCapacity bounds the span ring when callers pass 0: at ~10
// spans per 5 Hz tick this holds around 20 minutes of mission.
const DefaultCapacity = 1 << 16

// Tracer collects completed spans into a bounded ring and hands out
// trace/span ids. A nil Tracer is the disabled state: every method
// no-ops and returns zero. The single short-critical-section mutex
// keeps it safe for the concurrent real-socket path (switcher pump,
// worker loop) while staying cheap for the single-goroutine engine.
type Tracer struct {
	mu      sync.Mutex
	buf     []Span
	head    int // index of the oldest span
	n       int // spans currently buffered
	lastID  uint64
	total   uint64 // spans ever recorded
	dropped uint64 // spans evicted by the ring bound
}

// NewTracer returns a tracer holding at most capacity spans
// (DefaultCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// NewTrace allocates a fresh trace id (0 when disabled). Trace and span
// ids come from one counter, so an id never names both.
func (t *Tracer) NewTrace() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.lastID++
	id := t.lastID
	t.mu.Unlock()
	return id
}

// NextID reserves a span id without recording anything, for producers
// that must hand a parent id to a remote peer before the parent span's
// end time is known (the switcher does this when stamping a scan).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.lastID++
	id := t.lastID
	t.mu.Unlock()
	return id
}

// Record appends a completed span, assigning s.ID when zero, and
// returns the span id. Spans with Trace 0 are discarded: trace id 0
// means "untraced", so producers can blindly propagate ids from
// disabled peers. On a nil tracer Record returns 0.
func (t *Tracer) Record(s Span) uint64 {
	if t == nil || s.Trace == 0 {
		return 0
	}
	t.mu.Lock()
	if s.ID == 0 {
		t.lastID++
		s.ID = t.lastID
	}
	if t.n == len(t.buf) {
		t.buf[t.head] = s
		t.head++
		if t.head == len(t.buf) {
			t.head = 0
		}
		t.dropped++
	} else {
		i := t.head + t.n
		if i >= len(t.buf) {
			i -= len(t.buf)
		}
		t.buf[i] = s
		t.n++
	}
	t.total++
	id := s.ID
	t.mu.Unlock()
	return id
}

// Add is the one-line producer call: record a completed span with a
// fresh id under the given trace/parent. It no-ops (returning 0) on a
// nil tracer or a zero trace id, so call sites on the tick hot path
// need no branches of their own.
func (t *Tracer) Add(trace, parent uint64, name, host, node string, k Kind, t0, t1 float64) uint64 {
	if t == nil || trace == 0 {
		return 0
	}
	return t.Record(Span{
		Trace: trace, Parent: parent, Name: name, Host: host, Node: node,
		Kind: k, Start: t0, End: t1,
	})
}

// Spans returns a copy of the buffered spans in record order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.n)
	for i := 0; i < t.n; i++ {
		j := t.head + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		out[i] = t.buf[j]
	}
	return out
}

// Len returns the number of spans currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many old spans the ring bound evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
