package spans

import (
	"fmt"
	"io"
	"sort"
)

// TickPath is the critical-path decomposition of one tick trace: the
// VDP makespan split into its compute, queue and transport segments.
// By construction (the engine records segment spans from the same
// quantities it schedules delivery with) Compute+Queue+Transport equals
// Makespan for every tick that produced a command.
type TickPath struct {
	Trace    uint64
	Start    float64
	End      float64
	Makespan float64 // root span duration, seconds

	Compute   float64
	Queue     float64
	Transport float64

	// ComputeByHost attributes the compute segment: "lgv" vs "edge"/"cloud".
	ComputeByHost map[string]float64

	Marks []string // episode names that touched this trace (drops etc.)
}

// Sum returns the total of the three critical-path segments.
func (p TickPath) Sum() float64 { return p.Compute + p.Queue + p.Transport }

// AnalyzeTicks groups spans by trace, keeps the traces rooted in a
// Tick span, and returns their decompositions ordered by start time.
func AnalyzeTicks(sp []Span) []TickPath {
	roots := map[uint64]Span{}
	for _, s := range sp {
		if s.Kind == Tick {
			roots[s.Trace] = s
		}
	}
	paths := map[uint64]*TickPath{}
	for trace, root := range roots {
		paths[trace] = &TickPath{
			Trace: trace, Start: root.Start, End: root.End,
			Makespan:      root.Duration(),
			ComputeByHost: map[string]float64{},
		}
	}
	for _, s := range sp {
		p, ok := paths[s.Trace]
		if !ok || s.Kind == Tick {
			continue
		}
		switch s.Kind {
		case Compute:
			p.Compute += s.Duration()
			p.ComputeByHost[s.Host] += s.Duration()
		case Queue:
			p.Queue += s.Duration()
		case Transport:
			p.Transport += s.Duration()
		case Mark:
			p.Marks = append(p.Marks, s.Name)
		}
	}
	out := make([]TickPath, 0, len(paths))
	for _, p := range paths {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Summary aggregates tick decompositions into the p50/p95 view the
// paper-style tables use. All values are seconds.
type Summary struct {
	Ticks int

	MakespanP50, MakespanP95   float64
	ComputeP50, ComputeP95     float64
	QueueP50, QueueP95         float64
	TransportP50, TransportP95 float64
}

// Summarize computes segment quantiles over the given tick paths.
// Ticks with zero makespan (starved by an uplink drop) are excluded:
// they delivered no command, so they have no critical path.
func Summarize(paths []TickPath) Summary {
	var mk, cp, qu, tr []float64
	for _, p := range paths {
		if p.Makespan <= 0 {
			continue
		}
		mk = append(mk, p.Makespan)
		cp = append(cp, p.Compute)
		qu = append(qu, p.Queue)
		tr = append(tr, p.Transport)
	}
	s := Summary{Ticks: len(mk)}
	s.MakespanP50, s.MakespanP95 = quantile(mk, 0.50), quantile(mk, 0.95)
	s.ComputeP50, s.ComputeP95 = quantile(cp, 0.50), quantile(cp, 0.95)
	s.QueueP50, s.QueueP95 = quantile(qu, 0.50), quantile(qu, 0.95)
	s.TransportP50, s.TransportP95 = quantile(tr, 0.50), quantile(tr, 0.95)
	return s
}

// Window returns the subset of paths whose tick started in [t0, t1).
func Window(paths []TickPath, t0, t1 float64) []TickPath {
	var out []TickPath
	for _, p := range paths {
		if p.Start >= t0 && p.Start < t1 {
			out = append(out, p)
		}
	}
	return out
}

func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	idx := q * float64(len(s)-1)
	lo := int(idx)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// WriteTable prints the per-tick decomposition (milliseconds), sampling
// evenly down to maxRows rows when the mission has more ticks, then a
// quantile summary footer.
func WriteTable(w io.Writer, paths []TickPath, maxRows int) {
	fmt.Fprintf(w, "%-9s %9s %9s %9s %9s %9s  %s\n",
		"t(s)", "makespan", "compute", "queue", "transprt", "sum(ms)", "compute by host")
	stride := 1
	if maxRows > 0 && len(paths) > maxRows {
		stride = (len(paths) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(paths); i += stride {
		p := paths[i]
		hosts := ""
		for _, h := range sortedHosts(p.ComputeByHost) {
			if hosts != "" {
				hosts += " "
			}
			hosts += fmt.Sprintf("%s=%.1f", h, p.ComputeByHost[h]*1e3)
		}
		fmt.Fprintf(w, "%-9.2f %9.2f %9.2f %9.2f %9.2f %9.2f  %s\n",
			p.Start, p.Makespan*1e3, p.Compute*1e3, p.Queue*1e3,
			p.Transport*1e3, p.Sum()*1e3, hosts)
	}
	if stride > 1 {
		fmt.Fprintf(w, "(%d ticks sampled 1-in-%d)\n", len(paths), stride)
	}
	s := Summarize(paths)
	fmt.Fprintf(w, "ticks=%d  p50/p95 (ms): makespan %.2f/%.2f  compute %.2f/%.2f  queue %.2f/%.2f  transport %.2f/%.2f\n",
		s.Ticks, s.MakespanP50*1e3, s.MakespanP95*1e3,
		s.ComputeP50*1e3, s.ComputeP95*1e3,
		s.QueueP50*1e3, s.QueueP95*1e3,
		s.TransportP50*1e3, s.TransportP95*1e3)
}

// OneLine formats a summary as a single compact line (chaos windows).
func (s Summary) OneLine() string {
	return fmt.Sprintf("ticks=%-4d p50 ms compute/queue/transport %.1f/%.1f/%.1f (makespan %.1f)",
		s.Ticks, s.ComputeP50*1e3, s.QueueP50*1e3, s.TransportP50*1e3, s.MakespanP50*1e3)
}

func sortedHosts(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
