package spans

import "testing"

// tickCallPattern issues the same tracer calls one instrumented control
// tick makes (trace + root id, net spans, compute segments, root record)
// so the disabled-path cost is measured against the real call shape.
func tickCallPattern(tr *Tracer) {
	trace := tr.NewTrace()
	root := tr.NextID()
	tr.Add(trace, root, "uplink_queue", "lgv", "net", Queue, 0, 0.002)
	tr.Add(trace, root, "uplink", "edge", "net", Transport, 0.002, 0.010)
	tr.Add(trace, root, "localization", "lgv", "localization", Aux, 0, 0.008)
	tr.Add(trace, root, "costmap_generation", "edge", "costmap_generation", Compute, 0.010, 0.030)
	tr.Add(trace, root, "path_tracking", "edge", "path_tracking", Compute, 0.030, 0.060)
	tr.Add(trace, root, "downlink", "lgv", "net", Transport, 0.060, 0.066)
	tr.Add(trace, root, "velocity_mux", "lgv", "velocity_mux", Compute, 0.066, 0.068)
	tr.Record(Span{Trace: trace, ID: root, Name: "tick", Host: "lgv",
		Kind: Tick, Start: 0, End: 0.068})
}

// TestDisabledZeroAlloc pins the satellite acceptance bar: with tracing
// off (nil tracer) a fully instrumented tick allocates nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() { tickCallPattern(tr) })
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per tick, want 0", allocs)
	}
}

func BenchmarkTickPatternDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tickCallPattern(tr)
	}
}

func BenchmarkTickPatternEnabled(b *testing.B) {
	tr := NewTracer(DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tickCallPattern(tr)
	}
}
