package serve_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lgvoffload/internal/serve"
	"lgvoffload/internal/simtest"
	"lgvoffload/internal/store"
)

// TestSchedulerSoak1000 is the capacity check from the roadmap: a
// thousand missions multiplexed through one daemon on whatever host
// runs the suite, with heap growth bounded (the queue holds spec
// bytes, not worlds; engine state is bounded by MaxRunning; full
// Results by RetainResults) and zero Recorder drops in the shared
// store. Skipped under -short; the full tier-1 run exercises it.
func TestSchedulerSoak1000(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 1000

	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "soak.lgv"))
	if err != nil {
		t.Fatal(err)
	}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s := serve.New(serve.Config{
		Build:         simtest.BuildScenarioMission,
		MaxRunning:    8,
		MaxQueued:     n,
		RetainResults: 16,
		Store:         st,
	})
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.Submit(tinySpec(int64(i)), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	// Heap with the whole backlog admitted but mostly unmaterialized:
	// this is the number that explodes if queued missions hold Recorder
	// channels (~1.4 MiB each — a thousand of them is ~1.4 GiB) instead
	// of spec bytes. The bound is loose because up to MaxRunning engines
	// plus the retained result tail are legitimately live underneath it.
	var queuedStats runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&queuedStats)
	if grew := int64(queuedStats.HeapAlloc) - int64(before.HeapAlloc); grew > 256<<20 {
		t.Errorf("queue of %d specs grew heap by %d MiB, want < 256 MiB", n, grew>>20)
	}

	if err := s.Shutdown(true, 10*time.Minute); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}

	stats := s.Stats()
	if stats.Admitted != n {
		t.Errorf("admitted %d, want %d", stats.Admitted, n)
	}
	if got := stats.Done + stats.Failed + stats.Canceled + stats.Evicted; got != n {
		t.Errorf("terminal missions %d, want %d (%+v)", got, n, stats)
	}
	if stats.Failed != 0 || stats.Canceled != 0 || stats.Evicted != 0 {
		t.Errorf("soak lost missions: %+v", stats)
	}
	for _, id := range ids {
		mst, err := s.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if mst.State != serve.StateDone {
			t.Errorf("mission %s ended %s (%s)", id, mst.State, mst.Reason)
		}
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 64<<20 {
		// 1000 leaked Recorders alone would be ~1.4 GiB of channel
		// buffers; 64 MiB is generous slack for the retained tail.
		t.Errorf("heap grew %d MiB across the soak, want < 64 MiB", grew>>20)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := store.Open(filepath.Join(dir, "soak.lgv"))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	rows := ro.List(store.Filter{})
	if len(rows) != n {
		t.Fatalf("store holds %d missions, want %d", len(rows), n)
	}
	for _, m := range rows {
		if !m.Finished() {
			t.Errorf("mission %s unfinished in store", m.Start.ID)
			continue
		}
		if m.End.Dropped != 0 {
			t.Errorf("mission %s dropped %d records", m.Start.ID, m.End.Dropped)
		}
	}
	fmt.Printf("soak: %d missions, %d slices, heap +%d KiB\n",
		n, stats.Slices, (int64(after.HeapAlloc)-int64(before.HeapAlloc))>>10)
}
