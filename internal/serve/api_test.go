package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lgvoffload/internal/serve"
	"lgvoffload/internal/simtest"
)

// spec returns a minimal valid scenario document: a short navigation
// hop in a tiny empty room, all-local so it needs no link modeling to
// finish fast.
func spec(seed int64) []byte {
	return []byte(fmt.Sprintf(`{
		"mission_seed": %d,
		"workload": "navigation",
		"world": {"kind": "empty", "w": 5, "h": 4, "res": 0.1},
		"start_x": 1, "start_y": 1,
		"goal_x": 1.8, "goal_y": 1.3,
		"deploy": {"mode": "local", "threads": 1},
		"fleet": 1,
		"link": {"profile": "good", "wapx": 1, "wapy": 1},
		"max_sim_time": 20,
		"tracker_samples": 200
	}`, seed))
}

// longSpec returns a mission that stays busy for hundreds of virtual
// seconds (a waypoint zig-zag across the room), so tests can reliably
// observe and cancel a running mission.
func longSpec(seed int64) []byte {
	wps := make([]string, 0, 40)
	for i := 0; i < 20; i++ {
		wps = append(wps, "[4,3]", "[1,1]")
	}
	return []byte(fmt.Sprintf(`{
		"mission_seed": %d,
		"workload": "navigation",
		"world": {"kind": "empty", "w": 5, "h": 4, "res": 0.1},
		"start_x": 1, "start_y": 1,
		"goal_x": 4, "goal_y": 3,
		"waypoints": [%s],
		"deploy": {"mode": "local", "threads": 1},
		"fleet": 1,
		"link": {"profile": "good", "wapx": 1, "wapy": 1},
		"max_sim_time": 100000,
		"tracker_samples": 200
	}`, seed, strings.Join(wps, ",")))
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Scheduler, *httptest.Server) {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = simtest.BuildScenarioMission
	}
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler(nil))
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(false, 60*time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func decodeStatus(t *testing.T, r io.Reader) serve.Status {
	t.Helper()
	var st serve.Status
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func postMission(t *testing.T, ts *httptest.Server, body []byte) (serve.Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/missions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /missions: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /missions: status %d: %s", resp.StatusCode, b)
	}
	return decodeStatus(t, resp.Body), resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (serve.Status, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/missions/" + id)
	if err != nil {
		t.Fatalf("GET /missions/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, resp.StatusCode
	}
	return decodeStatus(t, resp.Body), resp.StatusCode
}

func pollUntil(t *testing.T, ts *httptest.Server, id string, pred func(serve.Status) bool) serve.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, code := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET /missions/%s: status %d", id, code)
		}
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("mission %s: poll deadline exceeded", id)
	return serve.Status{}
}

func terminal(st serve.Status) bool { return st.State.Terminal() }

// TestAPILifecycle covers the happy path of every endpoint: create,
// poll to completion, fetch result, health.
func TestAPILifecycle(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxRunning: 2})

	st, resp := postMission(t, ts, spec(7))
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("POST content-type %q", ct)
	}
	if st.ID == "" || (st.State != serve.StateQueued && st.State != serve.StateRunning) {
		t.Fatalf("created mission: %+v", st)
	}
	if st.Workload != "navigation" || st.Seed != 7 {
		t.Errorf("created status lost metadata: %+v", st)
	}

	end := pollUntil(t, ts, st.ID, terminal)
	if end.State != serve.StateDone {
		t.Fatalf("mission ended %s (%s), want done", end.State, end.Reason)
	}
	if end.Success == nil || !*end.Success {
		t.Errorf("mission did not succeed: %+v", end)
	}
	if end.Summary == nil || !end.Summary.Success || end.Summary.Reason == "" {
		t.Errorf("terminal status missing summary: %+v", end.Summary)
	}
	if end.T <= 0 {
		t.Errorf("terminal status has no virtual time: %+v", end)
	}

	resp2, err := http.Get(ts.URL + "/missions/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", resp2.StatusCode)
	}
	res := decodeStatus(t, resp2.Body)
	if res.Summary == nil || res.Summary.TotalTime <= 0 || res.Summary.TotalEnergy <= 0 {
		t.Errorf("result summary incomplete: %+v", res.Summary)
	}

	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var hs serve.Stats
	if err := json.NewDecoder(resp3.Body).Decode(&hs); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if !hs.Accepting || hs.Admitted != 1 || hs.Done != 1 || hs.MaxRunning != 2 {
		t.Errorf("healthz: %+v", hs)
	}
}

// TestAPIBadSpec covers the 400 contract: non-JSON, unknown fields,
// semantically invalid scenarios, and bad query params never enqueue.
func TestAPIBadSpec(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"not-json", "/missions", "run the thing"},
		{"unknown-field", "/missions", `{"mission_seed":1,"workload":"navigation","bogus":true}`},
		{"bad-workload", "/missions", `{"mission_seed":1,"workload":"teleportation","world":{"kind":"empty","w":4,"h":4},"deploy":{"mode":"local","threads":1},"fleet":1,"link":{"profile":"good","wapx":1,"wapy":1},"max_sim_time":5}`},
		{"trailing-data", "/missions", `{"mission_seed":1,"workload":"navigation","world":{"kind":"empty","w":4,"h":4,"res":0.1},"start_x":1,"start_y":1,"goal_x":2,"goal_y":2,"deploy":{"mode":"local","threads":1},"fleet":1,"link":{"profile":"good","wapx":1,"wapy":1},"max_sim_time":5} {"second":true}`},
		{"bad-deadline", "/missions?deadline_ms=banana", string(spec(1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("400 body not an error document: %v %v", e, err)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs serve.Stats
	json.NewDecoder(resp.Body).Decode(&hs)
	if hs.Admitted != 0 {
		t.Errorf("malformed specs were admitted: %+v", hs)
	}
}

// TestAPIUnknownID covers the 404 contract on every per-mission route.
func TestAPIUnknownID(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for _, tc := range []struct {
		method, path string
	}{
		{http.MethodGet, "/missions/zzz"},
		{http.MethodGet, "/missions/zzz/result"},
		{http.MethodDelete, "/missions/zzz"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestAPICancel covers the cancel contract: canceling a queued mission
// is immediate, canceling a running one lands at the next slice
// boundary, canceling a finished one is 409, and a mission that never
// ran has no result (409).
func TestAPICancel(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxRunning: 1, SliceSteps: 32})

	first, _ := postMission(t, ts, longSpec(1))
	queued, _ := postMission(t, ts, spec(2))
	if queued.State != serve.StateQueued {
		t.Fatalf("second mission not queued with max-running 1: %+v", queued)
	}

	// Cancel the queued mission: immediate, and it never ran.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/missions/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != serve.StateCanceled {
		t.Fatalf("cancel queued: status %d state %s", resp.StatusCode, st.State)
	}
	resp, err = http.Get(ts.URL + "/missions/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of never-ran mission: status %d, want 409", resp.StatusCode)
	}

	// Cancel the running mission.
	pollUntil(t, ts, first.ID, func(st serve.Status) bool { return st.State == serve.StateRunning })
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/missions/"+first.ID+"?reason=operator", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("cancel running: status %d", code)
	}
	end := pollUntil(t, ts, first.ID, terminal)
	if end.State != serve.StateCanceled || end.Reason != "operator" {
		t.Fatalf("canceled mission ended %s (%q)", end.State, end.Reason)
	}
	// A canceled-while-running mission still has a partial result.
	resp, err = http.Get(ts.URL + "/missions/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	partial := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || partial.Summary == nil || partial.Summary.Success {
		t.Fatalf("partial result: status %d %+v", resp.StatusCode, partial.Summary)
	}

	// 409 on cancel-after-finish.
	done, _ := postMission(t, ts, spec(3))
	pollUntil(t, ts, done.ID, terminal)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/missions/"+done.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel finished: status %d, want 409", resp.StatusCode)
	}
}

// TestAPIQueueFullAndMethods covers 503 on a saturated queue and 405 on
// unsupported methods.
func TestAPIQueueFullAndMethods(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxRunning: 1, MaxQueued: 1, SliceSteps: 32})

	postMission(t, ts, longSpec(1)) // occupies the running slot
	postMission(t, ts, spec(2))     // occupies the queue
	resp, err := http.Post(ts.URL+"/missions", "application/json", bytes.NewReader(spec(3)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue full: status %d, want 503", resp.StatusCode)
	}

	for _, tc := range []struct{ method, path string }{
		{http.MethodPut, "/missions/j1"},
		{http.MethodPost, "/missions/j1/result"},
		{http.MethodPost, "/healthz"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestAPIFallthrough: paths the scheduler does not own reach the inner
// handler unchanged, including unknown mission IDs on GET.
func TestAPIFallthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	s := serve.New(serve.Config{Build: simtest.BuildScenarioMission})
	defer s.Shutdown(false, time.Second)
	ts := httptest.NewServer(s.Handler(inner))
	defer ts.Close()

	for _, path := range []string{"/metrics", "/missions", "/missions/m1", "/dash"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTeapot {
			t.Errorf("GET %s: status %d, want fallthrough 418", path, resp.StatusCode)
		}
	}
}

// TestAPIConcurrent hammers create/poll/result from many goroutines —
// the -race contract of the ISSUE.
func TestAPIConcurrent(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxRunning: 4, SliceSteps: 64})

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/missions", "application/json", bytes.NewReader(spec(int64(100+i))))
			if err != nil {
				errs <- err
				return
			}
			var st serve.Status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("create %d: code %d err %v", i, resp.StatusCode, err)
				return
			}
			deadline := time.Now().Add(120 * time.Second)
			for {
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("mission %s: poll timeout", st.ID)
					return
				}
				resp, err := http.Get(ts.URL + "/missions/" + st.ID)
				if err != nil {
					errs <- err
					return
				}
				var cur serve.Status
				err = json.NewDecoder(resp.Body).Decode(&cur)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if cur.State.Terminal() {
					if cur.State != serve.StateDone || cur.Success == nil || !*cur.Success {
						errs <- fmt.Errorf("mission %s ended %s", st.ID, cur.State)
					}
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
