package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxSpecBytes bounds a POST /missions body; scenario specs are small
// JSON documents.
const maxSpecBytes = 1 << 20

// Handler returns the control-plane HTTP API layered in front of next
// (normally the obs inspector mux). Routes owned by the scheduler:
//
//	POST   /missions              admit a mission from a scenario spec
//	                              (201 created, 400 malformed spec,
//	                              503 queue full / shutting down)
//	GET    /missions/{id}         scheduler status for a live or recent
//	                              mission; unknown IDs fall through to
//	                              next (the store-backed view)
//	GET    /missions/{id}/result  finished mission summary (409 while
//	                              unfinished or if it never ran,
//	                              404 unknown)
//	DELETE /missions/{id}         cancel (200/202, 404 unknown,
//	                              409 already finished)
//	GET    /healthz               scheduler stats snapshot
//
// Everything else — including GET /missions listings — is served by
// next; with next nil, unmatched paths 404.
//
// POST accepts an optional ?deadline_ms=N query: the mission is evicted
// (queued) or canceled (running) once that many milliseconds pass.
func (s *Scheduler) Handler(next http.Handler) http.Handler {
	if next == nil {
		next = http.NotFoundHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			if r.Method != http.MethodGet {
				apiError(w, http.StatusMethodNotAllowed, "GET only")
				return
			}
			s.SweepExpired()
			apiJSON(w, http.StatusOK, s.Stats())
		case r.URL.Path == "/missions" && r.Method == http.MethodPost:
			s.handleCreate(w, r)
		case strings.HasPrefix(r.URL.Path, "/missions/"):
			rest := strings.TrimPrefix(r.URL.Path, "/missions/")
			if id, ok := strings.CutSuffix(rest, "/result"); ok && !strings.Contains(id, "/") && id != "" {
				s.handleResult(w, r, id)
				return
			}
			if strings.Contains(rest, "/") || rest == "" {
				next.ServeHTTP(w, r)
				return
			}
			switch r.Method {
			case http.MethodGet:
				st, err := s.Status(rest)
				if errors.Is(err, ErrUnknown) {
					// Not a scheduler mission; maybe a store one ("m<N>").
					next.ServeHTTP(w, r)
					return
				}
				apiJSON(w, http.StatusOK, st)
			case http.MethodDelete:
				s.handleCancel(w, r, rest)
			default:
				apiError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
			}
		default:
			next.ServeHTTP(w, r)
		}
	})
}

func (s *Scheduler) handleCreate(w http.ResponseWriter, r *http.Request) {
	spec, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		apiError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if len(spec) > maxSpecBytes {
		apiError(w, http.StatusRequestEntityTooLarge, "scenario spec too large")
		return
	}
	var deadline time.Time
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			apiError(w, http.StatusBadRequest, "bad deadline_ms")
			return
		}
		deadline = s.now().Add(time.Duration(ms) * time.Millisecond)
	}
	id, err := s.Submit(spec, deadline)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		apiError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, _ := s.Status(id)
	apiJSON(w, http.StatusCreated, st)
}

func (s *Scheduler) handleResult(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st, err := s.Status(id)
	if errors.Is(err, ErrUnknown) {
		apiError(w, http.StatusNotFound, "unknown mission "+id)
		return
	}
	if !st.State.Terminal() {
		apiError(w, http.StatusConflict, "mission "+id+" has not finished")
		return
	}
	if st.Summary == nil {
		apiError(w, http.StatusConflict, "mission "+id+" never ran ("+string(st.State)+")")
		return
	}
	apiJSON(w, http.StatusOK, st)
}

func (s *Scheduler) handleCancel(w http.ResponseWriter, r *http.Request, id string) {
	state, err := s.Cancel(id, r.URL.Query().Get("reason"))
	switch {
	case errors.Is(err, ErrUnknown):
		apiError(w, http.StatusNotFound, "unknown mission "+id)
	case errors.Is(err, ErrFinished):
		apiError(w, http.StatusConflict, "mission "+id+" already finished ("+string(state)+")")
	default:
		code := http.StatusOK
		if state == StateCanceling {
			// Running missions stop at their next slice boundary.
			code = http.StatusAccepted
		}
		apiJSON(w, code, map[string]any{"id": id, "state": state})
	}
}

func apiJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func apiError(w http.ResponseWriter, code int, msg string) {
	apiJSON(w, code, map[string]string{"error": msg})
}
