package serve_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"lgvoffload/internal/obs"
	"lgvoffload/internal/serve"
	"lgvoffload/internal/simtest"
	"lgvoffload/internal/store"
)

// tinySpec is the cheapest reliable mission we have: a 0.4 m hop in a
// 3×3 m room (~3 virtual seconds). The soak test runs 1000 of these.
func tinySpec(seed int64) []byte {
	return []byte(fmt.Sprintf(`{
		"mission_seed": %d,
		"workload": "navigation",
		"world": {"kind": "empty", "w": 3, "h": 3, "res": 0.1},
		"start_x": 1, "start_y": 1,
		"goal_x": 1.4, "goal_y": 1.2,
		"deploy": {"mode": "local", "threads": 1},
		"fleet": 1,
		"link": {"profile": "good", "wapx": 1, "wapy": 1},
		"max_sim_time": 5,
		"tracker_samples": 100
	}`, seed))
}

// TestSchedulerStoreIntegration: missions dispatched by the daemon
// record through per-mission Recorders into one shared log; after a
// draining shutdown the store holds every mission, finished, with ticks
// and no drops, under the scheduler-assigned IDs.
func TestSchedulerStoreIntegration(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "missions.lgv"))
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.NewTelemetry(256)
	live := obs.NewLiveHub(16)
	s := serve.New(serve.Config{
		Build:      simtest.BuildScenarioMission,
		MaxRunning: 2,
		Store:      st,
		Telemetry:  tel,
		Live:       live,
	})

	const n = 5
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := s.Submit(tinySpec(int64(i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Shutdown(true, 120*time.Second); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := store.Open(filepath.Join(dir, "missions.lgv"))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	rows := ro.List(store.Filter{})
	if len(rows) != n {
		t.Fatalf("store holds %d missions, want %d", len(rows), n)
	}
	seen := map[string]bool{}
	for _, m := range rows {
		if !m.Finished() {
			t.Errorf("mission %s not finished in store", m.Start.ID)
			continue
		}
		seen[m.Start.ID] = true
		if m.End.Ticks == 0 {
			t.Errorf("mission %s recorded no ticks", m.Start.ID)
		}
		if m.End.Dropped != 0 {
			t.Errorf("mission %s dropped %d records", m.Start.ID, m.End.Dropped)
		}
		if len(m.Start.Scenario) == 0 {
			t.Errorf("mission %s lost its scenario spec", m.Start.ID)
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("mission %s missing from store (got %v)", id, seen)
		}
	}

	// Scheduler metrics reached the registry.
	counts := map[string]float64{}
	for _, p := range tel.Snapshot() {
		counts[p.Name] += p.Value
	}
	if counts[obs.MServeAdmitted] != n {
		t.Errorf("%s = %g, want %d", obs.MServeAdmitted, counts[obs.MServeAdmitted], n)
	}
	if counts[obs.MServeFinished] != n {
		t.Errorf("%s = %g, want %d", obs.MServeFinished, counts[obs.MServeFinished], n)
	}
}

// TestSchedulerShutdownDrain: a draining shutdown finishes queued-free
// running missions naturally and rejects new admissions.
func TestSchedulerShutdownDrain(t *testing.T) {
	s := serve.New(serve.Config{Build: simtest.BuildScenarioMission, MaxRunning: 3})
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := s.Submit(tinySpec(int64(10+i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Shutdown(true, 120*time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != serve.StateDone {
			t.Errorf("mission %s ended %s (%s), want done after drain", id, st.State, st.Reason)
		}
	}
	if _, err := s.Submit(tinySpec(99), time.Time{}); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("submit after shutdown: %v, want ErrClosed", err)
	}
}

// TestSchedulerShutdownNoDrain: an immediate shutdown cancels running
// missions and evicts queued ones.
func TestSchedulerShutdownNoDrain(t *testing.T) {
	s := serve.New(serve.Config{Build: simtest.BuildScenarioMission, MaxRunning: 1, SliceSteps: 32})
	running, err := s.Submit(longSpec(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(tinySpec(2), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Let the first mission actually start stepping.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _ := s.Status(running)
		if st.State == serve.StateRunning && st.T > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mission %s never started (state %s)", running, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Shutdown(false, 60*time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st, _ := s.Status(running); st.State != serve.StateCanceled || st.Reason != "shutdown" {
		t.Errorf("running mission: %s (%q), want canceled/shutdown", st.State, st.Reason)
	}
	if st, _ := s.Status(queued); st.State != serve.StateEvicted {
		t.Errorf("queued mission: %s, want evicted", st.State)
	}
}

// TestSchedulerDeadlines: a queued mission past its deadline is evicted
// without running; a running mission crossing its deadline is evicted
// at the next slice boundary with a partial result.
func TestSchedulerDeadlines(t *testing.T) {
	s := serve.New(serve.Config{Build: simtest.BuildScenarioMission, MaxRunning: 1, SliceSteps: 32})
	defer s.Shutdown(false, 60*time.Second)

	running, err := s.Submit(longSpec(1), time.Now().Add(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(tinySpec(2), time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if n := s.SweepExpired(); n != 1 {
		t.Errorf("SweepExpired evicted %d, want 1", n)
	}
	if st, _ := s.Status(queued); st.State != serve.StateEvicted {
		t.Errorf("expired queued mission: %s, want evicted", st.State)
	}
	if state, err := s.Wait(running); err != nil || state != serve.StateEvicted {
		t.Errorf("over-deadline running mission: %s (%v), want evicted", state, err)
	}
	if st, _ := s.Status(running); st.Reason != "deadline exceeded" || st.Summary == nil {
		t.Errorf("evicted mission status: %+v", st)
	}
}

// TestSchedulerQueueTimeout: missions stuck in the queue longer than
// QueueTimeout are shed.
func TestSchedulerQueueTimeout(t *testing.T) {
	s := serve.New(serve.Config{
		Build:        simtest.BuildScenarioMission,
		MaxRunning:   1,
		SliceSteps:   32,
		QueueTimeout: 50 * time.Millisecond,
	})
	defer s.Shutdown(false, 60*time.Second)
	if _, err := s.Submit(longSpec(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(tinySpec(2), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	s.SweepExpired()
	st, _ := s.Status(queued)
	if st.State != serve.StateEvicted || st.Reason != "queue timeout" {
		t.Errorf("queue-timeout mission: %s (%q), want evicted/queue timeout", st.State, st.Reason)
	}
}

// TestSchedulerRetention: full Results are bounded by RetainResults;
// evicted ones keep their summary but return ErrGone.
func TestSchedulerRetention(t *testing.T) {
	s := serve.New(serve.Config{Build: simtest.BuildScenarioMission, MaxRunning: 1, RetainResults: 2})
	defer s.Shutdown(false, 60*time.Second)
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		id, err := s.Submit(tinySpec(int64(20+i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Result(ids[0]); !errors.Is(err, serve.ErrGone) {
		t.Errorf("oldest result: %v, want ErrGone", err)
	}
	if st, _ := s.Status(ids[0]); st.Summary == nil {
		t.Error("retention dropped the summary too")
	}
	for _, id := range ids[1:] {
		if _, err := s.Result(id); err != nil {
			t.Errorf("result %s: %v", id, err)
		}
	}
	if _, err := s.Result(ids[1]); err != nil {
		t.Errorf("retained result: %v", err)
	}
}
