// Package serve is the mission control plane: a scheduler that
// multiplexes many concurrent headless missions inside one process,
// plus an HTTP/JSON API (api.go) layered onto the obs inspector.
//
// One mission used to mean one blocking core.Run call. The scheduler
// instead drives core.Mission handles step-by-step: admitted missions
// wait in a bounded FIFO queue, at most MaxRunning are materialized at
// a time, and a small fixed set of executor goroutines advances the
// running set round-robin in slices of SliceSteps physics steps. The
// fairness bound is structural — after a mission's slice it re-enters
// the run ring behind every other running mission, so between two
// consecutive slices of any mission at most MaxRunning-1 other slices
// run (plus executor-interleaving slack). Queued missions admit in
// FIFO order; over-deadline missions (queue timeout or an explicit
// per-mission deadline) are evicted, not run.
//
// Isolation: every mission carries its own seeded rng streams and
// virtual clock (internal/core), records through its own
// store.Recorder batching into the shared mission log, and runs with
// the shared Telemetry detached — the registry carries scheduler-level
// metrics, not per-mission timelines. Kernel work still funnels
// through the shared internal/pool workers, whose positional
// assignment keeps every mission's result byte-identical to a solo
// core.Run of the same config (asserted by the simtest `sched-fair`
// invariant).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lgvoffload/internal/core"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/store"
)

// State is a mission's lifecycle state in the scheduler.
type State string

const (
	// StateQueued: admitted, waiting for a running slot.
	StateQueued State = "queued"
	// StateRunning: materialized and being stepped (or awaiting its next
	// slice). A running mission with a pending cancel reports
	// StateCanceling until an executor honors the flag.
	StateRunning State = "running"
	// StateCanceling: cancel requested, not yet honored by an executor.
	StateCanceling State = "canceling"
	// StateDone: ran to its natural end (see Status.Success for outcome).
	StateDone State = "done"
	// StateCanceled: stopped by an operator cancel (DELETE or shutdown
	// without drain).
	StateCanceled State = "canceled"
	// StateEvicted: removed by the scheduler itself — queue timeout,
	// per-mission deadline, or shutdown while still queued.
	StateEvicted State = "evicted"
	// StateFailed: the spec built but the mission could not start
	// (engine rejected the config, store Begin failed).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCanceled, StateEvicted, StateFailed:
		return true
	}
	return false
}

// Errors the scheduler API returns; the HTTP layer maps them to status
// codes (api.go).
var (
	ErrClosed      = errors.New("serve: scheduler is shutting down")
	ErrQueueFull   = errors.New("serve: admission queue is full")
	ErrUnknown     = errors.New("serve: unknown mission")
	ErrNotFinished = errors.New("serve: mission has not finished")
	ErrFinished    = errors.New("serve: mission already finished")
	ErrGone        = errors.New("serve: result no longer retained")
)

// Builder turns a raw scenario spec (the POST /missions body) into a
// runnable mission config plus its store index row. It must be pure:
// the scheduler calls it once at admission to validate the spec and
// once more at dispatch to materialize it (queued missions hold only
// the spec bytes, not a built world).
type Builder func(spec []byte) (core.MissionConfig, store.MissionStart, error)

// Config configures a Scheduler. The zero value of every field is
// usable; Build is only required when missions are admitted through
// Submit (the HTTP path).
type Config struct {
	// Build parses scenario specs for Submit.
	Build Builder
	// MaxRunning bounds concurrently-materialized missions (default 4).
	MaxRunning int
	// MaxQueued bounds the admission queue (default 1024); a full queue
	// rejects new missions with ErrQueueFull.
	MaxQueued int
	// SliceSteps is how many physics steps one scheduling slice advances
	// a mission before it rotates to the back of the ring (default 256 —
	// 12.8 s of virtual time at the 0.05 s default step).
	SliceSteps int
	// Workers is the executor goroutine count (default 2, clamped to
	// MaxRunning).
	Workers int
	// QueueTimeout evicts missions still queued after this long
	// (0 = never). Eviction is lazy: checked at dispatch and on status
	// sweeps, not by a timer.
	QueueTimeout time.Duration
	// RetainResults bounds finished *core.Result values kept in memory
	// (default 256). Older results drop to their summaries; fetching one
	// returns ErrGone. Status rows are always retained.
	RetainResults int
	// Store, when non-nil, persists every dispatched mission into the
	// shared mission log via a per-mission batching Recorder.
	Store *store.Store
	// Telemetry, when non-nil, receives scheduler metrics
	// (obs.MServe...). Missions themselves run telemetry-detached.
	Telemetry *obs.Telemetry
	// Live, when non-nil, receives mission_start/mission_end lifecycle
	// frames for /live subscribers.
	Live *obs.LiveHub
	// Now overrides the wall clock (tests). Default time.Now.
	Now func() time.Time
}

// mission is one scheduled mission's bookkeeping row.
type mission struct {
	id   string
	spec []byte
	meta store.MissionStart

	cfg    core.MissionConfig
	hasCfg bool // cfg pre-built (SubmitConfig path)

	admitted   time.Time
	deadline   time.Time // zero = none
	admitSeq   uint64
	dispatched time.Time

	// Guarded by Scheduler.mu.
	state        State
	reason       string // cancel/evict/fail detail
	cancelReason string

	// Owned by the executor holding the mission (handed off via runq).
	m   *core.Mission
	rec *store.Recorder

	lastSlice uint64 // global slice seq of this mission's previous slice
	maxGap    uint64 // worst slices-by-others between consecutive slices
	sliced    bool

	cancel atomic.Bool
	virtT  atomic.Uint64 // float64 bits of the mission's virtual time

	res     *core.Result
	summary *store.MissionEnd
	done    chan struct{}
}

func (m *mission) setVirtT(t float64) { m.virtT.Store(math.Float64bits(t)) }
func (m *mission) virtTime() float64  { return math.Float64frombits(m.virtT.Load()) }

// Scheduler multiplexes missions per the package doc. Construct with
// New, stop with Shutdown.
type Scheduler struct {
	cfg Config
	now func() time.Time

	runq chan *mission
	wg   sync.WaitGroup // executors
	swg  sync.WaitGroup // in-flight start() materializations

	mu        sync.Mutex
	idle      *sync.Cond // broadcast when running+starting reaches zero
	queue     []*mission
	missions  map[string]*mission
	order     []string // admission order
	doneOrder []string // finish order, for result retention
	running   int
	starting  int
	nextID    int64
	accepting bool
	closed    bool

	sliceSeq      uint64
	maxGap        uint64
	dispatchOrder []string

	admitted, rejected, evicted, canceled, failed uint64
	doneOK, doneFail                              uint64
}

// New builds and starts a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 4
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 1024
	}
	if cfg.SliceSteps <= 0 {
		cfg.SliceSteps = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Workers > cfg.MaxRunning {
		cfg.Workers = cfg.MaxRunning
	}
	if cfg.RetainResults <= 0 {
		cfg.RetainResults = 256
	}
	s := &Scheduler{
		cfg:       cfg,
		now:       cfg.Now,
		runq:      make(chan *mission, cfg.MaxRunning),
		missions:  make(map[string]*mission),
		nextID:    1,
		accepting: true,
	}
	if s.now == nil {
		s.now = time.Now
	}
	if cfg.Store != nil {
		// Start numbering above whatever the store already holds so a
		// daemon restarted on an existing log never collides with its own
		// earlier "j<N>" mission IDs.
		s.nextID = int64(cfg.Store.Stats().Missions) + 1
	}
	s.idle = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Submit admits a mission from a raw scenario spec. The spec is built
// once immediately — a malformed spec is rejected here (the HTTP 400
// path) and never queued — and again at dispatch, so the queue holds
// bytes, not worlds. Returns the assigned mission ID.
func (s *Scheduler) Submit(spec []byte, deadline time.Time) (string, error) {
	if s.cfg.Build == nil {
		return "", fmt.Errorf("serve: no spec builder configured")
	}
	// Build once now so malformed specs are rejected at admission and the
	// queued mission's status already carries its metadata; the built
	// world is discarded and rebuilt at dispatch so the queue holds only
	// bytes.
	_, meta, err := s.cfg.Build(spec)
	if err != nil {
		return "", fmt.Errorf("serve: bad scenario spec: %w", err)
	}
	m := &mission{spec: append([]byte(nil), spec...), meta: meta, deadline: deadline}
	return s.admit(m)
}

// SubmitConfig admits a pre-built mission config directly (no Builder
// involved — the programmatic path the simtest sched-fair invariant and
// soak tests use). The config is held as-is until dispatch; meta.ID is
// overwritten with the scheduler's mission ID.
func (s *Scheduler) SubmitConfig(cfg core.MissionConfig, meta store.MissionStart) (string, error) {
	m := &mission{cfg: cfg, hasCfg: true, meta: meta}
	return s.admit(m)
}

func (s *Scheduler) admit(m *mission) (string, error) {
	s.mu.Lock()
	if !s.accepting {
		s.rejected++
		s.mu.Unlock()
		s.tel().Count(obs.MServeRejected, "closed", 1)
		return "", ErrClosed
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		s.rejected++
		s.mu.Unlock()
		s.tel().Count(obs.MServeRejected, "full", 1)
		return "", ErrQueueFull
	}
	m.id = fmt.Sprintf("j%d", s.nextID)
	s.nextID++
	m.state = StateQueued
	m.admitted = s.now()
	m.admitSeq = s.admitted
	m.done = make(chan struct{})
	s.admitted++
	s.queue = append(s.queue, m)
	s.missions[m.id] = m
	s.order = append(s.order, m.id)
	s.dispatchLocked()
	queued, running := len(s.queue), s.running+s.starting
	s.mu.Unlock()

	s.tel().Count(obs.MServeAdmitted, "", 1)
	s.gauges(queued, running)
	return m.id, nil
}

// dispatchLocked promotes queued missions into free running slots,
// evicting over-deadline queue entries on the way. Caller holds mu.
func (s *Scheduler) dispatchLocked() {
	for s.running+s.starting < s.cfg.MaxRunning && len(s.queue) > 0 {
		m := s.queue[0]
		s.queue = s.queue[1:]
		if s.queueExpiredLocked(m) {
			s.evictLocked(m, "queue timeout")
			continue
		}
		m.state = StateRunning
		m.dispatched = s.now()
		s.starting++
		s.dispatchOrder = append(s.dispatchOrder, m.id)
		s.swg.Add(1)
		go s.start(m)
	}
}

func (s *Scheduler) queueExpiredLocked(m *mission) bool {
	now := s.now()
	if s.cfg.QueueTimeout > 0 && now.Sub(m.admitted) > s.cfg.QueueTimeout {
		return true
	}
	return !m.deadline.IsZero() && now.After(m.deadline)
}

// evictLocked finalizes a still-queued mission without running it.
func (s *Scheduler) evictLocked(m *mission, why string) {
	m.state = StateEvicted
	m.reason = why
	s.evicted++
	close(m.done)
	s.tel().Count(obs.MServeEvicted, "queue", 1)
	s.publishEnd(m.id, StateEvicted, why, false)
}

// start materializes a dispatched mission: build the config (HTTP
// path), open its store recorder, construct the engine, and hand it to
// the executors. Runs off the scheduler lock — map/world construction
// is real work.
func (s *Scheduler) start(m *mission) {
	defer s.swg.Done()
	cfg, meta := m.cfg, m.meta
	if !m.hasCfg {
		var err error
		cfg, meta, err = s.cfg.Build(m.spec)
		if err != nil {
			s.failMission(m, fmt.Errorf("build: %w", err))
			return
		}
	}
	// Per-mission isolation: the shared telemetry/live hooks stay with
	// the scheduler; each mission's rng/clock are already isolated by
	// core (seeded streams, virtual time).
	cfg.Telemetry = nil
	if s.cfg.Store != nil {
		meta.ID = m.id
		meta.Unix = s.now().Unix()
		rec, err := s.cfg.Store.Begin(meta)
		if err != nil {
			s.failMission(m, fmt.Errorf("store begin: %w", err))
			return
		}
		cfg.Store = rec
		m.rec = rec
	}
	cm, err := core.NewMission(cfg)
	if err != nil {
		if m.rec != nil {
			m.rec.Abandon()
			m.rec = nil
		}
		s.failMission(m, err)
		return
	}
	m.setVirtT(0)

	s.mu.Lock()
	m.cfg, m.meta, m.m = cfg, meta, cm
	s.starting--
	s.running++
	running := s.running + s.starting
	s.mu.Unlock()
	s.tel().Observe(obs.MServeAdmitWaitSeconds, "", m.dispatched.Sub(m.admitted).Seconds())
	s.gauges(-1, running)
	if s.cfg.Live != nil {
		frame, _ := json.Marshal(map[string]any{
			"id": m.id, "label": meta.Label, "seed": meta.Seed, "workload": meta.Workload,
		})
		s.cfg.Live.Publish("mission_start", frame)
	}
	s.runq <- m
}

// failMission finalizes a mission that never got an engine.
func (s *Scheduler) failMission(m *mission, err error) {
	s.mu.Lock()
	m.state = StateFailed
	m.reason = err.Error()
	s.starting--
	s.failed++
	close(m.done)
	reason := m.reason
	s.finishCommonLocked(m)
	s.mu.Unlock()
	s.tel().Count(obs.MServeFinished, "failed", 1)
	s.publishEnd(m.id, StateFailed, reason, false)
}

// executor is one stepping worker: take a mission, advance one slice,
// rotate it to the back of the ring or finalize it.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for m := range s.runq {
		if term, why := s.slice(m); term != "" {
			s.finish(m, term, why)
		} else {
			// Capacity MaxRunning guarantees room: at most running
			// missions exist and this one holds a slot.
			s.runq <- m
		}
	}
}

// slice advances m by up to SliceSteps physics steps. It returns the
// terminal state the mission reached ("" if it is still live); the
// caller commits the transition — slice itself never mutates m.state,
// so status readers never observe a terminal mission whose summary is
// still being written.
func (s *Scheduler) slice(m *mission) (State, string) {
	s.mu.Lock()
	s.sliceSeq++
	seq := s.sliceSeq
	if m.sliced {
		if gap := seq - m.lastSlice - 1; gap > m.maxGap {
			m.maxGap = gap
			if gap > s.maxGap {
				s.maxGap = gap
			}
		}
	}
	m.sliced = true
	m.lastSlice = seq
	s.mu.Unlock()

	if m.cancel.Load() {
		s.mu.Lock()
		why := m.cancelReason
		s.mu.Unlock()
		if why == "" {
			why = "canceled"
		}
		m.m.Cancel(why)
		m.res = m.m.Result()
		return StateCanceled, why
	}
	if !m.deadline.IsZero() && s.now().After(m.deadline) {
		m.m.Cancel("deadline exceeded")
		m.res = m.m.Result()
		s.tel().Count(obs.MServeEvicted, "deadline", 1)
		return StateEvicted, "deadline exceeded"
	}
	for i := 0; i < s.cfg.SliceSteps; i++ {
		if m.m.Step() {
			m.res = m.m.Result()
			m.setVirtT(m.m.Time())
			return StateDone, ""
		}
	}
	m.setVirtT(m.m.Time())
	return "", ""
}

// finish commits a terminal mission: flush its recorder, then — under
// one lock — set the final state and summary, retire the result into
// the retention window, free the running slot, and pull the next queued
// mission in.
func (s *Scheduler) finish(m *mission, state State, why string) {
	sum := core.StoreSummary(m.res)
	var recErr error
	if m.rec != nil {
		// Recorder.Finish drains the batching queue and stamps
		// bookkeeping (tick counts, VDP quantiles, drops) into the log.
		recErr = m.rec.Finish(sum)
	}

	s.mu.Lock()
	m.state = state
	if why != "" {
		m.reason = why
	}
	if recErr != nil && m.reason == "" {
		m.reason = "store finish: " + recErr.Error()
	}
	m.summary = &sum
	s.running--
	switch state {
	case StateDone:
		if m.res.Success {
			s.doneOK++
		} else {
			s.doneFail++
		}
	case StateCanceled:
		s.canceled++
	case StateEvicted:
		s.evicted++
	}
	close(m.done)
	reason := m.reason
	s.finishCommonLocked(m)
	s.dispatchLocked()
	queued, running := len(s.queue), s.running+s.starting
	s.mu.Unlock()

	switch state {
	case StateDone:
		outcome := "failure"
		if m.res.Success {
			outcome = "success"
		}
		s.tel().Count(obs.MServeFinished, outcome, 1)
	case StateCanceled:
		s.tel().Count(obs.MServeFinished, "canceled", 1)
	case StateEvicted:
		s.tel().Count(obs.MServeFinished, "evicted", 1)
	}
	s.gauges(queued, running)
	s.publishEnd(m.id, state, reason, sum.Success)
}

// finishCommonLocked applies result retention and wakes Shutdown when
// the running set drains. Caller holds mu.
func (s *Scheduler) finishCommonLocked(m *mission) {
	s.doneOrder = append(s.doneOrder, m.id)
	// Retention: drop the oldest full Results beyond the cap; summaries
	// and status rows stay, so memory is bounded by the engine states of
	// MaxRunning missions + RetainResults result structs.
	for over := len(s.doneOrder) - s.cfg.RetainResults; over > 0; over-- {
		old := s.missions[s.doneOrder[0]]
		s.doneOrder = s.doneOrder[1:]
		if old != nil {
			old.res = nil
		}
	}
	if s.running+s.starting == 0 {
		s.idle.Broadcast()
	}
}

// publishEnd broadcasts a lifecycle frame. It takes values rather than
// reading the mission row so callers may hold (or not hold) s.mu —
// LiveHub has its own locking and never calls back into the scheduler.
func (s *Scheduler) publishEnd(id string, state State, reason string, success bool) {
	if s.cfg.Live == nil {
		return
	}
	frame, _ := json.Marshal(map[string]any{
		"id": id, "state": state, "reason": reason, "success": success,
	})
	s.cfg.Live.Publish("mission_end", frame)
}

// Cancel requests cancellation. A queued mission cancels immediately; a
// running one is flagged and stops at its next slice boundary
// (StateCanceling until then). Canceling a finished mission returns
// ErrFinished, an unknown ID ErrUnknown.
func (s *Scheduler) Cancel(id, reason string) (State, error) {
	s.mu.Lock()
	m, ok := s.missions[id]
	if !ok {
		s.mu.Unlock()
		return "", ErrUnknown
	}
	if m.state.Terminal() {
		st := m.state
		s.mu.Unlock()
		return st, ErrFinished
	}
	if m.state == StateQueued {
		for i, qm := range s.queue {
			if qm == m {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		m.state = StateCanceled
		m.reason = reason
		if m.reason == "" {
			m.reason = "canceled"
		}
		s.canceled++
		close(m.done)
		why := m.reason
		s.finishCommonLocked(m)
		s.mu.Unlock()
		s.tel().Count(obs.MServeFinished, "canceled", 1)
		s.publishEnd(m.id, StateCanceled, why, false)
		return StateCanceled, nil
	}
	m.cancelReason = reason
	m.cancel.Store(true)
	s.mu.Unlock()
	return StateCanceling, nil
}

// Status is one mission's externally-visible state.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`

	Label    string `json:"label,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Workload string `json:"workload,omitempty"`

	QueuePos     int     `json:"queue_pos,omitempty"` // 1-based while queued
	T            float64 `json:"t"`                   // virtual seconds advanced
	MaxSimTime   float64 `json:"max_sim_time,omitempty"`
	AdmittedUnix int64   `json:"admitted_unix,omitempty"`

	Success *bool             `json:"success,omitempty"` // set once done
	Summary *store.MissionEnd `json:"summary,omitempty"`
	MaxGap  uint64            `json:"max_slice_gap,omitempty"`
}

// Status returns a mission's current status.
func (s *Scheduler) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.missions[id]
	if !ok {
		return Status{}, ErrUnknown
	}
	return s.statusLocked(m), nil
}

func (s *Scheduler) statusLocked(m *mission) Status {
	st := Status{
		ID: m.id, State: m.state, Reason: m.reason,
		Label: m.meta.Label, Seed: m.meta.Seed, Workload: m.meta.Workload,
		MaxSimTime:   m.meta.MaxSimTime,
		AdmittedUnix: m.admitted.Unix(),
		MaxGap:       m.maxGap,
	}
	if m.state == StateRunning && m.cancel.Load() {
		st.State = StateCanceling
	}
	if m.state == StateQueued {
		for i, qm := range s.queue {
			if qm == m {
				st.QueuePos = i + 1
				break
			}
		}
	} else {
		st.T = m.virtTime()
	}
	if m.state == StateDone && m.res != nil {
		ok := m.res.Success
		st.Success = &ok
	}
	if m.state.Terminal() {
		st.Summary = m.summary
	}
	return st
}

// Statuses lists every known mission in admission order.
func (s *Scheduler) Statuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.missions[id]))
	}
	return out
}

// Result returns a finished mission's full engine result. ErrNotFinished
// while the mission is live, ErrGone if retention dropped it or it never
// ran (evicted/canceled in queue, failed).
func (s *Scheduler) Result(id string) (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.missions[id]
	if !ok {
		return nil, ErrUnknown
	}
	if !m.state.Terminal() {
		return nil, ErrNotFinished
	}
	if m.res == nil {
		return nil, ErrGone
	}
	return m.res, nil
}

// Wait blocks until the mission reaches a terminal state and returns it.
func (s *Scheduler) Wait(id string) (State, error) {
	s.mu.Lock()
	m, ok := s.missions[id]
	s.mu.Unlock()
	if !ok {
		return "", ErrUnknown
	}
	<-m.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.state, nil
}

// SweepExpired lazily evicts queued missions past their deadline (the
// dispatch path does this too; health/status handlers call it so a
// stalled queue still sheds). Returns how many were evicted.
func (s *Scheduler) SweepExpired() int {
	s.mu.Lock()
	kept := s.queue[:0]
	var evicted []*mission
	for _, m := range s.queue {
		if s.queueExpiredLocked(m) {
			evicted = append(evicted, m)
		} else {
			kept = append(kept, m)
		}
	}
	s.queue = kept
	for _, m := range evicted {
		s.evictLocked(m, "queue timeout")
	}
	n := len(evicted)
	queued, running := len(s.queue), s.running+s.starting
	s.mu.Unlock()
	if n > 0 {
		s.gauges(queued, running)
	}
	return n
}

// Stats is the scheduler-level health snapshot (also /healthz's body).
type Stats struct {
	Accepting bool `json:"accepting"`
	Queued    int  `json:"queued"`
	Running   int  `json:"running"`
	// Starting counts dispatched missions still materializing (building
	// worlds, opening recorders); they hold running slots.
	Starting int `json:"starting,omitempty"`

	Admitted uint64 `json:"admitted"`
	Rejected uint64 `json:"rejected"`
	Done     uint64 `json:"done"`
	Failed   uint64 `json:"failed_missions,omitempty"`
	Canceled uint64 `json:"canceled,omitempty"`
	Evicted  uint64 `json:"evicted,omitempty"`

	MaxRunning int `json:"max_running"`
	MaxQueued  int `json:"max_queued"`

	// Slices and MaxSliceGap expose the round-robin fairness bound: the
	// worst observed number of other-mission slices between two
	// consecutive slices of any one mission.
	Slices      uint64 `json:"slices"`
	MaxSliceGap uint64 `json:"max_slice_gap"`
}

// Stats returns the scheduler snapshot.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Accepting:   s.accepting,
		Queued:      len(s.queue),
		Running:     s.running,
		Starting:    s.starting,
		Admitted:    s.admitted,
		Rejected:    s.rejected,
		Done:        s.doneOK + s.doneFail,
		Failed:      s.failed,
		Canceled:    s.canceled,
		Evicted:     s.evicted,
		MaxRunning:  s.cfg.MaxRunning,
		MaxQueued:   s.cfg.MaxQueued,
		Slices:      s.sliceSeq,
		MaxSliceGap: s.maxGap,
	}
}

// DispatchOrder returns mission IDs in the order they left the queue
// (the sched-fair invariant asserts it matches admission order).
func (s *Scheduler) DispatchOrder() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.dispatchOrder...)
}

// Shutdown stops the scheduler gracefully: new admissions are rejected,
// queued missions are evicted, and — when drain is true — running
// missions finish naturally (bounded by timeout, then force-canceled).
// With drain false running missions are canceled immediately. The store
// is flushed before returning. Idempotent.
func (s *Scheduler) Shutdown(drain bool, timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.accepting = false
	if !drain {
		// Immediate stop: shed the queue and flag every running mission.
		// A drain instead lets the queue keep dispatching until empty.
		for _, m := range s.queue {
			s.evictLocked(m, "shutdown")
		}
		s.queue = nil
		s.cancelRunningLocked("shutdown")
	}
	s.mu.Unlock()

	timedOut := !s.waitIdle(timeout)
	if timedOut {
		// Drain took too long: shed what never started, force-cancel the
		// rest, and give the executors a moment to honor the flags (a
		// slice boundary is never far).
		s.mu.Lock()
		for _, m := range s.queue {
			s.evictLocked(m, "shutdown timeout")
		}
		s.queue = nil
		s.cancelRunningLocked("shutdown timeout")
		s.mu.Unlock()
		s.waitIdle(5 * time.Second)
	}
	s.swg.Wait()
	close(s.runq)
	s.wg.Wait()

	if s.cfg.Store != nil {
		if err := s.cfg.Store.Sync(); err != nil {
			return err
		}
	}
	if timedOut {
		return fmt.Errorf("serve: shutdown drain exceeded %s", timeout)
	}
	return nil
}

// CancelAll evicts every queued mission and flags every running one
// for cancellation. Its main use is aborting an in-progress draining
// Shutdown (which is idempotent, so a second Shutdown call can't).
func (s *Scheduler) CancelAll(reason string) {
	s.mu.Lock()
	for _, m := range s.queue {
		s.evictLocked(m, reason)
	}
	s.queue = nil
	s.cancelRunningLocked(reason)
	s.mu.Unlock()
}

func (s *Scheduler) cancelRunningLocked(reason string) {
	for _, m := range s.missions {
		if m.state == StateRunning {
			m.cancelReason = reason
			m.cancel.Store(true)
		}
	}
}

// waitIdle blocks until the queue is empty and no mission is running
// or starting, or the timeout passes. Returns true when idle.
func (s *Scheduler) waitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
	})
	defer wake.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 || s.running+s.starting > 0 {
		if time.Now().After(deadline) {
			return false
		}
		s.idle.Wait()
	}
	return true
}

func (s *Scheduler) tel() *obs.Telemetry { return s.cfg.Telemetry }

// gauges updates the queued/running gauges; pass queued < 0 to leave
// the queued gauge untouched.
func (s *Scheduler) gauges(queued, running int) {
	if queued >= 0 {
		s.tel().SetGauge(obs.MServeQueued, "", float64(queued))
	}
	s.tel().SetGauge(obs.MServeRunning, "", float64(running))
}
