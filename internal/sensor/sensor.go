// Package sensor simulates the Turtlebot3's perception hardware: the
// LDS-01 360° laser distance sensor (by ray casting against the ground
// truth map with Gaussian range noise) and wheel odometry with drift.
//
// These are the inputs the PERCEPTION stage consumes; simulating them
// against the world substitutes for the physical sensors the paper uses,
// while exercising the identical downstream code paths (SLAM, AMCL,
// costmap marking/clearing).
package sensor

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// Scan is one complete laser sweep. Ranges[i] is the measured distance at
// bearing AngleMin + i*AngleInc in the robot frame; measurements at
// MaxRange (within epsilon) are max-range misses.
type Scan struct {
	AngleMin float64
	AngleInc float64
	MaxRange float64
	Ranges   []float64
	Stamp    float64 // simulation time the scan was taken
}

// NumBeams returns the number of beams in the scan.
func (s *Scan) NumBeams() int { return len(s.Ranges) }

// Bearing returns the robot-frame bearing of beam i.
func (s *Scan) Bearing(i int) float64 { return s.AngleMin + float64(i)*s.AngleInc }

// IsHit reports whether beam i hit an obstacle (vs a max-range miss).
func (s *Scan) IsHit(i int) bool { return s.Ranges[i] < s.MaxRange-1e-6 }

// Endpoint returns the world-frame endpoint of beam i assuming the scan
// was taken from pose p.
func (s *Scan) Endpoint(p geom.Pose, i int) geom.Vec2 {
	return p.Apply(geom.V(s.Ranges[i], 0).Rotate(s.Bearing(i)))
}

// Clone returns a deep copy of the scan.
func (s *Scan) Clone() *Scan {
	c := *s
	c.Ranges = make([]float64, len(s.Ranges))
	copy(c.Ranges, s.Ranges)
	return &c
}

// Table caches per-scan trigonometry for the scan-consuming kernels
// (SLAM scan matching/integration, AMCL's likelihood field). The
// bearing unit vectors depend only on the scan geometry (AngleMin,
// AngleInc, beam count) and survive across scans from the same laser;
// the robot-frame endpoints and hit flags are refilled per scan. With a
// filled table, a world-frame beam endpoint is two FMAs against the
// pose's cached heading sin/cos instead of a math.Sincos per beam per
// candidate pose — the arithmetic that used to dominate hill-climbing
// scan matching.
//
// A Table is plain scratch: fill it serially once per tick, then read
// it freely from parallel workers.
type Table struct {
	angleMin, angleInc float64
	nGeom              int

	Sin, Cos []float64 // unit bearing vectors, robot frame
	LX, LY   []float64 // beam endpoints in the robot frame (r_i · unit_i)
	Hit      []bool    // IsHit per beam
	n        int
}

// N returns the number of beams in the filled table.
func (t *Table) N() int { return t.n }

// Fill (re)builds the table for one scan, reusing prior capacity so the
// steady state allocates nothing. Bearing trig is recomputed only when
// the scan geometry changes.
func (t *Table) Fill(s *Scan) {
	n := s.NumBeams()
	if t.nGeom != n || t.angleMin != s.AngleMin || t.angleInc != s.AngleInc {
		t.angleMin, t.angleInc, t.nGeom = s.AngleMin, s.AngleInc, n
		t.Sin = growFloats(t.Sin, n)
		t.Cos = growFloats(t.Cos, n)
		for i := 0; i < n; i++ {
			t.Sin[i], t.Cos[i] = math.Sincos(s.Bearing(i))
		}
	}
	t.LX = growFloats(t.LX, n)
	t.LY = growFloats(t.LY, n)
	if cap(t.Hit) < n {
		t.Hit = make([]bool, n)
	}
	t.Hit = t.Hit[:n]
	t.n = n
	hitBelow := s.MaxRange - 1e-6
	for i, r := range s.Ranges {
		t.LX[i] = r * t.Cos[i]
		t.LY[i] = r * t.Sin[i]
		t.Hit[i] = r < hitBelow
	}
}

// Endpoint returns the world-frame endpoint of beam i for a pose at pos
// whose heading sine/cosine the caller has already computed — the same
// rigid transform as Pose.Apply, with the trig hoisted out of the loop.
func (t *Table) Endpoint(pos geom.Vec2, sinT, cosT float64, i int) geom.Vec2 {
	return geom.Vec2{
		X: pos.X + (cosT*t.LX[i] - sinT*t.LY[i]),
		Y: pos.Y + (sinT*t.LX[i] + cosT*t.LY[i]),
	}
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Laser models the LDS-01: 360 beams over a full circle, 3.5 m range,
// with additive Gaussian range noise and optional fault injection.
type Laser struct {
	NumBeams int
	MaxRange float64
	Noise    float64 // range noise standard deviation, m

	// Fault injection for robustness experiments:
	// DropoutProb is the chance a beam returns no echo (max-range miss);
	// OutlierProb is the chance a beam returns a uniformly random range
	// (specular reflections, glass, crosstalk).
	DropoutProb float64
	OutlierProb float64

	rng *rand.Rand
}

// NewLDS01 returns the Turtlebot3's laser with the given noise level and
// deterministic randomness.
func NewLDS01(noise float64, rng *rand.Rand) *Laser {
	return &Laser{NumBeams: 360, MaxRange: 3.5, Noise: noise, rng: rng}
}

// NewLaser returns a custom laser, mainly for tests and benchmarks that
// need fewer beams.
func NewLaser(beams int, maxRange, noise float64, rng *rand.Rand) *Laser {
	return &Laser{NumBeams: beams, MaxRange: maxRange, Noise: noise, rng: rng}
}

// Sense produces a scan from the given true pose against the ground truth
// map at the given timestamp.
func (l *Laser) Sense(m *grid.Map, pose geom.Pose, stamp float64) *Scan {
	s := &Scan{
		AngleMin: -math.Pi,
		AngleInc: 2 * math.Pi / float64(l.NumBeams),
		MaxRange: l.MaxRange,
		Ranges:   make([]float64, l.NumBeams),
		Stamp:    stamp,
	}
	for i := 0; i < l.NumBeams; i++ {
		theta := pose.Theta + s.AngleMin + float64(i)*s.AngleInc
		d, hit := m.Raycast(pose.Pos, theta, l.MaxRange)
		if hit && l.Noise > 0 {
			d += l.rng.NormFloat64() * l.Noise
			d = geom.Clamp(d, 0, l.MaxRange)
		}
		if !hit {
			d = l.MaxRange
		}
		// Fault injection (order matters: an outlier overrides dropout so
		// both probabilities stay independent).
		if l.DropoutProb > 0 && l.rng.Float64() < l.DropoutProb {
			d = l.MaxRange
		}
		if l.OutlierProb > 0 && l.rng.Float64() < l.OutlierProb {
			d = l.rng.Float64() * l.MaxRange
		}
		s.Ranges[i] = d
	}
	return s
}

// Odometer models wheel odometry: it reports pose deltas corrupted with
// multiplicative drift and additive Gaussian noise, following the standard
// alpha-parameterized odometry motion model (Thrun et al., Probabilistic
// Robotics §5.4).
type Odometer struct {
	// Alpha1..4 are the standard noise coefficients:
	// rotation noise from rotation (1), rotation from translation (2),
	// translation from translation (3), translation from rotation (4).
	Alpha1, Alpha2, Alpha3, Alpha4 float64
	rng                            *rand.Rand

	last    geom.Pose // last true pose observed
	started bool
	est     geom.Pose // accumulated noisy odometry estimate
}

// NewOdometer returns an odometer with typical small-robot drift
// parameters.
func NewOdometer(rng *rand.Rand) *Odometer {
	return &Odometer{Alpha1: 0.05, Alpha2: 0.02, Alpha3: 0.05, Alpha4: 0.01, rng: rng}
}

// Update feeds the odometer the new true pose and returns the current
// noisy odometry estimate (in the odometry frame, which starts at the
// first observed pose).
func (o *Odometer) Update(truth geom.Pose) geom.Pose {
	if !o.started {
		o.last = truth
		o.started = true
		return o.est
	}
	d := o.last.Delta(truth)
	o.last = truth

	trans := d.Pos.Norm()
	var rot1 float64
	if trans > 1e-6 {
		rot1 = geom.AngleDiff(d.Pos.Angle(), 0)
	}
	rot2 := geom.AngleDiff(d.Theta, rot1)

	nRot1 := rot1 + o.noise(o.Alpha1*math.Abs(rot1)+o.Alpha2*trans)
	nTrans := trans + o.noise(o.Alpha3*trans+o.Alpha4*(math.Abs(rot1)+math.Abs(rot2)))
	nRot2 := rot2 + o.noise(o.Alpha1*math.Abs(rot2)+o.Alpha2*trans)

	step := geom.Pose{
		Pos:   geom.V(nTrans, 0).Rotate(nRot1),
		Theta: geom.NormalizeAngle(nRot1 + nRot2),
	}
	o.est = o.est.Compose(step)
	return o.est
}

// Estimate returns the current odometry estimate without feeding a new
// ground truth pose.
func (o *Odometer) Estimate() geom.Pose { return o.est }

func (o *Odometer) noise(stddev float64) float64 {
	if stddev <= 0 {
		return 0
	}
	return o.rng.NormFloat64() * stddev
}
