// Package sensor simulates the Turtlebot3's perception hardware: the
// LDS-01 360° laser distance sensor (by ray casting against the ground
// truth map with Gaussian range noise) and wheel odometry with drift.
//
// These are the inputs the PERCEPTION stage consumes; simulating them
// against the world substitutes for the physical sensors the paper uses,
// while exercising the identical downstream code paths (SLAM, AMCL,
// costmap marking/clearing).
package sensor

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
)

// Scan is one complete laser sweep. Ranges[i] is the measured distance at
// bearing AngleMin + i*AngleInc in the robot frame; measurements at
// MaxRange (within epsilon) are max-range misses.
type Scan struct {
	AngleMin float64
	AngleInc float64
	MaxRange float64
	Ranges   []float64
	Stamp    float64 // simulation time the scan was taken
}

// NumBeams returns the number of beams in the scan.
func (s *Scan) NumBeams() int { return len(s.Ranges) }

// Bearing returns the robot-frame bearing of beam i.
func (s *Scan) Bearing(i int) float64 { return s.AngleMin + float64(i)*s.AngleInc }

// IsHit reports whether beam i hit an obstacle (vs a max-range miss).
func (s *Scan) IsHit(i int) bool { return s.Ranges[i] < s.MaxRange-1e-6 }

// Endpoint returns the world-frame endpoint of beam i assuming the scan
// was taken from pose p.
func (s *Scan) Endpoint(p geom.Pose, i int) geom.Vec2 {
	return p.Apply(geom.V(s.Ranges[i], 0).Rotate(s.Bearing(i)))
}

// Clone returns a deep copy of the scan.
func (s *Scan) Clone() *Scan {
	c := *s
	c.Ranges = make([]float64, len(s.Ranges))
	copy(c.Ranges, s.Ranges)
	return &c
}

// Laser models the LDS-01: 360 beams over a full circle, 3.5 m range,
// with additive Gaussian range noise and optional fault injection.
type Laser struct {
	NumBeams int
	MaxRange float64
	Noise    float64 // range noise standard deviation, m

	// Fault injection for robustness experiments:
	// DropoutProb is the chance a beam returns no echo (max-range miss);
	// OutlierProb is the chance a beam returns a uniformly random range
	// (specular reflections, glass, crosstalk).
	DropoutProb float64
	OutlierProb float64

	rng *rand.Rand
}

// NewLDS01 returns the Turtlebot3's laser with the given noise level and
// deterministic randomness.
func NewLDS01(noise float64, rng *rand.Rand) *Laser {
	return &Laser{NumBeams: 360, MaxRange: 3.5, Noise: noise, rng: rng}
}

// NewLaser returns a custom laser, mainly for tests and benchmarks that
// need fewer beams.
func NewLaser(beams int, maxRange, noise float64, rng *rand.Rand) *Laser {
	return &Laser{NumBeams: beams, MaxRange: maxRange, Noise: noise, rng: rng}
}

// Sense produces a scan from the given true pose against the ground truth
// map at the given timestamp.
func (l *Laser) Sense(m *grid.Map, pose geom.Pose, stamp float64) *Scan {
	s := &Scan{
		AngleMin: -math.Pi,
		AngleInc: 2 * math.Pi / float64(l.NumBeams),
		MaxRange: l.MaxRange,
		Ranges:   make([]float64, l.NumBeams),
		Stamp:    stamp,
	}
	for i := 0; i < l.NumBeams; i++ {
		theta := pose.Theta + s.AngleMin + float64(i)*s.AngleInc
		d, hit := m.Raycast(pose.Pos, theta, l.MaxRange)
		if hit && l.Noise > 0 {
			d += l.rng.NormFloat64() * l.Noise
			d = geom.Clamp(d, 0, l.MaxRange)
		}
		if !hit {
			d = l.MaxRange
		}
		// Fault injection (order matters: an outlier overrides dropout so
		// both probabilities stay independent).
		if l.DropoutProb > 0 && l.rng.Float64() < l.DropoutProb {
			d = l.MaxRange
		}
		if l.OutlierProb > 0 && l.rng.Float64() < l.OutlierProb {
			d = l.rng.Float64() * l.MaxRange
		}
		s.Ranges[i] = d
	}
	return s
}

// Odometer models wheel odometry: it reports pose deltas corrupted with
// multiplicative drift and additive Gaussian noise, following the standard
// alpha-parameterized odometry motion model (Thrun et al., Probabilistic
// Robotics §5.4).
type Odometer struct {
	// Alpha1..4 are the standard noise coefficients:
	// rotation noise from rotation (1), rotation from translation (2),
	// translation from translation (3), translation from rotation (4).
	Alpha1, Alpha2, Alpha3, Alpha4 float64
	rng                            *rand.Rand

	last    geom.Pose // last true pose observed
	started bool
	est     geom.Pose // accumulated noisy odometry estimate
}

// NewOdometer returns an odometer with typical small-robot drift
// parameters.
func NewOdometer(rng *rand.Rand) *Odometer {
	return &Odometer{Alpha1: 0.05, Alpha2: 0.02, Alpha3: 0.05, Alpha4: 0.01, rng: rng}
}

// Update feeds the odometer the new true pose and returns the current
// noisy odometry estimate (in the odometry frame, which starts at the
// first observed pose).
func (o *Odometer) Update(truth geom.Pose) geom.Pose {
	if !o.started {
		o.last = truth
		o.started = true
		return o.est
	}
	d := o.last.Delta(truth)
	o.last = truth

	trans := d.Pos.Norm()
	var rot1 float64
	if trans > 1e-6 {
		rot1 = geom.AngleDiff(d.Pos.Angle(), 0)
	}
	rot2 := geom.AngleDiff(d.Theta, rot1)

	nRot1 := rot1 + o.noise(o.Alpha1*math.Abs(rot1)+o.Alpha2*trans)
	nTrans := trans + o.noise(o.Alpha3*trans+o.Alpha4*(math.Abs(rot1)+math.Abs(rot2)))
	nRot2 := rot2 + o.noise(o.Alpha1*math.Abs(rot2)+o.Alpha2*trans)

	step := geom.Pose{
		Pos:   geom.V(nTrans, 0).Rotate(nRot1),
		Theta: geom.NormalizeAngle(nRot1 + nRot2),
	}
	o.est = o.est.Compose(step)
	return o.est
}

// Estimate returns the current odometry estimate without feeding a new
// ground truth pose.
func (o *Odometer) Estimate() geom.Pose { return o.est }

func (o *Odometer) noise(stddev float64) float64 {
	if stddev <= 0 {
		return 0
	}
	return o.rng.NormFloat64() * stddev
}
