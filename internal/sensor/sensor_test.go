package sensor

import (
	"math"
	"math/rand"
	"testing"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/world"
)

func room() *grid.Map { return world.EmptyRoomMap(4, 4, 0.05) }

func TestNoiselessScanGeometry(t *testing.T) {
	m := room()
	l := NewLaser(4, 5.0, 0, rand.New(rand.NewSource(1)))
	// Robot at the center looking +x. Beams at -π, -π/2, 0, π/2.
	s := l.Sense(m, geom.P(2, 2, 0), 1.5)
	if s.Stamp != 1.5 {
		t.Errorf("stamp = %v", s.Stamp)
	}
	if s.NumBeams() != 4 {
		t.Fatalf("beams = %d", s.NumBeams())
	}
	// Walls are ~2 m away in all four cardinal directions (cell centers at
	// 0.025 / 3.975, so ≈1.95-2.0).
	for i, r := range s.Ranges {
		if math.Abs(r-2.0) > 0.08 {
			t.Errorf("beam %d range = %v, want ≈ 1.97", i, r)
		}
	}
}

func TestScanBearings(t *testing.T) {
	l := NewLaser(360, 3.5, 0, rand.New(rand.NewSource(1)))
	s := l.Sense(room(), geom.P(2, 2, 0), 0)
	if s.Bearing(0) != -math.Pi {
		t.Errorf("bearing 0 = %v", s.Bearing(0))
	}
	if math.Abs(s.Bearing(180)-0) > 1e-9 {
		t.Errorf("bearing 180 = %v", s.Bearing(180))
	}
}

func TestMaxRangeMiss(t *testing.T) {
	m := world.EmptyRoomMap(20, 20, 0.1)
	l := NewLaser(8, 2.0, 0.05, rand.New(rand.NewSource(1)))
	s := l.Sense(m, geom.P(10, 10, 0), 0)
	for i := range s.Ranges {
		if s.IsHit(i) {
			t.Errorf("beam %d should be a max-range miss, r=%v", i, s.Ranges[i])
		}
		if s.Ranges[i] != 2.0 {
			t.Errorf("miss range must be exactly MaxRange, got %v", s.Ranges[i])
		}
	}
}

func TestEndpointTransform(t *testing.T) {
	s := &Scan{AngleMin: 0, AngleInc: math.Pi / 2, MaxRange: 5, Ranges: []float64{1, 2}}
	p := geom.P(1, 1, math.Pi/2)
	// Beam 0: bearing 0, robot facing +y => endpoint (1, 2).
	e := s.Endpoint(p, 0)
	if e.Dist(geom.V(1, 2)) > 1e-9 {
		t.Errorf("endpoint 0 = %v", e)
	}
	// Beam 1: bearing π/2 (robot-left), robot facing +y => world -x dir => (-1, 1).
	e = s.Endpoint(p, 1)
	if e.Dist(geom.V(-1, 1)) > 1e-9 {
		t.Errorf("endpoint 1 = %v", e)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	m := room()
	s1 := NewLDS01(0.02, rand.New(rand.NewSource(5))).Sense(m, geom.P(2, 2, 0.3), 0)
	s2 := NewLDS01(0.02, rand.New(rand.NewSource(5))).Sense(m, geom.P(2, 2, 0.3), 0)
	for i := range s1.Ranges {
		if s1.Ranges[i] != s2.Ranges[i] {
			t.Fatal("same seed produced different scans")
		}
	}
}

func TestNoiseStatistics(t *testing.T) {
	m := room()
	l := NewLaser(1, 5.0, 0.05, rand.New(rand.NewSource(9)))
	// Single beam at bearing -π from (2,2) looking +x... AngleMin=-π, so
	// beam 0 points backwards; use heading π to aim it at the +x wall.
	var sum, sumSq float64
	const n = 2000
	for i := 0; i < n; i++ {
		s := l.Sense(m, geom.P(2, 2, math.Pi), 0)
		sum += s.Ranges[0]
		sumSq += s.Ranges[0] * s.Ranges[0]
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1.975) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(std-0.05) > 0.015 {
		t.Errorf("std = %v, want ≈ 0.05", std)
	}
}

func TestScanClone(t *testing.T) {
	l := NewLaser(10, 3, 0, rand.New(rand.NewSource(1)))
	s := l.Sense(room(), geom.P(2, 2, 0), 0)
	c := s.Clone()
	c.Ranges[0] = -1
	if s.Ranges[0] == -1 {
		t.Error("Clone shares Ranges")
	}
}

func TestOdometerNoiselessIdentity(t *testing.T) {
	o := &Odometer{rng: rand.New(rand.NewSource(1))} // all alphas zero
	poses := []geom.Pose{
		geom.P(0, 0, 0), geom.P(1, 0, 0), geom.P(1, 1, math.Pi/2), geom.P(0, 1, math.Pi),
	}
	var est geom.Pose
	for _, p := range poses {
		est = o.Update(p)
	}
	// With zero noise the odometry must equal the true delta from start.
	want := poses[0].Delta(poses[3])
	if est.Pos.Dist(want.Pos) > 1e-9 || math.Abs(geom.AngleDiff(est.Theta, want.Theta)) > 1e-9 {
		t.Errorf("est = %v, want %v", est, want)
	}
}

func TestOdometerPureRotation(t *testing.T) {
	o := &Odometer{rng: rand.New(rand.NewSource(1))}
	o.Update(geom.P(1, 1, 0))
	est := o.Update(geom.P(1, 1, 1.0))
	if est.Pos.Norm() > 1e-9 {
		t.Errorf("pure rotation produced translation: %v", est.Pos)
	}
	if math.Abs(est.Theta-1.0) > 1e-9 {
		t.Errorf("rotation = %v", est.Theta)
	}
}

func TestOdometerDriftGrows(t *testing.T) {
	o := NewOdometer(rand.New(rand.NewSource(3)))
	truth := geom.P(0, 0, 0)
	o.Update(truth)
	var maxErr float64
	for i := 0; i < 500; i++ {
		truth = geom.Twist{V: 0.2, W: 0.1}.Integrate(truth, 0.1)
		est := o.Update(truth)
		// Error vs true delta from origin.
		want := geom.P(0, 0, 0).Delta(truth)
		if e := est.Pos.Dist(want.Pos); e > maxErr {
			maxErr = e
		}
	}
	if maxErr == 0 {
		t.Error("odometry with drift parameters produced zero error")
	}
	if maxErr > 5 {
		t.Errorf("odometry drift implausibly large: %v", maxErr)
	}
}

func TestOdometerEstimateAccessor(t *testing.T) {
	o := NewOdometer(rand.New(rand.NewSource(1)))
	o.Update(geom.P(0, 0, 0))
	o.Update(geom.P(0.5, 0, 0))
	if o.Estimate() != o.est {
		t.Error("Estimate accessor mismatch")
	}
	if o.Estimate().Pos.Norm() == 0 {
		t.Error("estimate did not move")
	}
}

func BenchmarkSense360(b *testing.B) {
	m := world.LabMap()
	l := NewLDS01(0.01, rand.New(rand.NewSource(1)))
	p := geom.P(1, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Sense(m, p, 0)
	}
}

func TestDropoutInjection(t *testing.T) {
	m := room()
	l := NewLaser(360, 3.5, 0, rand.New(rand.NewSource(11)))
	l.DropoutProb = 0.5
	s := l.Sense(m, geom.P(2, 2, 0), 0)
	misses := 0
	for i := range s.Ranges {
		if !s.IsHit(i) {
			misses++
		}
	}
	// In a 4x4 room every true beam hits; ~50% should now be dropouts.
	if misses < 120 || misses > 240 {
		t.Errorf("dropout misses = %d of 360, want ≈ 180", misses)
	}
}

func TestOutlierInjection(t *testing.T) {
	m := room()
	clean := NewLaser(360, 3.5, 0, rand.New(rand.NewSource(12)))
	dirty := NewLaser(360, 3.5, 0, rand.New(rand.NewSource(12)))
	dirty.OutlierProb = 0.3
	cs := clean.Sense(m, geom.P(2, 2, 0), 0)
	ds := dirty.Sense(m, geom.P(2, 2, 0), 0)
	diff := 0
	for i := range cs.Ranges {
		if math.Abs(cs.Ranges[i]-ds.Ranges[i]) > 0.01 {
			diff++
		}
	}
	if diff < 50 || diff > 180 {
		t.Errorf("outliers changed %d beams, want ≈ 108", diff)
	}
}

func TestTableEndpointMatchesScan(t *testing.T) {
	l := NewLDS01(0.01, rand.New(rand.NewSource(7)))
	s := l.Sense(room(), geom.P(2, 2, 0.4), 0)
	var tab Table
	tab.Fill(s)
	if tab.N() != s.NumBeams() {
		t.Fatalf("table N = %d, want %d", tab.N(), s.NumBeams())
	}
	for _, pose := range []geom.Pose{
		geom.P(2, 2, 0.4), geom.P(0.3, 3.7, -2.9), geom.P(-1, 5, math.Pi),
	} {
		sinT, cosT := math.Sincos(pose.Theta)
		for i := 0; i < tab.N(); i++ {
			want := s.Endpoint(pose, i)
			got := tab.Endpoint(pose.Pos, sinT, cosT, i)
			if got.Dist(want) > 1e-12 {
				t.Fatalf("beam %d pose %v: table endpoint %v, scan endpoint %v",
					i, pose, got, want)
			}
			if tab.Hit[i] != s.IsHit(i) {
				t.Fatalf("beam %d: hit flag mismatch", i)
			}
		}
	}
}

func TestTableFillReusesStorage(t *testing.T) {
	l := NewLDS01(0.02, rand.New(rand.NewSource(8)))
	s1 := l.Sense(room(), geom.P(2, 2, 0), 0)
	s2 := l.Sense(room(), geom.P(2.1, 2, 0.1), 0.1)
	var tab Table
	tab.Fill(s1)
	sinPtr, lxPtr := &tab.Sin[0], &tab.LX[0]
	allocs := testing.AllocsPerRun(50, func() { tab.Fill(s2) })
	if allocs != 0 {
		t.Errorf("steady-state Fill allocates %v per run, want 0", allocs)
	}
	if &tab.Sin[0] != sinPtr || &tab.LX[0] != lxPtr {
		t.Error("Fill with same geometry reallocated its slices")
	}
	// LX/LY reflect the most recent scan.
	for i := range s2.Ranges {
		if got := math.Hypot(tab.LX[i], tab.LY[i]); math.Abs(got-s2.Ranges[i]) > 1e-9 {
			t.Fatalf("beam %d local endpoint norm %v, want range %v", i, got, s2.Ranges[i])
		}
	}
}

func TestTableFillTracksGeometryChange(t *testing.T) {
	var tab Table
	a := &Scan{AngleMin: -math.Pi, AngleInc: math.Pi / 2, MaxRange: 5,
		Ranges: []float64{1, 2, 3, 4}}
	tab.Fill(a)
	// Same beam count, different angular geometry: trig must be rebuilt.
	b := &Scan{AngleMin: 0, AngleInc: math.Pi / 4, MaxRange: 5,
		Ranges: []float64{1, 2, 3, 4}}
	tab.Fill(b)
	for i := 0; i < tab.N(); i++ {
		s, c := math.Sincos(b.Bearing(i))
		if tab.Sin[i] != s || tab.Cos[i] != c {
			t.Fatalf("beam %d trig stale after geometry change", i)
		}
	}
	// Shrinking beam count must be tracked too.
	c := &Scan{AngleMin: 0, AngleInc: math.Pi / 4, MaxRange: 5, Ranges: []float64{2}}
	tab.Fill(c)
	if tab.N() != 1 {
		t.Fatalf("table N = %d after shrink, want 1", tab.N())
	}
}
