// Package geom provides the 2-D geometric primitives shared by every
// subsystem of the LGV offloading simulator: points, poses, angle
// arithmetic, rigid transforms and grid line traversal.
//
// Conventions: the world frame is right-handed with x forward and y left
// (ROS REP-103). Angles are radians, normalized to (-π, π]. Distances are
// meters.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D vector or point in meters.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Cross returns the z component of the 3-D cross product of v and o.
func (v Vec2) Cross(o Vec2) float64 { return v.X*o.Y - v.Y*o.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared length of v, avoiding the sqrt.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and o.
func (v Vec2) Dist(o Vec2) float64 { return v.Sub(o).Norm() }

// DistSq returns the squared distance between v and o.
func (v Vec2) DistSq(o Vec2) float64 { return v.Sub(o).NormSq() }

// Angle returns the heading of v, in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated by theta radians counterclockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v and o by t in [0, 1].
func (v Vec2) Lerp(o Vec2, t float64) Vec2 {
	return Vec2{v.X + (o.X-v.X)*t, v.Y + (o.Y-v.Y)*t}
}

func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Pose is a 2-D rigid pose: position plus heading.
type Pose struct {
	Pos   Vec2
	Theta float64 // heading in radians, normalized to (-π, π]
}

// P constructs a Pose with a normalized heading.
func P(x, y, theta float64) Pose {
	return Pose{Pos: Vec2{x, y}, Theta: NormalizeAngle(theta)}
}

// Apply maps a point expressed in the pose's local frame into the world
// frame.
func (p Pose) Apply(local Vec2) Vec2 {
	return p.Pos.Add(local.Rotate(p.Theta))
}

// Compose returns the pose obtained by applying o in p's frame
// (the usual SE(2) group operation p ∘ o).
func (p Pose) Compose(o Pose) Pose {
	return Pose{
		Pos:   p.Apply(o.Pos),
		Theta: NormalizeAngle(p.Theta + o.Theta),
	}
}

// Inverse returns the pose q such that p.Compose(q) is the identity.
func (p Pose) Inverse() Pose {
	inv := p.Pos.Scale(-1).Rotate(-p.Theta)
	return Pose{Pos: inv, Theta: NormalizeAngle(-p.Theta)}
}

// Delta returns the motion o expressed in p's frame, i.e. the pose d with
// p.Compose(d) == o. It is the relative transform used by odometry models.
func (p Pose) Delta(o Pose) Pose {
	return p.Inverse().Compose(o)
}

// DistTo returns the translational distance between two poses.
func (p Pose) DistTo(o Pose) float64 { return p.Pos.Dist(o.Pos) }

func (p Pose) String() string {
	return fmt.Sprintf("[%.3f, %.3f; %.1f°]", p.Pos.X, p.Pos.Y, p.Theta*180/math.Pi)
}

// Twist is a body-frame velocity command: linear velocity along the robot's
// heading plus angular velocity. Differential-drive LGVs cannot translate
// sideways, so there is no lateral component.
type Twist struct {
	V float64 // linear velocity, m/s
	W float64 // angular velocity, rad/s
}

// Integrate advances pose p by twist t over dt seconds using the exact
// unicycle arc model (falls back to straight-line for |w| ≈ 0).
func (t Twist) Integrate(p Pose, dt float64) Pose {
	if math.Abs(t.W) < 1e-9 {
		return Pose{
			Pos:   p.Pos.Add(V(t.V*dt, 0).Rotate(p.Theta)),
			Theta: p.Theta,
		}
	}
	// Arc of radius v/w.
	r := t.V / t.W
	dth := t.W * dt
	dx := r * math.Sin(dth)
	dy := r * (1 - math.Cos(dth))
	return Pose{
		Pos:   p.Pos.Add(V(dx, dy).Rotate(p.Theta)),
		Theta: NormalizeAngle(p.Theta + dth),
	}
}

// NormalizeAngle wraps an angle into (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed difference a-b wrapped into
// (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Cell is an integer grid coordinate.
type Cell struct {
	X, Y int
}

// Bresenham traverses the grid cells on the line segment from a to b
// (inclusive), calling visit for each. Traversal stops early if visit
// returns false. It is the standard integer Bresenham walk used for ray
// casting and costmap clearing.
func Bresenham(a, b Cell, visit func(Cell) bool) {
	dx, dy := b.X-a.X, b.Y-a.Y
	sx, sy := 1, 1
	if dx < 0 {
		dx, sx = -dx, -1
	}
	if dy < 0 {
		dy, sy = -dy, -1
	}
	err := dx - dy
	c := a
	for {
		if !visit(c) {
			return
		}
		if c == b {
			return
		}
		e2 := 2 * err
		if e2 > -dy {
			err -= dy
			c.X += sx
		}
		if e2 < dx {
			err += dx
			c.Y += sy
		}
	}
}

// Segment is a line segment between two points.
type Segment struct {
	A, B Vec2
}

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec2) Vec2 {
	d := s.B.Sub(s.A)
	l2 := d.NormSq()
	if l2 == 0 {
		return s.A
	}
	t := Clamp(p.Sub(s.A).Dot(d)/l2, 0, 1)
	return s.A.Add(d.Scale(t))
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Vec2) float64 { return p.Dist(s.ClosestPoint(p)) }

// PathLength returns the cumulative length of a polyline.
func PathLength(pts []Vec2) float64 {
	var l float64
	for i := 1; i < len(pts); i++ {
		l += pts[i].Dist(pts[i-1])
	}
	return l
}
