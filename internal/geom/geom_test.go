package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestVec2Arithmetic(t *testing.T) {
	a, b := V(1, 2), V(3, -4)
	if got := a.Add(b); got != V(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := b.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := b.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
}

func TestVec2Rotate(t *testing.T) {
	v := V(1, 0).Rotate(math.Pi / 2)
	if !approx(v.X, 0) || !approx(v.Y, 1) {
		t.Errorf("Rotate 90° = %v", v)
	}
	v = V(1, 1).Rotate(math.Pi)
	if !approx(v.X, -1) || !approx(v.Y, -1) {
		t.Errorf("Rotate 180° = %v", v)
	}
}

func TestVec2Unit(t *testing.T) {
	if got := V(3, 4).Unit(); !approx(got.Norm(), 1) {
		t.Errorf("Unit norm = %v", got.Norm())
	}
	if got := V(0, 0).Unit(); got != V(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestVec2Lerp(t *testing.T) {
	a, b := V(0, 0), V(10, -10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
		{math.Pi / 4, math.Pi / 4},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !approx(got, c.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true
		}
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi+eps {
			return false
		}
		// Must represent the same direction.
		return approx(math.Sin(n), math.Sin(a)) && approx(math.Cos(n), math.Cos(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(math.Pi-0.1, -math.Pi+0.1); !approx(got, -0.2) {
		t.Errorf("AngleDiff across wrap = %v", got)
	}
	if got := AngleDiff(0.5, 0.2); !approx(got, 0.3) {
		t.Errorf("AngleDiff = %v", got)
	}
}

func TestPoseComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := P(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*10-5)
		q := p.Compose(p.Inverse())
		if q.Pos.Norm() > 1e-9 || math.Abs(q.Theta) > 1e-9 {
			t.Fatalf("p∘p⁻¹ != id: %v", q)
		}
	}
}

func TestPoseDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := P(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*10-5)
		o := P(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*10-5)
		d := p.Delta(o)
		back := p.Compose(d)
		if back.Pos.Dist(o.Pos) > 1e-9 || math.Abs(AngleDiff(back.Theta, o.Theta)) > 1e-9 {
			t.Fatalf("p∘delta != o: %v vs %v", back, o)
		}
	}
}

func TestPoseApply(t *testing.T) {
	p := P(1, 2, math.Pi/2)
	// A point 1 m ahead of the robot should land at (1, 3).
	w := p.Apply(V(1, 0))
	if !approx(w.X, 1) || !approx(w.Y, 3) {
		t.Errorf("Apply = %v", w)
	}
}

func TestTwistIntegrateStraight(t *testing.T) {
	p := P(0, 0, 0)
	q := Twist{V: 1, W: 0}.Integrate(p, 2)
	if !approx(q.Pos.X, 2) || !approx(q.Pos.Y, 0) || !approx(q.Theta, 0) {
		t.Errorf("straight integrate = %v", q)
	}
}

func TestTwistIntegrateArc(t *testing.T) {
	// Quarter circle of radius 1: v=1, w=1, t=π/2.
	p := P(0, 0, 0)
	q := Twist{V: 1, W: 1}.Integrate(p, math.Pi/2)
	if !approx(q.Pos.X, 1) || !approx(q.Pos.Y, 1) || !approx(q.Theta, math.Pi/2) {
		t.Errorf("arc integrate = %v", q)
	}
}

func TestTwistIntegrateConsistency(t *testing.T) {
	// Integrating in two half steps must match one full step for the arc
	// model (the exact solution is flow-composable).
	tw := Twist{V: 0.7, W: -0.9}
	p := P(1, -2, 0.4)
	full := tw.Integrate(p, 1.0)
	half := tw.Integrate(tw.Integrate(p, 0.5), 0.5)
	if full.Pos.Dist(half.Pos) > 1e-9 || math.Abs(AngleDiff(full.Theta, half.Theta)) > 1e-9 {
		t.Errorf("two half steps %v != full step %v", half, full)
	}
}

func TestBresenhamHorizontal(t *testing.T) {
	var got []Cell
	Bresenham(Cell{0, 0}, Cell{3, 0}, func(c Cell) bool {
		got = append(got, c)
		return true
	})
	want := []Cell{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestBresenhamDiagonalAndStop(t *testing.T) {
	var got []Cell
	Bresenham(Cell{0, 0}, Cell{-3, -3}, func(c Cell) bool {
		got = append(got, c)
		return len(got) < 3
	})
	if len(got) != 3 {
		t.Fatalf("early stop failed: %v", got)
	}
	if got[2] != (Cell{-2, -2}) {
		t.Fatalf("diagonal walk wrong: %v", got)
	}
}

func TestBresenhamEndpointsProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Cell{int(ax), int(ay)}
		b := Cell{int(bx), int(by)}
		var first, last Cell
		n := 0
		Bresenham(a, b, func(c Cell) bool {
			if n == 0 {
				first = c
			}
			last = c
			n++
			return true
		})
		// Must start at a, end at b, and visit the right number of cells.
		wantN := max(absInt(int(bx)-int(ax)), absInt(int(by)-int(ay))) + 1
		return first == a && last == b && n == wantN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{V(0, 0), V(10, 0)}
	if got := s.ClosestPoint(V(5, 3)); got != V(5, 0) {
		t.Errorf("mid = %v", got)
	}
	if got := s.ClosestPoint(V(-5, 3)); got != V(0, 0) {
		t.Errorf("before = %v", got)
	}
	if got := s.ClosestPoint(V(15, 3)); got != V(10, 0) {
		t.Errorf("after = %v", got)
	}
	if got := s.Dist(V(5, 3)); got != 3 {
		t.Errorf("Dist = %v", got)
	}
	// Degenerate segment.
	d := Segment{V(1, 1), V(1, 1)}
	if got := d.ClosestPoint(V(5, 5)); got != V(1, 1) {
		t.Errorf("degenerate = %v", got)
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("nil path = %v", got)
	}
	if got := PathLength([]Vec2{V(0, 0)}); got != 0 {
		t.Errorf("single = %v", got)
	}
	if got := PathLength([]Vec2{V(0, 0), V(3, 4), V(3, 5)}); !approx(got, 6) {
		t.Errorf("path = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}
