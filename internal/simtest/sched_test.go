package simtest

import "testing"

// TestSchedFairInvariant is the control-plane acceptance check: K
// missions multiplexed through internal/serve with max-running < K
// dispatch FIFO, starve nobody, and produce results byte-identical to
// solo RunScenario runs. It evaluates only the sched-fair invariant
// (the full library already runs in
// TestInvariantsOnRepresentativeScenarios, where Options{} skips this
// one by design).
func TestSchedFairInvariant(t *testing.T) {
	sc := smallNav(DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "ec", Threads: 2}, "fade", "")
	sc.MaxSimTime = 30
	sc.TrackerSamples = 100

	inv, ok := InvariantByName("sched-fair")
	if !ok {
		t.Fatal("sched-fair invariant not registered")
	}
	rep, err := evaluateWith(sc, []Invariant{inv}, Options{Sched: true})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s: %s", v.Invariant, v.Error)
	}
	ran := false
	for _, name := range rep.Checked {
		if name == "sched-fair" {
			ran = true
		}
	}
	if !ran {
		t.Fatalf("sched-fair did not run (checked %v, skipped %v)", rep.Checked, rep.Skipped)
	}
}

// TestSchedFairGating asserts the default Evaluate path skips the
// expensive sched-fair invariant unless Options.Sched is set, mirroring
// matrix-determinism's gating.
func TestSchedFairGating(t *testing.T) {
	sc := smallNav(DeploySpec{Mode: "local", Threads: 1}, "good", "")
	sc.MaxSimTime = 20
	rep, err := evaluateWith(sc, Invariants(), Options{})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	for _, name := range append(append([]string{}, rep.Checked...), rep.Skipped...) {
		if name == "sched-fair" {
			t.Fatalf("sched-fair ran without Options.Sched (checked %v)", rep.Checked)
		}
	}
}
