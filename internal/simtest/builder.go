package simtest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"lgvoffload/internal/core"
	"lgvoffload/internal/store"
)

// BuildScenarioMission is the control plane's scenario builder: it
// turns a raw Scenario JSON document (a POST /missions body, the same
// shape as the repro corpus) into a runnable mission config plus its
// store index row. It matches internal/serve's Builder signature
// without simtest importing serve.
//
// Decoding is strict — unknown fields, trailing data and non-JSON all
// fail — so the daemon's 400 path catches malformed specs at admission
// instead of queueing missions that explode at dispatch. The verbatim
// spec is stamped into MissionStart.Scenario, keeping daemon-run
// missions replayable offline (`lgvstore ls`, ReplayScenario).
func BuildScenarioMission(spec []byte) (core.MissionConfig, store.MissionStart, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return core.MissionConfig{}, store.MissionStart{}, fmt.Errorf("simtest: bad scenario spec: %w", err)
	}
	if dec.More() {
		return core.MissionConfig{}, store.MissionStart{}, fmt.Errorf("simtest: trailing data after scenario spec")
	}
	cfg, err := sc.Mission()
	if err != nil {
		return core.MissionConfig{}, store.MissionStart{}, err
	}
	compact := &bytes.Buffer{}
	if err := json.Compact(compact, spec); err != nil {
		return core.MissionConfig{}, store.MissionStart{}, fmt.Errorf("simtest: bad scenario spec: %w", err)
	}
	start := store.MissionStart{
		Label:      sc.Label(),
		Seed:       sc.Seed,
		Workload:   sc.Workload,
		Deploy:     sc.Deploy.Mode,
		Goal:       sc.Deploy.Goal,
		Threads:    sc.Deploy.Threads,
		FaultSpec:  sc.Faults,
		MaxSimTime: sc.MaxSimTime,
		Scenario:   json.RawMessage(compact.Bytes()),
	}
	return cfg, start, nil
}
