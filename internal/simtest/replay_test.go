package simtest

import (
	"testing"
)

// TestReplayReproCorpus replays every committed repro under
// testdata/repros/ against the current invariant library. Each file is
// a scenario that once violated an invariant (or demonstrated the
// pipeline); after the fix it must run clean, so the corpus is a
// regression suite that grows with every hunt.
func TestReplayReproCorpus(t *testing.T) {
	repros, paths, err := LoadCorpus("testdata/repros")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(repros) == 0 {
		t.Skip("no committed repros")
	}
	for i, r := range repros {
		r, path := r, paths[i]
		t.Run(r.Filename(), func(t *testing.T) {
			t.Parallel()
			rep, err := Evaluate(r.Scenario, Options{})
			if err != nil {
				t.Fatalf("%s: replay errored: %v", path, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s: invariant %s still violated: %s", path, v.Invariant, v.Error)
			}
			if len(rep.Checked) == 0 {
				t.Errorf("%s: no invariants applied to the repro scenario", path)
			}
		})
	}
}
