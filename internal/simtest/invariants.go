package simtest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"lgvoffload/internal/energy"
	"lgvoffload/internal/faults"
	"lgvoffload/internal/spans"
)

// ErrSkip marks an invariant that does not apply to the given scenario
// (wrong deployment mode, out-of-scope link profile, …). Skips are
// counted but are neither violations nor errors.
var ErrSkip = errors.New("invariant not applicable")

// Invariant is one paper-derived property checked against every run.
type Invariant struct {
	Name string
	// Desc is the one-line statement of the property, referencing the
	// paper equation/algorithm it encodes.
	Desc string
	// ExtraRuns is how many additional full mission runs the check
	// costs (baselines, replays, the kernel matrix).
	ExtraRuns int
	Check     func(o *Outcome) error
}

// Invariants returns the full library in evaluation order: cheap
// structural checks first, re-run-based checks last.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name:  "energy-sum",
			Desc:  "Eq. 1a: per-component energies are non-negative and sum to E_total",
			Check: checkEnergySum,
		},
		{
			Name:  "span-structure",
			Desc:  "span log is structurally valid (parents exist, children nested, times ordered)",
			Check: checkSpanStructure,
		},
		{
			Name:  "makespan-decomposition",
			Desc:  "Eq. 2: critical-path compute+queue+transport equals tick makespan within 1%",
			Check: checkMakespan,
		},
		{
			Name:  "watchdog-zero-vel",
			Desc:  "the watchdog never lets a nonzero velocity command through after staleness",
			Check: checkWatchdog,
		},
		{
			Name:  "no-flap",
			Desc:  "Algorithm 2 never returns to remote placement inside the failover hold-down",
			Check: checkNoFlap,
		},
		{
			Name:  "handoff-no-flap",
			Desc:  "Algorithm 2 never changes placement inside the post-handoff freeze window",
			Check: checkHandoffNoFlap,
		},
		{
			Name:  "link-accounting",
			Desc:  "every offered packet is delivered or dropped with an attributed cause",
			Check: checkLinkAccounting,
		},
		{
			Name:      "ec-dominance",
			Desc:      "Algorithm 1 goal-EC never consumes more energy than all-local (no-fault, high-bandwidth)",
			ExtraRuns: 1,
			Check:     checkECDominance,
		},
		{
			Name:      "store-roundtrip",
			Desc:      "a recorded mission is bit-identical to an unrecorded one, and its stored records replay to the identical summary",
			ExtraRuns: 1,
			Check:     checkStoreRoundTrip,
		},
		{
			Name:      "replay-determinism",
			Desc:      "identical seeds yield byte-identical Results across repeated runs",
			ExtraRuns: 1,
			Check:     checkReplay,
		},
		{
			Name:      "adversarial-replay",
			Desc:      "an adversarially-found fault schedule survives a JSON round trip and replays bit-identically",
			ExtraRuns: 1,
			Check:     checkAdversarialReplay,
		},
		{
			Name:      "flight-bundle",
			Desc:      "a breach-triggered flight bundle is non-invasive, contains the breach tick, and replays byte-identically",
			ExtraRuns: 2,
			Check:     checkFlightBundle,
		},
		{
			Name:      "matrix-determinism",
			Desc:      "Results are byte-identical across kernel threads {1,2,4,8} × {block,interleaved}",
			ExtraRuns: 8,
			Check:     checkMatrix,
		},
		{
			Name:      "sched-fair",
			Desc:      "the serve scheduler starves no mission and multiplexed results are byte-identical to solo runs",
			ExtraRuns: 5,
			Check:     checkSchedFair,
		},
	}
}

// InvariantByName returns the named invariant or false.
func InvariantByName(name string) (Invariant, bool) {
	for _, inv := range Invariants() {
		if inv.Name == name {
			return inv, true
		}
	}
	return Invariant{}, false
}

func checkEnergySum(o *Outcome) error {
	sum := 0.0
	for _, comp := range sortedComponents(o.Res) {
		j := o.Res.Energy[energy.Component(comp)]
		if j < 0 {
			return fmt.Errorf("component %s has negative energy %g J", comp, j)
		}
		sum += j
	}
	total := o.Res.TotalEnergy
	if !closeRel(sum, total, 1e-9) {
		return fmt.Errorf("components sum to %.9f J but E_total = %.9f J (diff %g)",
			sum, total, sum-total)
	}
	return nil
}

func checkSpanStructure(o *Outcome) error {
	if o.SpansDropped > 0 {
		return ErrSkip // ring wrapped: orphaned parents are expected
	}
	return spans.Validate(o.Spans)
}

func checkMakespan(o *Outcome) error {
	if o.SpansDropped > 0 {
		return ErrSkip
	}
	paths := spans.AnalyzeTicks(o.Spans)
	for _, p := range paths {
		if p.Makespan <= 0 {
			continue
		}
		tol := math.Max(1e-6, 0.01*p.Makespan)
		if math.Abs(p.Sum()-p.Makespan) > tol {
			return fmt.Errorf("tick trace %d at t=%.2f: compute %.6f + queue %.6f + transport %.6f = %.6f ≠ makespan %.6f",
				p.Trace, p.Start, p.Compute, p.Queue, p.Transport, p.Sum(), p.Makespan)
		}
	}
	return nil
}

func checkWatchdog(o *Outcome) error {
	if len(o.CmdViolations) == 0 {
		return nil
	}
	v := o.CmdViolations[0]
	return fmt.Errorf("%d nonzero commands while stalled (first at t=%.2f: v=%.3f w=%.3f); %d stalled samples total",
		len(o.CmdViolations), v.T, v.V, v.W, o.StalledSamples)
}

func checkNoFlap(o *Outcome) error {
	hold := o.FailoverHold
	lastFailover := math.Inf(-1)
	for _, d := range o.Res.Decisions {
		if d.Reason == "failover" {
			if d.T-lastFailover < hold-1e-9 {
				return fmt.Errorf("failovers at t=%.2f and t=%.2f are closer than the %.0fs hold-down",
					lastFailover, d.T, hold)
			}
			lastFailover = d.T
			continue
		}
		// HoldActive(now) is `now < holdUntil`, so a remote verdict at
		// exactly lastFailover+hold is legal.
		if d.RemoteOK && d.T-lastFailover < hold-1e-9 {
			return fmt.Errorf("decision at t=%.2f has RemoteOK inside the hold-down started at t=%.2f (hold %.0fs)",
				d.T, lastFailover, hold)
		}
	}
	return nil
}

func checkHandoffNoFlap(o *Outcome) error {
	ht := o.Res.HandoffTimes
	if len(ht) == 0 {
		return ErrSkip
	}
	hold := o.HandoffHold
	for _, d := range o.Res.Decisions {
		if d.Reason == "failover" {
			// The failover path deliberately bypasses the handoff freeze:
			// a link that dies across a handoff must still pull home.
			continue
		}
		for _, h := range ht {
			if d.T >= h && d.T-h < hold-1e-9 {
				return fmt.Errorf("adaptation decision (%s) at t=%.2f is %.2fs after the handoff at t=%.2f — inside the %.1fs freeze",
					d.Reason, d.T, d.T-h, h, hold)
			}
		}
	}
	return nil
}

func checkAdversarialReplay(o *Outcome) error {
	if !o.Scenario.Adversarial {
		return ErrSkip
	}
	// The fault schedule must survive a ParseSpec → String → ParseSpec
	// round trip: the repro corpus and cmd/advhunt exchange schedules as
	// spec strings, so a lossy rendering would silently change the
	// adversarial scenario.
	if o.Scenario.Faults != "" {
		fc, err := faults.ParseSpec(o.Scenario.Faults)
		if err != nil {
			return fmt.Errorf("adversarial spec does not parse: %w", err)
		}
		back, err := faults.ParseSpec(fc.String())
		if err != nil {
			return fmt.Errorf("re-rendered spec %q does not parse: %w", fc.String(), err)
		}
		a := append([]faults.Window(nil), fc.Windows...)
		b := append([]faults.Window(nil), back.Windows...)
		sortWindows(a)
		sortWindows(b)
		if len(a) != len(b) {
			return fmt.Errorf("spec round trip changed window count: %d vs %d", len(a), len(b))
		}
		for i := range a {
			// prob() normalizes P ∈ {0, 1} equivalently; compare effective
			// windows field by field.
			if a[i].Kind != b[i].Kind || a[i].T0 != b[i].T0 || a[i].T1 != b[i].T1 || a[i].P != b[i].P {
				return fmt.Errorf("spec round trip changed window %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	// The full scenario must survive a JSON round trip and replay to the
	// byte-identical canonical result — this is what makes an emitted
	// worst-case schedule a usable repro.
	data, err := json.Marshal(o.Scenario)
	if err != nil {
		return fmt.Errorf("scenario marshal: %w", err)
	}
	var sc2 Scenario
	if err := json.Unmarshal(data, &sc2); err != nil {
		return fmt.Errorf("scenario unmarshal: %w", err)
	}
	o2, err := RunScenario(sc2)
	if err != nil {
		return fmt.Errorf("adversarial replay errored: %w", err)
	}
	if !bytes.Equal(o.Canon, o2.Canon) {
		return fmt.Errorf("adversarial replay diverged: %s", firstDiff(o.Canon, o2.Canon))
	}
	return nil
}

func sortWindows(ws []faults.Window) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].T0 != ws[j].T0 {
			return ws[i].T0 < ws[j].T0
		}
		return ws[i].Kind < ws[j].Kind
	})
}

func checkLinkAccounting(o *Outcome) error {
	st := o.Res.Net
	if st.Sent != st.Delivered+st.Dropped() {
		return fmt.Errorf("ledger leak: sent %d ≠ delivered %d + dropped %d (impair %d, overflow %d, loss %d, corrupt %d)",
			st.Sent, st.Delivered, st.Dropped(),
			st.DroppedImpair, st.DroppedOverflow, st.DroppedLoss, st.DroppedCorrupt)
	}
	if o.Scenario.NoFaults() && (st.DroppedImpair > 0 || st.DroppedCorrupt > 0) {
		return fmt.Errorf("fault-attributed drops without a fault schedule: impair %d, corrupt %d",
			st.DroppedImpair, st.DroppedCorrupt)
	}
	if o.Res.MsgsDropped > o.Res.MsgsSent {
		return fmt.Errorf("pipeline counters: dropped %d > sent %d", o.Res.MsgsDropped, o.Res.MsgsSent)
	}
	return nil
}

// ecDominanceTol is the slack on the EC-dominance comparison. Adaptive
// EC runs the same physics with strictly cheaper compute placement, but
// path realizations differ slightly (different seeds feed the same rngs
// through different code paths is NOT possible — seeds match — yet
// completion times can differ by a control tick), so a small relative
// margin absorbs boundary effects.
const ecDominanceTol = 0.02

func checkECDominance(o *Outcome) error {
	sc := o.Scenario
	if sc.Deploy.Mode != "adaptive" || sc.Deploy.Goal != "ec" {
		return ErrSkip
	}
	if !sc.NoFaults() || !sc.HighBandwidth() {
		return ErrSkip
	}
	base := sc
	base.Deploy = DeploySpec{Mode: "local", Threads: 1}
	base.Fleet = 1
	base.KernelThreads = 0
	base.KernelPartition = ""
	bo, err := RunScenario(base)
	if err != nil || !bo.Res.Success {
		return ErrSkip // all-local cannot complete this mission: nothing to dominate
	}
	if !o.Res.Success {
		return fmt.Errorf("goal-EC adaptive failed (%s) a mission all-local completes", o.Res.Reason)
	}
	if o.Res.TotalEnergy > bo.Res.TotalEnergy*(1+ecDominanceTol) {
		return fmt.Errorf("goal-EC adaptive used %.1f J > all-local %.1f J (tol %.0f%%)",
			o.Res.TotalEnergy, bo.Res.TotalEnergy, ecDominanceTol*100)
	}
	return nil
}

func checkReplay(o *Outcome) error {
	o2, err := RunScenario(o.Scenario)
	if err != nil {
		return fmt.Errorf("replay errored: %w", err)
	}
	if !bytes.Equal(o.Canon, o2.Canon) {
		return fmt.Errorf("replay diverged: %s", firstDiff(o.Canon, o2.Canon))
	}
	return nil
}

func checkMatrix(o *Outcome) error {
	for _, threads := range []int{1, 2, 4, 8} {
		for _, part := range []string{"block", "interleaved"} {
			sc := o.Scenario
			sc.KernelThreads = threads
			sc.KernelPartition = part
			if sc.KernelThreads == o.Scenario.KernelThreads && sc.KernelPartition == o.Scenario.KernelPartition {
				continue // that's the primary run itself
			}
			mo, err := RunScenario(sc)
			if err != nil {
				return fmt.Errorf("threads=%d/%s errored: %w", threads, part, err)
			}
			if !bytes.Equal(o.Canon, mo.Canon) {
				return fmt.Errorf("threads=%d/%s diverged from primary: %s",
					threads, part, firstDiff(o.Canon, mo.Canon))
			}
		}
	}
	return nil
}

// firstDiff locates the first differing byte of two canonical
// encodings and returns a short window around it for the report.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 30
	if lo < 0 {
		lo = 0
	}
	win := func(s []byte) string {
		hi := i + 30
		if hi > len(s) {
			hi = len(s)
		}
		if lo >= len(s) {
			return "<end>"
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("first diff at byte %d: %q vs %q", i, win(a), win(b))
}

func closeRel(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}
