package simtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReproFormatVersion is bumped on incompatible Scenario/Repro schema
// changes; LoadRepro rejects files from a different major format so a
// stale corpus fails loudly instead of silently testing nothing.
const ReproFormatVersion = 1

// Repro is a self-contained, committed record of an invariant
// violation: the minimized scenario plus enough context to understand
// what failed. Tier-1 tests replay every repro under testdata/repros/.
type Repro struct {
	Format    int    `json:"format"`
	Invariant string `json:"invariant"`
	// Error is the violation message observed when the repro was
	// captured (informational; replay re-derives the current verdict).
	Error string `json:"error"`
	// CampaignSeed is the generator seed that first hit the violation.
	CampaignSeed int64 `json:"campaign_seed"`
	// ShrinkSteps/ShrinkRuns record how much the shrinker reduced it.
	ShrinkSteps int      `json:"shrink_steps"`
	ShrinkRuns  int      `json:"shrink_runs"`
	Scenario    Scenario `json:"scenario"`
}

// Filename derives the canonical corpus filename for the repro.
func (r Repro) Filename() string {
	inv := strings.Map(func(c rune) rune {
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			return c
		}
		return '-'
	}, r.Invariant)
	return fmt.Sprintf("repro-%s-seed%d.json", inv, r.CampaignSeed)
}

// SaveRepro writes the repro into dir (created if needed) and returns
// the path.
func SaveRepro(dir string, r Repro) (string, error) {
	if r.Format == 0 {
		r.Format = ReproFormatVersion
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads and validates one repro file. Unknown fields are
// rejected so schema drift in the committed corpus is caught.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Format != ReproFormatVersion {
		return r, fmt.Errorf("%s: format %d, want %d", path, r.Format, ReproFormatVersion)
	}
	if r.Invariant == "" {
		return r, fmt.Errorf("%s: missing invariant name", path)
	}
	return r, nil
}

// LoadCorpus loads every *.json repro under dir, sorted by filename.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Repro, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var repros []Repro
	var paths []string
	for _, n := range names {
		p := filepath.Join(dir, n)
		r, err := LoadRepro(p)
		if err != nil {
			return nil, nil, err
		}
		repros = append(repros, r)
		paths = append(paths, p)
	}
	return repros, paths, nil
}
