package simtest

import "fmt"

// CampaignOpts configures an N-seed hunt.
type CampaignOpts struct {
	Seeds     int   // number of scenarios (default 50)
	StartSeed int64 // first generator seed (campaign seed i = StartSeed + i)
	// MatrixEvery runs the kernel thread×partition determinism sweep on
	// every Nth scenario (0 = never; it costs 8 extra runs each).
	MatrixEvery int
	// SchedEvery runs the sched-fair control-plane invariant on every
	// Nth scenario (0 = never; it costs several extra runs each).
	SchedEvery int
	// ReproDir, when non-empty, receives a shrunk JSON repro for every
	// violation.
	ReproDir string
	// ShrinkBudget caps mission runs spent minimizing each violation
	// (default 48).
	ShrinkBudget int
	// Invariants optionally overrides the checked library (tests use
	// this to inject a deliberately broken invariant; nil = Invariants()).
	Invariants []Invariant
	// Logf receives one line per scenario (nil = silent).
	Logf func(format string, args ...any)
}

// CampaignStats aggregates a finished hunt.
type CampaignStats struct {
	Seeds int `json:"seeds"`
	Runs  int `json:"runs"`
	// Checked / Skipped count invariant evaluations by name.
	Checked map[string]int `json:"checked"`
	Skipped map[string]int `json:"skipped"`
	// Violations holds one (shrunk) repro per failed invariant instance.
	Violations []Repro `json:"violations,omitempty"`
	// ReproPaths are the files written for the violations.
	ReproPaths []string `json:"repro_paths,omitempty"`
	// Errors lists scenarios the engine rejected outright (setup
	// failures, not invariant violations).
	Errors []string `json:"errors,omitempty"`
}

// Campaign generates and evaluates opts.Seeds scenarios, shrinking and
// (optionally) persisting a repro for every violation. It never stops
// early: one violating seed must not mask others.
func Campaign(opts CampaignOpts) *CampaignStats {
	if opts.Seeds <= 0 {
		opts.Seeds = 50
	}
	if opts.ShrinkBudget <= 0 {
		opts.ShrinkBudget = 48
	}
	library := opts.Invariants
	if library == nil {
		library = Invariants()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stats := &CampaignStats{Checked: map[string]int{}, Skipped: map[string]int{}}

	for i := 0; i < opts.Seeds; i++ {
		seed := opts.StartSeed + int64(i)
		sc := Generate(seed)
		eo := Options{
			Matrix: opts.MatrixEvery > 0 && i%opts.MatrixEvery == 0,
			Sched:  opts.SchedEvery > 0 && i%opts.SchedEvery == 0,
		}
		rep, err := evaluateWith(sc, library, eo)
		stats.Seeds++
		if err != nil {
			stats.Errors = append(stats.Errors, fmt.Sprintf("seed %d (%s): %v", seed, sc.Label(), err))
			logf("seed %-6d ERROR %v", seed, err)
			continue
		}
		stats.Runs += rep.Runs
		for _, name := range rep.Checked {
			stats.Checked[name]++
		}
		for _, name := range rep.Skipped {
			stats.Skipped[name]++
		}
		if len(rep.Violations) == 0 {
			logf("seed %-6d ok    %s", seed, sc.Label())
			continue
		}
		for _, v := range rep.Violations {
			logf("seed %-6d FAIL  %s: %s", seed, v.Invariant, v.Error)
			inv, ok := libraryByName(library, v.Invariant)
			if !ok {
				continue
			}
			shrunk := Shrink(sc, inv, opts.ShrinkBudget)
			stats.Runs += shrunk.Runs
			logf("  shrunk in %d steps (%d runs): %s", shrunk.Steps, shrunk.Runs, shrunk.Scenario.Label())
			r := Repro{
				Format:       ReproFormatVersion,
				Invariant:    v.Invariant,
				Error:        shrunk.Error,
				CampaignSeed: seed,
				ShrinkSteps:  shrunk.Steps,
				ShrinkRuns:   shrunk.Runs,
				Scenario:     shrunk.Scenario,
			}
			stats.Violations = append(stats.Violations, r)
			if opts.ReproDir != "" {
				path, err := SaveRepro(opts.ReproDir, r)
				if err != nil {
					stats.Errors = append(stats.Errors, fmt.Sprintf("save repro: %v", err))
					continue
				}
				stats.ReproPaths = append(stats.ReproPaths, path)
				logf("  repro written: %s", path)
			}
		}
	}
	return stats
}

// evaluateWith is Evaluate generalized over an invariant library.
func evaluateWith(sc Scenario, library []Invariant, opts Options) (*Report, error) {
	o, err := RunScenario(sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{Scenario: sc, Runs: 1}
	for _, inv := range library {
		if inv.Name == "matrix-determinism" && !opts.Matrix {
			continue
		}
		if inv.Name == "sched-fair" && !opts.Sched {
			continue
		}
		err := inv.Check(o)
		switch {
		case err == nil:
			rep.Checked = append(rep.Checked, inv.Name)
			rep.Runs += inv.ExtraRuns
		case isSkip(err):
			rep.Skipped = append(rep.Skipped, inv.Name)
		default:
			rep.Checked = append(rep.Checked, inv.Name)
			rep.Runs += inv.ExtraRuns
			rep.Violations = append(rep.Violations, Violation{Invariant: inv.Name, Error: err.Error()})
		}
	}
	return rep, nil
}

func libraryByName(library []Invariant, name string) (Invariant, bool) {
	for _, inv := range library {
		if inv.Name == name {
			return inv, true
		}
	}
	return Invariant{}, false
}
