package simtest

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"sort"

	"lgvoffload/internal/core"
	"lgvoffload/internal/energy"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/obs"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/store"
)

// CmdViolation records a nonzero velocity command observed while the
// watchdog had declared the command stream stale — the one thing the
// safety controller must never allow.
type CmdViolation struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
	W float64 `json:"w"`
}

// Outcome bundles one mission run with everything the invariant
// library inspects: the engine Result, its canonical byte encoding,
// the span log, and the watchdog command tap.
type Outcome struct {
	Scenario Scenario
	Res      *core.Result
	Canon    []byte

	Spans        []spans.Span
	SpansDropped uint64

	// FailoverHold is the effective Algorithm 2 hold-down window, s.
	FailoverHold float64
	// HandoffHold is the effective post-handoff adaptation freeze, s.
	HandoffHold float64

	// StalledSamples counts motor commands emitted while the watchdog
	// held the stream stale (these must all be zero-velocity stops);
	// CmdViolations lists any that were not.
	StalledSamples int
	CmdViolations  []CmdViolation
}

// RunScenario executes the scenario headlessly with tracing and the
// safety command tap attached.
func RunScenario(sc Scenario) (*Outcome, error) { return runScenario(sc, nil) }

// RunScenarioObserved is RunScenario with a flight recorder and/or SLO
// engine attached — the instrumented rerun behind the flight-bundle
// invariant and advhunt's worst-case capture. Both may be nil.
func RunScenarioObserved(sc Scenario, fr *obs.FlightRecorder, slo *obs.SLOEngine) (*Outcome, error) {
	return runScenarioOpts(sc, runOpts{fr: fr, slo: slo})
}

// runOpts carries the optional observers a scenario run can attach; the
// zero value is a bare run.
type runOpts struct {
	rec *store.Recorder
	fr  *obs.FlightRecorder
	slo *obs.SLOEngine
}

// runScenario is RunScenario with an optional mission recorder attached
// (the store-roundtrip invariant uses it to prove recording is
// non-invasive). The caller owns rec: Finish/Abandon it afterwards.
func runScenario(sc Scenario, rec *store.Recorder) (*Outcome, error) {
	return runScenarioOpts(sc, runOpts{rec: rec})
}

func runScenarioOpts(sc Scenario, opts runOpts) (*Outcome, error) {
	cfg, err := sc.Mission()
	if err != nil {
		return nil, err
	}
	maxT := cfg.MaxSimTime
	if maxT == 0 {
		maxT = 240
	}
	// ~16 spans per 5 Hz tick, headroom ×2: large enough that the ring
	// never wraps on the mission lengths the generator emits. The
	// makespan invariant skips (not fails) if it somehow does.
	tracer := spans.NewTracer(int(maxT/0.2)*32 + 4096)
	cfg.Tracer = tracer
	cfg.RecordTrace = true
	cfg.Store = opts.rec
	cfg.FlightRec = opts.fr
	cfg.SLO = opts.slo

	out := &Outcome{Scenario: sc}
	cfg.CmdTap = func(now float64, cmd geom.Twist, stalled bool) {
		if !stalled {
			return
		}
		out.StalledSamples++
		if cmd.V != 0 || cmd.W != 0 {
			if len(out.CmdViolations) < 16 {
				out.CmdViolations = append(out.CmdViolations, CmdViolation{T: now, V: cmd.V, W: cmd.W})
			}
		}
	}

	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	out.Res = res
	out.Canon = Canonical(res)
	out.Spans = tracer.Spans()
	out.SpansDropped = tracer.Dropped()
	out.FailoverHold = cfg.FailoverHoldSec
	if out.FailoverHold == 0 {
		out.FailoverHold = 20 // engine default (fillDefaults)
	}
	out.HandoffHold = cfg.HandoffHoldSec
	if out.HandoffHold == 0 {
		out.HandoffHold = 2 // engine default (fillDefaults)
	}
	return out, nil
}

// canonicalResult is the deterministic, order-stable projection of
// core.Result used for byte-identity checks. It deliberately excludes
// Config (not data) and anything derived from wall time.
type canonicalResult struct {
	Success bool    `json:"success"`
	Reason  string  `json:"reason"`
	Time    float64 `json:"time"`
	Moving  float64 `json:"moving"`
	Standby float64 `json:"standby"`
	Dist    float64 `json:"dist"`

	Energy []canonEnergy `json:"energy"`
	Total  float64       `json:"total_energy"`

	Cycles []canonCycles `json:"cycles"`

	NetSent      int    `json:"net_sent"`
	NetDelivered int    `json:"net_delivered"`
	NetDropped   [4]int `json:"net_dropped"` // impair, overflow, loss, corrupt

	MsgsSent        int     `json:"msgs_sent"`
	MsgsDropped     int     `json:"msgs_dropped"`
	MsgsOverwritten int     `json:"msgs_overwritten"`
	BytesUplinked   float64 `json:"bytes_uplinked"`
	Switches        int     `json:"switches"`
	WatchdogStops   int     `json:"watchdog_stops"`
	Failovers       int     `json:"failovers"`
	FaultsInjected  int     `json:"faults_injected"`
	Handoffs        int     `json:"handoffs,omitempty"`
	// HandoffTimes round-trips through JSON floats exactly (Go emits
	// shortest-representation decimals), so byte identity still implies
	// identical handoff timing.
	HandoffTimes []float64 `json:"handoff_times,omitempty"`

	Decisions []core.AdaptDecision `json:"decisions"`

	AvgMaxVel float64 `json:"avg_max_vel"`
	Explored  float64 `json:"explored"`

	TracePoints int    `json:"trace_points"`
	TraceHash   uint64 `json:"trace_hash"`
}

type canonEnergy struct {
	Component string  `json:"c"`
	Joules    float64 `json:"j"`
}

type canonCycles struct {
	Node   string  `json:"n"`
	Cycles float64 `json:"cy"`
}

// Canonical serializes the result deterministically: map-backed fields
// are emitted in sorted order and the (large) trace time series is
// collapsed to an FNV-1a hash of its raw float bits, so two results are
// byte-identical iff every physics sample matched exactly.
func Canonical(res *core.Result) []byte {
	c := canonicalResult{
		Success: res.Success, Reason: res.Reason,
		Time: res.TotalTime, Moving: res.MovingTime, Standby: res.StandbyTime,
		Dist:         res.Distance,
		Total:        res.TotalEnergy,
		NetSent:      res.Net.Sent,
		NetDelivered: res.Net.Delivered,
		NetDropped: [4]int{res.Net.DroppedImpair, res.Net.DroppedOverflow,
			res.Net.DroppedLoss, res.Net.DroppedCorrupt},
		MsgsSent: res.MsgsSent, MsgsDropped: res.MsgsDropped,
		MsgsOverwritten: res.MsgsOverwritten,
		BytesUplinked:   res.BytesUplinked,
		Switches:        res.Switches,
		WatchdogStops:   res.WatchdogStops,
		Failovers:       res.Failovers,
		FaultsInjected:  res.FaultsInjected,
		Handoffs:        res.Handoffs,
		HandoffTimes:    res.HandoffTimes,
		Decisions:       res.Decisions,
		AvgMaxVel:       res.AvgMaxVel,
		Explored:        res.Explored,
	}
	for _, comp := range sortedComponents(res) {
		c.Energy = append(c.Energy, canonEnergy{Component: comp, Joules: res.Energy[energy.Component(comp)]})
	}
	if res.Cycles != nil {
		rows := res.Cycles.Breakdown()
		sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
		for _, r := range rows {
			c.Cycles = append(c.Cycles, canonCycles{Node: r.Node, Cycles: r.Work.Total()})
		}
	}
	c.TracePoints = len(res.Trace)
	c.TraceHash = traceHash(res.Trace)
	b, err := json.Marshal(c)
	if err != nil {
		panic("simtest: canonical marshal failed: " + err.Error())
	}
	return b
}

func sortedComponents(res *core.Result) []string {
	out := make([]string, 0, len(res.Energy))
	for k := range res.Energy {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

func traceHash(trace []core.TracePoint) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, p := range trace {
		put(p.T)
		put(p.X)
		put(p.Y)
		put(p.MaxVel)
		put(p.RealVel)
		put(p.Bandwidth)
		put(p.TailLatSec)
		put(p.Direction)
		put(p.Signal)
		if p.RemoteOn {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}
