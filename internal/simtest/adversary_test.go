package simtest

import (
	"math/rand"
	"testing"

	"lgvoffload/internal/faults"
)

// tinyAdversaryBase is a fast mission for adversary plumbing tests:
// small map, short clock, so a handful of evaluations stays well under
// a second each.
func tinyAdversaryBase() Scenario {
	sc := DefaultAdversaryBase(7)
	sc.Waypoints = nil
	sc.MaxSimTime = 25
	sc.TrackerSamples = 200
	return sc
}

// TestAdversaryDeterministic: the whole search — base eval, random
// baseline, climb, shrink, replay — is a pure function of (base, opts).
func TestAdversaryDeterministic(t *testing.T) {
	opts := AdversaryOpts{Seed: 3, Evals: 4, Metric: "time"}
	a, err := FindWorstSchedule(tinyAdversaryBase(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindWorstSchedule(tinyAdversaryBase(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Worst.Faults != b.Worst.Faults || a.WorstScore != b.WorstScore ||
		a.RandomBest.Faults != b.RandomBest.Faults || a.RandomBestScore != b.RandomBestScore ||
		a.Evals != b.Evals {
		t.Fatalf("search not deterministic:\n%+v\n%+v", a, b)
	}
	if !a.ReplayIdentical {
		t.Fatal("worst schedule did not replay bit-identically")
	}
	if a.Worst.Faults != "" && !a.Worst.Adversarial {
		t.Fatal("worst scenario not marked adversarial")
	}
	if a.BaseScore <= 0 {
		t.Fatalf("base score %.2f, want > 0", a.BaseScore)
	}
	// The worst schedule can never score below the fault-free base on
	// either metric: faults only add energy and time.
	if a.WorstScore < a.BaseScore {
		t.Fatalf("worst %.2f below base %.2f", a.WorstScore, a.BaseScore)
	}
}

// TestAdversarySchedulesAlwaysValid: every schedule the search can
// propose — random draws, heuristic starts, long mutation chains —
// renders to a spec that faults.ParseSpec accepts, within budget and
// window caps. Pure schedule manipulation, no missions.
func TestAdversarySchedulesAlwaysValid(t *testing.T) {
	const maxTDs, budDs, maxWindows = 900, 225, 4 // 90 s mission, 22.5 s budget
	check := func(ws []advWindow, origin string) {
		t.Helper()
		spec := renderAdvSpec(ws)
		if spec == "" {
			return
		}
		if _, err := faults.ParseSpec(spec); err != nil {
			t.Fatalf("%s produced invalid spec %q: %v", origin, spec, err)
		}
		if d := totalDs(ws); d > budDs {
			t.Fatalf("%s blew the budget: %d ds > %d ds (%q)", origin, d, budDs, spec)
		}
		if len(ws) > maxWindows {
			t.Fatalf("%s has %d windows, cap %d (%q)", origin, len(ws), maxWindows, spec)
		}
	}

	for _, ws := range heuristicSchedules(maxTDs, budDs, maxWindows) {
		check(ws, "heuristic")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		check(randomSchedule(rng, maxTDs, budDs, maxWindows), "randomSchedule")
	}
	ws := randomSchedule(rng, maxTDs, budDs, maxWindows)
	for i := 0; i < 500; i++ {
		ws = mutateSchedule(rng, ws, maxTDs, budDs, maxWindows)
		check(ws, "mutateSchedule")
	}
	for _, c := range shrinkCandidates(ws) {
		check(c, "shrinkCandidates")
	}
}

// TestAdversaryRespectsEvalBudget: the climb and baseline each get
// exactly Evals mission runs (plus base, shrink, and the two replay
// runs), so equal-budget comparisons stay honest.
func TestAdversaryRespectsEvalBudget(t *testing.T) {
	opts := AdversaryOpts{Seed: 5, Evals: 3, Metric: "energy"}
	res, err := FindWorstSchedule(tinyAdversaryBase(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1 base + 3 random + 3 climb + 2 replay = 9, plus whatever the
	// shrink spent.
	min := 1 + 3 + 3 + 2
	if res.Evals < min {
		t.Fatalf("evals %d, want >= %d", res.Evals, min)
	}
	if res.Metric != "energy" {
		t.Fatalf("metric %q", res.Metric)
	}
}
