package simtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"lgvoffload/internal/core"
	"lgvoffload/internal/store"
)

// checkStoreRoundTrip is the persistence invariant: recording a mission
// into the store must be non-invasive (the recorded re-run is
// byte-identical to the unrecorded primary), and what comes back off
// disk must be exactly what went in — the scenario JSON, the Result
// summary, and bookkeeping consistent with the persisted tick series.
// Costs one extra full run (the recorded replay).
func checkStoreRoundTrip(o *Outcome) error {
	dir, err := os.MkdirTemp("", "lgv-storeinv-")
	if err != nil {
		return fmt.Errorf("temp dir: %w", err)
	}
	defer os.RemoveAll(dir)

	scJSON, err := json.Marshal(o.Scenario)
	if err != nil {
		return fmt.Errorf("scenario marshal: %w", err)
	}
	path := filepath.Join(dir, "mission.lgvstore")
	st, err := store.Open(path)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	rec, err := st.Begin(store.MissionStart{
		Label:      "simtest",
		Seed:       o.Scenario.Seed,
		Workload:   o.Scenario.Workload,
		Deploy:     o.Scenario.Deploy.Mode,
		Goal:       o.Scenario.Deploy.Goal,
		Threads:    o.Scenario.Deploy.Threads,
		FaultSpec:  o.Scenario.Faults,
		MaxSimTime: o.Scenario.MaxSimTime,
		Scenario:   scJSON,
	})
	if err != nil {
		st.Close()
		return fmt.Errorf("begin: %w", err)
	}
	id := rec.ID()

	o2, err := runScenario(o.Scenario, rec)
	if err != nil {
		rec.Abandon()
		st.Close()
		return fmt.Errorf("recorded re-run errored: %w", err)
	}
	if !bytes.Equal(o.Canon, o2.Canon) {
		rec.Abandon()
		st.Close()
		return fmt.Errorf("recording perturbed the mission: %s", firstDiff(o.Canon, o2.Canon))
	}
	want := core.StoreSummary(o2.Res)
	if err := rec.Finish(want); err != nil {
		st.Close()
		return fmt.Errorf("finish: %w", err)
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}

	// Reopen cold — everything below must survive the disk round trip.
	st2, err := store.Open(path)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer st2.Close()
	if tb := st2.Stats().TruncatedBytes; tb != 0 {
		return fmt.Errorf("clean close left a torn tail: %d bytes truncated on reopen", tb)
	}
	md, err := st2.ReadMission(id)
	if err != nil {
		return fmt.Errorf("read mission %s: %w", id, err)
	}
	if md.End == nil {
		return fmt.Errorf("mission %s came back unfinished after Finish", id)
	}
	if !bytes.Equal([]byte(md.Start.Scenario), scJSON) {
		return fmt.Errorf("stored scenario JSON diverged: %s",
			firstDiff([]byte(md.Start.Scenario), scJSON))
	}

	// Summary round trip: the stored MissionEnd minus recorder
	// bookkeeping (and the store-assigned ID) must equal the summary the
	// producer handed to Finish.
	got := md.End.WithoutBookkeeping()
	got.ID = ""
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		return fmt.Errorf("stored summary diverged: %s", firstDiff(gotJSON, wantJSON))
	}

	// Bookkeeping consistency: the index entry's counts and quantiles
	// must describe exactly the bulk records persisted next to it.
	if md.End.Ticks != len(md.Ticks) || md.End.Decisions != len(md.Decisions) ||
		md.End.Faults != len(md.Faults) || md.End.SpanRows != len(md.Spans) {
		return fmt.Errorf("index counts (ticks %d, decisions %d, faults %d, spans %d) != stored records (%d, %d, %d, %d)",
			md.End.Ticks, md.End.Decisions, md.End.Faults, md.End.SpanRows,
			len(md.Ticks), len(md.Decisions), len(md.Faults), len(md.Spans))
	}
	if len(md.Ticks) > 0 {
		vdps := make([]float64, len(md.Ticks))
		var sum float64
		for i, tk := range md.Ticks {
			vdps[i] = tk.VDP
			sum += tk.VDP
		}
		sort.Float64s(vdps)
		mean := sum / float64(len(vdps))
		for _, q := range []struct {
			name string
			got  float64
			want float64
		}{
			{"mean", md.End.VDPMean, mean},
			{"p50", md.End.VDPP50, store.Quantile(vdps, 0.50)},
			{"p95", md.End.VDPP95, store.Quantile(vdps, 0.95)},
			{"p99", md.End.VDPP99, store.Quantile(vdps, 0.99)},
		} {
			if math.Abs(q.got-q.want) > 1e-12 {
				return fmt.Errorf("index VDP %s = %g but recomputing from %d stored ticks gives %g",
					q.name, q.got, len(vdps), q.want)
			}
		}
	}
	// The engine writes one decision record per Result log entry; the
	// bounded queue may drop under pathological I/O stalls, but then
	// Dropped must say so.
	if md.End.Dropped == 0 && len(md.Decisions) != len(o2.Res.Decisions) {
		return fmt.Errorf("stored %d decisions but the Result logged %d (and Dropped=0)",
			len(md.Decisions), len(o2.Res.Decisions))
	}
	return nil
}
