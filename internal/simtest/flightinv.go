package simtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"

	"lgvoffload/internal/obs"
)

// checkFlightBundle is the black-box invariant: attaching the flight
// recorder + SLO engine must be non-invasive (the observed re-run is
// byte-identical to the bare primary), a forced breach must freeze a
// structurally valid bundle that contains the breach tick itself, and
// the whole capture must be deterministic — a second observed run
// produces the byte-identical bundle. Costs two extra full runs.
//
// The forced rule is energy_rate<=0@10s: idle power accrues every
// physics step on every mission (local or offloaded), so the windowed
// energy rate is strictly positive and the rule deterministically opens
// a few ticks after the engine's warmup — unlike a VDP-based rule,
// which never fires on all-local missions where pipeline latency is 0.
const flightForcedRule = "energy_rate<=0@10s"

func checkFlightBundle(o *Outcome) error {
	rules, err := obs.ParseSLORules(flightForcedRule)
	if err != nil {
		return fmt.Errorf("forced rule: %w", err)
	}
	observed := func() (*Outcome, *obs.FlightRecorder, *obs.SLOEngine, error) {
		// Near-zero dump spacing and a high dump cap so an early watchdog
		// or failover dump can never rate-limit the breach dump away.
		fr := obs.NewFlightRecorder(obs.FlightConfig{MinSpacing: 1e-9, MaxDumps: 1024})
		slo := obs.NewSLOEngine(rules)
		o2, err := RunScenarioObserved(o.Scenario, fr, slo)
		return o2, fr, slo, err
	}

	o1, fr1, slo1, err := observed()
	if err != nil {
		return fmt.Errorf("observed re-run errored: %w", err)
	}
	if !bytes.Equal(o.Canon, o1.Canon) {
		return fmt.Errorf("flight recorder/SLO perturbed the mission: %s", firstDiff(o.Canon, o1.Canon))
	}

	breaches := slo1.Breaches()
	if len(breaches) == 0 {
		// The rule arms after the engine warmup plus the sustain count; a
		// mission that ends before then legitimately never breaches.
		if o1.Res.TotalTime < 10 {
			return ErrSkip
		}
		return fmt.Errorf("mission ran %.1fs but the always-breaching rule %q never opened",
			o1.Res.TotalTime, flightForcedRule)
	}
	breach := breaches[0]

	b1 := bundleByReason(fr1, "slo:"+obs.SLOEnergyRate)
	if b1 == nil {
		return fmt.Errorf("breach at t=%.3f produced no slo:%s bundle (%d bundles total)",
			breach.T, obs.SLOEnergyRate, len(fr1.Bundles()))
	}
	if _, err := obs.VerifyFlightBundle(b1.Data); err != nil {
		return fmt.Errorf("bundle fails verification: %w", err)
	}
	found, err := bundleHasFrameAt(b1.Data, breach.T)
	if err != nil {
		return fmt.Errorf("bundle parse: %w", err)
	}
	if !found {
		return fmt.Errorf("bundle (reason %q, t=%.3f) is missing the breach tick t=%.3f",
			b1.Reason, b1.T, breach.T)
	}

	// Determinism: the identical observed run must freeze the identical
	// bytes. No wall time, no map order, no rng may leak into a bundle.
	_, fr2, _, err := observed()
	if err != nil {
		return fmt.Errorf("second observed run errored: %w", err)
	}
	b2 := bundleByReason(fr2, "slo:"+obs.SLOEnergyRate)
	if b2 == nil {
		return fmt.Errorf("second run produced no slo:%s bundle", obs.SLOEnergyRate)
	}
	if !bytes.Equal(b1.Data, b2.Data) {
		return fmt.Errorf("flight bundle is not deterministic: %s", firstDiff(b1.Data, b2.Data))
	}
	return nil
}

// bundleByReason returns the recorder's first bundle with the given
// trigger reason, or nil.
func bundleByReason(fr *obs.FlightRecorder, reason string) *obs.FlightBundle {
	for _, b := range fr.Bundles() {
		if b.Reason == reason {
			return b
		}
	}
	return nil
}

// bundleHasFrameAt reports whether the bundle's JSONL body contains a
// frame at exactly virtual time t.
func bundleHasFrameAt(data []byte, t float64) (bool, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		if first {
			first = false // header line
			continue
		}
		var row struct {
			Frame *obs.FlightFrame `json:"frame"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return false, err
		}
		if row.Frame != nil && row.Frame.T == t {
			return true, nil
		}
	}
	return false, sc.Err()
}
