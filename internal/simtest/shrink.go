package simtest

import (
	"strings"
)

// ShrinkResult is the outcome of minimizing a violating scenario.
type ShrinkResult struct {
	Scenario Scenario `json:"scenario"`
	// Error is the invariant failure message on the minimized scenario.
	Error string `json:"error"`
	Steps int    `json:"steps"` // reductions that stuck
	Runs  int    `json:"runs"`  // mission runs spent shrinking
}

// Shrink greedily minimizes a scenario that violates inv, spending at
// most budget invariant re-checks. Each pass proposes reductions from
// most to least aggressive — drop the whole fault schedule, bisect it,
// drop single windows, truncate the mission, collapse the fleet, drop
// waypoints, shrink pipeline sizes — and keeps any candidate that
// still violates; it stops when a full pass yields no progress.
func Shrink(sc Scenario, inv Invariant, budget int) ShrinkResult {
	if budget <= 0 {
		budget = 48
	}
	curErr, ok := violates(sc, inv)
	res := ShrinkResult{Scenario: sc, Error: curErr, Runs: 1 + inv.ExtraRuns}
	if !ok {
		return res // not actually violating; nothing to do
	}
	for {
		improved := false
		for _, cand := range reductions(res.Scenario) {
			if res.Runs >= budget {
				return res
			}
			res.Runs += 1 + inv.ExtraRuns
			if msg, still := violates(cand, inv); still {
				res.Scenario = cand
				res.Error = msg
				res.Steps++
				improved = true
				break // restart the pass from the most aggressive reduction
			}
		}
		if !improved {
			return res
		}
	}
}

// reductions proposes candidate simplifications, most aggressive first.
func reductions(sc Scenario) []Scenario {
	var out []Scenario
	add := func(f func(*Scenario)) {
		c := sc
		// Deep-copy the slices a reduction may mutate.
		c.Waypoints = append([][2]float64(nil), sc.Waypoints...)
		c.Link.WAPs = append([][2]float64(nil), sc.Link.WAPs...)
		f(&c)
		out = append(out, c)
	}

	windows := splitSpec(sc.Faults)
	if len(windows) > 0 {
		add(func(c *Scenario) { c.Faults = "" })
	}
	if len(windows) > 1 {
		half := len(windows) / 2
		add(func(c *Scenario) { c.Faults = strings.Join(windows[:half], ";") })
		add(func(c *Scenario) { c.Faults = strings.Join(windows[half:], ";") })
		for i := range windows {
			i := i
			add(func(c *Scenario) {
				rest := append(append([]string(nil), windows[:i]...), windows[i+1:]...)
				c.Faults = strings.Join(rest, ";")
			})
		}
	}
	if sc.MaxSimTime > 20 {
		add(func(c *Scenario) { c.MaxSimTime = max2(20, c.MaxSimTime/2) })
	}
	if sc.Fleet > 1 {
		add(func(c *Scenario) { c.Fleet = 1 })
		if sc.Fleet > 3 {
			add(func(c *Scenario) { c.Fleet = c.Fleet / 2 })
		}
	}
	if len(sc.Waypoints) > 0 {
		add(func(c *Scenario) { c.Waypoints = nil })
	}
	if len(sc.Link.WAPs) > 0 {
		// Collapse roaming to the primary WAP, then try halving the AP set.
		add(func(c *Scenario) { c.Link.WAPs = nil })
		if len(sc.Link.WAPs) > 1 {
			add(func(c *Scenario) { c.Link.WAPs = c.Link.WAPs[:len(c.Link.WAPs)/2] })
		}
	}
	if sc.Link.Profile == "trace" {
		// Swap trace replay for the plain analytic fade model.
		add(func(c *Scenario) { c.Link.Profile = "fade"; c.Link.Trace = "" })
	}
	if sc.World.Kind == "clutter" && sc.World.Obstacles > 0 {
		add(func(c *Scenario) { c.World.Obstacles = 0; c.World.Kind = "empty" })
		if sc.World.Obstacles > 1 {
			add(func(c *Scenario) { c.World.Obstacles = c.World.Obstacles / 2 })
		}
	}
	if sc.TrackerSamples > 200 {
		add(func(c *Scenario) { c.TrackerSamples = 200 })
	}
	if sc.SlamParticles > 10 {
		add(func(c *Scenario) { c.SlamParticles = 10 })
	}
	if sc.Deploy.Threads > 1 {
		add(func(c *Scenario) { c.Deploy.Threads = 1 })
	}
	return out
}

func splitSpec(spec string) []string {
	if spec == "" {
		return nil
	}
	return strings.Split(spec, ";")
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
