package simtest

import (
	"math"
	"math/rand"

	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/world"
)

// Generate samples one scenario from the matrix, deterministically from
// the campaign seed: the same seed always yields the same scenario, and
// the mission itself is seeded from it, so a whole campaign is
// reproducible from its starting seed alone.
//
// The sampler covers the cross-product the tentpole asks for: worlds
// (lab / obstacle course / generated empty / generated clutter), fault
// schedules over all six internal/faults kinds, goals EC and MCT, fleet
// sizes through fleet.ShareServer, thread counts, and bandwidth/velocity
// profiles. Start and goal poses are rejection-sampled against the
// robot footprint so every scenario is at least physically placeable.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed}

	// Workload mix: navigation dominates (it is the paper's primary
	// pipeline), exploration and coverage keep SLAM and boustrophedon
	// planning in the loop.
	switch p := rng.Float64(); {
	case p < 0.55:
		sc.Workload = "navigation"
	case p < 0.80:
		sc.Workload = "coverage"
	default:
		sc.Workload = "exploration"
	}

	sc.World = sampleWorld(rng, sc.Workload)
	m, err := sc.World.Build()
	if err != nil {
		panic("simtest: generator built invalid world: " + err.Error())
	}
	samplePoses(rng, m, &sc)

	sc.Deploy = sampleDeploy(rng)
	if sc.Deploy.Mode != "local" && rng.Float64() < 0.35 {
		sc.Fleet = []int{2, 3, 5, 9, 24}[rng.Intn(5)]
	} else {
		sc.Fleet = 1
	}

	sc.Link = sampleLink(rng, m, sc)
	sc.Faults = sampleFaults(rng, sc.MaxSimTime)

	// Velocity and pipeline-size profiles.
	sc.VCeil = []float64{0, 0.5, 0.8}[rng.Intn(3)] // 0 = default 1.0
	sc.TrackerSamples = []int{200, 500, 1000}[rng.Intn(3)]
	if sc.Workload == "exploration" {
		sc.SlamParticles = []int{10, 20, 30}[rng.Intn(3)]
	}
	return sc
}

func sampleWorld(rng *rand.Rand, workload string) WorldSpec {
	if workload == "exploration" {
		// Exploration maps the world from scratch; keep rooms small so
		// the SLAM loop terminates well inside MaxSimTime.
		w := WorldSpec{Kind: "empty", W: 5 + rng.Float64()*2, H: 4 + rng.Float64(), Res: 0.05}
		if rng.Float64() < 0.5 {
			w.Kind = "clutter"
			w.Obstacles = 2 + rng.Intn(4)
			w.Seed = rng.Int63()
		}
		return w
	}
	switch p := rng.Float64(); {
	case p < 0.30:
		return WorldSpec{Kind: "lab"}
	case p < 0.40:
		return WorldSpec{Kind: "course"}
	case p < 0.65:
		return WorldSpec{Kind: "empty", W: 6 + rng.Float64()*4, H: 4 + rng.Float64()*2, Res: 0.05}
	default:
		return WorldSpec{
			Kind: "clutter", W: 6 + rng.Float64()*4, H: 4 + rng.Float64()*2,
			Res: 0.05, Obstacles: 3 + rng.Intn(6), Seed: rng.Int63(),
		}
	}
}

// samplePoses fills start/goal (and sometimes patrol waypoints) with
// collision-free positions a useful distance apart.
func samplePoses(rng *rand.Rand, m *grid.Map, sc *Scenario) {
	radius := world.Turtlebot3().Radius + 0.1 // margin over the footprint
	start := sampleFree(rng, m, radius, geom.Vec2{}, 0)
	goal := sampleFree(rng, m, radius, start, 2.5)
	sc.StartX, sc.StartY = start.X, start.Y
	sc.StartTheta = rng.Float64() * 6.28
	sc.GoalX, sc.GoalY = goal.X, goal.Y
	if sc.Workload == "navigation" && rng.Float64() < 0.25 {
		// Patrol mission: one or two intermediate stops.
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			wp := sampleFree(rng, m, radius, start, 1.0)
			sc.Waypoints = append(sc.Waypoints, [2]float64{wp.X, wp.Y})
		}
	}
	sc.MaxSimTime = sampleSimTime(rng, sc.Workload)
}

func sampleSimTime(rng *rand.Rand, workload string) float64 {
	base := 60.0
	if workload != "navigation" {
		base = 90 // coverage/exploration visit the whole map
	}
	return base + float64(rng.Intn(4))*15
}

// sampleFree rejection-samples a footprint-clear position at least
// minDist from ref. It always terminates: after a bounded number of
// tries it falls back to the best (farthest) candidate seen, collision
// checked or not — the engine itself rejects truly invalid poses and
// the evaluator treats that as a skip, not a violation.
func sampleFree(rng *rand.Rand, m *grid.Map, radius float64, ref geom.Vec2, minDist float64) geom.Vec2 {
	wMeters := float64(m.Width) * m.Resolution
	hMeters := float64(m.Height) * m.Resolution
	best := geom.V(wMeters/2, hMeters/2)
	bestDist := -1.0
	for i := 0; i < 200; i++ {
		p := geom.V(0.4+rng.Float64()*(wMeters-0.8), 0.4+rng.Float64()*(hMeters-0.8))
		if world.FootprintCollides(m, p, radius) {
			continue
		}
		d := dist(p, ref)
		if d >= minDist {
			return p
		}
		if d > bestDist {
			best, bestDist = p, d
		}
	}
	return best
}

func dist(a, b geom.Vec2) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func sampleDeploy(rng *rand.Rand) DeploySpec {
	threads := []int{1, 2, 4, 8}[rng.Intn(4)]
	switch p := rng.Float64(); {
	case p < 0.15:
		return DeploySpec{Mode: "local", Threads: 1}
	case p < 0.28:
		return DeploySpec{Mode: "edge", Threads: threads}
	case p < 0.40:
		return DeploySpec{Mode: "cloud", Threads: threads}
	default:
		d := DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "mct", Threads: threads}
		if rng.Float64() < 0.4 {
			d.Remote = "cloud"
		}
		if rng.Float64() < 0.5 {
			d.Goal = "ec"
		}
		return d
	}
}

func sampleLink(rng *rand.Rand, m *grid.Map, sc Scenario) LinkSpec {
	profile := []string{"good", "good", "fade", "fade", "deadzone", "interference", "trace"}[rng.Intn(7)]
	// WAP near the start keeps fade profiles interesting (signal decays
	// as the mission progresses); an occasional far corner stresses the
	// whole-mission weak-signal regime.
	wMeters := float64(m.Width) * m.Resolution
	hMeters := float64(m.Height) * m.Resolution
	wx, wy := sc.StartX, sc.StartY
	if rng.Float64() < 0.3 {
		wx, wy = wMeters*rng.Float64(), hMeters*rng.Float64()
	}
	ls := LinkSpec{Profile: profile, WAPX: roundCm(wx), WAPY: roundCm(wy)}
	switch profile {
	case "trace":
		names := netsim.BuiltinTraceNames()
		ls.Trace = names[rng.Intn(len(names))]
	case "fade", "deadzone", "interference":
		// Multi-WAP roaming: extra APs scattered over the map so mission
		// traversals hand off. "good" stays single-AP — it promises full
		// signal everywhere (HighBandwidth), which roaming dips would
		// break — and trace replay overrides distance fade entirely.
		if rng.Float64() < 0.35 {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				ls.WAPs = append(ls.WAPs, [2]float64{
					roundCm(wMeters * rng.Float64()), roundCm(hMeters * rng.Float64())})
			}
		}
	}
	return ls
}

func roundCm(v float64) float64 { return float64(int(v*100)) / 100 }

// sampleFaults renders a fault spec string with 0–3 windows across all
// six kinds. Roughly half of all scenarios run fault-free so the
// clean-path invariants (EC dominance, zero fault-attributed drops) get
// steady coverage. faults.Validate rejects same-kind overlapping
// windows, so when a sampled window would collide with an earlier
// window of its kind the generator rotates to the next kind — a
// deterministic adjustment that costs no rng draws.
func sampleFaults(rng *rand.Rand, maxSimTime float64) string {
	if rng.Float64() < 0.45 {
		return ""
	}
	kinds := []string{"wap", "server", "burst", "corrupt", "partup", "partdown"}
	type span struct{ t0, t1 float64 }
	used := make(map[string][]span)
	overlaps := func(kind string, t0, t1 float64) bool {
		for _, u := range used[kind] {
			if t0 < u.t1 && u.t0 < t1 {
				return true
			}
		}
		return false
	}
	n := 1 + rng.Intn(3)
	spec := ""
	for i := 0; i < n; i++ {
		ki := rng.Intn(len(kinds))
		t0 := 3 + rng.Float64()*maxSimTime*0.5
		dur := 2 + rng.Float64()*8
		// Overlap on the *rendered* (0.1 s-trimmed) bounds — those are
		// what ParseSpec validates. With ≤ 2 prior windows and 6 kinds
		// the rotation always finds a free lane.
		rt0 := float64(int(t0*10)) / 10
		rt1 := float64(int((t0+dur)*10)) / 10
		for overlaps(kinds[ki], rt0, rt1) {
			ki = (ki + 1) % len(kinds)
		}
		kind := kinds[ki]
		used[kind] = append(used[kind], span{rt0, rt1})
		s := kind + ":" + trimFloat(t0) + "-" + trimFloat(t0+dur)
		if (kind == "burst" || kind == "corrupt") && rng.Float64() < 0.7 {
			s += ":" + trimFloat(0.3+rng.Float64()*0.6)
		}
		if spec != "" {
			spec += ";"
		}
		spec += s
	}
	return spec
}

// trimFloat renders a time with 0.1 s resolution so specs stay short
// and round-trip exactly through ParseSpec/String.
func trimFloat(v float64) string {
	i := int(v * 10)
	whole, frac := i/10, i%10
	if frac == 0 {
		return itoa(whole)
	}
	return itoa(whole) + "." + itoa(frac)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
