package simtest

import "errors"

// Options controls which expensive invariants Evaluate runs.
type Options struct {
	// Matrix enables the 8-configuration kernel thread×partition
	// determinism sweep (8 extra mission runs per scenario).
	Matrix bool
	// Sched enables the sched-fair control-plane invariant (runs the
	// scenario plus two seed variants through a concurrent scheduler and
	// again solo — several extra mission runs per scenario).
	Sched bool
}

// Violation is one failed invariant on one scenario.
type Violation struct {
	Invariant string `json:"invariant"`
	Error     string `json:"error"`
}

// Report summarizes one scenario evaluation.
type Report struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations,omitempty"`
	Checked    []string    `json:"checked"`
	Skipped    []string    `json:"skipped,omitempty"`
	// Runs counts full mission executions consumed (1 + extra runs of
	// the expensive invariants that actually ran).
	Runs int `json:"runs"`
}

// Evaluate runs the scenario once and checks every applicable
// invariant against the outcome. A scenario the engine itself rejects
// (e.g. a sampled pose that is unreachable for setup reasons) returns
// an error, which campaigns count separately from violations.
func Evaluate(sc Scenario, opts Options) (*Report, error) {
	return evaluateWith(sc, Invariants(), opts)
}

func isSkip(err error) bool { return errors.Is(err, ErrSkip) }

// violates re-runs a single invariant against a (candidate) scenario;
// the shrinker uses it to test whether a reduction preserves the
// failure. Scenarios the engine rejects do not violate.
func violates(sc Scenario, inv Invariant) (string, bool) {
	o, err := RunScenario(sc)
	if err != nil {
		return "", false
	}
	if err := inv.Check(o); err != nil && !errors.Is(err, ErrSkip) {
		return err.Error(), true
	}
	return "", false
}
