package simtest

import (
	"bytes"
	"fmt"
	"time"

	"lgvoffload/internal/core"
	"lgvoffload/internal/serve"
	"lgvoffload/internal/spans"
	"lgvoffload/internal/store"
)

// sched-fair invariant: the mission control plane (internal/serve) is a
// pure multiplexer. With K missions admitted and max-running < K it
// must (a) dispatch in admission order, (b) starve no running mission —
// the slices of other missions between two consecutive slices of any
// one mission stay bounded by the ring size — and (c) change nothing
// about the missions themselves: every multiplexed Result is
// byte-identical (Canonical) to the same scenario run solo through
// RunScenario. Gated behind Options.Sched / CampaignOpts.SchedEvery
// because it costs schedFairK-1 solo runs plus schedFairK scheduler
// runs per scenario.
const (
	schedFairK          = 3
	schedFairMaxRunning = 2
	// schedFairSliceSteps is deliberately small so even short missions
	// get preempted many times — interleaving is the thing under test.
	schedFairSliceSteps = 64
	// schedFairGapSlack covers executor-interleaving skew on top of the
	// structural MaxRunning-1 round-robin bound.
	schedFairGapSlack = 2
)

// schedVariant derives the i-th admitted scenario: the same mission
// shape with a shifted rng seed, so the scheduler is multiplexing
// genuinely different trajectories.
func schedVariant(sc Scenario, i int) Scenario {
	sc.Seed += int64(1000 * i)
	return sc
}

// schedMission builds the variant's config with the same observability
// shape RunScenario uses (tracer attached, trace recorded), so its
// Canonical bytes are comparable to a solo run's.
func schedMission(sc Scenario) (core.MissionConfig, error) {
	c, err := sc.Mission()
	if err != nil {
		return c, err
	}
	maxT := c.MaxSimTime
	if maxT == 0 {
		maxT = 240
	}
	c.Tracer = spans.NewTracer(int(maxT/0.2)*32 + 4096)
	c.RecordTrace = true
	return c, nil
}

func checkSchedFair(o *Outcome) error {
	scs := make([]Scenario, schedFairK)
	for i := range scs {
		scs[i] = schedVariant(o.Scenario, i)
	}

	// Solo baselines. Variant 0 is the outcome's own run — its canonical
	// bytes come free.
	solo := make([][]byte, schedFairK)
	solo[0] = o.Canon
	for i := 1; i < schedFairK; i++ {
		so, err := RunScenario(scs[i])
		if err != nil {
			return fmt.Errorf("solo variant %d: %w", i, err)
		}
		solo[i] = so.Canon
	}

	// Workers is pinned to 1 so slice-sequence gaps measure pure
	// round-robin order: with parallel executors a long slice of one
	// mission legitimately overlaps many short slices of another,
	// unbounding the counter without any starvation. Parallel stepping
	// is exercised by the serve package's own API and soak tests.
	s := serve.New(serve.Config{
		MaxRunning:    schedFairMaxRunning,
		Workers:       1,
		SliceSteps:    schedFairSliceSteps,
		RetainResults: schedFairK,
	})
	defer s.Shutdown(false, 30*time.Second)

	ids := make([]string, schedFairK)
	for i, sc := range scs {
		cfg, err := schedMission(sc)
		if err != nil {
			return fmt.Errorf("variant %d config: %w", i, err)
		}
		id, err := s.SubmitConfig(cfg, store.MissionStart{Label: sc.Label(), Seed: sc.Seed})
		if err != nil {
			return fmt.Errorf("admit variant %d: %w", i, err)
		}
		ids[i] = id
	}

	for i, id := range ids {
		state, err := s.Wait(id)
		if err != nil {
			return fmt.Errorf("wait %s: %w", id, err)
		}
		if state != serve.StateDone {
			st, _ := s.Status(id)
			return fmt.Errorf("mission %d (%s) ended %s (%s), want done", i, id, state, st.Reason)
		}
	}

	// (a) FIFO dispatch: missions leave the queue in admission order.
	disp := s.DispatchOrder()
	if len(disp) != len(ids) {
		return fmt.Errorf("dispatched %d missions, admitted %d", len(disp), len(ids))
	}
	for i := range ids {
		if disp[i] != ids[i] {
			return fmt.Errorf("dispatch order %v != admission order %v", disp, ids)
		}
	}

	// (b) No starvation: the worst gap between consecutive slices of any
	// mission is bounded by the run-ring size (+ executor skew).
	stats := s.Stats()
	if stats.Slices < uint64(schedFairK)*2 {
		return fmt.Errorf("only %d slices for %d missions — scheduler did not interleave", stats.Slices, schedFairK)
	}
	if limit := uint64(schedFairMaxRunning + schedFairGapSlack); stats.MaxSliceGap > limit {
		return fmt.Errorf("max slice gap %d exceeds fairness bound %d (a mission starved)",
			stats.MaxSliceGap, limit)
	}

	// (c) Byte identity with the solo runs.
	for i, id := range ids {
		res, err := s.Result(id)
		if err != nil {
			return fmt.Errorf("result %s: %w", id, err)
		}
		if got := Canonical(res); !bytes.Equal(got, solo[i]) {
			return fmt.Errorf("variant %d multiplexed result differs from solo run at %s",
				i, firstDiff(solo[i], got))
		}
	}
	return nil
}
