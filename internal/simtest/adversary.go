package simtest

import (
	"bytes"
	"fmt"
	"math/rand"

	"lgvoffload/internal/obs"
)

// The fault-schedule adversary: a seeded hill-climber over
// internal/faults schedules that searches for the windows the adaptive
// stack handles worst. It mutates window kinds, offsets, and durations
// under a fault-budget constraint (total injected seconds) and scores
// each candidate by running the full mission — watchdog, failover,
// handoff freeze and all — so what it maximizes is exactly the
// end-to-end damage the controller failed to absorb.
//
// Everything is deterministic from (base scenario, AdversaryOpts): the
// search rng is seeded, mission runs are seeded by the scenario, and
// schedules are rendered on a 0.1 s grid so spec strings round-trip
// exactly. The worst schedule found is therefore a replayable artifact,
// not a one-off observation.

// DefaultAdversaryBase is a mission where fault placement matters:
// adaptive offload over a fading link, with enough mission length that
// the schedule has room to hit the controller at its worst moment.
// Generated scenarios (Generate) work too, but many of them are
// local-mode or high-bandwidth and give the adversary nothing to break.
func DefaultAdversaryBase(seed int64) Scenario {
	return Scenario{
		Seed:     seed,
		Workload: "navigation",
		World:    WorldSpec{Kind: "empty", W: 6, H: 4, Res: 0.05},
		StartX:   1.0, StartY: 1.0,
		GoalX: 5.0, GoalY: 3.0,
		// The patrol waypoints keep the mission running well past a single
		// failover hold, so a schedule that re-trips failover just as the
		// controller recovers compounds — the structure a random baseline
		// almost never lines up.
		Waypoints:      [][2]float64{{5.0, 1.0}, {1.0, 3.0}},
		Deploy:         DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "ec", Threads: 4},
		Fleet:          1,
		Link:           LinkSpec{Profile: "fade", WAPX: 1.0, WAPY: 1.0},
		MaxSimTime:     120,
		TrackerSamples: 500,
	}
}

// AdversaryOpts configures the search.
type AdversaryOpts struct {
	// Seed drives the search rng (mutation choices, random baseline).
	// Independent of the mission seed inside the scenario.
	Seed int64
	// Evals is the mission-evaluation budget for the hill-climb. The
	// random baseline gets the same number, so reported improvements are
	// equal-budget comparisons. Default 40.
	Evals int
	// Metric is "energy" (mission TotalEnergy, default) or "time"
	// (TotalTime — a timed-out mission scores MaxSimTime, the worst case).
	Metric string
	// BudgetFrac caps the schedule's total window seconds at this
	// fraction of MaxSimTime. Default 0.25.
	BudgetFrac float64
	// MaxWindows caps the number of windows in a schedule. Default 4.
	MaxWindows int
	// Sink, when non-nil, receives adversary progress metrics.
	Sink obs.Sink
	// Logf, when non-nil, receives one line per improvement.
	Logf func(format string, args ...any)
}

func (o *AdversaryOpts) fill() {
	if o.Evals <= 0 {
		o.Evals = 40
	}
	if o.Metric == "" {
		o.Metric = "energy"
	}
	if o.BudgetFrac <= 0 {
		o.BudgetFrac = 0.25
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 4
	}
}

// AdversaryResult is the outcome of one search.
type AdversaryResult struct {
	// Base is the fault-free scenario the schedules were injected into.
	Base Scenario `json:"base"`
	// BaseScore is the metric with no faults at all.
	BaseScore float64 `json:"base_score"`

	// Worst is Base plus the worst schedule found by the hill-climb,
	// marked Adversarial for the adversarial-replay invariant.
	Worst      Scenario `json:"worst"`
	WorstScore float64  `json:"worst_score"`

	// RandomBest is the best schedule an equal-budget random search
	// found, the baseline the climb must beat.
	RandomBest      Scenario `json:"random_best"`
	RandomBestScore float64  `json:"random_best_score"`

	Metric string `json:"metric"`
	// Evals counts every mission run spent (baseline + climb + shrink).
	Evals int `json:"evals"`
	// Improvements counts accepted hill-climb steps.
	Improvements int `json:"improvements"`
	// ShrinkSteps counts windows removed/shortened by the final
	// score-preserving shrink.
	ShrinkSteps int `json:"shrink_steps"`
	// ReplayIdentical reports whether re-running Worst reproduced the
	// byte-identical canonical result.
	ReplayIdentical bool `json:"replay_identical"`
}

// Gain returns the relative damage of the worst schedule over the best
// random schedule: (worst - base) / (randomBest - base) - 1. Positive
// means the adversary found strictly more damage than equal-budget
// random search. When random found no damage at all the gain is
// reported against the base score instead.
func (r *AdversaryResult) Gain() float64 {
	advDmg := r.WorstScore - r.BaseScore
	rndDmg := r.RandomBestScore - r.BaseScore
	if rndDmg <= 0 {
		if advDmg <= 0 {
			return 0
		}
		return advDmg / r.BaseScore
	}
	return advDmg/rndDmg - 1
}

// FindWorstSchedule runs the adversarial search against base. The base
// scenario's own fault schedule is stripped first: the adversary owns
// the fault budget.
func FindWorstSchedule(base Scenario, opts AdversaryOpts) (*AdversaryResult, error) {
	opts.fill()
	base.Faults = ""
	base.Adversarial = false
	maxT := base.MaxSimTime
	if maxT == 0 {
		maxT = 240
	}
	// All schedule arithmetic runs in integer deciseconds so budget and
	// overlap checks are exact and match the rendered spec bit-for-bit.
	maxTDs := int(maxT * 10)
	budDs := int(opts.BudgetFrac * maxT * 10)
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &AdversaryResult{Base: base, Metric: opts.Metric}

	score := func(ws []advWindow) (float64, error) {
		sc := base
		sc.Faults = renderAdvSpec(ws)
		o, err := RunScenario(sc)
		if err != nil {
			return 0, err
		}
		res.Evals++
		if opts.Sink != nil {
			opts.Sink.Count(obs.MAdvEvals, "", 1)
		}
		if opts.Metric == "time" {
			return o.Res.TotalTime, nil
		}
		return o.Res.TotalEnergy, nil
	}

	baseScore, err := score(nil)
	if err != nil {
		return nil, fmt.Errorf("simtest: base scenario does not run: %w", err)
	}
	res.BaseScore = baseScore

	// Equal-budget random baseline: opts.Evals independent schedules.
	var rndBest []advWindow
	rndBestScore := baseScore
	for i := 0; i < opts.Evals; i++ {
		ws := randomSchedule(rng, maxTDs, budDs, opts.MaxWindows)
		s, err := score(ws)
		if err != nil {
			return nil, err
		}
		if s > rndBestScore {
			rndBest, rndBestScore = ws, s
		}
	}
	res.RandomBest = base
	res.RandomBest.Faults = renderAdvSpec(rndBest)
	res.RandomBestScore = rndBestScore

	// Hill-climb, on its own fresh draws (NOT the baseline's best — the
	// comparison must stay equal-budget). The climber spends the first
	// quarter of its budget on best-of-k initialization and the rest on
	// mutations, keeping any candidate that scores strictly higher.
	init := opts.Evals / 4
	if init < 1 {
		init = 1
	}
	starts := heuristicSchedules(maxTDs, budDs, opts.MaxWindows)
	var cur []advWindow
	curScore := baseScore - 1 // any schedule beats the sentinel
	for i := 0; i < init; i++ {
		var ws []advWindow
		if i < len(starts) {
			ws = starts[i]
		} else {
			ws = randomSchedule(rng, maxTDs, budDs, opts.MaxWindows)
		}
		s, err := score(ws)
		if err != nil {
			return nil, err
		}
		if s > curScore {
			cur, curScore = ws, s
		}
	}
	for i := init; i < opts.Evals; i++ {
		cand := mutateSchedule(rng, cur, maxTDs, budDs, opts.MaxWindows)
		s, err := score(cand)
		if err != nil {
			return nil, err
		}
		if s > curScore {
			cur, curScore = cand, s
			res.Improvements++
			if opts.Sink != nil {
				opts.Sink.SetGauge(obs.MAdvWorstScore, "", curScore)
			}
			if opts.Logf != nil {
				opts.Logf("adv: eval %d/%d improved %s to %.1f with %q",
					i+1, opts.Evals, opts.Metric, curScore, renderAdvSpec(cand))
			}
		}
	}

	// Score-preserving shrink: drop or shorten windows while at least
	// 99% of the damage survives — the minimal schedule is the useful
	// repro artifact. WorstScore reports the final schedule's own score,
	// not the pre-shrink peak.
	floor := baseScore + 0.99*(curScore-baseScore)
	for {
		shrunk := false
		for _, cand := range shrinkCandidates(cur) {
			s, err := score(cand)
			if err != nil {
				return nil, err
			}
			if s >= floor {
				cur, curScore = cand, s
				res.ShrinkSteps++
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}

	res.Worst = base
	res.Worst.Faults = renderAdvSpec(cur)
	res.Worst.Adversarial = res.Worst.Faults != ""
	res.WorstScore = curScore

	// Deterministic replay of the worst schedule: two fresh runs must be
	// byte-identical.
	o1, err := RunScenario(res.Worst)
	if err != nil {
		return nil, err
	}
	o2, err := RunScenario(res.Worst)
	if err != nil {
		return nil, err
	}
	res.Evals += 2
	res.ReplayIdentical = bytes.Equal(o1.Canon, o2.Canon)
	return res, nil
}

// advWindow is one fault window in integer deciseconds (0.1 s units),
// so budget and overlap arithmetic is exact and the rendered spec
// round-trips through faults.ParseSpec without float drift.
type advWindow struct {
	kind   string
	t0, t1 int // deciseconds
	p10    int // loss/corrupt probability in tenths; 0 = always-on
}

var advKinds = []string{"wap", "server", "burst", "corrupt", "partup", "partdown"}

// fmtDs renders a decisecond count as the shortest decimal ("12", "4.5").
func fmtDs(ds int) string {
	if ds%10 == 0 {
		return itoa(ds / 10)
	}
	return itoa(ds/10) + "." + itoa(ds%10)
}

// renderAdvSpec renders windows as a faults.ParseSpec string.
func renderAdvSpec(ws []advWindow) string {
	spec := ""
	for _, w := range ws {
		s := w.kind + ":" + fmtDs(w.t0) + "-" + fmtDs(w.t1)
		if (w.kind == "burst" || w.kind == "corrupt") && w.p10 > 0 && w.p10 < 10 {
			s += ":" + fmtDs(w.p10)
		}
		if spec != "" {
			spec += ";"
		}
		spec += s
	}
	return spec
}

func totalDs(ws []advWindow) int {
	d := 0
	for _, w := range ws {
		d += w.t1 - w.t0
	}
	return d
}

func overlapsSameKind(ws []advWindow, kind string, t0, t1, skip int) bool {
	for i, w := range ws {
		if i == skip || w.kind != kind {
			continue
		}
		if t0 < w.t1 && w.t0 < t1 {
			return true
		}
	}
	return false
}

func sampleP10(rng *rand.Rand) int { return 3 + rng.Intn(7) } // 0.3 .. 0.9

// sampleWindow draws one window within the remaining budget, rotating
// kinds to dodge same-kind overlaps (same trick as the generator).
// Windows start at t >= 1 s and are at least 0.5 s long.
func sampleWindow(rng *rand.Rand, ws []advWindow, maxTDs, remDs int) (advWindow, bool) {
	if remDs < 5 {
		return advWindow{}, false
	}
	dur := 5 + rng.Intn(remDs-4)
	if dur > maxTDs-11 {
		dur = maxTDs - 11
	}
	if dur < 5 {
		return advWindow{}, false
	}
	t0 := 10 + rng.Intn(maxTDs-dur-10+1)
	t1 := t0 + dur
	ki := rng.Intn(len(advKinds))
	for tries := 0; overlapsSameKind(ws, advKinds[ki], t0, t1, -1); tries++ {
		if tries >= len(advKinds) {
			return advWindow{}, false
		}
		ki = (ki + 1) % len(advKinds)
	}
	w := advWindow{kind: advKinds[ki], t0: t0, t1: t1}
	if w.kind == "burst" || w.kind == "corrupt" {
		w.p10 = sampleP10(rng)
	}
	return w, true
}

// heuristicSchedules proposes strong starting points the climber
// evaluates before falling back to random init draws: full-budget
// outages of each infrastructure kind at mission start (when the
// offload pipeline is warming up and Algorithm 2 has no history), the
// same split-and-stacked across two kinds at once, a heavy burst, and
// periodic outages that re-trip failover each time the previous hold
// expires. These encode what an adversary knows about the controller;
// they still cost the climber one evaluation each, so the comparison
// against the random baseline stays equal-budget.
func heuristicSchedules(maxTDs, budDs, maxWindows int) [][]advWindow {
	clamp := func(t int) int {
		if t > maxTDs {
			return maxTDs
		}
		return t
	}
	full := func(kind string, t0 int) advWindow {
		return advWindow{kind: kind, t0: t0, t1: clamp(t0 + budDs)}
	}
	half := budDs / 2
	out := [][]advWindow{
		{full("wap", 10)},
		{full("server", 10)},
		{{kind: "wap", t0: 10, t1: clamp(10 + half)}, {kind: "server", t0: 10, t1: clamp(10 + half)}},
		{{kind: "wap", t0: 10, t1: clamp(10 + half)}, {kind: "partdown", t0: 10, t1: clamp(10 + half)}},
		{full("wap", maxTDs/3)},
		{{kind: "burst", t0: 10, t1: clamp(10 + budDs), p10: 9}},
	}
	if third := budDs / 3; third >= 5 {
		var periodic []advWindow
		for k := 0; k < 3; k++ {
			t0 := 10 + k*(maxTDs/3)
			periodic = append(periodic, advWindow{kind: "wap", t0: t0, t1: clamp(t0 + third)})
		}
		out = append(out, periodic)
	}
	var ok [][]advWindow
	for _, ws := range out {
		good := len(ws) <= maxWindows && totalDs(ws) <= budDs
		for i, w := range ws {
			if w.t1-w.t0 < 5 || overlapsSameKind(ws, w.kind, w.t0, w.t1, i) {
				good = false
			}
		}
		if good {
			ok = append(ok, ws)
		}
	}
	return ok
}

// randomSchedule draws 1..maxWindows windows under the budget.
func randomSchedule(rng *rand.Rand, maxTDs, budDs, maxWindows int) []advWindow {
	n := 1 + rng.Intn(maxWindows)
	var ws []advWindow
	for i := 0; i < n; i++ {
		w, ok := sampleWindow(rng, ws, maxTDs, budDs-totalDs(ws))
		if !ok {
			break
		}
		ws = append(ws, w)
	}
	return ws
}

// mutateSchedule returns a neighbour of ws: one window added, removed,
// shifted, resized, re-kinded or re-weighted — plus the two moves that
// give the climber its edge over random search: aligning a second fault
// kind on top of an existing window (stacked faults at the same instant
// compound, and random draws almost never line windows up) and growing
// a window to swallow the whole remaining budget.
func mutateSchedule(rng *rand.Rand, ws []advWindow, maxTDs, budDs, maxWindows int) []advWindow {
	// Infeasible ops are retried without spending an evaluation; only a
	// genuinely stuck neighbourhood falls back to a random restart.
	for tries := 0; tries < 8; tries++ {
		if out, ok := mutateOnce(rng, ws, maxTDs, budDs, maxWindows); ok {
			return out
		}
	}
	return randomSchedule(rng, maxTDs, budDs, maxWindows)
}

func mutateOnce(rng *rand.Rand, ws []advWindow, maxTDs, budDs, maxWindows int) ([]advWindow, bool) {
	out := append([]advWindow(nil), ws...)
	op := rng.Intn(8)
	if len(out) == 0 {
		op = 0
	}
	switch op {
	case 0: // add a window
		if len(out) < maxWindows {
			if w, ok := sampleWindow(rng, out, maxTDs, budDs-totalDs(out)); ok {
				return append(out, w), true
			}
		}
	case 1: // remove a window
		if len(out) > 1 {
			i := rng.Intn(len(out))
			return append(out[:i], out[i+1:]...), true
		}
	case 2: // shift a window in time (up to +-5 s)
		i := rng.Intn(len(out))
		w := out[i]
		delta := rng.Intn(101) - 50
		t0, t1 := w.t0+delta, w.t1+delta
		if t0 >= 10 && t1 <= maxTDs && !overlapsSameKind(out, w.kind, t0, t1, i) {
			out[i].t0, out[i].t1 = t0, t1
			return out, true
		}
	case 3: // grow or shrink a window (up to +-3 s)
		i := rng.Intn(len(out))
		w := out[i]
		t1 := w.t1 + rng.Intn(61) - 30
		if t1-w.t0 >= 5 && t1 <= maxTDs &&
			totalDs(out)-(w.t1-w.t0)+(t1-w.t0) <= budDs &&
			!overlapsSameKind(out, w.kind, w.t0, t1, i) {
			out[i].t1 = t1
			return out, true
		}
	case 4: // change a window's kind
		i := rng.Intn(len(out))
		w := out[i]
		ki := rng.Intn(len(advKinds))
		for tries := 0; overlapsSameKind(out, advKinds[ki], w.t0, w.t1, i); tries++ {
			if tries >= len(advKinds) {
				return nil, false
			}
			ki = (ki + 1) % len(advKinds)
		}
		out[i].kind = advKinds[ki]
		if out[i].kind == "burst" || out[i].kind == "corrupt" {
			if out[i].p10 == 0 {
				out[i].p10 = sampleP10(rng)
			}
		} else {
			out[i].p10 = 0
		}
		return out, true
	case 5: // re-weight a probabilistic window
		i := rng.Intn(len(out))
		if out[i].kind == "burst" || out[i].kind == "corrupt" {
			out[i].p10 = sampleP10(rng)
			return out, true
		}
	case 6: // align a second kind on top of an existing window
		if len(out) < maxWindows {
			i := rng.Intn(len(out))
			w := out[i]
			t1 := w.t1
			if rem := budDs - totalDs(out); t1-w.t0 > rem {
				t1 = w.t0 + rem
			}
			if t1-w.t0 >= 5 {
				ki := rng.Intn(len(advKinds))
				for tries := 0; advKinds[ki] == w.kind ||
					overlapsSameKind(out, advKinds[ki], w.t0, t1, -1); tries++ {
					if tries >= len(advKinds) {
						return nil, false
					}
					ki = (ki + 1) % len(advKinds)
				}
				n := advWindow{kind: advKinds[ki], t0: w.t0, t1: t1}
				if n.kind == "burst" || n.kind == "corrupt" {
					n.p10 = sampleP10(rng)
				}
				return append(out, n), true
			}
		}
	case 7: // grow a window to swallow the remaining budget
		i := rng.Intn(len(out))
		w := out[i]
		t1 := w.t1 + (budDs - totalDs(out))
		if t1 > maxTDs {
			t1 = maxTDs
		}
		if t1 > w.t1 && !overlapsSameKind(out, w.kind, w.t0, t1, i) {
			out[i].t1 = t1
			return out, true
		}
	}
	return nil, false
}

// shrinkCandidates proposes smaller schedules: each window dropped, and
// each window halved in length.
func shrinkCandidates(ws []advWindow) [][]advWindow {
	var out [][]advWindow
	if len(ws) > 1 {
		for i := range ws {
			c := append([]advWindow(nil), ws[:i]...)
			c = append(c, ws[i+1:]...)
			out = append(out, c)
		}
	}
	for i, w := range ws {
		if w.t1-w.t0 >= 10 {
			c := append([]advWindow(nil), ws...)
			c[i].t1 = w.t0 + (w.t1-w.t0)/2
			out = append(out, c)
		}
	}
	return out
}
