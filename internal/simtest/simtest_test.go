package simtest

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// smallNav is a fast hand-built scenario used where test runtime
// matters more than matrix coverage: a short navigation mission in a
// small empty room.
func smallNav(deploy DeploySpec, link, faultSpec string) Scenario {
	return Scenario{
		Seed:           7,
		Workload:       "navigation",
		World:          WorldSpec{Kind: "empty", W: 6, H: 4, Res: 0.05},
		StartX:         1.0,
		StartY:         1.0,
		GoalX:          5.0,
		GoalY:          3.0,
		Deploy:         deploy,
		Fleet:          1,
		Link:           LinkSpec{Profile: link, WAPX: 1.0, WAPY: 1.0},
		Faults:         faultSpec,
		MaxSimTime:     45,
		TrackerSamples: 200,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if _, err := a.Mission(); err != nil {
			t.Fatalf("seed %d: generated scenario does not build: %v (%s)", seed, err, a.Label())
		}
	}
}

// TestGenerateCoversMatrix asserts the sampler actually reaches every
// axis of the cross-product the tentpole promises.
func TestGenerateCoversMatrix(t *testing.T) {
	workloads := map[string]bool{}
	worlds := map[string]bool{}
	deploys := map[string]bool{}
	goals := map[string]bool{}
	links := map[string]bool{}
	faultKinds := map[string]bool{}
	fleets := map[int]bool{}
	threads := map[int]bool{}
	for seed := int64(0); seed < 400; seed++ {
		sc := Generate(seed)
		workloads[sc.Workload] = true
		worlds[sc.World.Kind] = true
		deploys[sc.Deploy.Mode] = true
		if sc.Deploy.Goal != "" {
			goals[sc.Deploy.Goal] = true
		}
		links[sc.Link.Profile] = true
		fleets[sc.Fleet] = true
		threads[sc.Deploy.Threads] = true
		for _, w := range splitSpec(sc.Faults) {
			faultKinds[strings.SplitN(w, ":", 2)[0]] = true
		}
	}
	wantAll := func(name string, got map[string]bool, want ...string) {
		t.Helper()
		for _, w := range want {
			if !got[w] {
				t.Errorf("%s %q never sampled in 400 seeds (got %v)", name, w, got)
			}
		}
	}
	wantAll("workload", workloads, "navigation", "exploration", "coverage")
	wantAll("world", worlds, "lab", "course", "empty", "clutter")
	wantAll("deploy", deploys, "local", "edge", "cloud", "adaptive")
	wantAll("goal", goals, "ec", "mct")
	wantAll("link", links, "good", "fade", "deadzone", "interference")
	wantAll("fault kind", faultKinds, "wap", "server", "burst", "corrupt", "partup", "partdown")
	if len(fleets) < 3 || !fleets[1] {
		t.Errorf("fleet sizes undersampled: %v", fleets)
	}
	for _, th := range []int{1, 2, 4, 8} {
		if !threads[th] {
			t.Errorf("thread count %d never sampled: %v", th, threads)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Generate(12345)
	r := Repro{Invariant: "energy-sum", Error: "x", CampaignSeed: 12345, Scenario: sc}
	dir := t.TempDir()
	path, err := SaveRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Scenario, sc) {
		t.Fatalf("scenario did not round-trip:\n%+v\n%+v", back.Scenario, sc)
	}
	if back.Format != ReproFormatVersion {
		t.Fatalf("format: got %d", back.Format)
	}
}

// TestInvariantsOnRepresentativeScenarios runs the cheap invariant set
// against hand-built scenarios covering the main regimes: all-local,
// adaptive EC on a clean link (exercises the dominance baseline),
// adaptive MCT in a dead zone with faults (exercises watchdog,
// failover, accounting under drops).
func TestInvariantsOnRepresentativeScenarios(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"local", smallNav(DeploySpec{Mode: "local", Threads: 1}, "good", "")},
		{"adaptive-ec-good", smallNav(DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "ec", Threads: 4}, "good", "")},
		{"adaptive-mct-deadzone-faults", smallNav(DeploySpec{Mode: "adaptive", Remote: "cloud", Goal: "mct", Threads: 4},
			"deadzone", "wap:6-12;burst:15-18:0.7")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Evaluate(tc.sc, Options{})
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("invariant %s violated: %s", v.Invariant, v.Error)
			}
			if len(rep.Checked) < 5 {
				t.Errorf("only %d invariants checked (%v)", len(rep.Checked), rep.Checked)
			}
		})
	}
}

// TestMatrixDeterminism is the acceptance check: byte-identical mission
// results across kernel thread counts {1,2,4,8} × {block, interleaved}.
func TestMatrixDeterminism(t *testing.T) {
	sc := smallNav(DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "mct", Threads: 4}, "fade", "")
	sc.SlamParticles = 10
	rep, err := Evaluate(sc, Options{Matrix: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s: %s", v.Invariant, v.Error)
	}
	found := false
	for _, name := range rep.Checked {
		if name == "matrix-determinism" {
			found = true
		}
	}
	if !found {
		t.Fatalf("matrix-determinism did not run (checked %v)", rep.Checked)
	}
}

// TestInvertedInvariantIsCaughtAndShrunk is the pipeline's own
// end-to-end test: negate the watchdog invariant (assert violations
// MUST exist — any healthy run fails it), confirm the campaign
// machinery catches it, the shrinker minimizes the scenario, and the
// saved repro round-trips and replays green under the real library.
func TestInvertedInvariantIsCaughtAndShrunk(t *testing.T) {
	inverted := Invariant{
		Name: "watchdog-zero-vel-inverted",
		Desc: "deliberately negated watchdog check (harness self-test)",
		Check: func(o *Outcome) error {
			if len(o.CmdViolations) == 0 {
				return fmt.Errorf("inverted: expected stale nonzero commands, saw none (%d stalled samples)",
					o.StalledSamples)
			}
			return nil
		},
	}

	sc := smallNav(DeploySpec{Mode: "adaptive", Remote: "edge", Goal: "mct", Threads: 2},
		"good", "burst:5-8:0.5;wap:20-24")
	sc.Waypoints = [][2]float64{{3, 2}}
	sc.Fleet = 2

	msg, caught := violates(sc, inverted)
	if !caught {
		t.Fatalf("inverted invariant was not caught")
	}
	if !strings.Contains(msg, "inverted") {
		t.Fatalf("unexpected violation message: %s", msg)
	}

	shrunk := Shrink(sc, inverted, 16)
	if shrunk.Steps == 0 {
		t.Fatalf("shrinker made no progress on a reducible scenario")
	}
	// The inverted check fails on every healthy run, so shrinking must
	// reach the floor: no faults, no waypoints, fleet of one.
	if shrunk.Scenario.Faults != "" || len(shrunk.Scenario.Waypoints) != 0 || shrunk.Scenario.Fleet != 1 {
		t.Errorf("shrink left reducible structure: %+v", shrunk.Scenario)
	}

	dir := t.TempDir()
	r := Repro{
		Invariant:    inverted.Name,
		Error:        shrunk.Error,
		CampaignSeed: sc.Seed,
		ShrinkSteps:  shrunk.Steps,
		ShrinkRuns:   shrunk.Runs,
		Scenario:     shrunk.Scenario,
	}
	path, err := SaveRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	repros, _, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 {
		t.Fatalf("corpus has %d repros, want 1 (%s)", len(repros), path)
	}
	// Replay the minimized repro under the *real* invariant library:
	// the scenario must be valid and clean.
	rep, err := Evaluate(repros[0].Scenario, Options{})
	if err != nil {
		t.Fatalf("repro replay errored: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("repro replay violated %s: %s", v.Invariant, v.Error)
	}
}

// TestCampaignSmoke runs a tiny end-to-end campaign over generated
// scenarios; make hunt covers the 200-seed version outside the race
// gate.
func TestCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is not for -short")
	}
	stats := Campaign(CampaignOpts{Seeds: 3, StartSeed: 1000, Logf: t.Logf})
	if stats.Seeds != 3 {
		t.Fatalf("campaign evaluated %d seeds, want 3", stats.Seeds)
	}
	for _, r := range stats.Violations {
		t.Errorf("campaign violation %s (seed %d): %s", r.Invariant, r.CampaignSeed, r.Error)
	}
	for _, e := range stats.Errors {
		t.Errorf("campaign error: %s", e)
	}
	if stats.Runs < 3 {
		t.Fatalf("campaign consumed %d runs, want >= 3", stats.Runs)
	}
}

func TestCanonicalStability(t *testing.T) {
	sc := smallNav(DeploySpec{Mode: "local", Threads: 1}, "fade", "")
	o1, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1.Canon, o2.Canon) {
		t.Fatalf("canonical encodings differ across identical runs: %s", firstDiff(o1.Canon, o2.Canon))
	}
	if len(o1.Canon) == 0 || o1.Canon[0] != '{' {
		t.Fatalf("canonical encoding is not a JSON object: %q", o1.Canon[:min(20, len(o1.Canon))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
