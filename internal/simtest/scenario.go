// Package simtest is the deterministic scenario-matrix harness: a
// seeded generator that samples full missions across the cross-product
// of {worlds, fault schedules, offloading goals, fleet sizes, thread
// counts, link profiles}, runs the engine headlessly, and checks a
// library of paper-derived invariants on every run (see invariants.go).
// Violations are shrunk to minimal scenarios and stored as JSON repros
// under testdata/repros/, which tier-1 tests replay as a regression
// corpus.
package simtest

import (
	"fmt"
	"math/rand"

	"lgvoffload/internal/core"
	"lgvoffload/internal/faults"
	"lgvoffload/internal/fleet"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/hostsim"
	"lgvoffload/internal/mw"
	"lgvoffload/internal/netsim"
	"lgvoffload/internal/pool"
	"lgvoffload/internal/world"
)

// WorldSpec selects and parameterizes a mission environment. Generated
// worlds (empty/clutter) are rebuilt deterministically from the spec, so
// a Scenario JSON is fully self-contained.
type WorldSpec struct {
	// Kind is "lab", "course", "empty" or "clutter".
	Kind string `json:"kind"`
	// W, H, Res size generated worlds in meters (ignored for lab/course).
	W   float64 `json:"w,omitempty"`
	H   float64 `json:"h,omitempty"`
	Res float64 `json:"res,omitempty"`
	// Obstacles and Seed drive RandomClutterMap for kind "clutter".
	Obstacles int   `json:"obstacles,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
}

// Build constructs the ground-truth map for the spec.
func (w WorldSpec) Build() (*grid.Map, error) {
	res := w.Res
	if res == 0 {
		res = 0.05
	}
	switch w.Kind {
	case "lab":
		return world.LabMap(), nil
	case "course":
		return world.ObstacleCourseMap(), nil
	case "empty":
		return world.EmptyRoomMap(w.W, w.H, res), nil
	case "clutter":
		rng := rand.New(rand.NewSource(w.Seed))
		return world.RandomClutterMap(w.W, w.H, res, w.Obstacles, rng), nil
	}
	return nil, fmt.Errorf("simtest: unknown world kind %q", w.Kind)
}

// DeploySpec is the JSON-stable form of core.Deployment.
type DeploySpec struct {
	// Mode is "local", "edge", "cloud" or "adaptive".
	Mode string `json:"mode"`
	// Remote is "edge" or "cloud" for adaptive mode.
	Remote  string `json:"remote,omitempty"`
	Threads int    `json:"threads"`
	// Goal is "ec" or "mct" for adaptive mode.
	Goal string `json:"goal,omitempty"`
}

// LinkSpec selects a wireless environment.
type LinkSpec struct {
	// Profile is "good" (high bandwidth everywhere), "fade" (the default
	// edge/cloud 6 m/12 m falloff), "deadzone" (good to 3 m only),
	// "interference" (fade plus a periodic signal collapse) or "trace"
	// (replay the builtin trace named by Trace).
	Profile string  `json:"profile"`
	WAPX    float64 `json:"wapx"`
	WAPY    float64 `json:"wapy"`
	// WAPs lists extra access-point positions; when non-empty the link
	// roams between them and the primary WAP with hysteresis handoff.
	WAPs [][2]float64 `json:"waps,omitempty"`
	// Trace names a netsim builtin trace for profile "trace".
	Trace string `json:"trace,omitempty"`
}

// Scenario is one self-contained mission sample: everything needed to
// rebuild a core.MissionConfig, serializable to JSON for the repro
// corpus. See Generate for how the matrix is sampled.
type Scenario struct {
	Seed     int64  `json:"mission_seed"`
	Workload string `json:"workload"` // "navigation", "exploration", "coverage"

	World      WorldSpec    `json:"world"`
	StartX     float64      `json:"start_x"`
	StartY     float64      `json:"start_y"`
	StartTheta float64      `json:"start_theta"`
	GoalX      float64      `json:"goal_x"`
	GoalY      float64      `json:"goal_y"`
	Waypoints  [][2]float64 `json:"waypoints,omitempty"`

	Deploy DeploySpec `json:"deploy"`
	// Fleet is the number of robots sharing the remote server
	// (fleet.ShareServer); 1 = dedicated server.
	Fleet int      `json:"fleet"`
	Link  LinkSpec `json:"link"`
	// Faults is an internal/faults spec string ("" = no faults).
	Faults string `json:"faults,omitempty"`
	// Adversarial marks a scenario whose fault schedule came from the
	// adversarial hill-climber (see adversary.go / cmd/advhunt); the
	// adversarial-replay invariant only fires on these.
	Adversarial bool `json:"adversarial,omitempty"`

	MaxSimTime     float64 `json:"max_sim_time"`
	VCeil          float64 `json:"v_ceil,omitempty"`
	TrackerSamples int     `json:"tracker_samples,omitempty"`
	SlamParticles  int     `json:"slam_particles,omitempty"`

	// KernelThreads/KernelPartition override the *execution* threading
	// of the parallel kernels without touching the modeled Deployment
	// (see core.MissionConfig.KernelThreads). Partition is "" (default
	// block), "block" or "interleaved".
	KernelThreads   int    `json:"kernel_threads,omitempty"`
	KernelPartition string `json:"kernel_partition,omitempty"`
}

// Label returns a short human-readable tag for logs.
func (s Scenario) Label() string {
	f := s.Faults
	if f == "" {
		f = "none"
	}
	return fmt.Sprintf("seed=%d %s/%s deploy=%s/%s fleet=%d link=%s faults=%s",
		s.Seed, s.Workload, s.World.Kind, s.Deploy.Mode, s.Deploy.Goal,
		s.Fleet, s.Link.Profile, f)
}

// NoFaults reports whether the scenario injects no disturbances.
func (s Scenario) NoFaults() bool { return s.Faults == "" }

// HighBandwidth reports whether the link profile guarantees full signal
// over the whole map (the "good" profile).
func (s Scenario) HighBandwidth() bool { return s.Link.Profile == "good" }

func (s Scenario) workload() (core.Workload, error) {
	switch s.Workload {
	case "navigation":
		return core.NavigationWithMap, nil
	case "exploration":
		return core.ExplorationNoMap, nil
	case "coverage":
		return core.CoverageWithMap, nil
	}
	return 0, fmt.Errorf("simtest: unknown workload %q", s.Workload)
}

func (s Scenario) deployment() (core.Deployment, error) {
	th := s.Deploy.Threads
	if th <= 0 {
		th = 1
	}
	switch s.Deploy.Mode {
	case "local":
		d := core.DeployLocal()
		d.Threads = th
		return d, nil
	case "edge":
		return core.DeployEdge(th), nil
	case "cloud":
		return core.DeployCloud(th), nil
	case "adaptive":
		remote := core.HostEdge
		if s.Deploy.Remote == "cloud" {
			remote = core.HostCloud
		}
		goal := core.GoalMCT
		if s.Deploy.Goal == "ec" {
			goal = core.GoalEC
		}
		return core.DeployAdaptive(remote, th, goal), nil
	}
	return core.Deployment{}, fmt.Errorf("simtest: unknown deploy mode %q", s.Deploy.Mode)
}

// linkConfig builds the netsim.LinkConfig for the scenario's profile, or
// nil for "fade" (the engine default for the chosen remote host).
func (s Scenario) linkConfig() (*netsim.LinkConfig, error) {
	wap := geom.V(s.Link.WAPX, s.Link.WAPY)
	base := netsim.DefaultEdgeLink(wap)
	if s.Deploy.Remote == "cloud" || s.Deploy.Mode == "cloud" {
		base = netsim.DefaultCloudLink(wap)
	}
	switch s.Link.Profile {
	case "fade", "":
		return nil, nil // engine default, WAP set via MissionConfig.WAP
	case "good":
		// Full signal over any map we generate: no kernel-buffer
		// blocking, no fade-induced loss.
		base.GoodRange = 1000
		base.FadeRange = 2000
		return &base, nil
	case "deadzone":
		// Mirrors the facade's DeadZoneLink: coverage collapses 3 m
		// from the WAP, so most missions drive out of range.
		base.GoodRange = 3
		base.FadeRange = 8
		return &base, nil
	case "interference":
		base.InterferencePeriod = 8
		base.InterferenceDuty = 0.25
		base.InterferenceFloor = 0.05
		return &base, nil
	case "trace":
		// The trace itself attaches via MissionConfig.LinkTrace (see
		// Mission); the base config supplies buffer/latency parameters.
		return &base, nil
	}
	return nil, fmt.Errorf("simtest: unknown link profile %q", s.Link.Profile)
}

func (s Scenario) partition() (pool.Partition, error) {
	switch s.KernelPartition {
	case "", "block":
		return pool.Block, nil
	case "interleaved":
		return pool.Interleaved, nil
	}
	return 0, fmt.Errorf("simtest: unknown kernel partition %q", s.KernelPartition)
}

// Mission converts the scenario into a runnable core.MissionConfig.
// Observability hooks (Tracer, CmdTap) are attached by RunScenario.
func (s Scenario) Mission() (core.MissionConfig, error) {
	var cfg core.MissionConfig
	wl, err := s.workload()
	if err != nil {
		return cfg, err
	}
	dep, err := s.deployment()
	if err != nil {
		return cfg, err
	}
	m, err := s.World.Build()
	if err != nil {
		return cfg, err
	}
	link, err := s.linkConfig()
	if err != nil {
		return cfg, err
	}
	part, err := s.partition()
	if err != nil {
		return cfg, err
	}
	cfg = core.MissionConfig{
		Workload:        wl,
		Map:             m,
		Start:           geom.P(s.StartX, s.StartY, s.StartTheta),
		Goal:            geom.V(s.GoalX, s.GoalY),
		Deployment:      dep,
		Seed:            s.Seed,
		WAP:             geom.V(s.Link.WAPX, s.Link.WAPY),
		LinkCfg:         link,
		MaxSimTime:      s.MaxSimTime,
		VCeil:           s.VCeil,
		TrackerSamples:  s.TrackerSamples,
		SlamParticles:   s.SlamParticles,
		KernelThreads:   s.KernelThreads,
		KernelPartition: part,
	}
	for _, wp := range s.Waypoints {
		cfg.Waypoints = append(cfg.Waypoints, geom.V(wp[0], wp[1]))
	}
	for _, ap := range s.Link.WAPs {
		cfg.WAPs = append(cfg.WAPs, geom.V(ap[0], ap[1]))
	}
	if s.Link.Profile == "trace" {
		tr, err := netsim.BuiltinTrace(s.Link.Trace)
		if err != nil {
			return cfg, fmt.Errorf("simtest: %w", err)
		}
		cfg.LinkTrace = tr
	}
	if s.Faults != "" {
		fc, err := faults.ParseSpec(s.Faults)
		if err != nil {
			return cfg, fmt.Errorf("simtest: bad fault spec: %w", err)
		}
		cfg.Faults = &fc
	}
	if s.Fleet > 1 {
		host := dep.Remote
		if host == "" {
			return cfg, fmt.Errorf("simtest: fleet=%d requires a remote deployment", s.Fleet)
		}
		full := defaultPlatform(host)
		shared := fleet.ShareServer(full, s.Fleet)
		cfg.Platforms = map[mw.HostID]hostsim.Platform{host: shared}
		if cfg.Deployment.Threads > shared.Cores {
			cfg.Deployment.Threads = shared.Cores
		}
	}
	return cfg, nil
}

func defaultPlatform(host mw.HostID) hostsim.Platform {
	if host == core.HostCloud {
		return hostsim.CloudServer()
	}
	return hostsim.EdgeGateway()
}
