// Package coverage implements the house-cleaning workload class from the
// paper's introduction ("delivering packages, housework, searching and
// rescuing"): full-coverage path planning. A boustrophedon (ox-plough)
// planner sweeps the traversable free space in parallel lanes spaced one
// tool width apart, connecting lane segments in serpentine order with
// the global planner, so a vacuum-style LGV visits every reachable cell.
//
// Like every pipeline node, the planner reports its work in abstract
// operations so the mission engine can account its (modest) Table II
// share; the heavy VDP nodes still dominate, which is why the coverage
// workload offloads exactly like navigation.
package coverage

import (
	"errors"
	"fmt"
	"sort"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/planner"
)

// Config parameterizes the sweep.
type Config struct {
	// Spacing between sweep lanes, m (the tool width; defaults to the
	// robot diameter so passes overlap slightly).
	Spacing float64
	// MinSegment discards lane fragments shorter than this, m.
	MinSegment float64
	// MaxLaneCost keeps lanes out of the steep inflation band near
	// walls, where the local planner would crawl; the tool radius still
	// reaches the wall cells from the lane.
	MaxLaneCost uint8
}

// DefaultConfig returns a sweep for the Turtlebot footprint: lanes
// 0.35 m apart, comfortably inside the 0.5 m swath of a 0.25 m-radius
// tool, and wide enough apart that the engine's waypoint tolerance can
// never alias onto the next lane.
func DefaultConfig() Config {
	return Config{Spacing: 0.35, MinSegment: 0.3, MaxLaneCost: 120}
}

// Stats reports the planning work.
type Stats struct {
	Lanes     int
	Segments  int
	Ops       int     // cells examined building lanes (work measure)
	PathLen   float64 // total sweep path length, m
	Connected int     // connector plans computed
}

// ErrNoFreeSpace means the costmap has no traversable region to sweep.
var ErrNoFreeSpace = errors.New("coverage: no traversable space")

// segment is one maximal traversable run along a lane.
type segment struct {
	y         float64
	x0, x1    float64
	laneIndex int
}

// Plan computes a boustrophedon coverage path over the costmap's
// traversable cells, starting from the segment nearest `start`.
// Consecutive segments are joined with global-planner routes so the
// path stays collision-free across lane gaps and around islands.
func Plan(cm *costmap.Costmap, start geom.Vec2, cfg Config) ([]geom.Vec2, Stats, error) {
	if cfg.Spacing <= 0 {
		cfg.Spacing = 0.35
	}
	if cfg.MinSegment <= 0 {
		cfg.MinSegment = 0.3
	}
	if cfg.MaxLaneCost == 0 {
		cfg.MaxLaneCost = 120
	}
	var st Stats

	w, h := cm.Dims()
	res := cm.Config().Resolution
	laneStep := int(cfg.Spacing / res)
	if laneStep < 1 {
		laneStep = 1
	}
	minCells := int(cfg.MinSegment / res)

	// Build lane segments over traversable cells.
	var segs []segment
	lane := 0
	for y := laneStep / 2; y < h; y += laneStep {
		lane++
		runStart := -1
		for x := 0; x <= w; x++ {
			st.Ops++
			cell := geom.Cell{X: x, Y: y}
			traversable := x < w && cm.IsTraversable(cell) &&
				cm.Cost(cell) <= cfg.MaxLaneCost
			if traversable && runStart < 0 {
				runStart = x
			}
			if !traversable && runStart >= 0 {
				if x-runStart >= minCells {
					a := cm.CellToWorld(geom.Cell{X: runStart, Y: y})
					b := cm.CellToWorld(geom.Cell{X: x - 1, Y: y})
					segs = append(segs, segment{y: a.Y, x0: a.X, x1: b.X, laneIndex: lane})
				}
				runStart = -1
			}
		}
	}
	st.Lanes = lane
	st.Segments = len(segs)
	if len(segs) == 0 {
		return nil, st, ErrNoFreeSpace
	}

	// Order: lanes bottom-up; within a lane left-to-right; the serpentine
	// direction alternates per lane when walking the path.
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].laneIndex != segs[j].laneIndex {
			return segs[i].laneIndex < segs[j].laneIndex
		}
		return segs[i].x0 < segs[j].x0
	})

	// Start from the segment nearest the robot.
	firstIdx := 0
	best := 1e18
	for i, s := range segs {
		d := geom.Segment{A: geom.V(s.x0, s.y), B: geom.V(s.x1, s.y)}.Dist(start)
		if d < best {
			best, firstIdx = d, i
		}
	}
	// Rotate so the nearest segment's lane comes first, preserving order.
	ordered := append(append([]segment{}, segs[firstIdx:]...), segs[:firstIdx]...)

	gp := planner.New(planner.AStar)
	var path []geom.Vec2
	cur := start
	dir := 1.0
	for _, s := range ordered {
		entry, exit := geom.V(s.x0, s.y), geom.V(s.x1, s.y)
		if dir < 0 {
			entry, exit = exit, entry
		}
		// Connect from the current position to the segment entry.
		if cur.Dist(entry) > cfg.Spacing*1.5 {
			r, err := gp.Plan(cm, cur, entry)
			st.Connected++
			if err == nil && len(r.Path) >= 2 {
				path = append(path, r.Path...)
			} else {
				// Unreachable fragment (sealed pocket): skip it.
				continue
			}
		} else {
			path = append(path, entry)
		}
		path = append(path, exit)
		cur = exit
		dir = -dir
	}
	if len(path) < 2 {
		return nil, st, fmt.Errorf("coverage: could not connect any segment from %v", start)
	}
	st.PathLen = geom.PathLength(path)
	return path, st, nil
}

// Covered returns the fraction of the costmap's traversable cells lying
// within `radius` of any of the visited points — the cleaning-progress
// metric for a tool of that radius.
func Covered(cm *costmap.Costmap, visited []geom.Vec2, radius float64) float64 {
	if len(visited) == 0 {
		return 0
	}
	w, h := cm.Dims()
	res := cm.Config().Resolution
	rCells := int(radius/res) + 1

	covered := make([]bool, w*h)
	for _, p := range visited {
		c := cm.WorldToCell(p)
		for dy := -rCells; dy <= rCells; dy++ {
			for dx := -rCells; dx <= rCells; dx++ {
				n := geom.Cell{X: c.X + dx, Y: c.Y + dy}
				if !cm.InBounds(n) {
					continue
				}
				if cm.CellToWorld(n).DistSq(p) <= radius*radius {
					covered[n.Y*w+n.X] = true
				}
			}
		}
	}
	total, hit := 0, 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !cm.IsTraversable(geom.Cell{X: x, Y: y}) {
				continue
			}
			total++
			if covered[y*w+x] {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
