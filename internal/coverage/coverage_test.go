package coverage

import (
	"testing"

	"lgvoffload/internal/costmap"
	"lgvoffload/internal/geom"
	"lgvoffload/internal/grid"
	"lgvoffload/internal/world"
)

func cmFor(m *grid.Map) *costmap.Costmap {
	cfg := costmap.DefaultConfig(m.Width, m.Height, m.Resolution, m.Origin)
	cm := costmap.New(cfg)
	cm.SetStatic(m)
	return cm
}

func TestPlanCoversEmptyRoom(t *testing.T) {
	cm := cmFor(world.EmptyRoomMap(4, 3, 0.05))
	path, st, err := Plan(cm, geom.V(0.7, 0.7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 || st.PathLen < 10 {
		t.Fatalf("stats = %+v", st)
	}
	// Walking the planned path with a spacing-radius tool must cover
	// nearly all traversable cells.
	pts := densify(path, 0.05)
	if c := Covered(cm, pts, DefaultConfig().Spacing); c < 0.95 {
		t.Errorf("plan covers only %.0f%%", c*100)
	}
	// The path must stay traversable throughout.
	for i, p := range pts {
		if cost := cm.WorldCost(p); cost >= costmap.InscribedCost && cost != costmap.UnknownCost {
			t.Fatalf("path point %d at %v has cost %d", i, p, cost)
		}
	}
}

func TestPlanSweepsAroundIsland(t *testing.T) {
	m := world.EmptyRoomMap(4, 3, 0.05)
	for y := 25; y < 35; y++ {
		for x := 35; x < 45; x++ {
			m.Set(geom.Cell{X: x, Y: y}, grid.Occupied)
		}
	}
	cm := cmFor(m)
	path, st, err := Plan(cm, geom.V(0.7, 0.7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Connected == 0 {
		t.Error("island should force connector plans")
	}
	pts := densify(path, 0.05)
	if c := Covered(cm, pts, DefaultConfig().Spacing); c < 0.9 {
		t.Errorf("island room covered only %.0f%%", c*100)
	}
}

func TestPlanNoFreeSpace(t *testing.T) {
	m := grid.NewMap(20, 20, 0.05, geom.V(0, 0), grid.Occupied)
	cm := cmFor(m)
	if _, _, err := Plan(cm, geom.V(0.5, 0.5), DefaultConfig()); err == nil {
		t.Error("fully occupied map must fail")
	}
}

func TestCoveredMetric(t *testing.T) {
	cm := cmFor(world.EmptyRoomMap(2, 2, 0.05))
	if Covered(cm, nil, 0.2) != 0 {
		t.Error("no visits = 0 coverage")
	}
	// One point covers a small fraction.
	c1 := Covered(cm, []geom.Vec2{geom.V(1, 1)}, 0.2)
	if c1 <= 0 || c1 > 0.2 {
		t.Errorf("single point coverage = %v", c1)
	}
	// More points, more coverage.
	c2 := Covered(cm, []geom.Vec2{geom.V(0.5, 0.5), geom.V(1, 1), geom.V(1.5, 1.5)}, 0.2)
	if c2 <= c1 {
		t.Error("coverage should grow with visits")
	}
}

func TestDegenerateConfig(t *testing.T) {
	cm := cmFor(world.EmptyRoomMap(2, 2, 0.05))
	if _, _, err := Plan(cm, geom.V(1, 1), Config{}); err != nil {
		t.Fatalf("zero config should fall back to defaults: %v", err)
	}
}

// densify inserts intermediate points so Covered sees the full swath.
func densify(path []geom.Vec2, step float64) []geom.Vec2 {
	var out []geom.Vec2
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		d := a.Dist(b)
		n := int(d/step) + 1
		for k := 0; k <= n; k++ {
			out = append(out, a.Lerp(b, float64(k)/float64(n)))
		}
	}
	return out
}
