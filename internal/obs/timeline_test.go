package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTimelineRingEviction(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 10; i++ {
		tl.Append(Event{Kind: KindProbe, T0: float64(i)})
	}
	evs := tl.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(6 + i); ev.T0 != want {
			t.Errorf("event %d: T0 = %v, want %v (oldest-first)", i, ev.T0, want)
		}
	}
	if tl.Total() != 10 || tl.Evicted() != 6 {
		t.Errorf("total/evicted = %d/%d", tl.Total(), tl.Evicted())
	}
	// Sequence numbers keep counting across evictions.
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("seqs = %d..%d, want 7..10", evs[0].Seq, evs[3].Seq)
	}
}

func TestTimelineDefaultCap(t *testing.T) {
	tl := NewTimeline(0)
	if got := len(tl.Events()); got != 0 {
		t.Errorf("fresh timeline has %d events", got)
	}
	tl.Append(Event{})
	if tl.Len() != 1 {
		t.Error("append on default-cap timeline")
	}
}

func TestWriteJSONLParses(t *testing.T) {
	tel := NewTelemetry(128)
	tel.SetPhase("navigation")
	tel.NodeExec("costmap_gen", "edge", 1.0, 0.02, 1)
	tel.Probe(1.2, 0.004)
	tel.Alg2(2.0, 3.1, -0.5, false)
	tel.Switch(2.0, 3.1, -0.5, 4096, false, "edge:[costmap_gen] -> local")
	tel.Transfer(2.2, 2.21, "scan", "edge", 2900)
	tel.Drop(2.4, "scan", "uplink")

	var buf bytes.Buffer
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", n, err, sc.Text())
		}
		if ev.Kind == "" || ev.Seq == 0 {
			t.Errorf("line %d: missing kind/seq: %+v", n, ev)
		}
		if ev.T1 < ev.T0 {
			t.Errorf("line %d: span ends before it starts: %+v", n, ev)
		}
		if ev.Phase != "navigation" {
			t.Errorf("line %d: phase not stamped: %+v", n, ev)
		}
	}
	if n != 6 {
		t.Errorf("lines = %d, want 6", n)
	}
}

// TestNilTelemetrySafe proves a nil *Telemetry is a valid no-op sink:
// every hook and exporter must be callable without panicking.
func TestNilTelemetrySafe(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Error("nil telemetry reports enabled")
	}
	tel.SetPhase("x")
	tel.Count("a", "", 1)
	tel.SetGauge("a", "", 1)
	tel.Observe("a", "", 1)
	tel.Emit(Event{})
	tel.NodeExec("n", "h", 0, 0.1, 1)
	tel.TickSpan(0, 0.2, 0.05)
	tel.Probe(0, 0.001)
	tel.Alg2(0, 5, 1, true)
	tel.Switch(0, 5, 1, 0, true, "")
	tel.Transfer(0, 0.01, "t", "h", 10)
	tel.Drop(0, "t", "w")
	if tel.Events() != nil || tel.Snapshot() != nil || tel.Phase() != "" {
		t.Error("nil telemetry must return empty views")
	}
	var sb strings.Builder
	if err := tel.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil telemetry JSONL must be empty")
	}
	if err := WritePostMortem(&sb, tel, 10); err != nil {
		t.Errorf("nil post-mortem: %v", err)
	}
	if !strings.Contains(sb.String(), "not enabled") {
		t.Error("nil post-mortem should say telemetry was off")
	}
}

func TestPostMortemSections(t *testing.T) {
	tel := NewTelemetry(0)
	tel.NodeExec("path_tracking", "edge", 0, 0.030, 8)
	tel.NodeExec("path_tracking", "edge", 0.2, 0.050, 8)
	tel.NodeExec("velocity_mux", "lgv", 0.2, 0.001, 1)
	tel.Probe(0.2, 0.004)
	tel.Transfer(0.3, 0.31, "scan", "edge", 2900)
	tel.Drop(0.5, "scan", "uplink")
	tel.Alg2(3.0, 2.0, -0.8, false)
	tel.Switch(3.0, 2.0, -0.8, 70000, false, "edge:[path_tracking] -> local")

	var sb strings.Builder
	if err := WritePostMortem(&sb, tel, 12.5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"node execution latency", "path_tracking", "velocity_mux",
		"host occupancy", "edge", "lgv",
		"adaptation decision log", "bw=2.0", "dir=-0.80",
		"switch", "alg2", "probe RTT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Add("x", "", 1)
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // must not panic on duplicate
}
