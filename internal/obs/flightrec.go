package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Flight recorder: an always-on black box for missions. It continuously
// captures a bounded ring of per-tick FlightFrames (VDP, energy, link
// state, Alg. 2 placement, cumulative safety/net counters, critical-path
// split) plus a bounded ring of timeline events (fed by Telemetry.Tee),
// and on a trigger — watchdog stop, failover, SLO breach, invariant
// failure, panic — freezes the last WindowSec seconds into a versioned
// JSONL bundle, alongside the existing post-mortem. Recording is
// allocation-free and reads only values the tick already computed, so an
// instrumented mission stays bit-identical to a bare one.

// FlightVersion is the bundle format version tag.
const FlightVersion = "lgvflight1"

const (
	defaultFlightFrames  = 4096
	defaultFlightEvents  = 1024
	defaultFlightWindow  = 30.0 // virtual seconds per bundle
	defaultFlightDumps   = 16   // bundles kept per mission
	defaultFlightSpacing = 5.0  // min virtual seconds between dumps
)

// FlightFrame is one per-tick snapshot. Counter fields are cumulative
// mission totals (the reader differentiates); the critical-path split
// (Compute/Queue/Transport) is this tick's decomposition.
type FlightFrame struct {
	T         float64 `json:"t"`
	VDP       float64 `json:"vdp"`
	EnergyJ   float64 `json:"energy_j"`
	Bandwidth float64 `json:"bw"`
	Direction float64 `json:"dir"`
	Signal    float64 `json:"signal"`
	MaxVel    float64 `json:"vmax"`
	RealVel   float64 `json:"vel"`
	RemoteOn  int     `json:"remote_on"` // nodes currently placed remote

	Sent     int `json:"sent"`     // cumulative packets offered
	Dropped  int `json:"dropped"`  // cumulative packets lost
	Misses   int `json:"misses"`   // consecutive missed remote ticks
	Stops    int `json:"stops"`    // cumulative watchdog stops
	Failover int `json:"failover"` // cumulative failovers
	Handoffs int `json:"handoffs"` // cumulative WAP handoffs
	Switches int `json:"switches"` // cumulative placement switches

	Compute   float64 `json:"compute"`   // s, this tick
	Queue     float64 `json:"queue"`     // s, this tick
	Transport float64 `json:"transport"` // s, this tick
}

// FlightConfig sizes a recorder. Zero values take the defaults above.
type FlightConfig struct {
	Frames     int     // frame ring capacity
	Events     int     // event ring capacity
	WindowSec  float64 // seconds of history per bundle
	Dir        string  // when set, bundles are also written here
	MaxDumps   int     // bundles kept per mission
	MinSpacing float64 // min virtual seconds between rate-limited dumps
}

// FlightBundle is one frozen dump. Data is the full JSONL encoding
// (header line, frame lines, event lines) — deterministic for a
// deterministic mission, which the simtest flight-bundle invariant
// checks byte-for-byte.
type FlightBundle struct {
	Reason   string  `json:"reason"`
	Detail   string  `json:"detail,omitempty"`
	T        float64 `json:"t"`
	Frames   int     `json:"frames"`
	Events   int     `json:"events"`
	File     string  `json:"file,omitempty"`
	WriteErr string  `json:"write_err,omitempty"`
	Data     []byte  `json:"-"`
}

// flightHeader is the first JSONL line of a bundle.
type flightHeader struct {
	Version string  `json:"version"`
	Reason  string  `json:"reason"`
	Detail  string  `json:"detail,omitempty"`
	T       float64 `json:"t"`
	Window  float64 `json:"window"`
	Frames  int     `json:"frames"`
	Events  int     `json:"events"`
}

// FlightRecorder is the ring + dump machinery. A nil *FlightRecorder is
// a valid no-op, like the rest of the obs plane. It implements Sink so
// Telemetry.Tee can feed it events without the engine knowing.
type FlightRecorder struct {
	mu     sync.Mutex
	cfg    FlightConfig
	frames []FlightFrame
	head   int
	n      int
	events *Timeline

	dumps    []*FlightBundle
	lastDump float64
	dumped   bool // any dump yet (lastDump==0 is a valid virtual time)
}

// NewFlightRecorder preallocates a recorder; no allocation happens on
// the record path afterwards.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Frames <= 0 {
		cfg.Frames = defaultFlightFrames
	}
	if cfg.Events <= 0 {
		cfg.Events = defaultFlightEvents
	}
	if cfg.WindowSec <= 0 {
		cfg.WindowSec = defaultFlightWindow
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = defaultFlightDumps
	}
	if cfg.MinSpacing <= 0 {
		cfg.MinSpacing = defaultFlightSpacing
	}
	return &FlightRecorder{
		cfg:    cfg,
		frames: make([]FlightFrame, cfg.Frames),
		events: NewTimeline(cfg.Events),
	}
}

// Record stores one per-tick frame. Never allocates.
func (r *FlightRecorder) Record(f FlightFrame) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.frames) {
		r.frames[(r.head+r.n)%len(r.frames)] = f
		r.n++
	} else {
		r.frames[r.head] = f
		r.head = (r.head + 1) % len(r.frames)
	}
	r.mu.Unlock()
}

// Sink: the recorder keeps its own bounded event ring and ignores
// metric updates (the Registry already holds those; frames carry the
// per-tick values a bundle needs).
func (r *FlightRecorder) Count(name, label string, delta float64) {}

// SetGauge implements Sink as a no-op.
func (r *FlightRecorder) SetGauge(name, label string, v float64) {}

// Observe implements Sink as a no-op.
func (r *FlightRecorder) Observe(name, label string, v float64) {}

// Emit implements Sink: events mirrored off the Telemetry timeline.
func (r *FlightRecorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.events.Append(ev)
}

// Dump freezes the last WindowSec seconds into a bundle, rate-limited:
// at most MaxDumps per mission, at least MinSpacing virtual seconds
// apart. Returns nil when suppressed. now is virtual mission time —
// wall clock never enters a bundle, so dumps replay bit-identically.
func (r *FlightRecorder) Dump(reason, detail string, now float64) *FlightBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) >= r.cfg.MaxDumps {
		return nil
	}
	if r.dumped && now-r.lastDump < r.cfg.MinSpacing {
		return nil
	}
	return r.dumpLocked(reason, detail, now)
}

// ForceDump bypasses rate limiting (panic handlers, advhunt's final
// worst-case capture). Only the MaxDumps memory bound still applies,
// with one slot always reserved for a forced dump.
func (r *FlightRecorder) ForceDump(reason, detail string, now float64) *FlightBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) >= r.cfg.MaxDumps+1 {
		return nil
	}
	return r.dumpLocked(reason, detail, now)
}

func (r *FlightRecorder) dumpLocked(reason, detail string, now float64) *FlightBundle {
	cutoff := now - r.cfg.WindowSec

	var frames []FlightFrame
	for i := 0; i < r.n; i++ {
		f := r.frames[(r.head+i)%len(r.frames)]
		if f.T >= cutoff && f.T <= now {
			frames = append(frames, f)
		}
	}
	var events []Event
	for _, ev := range r.events.Events() {
		t := ev.T0
		if ev.T1 > t {
			t = ev.T1
		}
		if t >= cutoff && ev.T0 <= now {
			events = append(events, ev)
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := flightHeader{Version: FlightVersion, Reason: reason, Detail: detail,
		T: now, Window: r.cfg.WindowSec, Frames: len(frames), Events: len(events)}
	enc.Encode(hdr)
	for i := range frames {
		enc.Encode(struct {
			Frame *FlightFrame `json:"frame"`
		}{&frames[i]})
	}
	for i := range events {
		enc.Encode(struct {
			Event *Event `json:"event"`
		}{&events[i]})
	}

	b := &FlightBundle{Reason: reason, Detail: detail, T: now,
		Frames: len(frames), Events: len(events), Data: buf.Bytes()}
	if r.cfg.Dir != "" {
		name := fmt.Sprintf("flight-%03d-%010.3fs-%s.jsonl",
			len(r.dumps), now, flightSanitize(reason))
		path := filepath.Join(r.cfg.Dir, name)
		if err := os.WriteFile(path, b.Data, 0o644); err != nil {
			b.WriteErr = err.Error()
		} else {
			b.File = path
		}
	}
	r.dumps = append(r.dumps, b)
	r.lastDump = now
	r.dumped = true
	return b
}

// Bundles returns the dumps taken so far, in order.
func (r *FlightRecorder) Bundles() []*FlightBundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*FlightBundle, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// LastTime reports the virtual time of the newest recorded frame, or 0
// when the ring is empty — the natural "now" for a post-mission
// ForceDump by callers that no longer hold the world clock.
func (r *FlightRecorder) LastTime() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	return r.frames[(r.head+r.n-1)%len(r.frames)].T
}

// FrameCount reports how many frames the ring currently holds.
func (r *FlightRecorder) FrameCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// flightSanitize maps a dump reason into a filename-safe token.
func flightSanitize(s string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		default:
			return '_'
		}
	}, s)
}

// VerifyFlightBundle structurally validates a bundle: version tag,
// header/body counts agree, frame times are nondecreasing and inside
// the declared window, and no frame line follows an event line. Shared
// by the unit tests and `lgvsim -flight-verify` so CI smoke and tests
// agree on what a well-formed bundle is.
func VerifyFlightBundle(data []byte) (FlightBundle, error) {
	var info FlightBundle
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return info, fmt.Errorf("empty bundle")
	}
	var hdr flightHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return info, fmt.Errorf("header: %v", err)
	}
	if hdr.Version != FlightVersion {
		return info, fmt.Errorf("version %q, want %q", hdr.Version, FlightVersion)
	}
	info = FlightBundle{Reason: hdr.Reason, Detail: hdr.Detail, T: hdr.T}

	frames, events := 0, 0
	lastT := hdr.T - hdr.Window
	const slack = 1e-9
	inEvents := false
	line := 1
	for sc.Scan() {
		line++
		var row struct {
			Frame *FlightFrame `json:"frame"`
			Event *Event       `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return info, fmt.Errorf("line %d: %v", line, err)
		}
		switch {
		case row.Frame != nil:
			if inEvents {
				return info, fmt.Errorf("line %d: frame after events", line)
			}
			if row.Frame.T < lastT-slack {
				return info, fmt.Errorf("line %d: frame time %g before %g", line, row.Frame.T, lastT)
			}
			if row.Frame.T < hdr.T-hdr.Window-slack || row.Frame.T > hdr.T+slack {
				return info, fmt.Errorf("line %d: frame time %g outside window [%g,%g]",
					line, row.Frame.T, hdr.T-hdr.Window, hdr.T)
			}
			lastT = row.Frame.T
			frames++
		case row.Event != nil:
			inEvents = true
			events++
		default:
			return info, fmt.Errorf("line %d: neither frame nor event", line)
		}
	}
	if err := sc.Err(); err != nil {
		return info, err
	}
	if frames != hdr.Frames {
		return info, fmt.Errorf("header declares %d frames, body has %d", hdr.Frames, frames)
	}
	if events != hdr.Events {
		return info, fmt.Errorf("header declares %d events, body has %d", hdr.Events, events)
	}
	info.Frames, info.Events = frames, events
	return info, nil
}
