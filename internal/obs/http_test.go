package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeTrace satisfies TraceSource for inspector tests.
type fakeTrace struct{ n int }

func (f *fakeTrace) WriteChrome(w io.Writer) error {
	_, err := io.WriteString(w, `{"traceEvents":[]}`)
	return err
}
func (f *fakeTrace) WriteJSONL(w io.Writer) error {
	_, err := io.WriteString(w, "{\"name\":\"tick\"}\n")
	return err
}
func (f *fakeTrace) Len() int { return f.n }

func get(t *testing.T, h *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestInspectorRoutes(t *testing.T) {
	tel := NewTelemetry(16)
	tel.Drop(1.0, "scan", "uplink")
	srv := httptest.NewServer(NewInspector(tel, &fakeTrace{n: 3}))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "spans buffered: 3") {
		t.Errorf("index: %d %q", code, body)
	}
	code, body = get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "net_drops{scan}") {
		t.Errorf("metrics: %d %q", code, body)
	}
	code, body = get(t, srv, "/timeline")
	if code != 200 || !strings.Contains(body, `"drop"`) {
		t.Errorf("timeline: %d %q", code, body)
	}
	code, body = get(t, srv, "/trace")
	if code != 200 || !strings.Contains(body, "traceEvents") {
		t.Errorf("trace: %d %q", code, body)
	}
	code, body = get(t, srv, "/spans")
	if code != 200 || !strings.Contains(body, "tick") {
		t.Errorf("spans: %d %q", code, body)
	}
	code, body = get(t, srv, "/debug/vars")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("expvar: %d %q", code, body)
	}
	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("pprof: %d", code)
	}
	code, _ = get(t, srv, "/nope")
	if code != 404 {
		t.Errorf("unknown path: %d, want 404", code)
	}
}

func TestInspectorDisabledSources(t *testing.T) {
	srv := httptest.NewServer(NewInspector(nil, nil))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "disabled") {
		t.Errorf("index: %d %q", code, body)
	}
	code, body = get(t, srv, "/metrics")
	if code != 200 || strings.TrimSpace(body) != "{}" {
		t.Errorf("metrics: %d %q", code, body)
	}
	code, _ = get(t, srv, "/trace")
	if code != 404 {
		t.Errorf("trace with tracing off: %d, want 404", code)
	}
}
