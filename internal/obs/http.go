package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// TraceSource is what the inspector needs from the tracing layer
// (satisfied by *spans.Tracer; obs must not import spans). All three
// methods must be nil-receiver-safe, matching the rest of the
// observability surface.
type TraceSource interface {
	// WriteChrome writes the buffered spans as Chrome trace-event JSON.
	WriteChrome(w io.Writer) error
	// WriteJSONL writes the buffered spans one JSON object per line.
	WriteJSONL(w io.Writer) error
	// Len reports how many spans are buffered.
	Len() int
}

// NewInspector returns the live inspection endpoint for real-socket or
// long simulated missions: a metrics snapshot, the recent event
// timeline, the causal trace (Perfetto-loadable), expvar, and pprof.
// Both arguments may be nil (or hold nil pointers); the affected routes
// then report that the source is disabled.
//
//	/            index and quick status
//	/metrics     registry snapshot, JSON ("name{label}" keys)
//	/timeline    recent timeline events, JSONL (?n=200 tail length)
//	/trace       Chrome trace-event JSON of the span buffer
//	/spans       span buffer as JSONL
//	/debug/vars  expvar
//	/debug/pprof net/http/pprof
func NewInspector(t *Telemetry, trace TraceSource) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lgvoffload inspection endpoint")
		fmt.Fprintln(w, "  /metrics      metrics snapshot (JSON)")
		fmt.Fprintln(w, "  /timeline     recent events (JSONL, ?n=tail)")
		fmt.Fprintln(w, "  /trace        Chrome trace-event JSON (load in Perfetto)")
		fmt.Fprintln(w, "  /spans        span stream (JSONL)")
		fmt.Fprintln(w, "  /debug/vars   expvar")
		fmt.Fprintln(w, "  /debug/pprof  profiling")
		if t != nil {
			fmt.Fprintf(w, "phase: %s, timeline events: %d\n", t.Phase(), len(t.Events()))
		} else {
			fmt.Fprintln(w, "telemetry: disabled")
		}
		if trace != nil {
			fmt.Fprintf(w, "spans buffered: %d\n", trace.Len())
		} else {
			fmt.Fprintln(w, "tracing: disabled")
		}
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		t.Reg.WriteJSON(w)
	})

	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if t == nil {
			return
		}
		events := t.Events()
		n := 200
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v >= 0 {
				n = v
			}
		}
		if len(events) > n {
			events = events[len(events)-n:]
		}
		WriteJSONL(w, events)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		trace.WriteChrome(w)
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		trace.WriteJSONL(w)
	})

	// expvar and pprof are mounted explicitly rather than relying on
	// their init-time DefaultServeMux registrations, so the inspector
	// works on any listener.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
