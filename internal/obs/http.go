package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"lgvoffload/internal/store"
)

// TraceSource is what the inspector needs from the tracing layer
// (satisfied by *spans.Tracer; obs must not import spans). All three
// methods must be nil-receiver-safe, matching the rest of the
// observability surface.
type TraceSource interface {
	// WriteChrome writes the buffered spans as Chrome trace-event JSON.
	WriteChrome(w io.Writer) error
	// WriteJSONL writes the buffered spans one JSON object per line.
	WriteJSONL(w io.Writer) error
	// Len reports how many spans are buffered.
	Len() int
}

// PagedTraceSource is the optional paging upgrade of TraceSource
// (satisfied by *spans.Tracer). When the trace source implements it,
// /spans serves bounded pages instead of the full buffer.
type PagedTraceSource interface {
	TraceSource
	// WriteJSONLPage writes up to limit spans with ID > after, ascending
	// by ID, and returns the count written.
	WriteJSONLPage(w io.Writer, after uint64, limit int) (int, error)
}

// Response-size bounds for the JSON/JSONL routes: a multi-hour mission
// must not turn one scrape into an unbounded body. Clients page with
// ?after=<seq|id> and ?limit=.
const (
	// DefaultTimelineLimit is /timeline's page size when ?limit is absent.
	DefaultTimelineLimit = 200
	// DefaultSpanLimit is /spans's page size when ?limit is absent.
	DefaultSpanLimit = 1000
	// MaxPageLimit caps any explicit ?limit.
	MaxPageLimit = 10000
)

// InspectorConfig configures NewInspectorWith. Every field may be nil;
// the affected routes then report that the source is disabled.
type InspectorConfig struct {
	// Telemetry serves /metrics and /timeline.
	Telemetry *Telemetry
	// Trace serves /trace and /spans; implement PagedTraceSource to get
	// bounded /spans pages.
	Trace TraceSource
	// Store serves the fleet dashboard: /missions, /missions/{id},
	// /fleet and /dash read mission history from it.
	Store *store.Store
	// Live serves /live (SSE). Attach it to the running mission's
	// telemetry with Telemetry.Tee to stream events as they happen.
	Live *LiveHub
	// SLO drives /health and /ready. Nil means no rules: both report OK.
	SLO *SLOEngine
}

// NewInspector returns the live inspection endpoint with telemetry and
// tracing only — the pre-dashboard surface, kept for callers that have
// no mission store. See NewInspectorWith.
func NewInspector(t *Telemetry, trace TraceSource) http.Handler {
	return NewInspectorWith(InspectorConfig{Telemetry: t, Trace: trace})
}

// NewInspectorWith returns the HTTP inspection endpoint: metrics
// snapshot, recent timeline, causal trace, the persistent-mission
// dashboard and the live SSE stream, plus expvar and pprof.
//
//	/              index and quick status
//	/metrics       registry snapshot, JSON ("name{label}" keys)
//	/metrics.prom  registry snapshot, Prometheus text exposition format
//	/health        SLO judgment: 200 healthy / 503 while a rule is open
//	/ready         200 once samples observed and healthy, else 503
//	/timeline      timeline events, JSONL (?after=seq, ?limit=, default 200)
//	/trace         Chrome trace-event JSON of the span buffer
//	/spans         span buffer, JSONL (?after=id, ?limit=, default 1000)
//	/missions      stored missions, JSON (?outcome= ?seed= ?workload= ?fault= ?limit=)
//	/missions/{id} one stored mission: summary, tick series, decisions,
//	               faults and the critical-path waterfall rows
//	/fleet         cross-mission aggregates (same filters as /missions)
//	/live          SSE stream of live mission events
//	/dash          minimal HTML fleet dashboard over the endpoints above
//	/debug/vars    expvar
//	/debug/pprof   net/http/pprof
func NewInspectorWith(cfg InspectorConfig) http.Handler {
	t, trace := cfg.Telemetry, cfg.Trace
	mux := http.NewServeMux()

	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lgvoffload inspection endpoint")
		fmt.Fprintln(w, "  /metrics       metrics snapshot (JSON)")
		fmt.Fprintln(w, "  /metrics.prom  metrics snapshot (Prometheus text format)")
		fmt.Fprintln(w, "  /health        SLO health (200/503 + JSON)")
		fmt.Fprintln(w, "  /ready         SLO readiness (200/503 + JSON)")
		fmt.Fprintln(w, "  /timeline      events (JSONL, ?after=seq ?limit=)")
		fmt.Fprintln(w, "  /trace         Chrome trace-event JSON (load in Perfetto)")
		fmt.Fprintln(w, "  /spans         span stream (JSONL, ?after=id ?limit=)")
		fmt.Fprintln(w, "  /missions      stored missions (JSON)")
		fmt.Fprintln(w, "  /missions/{id} one stored mission (JSON)")
		fmt.Fprintln(w, "  /fleet         cross-mission aggregates (JSON)")
		fmt.Fprintln(w, "  /live          live mission events (SSE)")
		fmt.Fprintln(w, "  /dash          fleet dashboard (HTML)")
		fmt.Fprintln(w, "  /debug/vars    expvar")
		fmt.Fprintln(w, "  /debug/pprof   profiling")
		if t != nil {
			fmt.Fprintf(w, "phase: %s, timeline events: %d\n", t.Phase(), len(t.Events()))
		} else {
			fmt.Fprintln(w, "telemetry: disabled")
		}
		if trace != nil {
			fmt.Fprintf(w, "spans buffered: %d\n", trace.Len())
		} else {
			fmt.Fprintln(w, "tracing: disabled")
		}
		if cfg.Store != nil {
			st := cfg.Store.Stats()
			fmt.Fprintf(w, "store: %s (%d missions, %d finished)\n", st.Path, st.Missions, st.Finished)
		} else {
			fmt.Fprintln(w, "store: disabled")
		}
		if cfg.Live != nil {
			fmt.Fprintf(w, "live subscribers: %d\n", cfg.Live.Subscribers())
		}
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t == nil {
			fmt.Fprintln(w, "{}")
			return
		}
		t.Reg.WriteJSON(w)
	})

	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if t == nil {
			return
		}
		t.Reg.WritePrometheus(w, "lgv")
	})

	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := cfg.SLO.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, h)
	})

	mux.HandleFunc("/ready", func(w http.ResponseWriter, r *http.Request) {
		h := cfg.SLO.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, h)
	})

	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if t == nil {
			return
		}
		limit := pageLimit(r, DefaultTimelineLimit)
		events := t.Events()
		if after, ok := pageAfter(r); ok {
			// Forward paging: the first limit events past seq `after`.
			i := 0
			for i < len(events) && events[i].Seq <= after {
				i++
			}
			events = events[i:]
			if len(events) > limit {
				events = events[:limit]
			}
		} else if len(events) > limit {
			// No cursor: newest tail, the pre-paging behaviour.
			events = events[len(events)-limit:]
		}
		WriteJSONL(w, events)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		trace.WriteChrome(w)
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if paged, ok := trace.(PagedTraceSource); ok {
			after, _ := pageAfter(r)
			paged.WriteJSONLPage(w, after, pageLimit(r, DefaultSpanLimit))
			return
		}
		trace.WriteJSONL(w)
	})

	mux.HandleFunc("/missions", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Store == nil {
			http.Error(w, "store disabled", http.StatusNotFound)
			return
		}
		writeJSON(w, cfg.Store.List(storeFilter(r)))
	})

	mux.HandleFunc("/missions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Store == nil {
			http.Error(w, "store disabled", http.StatusNotFound)
			return
		}
		md, err := cfg.Store.ReadMission(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, md)
	})

	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Store == nil {
			http.Error(w, "store disabled", http.StatusNotFound)
			return
		}
		fl, err := cfg.Store.FleetStats(storeFilter(r))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, fl)
	})

	mux.HandleFunc("/live", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Live == nil {
			http.Error(w, "live stream disabled", http.StatusNotFound)
			return
		}
		cfg.Live.ServeHTTP(w, r)
	})

	mux.HandleFunc("/dash", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, dashHTML)
	})

	// expvar and pprof are mounted explicitly rather than relying on
	// their init-time DefaultServeMux registrations, so the inspector
	// works on any listener.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// pageLimit reads ?limit= (or its pre-paging alias ?n=), clamped to
// [1, MaxPageLimit]; def applies when absent or invalid.
func pageLimit(r *http.Request, def int) int {
	q := r.URL.Query().Get("limit")
	if q == "" {
		q = r.URL.Query().Get("n")
	}
	v, err := strconv.Atoi(q)
	if err != nil || v <= 0 {
		return def
	}
	if v > MaxPageLimit {
		return MaxPageLimit
	}
	return v
}

// pageAfter reads the ?after= cursor (a timeline seq or span ID).
func pageAfter(r *http.Request) (uint64, bool) {
	q := r.URL.Query().Get("after")
	if q == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// storeFilter builds a store query filter from request parameters.
func storeFilter(r *http.Request) store.Filter {
	q := r.URL.Query()
	f := store.Filter{
		Outcome:   q.Get("outcome"),
		FaultSpec: q.Get("fault"),
		Workload:  q.Get("workload"),
	}
	if s := q.Get("seed"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			f.Seed, f.HasSeed = v, true
		}
	}
	if l := q.Get("limit"); l != "" {
		if v, err := strconv.Atoi(l); err == nil && v > 0 {
			f.Limit = v
		}
	}
	return f
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
