package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exporter: renders the registry so the future
// -serve daemon (ROADMAP item 1) is scrapeable on day one. Counters get
// the conventional _total suffix; the fixed-bucket histograms are
// rendered as summaries (quantile label + _sum/_count) because their
// p50/p95/p99 estimates are what every consumer of this repo's metrics
// already reads — re-deriving le-bucketed histograms would duplicate
// state the Registry does not keep per-snapshot.

// promLabelKey maps a metric name to the name of its single label
// dimension in the exposition (our Registry keys metrics by one untyped
// label string). Unlisted labeled metrics use "label".
var promLabelKey = map[string]string{
	MNodeExecSeconds:      "node",
	MNodeExecs:            "node",
	MHostBusySeconds:      "host",
	MTransfers:            "topic",
	MTransferBytes:        "topic",
	MDrops:                "topic",
	MOverwrites:           "queue",
	MReconnects:           "peer",
	MFrames:               "transport",
	MDecodeErrors:         "transport",
	MBacklog:              "transport",
	MFaultsInjected:       "kind",
	MCritComputeSeconds:   "host",
	MCritQueueSeconds:     "dir",
	MCritTransportSeconds: "dir",
	MSLOBreaches:          "rule",
	MFlightDumps:          "reason",
}

// WritePrometheus renders every metric in Prometheus/OpenMetrics text
// exposition format. namespace, when non-empty, prefixes every metric
// name ("lgv" -> "lgv_tick_pipeline_seconds"). Families are emitted in
// sorted (name, kind) order with # HELP/# TYPE headers, so the output is
// deterministic and parseable by any Prometheus scraper.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	snap := r.Snapshot()

	// Group points into families: all samples of one (name, kind) stay
	// contiguous, as the exposition format requires.
	type famKey struct{ name, kind string }
	fams := make(map[famKey][]MetricPoint)
	var keys []famKey
	for _, p := range snap {
		k := famKey{p.Name, p.Kind}
		if _, ok := fams[k]; !ok {
			keys = append(keys, k)
		}
		fams[k] = append(fams[k], p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].kind < keys[j].kind
	})

	bw := bufio.NewWriter(w)
	for _, k := range keys {
		base := promName(namespace, k.name)
		labelKey := promLabelKey[k.name]
		if labelKey == "" {
			labelKey = "label"
		}
		switch k.kind {
		case "counter":
			name := base + "_total"
			fmt.Fprintf(bw, "# HELP %s %s\n", name, promHelp(k.name))
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			for _, p := range fams[k] {
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(labelKey, p.Label), promFloat(p.Value))
			}
		case "gauge":
			fmt.Fprintf(bw, "# HELP %s %s\n", base, promHelp(k.name))
			fmt.Fprintf(bw, "# TYPE %s gauge\n", base)
			for _, p := range fams[k] {
				fmt.Fprintf(bw, "%s%s %s\n", base, promLabels(labelKey, p.Label), promFloat(p.Value))
			}
		default: // histogram -> summary
			fmt.Fprintf(bw, "# HELP %s %s\n", base, promHelp(k.name))
			fmt.Fprintf(bw, "# TYPE %s summary\n", base)
			for _, p := range fams[k] {
				for _, q := range [...]struct {
					q string
					v float64
				}{{"0.5", p.P50}, {"0.95", p.P95}, {"0.99", p.P99}} {
					fmt.Fprintf(bw, "%s%s %s\n", base,
						promLabelsQ(labelKey, p.Label, q.q), promFloat(q.v))
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", base, promLabels(labelKey, p.Label), promFloat(p.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", base, promLabels(labelKey, p.Label), p.Count)
			}
		}
	}
	return bw.Flush()
}

func promHelp(name string) string {
	return "lgvoffload metric " + name + " (see internal/obs)"
}

// promName sanitizes a metric name into [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(promSanitize(namespace))
		b.WriteByte('_')
	}
	b.WriteString(promSanitize(name))
	return b.String()
}

func promSanitize(s string) string {
	var b strings.Builder
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func promLabels(key, value string) string {
	if value == "" {
		return ""
	}
	return "{" + key + "=\"" + promEscape(value) + "\"}"
}

func promLabelsQ(key, value, quantile string) string {
	if value == "" {
		return "{quantile=\"" + quantile + "\"}"
	}
	return "{" + key + "=\"" + promEscape(value) + "\",quantile=\"" + quantile + "\"}"
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidatePrometheusText checks that data parses as Prometheus text
// exposition format and returns the number of samples. It verifies
// metric-name syntax, label syntax (quoted, escaped values), numeric
// sample values, and that every sample belongs to a family declared by
// a preceding # TYPE line. Shared by the exporter's unit test and
// `lgvsim -prom-verify`, so the CI smoke test and the tests agree on
// what "valid" means.
func ValidatePrometheusText(data []byte) (int, error) {
	types := map[string]string{} // family name -> type
	samples := 0
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				name, typ := fields[2], ""
				if len(fields) >= 4 {
					typ = fields[3]
				}
				if !validPromName(name) {
					return samples, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			case "HELP":
				if !validPromName(fields[2]) {
					return samples, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, fields[2])
				}
			}
			continue
		}
		name, rest, err := parsePromSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, ok := types[promFamily(name, types)]; !ok {
			return samples, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		_ = rest
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// promFamily resolves a sample name to its declared family: exact match,
// or the base name of a summary/histogram child (_sum, _count, _bucket).
func promFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return name
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{k="v",...} value [timestamp]`.
func parsePromSample(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validPromName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parsePromLabelSet(rest)
		if err != nil {
			return "", "", err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("want `value [timestamp]` after %q, got %q", name, rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", "", fmt.Errorf("sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", fmt.Errorf("timestamp %q: %v", fields[1], err)
		}
	}
	return name, rest, nil
}

// parsePromLabelSet validates a `{k="v",...}` block and returns the
// index just past the closing brace.
func parsePromLabelSet(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) || !validPromName(s[i:j]) {
			return 0, fmt.Errorf("invalid label name %q", s[i:j])
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
