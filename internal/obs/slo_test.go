package obs

import (
	"strings"
	"testing"
)

func TestParseSLORules(t *testing.T) {
	t.Run("default keyword", func(t *testing.T) {
		rules, err := ParseSLORules("default")
		if err != nil {
			t.Fatal(err)
		}
		want := DefaultSLORules()
		if len(rules) != len(want) {
			t.Fatalf("got %d rules, want %d", len(rules), len(want))
		}
		for i := range rules {
			if rules[i] != want[i] {
				t.Errorf("rule %d: %+v != %+v", i, rules[i], want[i])
			}
		}
	})

	t.Run("explicit spec", func(t *testing.T) {
		rules, err := ParseSLORules("vdp_p99<=0.5@30s, energy_rate~3@20s")
		if err != nil {
			t.Fatal(err)
		}
		if len(rules) != 2 {
			t.Fatalf("got %d rules, want 2", len(rules))
		}
		if rules[0] != (SLORule{Metric: SLOVdpP99, Mode: SLOBudget, Threshold: 0.5, Window: 30}) {
			t.Errorf("budget rule: %+v", rules[0])
		}
		if rules[1] != (SLORule{Metric: SLOEnergyRate, Mode: SLOAnom, Threshold: 3, Window: 20}) {
			t.Errorf("ewma rule: %+v", rules[1])
		}
	})

	t.Run("String round-trips", func(t *testing.T) {
		for _, spec := range []string{"vdp_p99<=0.5@30s", "energy_rate~3@20s", "staleness<=1@5s"} {
			rules, err := ParseSLORules(spec)
			if err != nil {
				t.Fatal(err)
			}
			again, err := ParseSLORules(rules[0].String())
			if err != nil {
				t.Fatalf("%q re-parse: %v", rules[0].String(), err)
			}
			if again[0] != rules[0] {
				t.Errorf("%q: %+v round-tripped to %+v", spec, rules[0], again[0])
			}
		}
	})

	bad := []string{
		"", "   ", ",",
		"vdp_p99<=0.5",         // no window
		"vdp_p99<=0.5@0s",      // zero window
		"vdp_p99<=0.5@-3s",     // negative window
		"vdp_p99=0.5@30s",      // bad operator
		"nonesuch<=0.5@30s",    // unknown metric
		"vdp_p99<=banana@30s",  // bad threshold
		"energy_rate~0@20s",    // non-positive ewma factor
		"vdp_p99<=0.5@thirtys", // non-numeric window
	}
	for _, spec := range bad {
		if _, err := ParseSLORules(spec); err == nil {
			t.Errorf("ParseSLORules(%q) = nil error, want failure", spec)
		}
	}
}

// feed pushes n ticks dt apart starting at t0, with a constant sample
// mutator, and returns all breaches raised.
func feed(e *SLOEngine, t0, dt float64, n int, f func(t float64) SLOSample) []Breach {
	var out []Breach
	for i := 0; i < n; i++ {
		tt := t0 + float64(i)*dt
		out = append(out, e.Observe(f(tt))...)
	}
	return out
}

func TestSLOBudgetBreachAndClear(t *testing.T) {
	rules, _ := ParseSLORules("staleness<=1@5s")
	e := NewSLOEngine(rules)

	// Healthy warm-up: below threshold, past the warmup gate.
	if b := feed(e, 0, 0.2, 50, func(tt float64) SLOSample {
		return SLOSample{T: tt, Staleness: 0.2}
	}); len(b) != 0 {
		t.Fatalf("healthy run raised %d breaches: %+v", len(b), b)
	}
	if h := e.Health(); !h.Healthy || !h.Ready {
		t.Fatalf("healthy engine reports %+v", h)
	}

	// One bad sample is noise, not a breach (sustain count is 3).
	if b := e.Observe(SLOSample{T: 10.0, Staleness: 5}); len(b) != 0 {
		t.Fatalf("single bad sample opened a breach: %+v", b)
	}
	if b := e.Observe(SLOSample{T: 10.2, Staleness: 0.2}); len(b) != 0 {
		t.Fatal("breach after recovery")
	}

	// Three consecutive bad samples open exactly one breach, and holding
	// the violation does not re-raise it.
	b := feed(e, 11, 0.2, 6, func(tt float64) SLOSample {
		return SLOSample{T: tt, Staleness: 5}
	})
	if len(b) != 1 {
		t.Fatalf("sustained violation raised %d breaches, want 1: %+v", len(b), b)
	}
	if b[0].Metric != SLOStaleness || b[0].Value != 5 || b[0].Limit != 1 {
		t.Errorf("breach fields: %+v", b[0])
	}
	h := e.Health()
	if h.Healthy || h.Ready {
		t.Fatalf("open breach but Health reports %+v", h)
	}
	if len(h.Open) != 1 || !strings.Contains(h.Open[0], SLOStaleness) {
		t.Errorf("Open = %v", h.Open)
	}

	// Three good samples clear it; a later sustained violation is a new
	// breach (history grows to 2).
	feed(e, 13, 0.2, 3, func(tt float64) SLOSample { return SLOSample{T: tt, Staleness: 0.1} })
	if h := e.Health(); !h.Healthy {
		t.Fatalf("breach did not clear: %+v", h)
	}
	b = feed(e, 14, 0.2, 3, func(tt float64) SLOSample { return SLOSample{T: tt, Staleness: 9} })
	if len(b) != 1 {
		t.Fatalf("re-breach raised %d, want 1", len(b))
	}
	if got := len(e.Breaches()); got != 2 {
		t.Errorf("history has %d breaches, want 2", got)
	}
}

func TestSLOWarmupGate(t *testing.T) {
	rules, _ := ParseSLORules("staleness<=1@5s")
	e := NewSLOEngine(rules)
	// Violating from t=0, but nothing may open before the warmup.
	for i := 0; i < 20; i++ {
		tt := float64(i) * 0.2 // 0 .. 3.8 < default warmup 5
		if b := e.Observe(SLOSample{T: tt, Staleness: 99}); len(b) != 0 {
			t.Fatalf("breach at t=%.1f inside warmup", tt)
		}
	}
	e2 := NewSLOEngine(rules)
	e2.SetWarmup(0)
	if b := feed(e2, 0.2, 0.2, 3, func(tt float64) SLOSample {
		return SLOSample{T: tt, Staleness: 99}
	}); len(b) != 1 {
		t.Fatalf("warmup 0: got %d breaches, want 1", len(b))
	}
}

func TestSLOVdpP99Window(t *testing.T) {
	rules, _ := ParseSLORules("vdp_p99<=0.5@10s")
	e := NewSLOEngine(rules)
	e.SetWarmup(0)
	// 99 fast ticks and 1 slow one: p99 over the window picks up the
	// tail sample, and three sustained windows open the breach.
	var got []Breach
	for i := 0; i < 200; i++ {
		tt := float64(i) * 0.2
		v := 0.01
		if i >= 150 { // tail latency appears late and persists
			v = 2.0
		}
		got = append(got, e.Observe(SLOSample{T: tt, VDP: v})...)
	}
	if len(got) != 1 {
		t.Fatalf("got %d breaches, want 1", len(got))
	}
	if got[0].Value < 0.5 {
		t.Errorf("breach value %.3f should exceed the budget", got[0].Value)
	}
}

func TestSLOEnergyRateEWMA(t *testing.T) {
	// A short window matters here: the windowed rate of a long window
	// smooths a step in draw into a ramp slow enough for the EWMA to
	// track, and the anomaly never fires. 2 s (10 ticks) lets the stat
	// jump faster than the baseline adapts.
	rules, _ := ParseSLORules("energy_rate~2@2s")
	e := NewSLOEngine(rules)
	e.SetWarmup(0)

	// Steady 10 J/s draw establishes the baseline...
	energy := 0.0
	var breaches []Breach
	for i := 0; i < 100; i++ {
		tt := float64(i) * 0.2
		energy += 2.0 // 10 J/s
		breaches = append(breaches, e.Observe(SLOSample{T: tt, EnergyJ: energy})...)
	}
	if len(breaches) != 0 {
		t.Fatalf("steady draw breached the anomaly rule: %+v", breaches)
	}
	// ...then draw jumps 5×, far past the 2× EWMA factor.
	for i := 100; i < 160; i++ {
		tt := float64(i) * 0.2
		energy += 10.0 // 50 J/s
		breaches = append(breaches, e.Observe(SLOSample{T: tt, EnergyJ: energy})...)
	}
	if len(breaches) != 1 {
		t.Fatalf("5x draw surge raised %d breaches, want 1: %+v", len(breaches), breaches)
	}
}

func TestSLOHandoffRate(t *testing.T) {
	rules, _ := ParseSLORules("handoff_rate<=0.5@10s")
	e := NewSLOEngine(rules)
	e.SetWarmup(0)
	// A handoff every tick (5/s) blows a 0.5/s budget.
	b := feed(e, 0.2, 0.2, 20, func(tt float64) SLOSample {
		return SLOSample{T: tt, Handoffs: int(tt / 0.2)}
	})
	if len(b) != 1 {
		t.Fatalf("flapping handoffs raised %d breaches, want 1", len(b))
	}
}

func TestSLONilEngine(t *testing.T) {
	var e *SLOEngine
	if b := e.Observe(SLOSample{T: 1}); b != nil {
		t.Error("nil engine Observe returned breaches")
	}
	if h := e.Health(); !h.Healthy || !h.Ready {
		t.Errorf("nil engine health %+v, want healthy+ready", h)
	}
	if e.Breaches() != nil || e.Rules() != nil {
		t.Error("nil engine leaked state")
	}
	e.SetWarmup(3) // must not panic
}

func TestSLOHistoryBounded(t *testing.T) {
	rules, _ := ParseSLORules("staleness<=1@5s")
	e := NewSLOEngine(rules)
	e.SetWarmup(0)
	tt := 0.1
	for i := 0; i < 2*sloHistoryCap; i++ {
		// breach (3 bad) then clear (3 good), forever
		for j := 0; j < sloSustainN; j++ {
			e.Observe(SLOSample{T: tt, Staleness: 9})
			tt += 0.2
		}
		for j := 0; j < sloClearN; j++ {
			e.Observe(SLOSample{T: tt, Staleness: 0})
			tt += 0.2
		}
	}
	if got := len(e.Breaches()); got != sloHistoryCap {
		t.Errorf("history has %d entries, want capped at %d", got, sloHistoryCap)
	}
}
