package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantilesExact checks the interpolation against a known
// distribution: the integers 1..30 with bounds {10, 20, 30} put exactly
// 10 samples in each bucket, so the documented estimator (rank = q·n,
// linear within the bucket) has closed-form values.
func TestHistogramQuantilesExact(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for v := 1; v <= 30; v++ {
		h.Observe(float64(v))
	}
	cases := []struct{ q, want float64 }{
		{0.50, 15},   // rank 15 → bucket (10,20]: 10 + 10·(15-10)/10
		{0.95, 28.5}, // rank 28.5 → bucket (20,30]: 20 + 10·(28.5-20)/10
		{0.99, 29.7}, // rank 29.7 → 20 + 10·(29.7-20)/10
		{1.00, 30},   // rank 30 → upper edge of the last bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Count() != 30 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 465 {
		t.Errorf("sum = %v", h.Sum())
	}
	if math.Abs(h.Mean()-15.5) > 1e-12 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramSingleBucketInterpolation(t *testing.T) {
	// All 4 samples land in (0, 10]: rank q·4 interpolates from 0.
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 { // rank 2 → 10·2/4
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := h.Quantile(1.0); math.Abs(got-10) > 1e-9 {
		t.Errorf("p100 = %v, want 10", got)
	}
}

func TestHistogramOverflowReportsMax(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(42)
	h.Observe(99)
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("overflow quantile = %v, want observed max 99", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	if len(h.Bounds()) != len(DefaultSecondsBuckets) {
		t.Error("nil bounds must fall back to defaults")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(DefaultSecondsBuckets)
	vals := []float64{0.0004, 0.002, 0.004, 0.02, 0.03, 0.07, 0.2, 0.4, 0.9, 3, 20}
	for _, v := range vals {
		h.Observe(v)
	}
	prev := -1.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

// TestRegistryConcurrent hammers every metric type from many goroutines
// while snapshots run; `go test -race` verifies the locking.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := string(rune('a' + id%3))
			for i := 0; i < iters; i++ {
				r.Add("ctr", label, 1)
				r.Set("g", label, float64(i))
				r.Observe("h", label, float64(i%20)/1000)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, p := range r.Snapshot() {
		if p.Name == "ctr" {
			total += p.Value
		}
	}
	if total != workers*iters {
		t.Errorf("counter total = %v, want %d", total, workers*iters)
	}
}

func TestTelemetryConcurrentEmit(t *testing.T) {
	tel := NewTelemetry(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tel.NodeExec("n", "lgv", float64(i), 0.01, 1)
				tel.Probe(float64(i), 0.002)
			}
		}()
	}
	wg.Wait()
	if got := tel.Timeline.Total(); got != 4*200*2 {
		t.Errorf("total events = %d", got)
	}
	if tel.Timeline.Len() != 64 {
		t.Errorf("ring len = %d, want cap 64", tel.Timeline.Len())
	}
}

func TestRegistrySnapshotSortedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Add("b", "", 2)
	r.Add("a", "y", 1)
	r.Add("a", "x", 1)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a" || snap[0].Label != "x" || snap[2].Name != "b" {
		t.Errorf("snapshot order = %+v", snap)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"a{x}"`) {
		t.Errorf("expvar-style key missing: %s", sb.String())
	}
}

// TestRegistrySnapshotTotalOrder is the regression test for the
// comparator's kind tie-break: when the same name+label exists as two
// metric kinds, a name+label-only sort left their relative order to
// sort.Slice's unstable whims, so repeated snapshots (and every export
// built on them — JSONL, /metrics.prom) could flip nondeterministically.
func TestRegistrySnapshotTotalOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Same name+label across all three kinds, plus label fan-out.
		r.Add("dup", "same", 1)
		r.Set("dup", "same", 2)
		r.Observe("dup", "same", 3)
		r.Add("dup", "other", 1)
		r.Set("alpha", "", 7)
		return r
	}
	want := build().Snapshot()
	if len(want) != 5 {
		t.Fatalf("snapshot has %d points, want 5: %+v", len(want), want)
	}
	// counter < gauge < histogram lexicographically on the kind key.
	kinds := []string{want[1].Kind, want[2].Kind, want[3].Kind}
	if kinds[0] != "counter" || kinds[1] != "counter" || kinds[2] != "gauge" {
		t.Errorf("dup ordering by kind = %v", kinds)
	}
	for i := 0; i < 50; i++ {
		got := build().Snapshot()
		for j := range want {
			if got[j].Name != want[j].Name || got[j].Kind != want[j].Kind || got[j].Label != want[j].Label {
				t.Fatalf("iteration %d: snapshot order diverged at %d: %+v vs %+v",
					i, j, got[j], want[j])
			}
		}
	}
}

func TestRegistryCustomBounds(t *testing.T) {
	r := NewRegistry()
	r.SetHistogramBounds("sz", []float64{100, 1000})
	h := r.Histogram("sz", "")
	if b := h.Bounds(); len(b) != 2 || b[1] != 1000 {
		t.Errorf("bounds = %v", b)
	}
}
