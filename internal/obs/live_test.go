package obs

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestLiveHubStalledSubscriberNeverBlocks is the satellite's core claim:
// a subscriber that never reads cannot stall the producer. Publish into
// a full queue must return promptly and count the discarded frames.
func TestLiveHubStalledSubscriberNeverBlocks(t *testing.T) {
	h := NewLiveHub(8)
	ch, _ := h.subscribe()
	defer h.unsubscribe(ch)

	const extra = 37
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subQueueCap+extra; i++ {
			h.Publish("tick", []byte(fmt.Sprintf(`{"i":%d}`, i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}
	if got := h.Dropped(); got != extra {
		t.Errorf("Dropped() = %d, want %d", got, extra)
	}
	// The stalled subscriber's queue holds the first subQueueCap frames.
	if got := len(ch); got != subQueueCap {
		t.Errorf("stalled queue holds %d frames, want %d", got, subQueueCap)
	}
}

// TestLiveHubEmitNeverBlocks drives the same guarantee through the Sink
// face the Telemetry tee uses.
func TestLiveHubEmitNeverBlocks(t *testing.T) {
	h := NewLiveHub(4)
	ch, _ := h.subscribe()
	defer h.unsubscribe(ch)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subQueueCap+5; i++ {
			h.Emit(Event{Kind: KindTick, T0: float64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a stalled subscriber")
	}
	if got := h.Dropped(); got != 5 {
		t.Errorf("Dropped() = %d, want 5", got)
	}
}

// TestLiveHubSlowSubscriberIsolated: one subscriber falling behind only
// loses its own frames — a healthy subscriber sees every publish.
func TestLiveHubSlowSubscriberIsolated(t *testing.T) {
	h := NewLiveHub(4)
	stalled, _ := h.subscribe()
	defer h.unsubscribe(stalled)
	// Fill the stalled subscriber's queue so everything further drops.
	for i := 0; i < subQueueCap; i++ {
		h.Publish("fill", []byte("{}"))
	}

	healthy, _ := h.subscribe()
	defer h.unsubscribe(healthy)
	const n = 50
	for i := 0; i < n; i++ {
		h.Publish("tick", []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if got := len(healthy); got != n {
		t.Errorf("healthy subscriber queued %d frames, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		frame := <-healthy
		want := []byte(fmt.Sprintf("event: tick\ndata: {\"i\":%d}\n\n", i))
		if !bytes.Equal(frame, want) {
			t.Fatalf("frame %d = %q, want %q", i, frame, want)
		}
	}
	if got := h.Dropped(); got != n {
		t.Errorf("Dropped() = %d, want %d (stalled subscriber only)", got, n)
	}
}

// TestLiveHubReplayExactAfterReconnect: a late (re)subscriber receives
// exactly the newest ringCap frames, oldest first, byte-identical to
// what was published.
func TestLiveHubReplayExactAfterReconnect(t *testing.T) {
	const ringCap = 16
	h := NewLiveHub(ringCap)

	// A first client connects, sees traffic, and disconnects mid-stream.
	first, replay := h.subscribe()
	if len(replay) != 0 {
		t.Fatalf("fresh hub replayed %d frames", len(replay))
	}
	const total = 100
	for i := 0; i < total/2; i++ {
		h.Publish("tick", []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	h.unsubscribe(first)
	for i := total / 2; i < total; i++ {
		h.Publish("tick", []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}

	// The reconnect replays exactly the last ringCap frames, in order.
	second, replay := h.subscribe()
	defer h.unsubscribe(second)
	if len(replay) != ringCap {
		t.Fatalf("replayed %d frames, want %d", len(replay), ringCap)
	}
	for j, frame := range replay {
		i := total - ringCap + j
		want := []byte(fmt.Sprintf("event: tick\ndata: {\"i\":%d}\n\n", i))
		if !bytes.Equal(frame, want) {
			t.Fatalf("replay[%d] = %q, want %q", j, frame, want)
		}
	}
	// And frames published after the reconnect arrive live, after replay.
	h.Publish("tick", []byte(`{"i":-1}`))
	select {
	case frame := <-second:
		if !bytes.Contains(frame, []byte(`{"i":-1}`)) {
			t.Errorf("live frame = %q", frame)
		}
	default:
		t.Error("no live frame after reconnect")
	}
}

func TestLiveHubCloseAndNil(t *testing.T) {
	h := NewLiveHub(4)
	ch, _ := h.subscribe()
	h.Publish("a", []byte("{}"))
	h.Close()
	// Draining: the queued frame, then the close.
	if _, ok := <-ch; !ok {
		t.Fatal("queued frame lost on Close")
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed")
	}
	h.Publish("b", []byte("{}")) // no-op, must not panic
	if h.Subscribers() != 0 {
		t.Error("subscribers survived Close")
	}
	late, replay := h.subscribe()
	if _, ok := <-late; ok {
		t.Error("post-Close subscription not immediately closed")
	}
	_ = replay

	var nh *LiveHub
	nh.Publish("x", nil)
	nh.Emit(Event{})
	nh.Close()
	if nh.Dropped() != 0 || nh.Subscribers() != 0 {
		t.Error("nil hub leaked state")
	}
}
