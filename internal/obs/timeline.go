package obs

import "sync"

// Kind classifies a timeline event.
type Kind string

// Event kinds emitted by the instrumented subsystems.
const (
	// KindTick spans one control-pipeline pass (engine controlTick).
	KindTick Kind = "tick"
	// KindNodeExec spans one work-node execution on a host.
	KindNodeExec Kind = "node_exec"
	// KindSwitch marks a placement switch with the Algorithm 1/2 inputs
	// that produced it.
	KindSwitch Kind = "switch"
	// KindAlg2 marks an Algorithm 2 decision flip (remote gating).
	KindAlg2 Kind = "alg2"
	// KindProbe records one heartbeat round trip.
	KindProbe Kind = "probe"
	// KindTransfer spans one message crossing hosts.
	KindTransfer Kind = "transfer"
	// KindDrop marks a message lost in the network or overwritten in a
	// bounded queue.
	KindDrop Kind = "drop"
	// KindFault marks the first disturbance injected by a scheduled
	// fault window (internal/faults).
	KindFault Kind = "fault"
	// KindWatchdog marks a command-staleness safety stop: the engine
	// zeroed cmd_vel because no fresh VDP output arrived in time.
	KindWatchdog Kind = "watchdog_stop"
	// KindFailover marks the safety controller pulling remote nodes
	// home after consecutive missed control ticks.
	KindFailover Kind = "failover"
	// KindReconnect marks the real-socket switcher re-establishing a
	// worker after it was declared dead.
	KindReconnect Kind = "reconnect"
	// KindHandoff marks the link roaming between access points; T0..T1
	// covers the re-association signal dip.
	KindHandoff Kind = "handoff"
	// KindSLOBreach marks a service-level rule opening: Node = rule
	// metric, Value = offending stat, Bandwidth = the limit it crossed,
	// Detail = the full rule spec.
	KindSLOBreach Kind = "slo_breach"
)

// Event is one structured timeline record. T0/T1 are virtual-time start
// and end (equal for instantaneous events). The remaining fields are
// kind-specific; unused ones stay zero and are omitted from JSONL.
//
// Field semantics per kind:
//
//	tick:      T0..T1 = control tick span; Value = pipeline latency (s)
//	node_exec: T0..T1 = execution span; Node, Host; Value = proc time (s);
//	           Bytes = acceleration threads used
//	switch:    Bandwidth/Direction = Algorithm 2 inputs; Remote = remote
//	           execution enabled after the switch; Detail = "from -> to";
//	           Value = state bytes migrated
//	alg2:      Bandwidth/Direction = r_t, d_t; Remote = new decision
//	probe:     Value = measured RTT (s)
//	transfer:  T0 = send, T1 = arrival; Node = topic; Host = destination;
//	           Bytes = encoded size
//	drop:      Node = topic; Detail = where ("uplink", "fabric", ...)
//	fault:     T0..T1 = scheduled window; Node = fault kind
//	watchdog_stop: Value = command staleness (s) when the stop fired
//	failover:  Value = consecutive misses; Detail = "remote -> local ..."
//	reconnect: Value = outage duration (wall seconds); Detail = peer
type Event struct {
	Seq       uint64  `json:"seq"`
	Kind      Kind    `json:"kind"`
	T0        float64 `json:"t0"`
	T1        float64 `json:"t1"`
	Host      string  `json:"host,omitempty"`
	Node      string  `json:"node,omitempty"`
	Phase     string  `json:"phase,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Bytes     int     `json:"bytes,omitempty"`
	Bandwidth float64 `json:"bw,omitempty"`
	Direction float64 `json:"dir,omitempty"`
	Remote    bool    `json:"remote,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// Timeline is a bounded ring buffer of events: long missions stay O(1)
// in memory, keeping the newest events and counting evictions. Safe for
// concurrent use.
type Timeline struct {
	mu    sync.Mutex
	buf   []Event
	start int    // index of the oldest event
	n     int    // events currently held
	total uint64 // events ever appended (assigns Seq)
}

// DefaultTimelineCap bounds the ring when no capacity is given: at the
// sim's ~10 events per 0.2 s control tick this holds the last several
// minutes of mission activity.
const DefaultTimelineCap = 16384

// NewTimeline returns a ring buffer holding at most capacity events
// (<= 0 means DefaultTimelineCap).
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Timeline{buf: make([]Event, capacity)}
}

// Append stores one event, assigning its sequence number and evicting
// the oldest event when full. It never allocates.
func (t *Timeline) Append(ev Event) {
	t.mu.Lock()
	t.total++
	ev.Seq = t.total
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
	}
	t.mu.Unlock()
}

// Events returns the held events oldest-first.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len returns how many events are currently held.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns how many events were ever appended.
func (t *Timeline) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Evicted returns how many events the ring has discarded.
func (t *Timeline) Evicted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}
