package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSnapshotExportDeterministic: two WriteJSON calls over the same
// registry state must produce identical bytes — the export is part of
// the repro story, so map-order nondeterminism may not leak into it.
func TestSnapshotExportDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Add("net_transfers", "scan", 12)
	r.Add("net_transfers", "cmd_vel", 7)
	r.Set("alg2_bandwidth", "", 4.2)
	for i := 0; i < 50; i++ {
		r.Observe("node_exec_seconds", "path_tracking", 0.01+float64(i)*1e-4)
	}
	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshot export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := doc["net_transfers{scan}"]; !ok {
		t.Errorf("labeled counter key missing: %v", doc)
	}
	hist, ok := doc["node_exec_seconds{path_tracking}"].(map[string]any)
	if !ok || hist["count"].(float64) != 50 {
		t.Errorf("histogram export wrong: %v", doc["node_exec_seconds{path_tracking}"])
	}
}

// TestEmptyRegistryExportsEmptyObject: a fresh registry must export "{}"
// (the inspector serves this for missions with telemetry off).
func TestEmptyRegistryExportsEmptyObject(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "{}" {
		t.Errorf("empty registry exports %q, want {}", got)
	}
}

// TestTimelineJSONLNilAndRoundTrip: nil telemetry writes nothing; a live
// timeline round-trips every event through JSONL.
func TestTimelineJSONLNilAndRoundTrip(t *testing.T) {
	var nilT *Telemetry
	var buf bytes.Buffer
	if err := nilT.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil telemetry wrote %q", buf.String())
	}

	tel := NewTelemetry(16)
	tel.NodeExec("path_tracking", "edge", 1.0, 0.02, 8)
	tel.Drop(2.0, "scan", "uplink")
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindNodeExec || ev.Node != "path_tracking" {
		t.Errorf("event corrupted: %+v", ev)
	}
}

// TestTimelineTruncationSurfacesInPostMortem: when the event ring
// evicts, the post-mortem must say so instead of silently presenting a
// partial timeline as complete.
func TestTimelineTruncationSurfacesInPostMortem(t *testing.T) {
	tel := NewTelemetry(4)
	for i := 0; i < 10; i++ {
		tel.Drop(float64(i), "scan", "uplink")
	}
	if tel.Timeline.Evicted() != 6 {
		t.Fatalf("evicted = %d, want 6", tel.Timeline.Evicted())
	}
	var buf bytes.Buffer
	if err := WritePostMortem(&buf, tel, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "evicted 6 older events") {
		t.Errorf("post-mortem hides truncation:\n%s", buf.String())
	}
}

// TestPostMortemNilTelemetry: the report degrades gracefully.
func TestPostMortemNilTelemetry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePostMortem(&buf, nil, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "not enabled") {
		t.Errorf("nil post-mortem = %q", buf.String())
	}
}

// TestPostMortemShowsCriticalPath: the decomposition section appears
// exactly when critpath metrics were observed.
func TestPostMortemShowsCriticalPath(t *testing.T) {
	tel := NewTelemetry(16)
	var buf bytes.Buffer
	if err := WritePostMortem(&buf, tel, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "critical path") {
		t.Error("critical-path section shown with no critpath samples")
	}

	tel.Observe(MCritComputeSeconds, "lgv", 0.004)
	tel.Observe(MCritQueueSeconds, "up", 0.001)
	tel.Observe(MCritTransportSeconds, "up", 0.008)
	buf.Reset()
	if err := WritePostMortem(&buf, tel, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"critical path", "compute{lgv}", "queue{up}", "transport{up}"} {
		if !strings.Contains(out, want) {
			t.Errorf("post-mortem missing %q:\n%s", want, out)
		}
	}
}
