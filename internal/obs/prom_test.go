package obs

import (
	"bytes"
	"strings"
	"testing"
)

func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Add(MSwitches, "", 473)
	r.Add(MDrops, "scan", 3)
	r.Add(MDrops, "cmd_vel", 1)
	r.Set(MBandwidth, "", 72.5)
	r.Set(MLinkSignal, "", 0.8)
	for i := 0; i < 100; i++ {
		r.Observe(MTickSeconds, "", 0.02+float64(i)*0.0005)
		r.Observe(MNodeExecSeconds, "costmap_gen", 0.01)
	}
	r.Add(MSLOBreaches, SLOVdpP99, 1)
	r.Add(MFlightDumps, "watchdog", 2)
	return r
}

// TestWritePrometheusValidates is the acceptance check: the exporter's
// own output must satisfy the shared validator that `lgvsim
// -prom-verify` applies to scraped /metrics.prom bodies.
func TestWritePrometheusValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf, "lgv"); err != nil {
		t.Fatal(err)
	}
	n, err := ValidatePrometheusText(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter output fails validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no samples exported")
	}

	out := buf.String()
	for _, want := range []string{
		"# TYPE lgv_placement_switches_total counter",
		"lgv_placement_switches_total 473",
		`lgv_net_drops_total{topic="cmd_vel"} 1`,
		`lgv_net_drops_total{topic="scan"} 3`,
		"# TYPE lgv_alg2_bandwidth gauge",
		"lgv_alg2_bandwidth 72.5",
		"# TYPE lgv_tick_pipeline_seconds summary",
		`lgv_tick_pipeline_seconds{quantile="0.99"}`,
		"lgv_tick_pipeline_seconds_count 100",
		`lgv_node_exec_seconds{node="costmap_gen",quantile="0.5"}`,
		`lgv_slo_breaches_total{rule="vdp_p99"} 1`,
		`lgv_flight_dumps_total{reason="watchdog"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := promTestRegistry().WritePrometheus(&buf, "lgv"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	for i := 0; i < 10; i++ {
		if b := render(); !bytes.Equal(a, b) {
			t.Fatal("same registry state rendered different bytes across runs")
		}
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Add("odd-metric.name", `va"lue\with`+"\n"+`newline`, 1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePrometheusText(buf.Bytes()); err != nil {
		t.Fatalf("escaped output fails validation: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "odd_metric_name_total") {
		t.Errorf("metric name not sanitized:\n%s", buf.String())
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"sample without TYPE", "foo_total 1\n"},
		{"bad metric name", "# TYPE 9bad counter\n9bad 1\n"},
		{"unknown type", "# TYPE foo flavor\nfoo 1\n"},
		{"duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo banana\n"},
		{"unterminated labels", "# TYPE foo counter\nfoo{a=\"b\" 1\n"},
		{"unquoted label", "# TYPE foo counter\nfoo{a=b} 1\n"},
		{"comments only", "# HELP foo help text\n# TYPE foo counter\n"},
	}
	for _, tc := range cases {
		if _, err := ValidatePrometheusText([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted, want rejection", tc.name)
		}
	}

	good := "# TYPE foo counter\nfoo{a=\"b\"} 1 1700000000\nfoo 2\n" +
		"# TYPE bar summary\nbar{quantile=\"0.5\"} 3\nbar_sum 4\nbar_count 5\n"
	n, err := ValidatePrometheusText([]byte(good))
	if err != nil {
		t.Fatalf("valid text rejected: %v", err)
	}
	if n != 5 {
		t.Errorf("counted %d samples, want 5", n)
	}
}
