package obs

import (
	"fmt"
	"io"
)

// WritePostMortem renders the human-readable mission report: per-node
// latency histograms, per-host occupancy, the network transfer/drop
// summary, and the adaptation decision log with the bandwidth and
// signal-direction inputs that produced each switch. missionTime is the
// mission's total virtual time (for occupancy fractions). Nil-safe.
func WritePostMortem(w io.Writer, t *Telemetry, missionTime float64) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "post-mortem: telemetry was not enabled")
		return err
	}
	snap := t.Snapshot()

	fmt.Fprintln(w, "=== mission post-mortem ===")

	// --- Per-node latency histograms. ---------------------------------------
	fmt.Fprintf(w, "\nnode execution latency (ms):\n")
	fmt.Fprintf(w, "  %-18s %8s %9s %9s %9s %9s\n", "node", "execs", "mean", "p50", "p95", "p99")
	for _, p := range snap {
		if p.Name != MNodeExecSeconds {
			continue
		}
		fmt.Fprintf(w, "  %-18s %8d %9.2f %9.2f %9.2f %9.2f\n",
			p.Label, p.Count, p.Value*1000, p.P50*1000, p.P95*1000, p.P99*1000)
	}

	// --- Per-host occupancy. -------------------------------------------------
	fmt.Fprintf(w, "\nhost occupancy (execution seconds / mission time %.1f s):\n", missionTime)
	for _, p := range snap {
		if p.Name != MHostBusySeconds {
			continue
		}
		frac := 0.0
		if missionTime > 0 {
			frac = p.Value / missionTime
		}
		fmt.Fprintf(w, "  %-8s %8.1f s  (%.0f%%)\n", p.Label, p.Value, frac*100)
	}

	// --- Network summary. ----------------------------------------------------
	fmt.Fprintf(w, "\nnetwork (per topic): transfers / bytes / drops / overwrites:\n")
	stat := func(name, label string) float64 {
		for _, p := range snap {
			if p.Name == name && p.Label == label {
				return p.Value
			}
		}
		return 0
	}
	seen := map[string]bool{}
	for _, p := range snap {
		if p.Name != MTransfers && p.Name != MDrops && p.Name != MOverwrites {
			continue
		}
		if seen[p.Label] {
			continue
		}
		seen[p.Label] = true
		fmt.Fprintf(w, "  %-12s %8.0f %12.0f B %8.0f %8.0f\n", p.Label,
			stat(MTransfers, p.Label), stat(MTransferBytes, p.Label),
			stat(MDrops, p.Label), stat(MOverwrites, p.Label))
	}
	if p50 := statHist(snap, MProbeRTTSeconds); p50 != nil {
		fmt.Fprintf(w, "  probe RTT: %d samples, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
			p50.Count, p50.P50*1000, p50.P95*1000, p50.P99*1000)
	}

	// --- Critical-path decomposition (present when tracing was on). ----------
	anyCrit := false
	for _, p := range snap {
		switch p.Name {
		case MCritComputeSeconds, MCritQueueSeconds, MCritTransportSeconds:
			if !anyCrit {
				fmt.Fprintf(w, "\nVDP critical path per tick (ms):\n")
				fmt.Fprintf(w, "  %-24s %8s %9s %9s %9s\n", "segment", "ticks", "mean", "p50", "p95")
				anyCrit = true
			}
			fmt.Fprintf(w, "  %-24s %8d %9.2f %9.2f %9.2f\n",
				p.Name[len("critpath_"):len(p.Name)-len("_seconds")]+"{"+p.Label+"}",
				p.Count, p.Value*1000, p.P50*1000, p.P95*1000)
		}
	}

	// --- Adaptation decision log. --------------------------------------------
	fmt.Fprintf(w, "\nadaptation decision log:\n")
	any := false
	for _, ev := range t.Events() {
		switch ev.Kind {
		case KindAlg2:
			any = true
			decision := "LOCAL"
			if ev.Remote {
				decision = "REMOTE"
			}
			fmt.Fprintf(w, "  %7.1f s  alg2   -> %-6s  (bw=%.1f msg/s, dir=%+.2f)\n",
				ev.T0, decision, ev.Bandwidth, ev.Direction)
		case KindSwitch:
			any = true
			fmt.Fprintf(w, "  %7.1f s  switch %-28s (bw=%.1f msg/s, dir=%+.2f, state=%.0f B)\n",
				ev.T0, ev.Detail, ev.Bandwidth, ev.Direction, ev.Value)
		}
	}
	if !any {
		fmt.Fprintln(w, "  (no adaptation events — static deployment or stable link)")
	}

	// --- Mission store health. -----------------------------------------------
	if d := stat(MStoreDropped, ""); d > 0 {
		fmt.Fprintf(w, "\nmission store: recording queue dropped %.0f records — persisted time series have holes\n", d)
	}

	if ev := t.Timeline.Evicted(); ev > 0 {
		fmt.Fprintf(w, "\n(timeline ring evicted %d older events; totals above include them)\n", ev)
	}
	return nil
}

func statHist(snap []MetricPoint, name string) *MetricPoint {
	for i := range snap {
		if snap[i].Name == name && snap[i].Kind == "histogram" && snap[i].Count > 0 {
			return &snap[i]
		}
	}
	return nil
}
