package obs

import (
	"math"
	"sort"
	"sync"
)

// DefaultSecondsBuckets are the histogram bounds used when no custom
// bounds are registered: exponential-ish coverage from 1 ms to 10 s,
// matching the latency range of everything the mission engine profiles
// (node processing times, probe RTTs, link latencies).
var DefaultSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically-increasing metric. Safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta float64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value metric. Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the latest value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the latest value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket histogram with quantile estimation. Bucket
// i counts samples in (bounds[i-1], bounds[i]] (bucket 0 starts at 0);
// samples above the last bound land in an overflow bucket. Safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is overflow
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil means DefaultSecondsBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultSecondsBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank, assuming samples are
// uniformly distributed inside each bucket: with n samples the target
// rank is q·n, and the estimate is lo + (hi-lo)·(rank-cumBefore)/inBucket
// where (lo, hi] is the bucket span (lo = 0 for the first bucket). The
// overflow bucket reports the maximum observed sample. Returns 0 when no
// samples exist.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.max // overflow bucket
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.max
}

// Quantiles returns the p50/p95/p99 estimates in one pass of locking.
func (h *Histogram) Quantiles() (p50, p95, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// MetricPoint is one metric's exported state (a row of a snapshot).
type MetricPoint struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Kind  string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Value float64 `json:"value"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Registry is a thread-safe metric registry keyed by name + label. The
// label is a single dimension value (node name, host, topic); metrics
// that need none pass "".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]map[string]*Counter
	gauges     map[string]map[string]*Gauge
	hists      map[string]map[string]*Histogram
	histBounds map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]map[string]*Counter),
		gauges:     make(map[string]map[string]*Gauge),
		hists:      make(map[string]map[string]*Histogram),
		histBounds: make(map[string][]float64),
	}
}

// SetHistogramBounds registers custom bucket bounds for histograms of the
// given name created after this call.
func (r *Registry) SetHistogramBounds(name string, bounds []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := make([]float64, len(bounds))
	copy(b, bounds)
	r.histBounds[name] = b
}

// Counter returns the counter for name+label, creating it on first use.
func (r *Registry) Counter(name, label string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	byLabel, ok := r.counters[name]
	if !ok {
		byLabel = make(map[string]*Counter)
		r.counters[name] = byLabel
	}
	c, ok := byLabel[label]
	if !ok {
		c = &Counter{}
		byLabel[label] = c
	}
	return c
}

// Gauge returns the gauge for name+label, creating it on first use.
func (r *Registry) Gauge(name, label string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	byLabel, ok := r.gauges[name]
	if !ok {
		byLabel = make(map[string]*Gauge)
		r.gauges[name] = byLabel
	}
	g, ok := byLabel[label]
	if !ok {
		g = &Gauge{}
		byLabel[label] = g
	}
	return g
}

// Histogram returns the histogram for name+label, creating it on first
// use with the bounds registered for the name (or the defaults).
func (r *Registry) Histogram(name, label string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	byLabel, ok := r.hists[name]
	if !ok {
		byLabel = make(map[string]*Histogram)
		r.hists[name] = byLabel
	}
	h, ok := byLabel[label]
	if !ok {
		h = NewHistogram(r.histBounds[name])
		byLabel[label] = h
	}
	return h
}

// Add increments the counter name+label by delta.
func (r *Registry) Add(name, label string, delta float64) {
	r.Counter(name, label).Add(delta)
}

// Set stores v in the gauge name+label.
func (r *Registry) Set(name, label string, v float64) {
	r.Gauge(name, label).Set(v)
}

// Observe records v in the histogram name+label.
func (r *Registry) Observe(name, label string, v float64) {
	r.Histogram(name, label).Observe(v)
}

// Snapshot returns every metric's current state, sorted by name, kind,
// then label, for export or assertions. The kind tie-break matters
// twice: it makes the order a total one even when a name+label exists
// as two kinds (sort.Slice is not stable, so a two-key comparator left
// such pairs in map-iteration order and leaked nondeterminism into
// every export), and it keeps each Prometheus metric family contiguous.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	type entry struct {
		name, label string
		c           *Counter
		g           *Gauge
		h           *Histogram
	}
	var entries []entry
	for name, byLabel := range r.counters {
		for label, c := range byLabel {
			entries = append(entries, entry{name: name, label: label, c: c})
		}
	}
	for name, byLabel := range r.gauges {
		for label, g := range byLabel {
			entries = append(entries, entry{name: name, label: label, g: g})
		}
	}
	for name, byLabel := range r.hists {
		for label, h := range byLabel {
			entries = append(entries, entry{name: name, label: label, h: h})
		}
	}
	r.mu.Unlock()

	out := make([]MetricPoint, 0, len(entries))
	for _, e := range entries {
		switch {
		case e.c != nil:
			out = append(out, MetricPoint{Name: e.name, Label: e.label, Kind: "counter", Value: e.c.Value()})
		case e.g != nil:
			out = append(out, MetricPoint{Name: e.name, Label: e.label, Kind: "gauge", Value: e.g.Value()})
		default:
			p50, p95, p99 := e.h.Quantiles()
			out = append(out, MetricPoint{
				Name: e.name, Label: e.label, Kind: "histogram",
				Value: e.h.Mean(), Count: e.h.Count(), Sum: e.h.Sum(),
				P50: p50, P95: p95, P99: p99,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// round3 trims export noise from float metrics (post-mortem display).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
