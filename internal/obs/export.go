package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"io"
)

// WriteJSONL writes one JSON object per event, one event per line —
// loadable by any log pipeline (jq, DuckDB, pandas.read_json(lines=True)).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL dumps the telemetry timeline as JSONL (nil-safe: writes
// nothing on a nil receiver).
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteJSONL(w, t.Timeline.Events())
}

// WriteJSON writes an expvar-style JSON snapshot of every metric: a map
// keyed "name{label}" for labeled metrics and "name" otherwise. Counters
// and gauges map to their value; histograms to {count, mean, p50, p95,
// p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotMap())
}

func (r *Registry) snapshotMap() map[string]any {
	out := make(map[string]any)
	for _, p := range r.Snapshot() {
		key := p.Name
		if p.Label != "" {
			key = p.Name + "{" + p.Label + "}"
		}
		if p.Kind == "histogram" {
			out[key] = map[string]any{
				"count": p.Count,
				"mean":  round3(p.Value),
				"p50":   round3(p.P50),
				"p95":   round3(p.P95),
				"p99":   round3(p.P99),
			}
		} else {
			out[key] = p.Value
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name so
// real-socket runs serve a live snapshot from the standard /debug/vars
// endpoint. Publishing an already-taken name is a no-op (expvar panics
// on duplicates; repeated missions should not).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshotMap() }))
}
